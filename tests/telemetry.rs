//! Telemetry regression tests: the obs instrumentation wired through the
//! pipeline must record real cache traffic and span timings, and the
//! snapshot schema must survive a JSON round-trip.
//!
//! These tests mutate the process-global obs registry, so they serialize
//! on one lock and assert on snapshot *deltas*, never absolute counts.

use air_sim::{AirLearningDatabase, ObstacleDensity};
use autopilot::{
    AutoPilot, AutopilotConfig, CandidateCache, DssocEvaluator, OptimizerChoice, Phase1, Phase2,
    PipelineCache, SuccessModel, TaskSpec,
};
use autopilot_obs as obs;
use dse_opt::{CachedEvaluator, Evaluator};
use std::sync::{Arc, Mutex, MutexGuard};
use uav_dynamics::UavSpec;

/// Serializes tests that toggle the global metrics gate.
fn guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn evaluator() -> DssocEvaluator {
    let mut db = AirLearningDatabase::new();
    Phase1::new(SuccessModel::Surrogate, 1).populate(ObstacleDensity::Dense, &mut db);
    DssocEvaluator::new(db, ObstacleDensity::Dense)
}

#[test]
fn repeated_scenario_run_records_candidate_cache_hits() {
    let _guard = guard();
    obs::force_metrics(true);
    let before = obs::snapshot();

    // Fig5-style repetition: the same scenario DSE twice against one
    // shared candidate cache — the second run must be pure hits, and the
    // obs counters must see that traffic.
    let ev = evaluator();
    let cache = CandidateCache::new();
    let phase2 = Phase2::new(OptimizerChoice::Random, 12, 4);
    let first = phase2.run_with_cache(&ev, &cache).expect("phase 2 runs");
    let second = phase2.run_with_cache(&ev, &cache).expect("phase 2 runs");
    assert_eq!(first.candidates, second.candidates);

    let after = obs::snapshot();
    let hits = after.counter("phase2.candidate_cache.hits")
        - before.counter("phase2.candidate_cache.hits");
    let misses = after.counter("phase2.candidate_cache.misses")
        - before.counter("phase2.candidate_cache.misses");
    assert!(hits > 0, "repeat run produced no candidate-cache hits");
    assert!(misses > 0, "first run produced no candidate-cache misses");
    assert_eq!(hits as usize, second.cache_stats.hits, "obs delta must match cache stats");
    assert!(
        after.span_total_s("phase2.run") > before.span_total_s("phase2.run"),
        "phase2.run span recorded no time"
    );
}

#[test]
fn pipeline_cache_hits_are_counted_across_uavs() {
    let _guard = guard();
    obs::force_metrics(true);
    let before = obs::snapshot();

    let task = TaskSpec::navigation(ObstacleDensity::Medium);
    let cache = Arc::new(PipelineCache::new());
    let config = AutopilotConfig::fast(5).with_optimizer(OptimizerChoice::Random).with_budget(16);
    let pilot = AutoPilot::new(config).with_cache(Arc::clone(&cache));
    pilot.run(&UavSpec::nano(), &task).expect("pipeline runs");
    pilot.run(&UavSpec::micro(), &task).expect("pipeline runs");

    let after = obs::snapshot();
    let delta = |name: &str| after.counter(name) - before.counter(name);
    assert_eq!(delta("pipeline.phase2_cache.misses"), 1, "phase 2 must run once");
    assert_eq!(delta("pipeline.phase2_cache.hits"), 1, "second UAV must hit the phase-2 cache");
    assert_eq!(delta("pipeline.phase1_cache.hits"), 1, "second UAV must hit the phase-1 cache");
}

#[test]
fn obs_cache_counters_match_per_run_stats_exactly() {
    let _guard = guard();
    obs::force_metrics(true);

    // Regression: the obs cache counters used to read double the per-run
    // `cache_stats` in the timing probe because one snapshot spanned two
    // runs. Within a single run, every lookup must be counted exactly
    // once on exactly one of the hit/miss paths.
    let ev = evaluator();
    let phase2 = Phase2::new(OptimizerChoice::Random, 12, 9);
    let before = obs::snapshot();
    let out = phase2.run(&ev).expect("phase 2 runs");
    let after = obs::snapshot();
    let delta = |name: &str| (after.counter(name) - before.counter(name)) as usize;
    assert_eq!(
        delta("phase2.candidate_cache.misses"),
        out.cache_stats.misses,
        "each cache miss must increment the obs counter exactly once"
    );
    assert_eq!(
        delta("phase2.candidate_cache.hits"),
        out.cache_stats.hits,
        "each cache hit must increment the obs counter exactly once"
    );
    assert_eq!(out.cache_stats.misses, out.result.evaluation_count());
}

#[test]
fn layer_memo_traffic_reaches_obs() {
    let _guard = guard();
    obs::force_metrics(true);

    let ev = evaluator();
    let before = obs::snapshot();
    let point = vec![5, 2, 3, 3, 3, 3, 3];
    ev.evaluate(&point).expect("legal point evaluates");
    ev.evaluate(&point).expect("legal point evaluates");
    let after = obs::snapshot();
    let delta = |name: &str| after.counter(name) - before.counter(name);
    let stats = ev.layer_memo_stats();
    if stats.hits == 0 {
        // Memo disabled via AUTOPILOT_LAYER_MEMO: nothing to check.
        return;
    }
    assert_eq!(delta("systolic.memo.misses"), stats.misses);
    assert_eq!(delta("systolic.memo.hits"), stats.hits);
    assert_eq!(
        delta("systolic.layers"),
        stats.misses,
        "the simulation counter must only count actual (memo-miss) simulations"
    );
}

#[test]
fn phase2_layers_simulated_equal_memo_misses() {
    let _guard = guard();
    obs::force_metrics(true);

    // Regression: `systolic_layers_simulated` used to read 0 against a
    // warm memo while the memo reported nonzero misses, because the obs
    // counter window and the cumulative memo stats covered different
    // intervals. Over the lifetime of a *fresh* evaluator the two views
    // must agree exactly: every actual simulation is a memo miss.
    let ev = evaluator();
    if !ev.layer_memo_enabled() {
        // Memo disabled via AUTOPILOT_LAYER_MEMO: invariant vacuous.
        return;
    }
    let before = obs::snapshot();
    let phase2 = Phase2::new(OptimizerChoice::Random, 24, 11);
    phase2.run(&ev).expect("phase 2 runs");
    let after = obs::snapshot();
    let layers = after.counter("systolic.layers") - before.counter("systolic.layers");
    let stats = ev.layer_memo_stats();
    assert!(stats.hits > 0, "a 24-point DSE must produce memo hits");
    assert_eq!(
        layers, stats.misses,
        "layers actually simulated must equal memo misses when the memo is on"
    );
}

#[test]
fn gp_window_plumbs_through_and_records_downdates() {
    let _guard = guard();
    obs::force_metrics(true);

    // Regression: the default exact-GP window equalled the sparse
    // threshold, so the window never slid and `bo.gp.downdate` stayed 0
    // forever. With an explicit window smaller than the budget the
    // incremental Cholesky downdate path must actually fire.
    let ev = evaluator();
    let before = obs::snapshot();
    let phase2 = Phase2::new(OptimizerChoice::SmsEgo, 24, 5)
        .with_gp_window(10)
        .with_surrogate_mode(dse_opt::SurrogateMode::Exact);
    phase2.run(&ev).expect("phase 2 runs");
    let after = obs::snapshot();
    let downdates = after.counter("bo.gp.downdate") - before.counter("bo.gp.downdate");
    assert!(
        downdates > 0,
        "a budget-24 SMS-EGO run with a 10-point GP window must slide the window"
    );
}

#[test]
fn cached_evaluator_traffic_reaches_obs() {
    let _guard = guard();
    obs::force_metrics(true);
    let before = obs::snapshot();

    let cached = CachedEvaluator::new(evaluator());
    let point = vec![5, 2, 3, 3, 3, 3, 3];
    let a = cached.evaluate(&point);
    let b = cached.evaluate(&point);
    assert_eq!(a, b);

    let after = obs::snapshot();
    let delta = |name: &str| after.counter(name) - before.counter(name);
    assert_eq!(delta("dse.cached_evaluator.misses"), 1);
    assert_eq!(delta("dse.cached_evaluator.hits"), 1);
}

#[test]
fn telemetry_snapshot_round_trips_through_json() {
    let _guard = guard();
    obs::force_metrics(true);
    // Make sure there is real data of every kind in the registry.
    let ev = evaluator();
    ev.evaluate(&[5, 2, 3, 3, 3, 3, 3]).expect("legal point evaluates");
    obs::observe("telemetry.test_seconds", 0.125);
    obs::gauge_set("telemetry.test_gauge", -3.5);

    let snap = obs::snapshot();
    assert!(snap.counter("systolic.layers") > 0);
    let json = snap.to_json();
    let restored = obs::Snapshot::from_json(&json).expect("snapshot JSON parses");
    assert_eq!(restored.version, snap.version);
    assert_eq!(json, restored.to_json(), "round-trip must be lossless");
}

#[test]
fn disabled_metrics_record_nothing() {
    let _guard = guard();
    obs::force_metrics(false);
    let before = obs::snapshot();
    let ev = evaluator();
    ev.evaluate(&[5, 2, 2, 2, 2, 2, 2]).expect("legal point evaluates");
    let after = obs::snapshot();
    assert_eq!(
        before.counter("systolic.layers"),
        after.counter("systolic.layers"),
        "gated-off instrumentation must not record"
    );
    obs::force_metrics(true);
}

//! Quantitative paper-claim checks: the headline numbers the reproduction
//! must land near (shape fidelity, not exact values — see EXPERIMENTS.md).

use air_sim::{ObstacleDensity, SuccessSurrogate};
use policy_nn::{PolicyHyperparams, PolicyModel};
use soc_power::compute_payload_grams;
use uav_dynamics::{F1Model, UavSpec};

#[test]
fn table_ii_joint_space_size() {
    // 9 x 3 x 8 x 8 x 8 x 8 x 8.
    assert_eq!(autopilot::JointSpace::size(), 884_736);
}

#[test]
fn e2e_models_are_100x_dronet() {
    // Paper: AutoPilot E2E models are 109x-121x larger than DroNet.
    for (l, f) in [(5, 32), (4, 48), (7, 48)] {
        let m = PolicyModel::build(PolicyHyperparams::new(l, f).unwrap());
        let ratio = m.parameter_count() as f64 / policy_nn::reference::DRONET_PARAMETERS as f64;
        assert!((105.0..=125.0).contains(&ratio), "l{l}f{f}: {ratio:.0}x");
    }
}

#[test]
fn success_band_matches_fig2b() {
    let s = SuccessSurrogate::paper_calibrated();
    let mut lo = f64::INFINITY;
    let mut hi = 0.0f64;
    for h in PolicyHyperparams::enumerate() {
        for d in ObstacleDensity::ALL {
            let v = s.success_rate(&PolicyModel::build(h), d);
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    // Paper band: 60%..91%.
    assert!((0.55..=0.68).contains(&lo), "floor {lo:.2}");
    assert!((0.86..=0.93).contains(&hi), "ceiling {hi:.2}");
}

#[test]
fn scenario_best_models_match_section_v_a() {
    let s = SuccessSurrogate::paper_calibrated();
    let expect = [
        (ObstacleDensity::Low, (5, 32)),
        (ObstacleDensity::Medium, (4, 48)),
        (ObstacleDensity::Dense, (7, 48)),
    ];
    for (d, (l, f)) in expect {
        assert_eq!(s.best_model(d), PolicyHyperparams::new(l, f).unwrap(), "{d}");
    }
}

#[test]
fn knee_points_match_fig11() {
    // Paper: nano ~46 FPS, DJI Spark ~27 FPS with 60 FPS sensors.
    let nano = F1Model::new(UavSpec::nano(), 24.0, 60.0).unwrap().knee_fps().unwrap();
    let spark = F1Model::new(UavSpec::micro(), 24.0, 60.0).unwrap().knee_fps().unwrap();
    assert!((40.0..=54.0).contains(&nano), "nano knee {nano:.1}");
    assert!((24.0..=33.0).contains(&spark), "spark knee {spark:.1}");
    let ratio = nano / spark;
    assert!((1.4..=2.0).contains(&ratio), "ratio {ratio:.2} (paper ~1.7)");
}

#[test]
fn compute_payload_matches_paper_points() {
    // Paper: AP design 0.7 W -> 24 g; HT design 8.24 W -> 65 g.
    assert!((compute_payload_grams(0.7) - 24.0).abs() < 1.5);
    assert!((compute_payload_grams(8.24) - 65.0).abs() < 3.0);
}

#[test]
fn accelerator_band_matches_table_iii() {
    // The Table II corners must span roughly the paper's 22-200 FPS and
    // sub-watt to ~8 W envelope.
    use air_sim::AirLearningDatabase;
    use autopilot::{DssocEvaluator, Phase1, SuccessModel};
    let mut db = AirLearningDatabase::new();
    Phase1::new(SuccessModel::Surrogate, 1).populate(ObstacleDensity::Dense, &mut db);
    let ev = DssocEvaluator::new(db, ObstacleDensity::Dense);
    let slow = ev.evaluate_design(&[5, 1, 0, 0, 0, 0, 0]).expect("corner point"); // 8x8, 32 KB
    let fast = ev.evaluate_design(&[5, 1, 5, 5, 3, 3, 3]).expect("corner point"); // 256x256, 256 KB
    assert!((15.0..=35.0).contains(&slow.fps), "slow corner {:.1} FPS", slow.fps);
    assert!((180.0..=320.0).contains(&fast.fps), "fast corner {:.1} FPS", fast.fps);
    assert!(slow.tdp_w < 1.0, "slow corner {:.2} W", slow.tdp_w);
    assert!((6.0..=11.0).contains(&fast.tdp_w), "fast corner {:.2} W", fast.tdp_w);
}

#[test]
fn pulp_dronet_is_badly_underprovisioned() {
    // Paper motivation: PULP's 6 FPS sits far below every knee.
    for uav in UavSpec::all() {
        let f1 = F1Model::new(uav.clone(), 5.0, 60.0).unwrap();
        assert_eq!(f1.classify(6.0), uav_dynamics::Provisioning::UnderProvisioned, "{}", uav.name);
    }
}

#[test]
fn heavier_payload_lowers_the_f1_ceiling() {
    // Fig. 4a: power -> heatsink weight -> lower ceilings.
    let light = F1Model::new(UavSpec::nano(), compute_payload_grams(0.7), 60.0).unwrap();
    let heavy = F1Model::new(UavSpec::nano(), compute_payload_grams(8.24), 60.0).unwrap();
    assert!(heavy.velocity_ceiling() < light.velocity_ceiling() * 0.8);
}

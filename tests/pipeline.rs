//! Cross-crate integration tests: the full AutoPilot pipeline composed
//! from every substrate crate.

use air_sim::ObstacleDensity;
use autopilot::{AutoPilot, AutopilotConfig, OptimizerChoice, Phase3, TaskSpec};
use uav_dynamics::{Provisioning, UavSpec};

fn pilot(seed: u64) -> AutoPilot {
    AutoPilot::new(AutopilotConfig::fast(seed).with_budget(80))
}

#[test]
fn nano_dense_selection_is_balanced_at_the_knee() {
    let result = pilot(7)
        .run(&UavSpec::nano(), &TaskSpec::navigation(ObstacleDensity::Dense))
        .expect("pipeline runs");
    let sel = result.selection.expect("selection exists");
    let knee = sel.knee_fps.expect("knee exists");
    // The selected design sits at (or very near) the F-1 knee-point.
    assert!(
        (sel.candidate.fps - knee).abs() / knee < 0.35,
        "selected {:.1} FPS vs knee {knee:.1}",
        sel.candidate.fps
    );
    assert_ne!(sel.provisioning, Provisioning::OverProvisioned);
}

#[test]
fn selection_maximizes_missions_among_high_success_candidates() {
    let uav = UavSpec::micro();
    let task = TaskSpec::navigation(ObstacleDensity::Medium);
    let result = pilot(3).run(&uav, &task).expect("pipeline runs");
    let sel = result.selection.expect("selection");
    let threshold = result.phase2.best_success() - 0.02;
    for c in &result.phase2.candidates {
        if c.success_rate >= threshold.max(task.min_success_rate) {
            let m = Phase3::mission_report(&uav, &task, c).unwrap().missions;
            assert!(
                sel.missions.missions >= m * 0.97,
                "{} at {m:.1} missions beats the selection's {:.1}",
                c.policy,
                sel.missions.missions
            );
        }
    }
}

#[test]
fn selected_policy_matches_phase1_best_for_scenario() {
    // The Phase-3 success filter keeps AutoPilot on the highest-success
    // policies; for the dense scenario the surrogate's best is l7f48.
    let result = pilot(7)
        .run(&UavSpec::nano(), &TaskSpec::navigation(ObstacleDensity::Dense))
        .expect("pipeline runs");
    let sel = result.selection.expect("selection");
    let best = result
        .database
        .best_for(ObstacleDensity::Dense)
        .expect("database is well formed")
        .expect("phase 1 populated");
    assert!(
        sel.candidate.success_rate >= best.success_rate - 0.02,
        "selected success {:.2} too far below best {:.2}",
        sel.candidate.success_rate,
        best.success_rate
    );
}

#[test]
fn different_uavs_get_different_designs() {
    // The "no one size fits all" claim: the nano and the micro UAV end up
    // with different compute throughput targets in the same scenario.
    let task = TaskSpec::navigation(ObstacleDensity::Dense);
    let nano =
        pilot(7).run(&UavSpec::nano(), &task).expect("pipeline runs").selection.expect("nano");
    let micro =
        pilot(7).run(&UavSpec::micro(), &task).expect("pipeline runs").selection.expect("micro");
    let ratio = nano.candidate.fps / micro.candidate.fps;
    assert!(
        ratio > 1.2,
        "nano ({:.0} FPS) should need clearly more compute than micro ({:.0} FPS)",
        nano.candidate.fps,
        micro.candidate.fps
    );
}

#[test]
fn all_optimizers_complete_the_pipeline() {
    let task = TaskSpec::navigation(ObstacleDensity::Low);
    for optimizer in OptimizerChoice::ALL {
        let p = AutoPilot::new(AutopilotConfig::fast(5).with_budget(30).with_optimizer(optimizer));
        let result = p.run(&UavSpec::mini(), &task).expect("pipeline runs");
        assert!(result.selection.is_some(), "{} produced no selection", optimizer.name());
    }
}

#[test]
fn mission_counts_are_physically_plausible() {
    for uav in UavSpec::all() {
        let result = pilot(9)
            .run(&uav, &TaskSpec::navigation(ObstacleDensity::Medium))
            .expect("pipeline runs");
        if let Some(sel) = result.selection {
            // Missions * mission energy must not exceed the battery.
            let total = sel.missions.missions * sel.missions.mission_energy_j;
            let battery = uav.battery_energy_j();
            assert!(
                (total - battery).abs() / battery < 1e-6,
                "{}: energy accounting off ({total:.0} J vs battery {battery:.0} J)",
                uav.name
            );
            // Rotors dominate the power budget (MAVBench observation).
            assert!(sel.missions.rotor_power_fraction() > 0.5);
        }
    }
}

#[test]
fn phase1_database_round_trips_through_json() {
    let result = pilot(2)
        .run(&UavSpec::nano(), &TaskSpec::navigation(ObstacleDensity::Low))
        .expect("pipeline runs");
    let json = result.database.to_json().expect("serializes");
    let restored = air_sim::AirLearningDatabase::from_json(&json).expect("round trip");
    assert_eq!(result.database, restored);
    assert_eq!(restored.len(), 27);
}

//! Randomized property tests spanning crates: any legal joint design
//! point must evaluate to physically sensible numbers end to end.
//! Driven by seeded `autopilot-rng` streams (one deterministic stream
//! per test and case, so failures reproduce exactly).

use air_sim::{AirLearningDatabase, ObstacleDensity};
use autopilot::{DssocEvaluator, JointSpace, Phase1, Phase3, SuccessModel, TaskSpec};
use autopilot_rng::Rng;
use uav_dynamics::UavSpec;

const CASES: u64 = 48;

fn case_rng(tag: u64, case: u64) -> Rng {
    Rng::seed_stream(0xc40c_0000 + tag, case)
}

fn evaluator() -> DssocEvaluator {
    let mut db = AirLearningDatabase::new();
    Phase1::new(SuccessModel::Surrogate, 1).populate(ObstacleDensity::Medium, &mut db);
    DssocEvaluator::new(db, ObstacleDensity::Medium)
}

fn any_point(rng: &mut Rng) -> Vec<usize> {
    let mut point = vec![rng.below(9), rng.below(3)];
    point.extend((0..5).map(|_| rng.below(8)));
    point
}

/// Every joint design point produces finite, positive metrics.
#[test]
fn any_design_point_evaluates_sanely() {
    let ev = evaluator();
    for case in 0..CASES {
        let mut rng = case_rng(1, case);
        let point = any_point(&mut rng);
        let c = ev.evaluate_design(&point).expect("legal point evaluates");
        assert!(c.fps.is_finite() && c.fps > 0.0, "case {case}");
        assert!(c.latency_s > 0.0, "case {case}");
        assert!((0.0..=1.0).contains(&c.success_rate), "case {case}");
        assert!(c.soc_avg_w > 0.0 && c.soc_avg_w < 500.0, "case {case}");
        assert!(c.tdp_w >= c.soc_avg_w * 0.2, "case {case}");
        assert!(c.payload_g >= 20.0, "case {case}"); // at least the motherboard
        assert!(c.efficiency_fps_per_w > 0.0, "case {case}");
    }
}

/// Decode/encode round-trips over the whole space.
#[test]
fn joint_space_round_trips() {
    for case in 0..CASES {
        let mut rng = case_rng(2, case);
        let point = any_point(&mut rng);
        let (hyper, config) = JointSpace::decode(&point).expect("legal point decodes");
        let back = JointSpace::encode(
            hyper,
            config.rows(),
            config.cols(),
            config.ifmap_sram_bytes() / 1024,
            config.filter_sram_bytes() / 1024,
            config.ofmap_sram_bytes() / 1024,
        )
        .expect("decoded values are legal");
        assert_eq!(back, point, "case {case}");
    }
}

/// Mission count decreases (weakly) as compute payload grows, all else
/// equal.
#[test]
fn missions_monotone_in_payload() {
    for case in 0..CASES {
        let mut rng = case_rng(3, case);
        let base = rng.range_f64(20.0, 40.0);
        let extra = rng.range_f64(1.0, 60.0);
        let v = rng.range_f64(1.0, 9.0);
        let task = TaskSpec::navigation(ObstacleDensity::Medium);
        let uav = UavSpec::micro();
        let light = task.mission.evaluate(&uav, base, v, 0.5).unwrap();
        let heavy = task.mission.evaluate(&uav, base + extra, v, 0.5).unwrap();
        assert!(heavy.missions <= light.missions, "case {case}");
    }
}

/// Mission count increases with safe velocity, all else equal.
#[test]
fn missions_monotone_in_velocity() {
    for case in 0..CASES {
        let mut rng = case_rng(4, case);
        let v = rng.range_f64(1.0, 9.0);
        let dv = rng.range_f64(0.1, 3.0);
        let task = TaskSpec::navigation(ObstacleDensity::Medium);
        let uav = UavSpec::mini();
        let slow = task.mission.evaluate(&uav, 24.0, v, 0.5).unwrap();
        let fast = task.mission.evaluate(&uav, 24.0, v + dv, 0.5).unwrap();
        assert!(fast.missions > slow.missions, "case {case}");
    }
}

/// A design's mission report is deterministic.
#[test]
fn mission_report_deterministic() {
    let ev = evaluator();
    for case in 0..CASES {
        let mut rng = case_rng(5, case);
        let point = any_point(&mut rng);
        let c = ev.evaluate_design(&point).expect("legal point evaluates");
        let task = TaskSpec::navigation(ObstacleDensity::Medium);
        let a = Phase3::mission_report(&UavSpec::nano(), &task, &c).unwrap();
        let b = Phase3::mission_report(&UavSpec::nano(), &task, &c).unwrap();
        assert_eq!(a, b, "case {case}");
    }
}

//! Property-based tests spanning crates: any legal joint design point
//! must evaluate to physically sensible numbers end to end.

use air_sim::{AirLearningDatabase, ObstacleDensity};
use autopilot::{DssocEvaluator, JointSpace, Phase1, Phase3, SuccessModel, TaskSpec};
use proptest::prelude::*;
use uav_dynamics::UavSpec;

fn evaluator() -> DssocEvaluator {
    let mut db = AirLearningDatabase::new();
    Phase1::new(SuccessModel::Surrogate, 1).populate(ObstacleDensity::Medium, &mut db);
    DssocEvaluator::new(db, ObstacleDensity::Medium)
}

fn arb_point() -> impl Strategy<Value = Vec<usize>> {
    (0usize..9, 0usize..3, 0usize..8, 0usize..8, 0usize..8, 0usize..8, 0usize..8)
        .prop_map(|(a, b, c, d, e, f, g)| vec![a, b, c, d, e, f, g])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every joint design point produces finite, positive metrics.
    #[test]
    fn any_design_point_evaluates_sanely(point in arb_point()) {
        let ev = evaluator();
        let c = ev.evaluate_design(&point).expect("legal point evaluates");
        prop_assert!(c.fps.is_finite() && c.fps > 0.0);
        prop_assert!(c.latency_s > 0.0);
        prop_assert!((0.0..=1.0).contains(&c.success_rate));
        prop_assert!(c.soc_avg_w > 0.0 && c.soc_avg_w < 500.0);
        prop_assert!(c.tdp_w >= c.soc_avg_w * 0.2);
        prop_assert!(c.payload_g >= 20.0); // at least the motherboard
        prop_assert!(c.efficiency_fps_per_w > 0.0);
    }

    /// Decode/encode round-trips over the whole space.
    #[test]
    fn joint_space_round_trips(point in arb_point()) {
        let (hyper, config) = JointSpace::decode(&point).expect("legal point decodes");
        let back = JointSpace::encode(
            hyper,
            config.rows(),
            config.cols(),
            config.ifmap_sram_bytes() / 1024,
            config.filter_sram_bytes() / 1024,
            config.ofmap_sram_bytes() / 1024,
        ).expect("decoded values are legal");
        prop_assert_eq!(back, point);
    }

    /// Mission count decreases (weakly) as compute payload grows, all
    /// else equal.
    #[test]
    fn missions_monotone_in_payload(
        base in 20.0f64..40.0,
        extra in 1.0f64..60.0,
        v in 1.0f64..9.0,
    ) {
        let task = TaskSpec::navigation(ObstacleDensity::Medium);
        let uav = UavSpec::micro();
        let light = task.mission.evaluate(&uav, base, v, 0.5);
        let heavy = task.mission.evaluate(&uav, base + extra, v, 0.5);
        prop_assert!(heavy.missions <= light.missions);
    }

    /// Mission count increases with safe velocity, all else equal.
    #[test]
    fn missions_monotone_in_velocity(
        v in 1.0f64..9.0,
        dv in 0.1f64..3.0,
    ) {
        let task = TaskSpec::navigation(ObstacleDensity::Medium);
        let uav = UavSpec::mini();
        let slow = task.mission.evaluate(&uav, 24.0, v, 0.5);
        let fast = task.mission.evaluate(&uav, 24.0, v + dv, 0.5);
        prop_assert!(fast.missions > slow.missions);
    }

    /// A design's mission report is deterministic.
    #[test]
    fn mission_report_deterministic(point in arb_point()) {
        let ev = evaluator();
        let c = ev.evaluate_design(&point).expect("legal point evaluates");
        let task = TaskSpec::navigation(ObstacleDensity::Medium);
        let a = Phase3::mission_report(&UavSpec::nano(), &task, &c);
        let b = Phase3::mission_report(&UavSpec::nano(), &task, &c);
        prop_assert_eq!(a, b);
    }
}

//! Golden-frontier regression tests for the SWaP-constrained pipeline.
//!
//! For each regulatory weight class on its default catalog airframe, the
//! full pipeline runs in [`SwapMode::Constraint`] at a fixed seed and the
//! Phase-2 evaluation stream is fingerprinted (FNV-1a over every point
//! index and the exact bit pattern of every objective, as in
//! `crates/dse/tests/determinism.rs`). The fingerprints are pinned at 1,
//! 2, and 8 optimizer threads, so any change to the sampling stream, the
//! death-penalty arithmetic, or the airframe catalog fails loudly at
//! every thread count. A separate legacy golden pins scalar-payload mode
//! (swap pinned [`SwapMode::Off`] regardless of the environment): the
//! SWaP machinery must leave existing behaviour bit-identical.

// Helpers shared across #[test] fns fall outside `allow-unwrap-in-tests`.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use air_sim::ObstacleDensity;
use autopilot::{
    AutoPilot, AutopilotConfig, AutopilotResult, JobConfig, OptimizerChoice, SwapMode, TaskSpec,
};
use uav_dynamics::{Airframe, UavSpec};

const SEED: u64 = 7;
const BUDGET: usize = 48;

/// The four weight classes on their default catalog airframes (sub-250
/// flies the micro-UAV Table IV spec on the lighter airframe).
fn platforms() -> Vec<(&'static str, UavSpec)> {
    vec![
        ("nano", UavSpec::nano().with_airframe(Airframe::nano())),
        ("sub250", UavSpec::micro().with_airframe(Airframe::sub250())),
        ("micro", UavSpec::micro().with_airframe(Airframe::micro())),
        ("mini", UavSpec::mini().with_airframe(Airframe::mini())),
    ]
}

/// Runs the pipeline with the swap mode and thread count pinned
/// explicitly, so neither depends on the test environment.
fn run(uav: &UavSpec, swap: SwapMode, threads: usize) -> AutopilotResult {
    let config =
        AutopilotConfig::fast(SEED).with_optimizer(OptimizerChoice::Random).with_budget(BUDGET);
    let pilot = AutoPilot::new(config)
        .with_job_config(JobConfig::from_env().with_swap(swap).with_threads(threads));
    pilot.run(uav, &TaskSpec::navigation(ObstacleDensity::Low)).expect("pipeline runs")
}

/// FNV-1a over a byte slice, for order-sensitive run fingerprints.
fn fnv(h: u64, bytes: &[u8]) -> u64 {
    bytes.iter().fold(h, |h, &b| (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3))
}

/// Order-sensitive digest of the Phase-2 evaluation stream: every point
/// index and the exact bit pattern of every objective value.
fn fingerprint(result: &AutopilotResult) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for ev in &result.phase2.result.evaluations {
        for &idx in &ev.point {
            h = fnv(h, &(idx as u64).to_le_bytes());
        }
        for &obj in &ev.objectives {
            h = fnv(h, &obj.to_bits().to_le_bytes());
        }
    }
    h
}

/// Baked goldens: `(class, evaluation-stream fingerprint, final
/// hypervolume bits)` per weight class in constraint mode, plus the
/// legacy scalar-payload stream (which is UAV-independent, so one row
/// pins it for every platform).
/// To regenerate after an intentional change, set a fingerprint to `0`
/// and rerun with `-- --nocapture`: the test prints the replacement rows
/// instead of asserting.
const SWAP_GOLDENS: [(&str, u64, u64); 4] = [
    ("nano", 0xa224_f8ac_cf63_d6e3, 0x4078_de25_32d3_7ce9),
    ("sub250", 0x482f_f5fa_d0fa_dcec, 0x4078_deb2_f8e6_f928),
    // The micro and mini airframes reject nothing at this budget, so
    // their streams coincide with the legacy golden — the death penalty
    // is a no-op when every sampled payload fits.
    ("micro", 0xe341_f4a5_5b75_becb, 0x4078_deb2_f8e6_f928),
    ("mini", 0xe341_f4a5_5b75_becb, 0x4078_deb2_f8e6_f928),
];
const LEGACY_GOLDEN: (u64, u64) = (0xe341_f4a5_5b75_becb, 0x4078_deb2_f8e6_f928);

#[test]
fn swap_frontier_goldens_hold_at_every_thread_count() {
    for threads in [1usize, 2, 8] {
        for ((class, uav), (golden_class, fp, hv_bits)) in platforms().iter().zip(SWAP_GOLDENS) {
            assert_eq!(*class, golden_class, "weight-class order changed");
            let result = run(uav, SwapMode::Constraint, threads);
            if fp == 0 {
                eprintln!(
                    "golden: (\"{}\", 0x{:016x}, 0x{:016x}),",
                    class,
                    fingerprint(&result),
                    result.phase2.result.final_hypervolume().to_bits()
                );
                continue;
            }
            assert_eq!(
                fingerprint(&result),
                fp,
                "{class} SWaP evaluation stream diverged from golden at {threads} threads"
            );
            assert_eq!(
                result.phase2.result.final_hypervolume().to_bits(),
                hv_bits,
                "{class} final hypervolume diverged from golden at {threads} threads"
            );
            let selection = result.selection.as_ref().expect("swap run selects a design");
            let swap = selection.swap.as_ref().expect("constraint mode reports feasibility");
            assert!(swap.feasible(), "{class} selected design must satisfy the SWaP check");
        }
    }
}

#[test]
fn legacy_golden_holds_at_every_thread_count() {
    let (fp, hv_bits) = LEGACY_GOLDEN;
    for threads in [1usize, 2, 8] {
        for (class, uav) in platforms() {
            let result = run(&uav, SwapMode::Off, threads);
            if fp == 0 {
                if threads == 1 && class == "nano" {
                    eprintln!(
                        "golden: (0x{:016x}, 0x{:016x}),",
                        fingerprint(&result),
                        result.phase2.result.final_hypervolume().to_bits()
                    );
                }
                continue;
            }
            // Legacy Phase 2 is UAV-independent: one golden pins all four
            // platforms, proving the airframe cannot leak into scalar mode.
            assert_eq!(
                fingerprint(&result),
                fp,
                "legacy evaluation stream diverged on {class} at {threads} threads"
            );
            assert_eq!(
                result.phase2.result.final_hypervolume().to_bits(),
                hv_bits,
                "legacy hypervolume diverged on {class} at {threads} threads"
            );
            assert!(
                result.selection.as_ref().is_none_or(|s| s.swap.is_none()),
                "legacy mode must not report SWaP feasibility"
            );
        }
    }
}

#[test]
fn swap_penalty_changes_objectives_only_where_infeasible() {
    // Same seed, same optimizer: the sampled point stream is identical in
    // both modes; the death penalty may only rewrite objective values.
    let legacy = run(&platforms()[0].1, SwapMode::Off, 1);
    let swap = run(&platforms()[0].1, SwapMode::Constraint, 1);
    let (le, se) = (&legacy.phase2.result.evaluations, &swap.phase2.result.evaluations);
    assert_eq!(le.len(), se.len());
    let mut penalized = 0usize;
    for (l, s) in le.iter().zip(se) {
        assert_eq!(l.point, s.point, "swap mode must not alter the sampling stream");
        if l.objectives != s.objectives {
            penalized += 1;
        }
    }
    assert!(penalized > 0, "the nano airframe must penalize some heavy candidates");
    assert_ne!(fingerprint(&legacy), fingerprint(&swap));
}

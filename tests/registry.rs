//! Acceptance test for the runtime optimizer registry: an optimizer
//! defined *outside* the core crate, registered by name, runs the full
//! Phase-2 DSE end to end.

use air_sim::{AirLearningDatabase, ObstacleDensity};
use autopilot::{
    register_optimizer, registered_optimizers, DssocEvaluator, OptimizerContext, Phase1, Phase2,
    SuccessModel,
};
use dse_opt::{
    DesignSpace, DseError, EvaluationRecord, Evaluator, MultiObjectiveOptimizer,
    OptimizationResult, RunControl,
};

/// A deterministic diagonal sweep: walks the design space along its main
/// diagonal (clamping each coordinate to the dimension's cardinality).
/// Intentionally simplistic — the point is that it lives outside the
/// `autopilot` crate and still drives Phase 2.
struct DiagonalSweep {
    stride: usize,
}

impl MultiObjectiveOptimizer for DiagonalSweep {
    fn name(&self) -> &str {
        "diagonal-sweep"
    }

    fn run_controlled(
        &mut self,
        space: &DesignSpace,
        evaluator: &dyn Evaluator,
        budget: usize,
        control: &RunControl,
    ) -> Result<OptimizationResult, DseError> {
        let mut evaluations = Vec::new();
        for step in 0..budget {
            control.check()?;
            let level = step * self.stride;
            let point: Vec<usize> =
                (0..space.dims()).map(|d| level.min(space.cardinality(d) - 1)).collect();
            let objectives = evaluator.evaluate(&point)?;
            evaluations.push(EvaluationRecord { iteration: step, point, objectives });
        }
        Ok(OptimizationResult::from_history(
            self.name().to_string(),
            evaluations,
            evaluator.reference_point(),
        ))
    }
}

fn evaluator() -> DssocEvaluator {
    let mut db = AirLearningDatabase::new();
    Phase1::new(SuccessModel::Surrogate, 1).populate(ObstacleDensity::Medium, &mut db);
    DssocEvaluator::new(db, ObstacleDensity::Medium)
}

#[test]
fn custom_optimizer_runs_phase2_end_to_end() {
    register_optimizer("diagonal-sweep", |_ctx: &OptimizerContext| {
        Box::new(DiagonalSweep { stride: 1 })
    });
    assert!(registered_optimizers().contains(&"diagonal-sweep".to_string()));

    let out = Phase2::new("diagonal-sweep", 6, 11).run(&evaluator()).expect("phase 2 runs");
    assert_eq!(out.result.algorithm, "diagonal-sweep");
    assert_eq!(out.result.evaluation_count(), 6);
    assert!(!out.candidates.is_empty());
    for c in &out.candidates {
        assert!(c.fps.is_finite() && c.fps > 0.0);
        assert!((0.0..=1.0).contains(&c.success_rate));
    }
}

#[test]
fn custom_optimizer_is_deterministic_across_runs() {
    register_optimizer("diagonal-sweep-2", |_ctx: &OptimizerContext| {
        Box::new(DiagonalSweep { stride: 2 })
    });
    let ev = evaluator();
    let a = Phase2::new("diagonal-sweep-2", 4, 3).run(&ev).expect("run a");
    let b = Phase2::new("diagonal-sweep-2", 4, 3).run(&ev).expect("run b");
    assert_eq!(a.result, b.result);
    assert_eq!(a.candidates, b.candidates);
}

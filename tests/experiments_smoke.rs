//! Smoke tests over the lighter paper-reproduction experiments (the
//! heavy nine-pipeline runs are exercised by the `repro_all` binary).

use autopilot_bench::experiments as ex;

#[test]
fn fig2b_report_is_complete() {
    let r = ex::fig2b::run();
    // All 27 models, three scenario columns, paper picks named.
    for h in policy_nn::PolicyHyperparams::enumerate() {
        assert!(r.contains(&h.id()), "missing {}", h.id());
    }
    assert!(r.contains("best model for low: 5 layers x 32 filters"));
    assert!(r.contains("best model for medium: 4 layers x 48 filters"));
    assert!(r.contains("best model for dense: 7 layers x 48 filters"));
}

#[test]
fn fig3b_reports_a_pareto_frontier() {
    let r = ex::fig3b::run();
    assert!(r.contains("Pareto-optimal"));
    assert!(r.contains("latency span"));
}

#[test]
fn table2_reports_the_space() {
    let r = ex::table2::run();
    assert!(r.contains("884736"));
    assert!(r.contains("# PE Row"));
}

#[test]
fn table3_reports_components_and_band() {
    let r = ex::table3::run();
    assert!(r.contains("Systolic array"));
    assert!(r.contains("OV9755"));
}

#[test]
fn dataflow_ablation_prefers_a_dataflow_consistently() {
    let r = ex::ablations::run_dataflows();
    assert!(r.contains("l7f48"));
    assert!(r.lines().count() > 9);
}

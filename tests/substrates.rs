//! Cross-crate checks over the extension substrates: the event-driven
//! systolic engine, the SPA pipeline, source seeking, batteries, and the
//! export/preset helpers.

use air_sim::source_seeking::SourceSeeker;
use air_sim::spa::SpaAgent;
use air_sim::ObstacleDensity;
use policy_nn::{model_summary, PolicyHyperparams, PolicyModel};
use systolic_sim::engine::execute_layer;
use systolic_sim::{export, presets, ArrayConfig, Simulator};
use uav_dynamics::{Battery, BrakingSim, F1Model, UavSpec};

#[test]
fn event_engine_validates_analytic_model_on_the_policy_network() {
    // The whole dense-scenario policy, layer by layer, on the AP-class
    // configuration: the two independent timing models must agree.
    let model = PolicyModel::build(PolicyHyperparams::new(7, 48).unwrap());
    let config = ArrayConfig::builder().rows(16).cols(16).build().unwrap();
    let sim = Simulator::new(config.clone());
    let mut analytic_total = 0u64;
    let mut event_total = 0u64;
    for layer in model.layers() {
        analytic_total += sim.simulate_layer(layer).total_cycles;
        event_total += execute_layer(&config, layer).total_cycles;
    }
    let ratio = event_total as f64 / analytic_total as f64;
    assert!(
        (0.8..=1.25).contains(&ratio),
        "event {event_total} vs analytic {analytic_total} ({ratio:.2})"
    );
}

#[test]
fn csv_export_covers_the_policy_network() {
    let model = PolicyModel::build(PolicyHyperparams::new(4, 32).unwrap());
    let sim = Simulator::new(presets::edge_tpu_like());
    let stats = sim.simulate_network(model.layers());
    let csv = export::network_csv(&stats);
    // Header + one row per layer + totals.
    assert_eq!(csv.lines().count(), model.layers().len() + 2);
}

#[test]
fn model_summary_matches_simulated_macs() {
    let model = PolicyModel::build(PolicyHyperparams::new(5, 32).unwrap());
    let summary = model_summary(&model);
    let sim = Simulator::new(ArrayConfig::default());
    let stats = sim.simulate_network(model.layers());
    assert_eq!(stats.total_macs(), model.mac_count());
    assert!(summary.contains("l5f32"));
}

#[test]
fn spa_and_source_seeking_share_the_capacity_story() {
    // Both alternative task formulations must improve (weakly) with model
    // capacity, like the navigation trainer.
    let small = PolicyModel::build(PolicyHyperparams::new(2, 32).unwrap());
    let large = PolicyModel::build(PolicyHyperparams::new(10, 64).unwrap());
    let miss = |m: &PolicyModel| air_sim::QTrainer::miss_probability(m);

    let spa_small = SpaAgent::new(5, miss(&small)).evaluate(ObstacleDensity::Dense, 80);
    let spa_large = SpaAgent::new(5, miss(&large)).evaluate(ObstacleDensity::Dense, 80);
    assert!(spa_large.success_rate >= spa_small.success_rate);

    let seek_small = SourceSeeker::for_model(5, &small).evaluate(ObstacleDensity::Dense, 150);
    let seek_large = SourceSeeker::for_model(5, &large).evaluate(ObstacleDensity::Dense, 150);
    assert!(seek_large.success_rate > seek_small.success_rate);
}

#[test]
fn braking_sim_validates_f1_velocities_for_all_platforms() {
    let sim = BrakingSim::new();
    for uav in UavSpec::all() {
        let f1 = F1Model::new(uav.clone(), 24.0, 60.0).unwrap();
        let t = f1.response_time_s(46.0);
        let analytic =
            uav_dynamics::safe_velocity(f1.payload().max_accel_ms2, t, uav.sensor_range_m);
        let empirical = sim.max_safe_velocity(f1.payload().max_accel_ms2, t, uav.sensor_range_m);
        assert!(
            (analytic - empirical).abs() / analytic < 0.01,
            "{}: {analytic:.2} vs {empirical:.2}",
            uav.name
        );
    }
}

#[test]
fn battery_derating_reduces_missions_consistently() {
    // The ideal pack matches the spec's plate energy; a LiPo under a
    // realistic mission load delivers (weakly) less.
    for spec in UavSpec::all() {
        let ideal = Battery::ideal(spec.battery_mah, spec.battery_v);
        let lipo = Battery::lipo(spec.battery_mah, spec.battery_v);
        assert!((ideal.rated_energy_j() - spec.battery_energy_j()).abs() < 1e-9);
        let load = 6.0 * spec.battery_v * spec.battery_mah / 1000.0; // ~6C
        assert!(lipo.usable_energy_j(load) <= ideal.usable_energy_j(load));
    }
}

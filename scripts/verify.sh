#!/usr/bin/env bash
# Full local verification: formatting, lints, and the workspace test
# suite. This is what CI runs; run it before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test -q --workspace

echo "verify: OK"

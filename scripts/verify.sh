#!/usr/bin/env bash
# Full local verification: formatting, lints, and the workspace test
# suite. This is what CI runs; run it before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> hermeticity gate: offline locked build (no registry, no network)"
# The workspace must build from the committed Cargo.lock with zero
# external crates. This is the first gate so any reintroduced
# third-party dependency fails fast, before lints or tests run.
cargo build --workspace --offline --locked

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, warnings are errors)"
# -D warnings also promotes the workspace panic-free lints
# (clippy::unwrap_used / clippy::expect_used, see Cargo.toml) to errors
# for the library crates that opt in; tests/benches are exempt via
# clippy.toml.
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test -q --workspace

echo "==> telemetry smoke (obs_smoke: small experiment + JSON validation)"
# Runs a small two-UAV scenario with metrics forced on, writes
# results/telemetry_obs_smoke.json, parses it back, and asserts the
# snapshot carries non-zero span and cache-counter data.
AUTOPILOT_OBS=1 cargo run -q --release -p autopilot-bench --bin obs_smoke

echo "==> phase-2 perf guard (fast timing probe)"
# Reduced-budget probe (AUTOPILOT_BENCH_FAST trims the BO budget and
# skips the tracked-copy write). Guards against performance regressions:
# the memoized sequential run must not be slower than the uncached
# baseline, and the batched acquisition path must be measured at all.
AUTOPILOT_BENCH_FAST=1 cargo run -q --release -p autopilot-bench --bin timing_probe >/dev/null
bench_json=results/BENCH_phase2.json
grep -q '"acquisition_batch_speedup"' "$bench_json" || {
    echo "verify: FAIL — acquisition_batch_speedup missing from $bench_json" >&2
    exit 1
}
speedup=$(grep -o '"speedup_single_thread": *[0-9.eE+-]*' "$bench_json" | head -1 \
    | sed 's/.*: *//')
if [ -z "$speedup" ]; then
    echo "verify: FAIL — speedup_single_thread missing from $bench_json" >&2
    exit 1
fi
awk -v s="$speedup" 'BEGIN { exit (s + 0 >= 1.0) ? 0 : 1 }' || {
    echo "verify: FAIL — speedup_single_thread=$speedup < 1.0 (perf regression)" >&2
    exit 1
}
echo "perf guard: speedup_single_thread=$speedup"

echo "verify: OK"

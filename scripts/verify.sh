#!/usr/bin/env bash
# Full local verification: formatting, lints, and the workspace test
# suite. This is what CI runs; run it before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> hermeticity gate: offline locked build (no registry, no network)"
# The workspace must build from the committed Cargo.lock with zero
# external crates. This is the first gate so any reintroduced
# third-party dependency fails fast, before lints or tests run.
cargo build --workspace --offline --locked

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, warnings are errors)"
# -D warnings also promotes the workspace panic-free lints
# (clippy::unwrap_used / clippy::expect_used, see Cargo.toml) to errors
# for the library crates that opt in; tests/benches are exempt via
# clippy.toml.
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test -q --workspace

echo "==> telemetry smoke (obs_smoke: small experiment + JSON validation)"
# Runs a small two-UAV scenario with metrics forced on, writes
# results/telemetry_obs_smoke.json, parses it back, and asserts the
# snapshot carries non-zero span and cache-counter data.
AUTOPILOT_OBS=1 cargo run -q --release -p autopilot-bench --bin obs_smoke

echo "==> phase-2 perf guard (fast timing probe)"
# Reduced-budget probe (AUTOPILOT_BENCH_FAST trims the BO budget and
# skips the tracked-copy write). Guards against performance regressions:
# the memoized sequential run must not be slower than the uncached
# baseline, and the batched acquisition path must be measured at all.
AUTOPILOT_BENCH_FAST=1 cargo run -q --release -p autopilot-bench --bin timing_probe >/dev/null
bench_json=results/BENCH_phase2.json
grep -q '"acquisition_batch_speedup"' "$bench_json" || {
    echo "verify: FAIL — acquisition_batch_speedup missing from $bench_json" >&2
    exit 1
}
speedup=$(grep -o '"speedup_single_thread": *[0-9.eE+-]*' "$bench_json" | head -1 \
    | sed 's/.*: *//')
if [ -z "$speedup" ]; then
    echo "verify: FAIL — speedup_single_thread missing from $bench_json" >&2
    exit 1
fi
awk -v s="$speedup" 'BEGIN { exit (s + 0 >= 1.0) ? 0 : 1 }' || {
    echo "verify: FAIL — speedup_single_thread=$speedup < 1.0 (perf regression)" >&2
    exit 1
}
echo "perf guard: speedup_single_thread=$speedup"

echo "==> phase-2 scale guard (budget-2000 sparse-surrogate probe)"
# Large-budget probe of the scalable-inference path: sparse GPs must
# engage past the SurrogateMode threshold, and the acquisition-scoring
# span — the historical hot path — must stay at or below half the
# phase-2 run span. Also requires the sparse-vs-exact batched inference
# speedup to have been measured at all.
AUTOPILOT_BENCH_FAST=1 AUTOPILOT_BENCH_BUDGET=2000 \
    cargo run -q --release -p autopilot-bench --bin timing_probe >/dev/null
scale_json=results/BENCH_phase2_scale.json
grep -q '"gp_sparse_speedup"' "$scale_json" || {
    echo "verify: FAIL — gp_sparse_speedup missing from $scale_json" >&2
    exit 1
}
score_s=$(grep -o '"span_bo_acquisition_score_s": *[0-9.eE+-]*' "$scale_json" | head -1 \
    | sed 's/.*: *//')
run_s=$(grep -o '"span_phase2_run_s": *[0-9.eE+-]*' "$scale_json" | head -1 \
    | sed 's/.*: *//')
if [ -z "$score_s" ] || [ -z "$run_s" ]; then
    echo "verify: FAIL — acquisition/run spans missing from $scale_json" >&2
    exit 1
fi
awk -v a="$score_s" -v b="$run_s" 'BEGIN { exit (a + 0 <= 0.5 * (b + 0)) ? 0 : 1 }' || {
    echo "verify: FAIL — acquisition score span ${score_s}s > 50% of run span ${run_s}s" >&2
    exit 1
}
echo "scale guard: score span ${score_s}s / run span ${run_s}s"

echo "verify: OK"

#!/usr/bin/env bash
# Full local verification: formatting, lints, and the workspace test
# suite. This is what CI runs; run it before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> hermeticity gate: offline locked build (no registry, no network)"
# The workspace must build from the committed Cargo.lock with zero
# external crates. This is the first gate so any reintroduced
# third-party dependency fails fast, before lints or tests run.
cargo build --workspace --offline --locked

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, warnings are errors)"
# -D warnings also promotes the workspace panic-free lints
# (clippy::unwrap_used / clippy::expect_used, see Cargo.toml) to errors
# for the library crates that opt in; tests/benches are exempt via
# clippy.toml.
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test -q --workspace

echo "==> telemetry smoke (obs_smoke: small experiment + JSON validation)"
# Runs a small two-UAV scenario with metrics forced on, writes
# results/telemetry_obs_smoke.json, parses it back, and asserts the
# snapshot carries non-zero span and cache-counter data.
AUTOPILOT_OBS=1 cargo run -q --release -p autopilot-bench --bin obs_smoke

echo "verify: OK"

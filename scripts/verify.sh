#!/usr/bin/env bash
# Full local verification: formatting, lints, and the workspace test
# suite. This is what CI runs; run it before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> hermeticity gate: offline locked build (no registry, no network)"
# The workspace must build from the committed Cargo.lock with zero
# external crates. This is the first gate so any reintroduced
# third-party dependency fails fast, before lints or tests run.
cargo build --workspace --offline --locked

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, warnings are errors)"
# -D warnings also promotes the workspace panic-free lints
# (clippy::unwrap_used / clippy::expect_used, see Cargo.toml) to errors
# for the library crates that opt in; tests/benches are exempt via
# clippy.toml.
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test -q --workspace

echo "==> env matrix (goldens invariant under AUTOPILOT_SWAP x AUTOPILOT_GP_SPARSE x AUTOPILOT_GP_FASTEXP)"
# The golden tests pin the swap mode per run via JobConfig, so the
# environment knobs must not leak into them: the legacy fingerprints
# (and the constraint-mode ones) have to hold in every env corner,
# including both kernel-exponential modes.
for swap in 0 1; do
    for sparse in 0 1; do
        for fastexp in 0 1; do
            echo "    AUTOPILOT_SWAP=$swap AUTOPILOT_GP_SPARSE=$sparse AUTOPILOT_GP_FASTEXP=$fastexp"
            AUTOPILOT_SWAP=$swap AUTOPILOT_GP_SPARSE=$sparse AUTOPILOT_GP_FASTEXP=$fastexp \
                cargo test -q --test swap_goldens >/dev/null
        done
    done
done

echo "==> telemetry smoke (obs_smoke: small experiment + JSON validation)"
# Runs a small two-UAV scenario with metrics forced on, writes
# results/telemetry_obs_smoke.json, parses it back, and asserts the
# snapshot carries non-zero span, cache-counter, and histogram-quantile
# data.
AUTOPILOT_OBS=1 cargo run -q --release -p autopilot-bench --bin obs_smoke

echo "==> tracing smoke (trace_smoke: recorder semantics + overhead bound)"
# Exercises the per-event trace recorder on a 2-worker Phase-2 run:
# begin/end pairing, cross-thread flow linkage, export/parse round-trip,
# and a generous traced-vs-untraced overhead bound.
cargo run -q --release -p autopilot-bench --bin trace_smoke

echo "==> phase-2 perf probe (fast timing probe, traced)"
# Reduced-budget probe (AUTOPILOT_BENCH_FAST trims the BO budget and
# skips the end-to-end pipeline run) with per-event tracing on, so the
# flamegraph gate below sees a real trace. It refreshes the tracked
# results/BENCH_phase2.json in place; the numeric guards moved to the
# budget gate at the end.
AUTOPILOT_BENCH_FAST=1 AUTOPILOT_TRACE=1 \
    cargo run -q --release -p autopilot-bench --bin timing_probe >/dev/null
bench_json=results/BENCH_phase2.json
grep -q '"acquisition_batch_speedup"' "$bench_json" || {
    echo "verify: FAIL — acquisition_batch_speedup missing from $bench_json" >&2
    exit 1
}

echo "==> flamegraph gate (trace_report over the probe trace)"
# The phase-2 hot path must still decompose into GP prediction and
# hypervolume scoring under the acquisition span; a missing span means
# the instrumentation (or the pipeline itself) silently changed shape.
cargo run -q --release -p autopilot-bench --bin trace_report -- \
    results/trace_timing_probe.json \
    --require bo.acquisition.gp_predict --require bo.acquisition.hv_score \
    --top 10

echo "==> phase-2 scale probe (budget-2000 sparse-surrogate probe)"
# Large-budget probe of the scalable-inference path: sparse GPs engage
# past the SurrogateMode threshold and the narrowed exact window slides
# by Cholesky downdates. Tracing stays off here so the budget-gated
# span ratios measure the untraced pipeline.
AUTOPILOT_BENCH_FAST=1 AUTOPILOT_BENCH_BUDGET=2000 \
    cargo run -q --release -p autopilot-bench --bin timing_probe >/dev/null
scale_json=results/BENCH_phase2_scale.json
grep -q '"gp_sparse_speedup"' "$scale_json" || {
    echo "verify: FAIL — gp_sparse_speedup missing from $scale_json" >&2
    exit 1
}

echo "==> service smoke (serve_smoke: HTTP server + cross-run shared caches)"
# Boots the co-design server on an ephemeral port, runs two concurrent
# same-scenario jobs over real TCP, checks the second is served from the
# first's sharded caches, that results are bit-identical to the CLI
# path, and that /metrics round-trips. Writes
# results/telemetry_serve_smoke.json for the budget gate below.
cargo run -q --release -p autopilot-serve --bin serve_smoke

echo "==> SWaP frontier sweep (per-weight-class frontiers + rejection telemetry)"
# Runs the constraint-mode pipeline once per regulatory weight class and
# writes results/frontier_<class>.csv, frontiers_swap.json,
# BENCH_frontiers.json, and telemetry_frontiers.json; the budget gate
# floors the per-class frontier sizes and the phase3.swap.rejected
# counter against them.
AUTOPILOT_OBS=1 cargo run -q --release -p autopilot-bench --bin frontiers >/dev/null
grep -q '"frontier_sub250"' results/BENCH_frontiers.json || {
    echo "verify: FAIL — frontier_sub250 missing from results/BENCH_frontiers.json" >&2
    exit 1
}

echo "==> perf budget gate (results/BASELINE_budgets.json)"
# Every checked-in budget is evaluated against the freshly generated
# probe/telemetry JSON above; any breach fails with a PASS/FAIL diff.
cargo run -q --release -p autopilot-bench --bin budget_gate

echo "verify: OK"

//! Package delivery over sparse farmland: a mini-UAV in the low-obstacle
//! scenario, compared against simply bolting on a Jetson TX2.
//!
//! The paper's intro motivates AutoPilot with exactly this kind of
//! deployment economics: more missions per charge means more packages
//! delivered per day and less downtime recharging.
//!
//! ```sh
//! cargo run --release --example package_delivery
//! ```

use air_sim::ObstacleDensity;
use autopilot::{AutoPilot, AutopilotConfig, BaselineBoard, TaskSpec};
use policy_nn::PolicyModel;
use uav_dynamics::{MissionProfile, UavSpec};

fn main() {
    let uav = UavSpec::mini();
    // 500 m delivery legs instead of the default arena traversal.
    let mut task = TaskSpec::navigation(ObstacleDensity::Low);
    task.mission = MissionProfile::new(500.0);

    let pilot = AutoPilot::new(AutopilotConfig::fast(11));
    let result = pilot.run(&uav, &task).expect("pipeline runs");
    let sel = result.selection.expect("mini-UAV selection");

    println!("--- AutoPilot DSSoC ---");
    println!(
        "policy {} on {}x{} PEs @ {:.0} MHz: {:.0} FPS, {:.1} g payload",
        sel.candidate.policy,
        sel.candidate.config.rows(),
        sel.candidate.config.cols(),
        sel.candidate.config.clock_mhz(),
        sel.candidate.fps,
        sel.candidate.payload_g
    );
    println!(
        "cruise {:.1} m/s -> {:.1} deliveries per charge ({:.0} s each)",
        sel.missions.v_safe_ms, sel.missions.missions, sel.missions.mission_time_s
    );

    println!();
    println!("--- off-the-shelf alternative ---");
    let model = PolicyModel::build(sel.candidate.policy);
    let tx2 =
        BaselineBoard::jetson_tx2().evaluate(&uav, &task, &model).expect("valid board payload");
    println!(
        "Jetson TX2 ({} g, {} W): cruise {:.1} m/s -> {:.1} deliveries per charge",
        tx2.board.weight_g, tx2.board.power_w, tx2.missions.v_safe_ms, tx2.missions.missions
    );
    println!();
    let gain = sel.missions.missions / tx2.missions.missions;
    println!(
        "AutoPilot delivers {gain:.2}x more packages per battery charge; over a 200-charge \
         battery lifetime that is {:.0} extra deliveries.",
        (sel.missions.missions - tx2.missions.missions) * 200.0
    );
}

//! Quickstart: design a DSSoC for a nano-UAV flying dense clutter.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use air_sim::ObstacleDensity;
use autopilot::{AutoPilot, AutopilotConfig, TaskSpec};
use uav_dynamics::UavSpec;

fn main() {
    // 1. Pick a UAV platform and describe the task.
    let uav = UavSpec::nano();
    let task = TaskSpec::navigation(ObstacleDensity::Dense);

    // 2. Run the three-phase AutoPilot pipeline.
    let pilot = AutoPilot::new(AutopilotConfig::fast(7));
    let result = pilot.run(&uav, &task).expect("pipeline runs");

    // 3. Inspect the selected design.
    let sel = result.selection.expect("a flyable design exists for the nano-UAV");
    let c = &sel.candidate;
    println!("UAV:      {} ({})", uav.name, uav.class);
    println!("scenario: {} obstacles, sensor {} FPS", task.density, task.sensor_fps);
    println!();
    println!(
        "selected policy:      {} ({:.1} M parameters, success {:.0}%)",
        c.policy,
        policy_nn::PolicyModel::build(c.policy).parameter_count() as f64 / 1e6,
        c.success_rate * 100.0
    );
    println!(
        "selected accelerator: {}x{} PEs, {}/{}/{} KB scratchpads @ {:.0} MHz",
        c.config.rows(),
        c.config.cols(),
        c.config.ifmap_sram_bytes() / 1024,
        c.config.filter_sram_bytes() / 1024,
        c.config.ofmap_sram_bytes() / 1024,
        c.config.clock_mhz()
    );
    println!(
        "performance:          {:.0} FPS at {:.2} W SoC average ({:.2} W TDP, {:.1} g payload)",
        c.fps, c.soc_avg_w, c.tdp_w, c.payload_g
    );
    println!(
        "full-system outcome:  {:.2} m/s safe velocity -> {:.0} missions per charge ({:?}, knee {:?} FPS)",
        sel.missions.v_safe_ms,
        sel.missions.missions,
        sel.provisioning,
        sel.knee_fps.map(|k| k.round())
    );
    if let Some(ft) = &sel.fine_tuning {
        println!(
            "fine-tuning:          clock moved to {:.0} MHz ({:.0} -> {:.0} missions)",
            ft.clock_mhz, ft.missions_before, ft.missions_after
        );
    }
}

//! Compare the Phase-2 optimizers (SMS-EGO Bayesian optimization,
//! NSGA-II, simulated annealing, random search) on the real DSSoC
//! evaluator at an equal budget, using normalized-objective hypervolume
//! and IGD against the pooled Pareto front.
//!
//! ```sh
//! cargo run --release --example optimizer_comparison
//! ```

fn main() {
    println!(
        "joint space: {} points; running every optimizer at an 80-evaluation budget...\n",
        autopilot::JointSpace::size()
    );
    let report = autopilot_bench::experiments::ablations::run_optimizers(80);
    println!("{report}");
    println!(
        "The paper uses SMS-EGO Bayesian optimization for Phase 2 and lists GA, SA, and\n\
         RL as drop-in replacements; higher hypervolume / lower IGD at equal budget\n\
         means better coverage of the (success, power, latency) trade-off."
    );
}

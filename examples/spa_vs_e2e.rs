//! Sense-Plan-Act vs. end-to-end learning on the same arenas, with an
//! ASCII visualization of one SPA flight.
//!
//! ```sh
//! cargo run --release --example spa_vs_e2e
//! ```

use air_sim::spa::{astar, OccupancyGrid, SpaAgent};
use air_sim::{EnvironmentGenerator, ObstacleDensity, QTrainer};
use policy_nn::{PolicyHyperparams, PolicyModel};

fn main() {
    let model = PolicyModel::build(PolicyHyperparams::new(7, 48).expect("in space"));
    let miss = QTrainer::miss_probability(&model);

    println!("comparing paradigms at matched perception quality (miss = {miss:.2})\n");
    for density in [ObstacleDensity::Low, ObstacleDensity::Dense] {
        let e2e =
            QTrainer::new(7).with_episodes(800).with_eval_episodes(200).train(&model, density);
        let spa = SpaAgent::new(7, miss).evaluate(density, 200);
        println!("{density}:");
        println!(
            "  E2E  success {:.0}%  (one {:.0} MMAC forward pass per decision, acceleratable)",
            e2e.success_rate * 100.0,
            model.mac_count() as f64 / 1e6
        );
        println!(
            "  SPA  success {:.0}%  ({} map updates + {} A* expansions per decision, CPU-bound)",
            spa.success_rate * 100.0,
            spa.mean_workload.map_updates,
            spa.mean_workload.planner_expansions
        );
    }

    // Visualize one SPA plan on a dense arena with perfect perception.
    println!("\none dense arena with the A* plan (S start, G goal, # obstacle, * path):\n");
    let mut generator = EnvironmentGenerator::new(ObstacleDensity::Dense, 11);
    let arena = generator.next_arena();
    let mut grid = OccupancyGrid::new(arena.size());
    for y in 0..arena.size() {
        for x in 0..arena.size() {
            grid.observe(x, y, arena.blocked(x as isize, y as isize));
            grid.observe(x, y, arena.blocked(x as isize, y as isize));
        }
    }
    match astar(&grid, arena.start(), arena.goal()) {
        Some((path, expansions)) => {
            println!("{}", arena.render_ascii(&path));
            println!("path length {} cells, {} expansions", path.len(), expansions);
        }
        None => println!("no path found (unexpected for a solvable arena)"),
    }
}

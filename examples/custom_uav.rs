//! Bring-your-own UAV: define a racing quad that is not in Table IV and
//! let AutoPilot design its DSSoC. Demonstrates that the methodology
//! generalizes beyond the paper's three platforms (Section VII).
//!
//! ```sh
//! cargo run --release --example custom_uav
//! ```

use air_sim::ObstacleDensity;
use autopilot::{AutoPilot, AutopilotConfig, TaskSpec};
use uav_dynamics::{F1Model, UavClass, UavSpec};

fn main() {
    // A 5-inch FPV racing quad: light, brutally overpowered, short-range
    // perception at high speed.
    let racer = UavSpec {
        name: "5-inch racing quad".to_owned(),
        class: UavClass::Micro,
        battery_mah: 1300.0,
        battery_v: 14.8,
        base_weight_g: 420.0,
        base_thrust_to_weight: 4.0,
        rotor_area_m2: 0.0324, // 4 x 5-inch props
        figure_of_merit: 0.42,
        sensor_range_m: 6.0,
        control_latency_s: 0.5e-3, // 2 kHz racing firmware
        other_electronics_w: 3.0,
        sensor_fps_options: vec![60.0, 90.0],
        airframe: None,
    };

    // Racing gates are a dense-obstacle scenario with a fast camera.
    let task = TaskSpec::navigation(ObstacleDensity::Dense).with_sensor_fps(90.0);

    // How demanding is this platform before we even pick compute?
    let f1 = F1Model::new(racer.clone(), 24.0, task.sensor_fps).expect("valid payload");
    println!(
        "platform physics: a_max {:.1} m/s^2, ceiling {:.1} m/s, knee {:?} FPS",
        f1.payload().max_accel_ms2,
        f1.velocity_ceiling(),
        f1.knee_fps().map(|k| k.round())
    );

    let pilot = AutoPilot::new(AutopilotConfig::fast(21));
    let result = pilot.run(&racer, &task).expect("pipeline runs");
    match result.selection {
        Some(sel) => {
            println!(
                "selected {} on {}x{} @ {:.0} MHz -> {:.0} FPS ({:?})",
                sel.candidate.policy,
                sel.candidate.config.rows(),
                sel.candidate.config.cols(),
                sel.candidate.config.clock_mhz(),
                sel.candidate.fps,
                sel.provisioning,
            );
            println!(
                "race pace {:.1} m/s, {:.0} laps per pack",
                sel.missions.v_safe_ms, sel.missions.missions
            );
            // Compare against the nano-UAV pick: agility demands more
            // compute (the Fig. 11 effect on a platform the paper never
            // evaluated).
            let nano = pilot
                .run(&UavSpec::nano(), &TaskSpec::navigation(ObstacleDensity::Dense))
                .expect("pipeline runs");
            if let Some(nano_sel) = nano.selection {
                println!(
                    "for reference, the nano-UAV pick runs at {:.0} FPS; the racer needs {:.1}x that",
                    nano_sel.candidate.fps,
                    sel.candidate.fps / nano_sel.candidate.fps
                );
            }
        }
        None => println!("no flyable design: {}", result.selection_error.unwrap_or_default()),
    }
}

//! Search-and-rescue in a cluttered forest: a nano-UAV in the dense
//! scenario, including a sensor trade study (30 vs. 60 FPS cameras) on
//! the F-1 roofline.
//!
//! ```sh
//! cargo run --release --example search_and_rescue
//! ```

use air_sim::ObstacleDensity;
use autopilot::{AutoPilot, AutopilotConfig, TaskSpec};
use uav_dynamics::{F1Model, UavSpec};

fn main() {
    let uav = UavSpec::nano();
    let pilot = AutoPilot::new(AutopilotConfig::fast(5));

    for sensor_fps in [30.0, 60.0] {
        let task = TaskSpec::navigation(ObstacleDensity::Dense).with_sensor_fps(sensor_fps);
        let result = pilot.run(&uav, &task).expect("pipeline runs");
        let Some(sel) = result.selection else {
            println!("{sensor_fps:.0} FPS sensor: no flyable design");
            continue;
        };
        println!("=== {sensor_fps:.0} FPS camera ===");
        println!(
            "selected {} on {}x{} @ {:.0} MHz -> {:.0} FPS compute, knee {:?} FPS ({:?})",
            sel.candidate.policy,
            sel.candidate.config.rows(),
            sel.candidate.config.cols(),
            sel.candidate.config.clock_mhz(),
            sel.candidate.fps,
            sel.knee_fps.map(|k| k.round()),
            sel.provisioning,
        );
        println!(
            "search speed {:.2} m/s, {:.0} sweeps per charge",
            sel.missions.v_safe_ms, sel.missions.missions
        );

        // Print the roofline this design sits on.
        let f1 =
            F1Model::new(uav.clone(), sel.candidate.payload_g, sensor_fps).expect("valid payload");
        let curve = f1.curve(8);
        println!("F-1 roofline (throughput FPS -> safe velocity m/s):");
        for (f, v) in &curve.samples {
            println!("  {f:>6.1} -> {v:.2}");
        }
        println!("  ceiling {:.2} m/s\n", curve.ceiling);
    }

    println!(
        "A faster camera raises the roofline ceiling, and AutoPilot re-balances the \
         accelerator to the new knee instead of reusing the 30 FPS design."
    );
}

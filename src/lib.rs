//! # autopilot-suite
//!
//! Workspace umbrella crate for the AutoPilot reproduction. It re-exports
//! every member crate so the workspace-level examples (`examples/`) and
//! cross-crate integration tests (`tests/`) have a single import root.
//!
//! The actual functionality lives in the member crates:
//!
//! * [`autopilot`] — the three-phase DSSoC design methodology (the paper's
//!   primary contribution);
//! * [`systolic_sim`] — SCALE-Sim-like accelerator simulator;
//! * [`policy_nn`] — parameterized E2E policy model template;
//! * [`soc_power`] — SRAM/DRAM/PE power, thermal, and weight models;
//! * [`uav_dynamics`] — UAV physics, safety model, F-1 roofline, missions;
//! * [`air_sim`] — domain-randomized environments and RL training;
//! * [`dse_opt`] — multi-objective Bayesian optimization and baselines.

#![forbid(unsafe_code)]

pub use air_sim;
pub use autopilot;
pub use dse_opt;
pub use policy_nn;
pub use soc_power;
pub use systolic_sim;
pub use uav_dynamics;

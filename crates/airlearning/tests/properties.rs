//! Property-based tests for the Air Learning substrate.

use air_sim::spa::{astar, OccupancyGrid};
use air_sim::{
    AirLearningDatabase, EnvironmentGenerator, ObstacleDensity, PolicyRecord, SuccessSurrogate,
    TrainingMethod,
};
use policy_nn::{PolicyHyperparams, PolicyModel};
use proptest::prelude::*;

fn arb_density() -> impl Strategy<Value = ObstacleDensity> {
    prop::sample::select(vec![
        ObstacleDensity::Low,
        ObstacleDensity::Medium,
        ObstacleDensity::Dense,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every generated arena is solvable with free start/goal cells and a
    /// bounded obstacle budget.
    #[test]
    fn arenas_are_well_formed(density in arb_density(), seed in 0u64..1000) {
        let mut generator = EnvironmentGenerator::new(density, seed);
        for _ in 0..3 {
            let arena = generator.next_arena();
            prop_assert!(arena.solvable());
            let (sx, sy) = arena.start();
            let (gx, gy) = arena.goal();
            prop_assert!(!arena.blocked(sx as isize, sy as isize));
            prop_assert!(!arena.blocked(gx as isize, gy as isize));
            // Fixed + random obstacles, 2x2 cells each, is the ceiling.
            let max_cells =
                (density.fixed_obstacles() + density.max_random_obstacles()) * 4;
            prop_assert!(arena.obstacle_cells() <= max_cells);
        }
    }

    /// A* on the true occupancy always finds a path on solvable arenas,
    /// and the path is collision-free and connected.
    #[test]
    fn astar_paths_are_valid(density in arb_density(), seed in 0u64..500) {
        let mut generator = EnvironmentGenerator::new(density, seed);
        let arena = generator.next_arena();
        let mut grid = OccupancyGrid::new(arena.size());
        for y in 0..arena.size() {
            for x in 0..arena.size() {
                let b = arena.blocked(x as isize, y as isize);
                grid.observe(x, y, b);
                grid.observe(x, y, b);
            }
        }
        let (path, _) = astar(&grid, arena.start(), arena.goal())
            .expect("solvable arena must admit a path");
        prop_assert_eq!(path[0], arena.start());
        prop_assert_eq!(*path.last().unwrap(), arena.goal());
        for w in path.windows(2) {
            let dx = w[0].0.abs_diff(w[1].0);
            let dy = w[0].1.abs_diff(w[1].1);
            prop_assert!(dx <= 1 && dy <= 1, "disconnected step");
            prop_assert!(!arena.blocked(w[1].0 as isize, w[1].1 as isize));
        }
    }

    /// Surrogate success rates are valid probabilities, monotone with
    /// scenario difficulty for any fixed model.
    #[test]
    fn surrogate_orders_scenarios(layers in prop::sample::select(vec![2usize,3,4,5,6,7,8,9,10]),
                                  filters in prop::sample::select(vec![32usize,48,64])) {
        let model = PolicyModel::build(PolicyHyperparams::new(layers, filters).unwrap());
        let s = SuccessSurrogate::paper_calibrated();
        let low = s.success_rate(&model, ObstacleDensity::Low);
        let medium = s.success_rate(&model, ObstacleDensity::Medium);
        let dense = s.success_rate(&model, ObstacleDensity::Dense);
        for v in [low, medium, dense] {
            prop_assert!((0.0..=1.0).contains(&v));
        }
        prop_assert!(low >= dense - 0.03, "low {low} should not trail dense {dense}");
        prop_assert!(medium <= low + 0.03);
    }

    /// Database upserts are idempotent and lookups total over inserts.
    #[test]
    fn database_upsert_semantics(rates in prop::collection::vec(0.0f64..1.0, 1..20)) {
        let mut db = AirLearningDatabase::new();
        let all = PolicyHyperparams::enumerate();
        for (i, &rate) in rates.iter().enumerate() {
            let h = all[i % all.len()];
            db.upsert(PolicyRecord {
                id: PolicyRecord::make_id(h, ObstacleDensity::Low),
                hyperparams: h,
                density: ObstacleDensity::Low,
                success_rate: rate,
                method: TrainingMethod::Surrogate,
                seed: 0,
            });
        }
        prop_assert!(db.len() <= all.len().min(rates.len()));
        for r in db.records() {
            prop_assert!(db.get(r.hyperparams, r.density).is_some());
        }
        // JSON round trip preserves everything.
        let restored = AirLearningDatabase::from_json(&db.to_json()).unwrap();
        prop_assert_eq!(db, restored);
    }
}

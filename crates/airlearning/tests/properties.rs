//! Randomized property tests for the Air Learning substrate, driven by
//! seeded `autopilot-rng` streams (one deterministic stream per test
//! and case, so failures reproduce exactly).

use air_sim::spa::{astar, OccupancyGrid};
use air_sim::{
    AirLearningDatabase, EnvironmentGenerator, ObstacleDensity, PolicyRecord, SuccessSurrogate,
    TrainingMethod,
};
use autopilot_rng::Rng;
use policy_nn::{PolicyHyperparams, PolicyModel};

const CASES: u64 = 32;

fn case_rng(tag: u64, case: u64) -> Rng {
    Rng::seed_stream(0xa1e_0000 + tag, case)
}

fn any_density(rng: &mut Rng) -> ObstacleDensity {
    ObstacleDensity::ALL[rng.below(ObstacleDensity::ALL.len())]
}

/// Every generated arena is solvable with free start/goal cells and a
/// bounded obstacle budget.
#[test]
fn arenas_are_well_formed() {
    for case in 0..CASES {
        let mut rng = case_rng(1, case);
        let density = any_density(&mut rng);
        let seed = rng.below(1000) as u64;
        let mut generator = EnvironmentGenerator::new(density, seed);
        for _ in 0..3 {
            let arena = generator.next_arena();
            assert!(arena.solvable(), "case {case}");
            let (sx, sy) = arena.start();
            let (gx, gy) = arena.goal();
            assert!(!arena.blocked(sx as isize, sy as isize), "case {case}");
            assert!(!arena.blocked(gx as isize, gy as isize), "case {case}");
            // Fixed + random obstacles, 2x2 cells each, is the ceiling.
            let max_cells = (density.fixed_obstacles() + density.max_random_obstacles()) * 4;
            assert!(arena.obstacle_cells() <= max_cells, "case {case}");
        }
    }
}

/// A* on the true occupancy always finds a path on solvable arenas, and
/// the path is collision-free and connected.
#[test]
fn astar_paths_are_valid() {
    for case in 0..CASES {
        let mut rng = case_rng(2, case);
        let density = any_density(&mut rng);
        let seed = rng.below(500) as u64;
        let mut generator = EnvironmentGenerator::new(density, seed);
        let arena = generator.next_arena();
        let mut grid = OccupancyGrid::new(arena.size());
        for y in 0..arena.size() {
            for x in 0..arena.size() {
                let b = arena.blocked(x as isize, y as isize);
                grid.observe(x, y, b);
                grid.observe(x, y, b);
            }
        }
        let (path, _) =
            astar(&grid, arena.start(), arena.goal()).expect("solvable arena must admit a path");
        assert_eq!(path[0], arena.start(), "case {case}");
        assert_eq!(*path.last().expect("non-empty path"), arena.goal(), "case {case}");
        for w in path.windows(2) {
            let dx = w[0].0.abs_diff(w[1].0);
            let dy = w[0].1.abs_diff(w[1].1);
            assert!(dx <= 1 && dy <= 1, "case {case}: disconnected step");
            assert!(!arena.blocked(w[1].0 as isize, w[1].1 as isize), "case {case}");
        }
    }
}

/// Surrogate success rates are valid probabilities, monotone with
/// scenario difficulty for any fixed model.
#[test]
fn surrogate_orders_scenarios() {
    for case in 0..CASES {
        let mut rng = case_rng(3, case);
        let layers = rng.range_inclusive(2, 10);
        let filters = [32usize, 48, 64][rng.below(3)];
        let h = PolicyHyperparams::new(layers, filters).expect("Table II hyperparameters");
        let model = PolicyModel::build(h);
        let s = SuccessSurrogate::paper_calibrated();
        let low = s.success_rate(&model, ObstacleDensity::Low);
        let medium = s.success_rate(&model, ObstacleDensity::Medium);
        let dense = s.success_rate(&model, ObstacleDensity::Dense);
        for v in [low, medium, dense] {
            assert!((0.0..=1.0).contains(&v), "case {case}");
        }
        assert!(low >= dense - 0.03, "case {case}: low {low} should not trail dense {dense}");
        assert!(medium <= low + 0.03, "case {case}");
    }
}

/// Database upserts are idempotent and lookups total over inserts.
#[test]
fn database_upsert_semantics() {
    for case in 0..CASES {
        let mut rng = case_rng(4, case);
        let rates: Vec<f64> = (0..rng.range_usize(1, 20)).map(|_| rng.next_f64()).collect();
        let mut db = AirLearningDatabase::new();
        let all = PolicyHyperparams::enumerate();
        for (i, &rate) in rates.iter().enumerate() {
            let h = all[i % all.len()];
            db.upsert(PolicyRecord {
                id: PolicyRecord::make_id(h, ObstacleDensity::Low),
                hyperparams: h,
                density: ObstacleDensity::Low,
                success_rate: rate,
                method: TrainingMethod::Surrogate,
                seed: 0,
            })
            .expect("finite success rate upserts");
        }
        assert!(db.len() <= all.len().min(rates.len()), "case {case}");
        for r in db.records() {
            assert!(db.get(r.hyperparams, r.density).is_some(), "case {case}");
        }
        // JSON round trip preserves everything.
        let json = db.to_json().expect("small seeds serialize");
        let restored = AirLearningDatabase::from_json(&json).expect("own output parses");
        assert_eq!(db, restored, "case {case}");
    }
}

//! The Sense-Plan-Act (SPA) autonomy paradigm: occupancy mapping + A*
//! planning + path following.
//!
//! The paper contrasts E2E learning against the classic SPA pipeline
//! (Section II) and sketches how AutoPilot would extend to SPA stacks
//! (Section VII). This module provides a working SPA substrate over the
//! same domain-randomized arenas: a noisy occupancy-mapping stage, an A*
//! planning stage, and a path-following controller, plus a compute-cost
//! profile (node expansions, map updates) so the paradigms can be
//! compared on both task success and decision latency.

use autopilot_rng::Rng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::env::{Arena, EnvironmentGenerator, ObstacleDensity};

/// A probabilistic occupancy grid built from noisy range observations.
#[derive(Debug, Clone)]
pub struct OccupancyGrid {
    size: usize,
    /// Log-odds style occupancy belief in [0, 1]; 0.5 = unknown.
    belief: Vec<f64>,
}

impl OccupancyGrid {
    /// Creates an all-unknown grid.
    pub fn new(size: usize) -> OccupancyGrid {
        OccupancyGrid { size, belief: vec![0.5; size * size] }
    }

    /// Grid side length.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Occupancy belief of a cell (out of range reads as occupied).
    pub fn belief(&self, x: usize, y: usize) -> f64 {
        if x >= self.size || y >= self.size {
            return 1.0;
        }
        self.belief[y * self.size + x]
    }

    /// True when the planner should treat the cell as blocked.
    pub fn blocked(&self, x: usize, y: usize) -> bool {
        self.belief(x, y) > 0.65
    }

    /// Integrates one (possibly noisy) observation of a cell.
    pub fn observe(&mut self, x: usize, y: usize, occupied: bool) {
        if x >= self.size || y >= self.size {
            return;
        }
        let b = &mut self.belief[y * self.size + x];
        // Exponential update toward the observation.
        let target = if occupied { 1.0 } else { 0.0 };
        *b += 0.6 * (target - *b);
    }

    /// Senses a square window of the arena around `pos` with a per-cell
    /// false-negative probability `miss`, updating the map. Returns the
    /// number of cells observed (the mapping stage's workload).
    pub fn sense(
        &mut self,
        arena: &Arena,
        pos: (usize, usize),
        radius: usize,
        miss: f64,
        rng: &mut Rng,
    ) -> usize {
        let mut observed = 0;
        let r = radius as isize;
        for dy in -r..=r {
            for dx in -r..=r {
                let x = pos.0 as isize + dx;
                let y = pos.1 as isize + dy;
                if x < 0 || y < 0 || x as usize >= self.size || y as usize >= self.size {
                    continue;
                }
                let truly = arena.blocked(x, y);
                let seen = if truly && rng.chance(miss) { false } else { truly };
                self.observe(x as usize, y as usize, seen);
                observed += 1;
            }
        }
        observed
    }
}

/// Per-decision compute workload of the SPA pipeline, used to compare
/// decision latency against the E2E paradigm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpaWorkload {
    /// Cells integrated by the mapping stage.
    pub map_updates: u64,
    /// Nodes expanded by the A* planner.
    pub planner_expansions: u64,
    /// Replans performed.
    pub replans: u64,
}

impl SpaWorkload {
    /// Rough per-decision operation count: mapping is a few ops per cell,
    /// planning a few hundred per expansion (priority queue + neighbour
    /// scan).
    pub fn ops(&self) -> u64 {
        self.map_updates * 8 + self.planner_expansions * 300
    }
}

/// A* shortest path over the current occupancy belief. Returns the path
/// (start..=goal) and the number of expansions, or `None` when the
/// believed map admits no path.
pub fn astar(
    grid: &OccupancyGrid,
    start: (usize, usize),
    goal: (usize, usize),
) -> Option<(Vec<(usize, usize)>, u64)> {
    let n = grid.size();
    let idx = |p: (usize, usize)| p.1 * n + p.0;
    let h = |p: (usize, usize)| {
        let dx = p.0.abs_diff(goal.0) as f64;
        let dy = p.1.abs_diff(goal.1) as f64;
        // Octile distance for 8-connected motion.
        let (lo, hi) = if dx < dy { (dx, dy) } else { (dy, dx) };
        hi + 0.4142 * lo
    };
    let mut g = vec![f64::INFINITY; n * n];
    let mut parent = vec![usize::MAX; n * n];
    let mut open: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    let key = |f: f64| (f * 1024.0) as u64;
    g[idx(start)] = 0.0;
    open.push(Reverse((key(h(start)), idx(start))));
    let mut expansions = 0u64;

    let diag = std::f64::consts::SQRT_2;
    let deltas: [(i64, i64, f64); 8] = [
        (1, 0, 1.0),
        (-1, 0, 1.0),
        (0, 1, 1.0),
        (0, -1, 1.0),
        (1, 1, diag),
        (1, -1, diag),
        (-1, 1, diag),
        (-1, -1, diag),
    ];

    while let Some(Reverse((_, current))) = open.pop() {
        expansions += 1;
        let cur = (current % n, current / n);
        if cur == goal {
            // Reconstruct.
            let mut path = vec![cur];
            let mut at = current;
            while parent[at] != usize::MAX {
                at = parent[at];
                path.push((at % n, at / n));
            }
            path.reverse();
            return Some((path, expansions));
        }
        for (dx, dy, cost) in deltas {
            let nx = cur.0 as i64 + dx;
            let ny = cur.1 as i64 + dy;
            if nx < 0 || ny < 0 || nx as usize >= n || ny as usize >= n {
                continue;
            }
            let np = (nx as usize, ny as usize);
            if grid.blocked(np.0, np.1) && np != goal {
                continue;
            }
            let tentative = g[current] + cost;
            if tentative < g[idx(np)] {
                g[idx(np)] = tentative;
                parent[idx(np)] = current;
                open.push(Reverse((key(tentative + h(np)), idx(np))));
            }
        }
        if expansions > (n * n * 8) as u64 {
            break; // defensive bound
        }
    }
    None
}

/// Outcome of evaluating the SPA pipeline over randomized episodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpaOutcome {
    /// Fraction of episodes reaching the goal.
    pub success_rate: f64,
    /// Mean per-decision workload across episodes.
    pub mean_workload: SpaWorkload,
    /// Episodes evaluated.
    pub episodes: usize,
}

/// The Sense-Plan-Act agent: sense a window, update the map, replan with
/// A* when the current path is invalidated, follow the path.
#[derive(Debug, Clone)]
pub struct SpaAgent {
    sensor_radius: usize,
    perception_miss: f64,
    max_steps: usize,
    seed: u64,
}

impl SpaAgent {
    /// Creates an agent with a given perception quality (same semantics
    /// as the E2E trainer's miss probability).
    pub fn new(seed: u64, perception_miss: f64) -> SpaAgent {
        SpaAgent {
            sensor_radius: 4,
            perception_miss: perception_miss.clamp(0.0, 1.0),
            max_steps: 250,
            seed,
        }
    }

    /// Evaluates the agent over `episodes` randomized arenas.
    pub fn evaluate(&self, density: ObstacleDensity, episodes: usize) -> SpaOutcome {
        let mut generator = EnvironmentGenerator::new(density, self.seed.wrapping_add(0x59a));
        let mut rng = Rng::seed_from_u64(self.seed);
        let mut successes = 0usize;
        let mut total = SpaWorkload::default();
        let mut decisions = 0u64;

        for _ in 0..episodes.max(1) {
            let arena = generator.next_arena();
            let mut grid = OccupancyGrid::new(arena.size());
            let mut pos = arena.start();
            let mut path: Vec<(usize, usize)> = Vec::new();
            let mut cursor = 0usize;

            for _ in 0..self.max_steps {
                decisions += 1;
                total.map_updates +=
                    grid.sense(&arena, pos, self.sensor_radius, self.perception_miss, &mut rng)
                        as u64;

                // Replan when we have no path or the next waypoint is now
                // believed blocked.
                let next_blocked = path.get(cursor + 1).is_some_and(|&(x, y)| grid.blocked(x, y));
                if path.is_empty() || cursor + 1 >= path.len() || next_blocked {
                    match astar(&grid, pos, arena.goal()) {
                        Some((p, expansions)) => {
                            total.planner_expansions += expansions;
                            total.replans += 1;
                            path = p;
                            cursor = 0;
                        }
                        None => break, // believed unreachable
                    }
                }

                let next = path[cursor + 1];
                // Execute against ground truth.
                if arena.blocked(next.0 as isize, next.1 as isize) {
                    break; // collision with a misperceived obstacle
                }
                pos = next;
                cursor += 1;
                if pos == arena.goal() {
                    successes += 1;
                    break;
                }
            }
        }

        let per_decision = |x: u64| x.checked_div(decisions).unwrap_or(0);
        let mean = SpaWorkload {
            map_updates: per_decision(total.map_updates),
            planner_expansions: per_decision(total.planner_expansions),
            replans: per_decision(total.replans),
        };
        SpaOutcome {
            success_rate: successes as f64 / episodes.max(1) as f64,
            mean_workload: mean,
            episodes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn astar_finds_straight_path_on_empty_map() {
        let grid = OccupancyGrid::new(10);
        let (path, expansions) = astar(&grid, (0, 0), (9, 9)).expect("path");
        assert_eq!(path.first(), Some(&(0, 0)));
        assert_eq!(path.last(), Some(&(9, 9)));
        assert_eq!(path.len(), 10); // pure diagonal
        assert!(expansions >= 10);
    }

    #[test]
    fn astar_routes_around_known_walls() {
        let mut grid = OccupancyGrid::new(8);
        for y in 0..7 {
            grid.observe(4, y, true);
            grid.observe(4, y, true); // push belief over threshold
        }
        let (path, _) = astar(&grid, (0, 0), (7, 0)).expect("path exists around wall");
        assert!(path.iter().all(|&(x, y)| !(x == 4 && y < 7)));
    }

    #[test]
    fn astar_reports_unreachable() {
        let mut grid = OccupancyGrid::new(6);
        for y in 0..6 {
            grid.observe(3, y, true);
            grid.observe(3, y, true);
        }
        assert!(astar(&grid, (0, 0), (5, 0)).is_none());
    }

    #[test]
    fn occupancy_updates_converge() {
        let mut grid = OccupancyGrid::new(4);
        for _ in 0..6 {
            grid.observe(1, 1, true);
        }
        assert!(grid.blocked(1, 1));
        for _ in 0..8 {
            grid.observe(1, 1, false);
        }
        assert!(!grid.blocked(1, 1));
    }

    #[test]
    fn spa_agent_succeeds_with_good_perception() {
        let outcome = SpaAgent::new(3, 0.05).evaluate(ObstacleDensity::Low, 60);
        assert!(outcome.success_rate > 0.7, "SPA success {:.2} too low", outcome.success_rate);
        assert!(outcome.mean_workload.ops() > 0);
    }

    #[test]
    fn worse_perception_lowers_spa_success() {
        let good = SpaAgent::new(5, 0.02).evaluate(ObstacleDensity::Dense, 60);
        let bad = SpaAgent::new(5, 0.45).evaluate(ObstacleDensity::Dense, 60);
        assert!(good.success_rate >= bad.success_rate);
    }

    #[test]
    fn out_of_range_cells_read_as_occupied() {
        let grid = OccupancyGrid::new(4);
        assert!(grid.blocked(9, 9));
        assert_eq!(grid.belief(9, 0), 1.0);
    }

    #[test]
    fn evaluation_is_deterministic() {
        let a = SpaAgent::new(9, 0.1).evaluate(ObstacleDensity::Medium, 30);
        let b = SpaAgent::new(9, 0.1).evaluate(ObstacleDensity::Medium, 30);
        assert_eq!(a, b);
    }
}

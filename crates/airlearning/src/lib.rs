//! # air-sim
//!
//! A deterministic, domain-randomized UAV navigation simulator standing in
//! for the Air Learning environment generator (Krishnan et al., 2021) in
//! AutoPilot's Phase 1.
//!
//! The original front end trains DQN policies in Unreal-Engine
//! environments; what Phase 2 consumes from it is only the mapping from
//! E2E-template hyperparameters to a validated *task success rate* per
//! deployment scenario. This crate provides that mapping two ways:
//!
//! * [`QTrainer`] — a real reinforcement-learning substrate: tabular
//!   Q-learning over domain-randomized grid arenas, where the state
//!   aggregation resolution is derived from the policy model's capacity
//!   (bigger template instances = finer function approximation = higher
//!   success, saturating), and
//! * [`SuccessSurrogate`] — a fast fitted model of the same
//!   capacity-to-success curve, calibrated to the paper's Fig. 2b band
//!   (60–91 %) and to the per-scenario best models reported in Section
//!   V-A (5 layers/32 filters for low, 4/48 for medium, 7/48 for dense
//!   obstacle scenarios).
//!
//! Results are stored in an [`AirLearningDatabase`], mirroring the paper's
//! Phase-1 output artifact.
//!
//! # Example
//!
//! ```
//! use air_sim::{ObstacleDensity, SuccessSurrogate};
//! use policy_nn::{PolicyHyperparams, PolicyModel};
//!
//! # fn main() -> Result<(), policy_nn::HyperparamError> {
//! let surrogate = SuccessSurrogate::paper_calibrated();
//! let model = PolicyModel::build(PolicyHyperparams::new(7, 48)?);
//! let s = surrogate.success_rate(&model, ObstacleDensity::Dense);
//! assert!((0.5..=1.0).contains(&s));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod database;
mod env;
pub mod source_seeking;
pub mod spa;
mod surrogate;
mod train;

pub use database::{AirLearningDatabase, DatabaseError, PolicyRecord, TrainingMethod};
pub use env::{Arena, EnvironmentGenerator, ObstacleDensity};
pub use surrogate::SuccessSurrogate;
pub use train::{QTrainer, TrainingOutcome};

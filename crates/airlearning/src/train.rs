//! Tabular Q-learning trainer: the real RL substrate behind Phase 1.
//!
//! # How model capacity enters the substrate
//!
//! Air Learning trains the E2E template end-to-end: a larger template
//! (deeper trunk, more filters) learns a more reliable obstacle
//! perception. We reproduce that causal link directly: the agent's
//! *perceived* obstacle mask misses each obstacle bit with a probability
//! that shrinks with the policy model's capacity score, while the control
//! part of the problem (tabular Q-learning over bucketed goal bearing +
//! perceived mask) is held fixed. Success rate therefore rises with
//! capacity and saturates — the Fig. 2b relationship — for mechanical,
//! simulated-perception reasons rather than by fiat.

use autopilot_obs as obs;
use autopilot_rng::Rng;
use policy_nn::PolicyModel;

use crate::env::{Arena, EnvironmentGenerator, ObstacleDensity};

/// Eight-connected movement actions.
const ACTIONS: [(i64, i64); 8] =
    [(1, 0), (-1, 0), (0, 1), (0, -1), (1, 1), (1, -1), (-1, 1), (-1, -1)];

/// Goal-bearing discretization (fixed; capacity acts on perception).
const BEARING_RESOLUTION: usize = 8;

/// Outcome of training one policy in one scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingOutcome {
    /// Fraction of held-out randomized evaluation episodes reaching the
    /// goal.
    pub success_rate: f64,
    /// Training episodes executed.
    pub episodes: usize,
    /// Evaluation episodes executed.
    pub eval_episodes: usize,
    /// Probability that the policy's perception misses an obstacle bit
    /// (derived from model capacity; lower is better).
    pub perception_miss_rate: f64,
}

/// Tabular Q-learning over domain-randomized arenas with
/// capacity-dependent perception (see the module documentation).
#[derive(Debug, Clone)]
pub struct QTrainer {
    episodes: usize,
    eval_episodes: usize,
    max_steps: usize,
    alpha: f64,
    gamma: f64,
    epsilon: f64,
    seed: u64,
}

impl QTrainer {
    /// Creates a trainer with the default budget (fast enough for tests,
    /// representative enough to show the capacity/success trend).
    pub fn new(seed: u64) -> QTrainer {
        QTrainer {
            episodes: 1500,
            eval_episodes: 300,
            max_steps: 200,
            alpha: 0.3,
            gamma: 0.97,
            epsilon: 0.25,
            seed,
        }
    }

    /// Overrides the number of training episodes.
    pub fn with_episodes(mut self, episodes: usize) -> QTrainer {
        self.episodes = episodes.max(1);
        self
    }

    /// Overrides the number of evaluation episodes.
    pub fn with_eval_episodes(mut self, eval: usize) -> QTrainer {
        self.eval_episodes = eval.max(1);
        self
    }

    /// Perception miss probability for a model: shrinks with capacity and
    /// floors at 2 % (residual sim-to-real style error). The smallest
    /// Table II templates land near 30 % (frequent crashes), the largest
    /// near the floor (saturated success) — spanning the regime where the
    /// Q-substrate's success rate responds to perception quality.
    pub fn miss_probability(model: &PolicyModel) -> f64 {
        (0.55 - 0.35 * model.capacity_score()).clamp(0.02, 0.45)
    }

    /// Trains a policy of `model`'s capacity in `density` scenarios and
    /// evaluates it on fresh domain-randomized episodes.
    pub fn train(&self, model: &PolicyModel, density: ObstacleDensity) -> TrainingOutcome {
        let _span = obs::span("phase1.qtrain");
        obs::add("phase1.train_episodes", self.episodes as u64);
        obs::add("phase1.eval_episodes", self.eval_episodes as u64);
        let miss = Self::miss_probability(model);
        let states = BEARING_RESOLUTION * BEARING_RESOLUTION * 256;
        let mut q = vec![0.0f64; states * ACTIONS.len()];
        let mut rng = Rng::seed_from_u64(self.seed);
        let mut generator = EnvironmentGenerator::new(density, self.seed.wrapping_add(1));

        for episode in 0..self.episodes {
            let arena = generator.next_arena();
            let mut pos = arena.start();
            // Linear epsilon decay from the configured value to 0.05.
            let frac = episode as f64 / self.episodes as f64;
            let eps = self.epsilon + (0.05 - self.epsilon) * frac;
            // Annealed learning rate: noisy crash targets (misperceived
            // obstacles) average out instead of thrashing the table.
            let alpha = self.alpha * (1.0 - 0.8 * frac);
            for _ in 0..self.max_steps {
                let s = encode_state(&arena, pos, miss, &mut rng);
                let a = if rng.chance(eps) {
                    rng.below(ACTIONS.len())
                } else {
                    argmax_action(&q, s, &arena, pos)
                };
                let (next, reward, done) = step(&arena, pos, a);
                // Potential-based shaping toward the goal keeps the sparse
                // reward learnable within a short episode budget.
                let shaping = 0.4 * (goal_distance(&arena, pos) - goal_distance(&arena, next));
                let target = if done {
                    reward
                } else {
                    let sn = encode_state(&arena, next, miss, &mut rng);
                    reward + shaping + self.gamma * best_value(&q, sn)
                };
                let idx = s * ACTIONS.len() + a;
                q[idx] += alpha * (target - q[idx]);
                if done {
                    break;
                }
                pos = next;
            }
        }

        // Held-out evaluation with greedy actions on fresh arenas; the
        // perception noise is part of the deployed policy and stays on.
        let mut eval_gen = EnvironmentGenerator::new(density, self.seed.wrapping_add(0x5eed));
        let mut eval_rng = Rng::seed_from_u64(self.seed.wrapping_add(0xeab1));
        let mut successes = 0usize;
        for _ in 0..self.eval_episodes {
            let arena = eval_gen.next_arena();
            let mut pos = arena.start();
            for _ in 0..self.max_steps {
                let s = encode_state(&arena, pos, miss, &mut eval_rng);
                // Small residual exploration breaks the limit cycles a
                // fully deterministic greedy policy can fall into.
                let a = if eval_rng.chance(0.05) {
                    eval_rng.below(ACTIONS.len())
                } else {
                    argmax_action(&q, s, &arena, pos)
                };
                let (next, _, done) = step(&arena, pos, a);
                if done {
                    if next == arena.goal() {
                        successes += 1;
                    }
                    break;
                }
                pos = next;
            }
        }

        TrainingOutcome {
            success_rate: successes as f64 / self.eval_episodes as f64,
            episodes: self.episodes,
            eval_episodes: self.eval_episodes,
            perception_miss_rate: miss,
        }
    }
}

impl Default for QTrainer {
    fn default() -> Self {
        QTrainer::new(0)
    }
}

/// Euclidean distance from `pos` to the arena goal.
fn goal_distance(arena: &Arena, pos: (usize, usize)) -> f64 {
    let dx = pos.0 as f64 - arena.goal().0 as f64;
    let dy = pos.1 as f64 - arena.goal().1 as f64;
    (dx * dx + dy * dy).sqrt()
}

/// Encodes (bucketed goal bearing, perceived obstacle bitmask) into a
/// state index. Each truly-blocked neighbour bit is missed with
/// probability `miss`.
fn encode_state(arena: &Arena, pos: (usize, usize), miss: f64, rng: &mut Rng) -> usize {
    let (px, py) = (pos.0 as f64, pos.1 as f64);
    let (gx, gy) = (arena.goal().0 as f64, arena.goal().1 as f64);
    let n = arena.size() as f64;
    let bucket = |d: f64| {
        // Map [-n, n] to [0, BEARING_RESOLUTION).
        let t = ((d / n) + 1.0) / 2.0;
        ((t * BEARING_RESOLUTION as f64) as usize).min(BEARING_RESOLUTION - 1)
    };
    let bx = bucket(gx - px);
    let by = bucket(gy - py);
    let mut mask = 0usize;
    for (i, (dx, dy)) in ACTIONS.iter().enumerate() {
        let blocked = arena.blocked(pos.0 as isize + *dx as isize, pos.1 as isize + *dy as isize);
        if blocked && !rng.chance(miss) {
            mask |= 1 << i;
        }
    }
    (by * BEARING_RESOLUTION + bx) * 256 + mask
}

/// Greedy action with goal-directed tie-breaking: among actions whose Q
/// values tie (common for never-visited states, where all entries are
/// zero), prefer the one that most reduces the distance to the goal.
fn argmax_action(q: &[f64], state: usize, arena: &Arena, pos: (usize, usize)) -> usize {
    let base = state * ACTIONS.len();
    let max = (0..ACTIONS.len()).map(|a| q[base + a]).fold(f64::NEG_INFINITY, f64::max);
    let mut best = 0;
    let mut best_dist = f64::INFINITY;
    for (a, (dx, dy)) in ACTIONS.iter().enumerate() {
        if q[base + a] < max - 1e-9 {
            continue;
        }
        let nx = pos.0 as f64 + *dx as f64;
        let ny = pos.1 as f64 + *dy as f64;
        let gx = arena.goal().0 as f64;
        let gy = arena.goal().1 as f64;
        let d = (nx - gx).hypot(ny - gy);
        if d < best_dist {
            best_dist = d;
            best = a;
        }
    }
    best
}

fn best_value(q: &[f64], state: usize) -> f64 {
    let base = state * ACTIONS.len();
    (0..ACTIONS.len()).map(|a| q[base + a]).fold(f64::NEG_INFINITY, f64::max)
}

/// Executes one action; returns (new position, reward, terminal).
///
/// Flying into the arena boundary is a bounce (the geofence stops the
/// vehicle); hitting an obstacle ends the episode as a crash.
fn step(arena: &Arena, pos: (usize, usize), action: usize) -> ((usize, usize), f64, bool) {
    let (dx, dy) = ACTIONS[action];
    let nx = pos.0 as i64 + dx;
    let ny = pos.1 as i64 + dy;
    let out_of_bounds =
        nx < 0 || ny < 0 || nx as usize >= arena.size() || ny as usize >= arena.size();
    if out_of_bounds {
        return (pos, -2.0, false);
    }
    if arena.blocked(nx as isize, ny as isize) {
        return (pos, -10.0, true); // collision ends the episode
    }
    let next = (nx as usize, ny as usize);
    if next == arena.goal() {
        (next, 100.0, true)
    } else {
        (next, -0.5, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use policy_nn::PolicyHyperparams;

    fn model(l: usize, f: usize) -> PolicyModel {
        PolicyModel::build(PolicyHyperparams::new(l, f).unwrap())
    }

    fn fast_trainer(seed: u64) -> QTrainer {
        QTrainer::new(seed).with_episodes(600).with_eval_episodes(150)
    }

    #[test]
    fn perception_improves_with_capacity() {
        assert!(
            QTrainer::miss_probability(&model(10, 64)) < QTrainer::miss_probability(&model(2, 32))
        );
        let m = QTrainer::miss_probability(&model(7, 48));
        assert!((0.02..=0.45).contains(&m));
    }

    #[test]
    fn training_learns_something() {
        // A reasonable model in the easy scenario should clearly beat a
        // random walk (which almost never reaches the far wall).
        let outcome = fast_trainer(3).train(&model(5, 32), ObstacleDensity::Low);
        assert!(outcome.success_rate > 0.3, "success {:.2} too low", outcome.success_rate);
    }

    #[test]
    fn bigger_model_helps_in_dense_scenario() {
        // Better perception (higher capacity) resolves dense clutter at
        // least as well as a tiny model; averaged over seeds to damp RL
        // variance.
        let mut small = 0.0;
        let mut large = 0.0;
        for seed in 0..3 {
            small += fast_trainer(seed).train(&model(2, 32), ObstacleDensity::Dense).success_rate;
            large += fast_trainer(seed).train(&model(7, 48), ObstacleDensity::Dense).success_rate;
        }
        assert!(large > small, "large {:.2} not better than small {:.2}", large / 3.0, small / 3.0);
    }

    #[test]
    fn outcome_is_deterministic_for_seed() {
        let a = fast_trainer(9).train(&model(4, 48), ObstacleDensity::Medium);
        let b = fast_trainer(9).train(&model(4, 48), ObstacleDensity::Medium);
        assert_eq!(a, b);
    }

    #[test]
    fn success_rate_is_probability() {
        let o = fast_trainer(1).train(&model(3, 32), ObstacleDensity::Medium);
        assert!((0.0..=1.0).contains(&o.success_rate));
        assert_eq!(o.eval_episodes, 150);
    }
}

#[cfg(test)]
mod debug_sweep {
    use super::*;
    use policy_nn::PolicyHyperparams;

    #[test]
    #[ignore]
    fn sweep_models_and_seeds() {
        for (l, f) in [(2usize, 32usize), (5, 32), (7, 48), (10, 64)] {
            let model = PolicyModel::build(PolicyHyperparams::new(l, f).unwrap());
            for density in [ObstacleDensity::Low, ObstacleDensity::Dense] {
                let mut rates = Vec::new();
                for seed in 0..5u64 {
                    let t = QTrainer::new(seed).with_episodes(600).with_eval_episodes(200);
                    rates.push(t.train(&model, density).success_rate);
                }
                let mean = rates.iter().sum::<f64>() / rates.len() as f64;
                println!(
                    "l{l}f{f} {density} miss={:.2} mean={mean:.2} rates={rates:?}",
                    QTrainer::miss_probability(&model)
                );
            }
        }
    }
}

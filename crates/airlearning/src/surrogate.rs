//! Fast fitted success-rate model.

use policy_nn::PolicyHyperparams;
use policy_nn::PolicyModel;

use crate::env::ObstacleDensity;

/// A fitted capacity-to-success model calibrated against the paper.
///
/// The curve rises sigmoidally with model capacity (Fig. 2b) and declines
/// gently past a per-scenario ideal capacity — over-parameterized policies
/// train less reliably within the fixed one-million-step budget, which is
/// what produces the paper's per-scenario best models:
///
/// * low obstacles — 5 layers / 32 filters,
/// * medium obstacles — 4 layers / 48 filters,
/// * dense obstacles — 7 layers / 48 filters.
///
/// Success rates span the paper's reported 60–91 % band.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuccessSurrogate {
    slope: f64,
    penalty: f64,
    rise_offset: f64,
}

impl SuccessSurrogate {
    /// The calibration used throughout the reproduction.
    pub fn paper_calibrated() -> SuccessSurrogate {
        SuccessSurrogate { slope: 10.0, penalty: 0.8, rise_offset: 0.3 }
    }

    /// The hyperparameters of the best policy per scenario, as reported
    /// in Section V-A of the paper. These anchor the surrogate's ideal
    /// capacity per density.
    pub fn paper_best_model(density: ObstacleDensity) -> PolicyHyperparams {
        let (layers, filters) = match density {
            ObstacleDensity::Low => (5, 32),
            ObstacleDensity::Medium => (4, 48),
            ObstacleDensity::Dense => (7, 48),
        };
        // The (layers, filters) pairs above are all Table II values, so
        // construction cannot fail; the fallback keeps this panic-free.
        PolicyHyperparams::new(layers, filters).unwrap_or_else(|_| PolicyHyperparams::smallest())
    }

    /// Success ceiling per density (harder scenarios cap lower).
    fn ceiling(density: ObstacleDensity) -> f64 {
        match density {
            ObstacleDensity::Low => 0.91,
            ObstacleDensity::Medium => 0.88,
            ObstacleDensity::Dense => 0.84,
        }
    }

    /// Success floor per density.
    fn floor(density: ObstacleDensity) -> f64 {
        match density {
            ObstacleDensity::Low => 0.66,
            ObstacleDensity::Medium => 0.63,
            ObstacleDensity::Dense => 0.58,
        }
    }

    /// Ideal capacity for `density` (capacity of the paper's best model).
    pub fn ideal_capacity(density: ObstacleDensity) -> f64 {
        PolicyModel::build(Self::paper_best_model(density)).capacity_score()
    }

    /// Predicted validated task success rate of `model` in `density`
    /// scenarios, in `[0, 1]`.
    pub fn success_rate(&self, model: &PolicyModel, density: ObstacleDensity) -> f64 {
        let c = model.capacity_score();
        let ideal = Self::ideal_capacity(density);
        let theta = ideal - self.rise_offset;
        let rise = sigmoid(self.slope * (c - theta));
        let decay = self.penalty * (c - ideal).max(0.0);
        let g = (rise - decay).clamp(0.0, 1.0);
        let floor = Self::floor(density);
        let ceiling = Self::ceiling(density);
        floor + (ceiling - floor) * g
    }

    /// The model with the highest predicted success rate for `density`
    /// over the whole Table II space.
    pub fn best_model(&self, density: ObstacleDensity) -> PolicyHyperparams {
        PolicyHyperparams::enumerate()
            .into_iter()
            .max_by(|a, b| {
                let sa = self.success_rate(&PolicyModel::build(*a), density);
                let sb = self.success_rate(&PolicyModel::build(*b), density);
                sa.total_cmp(&sb)
            })
            // The Table II space is never empty; the paper's best model
            // is the panic-free fallback.
            .unwrap_or_else(|| Self::paper_best_model(density))
    }
}

impl Default for SuccessSurrogate {
    fn default() -> Self {
        SuccessSurrogate::paper_calibrated()
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(l: usize, f: usize) -> PolicyModel {
        PolicyModel::build(PolicyHyperparams::new(l, f).unwrap())
    }

    #[test]
    fn argmax_matches_paper_selections() {
        let s = SuccessSurrogate::paper_calibrated();
        for density in ObstacleDensity::ALL {
            let best = s.best_model(density);
            assert_eq!(
                best,
                SuccessSurrogate::paper_best_model(density),
                "{density}: surrogate argmax {best} diverges from the paper"
            );
        }
    }

    #[test]
    fn success_band_matches_fig_2b() {
        let s = SuccessSurrogate::paper_calibrated();
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for h in PolicyHyperparams::enumerate() {
            for density in ObstacleDensity::ALL {
                let v = s.success_rate(&PolicyModel::build(h), density);
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        assert!((0.55..=0.70).contains(&lo), "floor {lo:.2}");
        assert!((0.85..=0.95).contains(&hi), "ceiling {hi:.2}");
    }

    #[test]
    fn harder_scenarios_need_bigger_models() {
        // At a fixed small model, success drops with density; the ideal
        // capacity grows with density.
        let s = SuccessSurrogate::paper_calibrated();
        let small = model(3, 32);
        let low = s.success_rate(&small, ObstacleDensity::Low);
        let dense = s.success_rate(&small, ObstacleDensity::Dense);
        assert!(low > dense);
        assert!(
            SuccessSurrogate::ideal_capacity(ObstacleDensity::Dense)
                > SuccessSurrogate::ideal_capacity(ObstacleDensity::Low)
        );
    }

    #[test]
    fn rises_with_capacity_before_ideal() {
        let s = SuccessSurrogate::paper_calibrated();
        let tiny = s.success_rate(&model(2, 32), ObstacleDensity::Dense);
        let right = s.success_rate(&model(7, 48), ObstacleDensity::Dense);
        assert!(right > tiny + 0.1);
    }

    #[test]
    fn oversized_models_degrade_mildly() {
        let s = SuccessSurrogate::paper_calibrated();
        let ideal = s.success_rate(&model(5, 32), ObstacleDensity::Low);
        let huge = s.success_rate(&model(10, 64), ObstacleDensity::Low);
        assert!(huge < ideal);
        assert!(huge >= 0.55, "degradation too steep: {huge:.2}");
    }

    #[test]
    fn all_rates_are_probabilities() {
        let s = SuccessSurrogate::paper_calibrated();
        for h in PolicyHyperparams::enumerate() {
            for density in ObstacleDensity::ALL {
                let v = s.success_rate(&PolicyModel::build(h), density);
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }
}

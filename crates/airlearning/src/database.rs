//! The Air Learning policy database (Phase-1 output artifact).

use autopilot_obs::json::Value;
use policy_nn::PolicyHyperparams;
use std::error::Error;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use crate::env::ObstacleDensity;

/// How a database entry's success rate was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrainingMethod {
    /// Real tabular Q-learning run ([`QTrainer`](crate::QTrainer)).
    QLearning,
    /// Fitted surrogate ([`SuccessSurrogate`](crate::SuccessSurrogate)).
    Surrogate,
}

impl TrainingMethod {
    /// Stable identifier used in the JSON artifact.
    pub fn id(&self) -> &'static str {
        match self {
            TrainingMethod::QLearning => "q-learning",
            TrainingMethod::Surrogate => "surrogate",
        }
    }

    fn parse_id(id: &str) -> Option<TrainingMethod> {
        match id {
            "q-learning" => Some(TrainingMethod::QLearning),
            "surrogate" => Some(TrainingMethod::Surrogate),
            _ => None,
        }
    }
}

/// One validated policy: hyperparameters, scenario, and success rate.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyRecord {
    /// Stable identifier, e.g. `"l7f48-dense"`.
    pub id: String,
    /// Template hyperparameters.
    pub hyperparams: PolicyHyperparams,
    /// Deployment scenario the policy was trained and validated in.
    pub density: ObstacleDensity,
    /// Validated task success rate in `[0, 1]`.
    pub success_rate: f64,
    /// Provenance of the success rate.
    pub method: TrainingMethod,
    /// Training seed.
    pub seed: u64,
}

impl PolicyRecord {
    /// Builds the canonical identifier for a (hyperparams, density) pair.
    pub fn make_id(hyperparams: PolicyHyperparams, density: ObstacleDensity) -> String {
        format!("{}-{}", hyperparams.id(), density.id())
    }
}

/// The Phase-1 database: every trained policy with its validated success
/// rate, keyed by (hyperparameters, scenario).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AirLearningDatabase {
    records: Vec<PolicyRecord>,
}

impl AirLearningDatabase {
    /// Creates an empty database.
    pub fn new() -> AirLearningDatabase {
        AirLearningDatabase::default()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the database holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Inserts or replaces the record for its (hyperparams, density) key.
    ///
    /// # Errors
    ///
    /// Returns [`DatabaseError::NonFiniteSuccessRate`] when the record's
    /// success rate is NaN or infinite — a corrupt rate would silently
    /// poison every downstream `best_for` ranking, so it is rejected at
    /// the door.
    pub fn upsert(&mut self, record: PolicyRecord) -> Result<(), DatabaseError> {
        if !record.success_rate.is_finite() {
            return Err(DatabaseError::NonFiniteSuccessRate { id: record.id });
        }
        match self
            .records
            .iter_mut()
            .find(|r| r.hyperparams == record.hyperparams && r.density == record.density)
        {
            Some(existing) => *existing = record,
            None => self.records.push(record),
        }
        Ok(())
    }

    /// Looks up the record for a (hyperparams, density) pair.
    pub fn get(
        &self,
        hyperparams: PolicyHyperparams,
        density: ObstacleDensity,
    ) -> Option<&PolicyRecord> {
        self.records.iter().find(|r| r.hyperparams == hyperparams && r.density == density)
    }

    /// Validated success rate for a (hyperparams, density) pair.
    pub fn success_rate(
        &self,
        hyperparams: PolicyHyperparams,
        density: ObstacleDensity,
    ) -> Option<f64> {
        self.get(hyperparams, density).map(|r| r.success_rate)
    }

    /// All records, in insertion order.
    pub fn records(&self) -> &[PolicyRecord] {
        &self.records
    }

    /// Records for one scenario.
    pub fn records_for(&self, density: ObstacleDensity) -> Vec<&PolicyRecord> {
        self.records.iter().filter(|r| r.density == density).collect()
    }

    /// The record with the highest success rate for a scenario, or
    /// `Ok(None)` when the scenario has no records.
    ///
    /// # Errors
    ///
    /// Returns [`DatabaseError::NonFiniteSuccessRate`] when a stored rate
    /// is NaN or infinite (possible only for databases deserialized from
    /// external JSON — [`AirLearningDatabase::upsert`] rejects such rates
    /// at insert time).
    pub fn best_for(
        &self,
        density: ObstacleDensity,
    ) -> Result<Option<&PolicyRecord>, DatabaseError> {
        let candidates = self.records_for(density);
        if let Some(bad) = candidates.iter().find(|r| !r.success_rate.is_finite()) {
            return Err(DatabaseError::NonFiniteSuccessRate { id: bad.id.clone() });
        }
        Ok(candidates.into_iter().max_by(|a, b| a.success_rate.total_cmp(&b.success_rate)))
    }

    /// Serializes the database to pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns [`DatabaseError::Serialize`] when a record cannot be
    /// represented (a success rate or seed outside JSON's exact numeric
    /// range).
    pub fn to_json(&self) -> Result<String, DatabaseError> {
        let records: Vec<Value> = self
            .records
            .iter()
            .map(|r| {
                if r.seed > (1u64 << 53) {
                    return Err(DatabaseError::Serialize {
                        message: format!("seed {} of record {:?} exceeds 2^53", r.seed, r.id),
                    });
                }
                Ok(Value::Obj(vec![
                    ("id".into(), Value::Str(r.id.clone())),
                    (
                        "hyperparams".into(),
                        Value::Obj(vec![
                            ("conv_layers".into(), Value::Num(r.hyperparams.conv_layers() as f64)),
                            ("filters".into(), Value::Num(r.hyperparams.filters() as f64)),
                        ]),
                    ),
                    ("density".into(), Value::Str(r.density.id().into())),
                    ("success_rate".into(), Value::Num(r.success_rate)),
                    ("method".into(), Value::Str(r.method.id().into())),
                    ("seed".into(), Value::Num(r.seed as f64)),
                ]))
            })
            .collect::<Result<_, _>>()?;
        Ok(Value::Obj(vec![("records".into(), Value::Arr(records))]).to_json_pretty())
    }

    /// Parses a database from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`DatabaseError::Parse`] on malformed JSON or a record
    /// with missing or invalid fields.
    pub fn from_json(json: &str) -> Result<AirLearningDatabase, DatabaseError> {
        let parse_err = |message: &str| DatabaseError::Parse { message: message.into() };
        let root =
            Value::parse(json).map_err(|e| DatabaseError::Parse { message: e.to_string() })?;
        let records = root
            .get("records")
            .and_then(Value::as_arr)
            .ok_or_else(|| parse_err("missing `records` array"))?;
        let mut db = AirLearningDatabase::new();
        for rec in records {
            let id = rec
                .get("id")
                .and_then(Value::as_str)
                .ok_or_else(|| parse_err("record missing `id`"))?;
            let hyper =
                rec.get("hyperparams").ok_or_else(|| parse_err("record missing `hyperparams`"))?;
            let conv_layers = hyper
                .get("conv_layers")
                .and_then(Value::as_u64)
                .ok_or_else(|| parse_err("hyperparams missing `conv_layers`"))?;
            let filters = hyper
                .get("filters")
                .and_then(Value::as_u64)
                .ok_or_else(|| parse_err("hyperparams missing `filters`"))?;
            let hyperparams = PolicyHyperparams::new(conv_layers as usize, filters as usize)
                .map_err(|e| DatabaseError::Parse { message: e.to_string() })?;
            let density = rec
                .get("density")
                .and_then(Value::as_str)
                .and_then(ObstacleDensity::parse_id)
                .ok_or_else(|| parse_err("record has an unknown `density`"))?;
            let success_rate = rec
                .get("success_rate")
                .and_then(Value::as_f64)
                .ok_or_else(|| parse_err("record missing `success_rate`"))?;
            let method = rec
                .get("method")
                .and_then(Value::as_str)
                .and_then(TrainingMethod::parse_id)
                .ok_or_else(|| parse_err("record has an unknown `method`"))?;
            let seed = rec
                .get("seed")
                .and_then(Value::as_u64)
                .ok_or_else(|| parse_err("record missing `seed`"))?;
            db.upsert(PolicyRecord {
                id: id.to_string(),
                hyperparams,
                density,
                success_rate,
                method,
                seed,
            })
            .map_err(|e| DatabaseError::Parse { message: e.to_string() })?;
        }
        Ok(db)
    }

    /// Saves the database to a JSON file.
    ///
    /// # Errors
    ///
    /// Returns [`DatabaseError::Io`] on filesystem failures.
    pub fn save(&self, path: &Path) -> Result<(), DatabaseError> {
        fs::write(path, self.to_json()?).map_err(DatabaseError::from)
    }

    /// Loads a database from a JSON file.
    ///
    /// # Errors
    ///
    /// Returns [`DatabaseError::Io`] on filesystem failures and
    /// [`DatabaseError::Parse`] on malformed content.
    pub fn load(path: &Path) -> Result<AirLearningDatabase, DatabaseError> {
        let json = fs::read_to_string(path)?;
        Self::from_json(&json)
    }
}

/// Error working with the policy database.
#[derive(Debug)]
#[non_exhaustive]
pub enum DatabaseError {
    /// Filesystem failure.
    Io(io::Error),
    /// Malformed JSON content.
    Parse {
        /// Underlying parser message.
        message: String,
    },
    /// Serialization failed.
    Serialize {
        /// Underlying serializer message.
        message: String,
    },
    /// A record carries a NaN or infinite success rate.
    NonFiniteSuccessRate {
        /// Identifier of the offending record.
        id: String,
    },
}

impl fmt::Display for DatabaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatabaseError::Io(e) => write!(f, "database file access failed: {e}"),
            DatabaseError::Parse { message } => write!(f, "database content invalid: {message}"),
            DatabaseError::Serialize { message } => {
                write!(f, "database serialization failed: {message}")
            }
            DatabaseError::NonFiniteSuccessRate { id } => {
                write!(f, "record {id:?} has a non-finite success rate")
            }
        }
    }
}

impl Error for DatabaseError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DatabaseError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DatabaseError {
    fn from(e: io::Error) -> Self {
        DatabaseError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(l: usize, f: usize, density: ObstacleDensity, rate: f64) -> PolicyRecord {
        let h = PolicyHyperparams::new(l, f).unwrap();
        PolicyRecord {
            id: PolicyRecord::make_id(h, density),
            hyperparams: h,
            density,
            success_rate: rate,
            method: TrainingMethod::Surrogate,
            seed: 0,
        }
    }

    #[test]
    fn upsert_replaces_existing_key() {
        let mut db = AirLearningDatabase::new();
        db.upsert(record(5, 32, ObstacleDensity::Low, 0.8)).unwrap();
        db.upsert(record(5, 32, ObstacleDensity::Low, 0.9)).unwrap();
        assert_eq!(db.len(), 1);
        assert_eq!(
            db.success_rate(PolicyHyperparams::new(5, 32).unwrap(), ObstacleDensity::Low),
            Some(0.9)
        );
    }

    #[test]
    fn same_hyper_different_density_coexist() {
        let mut db = AirLearningDatabase::new();
        db.upsert(record(5, 32, ObstacleDensity::Low, 0.8)).unwrap();
        db.upsert(record(5, 32, ObstacleDensity::Dense, 0.6)).unwrap();
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn best_for_picks_highest_rate() {
        let mut db = AirLearningDatabase::new();
        db.upsert(record(3, 32, ObstacleDensity::Dense, 0.6)).unwrap();
        db.upsert(record(7, 48, ObstacleDensity::Dense, 0.83)).unwrap();
        db.upsert(record(9, 64, ObstacleDensity::Dense, 0.7)).unwrap();
        let best = db.best_for(ObstacleDensity::Dense).unwrap().unwrap();
        assert_eq!(best.hyperparams, PolicyHyperparams::new(7, 48).unwrap());
    }

    #[test]
    fn json_round_trip() {
        let mut db = AirLearningDatabase::new();
        db.upsert(record(4, 48, ObstacleDensity::Medium, 0.85)).unwrap();
        let restored = AirLearningDatabase::from_json(&db.to_json().unwrap()).unwrap();
        assert_eq!(db, restored);
    }

    #[test]
    fn file_round_trip() {
        let mut db = AirLearningDatabase::new();
        db.upsert(record(2, 64, ObstacleDensity::Low, 0.7)).unwrap();
        let path = std::env::temp_dir().join("air_sim_db_test.json");
        db.save(&path).unwrap();
        let restored = AirLearningDatabase::load(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(db, restored);
    }

    #[test]
    fn parse_error_is_reported() {
        let err = AirLearningDatabase::from_json("{not json").unwrap_err();
        assert!(matches!(err, DatabaseError::Parse { .. }));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = AirLearningDatabase::load(Path::new("/nonexistent/db.json")).unwrap_err();
        assert!(matches!(err, DatabaseError::Io(_)));
    }

    #[test]
    fn nan_success_rate_rejected_at_insert() {
        let mut db = AirLearningDatabase::new();
        let err = db.upsert(record(5, 32, ObstacleDensity::Low, f64::NAN)).unwrap_err();
        assert!(matches!(err, DatabaseError::NonFiniteSuccessRate { .. }));
        assert!(db.is_empty());
        let err = db.upsert(record(5, 32, ObstacleDensity::Low, f64::INFINITY)).unwrap_err();
        assert!(err.to_string().contains("non-finite"));
        assert!(db.is_empty());
    }

    #[test]
    fn best_for_empty_scenario_is_ok_none() {
        let db = AirLearningDatabase::new();
        assert!(db.best_for(ObstacleDensity::Dense).unwrap().is_none());
    }

    #[test]
    fn make_id_format() {
        let h = PolicyHyperparams::new(7, 48).unwrap();
        assert_eq!(PolicyRecord::make_id(h, ObstacleDensity::Dense), "l7f48-dense");
    }
}

//! Source seeking: the second UAV application the paper motivates
//! (Duisterhof et al., "Tiny robot learning for source seeking on a nano
//! quadcopter", ICRA 2021).
//!
//! A scalar source (gas leak, radio beacon, light) sits somewhere in the
//! arena; the UAV observes a noisy local concentration gradient and must
//! climb it to the source while avoiding the obstacles. Policy capacity
//! maps to observation noise exactly as in the navigation trainer, so the
//! same Phase-1 capacity/success relationship emerges for a different
//! task specification.

use autopilot_rng::Rng;
use policy_nn::PolicyModel;

use crate::env::{EnvironmentGenerator, ObstacleDensity};
use crate::train::QTrainer;

/// Outcome of evaluating source seeking over randomized episodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeekOutcome {
    /// Fraction of episodes that reached the source.
    pub success_rate: f64,
    /// Mean steps taken in successful episodes.
    pub mean_steps_to_source: f64,
    /// Episodes evaluated.
    pub episodes: usize,
}

/// Gradient-climbing source seeker with capacity-dependent sensing noise.
#[derive(Debug, Clone)]
pub struct SourceSeeker {
    seed: u64,
    noise_sigma: f64,
    max_steps: usize,
}

impl SourceSeeker {
    /// Creates a seeker whose sensing noise is derived from the policy
    /// model's capacity (same mapping as the navigation trainer's
    /// perception-miss probability).
    pub fn for_model(seed: u64, model: &PolicyModel) -> SourceSeeker {
        // Miss probability in [0.02, 0.45] maps to gradient noise; the
        // scale is chosen so the Table II capacity range spans the regime
        // where the seeker's success responds to sensing quality.
        let miss = QTrainer::miss_probability(model);
        SourceSeeker { seed, noise_sigma: miss * 3.0, max_steps: 60 }
    }

    /// Creates a seeker with an explicit noise level (for sweeps).
    pub fn with_noise(seed: u64, noise_sigma: f64) -> SourceSeeker {
        SourceSeeker { seed, noise_sigma: noise_sigma.max(0.0), max_steps: 60 }
    }

    /// Concentration at squared distance `d2` from the source.
    fn concentration(d2: f64) -> f64 {
        1.0 / (1.0 + d2 / 20.0)
    }

    /// Evaluates the seeker over `episodes` randomized arenas; the
    /// source is placed at the arena's goal cell. The step budget models
    /// the flight-time the mission allows: a noisy seeker meanders and
    /// runs out of it.
    pub fn evaluate(&self, density: ObstacleDensity, episodes: usize) -> SeekOutcome {
        let mut generator = EnvironmentGenerator::new(density, self.seed.wrapping_add(0x5ee));
        let mut rng = Rng::seed_from_u64(self.seed);
        let deltas: [(i64, i64); 8] =
            [(1, 0), (-1, 0), (0, 1), (0, -1), (1, 1), (1, -1), (-1, 1), (-1, -1)];
        let mut successes = 0usize;
        let mut steps_sum = 0usize;

        for _ in 0..episodes.max(1) {
            let arena = generator.next_arena();
            let source = arena.goal();
            let mut pos = arena.start();
            for step in 0..self.max_steps {
                if pos == source {
                    successes += 1;
                    steps_sum += step;
                    break;
                }
                // Sample the perceived concentration of each free
                // neighbour; move to the highest.
                let mut best: Option<((usize, usize), f64)> = None;
                for (dx, dy) in deltas {
                    let nx = pos.0 as i64 + dx;
                    let ny = pos.1 as i64 + dy;
                    if nx < 0 || ny < 0 || arena.blocked(nx as isize, ny as isize) {
                        continue;
                    }
                    let np = (nx as usize, ny as usize);
                    let d2 = (np.0 as f64 - source.0 as f64).powi(2)
                        + (np.1 as f64 - source.1 as f64).powi(2);
                    let noise: f64 = rng.range_f64(-1.0, 1.0) * self.noise_sigma;
                    let perceived = Self::concentration(d2) * (1.0 + noise);
                    if best.is_none_or(|(_, b)| perceived > b) {
                        best = Some((np, perceived));
                    }
                }
                match best {
                    Some((np, _)) => pos = np,
                    None => break, // boxed in
                }
            }
        }

        SeekOutcome {
            success_rate: successes as f64 / episodes.max(1) as f64,
            mean_steps_to_source: if successes > 0 {
                steps_sum as f64 / successes as f64
            } else {
                f64::NAN
            },
            episodes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use policy_nn::PolicyHyperparams;

    #[test]
    fn noiseless_seeker_almost_always_finds_the_source() {
        let out = SourceSeeker::with_noise(3, 0.0).evaluate(ObstacleDensity::Low, 80);
        assert!(out.success_rate > 0.9, "success {:.2}", out.success_rate);
        assert!(out.mean_steps_to_source < 120.0);
    }

    #[test]
    fn noise_degrades_seeking() {
        let clean = SourceSeeker::with_noise(5, 0.02).evaluate(ObstacleDensity::Medium, 80);
        let noisy = SourceSeeker::with_noise(5, 1.5).evaluate(ObstacleDensity::Medium, 80);
        assert!(clean.success_rate > noisy.success_rate);
    }

    #[test]
    fn bigger_models_seek_better() {
        let small = PolicyModel::build(PolicyHyperparams::new(2, 32).unwrap());
        let large = PolicyModel::build(PolicyHyperparams::new(10, 64).unwrap());
        let s = SourceSeeker::for_model(7, &small).evaluate(ObstacleDensity::Medium, 100);
        let l = SourceSeeker::for_model(7, &large).evaluate(ObstacleDensity::Medium, 100);
        assert!(
            l.success_rate >= s.success_rate,
            "large {:.2} < small {:.2}",
            l.success_rate,
            s.success_rate
        );
    }

    #[test]
    fn evaluation_is_deterministic() {
        let a = SourceSeeker::with_noise(9, 0.3).evaluate(ObstacleDensity::Dense, 40);
        let b = SourceSeeker::with_noise(9, 0.3).evaluate(ObstacleDensity::Dense, 40);
        assert_eq!(a, b);
    }
}

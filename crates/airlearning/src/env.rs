//! Domain-randomized arena generation.

use autopilot_rng::Rng;
use std::collections::VecDeque;
use std::fmt;

/// Deployment-scenario obstacle density (Section V-A).
///
/// * `Low` — four randomly placed obstacles, random goal (sparse farmland
///   style).
/// * `Medium` — four fixed plus up to three random obstacles.
/// * `Dense` — four fixed plus up to five random obstacles (search-and-
///   rescue / racing style clutter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObstacleDensity {
    /// Sparse scenario.
    Low,
    /// Moderately cluttered scenario.
    Medium,
    /// Densely cluttered scenario.
    Dense,
}

impl ObstacleDensity {
    /// All densities in increasing difficulty order.
    pub const ALL: [ObstacleDensity; 3] =
        [ObstacleDensity::Low, ObstacleDensity::Medium, ObstacleDensity::Dense];

    /// Number of fixed obstacles in every episode.
    pub fn fixed_obstacles(&self) -> usize {
        match self {
            ObstacleDensity::Low => 0,
            ObstacleDensity::Medium | ObstacleDensity::Dense => 4,
        }
    }

    /// Maximum number of randomly placed obstacles per episode.
    pub fn max_random_obstacles(&self) -> usize {
        match self {
            ObstacleDensity::Low => 4,
            ObstacleDensity::Medium => 3,
            ObstacleDensity::Dense => 5,
        }
    }

    /// Stable lower-case identifier (`"low"`, `"medium"`, `"dense"`).
    pub fn id(&self) -> &'static str {
        match self {
            ObstacleDensity::Low => "low",
            ObstacleDensity::Medium => "medium",
            ObstacleDensity::Dense => "dense",
        }
    }

    /// Parses the identifier produced by [`ObstacleDensity::id`].
    pub fn parse_id(id: &str) -> Option<ObstacleDensity> {
        match id {
            "low" => Some(ObstacleDensity::Low),
            "medium" => Some(ObstacleDensity::Medium),
            "dense" => Some(ObstacleDensity::Dense),
            _ => None,
        }
    }
}

impl fmt::Display for ObstacleDensity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One generated episode arena: a square occupancy grid with a start and
/// a goal cell, guaranteed reachable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arena {
    size: usize,
    occupied: Vec<bool>,
    start: (usize, usize),
    goal: (usize, usize),
}

impl Arena {
    /// Grid side length in cells.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Start cell `(x, y)`.
    pub fn start(&self) -> (usize, usize) {
        self.start
    }

    /// Goal cell `(x, y)`.
    pub fn goal(&self) -> (usize, usize) {
        self.goal
    }

    /// True when the cell is blocked by an obstacle (out-of-bounds counts
    /// as blocked).
    pub fn blocked(&self, x: isize, y: isize) -> bool {
        if x < 0 || y < 0 || x as usize >= self.size || y as usize >= self.size {
            return true;
        }
        self.occupied[y as usize * self.size + x as usize]
    }

    /// Number of obstacle cells.
    pub fn obstacle_cells(&self) -> usize {
        self.occupied.iter().filter(|&&b| b).count()
    }

    /// Renders the arena (and an optional trajectory) as ASCII art:
    /// `S` start, `G` goal, `#` obstacle, `*` trajectory, `.` free.
    pub fn render_ascii(&self, trajectory: &[(usize, usize)]) -> String {
        let mut out = String::with_capacity((self.size + 1) * self.size);
        for y in 0..self.size {
            for x in 0..self.size {
                let c = if (x, y) == self.start {
                    'S'
                } else if (x, y) == self.goal {
                    'G'
                } else if self.occupied[y * self.size + x] {
                    '#'
                } else if trajectory.contains(&(x, y)) {
                    '*'
                } else {
                    '.'
                };
                out.push(c);
            }
            out.push('\n');
        }
        out
    }

    /// True when a free 4-connected path exists from start to goal.
    pub fn solvable(&self) -> bool {
        let mut seen = vec![false; self.size * self.size];
        let mut q = VecDeque::new();
        q.push_back(self.start);
        seen[self.start.1 * self.size + self.start.0] = true;
        while let Some((x, y)) = q.pop_front() {
            if (x, y) == self.goal {
                return true;
            }
            let deltas = [(1i64, 0i64), (-1, 0), (0, 1), (0, -1)];
            for (dx, dy) in deltas {
                let nx = x as i64 + dx;
                let ny = y as i64 + dy;
                if nx < 0 || ny < 0 || nx as usize >= self.size || ny as usize >= self.size {
                    continue;
                }
                let idx = ny as usize * self.size + nx as usize;
                if !seen[idx] && !self.occupied[idx] {
                    seen[idx] = true;
                    q.push_back((nx as usize, ny as usize));
                }
            }
        }
        false
    }
}

/// Seeded generator of domain-randomized arenas for one density preset.
#[derive(Debug, Clone)]
pub struct EnvironmentGenerator {
    density: ObstacleDensity,
    arena_size: usize,
    rng: Rng,
}

impl EnvironmentGenerator {
    /// Default arena side length in cells (each cell ~2 m: an 80 m
    /// course diagonal, matching the default mission profile).
    pub const DEFAULT_ARENA: usize = 25;

    /// Creates a generator for `density` seeded with `seed`.
    pub fn new(density: ObstacleDensity, seed: u64) -> EnvironmentGenerator {
        EnvironmentGenerator {
            density,
            arena_size: Self::DEFAULT_ARENA,
            rng: Rng::seed_from_u64(seed),
        }
    }

    /// The density preset of this generator.
    pub fn density(&self) -> ObstacleDensity {
        self.density
    }

    /// Generates the next randomized episode arena (always solvable).
    pub fn next_arena(&mut self) -> Arena {
        loop {
            let arena = self.generate_candidate();
            if arena.solvable() {
                return arena;
            }
        }
    }

    fn generate_candidate(&mut self) -> Arena {
        let n = self.arena_size;
        let mut occupied = vec![false; n * n];

        // Fixed obstacles: 2x2 blocks at deterministic positions scaled to
        // the arena (the paper's medium/dense presets share them).
        let fixed_anchors = [(0.3, 0.3), (0.7, 0.3), (0.3, 0.7), (0.7, 0.7)];
        for &(fx, fy) in fixed_anchors.iter().take(self.density.fixed_obstacles()) {
            let cx = (fx * n as f64) as usize;
            let cy = (fy * n as f64) as usize;
            for dy in 0..2 {
                for dx in 0..2 {
                    let x = (cx + dx).min(n - 1);
                    let y = (cy + dy).min(n - 1);
                    occupied[y * n + x] = true;
                }
            }
        }

        // Random obstacles: 1..=max random 2x2 blocks.
        let max_rand = self.density.max_random_obstacles();
        let count = if max_rand == 0 { 0 } else { self.rng.range_inclusive(1, max_rand) };
        for _ in 0..count {
            let cx = self.rng.below(n - 1);
            let cy = self.rng.below(n - 1);
            for dy in 0..2 {
                for dx in 0..2 {
                    occupied[(cy + dy) * n + (cx + dx)] = true;
                }
            }
        }

        // Start on the left edge, goal randomized on the right half
        // (goal position changes every episode per the paper).
        let start = (0usize, self.rng.below(n));
        let goal = (n - 1, self.rng.below(n));
        let start_idx = start.1 * n + start.0;
        let goal_idx = goal.1 * n + goal.0;
        occupied[start_idx] = false;
        occupied[goal_idx] = false;

        Arena { size: n, occupied, start, goal }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_arenas_are_solvable() {
        for density in ObstacleDensity::ALL {
            let mut generator = EnvironmentGenerator::new(density, 42);
            for _ in 0..20 {
                let a = generator.next_arena();
                assert!(a.solvable());
                assert!(!a.blocked(a.start().0 as isize, a.start().1 as isize));
                assert!(!a.blocked(a.goal().0 as isize, a.goal().1 as isize));
            }
        }
    }

    #[test]
    fn denser_presets_have_more_obstacles_on_average() {
        let mean_cells = |d: ObstacleDensity| -> f64 {
            let mut generator = EnvironmentGenerator::new(d, 7);
            (0..50).map(|_| generator.next_arena().obstacle_cells()).sum::<usize>() as f64 / 50.0
        };
        let low = mean_cells(ObstacleDensity::Low);
        let medium = mean_cells(ObstacleDensity::Medium);
        let dense = mean_cells(ObstacleDensity::Dense);
        assert!(medium > low, "medium {medium} <= low {low}");
        assert!(dense > medium, "dense {dense} <= medium {medium}");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut a = EnvironmentGenerator::new(ObstacleDensity::Dense, 11);
        let mut b = EnvironmentGenerator::new(ObstacleDensity::Dense, 11);
        for _ in 0..5 {
            assert_eq!(a.next_arena(), b.next_arena());
        }
    }

    #[test]
    fn different_seeds_randomize_goals() {
        let mut a = EnvironmentGenerator::new(ObstacleDensity::Low, 1);
        let mut b = EnvironmentGenerator::new(ObstacleDensity::Low, 2);
        let goals_a: Vec<_> = (0..10).map(|_| a.next_arena().goal()).collect();
        let goals_b: Vec<_> = (0..10).map(|_| b.next_arena().goal()).collect();
        assert_ne!(goals_a, goals_b);
    }

    #[test]
    fn out_of_bounds_is_blocked() {
        let mut generator = EnvironmentGenerator::new(ObstacleDensity::Low, 3);
        let a = generator.next_arena();
        assert!(a.blocked(-1, 0));
        assert!(a.blocked(0, a.size() as isize));
    }

    #[test]
    fn density_identifiers() {
        assert_eq!(ObstacleDensity::Low.id(), "low");
        assert_eq!(ObstacleDensity::Dense.to_string(), "dense");
    }
}

#[cfg(test)]
mod render_tests {
    use super::*;

    #[test]
    fn ascii_render_marks_landmarks() {
        let mut generator = EnvironmentGenerator::new(ObstacleDensity::Dense, 4);
        let arena = generator.next_arena();
        let art = arena.render_ascii(&[]);
        assert_eq!(art.lines().count(), arena.size());
        assert_eq!(art.matches('S').count(), 1);
        assert_eq!(art.matches('G').count(), 1);
        assert!(art.contains('#'));
    }

    #[test]
    fn trajectory_cells_are_starred() {
        let mut generator = EnvironmentGenerator::new(ObstacleDensity::Low, 4);
        let arena = generator.next_arena();
        let (sx, sy) = arena.start();
        let probe = ((sx + 2).min(arena.size() - 1), sy);
        let art = arena.render_ascii(&[probe]);
        if !arena.blocked(probe.0 as isize, probe.1 as isize) && probe != arena.goal() {
            assert!(art.contains('*'));
        }
    }
}

//! Randomized property tests for the power/thermal models, driven by
//! seeded `autopilot-rng` streams (one deterministic stream per test
//! and case, so failures reproduce exactly).

use autopilot_rng::Rng;
use soc_power::{compute_payload_grams, DramModel, PeModel, SocPowerModel, SramModel, TechNode};
use systolic_sim::{ArrayConfig, Layer, Simulator};

const CASES: u64 = 48;

fn case_rng(tag: u64, case: u64) -> Rng {
    Rng::seed_stream(0x50c_0000 + tag, case)
}

fn any_node(rng: &mut Rng) -> TechNode {
    [TechNode::N28, TechNode::N16, TechNode::N7][rng.below(3)]
}

/// SRAM access energy grows with capacity but sub-linearly.
#[test]
fn sram_energy_sublinear() {
    for case in 0..CASES {
        let mut rng = case_rng(1, case);
        let node = any_node(&mut rng);
        let kb = rng.range_usize(8, 2048);
        let m = SramModel::new(node);
        let e1 = m.access_energy_j(kb * 1024);
        let e2 = m.access_energy_j(4 * kb * 1024);
        assert!(e2 > e1, "case {case}");
        assert!(e2 < 4.0 * e1, "case {case}");
    }
}

/// PE dynamic energy is exactly linear in MAC count.
#[test]
fn pe_energy_linear() {
    for case in 0..CASES {
        let mut rng = case_rng(2, case);
        let node = any_node(&mut rng);
        let macs = rng.range_usize(1, 10_000_000) as u64;
        let m = PeModel::new(node);
        let e = m.dynamic_energy_j(macs);
        assert!((m.dynamic_energy_j(3 * macs) - 3.0 * e).abs() < e * 1e-9, "case {case}");
    }
}

/// DRAM access energy is linear in traffic and non-negative.
#[test]
fn dram_energy_linear() {
    for case in 0..CASES {
        let mut rng = case_rng(3, case);
        let bytes = rng.range_usize(1, 1_000_000_000) as u64;
        let m = DramModel::new();
        assert!(m.access_energy_j(bytes) > 0.0, "case {case}");
        assert!(
            (m.access_energy_j(2 * bytes) - 2.0 * m.access_energy_j(bytes)).abs() < 1e-12,
            "case {case}"
        );
    }
}

/// Payload weight is monotone in TDP and at least the motherboard.
#[test]
fn payload_monotone() {
    for case in 0..CASES {
        let mut rng = case_rng(4, case);
        let tdp = rng.range_f64(0.0, 40.0);
        let extra = rng.range_f64(0.01, 20.0);
        assert!(compute_payload_grams(tdp) >= soc_power::MOTHERBOARD_GRAMS, "case {case}");
        assert!(compute_payload_grams(tdp + extra) > compute_payload_grams(tdp), "case {case}");
    }
}

/// For any simulated layer, average power is positive, below TDP, and
/// improves at denser technology nodes.
#[test]
fn soc_power_sane_for_any_config() {
    for case in 0..CASES {
        let mut rng = case_rng(5, case);
        let pe = 1usize << rng.range_inclusive(3, 7);
        let sram_kb = [32usize, 128, 1024][rng.below(3)];
        let channels = rng.range_usize(1, 32);
        let cfg = ArrayConfig::builder()
            .rows(pe)
            .cols(pe)
            .ifmap_sram_kb(sram_kb)
            .filter_sram_kb(sram_kb)
            .ofmap_sram_kb(sram_kb)
            .build()
            .expect("valid array config");
        let stats = Simulator::new(cfg.clone())
            .simulate_network(&[Layer::conv2d(48, 48, channels, 32, 3, 1, 1)]);
        let base = SocPowerModel::at_node(TechNode::N28).evaluate(&cfg, &stats);
        let dense = SocPowerModel::at_node(TechNode::N7).evaluate(&cfg, &stats);
        assert!(base.total_avg_w() > 0.0, "case {case}");
        assert!(base.accelerator_avg_w() <= base.tdp_w() * 1.001, "case {case}");
        assert!(dense.tdp_w() < base.tdp_w(), "case {case}");
        assert!(dense.accelerator_avg_w() < base.accelerator_avg_w(), "case {case}");
    }
}

/// Frame energy equals the sum of its components.
#[test]
fn frame_energy_components() {
    for case in 0..CASES {
        let mut rng = case_rng(6, case);
        let pe = 1usize << rng.range_inclusive(3, 6);
        let cfg = ArrayConfig::builder().rows(pe).cols(pe).build().expect("valid array config");
        let stats =
            Simulator::new(cfg.clone()).simulate_network(&[Layer::conv2d(32, 32, 8, 16, 3, 1, 1)]);
        let r = SocPowerModel::new().evaluate(&cfg, &stats);
        assert!(
            (r.frame_energy_j() - (r.pe_energy_j + r.sram_energy_j + r.dram_energy_j)).abs()
                < 1e-15,
            "case {case}"
        );
    }
}

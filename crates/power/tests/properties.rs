//! Property-based tests for the power/thermal models.

use proptest::prelude::*;
use soc_power::{compute_payload_grams, DramModel, PeModel, SocPowerModel, SramModel, TechNode};
use systolic_sim::{ArrayConfig, Layer, Simulator};

fn arb_node() -> impl Strategy<Value = TechNode> {
    prop::sample::select(vec![TechNode::N28, TechNode::N16, TechNode::N7])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// SRAM access energy grows with capacity but sub-linearly.
    #[test]
    fn sram_energy_sublinear(node in arb_node(), kb in 8usize..2048) {
        let m = SramModel::new(node);
        let e1 = m.access_energy_j(kb * 1024);
        let e2 = m.access_energy_j(4 * kb * 1024);
        prop_assert!(e2 > e1);
        prop_assert!(e2 < 4.0 * e1);
    }

    /// PE dynamic energy is exactly linear in MAC count.
    #[test]
    fn pe_energy_linear(node in arb_node(), macs in 1u64..10_000_000) {
        let m = PeModel::new(node);
        let e = m.dynamic_energy_j(macs);
        prop_assert!((m.dynamic_energy_j(3 * macs) - 3.0 * e).abs() < e * 1e-9);
    }

    /// DRAM access energy is linear in traffic and non-negative.
    #[test]
    fn dram_energy_linear(bytes in 1u64..1_000_000_000) {
        let m = DramModel::new();
        prop_assert!(m.access_energy_j(bytes) > 0.0);
        prop_assert!(
            (m.access_energy_j(2 * bytes) - 2.0 * m.access_energy_j(bytes)).abs() < 1e-12
        );
    }

    /// Payload weight is monotone in TDP and at least the motherboard.
    #[test]
    fn payload_monotone(tdp in 0.0f64..40.0, extra in 0.01f64..20.0) {
        prop_assert!(compute_payload_grams(tdp) >= soc_power::MOTHERBOARD_GRAMS);
        prop_assert!(compute_payload_grams(tdp + extra) > compute_payload_grams(tdp));
    }

    /// For any simulated layer, average power is positive, below TDP,
    /// and improves at denser technology nodes.
    #[test]
    fn soc_power_sane_for_any_config(
        pe_exp in 3u32..8,
        sram_kb in prop::sample::select(vec![32usize, 128, 1024]),
        channels in 1usize..32,
    ) {
        let pe = 1usize << pe_exp;
        let cfg = ArrayConfig::builder()
            .rows(pe).cols(pe)
            .ifmap_sram_kb(sram_kb).filter_sram_kb(sram_kb).ofmap_sram_kb(sram_kb)
            .build().unwrap();
        let stats = Simulator::new(cfg.clone())
            .simulate_network(&[Layer::conv2d(48, 48, channels, 32, 3, 1, 1)]);
        let base = SocPowerModel::at_node(TechNode::N28).evaluate(&cfg, &stats);
        let dense = SocPowerModel::at_node(TechNode::N7).evaluate(&cfg, &stats);
        prop_assert!(base.total_avg_w() > 0.0);
        prop_assert!(base.accelerator_avg_w() <= base.tdp_w() * 1.001);
        prop_assert!(dense.tdp_w() < base.tdp_w());
        prop_assert!(dense.accelerator_avg_w() < base.accelerator_avg_w());
    }

    /// Frame energy equals the sum of its components.
    #[test]
    fn frame_energy_components(pe_exp in 3u32..7) {
        let pe = 1usize << pe_exp;
        let cfg = ArrayConfig::builder().rows(pe).cols(pe).build().unwrap();
        let stats = Simulator::new(cfg.clone())
            .simulate_network(&[Layer::conv2d(32, 32, 8, 16, 3, 1, 1)]);
        let r = SocPowerModel::new().evaluate(&cfg, &stats);
        prop_assert!(
            (r.frame_energy_j() - (r.pe_energy_j + r.sram_energy_j + r.dram_energy_j)).abs()
                < 1e-15
        );
    }
}

//! Whole-SoC power aggregation (Table III).

use systolic_sim::{ArrayConfig, NetworkStats};

use crate::calib;
use crate::dram::DramModel;
use crate::pe::PeModel;
use crate::sram::SramModel;
use crate::technode::TechNode;
use crate::thermal;

/// Power model for the full DSSoC of Fig. 3a: accelerator subsystem
/// (PE array + scratchpads + DRAM) plus the fixed platform components
/// (two ULP MCU cores, RGB sensor, MIPI interface).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SocPowerModel {
    pe: PeModel,
    sram: SramModel,
    dram: DramModel,
    node: TechNode,
}

impl SocPowerModel {
    /// Model at the 28 nm baseline node.
    pub fn new() -> SocPowerModel {
        SocPowerModel::at_node(TechNode::N28)
    }

    /// Model at an explicit technology node (used by architectural
    /// fine-tuning).
    pub fn at_node(node: TechNode) -> SocPowerModel {
        SocPowerModel {
            pe: PeModel::new(node),
            sram: SramModel::new(node),
            dram: DramModel::new(),
            node,
        }
    }

    /// Technology node of the accelerator models.
    pub fn node(&self) -> TechNode {
        self.node
    }

    /// Evaluates power for a simulated network run on `config`.
    pub fn evaluate(&self, config: &ArrayConfig, stats: &NetworkStats) -> PowerReport {
        let latency_s = stats.latency_s();

        // Per-frame dynamic energies.
        let pe_energy_j = self.pe.dynamic_energy_j(stats.total_macs());
        let mut sram_energy_j = 0.0;
        for layer in &stats.layers {
            sram_energy_j +=
                self.sram.dynamic_energy_j(config.ifmap_sram_bytes(), layer.ifmap_sram_reads);
            sram_energy_j +=
                self.sram.dynamic_energy_j(config.filter_sram_bytes(), layer.filter_sram_reads);
            sram_energy_j += self.sram.dynamic_energy_j(
                config.ofmap_sram_bytes(),
                layer.ofmap_sram_writes + layer.ofmap_sram_reads,
            );
        }
        let dram_energy_j = self.dram.access_energy_j(stats.dram_total_bytes());

        // Always-on power.
        let pe_leakage_w = self.pe.leakage_w(config.pe_count());
        let sram_leakage_w = self.sram.leakage_w(config.total_sram_bytes());
        let dram_background_w = self.dram.background_w();
        let fixed_w = calib::MCU_POWER_W + calib::SENSOR_POWER_W + calib::MIPI_POWER_W;

        // Peak (TDP) of the accelerator subsystem: everything switching at
        // once at the configured clock.
        let clock_hz = config.clock_hz();
        let mean_sram_access_j = self.sram.access_energy_j(
            (config.ifmap_sram_bytes() + config.filter_sram_bytes() + config.ofmap_sram_bytes())
                / 3,
        );
        let sram_peak_w = calib::peak_sram_bytes_per_cycle(config.rows(), config.cols())
            * mean_sram_access_j
            * clock_hz;
        let dram_peak_w =
            self.dram.peak_access_w(config.dram_bandwidth_bytes_per_cycle() * clock_hz);
        let tdp_w = self.pe.peak_dynamic_w(config.pe_count(), clock_hz)
            + sram_peak_w
            + dram_peak_w
            + pe_leakage_w
            + sram_leakage_w
            + dram_background_w;

        PowerReport {
            latency_s,
            pe_energy_j,
            sram_energy_j,
            dram_energy_j,
            pe_leakage_w,
            sram_leakage_w,
            dram_background_w,
            fixed_w,
            tdp_w,
        }
    }
}

impl Default for SocPowerModel {
    fn default() -> Self {
        SocPowerModel::new()
    }
}

/// Power evaluation of one (configuration, network) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerReport {
    /// Inference latency the energies are amortized over, in seconds.
    pub latency_s: f64,
    /// PE-array dynamic energy per frame, in joules.
    pub pe_energy_j: f64,
    /// Scratchpad dynamic energy per frame, in joules.
    pub sram_energy_j: f64,
    /// DRAM access energy per frame, in joules.
    pub dram_energy_j: f64,
    /// PE leakage power, in watts.
    pub pe_leakage_w: f64,
    /// Scratchpad leakage power, in watts.
    pub sram_leakage_w: f64,
    /// DRAM background power, in watts.
    pub dram_background_w: f64,
    /// Fixed platform components (MCUs + sensor + MIPI), in watts.
    pub fixed_w: f64,
    /// Accelerator-subsystem thermal design power, in watts.
    pub tdp_w: f64,
}

impl PowerReport {
    /// Total dynamic energy per frame, in joules.
    pub fn frame_energy_j(&self) -> f64 {
        self.pe_energy_j + self.sram_energy_j + self.dram_energy_j
    }

    /// Average accelerator-subsystem power while running back-to-back
    /// inferences, in watts (dynamic amortized over latency + always-on).
    pub fn accelerator_avg_w(&self) -> f64 {
        let dynamic =
            if self.latency_s > 0.0 { self.frame_energy_j() / self.latency_s } else { 0.0 };
        dynamic + self.pe_leakage_w + self.sram_leakage_w + self.dram_background_w
    }

    /// Average whole-SoC power including the fixed platform components,
    /// in watts.
    pub fn total_avg_w(&self) -> f64 {
        self.accelerator_avg_w() + self.fixed_w
    }

    /// Accelerator TDP used for heatsink sizing, in watts.
    pub fn tdp_w(&self) -> f64 {
        self.tdp_w
    }

    /// Compute payload weight (motherboard + heatsink for this TDP), in
    /// grams.
    pub fn compute_payload_grams(&self) -> f64 {
        thermal::compute_payload_grams(self.tdp_w)
    }

    /// Achieved inference throughput, in frames per second.
    pub fn fps(&self) -> f64 {
        if self.latency_s > 0.0 {
            1.0 / self.latency_s
        } else {
            f64::INFINITY
        }
    }

    /// Compute efficiency in frames per second per watt of average SoC
    /// power (the paper's FPS/W metric).
    pub fn efficiency_fps_per_w(&self) -> f64 {
        self.fps() / self.total_avg_w()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_sim::{Layer, Simulator};

    fn eval(rows: usize, cols: usize, sram_kb: usize) -> PowerReport {
        let cfg = ArrayConfig::builder()
            .rows(rows)
            .cols(cols)
            .ifmap_sram_kb(sram_kb)
            .filter_sram_kb(sram_kb)
            .ofmap_sram_kb(sram_kb)
            .build()
            .unwrap();
        let sim = Simulator::new(cfg.clone());
        let stats = sim.simulate_network(&[
            Layer::conv2d(96, 96, 3, 48, 3, 2, 1),
            Layer::conv2d(48, 48, 48, 48, 3, 2, 1),
            Layer::dense(778, 5632),
            Layer::dense(5632, 5632),
        ]);
        SocPowerModel::new().evaluate(&cfg, &stats)
    }

    #[test]
    fn avg_power_below_tdp() {
        for (r, c) in [(8, 8), (32, 32), (128, 128)] {
            let rep = eval(r, c, 256);
            assert!(
                rep.accelerator_avg_w() <= rep.tdp_w() * 1.001,
                "{r}x{c}: avg {} > tdp {}",
                rep.accelerator_avg_w(),
                rep.tdp_w()
            );
        }
    }

    #[test]
    fn bigger_array_higher_tdp() {
        assert!(eval(128, 128, 256).tdp_w() > eval(8, 8, 256).tdp_w());
    }

    #[test]
    fn more_sram_more_leakage() {
        assert!(eval(32, 32, 4096).sram_leakage_w > eval(32, 32, 32).sram_leakage_w);
    }

    #[test]
    fn fixed_components_match_table_iii() {
        let rep = eval(16, 16, 64);
        // 2 x 0.38 mW + 100 mW + 22 mW.
        assert!((rep.fixed_w - 0.12276).abs() < 1e-6);
    }

    #[test]
    fn efficiency_is_fps_over_watts() {
        let rep = eval(32, 32, 256);
        let eff = rep.efficiency_fps_per_w();
        assert!((eff - rep.fps() / rep.total_avg_w()).abs() < 1e-9);
    }

    #[test]
    fn frame_energy_components_sum() {
        let rep = eval(32, 32, 256);
        assert!(
            (rep.frame_energy_j() - (rep.pe_energy_j + rep.sram_energy_j + rep.dram_energy_j))
                .abs()
                < 1e-15
        );
        assert!(rep.pe_energy_j > 0.0 && rep.sram_energy_j > 0.0 && rep.dram_energy_j > 0.0);
    }

    #[test]
    fn denser_node_lowers_power() {
        let cfg = ArrayConfig::default();
        let sim = Simulator::new(cfg.clone());
        let stats = sim.simulate_network(&[Layer::conv2d(96, 96, 3, 32, 3, 2, 1)]);
        let base = SocPowerModel::at_node(TechNode::N28).evaluate(&cfg, &stats);
        let dense = SocPowerModel::at_node(TechNode::N7).evaluate(&cfg, &stats);
        assert!(dense.accelerator_avg_w() < base.accelerator_avg_w());
        assert!(dense.tdp_w() < base.tdp_w());
    }

    #[test]
    fn payload_uses_tdp() {
        let rep = eval(64, 64, 512);
        assert!(
            (rep.compute_payload_grams() - thermal::compute_payload_grams(rep.tdp_w())).abs()
                < 1e-12
        );
    }
}

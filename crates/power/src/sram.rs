//! CACTI-style SRAM energy/leakage model.

use crate::calib;
use crate::technode::TechNode;

/// Analytic SRAM model: per-access energy grows sub-linearly with
/// capacity (longer bit/word lines), leakage grows linearly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramModel {
    node: TechNode,
}

impl SramModel {
    /// Model at the given technology node.
    pub fn new(node: TechNode) -> SramModel {
        SramModel { node }
    }

    /// Technology node of this model.
    pub fn node(&self) -> TechNode {
        self.node
    }

    /// Energy of accessing one byte of a `capacity_bytes` macro, in joules.
    pub fn access_energy_j(&self, capacity_bytes: usize) -> f64 {
        let kb = capacity_bytes as f64 / 1024.0;
        let pj = calib::SRAM_ENERGY_BASE_PJ + calib::SRAM_ENERGY_SLOPE_PJ * kb.max(1.0).sqrt();
        pj * 1.0e-12 * self.node.dynamic_scale()
    }

    /// Dynamic energy for `accesses` byte-accesses, in joules.
    pub fn dynamic_energy_j(&self, capacity_bytes: usize, accesses: u64) -> f64 {
        accesses as f64 * self.access_energy_j(capacity_bytes)
    }

    /// Leakage power of a `capacity_bytes` macro, in watts.
    pub fn leakage_w(&self, capacity_bytes: usize) -> f64 {
        let kb = capacity_bytes as f64 / 1024.0;
        kb * calib::SRAM_LEAKAGE_W_PER_KB * self.node.leakage_scale()
    }
}

impl Default for SramModel {
    fn default() -> Self {
        SramModel::new(TechNode::N28)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_energy_grows_sublinearly_with_capacity() {
        let m = SramModel::default();
        let e32 = m.access_energy_j(32 * 1024);
        let e4096 = m.access_energy_j(4096 * 1024);
        assert!(e4096 > e32);
        // 128x capacity should cost far less than 128x energy.
        assert!(e4096 < 16.0 * e32);
    }

    #[test]
    fn leakage_linear_in_capacity() {
        let m = SramModel::default();
        let l = m.leakage_w(1024 * 1024);
        assert!((m.leakage_w(2 * 1024 * 1024) - 2.0 * l).abs() < 1e-12);
        // ~15 mW per MiB at 28 nm.
        assert!((l - 0.015).abs() < 1e-6);
    }

    #[test]
    fn node_scaling_applies() {
        let base = SramModel::new(TechNode::N28);
        let dense = SramModel::new(TechNode::N7);
        assert!(dense.access_energy_j(65536) < base.access_energy_j(65536));
        assert!(dense.leakage_w(65536) < base.leakage_w(65536));
    }
}

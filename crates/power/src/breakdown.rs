//! Text rendering of power-report breakdowns.

use std::fmt::Write as _;

use crate::soc::PowerReport;

/// Renders a per-component power breakdown of a report at its achieved
/// frame rate.
pub fn power_breakdown(report: &PowerReport) -> String {
    let dynamic = |energy_j: f64| {
        if report.latency_s > 0.0 {
            energy_j / report.latency_s
        } else {
            0.0
        }
    };
    let rows = [
        ("PE array (dynamic)", dynamic(report.pe_energy_j)),
        ("scratchpads (dynamic)", dynamic(report.sram_energy_j)),
        ("DRAM (access)", dynamic(report.dram_energy_j)),
        ("PE array (leakage)", report.pe_leakage_w),
        ("scratchpads (leakage)", report.sram_leakage_w),
        ("DRAM (background)", report.dram_background_w),
        ("MCU + sensor + MIPI", report.fixed_w),
    ];
    let total = report.total_avg_w();
    let mut out = String::new();
    let _ = writeln!(out, "{:<24}{:>10}{:>8}", "component", "watts", "share");
    out.push_str(&"-".repeat(42));
    out.push('\n');
    for (name, w) in rows {
        let _ = writeln!(out, "{:<24}{:>10.4}{:>7.1}%", name, w, 100.0 * w / total);
    }
    out.push_str(&"-".repeat(42));
    out.push('\n');
    let _ = writeln!(
        out,
        "{:<24}{:>10.4}  at {:.1} FPS (TDP {:.2} W)",
        "total (average)",
        total,
        report.fps(),
        report.tdp_w()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::soc::SocPowerModel;
    use systolic_sim::{ArrayConfig, Layer, Simulator};

    #[test]
    fn breakdown_shares_sum_to_one() {
        let cfg = ArrayConfig::default();
        let stats =
            Simulator::new(cfg.clone()).simulate_network(&[Layer::conv2d(96, 96, 3, 32, 3, 2, 1)]);
        let report = SocPowerModel::new().evaluate(&cfg, &stats);
        let text = power_breakdown(&report);
        let shares: f64 = text
            .lines()
            .filter(|l| l.ends_with('%'))
            .map(|l| {
                l.rsplit_once(' ')
                    .map(|(_, pct)| pct.trim_end_matches('%').parse::<f64>().unwrap_or(0.0))
                    .unwrap_or(0.0)
            })
            .sum();
        assert!((shares - 100.0).abs() < 1.0, "shares sum to {shares}");
        assert!(text.contains("total (average)"));
    }
}

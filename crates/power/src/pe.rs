//! Processing-element energy model (Li et al., DAC 2019 style).

use crate::calib;
use crate::technode::TechNode;

/// Energy/power model of the MAC array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeModel {
    node: TechNode,
}

impl PeModel {
    /// Model at the given technology node.
    pub fn new(node: TechNode) -> PeModel {
        PeModel { node }
    }

    /// Technology node of this model.
    pub fn node(&self) -> TechNode {
        self.node
    }

    /// Energy of one MAC operation in joules.
    pub fn mac_energy_j(&self) -> f64 {
        calib::MAC_ENERGY_J * self.node.dynamic_scale()
    }

    /// Dynamic energy for `macs` operations, in joules.
    pub fn dynamic_energy_j(&self, macs: u64) -> f64 {
        macs as f64 * self.mac_energy_j()
    }

    /// Leakage power of a `pe_count`-element array, in watts.
    pub fn leakage_w(&self, pe_count: usize) -> f64 {
        pe_count as f64 * calib::PE_LEAKAGE_W * self.node.leakage_scale()
    }

    /// Peak dynamic power with every PE switching each cycle, in watts.
    pub fn peak_dynamic_w(&self, pe_count: usize, clock_hz: f64) -> f64 {
        pe_count as f64 * self.mac_energy_j() * clock_hz
    }
}

impl Default for PeModel {
    fn default() -> Self {
        PeModel::new(TechNode::N28)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_linear_in_macs() {
        let m = PeModel::default();
        assert!((m.dynamic_energy_j(2_000) - 2.0 * m.dynamic_energy_j(1_000)).abs() < 1e-18);
    }

    #[test]
    fn denser_node_cheaper() {
        let base = PeModel::new(TechNode::N28);
        let dense = PeModel::new(TechNode::N7);
        assert!(dense.mac_energy_j() < base.mac_energy_j());
        assert!(dense.leakage_w(1024) < base.leakage_w(1024));
    }

    #[test]
    fn peak_power_linear_in_clock_and_pes() {
        let m = PeModel::default();
        let p1 = m.peak_dynamic_w(1024, 200e6);
        assert!((m.peak_dynamic_w(2048, 200e6) - 2.0 * p1).abs() < 1e-12);
        assert!((m.peak_dynamic_w(1024, 400e6) - 2.0 * p1).abs() < 1e-12);
    }
}

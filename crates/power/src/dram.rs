//! LPDDR4 DRAM power model (Micron power-calculator style).

use crate::calib;

/// DRAM energy model: access energy proportional to traffic plus a
/// constant background (standby/refresh) power.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramModel {
    energy_per_byte_j: f64,
    background_w: f64,
}

impl DramModel {
    /// Model with the calibrated LPDDR4 constants.
    pub fn new() -> DramModel {
        DramModel {
            energy_per_byte_j: calib::DRAM_ENERGY_PER_BYTE_J,
            background_w: calib::DRAM_BACKGROUND_W,
        }
    }

    /// Access energy for `bytes` of traffic, in joules.
    pub fn access_energy_j(&self, bytes: u64) -> f64 {
        bytes as f64 * self.energy_per_byte_j
    }

    /// Constant background power, in watts.
    pub fn background_w(&self) -> f64 {
        self.background_w
    }

    /// Peak access power at a sustained `bytes_per_second` rate, in watts.
    pub fn peak_access_w(&self, bytes_per_second: f64) -> f64 {
        bytes_per_second * self.energy_per_byte_j
    }
}

impl Default for DramModel {
    fn default() -> Self {
        DramModel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_linear_in_traffic() {
        let m = DramModel::new();
        assert!((m.access_energy_j(2_000_000) - 2.0 * m.access_energy_j(1_000_000)).abs() < 1e-15);
    }

    #[test]
    fn background_power_reasonable() {
        // Tens of milliwatts for a mobile LPDDR4 device.
        let m = DramModel::new();
        assert!(m.background_w() > 0.01 && m.background_w() < 0.5);
    }

    #[test]
    fn streaming_power_sane_magnitude() {
        // 10 GB/s at 32 pJ/B is ~0.32 W.
        let m = DramModel::new();
        let p = m.peak_access_w(10.0e9);
        assert!((0.1..=1.0).contains(&p), "{p} W");
    }
}

//! Heatsink sizing and compute-payload weight model.
//!
//! The paper sizes a passive aluminium heatsink from the SoC's TDP using a
//! commercial natural-convection calculator, then adds a fixed 20 g
//! motherboard (Raspberry-Pi/Coral-class PCB) to obtain the compute
//! payload carried by the UAV. We fit the calculator with a linear
//! volume-per-watt coefficient (see
//! [`calib::HEATSINK_CM3_PER_W`](crate::calib::HEATSINK_CM3_PER_W)) which
//! reproduces the paper's 24 g @ 0.7 W and 65 g @ 8.24 W payload points.

use crate::calib;

/// Weight of the carrier PCB with all electrical components, in grams.
pub const MOTHERBOARD_GRAMS: f64 = 20.0;

/// Required heatsink volume for a given TDP, in cm^3.
pub fn heatsink_volume_cm3(tdp_w: f64) -> f64 {
    tdp_w.max(0.0) * calib::HEATSINK_CM3_PER_W
}

/// Mass of the aluminium heatsink for a given TDP, in grams.
pub fn heatsink_grams(tdp_w: f64) -> f64 {
    heatsink_volume_cm3(tdp_w) * calib::ALUMINUM_G_PER_CM3
}

/// Total compute payload (motherboard + heatsink) for a given TDP, in
/// grams.
pub fn compute_payload_grams(tdp_w: f64) -> f64 {
    MOTHERBOARD_GRAMS + heatsink_grams(tdp_w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_payload_points() {
        // AP design: 0.7 W -> ~24 g. HT design: 8.24 W -> ~65 g.
        let ap = compute_payload_grams(0.7);
        let ht = compute_payload_grams(8.24);
        assert!((ap - 24.0).abs() < 1.0, "AP payload {ap} g");
        assert!((ht - 65.0).abs() < 2.0, "HT payload {ht} g");
    }

    #[test]
    fn payload_monotone_in_tdp() {
        let mut prev = 0.0;
        for tdp in [0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0] {
            let g = compute_payload_grams(tdp);
            assert!(g >= prev);
            prev = g;
        }
    }

    #[test]
    fn zero_tdp_still_has_motherboard() {
        assert_eq!(compute_payload_grams(0.0), MOTHERBOARD_GRAMS);
    }

    #[test]
    fn negative_tdp_clamped() {
        assert_eq!(heatsink_volume_cm3(-3.0), 0.0);
    }
}

//! Calibration constants for every analytic model in this crate.
//!
//! All constants are for a 28 nm process at nominal voltage (the paper's
//! baseline; see [`TechNode`](crate::TechNode) for scaling). Each constant
//! documents the operating point it was fitted against.

/// Energy per int8 multiply-accumulate including local register and
/// array-interconnect overheads, in joules (0.6 pJ).
///
/// Fitted so that a 256x256 array at 200 MHz peaks near the paper's 8.24 W
/// high-throughput design (Table III / Fig. 7).
pub const MAC_ENERGY_J: f64 = 0.6e-12;

/// Static leakage per PE in watts (1.5 uW at 28 nm).
pub const PE_LEAKAGE_W: f64 = 1.5e-6;

/// SRAM read/write energy per byte: `BASE + SLOPE * sqrt(capacity_kb)`
/// pJ/byte, a CACTI-style sub-linear growth with capacity.
pub const SRAM_ENERGY_BASE_PJ: f64 = 0.20;
/// See [`SRAM_ENERGY_BASE_PJ`].
pub const SRAM_ENERGY_SLOPE_PJ: f64 = 0.015;

/// SRAM leakage in watts per KiB (approximately 15 mW per MiB at 28 nm).
pub const SRAM_LEAKAGE_W_PER_KB: f64 = 15.0e-3 / 1024.0;

/// LPDDR4 access energy per byte (4 pJ/bit).
pub const DRAM_ENERGY_PER_BYTE_J: f64 = 32.0e-12;

/// LPDDR4 background (self-refresh + standby) power in watts.
pub const DRAM_BACKGROUND_W: f64 = 0.080;

/// Two ultra-low-power Cortex-M cores for the flight-controller stack,
/// 0.38 mW each at 100 MHz in 28 nm (Table III).
pub const MCU_POWER_W: f64 = 2.0 * 0.38e-3;

/// OV9755-class RGB sensor peak power (Table III).
pub const SENSOR_POWER_W: f64 = 0.100;

/// MIPI CSI camera interface power (Table III).
pub const MIPI_POWER_W: f64 = 0.022;

/// Heatsink volume per watt of TDP for passive natural-convection cooling,
/// in cm^3/W.
///
/// Fitted to the paper's compute-payload points: 0.7 W -> 24 g and
/// 8.24 W -> 65 g total compute payload with a 20 g motherboard and an
/// aluminium heatsink.
pub const HEATSINK_CM3_PER_W: f64 = 2.05;

/// Density of aluminium in g/cm^3.
pub const ALUMINUM_G_PER_CM3: f64 = 2.70;

/// Peak SRAM operands moved per cycle, expressed as a function of array
/// geometry: `rows + 2 * cols` bytes/cycle (one ifmap stream plus filter
/// and ofmap streams).
pub fn peak_sram_bytes_per_cycle(rows: usize, cols: usize) -> f64 {
    (rows + 2 * cols) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_positive() {
        for v in [
            MAC_ENERGY_J,
            PE_LEAKAGE_W,
            SRAM_ENERGY_BASE_PJ,
            SRAM_ENERGY_SLOPE_PJ,
            SRAM_LEAKAGE_W_PER_KB,
            DRAM_ENERGY_PER_BYTE_J,
            DRAM_BACKGROUND_W,
            MCU_POWER_W,
            SENSOR_POWER_W,
            MIPI_POWER_W,
            HEATSINK_CM3_PER_W,
            ALUMINUM_G_PER_CM3,
        ] {
            assert!(v > 0.0);
        }
    }

    #[test]
    fn high_throughput_design_peak_power_near_paper() {
        // 256x256 PEs at 200 MHz should land in the ~8 W region.
        let peak = 256.0 * 256.0 * MAC_ENERGY_J * 200.0e6;
        assert!((6.0..=10.0).contains(&peak), "peak {peak} W");
    }

    #[test]
    fn peak_sram_bandwidth_scales_with_geometry() {
        assert!(peak_sram_bytes_per_cycle(64, 64) > peak_sram_bytes_per_cycle(8, 8));
    }
}

//! Technology-node scaling used by AutoPilot's architectural fine-tuning.

use std::fmt;

/// Silicon process node.
///
/// The paper's baseline models are at 28 nm; AutoPilot's fine-tuning step
/// may move a near-knee design to a denser node to shave power. Scaling
/// factors are conventional full-node estimates (dynamic energy scales
/// with `C V^2`, leakage improves more slowly).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TechNode {
    /// 28 nm planar (baseline, scaling factor 1.0).
    #[default]
    N28,
    /// 16 nm FinFET.
    N16,
    /// 7 nm FinFET.
    N7,
}

impl TechNode {
    /// All nodes, densest last.
    pub const ALL: [TechNode; 3] = [TechNode::N28, TechNode::N16, TechNode::N7];

    /// Multiplier on dynamic (switching) energy relative to 28 nm.
    pub fn dynamic_scale(&self) -> f64 {
        match self {
            TechNode::N28 => 1.0,
            TechNode::N16 => 0.55,
            TechNode::N7 => 0.30,
        }
    }

    /// Multiplier on leakage power relative to 28 nm.
    pub fn leakage_scale(&self) -> f64 {
        match self {
            TechNode::N28 => 1.0,
            TechNode::N16 => 0.60,
            TechNode::N7 => 0.45,
        }
    }

    /// Feature size in nanometres.
    pub fn nanometers(&self) -> u32 {
        match self {
            TechNode::N28 => 28,
            TechNode::N16 => 16,
            TechNode::N7 => 7,
        }
    }
}

impl fmt::Display for TechNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}nm", self.nanometers())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn denser_nodes_scale_down_monotonically() {
        let mut prev_dyn = f64::INFINITY;
        let mut prev_leak = f64::INFINITY;
        for node in TechNode::ALL {
            assert!(node.dynamic_scale() < prev_dyn);
            assert!(node.leakage_scale() < prev_leak);
            prev_dyn = node.dynamic_scale();
            prev_leak = node.leakage_scale();
        }
    }

    #[test]
    fn baseline_is_identity() {
        assert_eq!(TechNode::N28.dynamic_scale(), 1.0);
        assert_eq!(TechNode::N28.leakage_scale(), 1.0);
        assert_eq!(TechNode::default(), TechNode::N28);
    }

    #[test]
    fn display_formats_nanometers() {
        assert_eq!(TechNode::N7.to_string(), "7nm");
    }
}

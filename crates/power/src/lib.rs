//! # soc-power
//!
//! Power, energy, thermal, and weight models for the AutoPilot DSSoC
//! (Table III of the paper).
//!
//! The original work combined CACTI (SRAM), the Micron DRAM power
//! calculator, a published 28 nm PE energy model, and a commercial heatsink
//! calculator. This crate re-implements each as an analytic model with the
//! calibration constants gathered in [`calib`], so that the paper's
//! operating points are reproduced:
//!
//! * accelerator designs spanning roughly 0.7 W – 8.24 W across the
//!   Table II template space,
//! * compute payload weight of ~24 g at 0.7 W TDP and ~65 g at 8.24 W TDP
//!   (20 g motherboard + TDP-proportional aluminium heatsink).
//!
//! The main entry point is [`SocPowerModel`], which converts a simulated
//! network run ([`systolic_sim::NetworkStats`]) on a given accelerator
//! configuration into a [`PowerReport`].
//!
//! # Example
//!
//! ```
//! use soc_power::SocPowerModel;
//! use systolic_sim::{ArrayConfig, Layer, Simulator};
//!
//! let config = ArrayConfig::default();
//! let sim = Simulator::new(config.clone());
//! let stats = sim.simulate_network(&[Layer::conv2d(96, 96, 3, 32, 3, 2, 1)]);
//! let report = SocPowerModel::new().evaluate(&config, &stats);
//! assert!(report.total_avg_w() > 0.0);
//! assert!(report.tdp_w() >= report.accelerator_avg_w());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod breakdown;
pub mod calib;
mod dram;
mod pe;
mod soc;
mod sram;
mod technode;
mod thermal;

pub use breakdown::power_breakdown;
pub use dram::DramModel;
pub use pe::PeModel;
pub use soc::{PowerReport, SocPowerModel};
pub use sram::SramModel;
pub use technode::TechNode;
pub use thermal::{compute_payload_grams, heatsink_grams, heatsink_volume_cm3, MOTHERBOARD_GRAMS};

//! Cooperative-cancellation regressions: every optimizer must notice a
//! cancelled [`RunControl`] in its inner loop and return
//! [`DseError::Cancelled`] cleanly — no partial front, no panic — and
//! an active-but-never-cancelled token must not perturb results.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use dse_opt::{
    AnnealingOptimizer, DseError, EvalError, Evaluator, ExhaustiveSearch, MultiObjectiveOptimizer,
    Nsga2Optimizer, RandomSearch, RunControl, SmsEgoOptimizer,
};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Bi-objective trade-off whose evaluator cancels the shared token
/// after `limit` evaluations — models a tenant hitting DELETE while
/// the job is mid-search.
struct CancelAfter {
    limit: usize,
    count: AtomicUsize,
    control: RunControl,
}

impl CancelAfter {
    fn new(limit: usize, control: RunControl) -> CancelAfter {
        CancelAfter { limit, count: AtomicUsize::new(0), control }
    }
}

impl Evaluator for CancelAfter {
    fn num_objectives(&self) -> usize {
        2
    }

    fn evaluate(&self, point: &[usize]) -> Result<Vec<f64>, EvalError> {
        if self.count.fetch_add(1, Ordering::SeqCst) + 1 >= self.limit {
            self.control.cancel();
        }
        let x = point[0] as f64 / 15.0;
        Ok(vec![x, (1.0 - x) * (1.0 - x)])
    }

    fn reference_point(&self) -> Vec<f64> {
        vec![1.1, 1.1]
    }
}

fn space() -> dse_opt::DesignSpace {
    dse_opt::DesignSpace::new(vec![16, 16]).expect("valid space")
}

fn assert_cancels(name: &str, opt: &mut dyn MultiObjectiveOptimizer) {
    // Pre-cancelled token: the run must bail out before burning budget.
    let pre = RunControl::new();
    pre.cancel();
    let eval = CancelAfter::new(usize::MAX, pre.clone());
    let res = opt.run_controlled(&space(), &eval, 64, &pre);
    assert_eq!(res.err(), Some(DseError::Cancelled), "{name}: pre-cancelled");
    assert_eq!(eval.count.load(Ordering::SeqCst), 0, "{name}: evaluated after pre-cancel");

    // Mid-run cancellation from inside the evaluator: the inner loop
    // must notice at its next check and return cleanly.
    let control = RunControl::new();
    let eval = CancelAfter::new(6, control.clone());
    let res = opt.run_controlled(&space(), &eval, 200, &control);
    assert_eq!(res.err(), Some(DseError::Cancelled), "{name}: mid-run");
    let evaluated = eval.count.load(Ordering::SeqCst);
    assert!(evaluated >= 6, "{name}: cancelled before the trigger ({evaluated})");
    assert!(evaluated < 200, "{name}: burned the whole budget ({evaluated})");
}

#[test]
fn sms_ego_cancels_cleanly() {
    assert_cancels("sms-ego-bo", &mut SmsEgoOptimizer::new(3).with_init_samples(4));
}

#[test]
fn nsga2_cancels_cleanly() {
    assert_cancels("nsga-ii", &mut Nsga2Optimizer::new(3).with_population(4));
}

#[test]
fn random_search_cancels_cleanly() {
    assert_cancels("random-search", &mut RandomSearch::new(3));
}

#[test]
fn annealing_cancels_cleanly() {
    assert_cancels("simulated-annealing", &mut AnnealingOptimizer::new(3));
}

#[test]
fn exhaustive_cancels_cleanly() {
    assert_cancels("exhaustive", &mut ExhaustiveSearch::new());
}

/// An objective evaluator that never cancels, for determinism checks.
struct Quiet;

impl Evaluator for Quiet {
    fn num_objectives(&self) -> usize {
        2
    }
    fn evaluate(&self, point: &[usize]) -> Result<Vec<f64>, EvalError> {
        let x = point[0] as f64 / 15.0;
        let y = point[1] as f64 / 15.0;
        Ok(vec![x + y * 0.25, (1.0 - x) * (1.0 - x) + 0.1 * y])
    }
    fn reference_point(&self) -> Vec<f64> {
        vec![2.0, 2.0]
    }
}

#[test]
fn active_token_is_bit_identical_to_uncontrolled_run() {
    let budget = 32;
    let plain = SmsEgoOptimizer::new(7).with_init_samples(6).run(&space(), &Quiet, budget);
    let controlled = SmsEgoOptimizer::new(7).with_init_samples(6).run_controlled(
        &space(),
        &Quiet,
        budget,
        &RunControl::new(),
    );
    assert_eq!(plain, controlled);

    let plain = Nsga2Optimizer::new(7).with_population(6).run(&space(), &Quiet, budget);
    let controlled = Nsga2Optimizer::new(7).with_population(6).run_controlled(
        &space(),
        &Quiet,
        budget,
        &RunControl::new(),
    );
    assert_eq!(plain, controlled);

    let plain = RandomSearch::new(7).run(&space(), &Quiet, budget);
    let controlled =
        RandomSearch::new(7).run_controlled(&space(), &Quiet, budget, &RunControl::new());
    assert_eq!(plain, controlled);
}

#[test]
fn progress_checkpoints_are_published() {
    let control = RunControl::new();
    let res =
        SmsEgoOptimizer::new(5).with_init_samples(6).run_controlled(&space(), &Quiet, 24, &control);
    assert!(res.is_ok());
    assert!(control.evaluations() > 0, "no progress published");
    assert!(control.front_size() > 0, "no front size published");
}

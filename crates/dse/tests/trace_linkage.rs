//! Cross-thread trace flow linkage through `dse_opt::par`: spans opened
//! inside worker closures must parent back to the span that was live on
//! the spawning thread, at any worker count.

use autopilot_obs as obs;
use dse_opt::par::parallel_map_with;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Serializes tests: the trace gate and event pool are process-global.
fn guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn ancestry_reaches(spans: &[obs::trace::CompleteSpan], mut parent: u64, target: u64) -> bool {
    let mut hops = 0;
    while parent != 0 && hops < 64 {
        if parent == target {
            return true;
        }
        parent = match spans.iter().find(|s| s.id == parent) {
            Some(p) => p.parent,
            None => return false,
        };
        hops += 1;
    }
    parent == target
}

#[test]
fn worker_spans_parent_to_the_spawning_span_at_any_worker_count() {
    let _guard = guard();
    obs::trace::force_enabled(true);
    for workers in [1usize, 2, 8] {
        obs::trace::clear();
        let items: Vec<u64> = (0..32).collect();
        let root_span = obs::span("tl.root");
        let got = parallel_map_with(workers, &items, |_, &x| {
            let _child = obs::span("tl.child");
            x * 2
        });
        drop(root_span);
        assert_eq!(got, items.iter().map(|&x| x * 2).collect::<Vec<_>>());

        let paired = obs::trace::take().pair();
        assert_eq!(paired.unmatched_begins, 0, "workers = {workers}");
        assert_eq!(paired.unmatched_ends, 0, "workers = {workers}");
        let root = paired
            .spans
            .iter()
            .find(|s| s.name == "tl.root")
            .unwrap_or_else(|| panic!("root span missing at workers = {workers}"));
        let children: Vec<_> = paired.spans.iter().filter(|s| s.name == "tl.child").collect();
        assert_eq!(children.len(), 32, "workers = {workers}");
        for child in &children {
            assert!(
                ancestry_reaches(&paired.spans, child.parent, root.id),
                "workers = {workers}: child {child:?} does not reach the root"
            );
        }
        if workers == 1 {
            // Inline path: children sit directly under the root on the
            // same thread, with no par.worker hop.
            assert!(children.iter().all(|c| c.parent == root.id && c.tid == root.tid));
            assert!(paired.spans.iter().all(|s| s.name != "par.worker"));
        } else {
            // Cross-thread children hop through a par.worker span that
            // parents to the root.
            let hops: Vec<_> = paired.spans.iter().filter(|s| s.name == "par.worker").collect();
            assert!(!hops.is_empty(), "workers = {workers}");
            assert!(
                hops.iter().all(|h| h.parent == root.id && h.tid != root.tid),
                "workers = {workers}: root = {root:?}, hops = {hops:#?}"
            );
            for child in &children {
                let parent = paired
                    .spans
                    .iter()
                    .find(|s| s.id == child.parent)
                    .unwrap_or_else(|| panic!("parent of {child:?} missing"));
                assert_eq!(parent.tid, child.tid, "child nests in its own worker's span");
            }
        }
    }
    obs::trace::force_enabled(false);
}

#[test]
fn tracing_off_leaves_par_silent() {
    let _guard = guard();
    obs::trace::force_enabled(false);
    obs::trace::clear();
    let items: Vec<u64> = (0..8).collect();
    let _root = obs::span("tl.off_root");
    let got = parallel_map_with(4, &items, |_, &x| {
        let _child = obs::span("tl.off_child");
        x + 1
    });
    assert_eq!(got.len(), 8);
    assert!(obs::trace::take().is_empty());
}

//! Property-based tests for the DSE machinery, driven by seeded
//! `autopilot_rng` case generation (deterministic, no external harness).

use autopilot_rng::Rng;
use dse_opt::pareto::{
    crowding_distance, dominates, hypervolume, inverted_generational_distance, non_dominated_sort,
    pareto_indices, IncrementalFront,
};
use dse_opt::{
    AnnealingOptimizer, CachedEvaluator, DesignSpace, EvalError, Evaluator, ExhaustiveSearch,
    GaussianProcess, MultiObjectiveOptimizer, Nsga2Optimizer, RandomSearch, SparseGaussianProcess,
};

const CASES: u64 = 64;

/// 1 to `max_n - 1` points in `[0, 10)^d`.
fn random_points(rng: &mut Rng, max_n: usize, d: usize) -> Vec<Vec<f64>> {
    let n = rng.range_usize(1, max_n);
    (0..n).map(|_| (0..d).map(|_| rng.range_f64(0.0, 10.0)).collect()).collect()
}

struct Weighted;

impl Evaluator for Weighted {
    fn num_objectives(&self) -> usize {
        2
    }
    fn evaluate(&self, point: &[usize]) -> Result<Vec<f64>, EvalError> {
        let x = point[0] as f64 / 15.0;
        let y = point.get(1).copied().unwrap_or(0) as f64 / 15.0;
        Ok(vec![x + 0.2 * y, (1.0 - x) + 0.3 * (1.0 - y)])
    }
    fn reference_point(&self) -> Vec<f64> {
        vec![2.0, 2.0]
    }
}

/// No point on the Pareto front is dominated by any other point.
#[test]
fn pareto_front_is_mutually_nondominated() {
    for case in 0..CASES {
        let mut rng = Rng::seed_stream(0xd5e_0001, case);
        let points = random_points(&mut rng, 24, 3);
        let front = pareto_indices(&points);
        for &i in &front {
            for (j, q) in points.iter().enumerate() {
                if i != j {
                    assert!(!dominates(q, &points[i]) || points[i] == *q, "case {case}");
                }
            }
        }
    }
}

/// Every point belongs to exactly one front of the non-dominated sort,
/// and front ranks respect dominance.
#[test]
fn nds_partitions_points() {
    for case in 0..CASES {
        let mut rng = Rng::seed_stream(0xd5e_0002, case);
        let points = random_points(&mut rng, 20, 2);
        let fronts = non_dominated_sort(&points);
        let mut seen = vec![false; points.len()];
        for front in &fronts {
            for &i in front {
                assert!(!seen[i], "case {case}: point {i} appears twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "case {case}");
        // A point in front k+1 must be dominated by someone in front k.
        for w in fronts.windows(2) {
            for &j in &w[1] {
                assert!(
                    w[0].iter().any(|&i| dominates(&points[i], &points[j])),
                    "case {case}: front ordering violated"
                );
            }
        }
    }
}

/// Hypervolume never decreases when a point is added.
#[test]
fn hypervolume_monotone_in_points() {
    for case in 0..CASES {
        let mut rng = Rng::seed_stream(0xd5e_0003, case);
        let points = random_points(&mut rng, 16, 3);
        let extra: Vec<f64> = (0..3).map(|_| rng.range_f64(0.0, 10.0)).collect();
        let reference = [11.0, 11.0, 11.0];
        let base = hypervolume(&points, &reference);
        let mut more = points.clone();
        more.push(extra);
        assert!(hypervolume(&more, &reference) >= base - 1e-9, "case {case}");
    }
}

/// Hypervolume is bounded by the reference box volume.
#[test]
fn hypervolume_bounded_by_box() {
    for case in 0..CASES {
        let mut rng = Rng::seed_stream(0xd5e_0004, case);
        let points = random_points(&mut rng, 16, 2);
        let reference = [10.5, 10.5];
        let hv = hypervolume(&points, &reference);
        assert!(hv <= 10.5 * 10.5 + 1e-9, "case {case}");
        assert!(hv >= 0.0, "case {case}");
    }
}

/// Crowding distances are non-negative and boundary points infinite.
#[test]
fn crowding_distances_well_formed() {
    for case in 0..CASES {
        let mut rng = Rng::seed_stream(0xd5e_0005, case);
        let points = random_points(&mut rng, 12, 2);
        let idx: Vec<usize> = (0..points.len()).collect();
        let d = crowding_distance(&points, &idx);
        assert_eq!(d.len(), points.len(), "case {case}");
        assert!(d.iter().all(|&x| x >= 0.0), "case {case}");
        if points.len() >= 2 {
            assert!(d.iter().filter(|x| x.is_infinite()).count() >= 2, "case {case}");
        }
    }
}

/// IGD of the exhaustive front against itself is zero; any sampled
/// subset has non-negative IGD.
#[test]
fn igd_properties() {
    let space = DesignSpace::new(vec![16, 16]).unwrap();
    let truth = ExhaustiveSearch::new().run(&space, &Weighted, 10_000).unwrap();
    let truth_front: Vec<Vec<f64>> =
        truth.pareto_front().iter().map(|e| e.objectives.clone()).collect();
    assert_eq!(inverted_generational_distance(&truth_front, &truth_front), 0.0);
    for seed in 0..CASES {
        let sampled = RandomSearch::new(seed).run(&space, &Weighted, 20).unwrap();
        let approx: Vec<Vec<f64>> =
            sampled.pareto_front().iter().map(|e| e.objectives.clone()).collect();
        assert!(inverted_generational_distance(&approx, &truth_front) >= 0.0, "seed {seed}");
    }
}

/// All optimizers respect the budget and never report points outside
/// the space.
#[test]
fn optimizers_respect_budget_and_space() {
    for case in 0..32 {
        let mut rng = Rng::seed_stream(0xd5e_0006, case);
        let seed = rng.next_u64();
        let budget = rng.range_usize(4, 40);
        let space = DesignSpace::new(vec![16, 16]).unwrap();
        let results = [
            RandomSearch::new(seed).run(&space, &Weighted, budget).unwrap(),
            Nsga2Optimizer::new(seed).with_population(6).run(&space, &Weighted, budget).unwrap(),
            AnnealingOptimizer::new(seed).run(&space, &Weighted, budget).unwrap(),
        ];
        for r in results {
            assert!(r.evaluation_count() <= budget, "case {case}: {} over budget", r.algorithm);
            for e in &r.evaluations {
                assert!(space.contains(&e.point), "case {case}");
            }
            // Hypervolume trace is monotone.
            for w in r.hypervolume_trace.windows(2) {
                assert!(w[1] >= w[0] - 1e-12, "case {case}");
            }
        }
    }
}

/// Batched GP prediction is bit-for-bit identical to per-point
/// prediction — means and variances — across random fits, including
/// incrementally extended GPs and pools containing training points.
#[test]
fn predict_batch_bit_identical_to_scalar() {
    for case in 0..CASES {
        let mut rng = Rng::seed_stream(0xd5e_0008, case);
        let d = rng.range_usize(1, 5);
        let n = rng.range_usize(3, 25);
        let xs: Vec<Vec<f64>> =
            (0..n).map(|_| (0..d).map(|_| rng.range_f64(0.0, 1.0)).collect()).collect();
        let ys: Vec<f64> = (0..n).map(|_| rng.range_f64(-5.0, 5.0)).collect();
        // Fit on a prefix, then extend point by point: the optimizer
        // predicts from extended GPs, so the extended Cholesky path must
        // be covered too.
        let split = rng.range_usize(2, n + 1).min(n);
        let mut gp = GaussianProcess::fit(&xs[..split], &ys[..split]).expect("fit succeeds");
        for i in split..n {
            assert!(gp.extend(&xs[i], ys[i]), "case {case}: extend rejected point {i}");
        }
        // Pool: random queries plus exact training points (variance ~ 0
        // there, exercising the clamp path identically in both code paths).
        let mut pool: Vec<Vec<f64>> = (0..rng.range_usize(1, 40))
            .map(|_| (0..d).map(|_| rng.range_f64(-0.5, 1.5)).collect())
            .collect();
        pool.push(xs[0].clone());
        pool.push(xs[n - 1].clone());
        let batch = gp.predict_batch(&pool);
        assert_eq!(batch.len(), pool.len(), "case {case}");
        for (j, (p, b)) in pool.iter().zip(&batch).enumerate() {
            let (sm, sv) = gp.predict(p);
            assert_eq!(sm.to_bits(), b.0.to_bits(), "case {case}: mean differs at pool[{j}]");
            assert_eq!(sv.to_bits(), b.1.to_bits(), "case {case}: variance differs at pool[{j}]");
        }
    }
}

/// Pushing points in ascending index order into an `IncrementalFront`
/// reproduces `pareto_indices` exactly at every step — membership,
/// order, and the stored points.
#[test]
fn incremental_front_tracks_batch_pareto_indices() {
    for case in 0..CASES {
        let mut rng = Rng::seed_stream(0xd5e_0009, case);
        let d = rng.range_usize(2, 4);
        // Quantize to quarter-steps so duplicates actually occur.
        let points: Vec<Vec<f64>> = (0..rng.range_usize(1, 32))
            .map(|_| (0..d).map(|_| (rng.range_f64(0.0, 4.0) * 4.0).floor() / 4.0).collect())
            .collect();
        let mut front = IncrementalFront::new();
        for (i, p) in points.iter().enumerate() {
            front.push(i, p.clone());
            let expected = pareto_indices(&points[..=i]);
            assert_eq!(front.indices(), &expected[..], "case {case}: after push {i}");
            for (&idx, stored) in front.indices().iter().zip(front.points()) {
                assert_eq!(stored, &points[idx], "case {case}: stored point mismatch");
            }
        }
    }
}

/// A memoizing evaluator never returns stale objectives: for any query
/// sequence (duplicates included), every answer equals a fresh inner
/// evaluation, and the bookkeeping adds up.
#[test]
fn cached_evaluator_never_stale() {
    for case in 0..CASES {
        let mut rng = Rng::seed_stream(0xd5e_0007, case);
        let queries: Vec<Vec<usize>> =
            (0..rng.range_usize(1, 64)).map(|_| vec![rng.below(16), rng.below(16)]).collect();
        let cached = CachedEvaluator::new(Weighted);
        for q in &queries {
            let fresh = Weighted.evaluate(q).unwrap();
            assert_eq!(cached.evaluate(q).unwrap(), fresh.clone(), "case {case}: query {q:?}");
            // The stored entry matches what was just returned.
            assert_eq!(cached.peek(q), Some(fresh), "case {case}");
        }
        let mut distinct: Vec<&Vec<usize>> = queries.iter().collect();
        distinct.sort();
        distinct.dedup();
        let stats = cached.stats();
        assert_eq!(stats.misses, distinct.len(), "case {case}");
        assert_eq!(stats.entries, distinct.len(), "case {case}");
        assert_eq!(stats.hits, queries.len() - distinct.len(), "case {case}");
    }
}

/// A smooth synthetic target over the unit cube.
fn smooth_target(p: &[f64]) -> f64 {
    p.iter().enumerate().map(|(i, v)| (v * (1.3 + i as f64 * 0.4)).sin()).sum()
}

/// With the inducing set covering every training input (`m = n`), the
/// DTC sparse posterior coincides with the exact GP posterior at the
/// same lengthscale — means and variances within 1e-5 across random
/// archives and query points.
#[test]
fn sparse_gp_with_full_inducing_matches_exact() {
    for case in 0..CASES {
        let mut rng = Rng::seed_stream(0xd5e_000a, case);
        let n = rng.range_usize(24, 56);
        let d = rng.range_usize(2, 6);
        let x: Vec<Vec<f64>> = (0..n).map(|_| (0..d).map(|_| rng.next_f64()).collect()).collect();
        let y: Vec<f64> = x.iter().map(|p| smooth_target(p)).collect();
        let exact = GaussianProcess::fit(&x, &y).expect("exact GP fits");
        let sparse = SparseGaussianProcess::fit_with_lengthscale(&x, &y, exact.lengthscale_sq(), n)
            .expect("sparse GP fits");
        assert_eq!(sparse.inducing_count(), n, "case {case}");
        for _ in 0..8 {
            let q: Vec<f64> = (0..d).map(|_| rng.next_f64()).collect();
            let (em, ev) = exact.predict(&q);
            let (sm, sv) = sparse.predict(&q);
            assert!((em - sm).abs() < 1e-5, "case {case}: mean {em} vs {sm}");
            assert!((ev - sv).abs() < 1e-5, "case {case}: var {ev} vs {sv}");
        }
    }
}

/// A genuinely low-rank sparse posterior (`m < n`) stays well-formed on
/// random archives: finite means, variances in `[0, signal cap]`, and
/// the batched path bit-identical to scalar prediction.
#[test]
fn sparse_gp_low_rank_is_well_formed_and_batch_consistent() {
    for case in 0..CASES {
        let mut rng = Rng::seed_stream(0xd5e_000b, case);
        let n = rng.range_usize(32, 72);
        let d = rng.range_usize(2, 6);
        let m = rng.range_usize(8, 24);
        let x: Vec<Vec<f64>> = (0..n).map(|_| (0..d).map(|_| rng.next_f64()).collect()).collect();
        let y: Vec<f64> = x.iter().map(|p| smooth_target(p)).collect();
        let sparse = SparseGaussianProcess::fit(&x, &y, m).expect("sparse GP fits");
        assert!(sparse.inducing_count() <= m, "case {case}");
        let pool: Vec<Vec<f64>> =
            (0..16).map(|_| (0..d).map(|_| rng.next_f64()).collect()).collect();
        let batch = sparse.predict_batch(&pool);
        let spread = y.iter().fold(f64::NEG_INFINITY, |a, &v| a.max(v))
            - y.iter().fold(f64::INFINITY, |a, &v| a.min(v));
        for (q, &(bm, bv)) in pool.iter().zip(&batch) {
            let (sm, sv) = sparse.predict(q);
            assert_eq!(sm.to_bits(), bm.to_bits(), "case {case}: batched mean differs");
            assert_eq!(sv.to_bits(), bv.to_bits(), "case {case}: batched var differs");
            assert!(sm.is_finite(), "case {case}");
            assert!(sv >= 0.0 && sv.is_finite(), "case {case}");
            // Posterior mean stays within the observed target range
            // padded by its spread — the prior mean is the average
            // target, so a sane posterior cannot run away from it.
            let lo = y.iter().fold(f64::INFINITY, |a, &v| a.min(v)) - spread;
            let hi = y.iter().fold(f64::NEG_INFINITY, |a, &v| a.max(v)) + spread;
            assert!(sm >= lo && sm <= hi, "case {case}: mean {sm} outside [{lo}, {hi}]");
        }
    }
}

/// Truncating an extended exact GP back to its fit size and replaying
/// the same extensions reproduces the factorization **bitwise**: the
/// truncate-then-extend round trip is the identity on predictions.
#[test]
fn exact_gp_truncate_then_extend_roundtrip_is_bitwise() {
    for case in 0..CASES {
        let mut rng = Rng::seed_stream(0xd5e_000c, case);
        let d = rng.range_usize(2, 5);
        let base = rng.range_usize(8, 20);
        let extra = rng.range_usize(2, 8);
        let x: Vec<Vec<f64>> =
            (0..base + extra).map(|_| (0..d).map(|_| rng.next_f64()).collect()).collect();
        let y: Vec<f64> = x.iter().map(|p| smooth_target(p)).collect();
        let mut gp = GaussianProcess::fit(&x[..base], &y[..base]).expect("exact GP fits");
        for i in base..base + extra {
            assert!(gp.extend(&x[i], y[i]), "case {case}: extend {i}");
        }
        let pool: Vec<Vec<f64>> =
            (0..8).map(|_| (0..d).map(|_| rng.next_f64()).collect()).collect();
        let before: Vec<(u64, u64)> = pool
            .iter()
            .map(|q| {
                let (m, v) = gp.predict(q);
                (m.to_bits(), v.to_bits())
            })
            .collect();
        assert!(gp.truncate(base), "case {case}: truncate");
        assert_eq!(gp.len(), base, "case {case}");
        for i in base..base + extra {
            assert!(gp.extend(&x[i], y[i]), "case {case}: re-extend {i}");
        }
        for (q, want) in pool.iter().zip(&before) {
            let (m, v) = gp.predict(q);
            assert_eq!((m.to_bits(), v.to_bits()), *want, "case {case}: round trip drifted");
        }
    }
}

//! Property-based tests for the DSE machinery.

use dse_opt::pareto::{
    crowding_distance, dominates, hypervolume, inverted_generational_distance, non_dominated_sort,
    pareto_indices,
};
use dse_opt::{
    AnnealingOptimizer, CachedEvaluator, DesignSpace, EvalError, Evaluator, ExhaustiveSearch,
    MultiObjectiveOptimizer, Nsga2Optimizer, RandomSearch,
};
use proptest::prelude::*;

fn arb_points(max_n: usize, d: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0.0f64..10.0, d..=d), 1..max_n)
}

struct Weighted;

impl Evaluator for Weighted {
    fn num_objectives(&self) -> usize {
        2
    }
    fn evaluate(&self, point: &[usize]) -> Result<Vec<f64>, EvalError> {
        let x = point[0] as f64 / 15.0;
        let y = point.get(1).copied().unwrap_or(0) as f64 / 15.0;
        Ok(vec![x + 0.2 * y, (1.0 - x) + 0.3 * (1.0 - y)])
    }
    fn reference_point(&self) -> Vec<f64> {
        vec![2.0, 2.0]
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No point on the Pareto front is dominated by any other point.
    #[test]
    fn pareto_front_is_mutually_nondominated(points in arb_points(24, 3)) {
        let front = pareto_indices(&points);
        for &i in &front {
            for (j, q) in points.iter().enumerate() {
                if i != j {
                    prop_assert!(!dominates(q, &points[i]) || points[i] == *q);
                }
            }
        }
    }

    /// Every point belongs to exactly one front of the non-dominated
    /// sort, and front ranks respect dominance.
    #[test]
    fn nds_partitions_points(points in arb_points(20, 2)) {
        let fronts = non_dominated_sort(&points);
        let mut seen = vec![false; points.len()];
        for front in &fronts {
            for &i in front {
                prop_assert!(!seen[i], "point {i} appears twice");
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        // A point in front k+1 must be dominated by someone in front k.
        for w in fronts.windows(2) {
            for &j in &w[1] {
                prop_assert!(
                    w[0].iter().any(|&i| dominates(&points[i], &points[j])),
                    "front ordering violated"
                );
            }
        }
    }

    /// Hypervolume never decreases when a point is added.
    #[test]
    fn hypervolume_monotone_in_points(points in arb_points(16, 3), extra in prop::collection::vec(0.0f64..10.0, 3)) {
        let reference = [11.0, 11.0, 11.0];
        let base = hypervolume(&points, &reference);
        let mut more = points.clone();
        more.push(extra);
        prop_assert!(hypervolume(&more, &reference) >= base - 1e-9);
    }

    /// Hypervolume is bounded by the reference box volume.
    #[test]
    fn hypervolume_bounded_by_box(points in arb_points(16, 2)) {
        let reference = [10.5, 10.5];
        let hv = hypervolume(&points, &reference);
        prop_assert!(hv <= 10.5 * 10.5 + 1e-9);
        prop_assert!(hv >= 0.0);
    }

    /// Crowding distances are non-negative and boundary points infinite.
    #[test]
    fn crowding_distances_well_formed(points in arb_points(12, 2)) {
        let idx: Vec<usize> = (0..points.len()).collect();
        let d = crowding_distance(&points, &idx);
        prop_assert_eq!(d.len(), points.len());
        prop_assert!(d.iter().all(|&x| x >= 0.0));
        if points.len() >= 2 {
            prop_assert!(d.iter().filter(|x| x.is_infinite()).count() >= 2);
        }
    }

    /// IGD of the exhaustive front against itself is zero; any sampled
    /// subset has non-negative IGD.
    #[test]
    fn igd_properties(seed in 0u64..64) {
        let space = DesignSpace::new(vec![16, 16]).unwrap();
        let truth = ExhaustiveSearch::new().run(&space, &Weighted, 10_000).unwrap();
        let truth_front: Vec<Vec<f64>> =
            truth.pareto_front().iter().map(|e| e.objectives.clone()).collect();
        prop_assert_eq!(
            inverted_generational_distance(&truth_front, &truth_front), 0.0);
        let sampled = RandomSearch::new(seed).run(&space, &Weighted, 20).unwrap();
        let approx: Vec<Vec<f64>> =
            sampled.pareto_front().iter().map(|e| e.objectives.clone()).collect();
        prop_assert!(inverted_generational_distance(&approx, &truth_front) >= 0.0);
    }

    /// All optimizers respect the budget and never report points outside
    /// the space.
    #[test]
    fn optimizers_respect_budget_and_space(seed in 0u64..32, budget in 4usize..40) {
        let space = DesignSpace::new(vec![16, 16]).unwrap();
        let results = [
            RandomSearch::new(seed).run(&space, &Weighted, budget).unwrap(),
            Nsga2Optimizer::new(seed).with_population(6).run(&space, &Weighted, budget).unwrap(),
            AnnealingOptimizer::new(seed).run(&space, &Weighted, budget).unwrap(),
        ];
        for r in results {
            prop_assert!(r.evaluation_count() <= budget, "{} over budget", r.algorithm);
            for e in &r.evaluations {
                prop_assert!(space.contains(&e.point));
            }
            // Hypervolume trace is monotone.
            for w in r.hypervolume_trace.windows(2) {
                prop_assert!(w[1] >= w[0] - 1e-12);
            }
        }
    }

    /// A memoizing evaluator never returns stale objectives: for any
    /// query sequence (duplicates included), every answer equals a fresh
    /// inner evaluation, and the bookkeeping adds up.
    #[test]
    fn cached_evaluator_never_stale(
        queries in prop::collection::vec(
            prop::collection::vec(0usize..16, 2..=2), 1..64)
    ) {
        let cached = CachedEvaluator::new(Weighted);
        for q in &queries {
            let fresh = Weighted.evaluate(q).unwrap();
            prop_assert_eq!(cached.evaluate(q).unwrap(), fresh.clone(), "query {:?}", q);
            // The stored entry matches what was just returned.
            prop_assert_eq!(cached.peek(q), Some(fresh));
        }
        let mut distinct: Vec<&Vec<usize>> = queries.iter().collect();
        distinct.sort();
        distinct.dedup();
        let stats = cached.stats();
        prop_assert_eq!(stats.misses, distinct.len());
        prop_assert_eq!(stats.entries, distinct.len());
        prop_assert_eq!(stats.hits, queries.len() - distinct.len());
    }
}

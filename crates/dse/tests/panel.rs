//! Contract tests for the kernel-panel engine: degenerate shapes,
//! agreement with the scalar kernel formula, and bitwise equality of
//! the striped parallel path at every worker count.

// Helpers shared across #[test] fns fall outside `allow-unwrap-in-tests`.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use autopilot_rng::Rng;
use dse_opt::linalg::sq_dist;
use dse_opt::{correlation_panel, correlation_panel_with, KernelExpMode};

/// Seeded random point set, `n` points of dimension `d` in `[0, 1)^d`.
fn points(rng: &mut Rng, n: usize, d: usize) -> Vec<Vec<f64>> {
    (0..n).map(|_| (0..d).map(|_| rng.next_f64()).collect()).collect()
}

#[test]
fn empty_rows_give_zero_by_m_panel() {
    let mut rng = Rng::seed_from_u64(41);
    let cols = points(&mut rng, 5, 3);
    for mode in [KernelExpMode::Exact, KernelExpMode::Fast] {
        let p = correlation_panel(&[], &cols, -0.5, mode);
        assert_eq!((p.rows(), p.cols()), (0, 5));
    }
}

#[test]
fn empty_cols_give_n_by_zero_panel() {
    let mut rng = Rng::seed_from_u64(42);
    let rows = points(&mut rng, 4, 3);
    for mode in [KernelExpMode::Exact, KernelExpMode::Fast] {
        let p = correlation_panel(&rows, &[], -0.5, mode);
        assert_eq!((p.rows(), p.cols()), (4, 0));
    }
}

#[test]
fn zero_dimensional_points_give_unit_correlations() {
    // With d = 0 every squared distance is the empty sum, so every
    // entry is exp(0 · scale) = 1 exactly, in both modes.
    let rows: Vec<Vec<f64>> = vec![vec![]; 3];
    let cols: Vec<Vec<f64>> = vec![vec![]; 7];
    for mode in [KernelExpMode::Exact, KernelExpMode::Fast] {
        let p = correlation_panel(&rows, &cols, -2.5, mode);
        assert_eq!((p.rows(), p.cols()), (3, 7));
        for i in 0..3 {
            for j in 0..7 {
                assert_eq!(p[(i, j)].to_bits(), 1.0f64.to_bits());
            }
        }
    }
}

#[test]
fn single_point_panel_matches_scalar_kernel() {
    let mut rng = Rng::seed_from_u64(43);
    let rows = points(&mut rng, 1, 7);
    let cols = points(&mut rng, 1, 7);
    let scale = -0.5 / 1.3;
    let p = correlation_panel(&rows, &cols, scale, KernelExpMode::Exact);
    assert_eq!((p.rows(), p.cols()), (1, 1));
    let want = (sq_dist(&rows[0], &cols[0]) * scale).exp();
    assert_eq!(p[(0, 0)].to_bits(), want.to_bits());
    // A point against itself sits exactly on the kernel diagonal.
    let diag = correlation_panel(&rows, &rows, scale, KernelExpMode::Exact);
    assert_eq!(diag[(0, 0)].to_bits(), 1.0f64.to_bits());
}

#[test]
fn exact_panel_matches_scalar_formula_entrywise() {
    let mut rng = Rng::seed_from_u64(44);
    // Wide enough that several PANEL_TILE tiles are exercised.
    let rows = points(&mut rng, 9, 7);
    let cols = points(&mut rng, 301, 7);
    let scale = -0.5 / 0.7;
    let p = correlation_panel_with(1, &rows, &cols, scale, KernelExpMode::Exact);
    for (i, xi) in rows.iter().enumerate() {
        for (j, cj) in cols.iter().enumerate() {
            let want = (sq_dist(xi, cj) * scale).exp();
            assert_eq!(p[(i, j)].to_bits(), want.to_bits(), "entry ({i}, {j})");
        }
    }
}

#[test]
fn panel_bitwise_identical_at_every_worker_count() {
    // Large enough that the striped parallel path actually engages
    // (n·m = 65 536 entries clears the per-worker floor at 8 workers,
    // and m = 1024 columns clears the minimum stripe width), on seeded
    // random matrices. The panel contract: stripe boundaries never
    // enter any entry's arithmetic, so every worker count — including
    // the inline single-stripe path — produces the same bits.
    let mut rng = Rng::seed_from_u64(45);
    let rows = points(&mut rng, 64, 7);
    let cols = points(&mut rng, 1024, 7);
    let scale = -0.5 / 2.1;
    for mode in [KernelExpMode::Exact, KernelExpMode::Fast] {
        let single = correlation_panel_with(1, &rows, &cols, scale, mode);
        for workers in [2usize, 8] {
            let striped = correlation_panel_with(workers, &rows, &cols, scale, mode);
            assert_eq!((striped.rows(), striped.cols()), (single.rows(), single.cols()));
            for i in 0..single.rows() {
                for j in 0..single.cols() {
                    assert_eq!(
                        striped[(i, j)].to_bits(),
                        single[(i, j)].to_bits(),
                        "mode {:?}: entry ({i}, {j}) diverged at {workers} workers",
                        mode
                    );
                }
            }
        }
    }
}

#[test]
fn ragged_stripe_widths_stay_bit_identical() {
    // A column count that does not divide evenly across stripes, so the
    // leading stripes carry the remainder — the scatter offsets must
    // still reassemble the exact single-stripe panel.
    let mut rng = Rng::seed_from_u64(46);
    let rows = points(&mut rng, 96, 5);
    let cols = points(&mut rng, 1021, 5);
    let scale = -0.5 / 0.9;
    let single = correlation_panel_with(1, &rows, &cols, scale, KernelExpMode::Exact);
    for workers in [3usize, 5, 8] {
        let striped = correlation_panel_with(workers, &rows, &cols, scale, KernelExpMode::Exact);
        for i in 0..single.rows() {
            for j in 0..single.cols() {
                assert_eq!(striped[(i, j)].to_bits(), single[(i, j)].to_bits());
            }
        }
    }
}

//! Error-path coverage: a failing evaluator must surface as `Err` from
//! every optimizer — never a panic — and failed evaluations must not be
//! memoized by [`CachedEvaluator`].

// Helpers shared across #[test] fns fall outside `allow-unwrap-in-tests`.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use dse_opt::{
    AnnealingOptimizer, CachedEvaluator, DesignSpace, DseError, EvalError, Evaluator,
    ExhaustiveSearch, MultiObjectiveOptimizer, Nsga2Optimizer, RandomSearch, SmsEgoOptimizer,
};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Fails every evaluation with a typed error.
struct FailingEvaluator {
    calls: AtomicUsize,
}

impl FailingEvaluator {
    fn new() -> FailingEvaluator {
        FailingEvaluator { calls: AtomicUsize::new(0) }
    }
}

impl Evaluator for FailingEvaluator {
    fn num_objectives(&self) -> usize {
        2
    }
    fn evaluate(&self, point: &[usize]) -> Result<Vec<f64>, EvalError> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        Err(EvalError::Failed { message: format!("simulator crashed at {point:?}") })
    }
    fn reference_point(&self) -> Vec<f64> {
        vec![1.0, 1.0]
    }
}

/// Succeeds for the first `ok_budget` distinct calls, then fails — so
/// optimizers get far enough to exercise their mid-run evaluation paths.
struct EventuallyFailing {
    ok_budget: usize,
    calls: AtomicUsize,
}

impl Evaluator for EventuallyFailing {
    fn num_objectives(&self) -> usize {
        2
    }
    fn evaluate(&self, point: &[usize]) -> Result<Vec<f64>, EvalError> {
        let n = self.calls.fetch_add(1, Ordering::Relaxed);
        if n >= self.ok_budget {
            return Err(EvalError::Failed { message: format!("budget {n} exceeded at {point:?}") });
        }
        let x = point[0] as f64 / 15.0;
        Ok(vec![x, 1.0 - x])
    }
    fn reference_point(&self) -> Vec<f64> {
        vec![1.1, 1.1]
    }
}

fn space() -> DesignSpace {
    DesignSpace::new(vec![16, 16]).expect("valid space")
}

fn all_optimizers(seed: u64) -> Vec<Box<dyn MultiObjectiveOptimizer>> {
    vec![
        Box::new(SmsEgoOptimizer::new(seed).with_init_samples(4).with_candidate_pool(16)),
        Box::new(Nsga2Optimizer::new(seed).with_population(6)),
        Box::new(AnnealingOptimizer::new(seed)),
        Box::new(RandomSearch::new(seed)),
        Box::new(ExhaustiveSearch::new()),
    ]
}

#[test]
fn every_optimizer_returns_err_not_panic() {
    let space = space();
    for mut opt in all_optimizers(3) {
        let failing = FailingEvaluator::new();
        let name = opt.name().to_string();
        let result = opt.run(&space, &failing, 16);
        let err = match result {
            Err(e) => e,
            Ok(_) => panic!("{name} swallowed the evaluation failure"),
        };
        assert!(matches!(err, DseError::Eval(EvalError::Failed { .. })), "{name}: {err}");
        assert!(failing.calls.load(Ordering::Relaxed) >= 1, "{name} never called the evaluator");
        // The error formats with the failing point's context.
        assert!(err.to_string().contains("simulator crashed"), "{name}: {err}");
    }
}

#[test]
fn mid_run_failures_also_propagate() {
    let space = space();
    for mut opt in all_optimizers(5) {
        let name = opt.name().to_string();
        let flaky = EventuallyFailing { ok_budget: 6, calls: AtomicUsize::new(0) };
        let result = opt.run(&space, &flaky, 32);
        assert!(result.is_err(), "{name} ignored a mid-run failure");
    }
}

#[test]
fn failures_propagate_through_cached_evaluator() {
    let space = space();
    for mut opt in all_optimizers(7) {
        let name = opt.name().to_string();
        let cached = CachedEvaluator::new(FailingEvaluator::new());
        assert!(opt.run(&space, &cached, 12).is_err(), "{name} via cache");
        // Nothing was memoized: every retry hits the inner evaluator.
        assert_eq!(cached.len(), 0, "{name} cached a failed evaluation");
    }
}

#[test]
fn cached_evaluator_does_not_cache_failures() {
    let flaky = EventuallyFailing { ok_budget: 1, calls: AtomicUsize::new(0) };
    let cached = CachedEvaluator::new(flaky);
    // First call succeeds and is cached; second distinct point fails and
    // must not be cached.
    assert!(cached.evaluate(&[0, 0]).is_ok());
    assert!(cached.evaluate(&[1, 1]).is_err());
    assert!(cached.evaluate(&[1, 1]).is_err());
    assert_eq!(cached.len(), 1);
    assert_eq!(cached.peek(&[1, 1]), None);
    // The failing point was re-attempted on each call (1 success + 2
    // failed attempts), while the cached success is served without a
    // third inner call.
    assert!(cached.evaluate(&[0, 0]).is_ok());
    assert_eq!(cached.inner().calls.load(Ordering::Relaxed), 3);
}

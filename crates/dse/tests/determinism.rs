//! Cross-cutting guarantees of the parallel evaluation engine: for a
//! fixed seed, every optimizer produces bit-identical results at any
//! worker count, and wrapping an evaluator in [`CachedEvaluator`] never
//! changes what the optimizer sees.

// Helpers shared across #[test] fns fall outside `allow-unwrap-in-tests`.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use dse_opt::{
    CachedEvaluator, DesignSpace, EvalError, Evaluator, KernelExpMode, MultiObjectiveOptimizer,
    Nsga2Optimizer, OptimizationResult, RandomSearch, SmsEgoOptimizer,
};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A three-objective bowl with competing minima — enough structure that
/// the optimizers actually take different trajectories if anything about
/// evaluation order or caching leaks into their decisions.
struct Bowl;

impl Evaluator for Bowl {
    fn num_objectives(&self) -> usize {
        3
    }
    fn evaluate(&self, point: &[usize]) -> Result<Vec<f64>, EvalError> {
        let x = point[0] as f64 / 7.0;
        let y = point[1] as f64 / 7.0;
        let z = point[2] as f64 / 7.0;
        Ok(vec![
            (x - 0.2).powi(2) + 0.3 * y,
            (y - 0.8).powi(2) + 0.1 * z,
            (z - 0.5).powi(2) + 0.2 * x,
        ])
    }
    fn reference_point(&self) -> Vec<f64> {
        vec![2.0, 2.0, 2.0]
    }
}

/// `Bowl` plus an invocation counter, to assert how often the underlying
/// simulator actually ran.
struct CountingBowl {
    calls: AtomicUsize,
}

impl CountingBowl {
    fn new() -> CountingBowl {
        CountingBowl { calls: AtomicUsize::new(0) }
    }
}

impl Evaluator for CountingBowl {
    fn num_objectives(&self) -> usize {
        Bowl.num_objectives()
    }
    fn evaluate(&self, point: &[usize]) -> Result<Vec<f64>, EvalError> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        Bowl.evaluate(point)
    }
    fn reference_point(&self) -> Vec<f64> {
        Bowl.reference_point()
    }
}

fn space() -> DesignSpace {
    DesignSpace::new(vec![8, 8, 8]).expect("valid space")
}

fn run_all(threads: usize) -> [OptimizationResult; 3] {
    let space = space();
    [
        SmsEgoOptimizer::new(13).with_threads(threads).run(&space, &Bowl, 28).unwrap(),
        Nsga2Optimizer::new(13)
            .with_population(8)
            .with_threads(threads)
            .run(&space, &Bowl, 40)
            .unwrap(),
        RandomSearch::new(13).with_threads(threads).run(&space, &Bowl, 32).unwrap(),
    ]
}

/// FNV-1a over a byte slice, for order-sensitive run fingerprints.
fn fnv(h: u64, bytes: &[u8]) -> u64 {
    bytes.iter().fold(h, |h, &b| (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3))
}

/// An order-sensitive digest of every evaluated point and the exact bit
/// patterns of every objective value, so any change to the sampling
/// stream, the evaluation order, or the arithmetic shows up.
fn fingerprint(result: &OptimizationResult) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for ev in &result.evaluations {
        for &idx in &ev.point {
            h = fnv(h, &(idx as u64).to_le_bytes());
        }
        for &obj in &ev.objectives {
            h = fnv(h, &obj.to_bits().to_le_bytes());
        }
    }
    h
}

/// Baked golden values for the Phase-2 optimizer runs above, generated
/// with the in-repo `autopilot-rng` (ChaCha12) streams. These pin the
/// exact sampling sequences: a change to the RNG, to stream derivation,
/// or to any optimizer's draw order fails this test at every thread
/// count, not just relative to another thread count.
/// To regenerate after an intentional RNG or optimizer change, set any
/// fingerprint to `0` and rerun with `-- --nocapture`: the test prints
/// the replacement rows instead of asserting.
const GOLDENS: [(&str, u64, u64); 3] = [
    ("sms-ego-bo", 0x9234_da32_9078_1113, 0x401f_24ba_93dc_2ddc),
    ("nsga-ii", 0x01ac_3198_a68a_222a, 0x401e_e2ea_2006_43fa),
    ("random-search", 0x6a7a_3d2f_7d74_b561, 0x401e_ac8f_9339_88eb),
];

#[test]
fn phase2_goldens_hold_at_every_thread_count() {
    for threads in [1usize, 2, 8] {
        let results = run_all(threads);
        for (r, (algorithm, fp, hv_bits)) in results.iter().zip(GOLDENS) {
            if fp == 0 {
                eprintln!(
                    "golden: (\"{}\", 0x{:016x}, 0x{:016x}),",
                    r.algorithm,
                    fingerprint(r),
                    r.final_hypervolume().to_bits()
                );
                continue;
            }
            assert_eq!(r.algorithm, algorithm, "optimizer order changed");
            assert_eq!(
                fingerprint(r),
                fp,
                "{algorithm} evaluation stream diverged from golden at {threads} threads"
            );
            assert_eq!(
                r.final_hypervolume().to_bits(),
                hv_bits,
                "{algorithm} final hypervolume diverged from golden at {threads} threads"
            );
        }
    }
}

/// Golden for the same SMS-EGO run with [`KernelExpMode::Fast`]
/// kernels: the batched Cody–Waite exponential is deterministic too, so
/// its evaluation stream pins its own fingerprint at every thread
/// count. At this problem size the ≤2-ULP kernel perturbation never
/// flips an acquisition argmax, so the stream coincides with the exact
/// golden — the value of pinning it is that any *larger* fast-exp error
/// (a broken coefficient, a bad range reduction) flips selections and
/// fails here. Regenerate like [`GOLDENS`]: set the fingerprint to `0`
/// and rerun with `-- --nocapture`.
const FAST_GOLDEN: (u64, u64) = (0x9234_da32_9078_1113, 0x401f_24ba_93dc_2ddc);

#[test]
fn fast_exp_golden_holds_at_every_thread_count() {
    let (fp, hv_bits) = FAST_GOLDEN;
    for threads in [1usize, 2, 8] {
        let r = SmsEgoOptimizer::new(13)
            .with_threads(threads)
            .with_exp_mode(KernelExpMode::Fast)
            .run(&space(), &Bowl, 28)
            .unwrap();
        if fp == 0 {
            if threads == 1 {
                eprintln!(
                    "golden: (0x{:016x}, 0x{:016x}),",
                    fingerprint(&r),
                    r.final_hypervolume().to_bits()
                );
            }
            continue;
        }
        assert_eq!(
            fingerprint(&r),
            fp,
            "fast-exp evaluation stream diverged from golden at {threads} threads"
        );
        assert_eq!(
            r.final_hypervolume().to_bits(),
            hv_bits,
            "fast-exp final hypervolume diverged from golden at {threads} threads"
        );
    }
}

#[test]
fn fast_exp_front_stays_close_to_exact() {
    // The ≤4-ULP kernel perturbation may steer SMS-EGO toward different
    // candidates, but the *quality* of the resulting front must not
    // move: the final hypervolumes of the Exact and Fast runs have to
    // agree to a tight relative bound.
    let exact = SmsEgoOptimizer::new(13)
        .with_exp_mode(KernelExpMode::Exact)
        .run(&space(), &Bowl, 28)
        .unwrap();
    let fast = SmsEgoOptimizer::new(13)
        .with_exp_mode(KernelExpMode::Fast)
        .run(&space(), &Bowl, 28)
        .unwrap();
    let (hv_exact, hv_fast) = (exact.final_hypervolume(), fast.final_hypervolume());
    assert!(hv_exact > 0.0);
    let rel = (hv_fast - hv_exact).abs() / hv_exact;
    assert!(
        rel <= 1e-2,
        "fast-exp front hypervolume drifted {rel:e} from exact ({hv_fast} vs {hv_exact})"
    );
}

#[test]
fn optimizers_bit_identical_across_thread_counts() {
    let base = run_all(1);
    for threads in [2, 3, 8] {
        let got = run_all(threads);
        for (b, g) in base.iter().zip(&got) {
            assert_eq!(b, g, "{} diverged at {threads} threads", b.algorithm);
        }
    }
}

#[test]
fn cached_evaluator_transparent_to_optimizers() {
    let space = space();
    let plain = SmsEgoOptimizer::new(5).run(&space, &Bowl, 24).unwrap();
    let cached_eval = CachedEvaluator::new(Bowl);
    let cached = SmsEgoOptimizer::new(5).run(&space, &cached_eval, 24).unwrap();
    assert_eq!(plain, cached);

    let plain = Nsga2Optimizer::new(5).with_population(8).run(&space, &Bowl, 36).unwrap();
    let cached = Nsga2Optimizer::new(5)
        .with_population(8)
        .run(&space, &CachedEvaluator::new(Bowl), 36)
        .unwrap();
    assert_eq!(plain, cached);

    let plain = RandomSearch::new(5).run(&space, &Bowl, 24).unwrap();
    let cached = RandomSearch::new(5).run(&space, &CachedEvaluator::new(Bowl), 24).unwrap();
    assert_eq!(plain, cached);
}

#[test]
fn cache_shared_across_runs_skips_reevaluation() {
    let space = space();
    let counting = CountingBowl::new();
    let cached = CachedEvaluator::new(&counting);

    let first = SmsEgoOptimizer::new(2).run(&space, &cached, 20).unwrap();
    let after_first = counting.calls.load(Ordering::Relaxed);
    assert_eq!(after_first, first.evaluation_count());

    // Same seed, same trajectory: the second run must be pure cache hits.
    let second = SmsEgoOptimizer::new(2).run(&space, &cached, 20).unwrap();
    assert_eq!(first, second);
    assert_eq!(counting.calls.load(Ordering::Relaxed), after_first);
    let stats = cached.stats();
    assert_eq!(stats.misses, after_first);
    assert!(stats.hits >= second.evaluation_count());
}

#[test]
fn cached_objectives_always_match_inner() {
    let space = space();
    let cached = CachedEvaluator::new(Bowl);
    let _ = Nsga2Optimizer::new(17).with_population(8).run(&space, &cached, 48).unwrap();
    // Every memoized entry must still agree with a fresh evaluation.
    let mut checked = 0usize;
    for x in 0..8 {
        for y in 0..8 {
            for z in 0..8 {
                let point = vec![x, y, z];
                if let Some(stored) = cached.peek(&point) {
                    assert_eq!(stored, Bowl.evaluate(&point).unwrap(), "stale entry for {point:?}");
                    checked += 1;
                }
            }
        }
    }
    assert_eq!(checked, cached.len());
    assert!(checked > 0);
}

//! Cross-cutting guarantees of the parallel evaluation engine: for a
//! fixed seed, every optimizer produces bit-identical results at any
//! worker count, and wrapping an evaluator in [`CachedEvaluator`] never
//! changes what the optimizer sees.

use dse_opt::{
    CachedEvaluator, DesignSpace, EvalError, Evaluator, MultiObjectiveOptimizer, Nsga2Optimizer,
    OptimizationResult, RandomSearch, SmsEgoOptimizer,
};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A three-objective bowl with competing minima — enough structure that
/// the optimizers actually take different trajectories if anything about
/// evaluation order or caching leaks into their decisions.
struct Bowl;

impl Evaluator for Bowl {
    fn num_objectives(&self) -> usize {
        3
    }
    fn evaluate(&self, point: &[usize]) -> Result<Vec<f64>, EvalError> {
        let x = point[0] as f64 / 7.0;
        let y = point[1] as f64 / 7.0;
        let z = point[2] as f64 / 7.0;
        Ok(vec![
            (x - 0.2).powi(2) + 0.3 * y,
            (y - 0.8).powi(2) + 0.1 * z,
            (z - 0.5).powi(2) + 0.2 * x,
        ])
    }
    fn reference_point(&self) -> Vec<f64> {
        vec![2.0, 2.0, 2.0]
    }
}

/// `Bowl` plus an invocation counter, to assert how often the underlying
/// simulator actually ran.
struct CountingBowl {
    calls: AtomicUsize,
}

impl CountingBowl {
    fn new() -> CountingBowl {
        CountingBowl { calls: AtomicUsize::new(0) }
    }
}

impl Evaluator for CountingBowl {
    fn num_objectives(&self) -> usize {
        Bowl.num_objectives()
    }
    fn evaluate(&self, point: &[usize]) -> Result<Vec<f64>, EvalError> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        Bowl.evaluate(point)
    }
    fn reference_point(&self) -> Vec<f64> {
        Bowl.reference_point()
    }
}

fn space() -> DesignSpace {
    DesignSpace::new(vec![8, 8, 8]).expect("valid space")
}

fn run_all(threads: usize) -> [OptimizationResult; 3] {
    let space = space();
    [
        SmsEgoOptimizer::new(13).with_threads(threads).run(&space, &Bowl, 28).unwrap(),
        Nsga2Optimizer::new(13)
            .with_population(8)
            .with_threads(threads)
            .run(&space, &Bowl, 40)
            .unwrap(),
        RandomSearch::new(13).with_threads(threads).run(&space, &Bowl, 32).unwrap(),
    ]
}

#[test]
fn optimizers_bit_identical_across_thread_counts() {
    let base = run_all(1);
    for threads in [2, 3, 8] {
        let got = run_all(threads);
        for (b, g) in base.iter().zip(&got) {
            assert_eq!(b, g, "{} diverged at {threads} threads", b.algorithm);
        }
    }
}

#[test]
fn cached_evaluator_transparent_to_optimizers() {
    let space = space();
    let plain = SmsEgoOptimizer::new(5).run(&space, &Bowl, 24).unwrap();
    let cached_eval = CachedEvaluator::new(Bowl);
    let cached = SmsEgoOptimizer::new(5).run(&space, &cached_eval, 24).unwrap();
    assert_eq!(plain, cached);

    let plain = Nsga2Optimizer::new(5).with_population(8).run(&space, &Bowl, 36).unwrap();
    let cached = Nsga2Optimizer::new(5)
        .with_population(8)
        .run(&space, &CachedEvaluator::new(Bowl), 36)
        .unwrap();
    assert_eq!(plain, cached);

    let plain = RandomSearch::new(5).run(&space, &Bowl, 24).unwrap();
    let cached = RandomSearch::new(5).run(&space, &CachedEvaluator::new(Bowl), 24).unwrap();
    assert_eq!(plain, cached);
}

#[test]
fn cache_shared_across_runs_skips_reevaluation() {
    let space = space();
    let counting = CountingBowl::new();
    let cached = CachedEvaluator::new(&counting);

    let first = SmsEgoOptimizer::new(2).run(&space, &cached, 20).unwrap();
    let after_first = counting.calls.load(Ordering::Relaxed);
    assert_eq!(after_first, first.evaluation_count());

    // Same seed, same trajectory: the second run must be pure cache hits.
    let second = SmsEgoOptimizer::new(2).run(&space, &cached, 20).unwrap();
    assert_eq!(first, second);
    assert_eq!(counting.calls.load(Ordering::Relaxed), after_first);
    let stats = cached.stats();
    assert_eq!(stats.misses, after_first);
    assert!(stats.hits >= second.evaluation_count());
}

#[test]
fn cached_objectives_always_match_inner() {
    let space = space();
    let cached = CachedEvaluator::new(Bowl);
    let _ = Nsga2Optimizer::new(17).with_population(8).run(&space, &cached, 48).unwrap();
    // Every memoized entry must still agree with a fresh evaluation.
    let mut checked = 0usize;
    for x in 0..8 {
        for y in 0..8 {
            for z in 0..8 {
                let point = vec![x, y, z];
                if let Some(stored) = cached.peek(&point) {
                    assert_eq!(
                        stored,
                        Bowl.evaluate(&point).unwrap(),
                        "stale entry for {point:?}"
                    );
                    checked += 1;
                }
            }
        }
    }
    assert_eq!(checked, cached.len());
    assert!(checked > 0);
}

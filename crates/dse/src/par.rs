//! Deterministic parallel map built on scoped threads — zero new
//! dependencies.
//!
//! Workers claim item indices from a shared atomic counter, evaluate
//! `f(index, &item)`, and send `(index, result)` pairs over a channel;
//! the results are reassembled in index order. The output is therefore
//! **bit-identical** to a sequential map regardless of worker count or
//! OS scheduling, which is what lets the DSE optimizers fan out
//! expensive black-box evaluations and acquisition scoring without
//! perturbing their deterministic trajectories.
//!
//! The worker count defaults to [`std::thread::available_parallelism`]
//! and can be overridden with the `AUTOPILOT_THREADS` environment
//! variable (or per-optimizer via their `with_threads` builders).

use autopilot_obs as obs;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Environment variable overriding the default worker count.
pub const THREADS_ENV: &str = "AUTOPILOT_THREADS";

/// The effective default worker count: `AUTOPILOT_THREADS` when set to a
/// positive integer, otherwise [`std::thread::available_parallelism`]
/// (falling back to 1 when the hardware cannot be queried). An
/// unparsable `AUTOPILOT_THREADS` falls back to the hardware count and
/// emits a warn-level obs event (once per process) so the
/// misconfiguration is visible instead of silently ignored.
///
/// The environment is read **once per process** (via
/// [`obs::env_once`]): this is a startup default, and mutating
/// `AUTOPILOT_THREADS` afterwards only triggers a one-shot obs warning.
/// Per-job thread counts go through the optimizers' `with_threads`
/// builders (plumbed from the core crate's `JobConfig`).
pub fn worker_count() -> usize {
    static CACHED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    // Re-read through env_once on every call so a post-startup env
    // mutation is detected and warned about, while the parsed value
    // stays pinned to the first read.
    let raw = obs::env_once(THREADS_ENV);
    *CACHED.get_or_init(|| match raw {
        Some(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                warn_bad_threads_env(&v);
                hardware_workers()
            }
        },
        None => hardware_workers(),
    })
}

fn warn_bad_threads_env(value: &str) {
    static WARNED: std::sync::Once = std::sync::Once::new();
    WARNED.call_once(|| {
        obs::obs_warn!(
            "par: {THREADS_ENV}={value:?} is not a positive integer; using hardware parallelism"
        );
    });
}

fn hardware_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

std::thread_local! {
    /// True on threads spawned by [`parallel_map_with`]. Workers are
    /// per-call scoped threads, so the flag is set once at spawn and
    /// dies with the thread.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// True when the calling thread is a [`parallel_map_with`] worker.
///
/// Nested fan-out from inside a worker would oversubscribe the machine
/// (scoped threads have no shared pool to coordinate through), so
/// internally-parallel kernels — the GP correlation-panel engine — check
/// this and fall back to their inline path when already inside one.
pub fn in_worker() -> bool {
    IN_WORKER.with(std::cell::Cell::get)
}

/// Maps `f` over `items` using the default worker count (see
/// [`worker_count`]); results are returned in item order.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_with(worker_count(), items, f)
}

/// Like [`parallel_map`] with an explicit worker count. A worker count of
/// one (or a single item) runs inline on the calling thread, so the
/// sequential path has zero threading overhead.
///
/// # Panics
///
/// Propagates any panic raised by `f`.
pub fn parallel_map_with<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = workers.max(1).min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    // Per-worker busy time and item counts, collected only when metrics
    // are on (the per-item `Instant` reads are confined to that mode).
    let track = obs::metrics_enabled();
    // Trace flow linkage: workers adopt the caller's innermost live span
    // as their parent, so worker timelines attach to the spawning
    // iteration in the exported trace. Unlinked (zero-cost) when tracing
    // is off.
    let flow = obs::trace::flow_handle();
    let worker_stats: Mutex<Vec<(Duration, u64)>> = Mutex::new(Vec::new());
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            let worker_stats = &worker_stats;
            scope.spawn(move || {
                IN_WORKER.with(|w| w.set(true));
                let traced = flow.is_linked();
                {
                    let _flow = obs::trace::adopt(flow);
                    let _worker_span = if traced { Some(obs::span("par.worker")) } else { None };
                    let mut busy = Duration::ZERO;
                    let mut claimed = 0u64;
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        let r = if track {
                            let t = Instant::now();
                            let r = f(i, &items[i]);
                            busy += t.elapsed();
                            claimed += 1;
                            r
                        } else {
                            f(i, &items[i])
                        };
                        if tx.send((i, r)).is_err() {
                            break;
                        }
                    }
                    if track {
                        // Stats are advisory; a poisoned lock (another
                        // worker panicked mid-push) must not take down
                        // the fan-out.
                        worker_stats
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .push((busy, claimed));
                    }
                }
                if traced {
                    // The scope can return before this thread's exit-time
                    // TLS flush runs; flush now so a take() right after
                    // the map sees every worker event.
                    obs::trace::flush_thread();
                }
            });
        }
    });
    drop(tx);
    if track {
        let stats = worker_stats.into_inner().unwrap_or_else(PoisonError::into_inner);
        record_worker_stats(workers, items.len(), &stats);
    }
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    for (i, r) in rx {
        slots[i] = Some(r);
    }
    // Every index in 0..items.len() was claimed by exactly one worker and
    // sent exactly one result before the scope joined, so each slot is
    // filled; an empty slot (impossible today) falls back to evaluating
    // inline rather than panicking the whole map.
    slots.into_iter().enumerate().map(|(i, s)| s.unwrap_or_else(|| f(i, &items[i]))).collect()
}

/// Publishes per-worker busy time and queue imbalance to the obs
/// registry after a tracked parallel map.
fn record_worker_stats(workers: usize, items: usize, stats: &[(Duration, u64)]) {
    obs::add("par.calls", 1);
    obs::add("par.items", items as u64);
    let mut busiest = 0.0f64;
    let mut total = 0.0f64;
    for &(busy, claimed) in stats {
        let s = busy.as_secs_f64();
        obs::observe("par.worker_busy_s", s);
        obs::observe_with(
            "par.worker_items",
            &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0],
            claimed as f64,
        );
        busiest = busiest.max(s);
        total += s;
    }
    // Imbalance: busiest worker relative to the mean (1.0 = perfectly
    // even). Recorded as a histogram so repeated maps show the spread.
    if workers > 0 && total > 0.0 {
        let mean = total / workers as f64;
        obs::observe_with("par.imbalance", &[1.0, 1.1, 1.25, 1.5, 2.0, 3.0, 5.0], busiest / mean);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_map() {
        let items: Vec<usize> = (0..100).collect();
        let expected: Vec<usize> = items.iter().map(|&x| x * x + 1).collect();
        for workers in [1, 2, 3, 8, 200] {
            let got = parallel_map_with(workers, &items, |_, &x| x * x + 1);
            assert_eq!(got, expected, "workers = {workers}");
        }
    }

    #[test]
    fn passes_item_indices() {
        let items = vec!["a", "b", "c"];
        let got = parallel_map_with(2, &items, |i, s| format!("{i}:{s}"));
        assert_eq!(got, vec!["0:a", "1:b", "2:c"]);
    }

    #[test]
    fn empty_input_is_fine() {
        let items: Vec<u8> = Vec::new();
        let got: Vec<u8> = parallel_map_with(4, &items, |_, &x| x);
        assert!(got.is_empty());
    }

    #[test]
    fn worker_count_is_positive() {
        assert!(worker_count() >= 1);
    }

    #[test]
    fn in_worker_flag_tracks_thread_context() {
        assert!(!in_worker(), "caller thread is not a worker");
        let items = vec![(); 8];
        let flags = parallel_map_with(4, &items, |_, ()| in_worker());
        // Spawned workers must see the flag; the inline (1-worker) path
        // runs on the caller and must not.
        assert!(flags.iter().all(|&f| f));
        let inline_flags = parallel_map_with(1, &items, |_, ()| in_worker());
        assert!(inline_flags.iter().all(|&f| !f));
        assert!(!in_worker(), "flag must not leak back to the caller");
    }

    #[test]
    fn shared_state_is_visible_to_workers() {
        // Workers borrow the environment: summing through an atomic must
        // account for every item exactly once.
        let items: Vec<u64> = (1..=64).collect();
        let total = std::sync::atomic::AtomicU64::new(0);
        let _ = parallel_map_with(4, &items, |_, &x| {
            total.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 64 * 65 / 2);
    }
}

//! NSGA-II genetic algorithm (Deb et al.), one of the alternative
//! optimizers the paper lists for Phase 2.

use autopilot_obs as obs;
use autopilot_rng::Rng;
use std::collections::{HashMap, HashSet};

use crate::control::RunControl;
use crate::error::{DseError, EvalError};
use crate::evaluator::{Evaluator, MultiObjectiveOptimizer};
use crate::par;
use crate::pareto::{crowding_distance, non_dominated_sort};
use crate::result::{EvaluationRecord, OptimizationResult};
use crate::space::DesignSpace;

/// Elitist non-dominated-sorting genetic algorithm over discrete index
/// vectors. Uniform crossover, per-dimension random-reset mutation, and
/// binary tournament selection by (rank, crowding distance).
///
/// Objective evaluations are memoized: only *new* points consume budget,
/// matching how expensive DSE evaluations are accounted in practice.
/// Each generation's uncached points are evaluated as one parallel
/// batch; the batch is planned from the RNG-drawn offspring before any
/// evaluation runs, so results are bit-identical to a sequential run for
/// a fixed seed, at any thread count.
#[derive(Debug, Clone)]
pub struct Nsga2Optimizer {
    seed: u64,
    population: usize,
    crossover_prob: f64,
    mutation_scale: f64,
    threads: Option<usize>,
}

impl Nsga2Optimizer {
    /// Creates an optimizer with conventional defaults (population 24).
    pub fn new(seed: u64) -> Nsga2Optimizer {
        Nsga2Optimizer {
            seed,
            population: 24,
            crossover_prob: 0.9,
            mutation_scale: 1.0,
            threads: None,
        }
    }

    /// Overrides the population size.
    pub fn with_population(mut self, n: usize) -> Nsga2Optimizer {
        self.population = n.max(4);
        self
    }

    /// Pins the evaluation worker count (default: [`par::worker_count`]).
    pub fn with_threads(mut self, n: usize) -> Nsga2Optimizer {
        self.threads = Some(n.max(1));
        self
    }

    fn workers(&self) -> usize {
        self.threads.unwrap_or_else(par::worker_count)
    }
}

impl MultiObjectiveOptimizer for Nsga2Optimizer {
    fn name(&self) -> &str {
        "nsga-ii"
    }

    fn run_controlled(
        &mut self,
        space: &DesignSpace,
        evaluator: &dyn Evaluator,
        budget: usize,
        control: &RunControl,
    ) -> Result<OptimizationResult, DseError> {
        let _span = obs::span("nsga2.run");
        control.check()?;
        let mut rng = Rng::seed_from_u64(self.seed);
        let workers = self.workers();
        let mut cache: HashMap<Vec<usize>, Vec<f64>> = HashMap::new();
        let mut history: Vec<EvaluationRecord> = Vec::new();

        // Evaluates the uncached points among `batch` (first occurrence
        // order) as one parallel map, then commits them to the cache and
        // history in that same order — exactly the trace a sequential
        // memoized loop would produce.
        let eval_batch = |batch: &[Vec<usize>],
                          cache: &mut HashMap<Vec<usize>, Vec<f64>>,
                          history: &mut Vec<EvaluationRecord>|
         -> Result<(), EvalError> {
            let mut fresh: Vec<Vec<usize>> = Vec::new();
            let mut fresh_set: HashSet<&[usize]> = HashSet::new();
            for p in batch {
                if !cache.contains_key(p) && fresh_set.insert(p.as_slice()) {
                    fresh.push(p.clone());
                }
            }
            let objs: Vec<Result<Vec<f64>, EvalError>> =
                par::parallel_map_with(workers, &fresh, |_, p| evaluator.evaluate(p));
            for (p, o) in fresh.into_iter().zip(objs) {
                let o = o?;
                cache.insert(p.clone(), o.clone());
                history.push(EvaluationRecord {
                    iteration: history.len(),
                    point: p,
                    objectives: o,
                });
            }
            Ok(())
        };

        // The space itself bounds how many *unique* evaluations exist;
        // without this cap a converged population of cache hits would
        // spin forever on small spaces.
        let budget = (budget as u128).min(space.len()) as usize;
        let mut stale_generations = 0usize;

        // Initial population.
        let pop_draw: Vec<Vec<usize>> =
            (0..self.population).map(|_| space.random_point(&mut rng)).collect();
        eval_batch(&pop_draw, &mut cache, &mut history)?;
        let mut pop = pop_draw;
        let mut pop_objs: Vec<Vec<f64>> = pop.iter().map(|p| cache[p].clone()).collect();

        while history.len() < budget {
            control.check()?;
            let _gen = obs::span("nsga2.generation");
            obs::add("dse.nsga2.generations", 1);
            let history_before = history.len();
            // Ranks and crowding for parent selection.
            let fronts = non_dominated_sort(&pop_objs);
            control.checkpoint(history.len(), fronts.first().map_or(0, Vec::len));
            let mut rank = vec![0usize; pop.len()];
            let mut crowd = vec![0.0f64; pop.len()];
            for (r, front) in fronts.iter().enumerate() {
                let d = crowding_distance(&pop_objs, front);
                for (k, &i) in front.iter().enumerate() {
                    rank[i] = r;
                    crowd[i] = d[k];
                }
            }
            let tournament = |rng: &mut Rng| -> usize {
                // The population is never empty (population >= 4).
                let a = rng.below(pop.len());
                let b = rng.below(pop.len());
                if rank[a] < rank[b] || (rank[a] == rank[b] && crowd[a] > crowd[b]) {
                    a
                } else {
                    b
                }
            };

            // Offspring generation.
            let mut offspring: Vec<Vec<usize>> = Vec::with_capacity(self.population);
            while offspring.len() < self.population {
                let p1 = &pop[tournament(&mut rng)];
                let p2 = &pop[tournament(&mut rng)];
                let mut child: Vec<usize> = if rng.chance(self.crossover_prob) {
                    p1.iter().zip(p2).map(|(&a, &b)| if rng.chance(0.5) { a } else { b }).collect()
                } else {
                    p1.clone()
                };
                // Random-reset mutation with expected `mutation_scale`
                // genes flipped.
                let pm = (self.mutation_scale / space.dims() as f64).min(1.0);
                for (d, gene) in child.iter_mut().enumerate() {
                    if rng.chance(pm) {
                        *gene = rng.below(space.cardinality(d));
                    }
                }
                offspring.push(child);
            }

            // Plan which offspring fit the remaining budget — walking in
            // order with a projected history length, so the cut-off falls
            // on exactly the same offspring as a sequential evaluation
            // loop — then evaluate the admitted prefix set in parallel.
            let mut admitted: Vec<Vec<usize>> = Vec::new();
            let mut admitted_set: HashSet<&[usize]> = HashSet::new();
            let mut projected = history.len();
            let mut in_budget = vec![true; offspring.len()];
            for (k, p) in offspring.iter().enumerate() {
                if cache.contains_key(p) || admitted_set.contains(p.as_slice()) {
                    continue;
                }
                if projected >= budget {
                    in_budget[k] = false;
                    continue;
                }
                admitted.push(p.clone());
                admitted_set.insert(p.as_slice());
                projected += 1;
            }
            eval_batch(&admitted, &mut cache, &mut history)?;
            let off_objs: Vec<Vec<f64>> = offspring
                .iter()
                .zip(&in_budget)
                .map(|(p, &ok)| {
                    if ok {
                        cache[p].clone()
                    } else {
                        // Budget exhausted; fall back to parent duplication
                        // so arrays stay aligned.
                        pop_objs[0].clone()
                    }
                })
                .collect();

            // Environmental selection over parents + offspring.
            let mut union = pop.clone();
            union.extend(offspring);
            let mut union_objs = pop_objs.clone();
            union_objs.extend(off_objs);
            let fronts = non_dominated_sort(&union_objs);
            let mut next: Vec<usize> = Vec::with_capacity(self.population);
            for front in fronts {
                if next.len() + front.len() <= self.population {
                    next.extend(front);
                } else {
                    let d = crowding_distance(&union_objs, &front);
                    let mut order: Vec<usize> = (0..front.len()).collect();
                    order.sort_by(|&a, &b| d[b].total_cmp(&d[a]));
                    for &k in order.iter().take(self.population - next.len()) {
                        next.push(front[k]);
                    }
                    break;
                }
            }
            pop = next.iter().map(|&i| union[i].clone()).collect();
            pop_objs = next.iter().map(|&i| union_objs[i].clone()).collect();

            // Terminate on convergence: generations that discover no new
            // point cannot make progress toward the budget.
            if history.len() == history_before {
                stale_generations += 1;
                if stale_generations >= 30 {
                    break;
                }
            } else {
                stale_generations = 0;
            }
            if history.len() >= budget {
                break;
            }
        }

        history.truncate(budget);
        Ok(OptimizationResult::from_history(self.name(), history, evaluator.reference_point()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::test_problems::{Bowl3, Tradeoff};
    use crate::random::RandomSearch;

    #[test]
    fn respects_budget() {
        let space = DesignSpace::new(vec![32]).unwrap();
        let mut ga = Nsga2Optimizer::new(11).with_population(8);
        let res = ga.run(&space, &Tradeoff, 30).unwrap();
        assert!(res.evaluation_count() <= 30);
        assert!(res.evaluation_count() >= 8);
    }

    #[test]
    fn deterministic_given_seed() {
        let space = DesignSpace::new(vec![8, 8, 8]).unwrap();
        let a = Nsga2Optimizer::new(7).with_population(8).run(&space, &Bowl3, 40).unwrap();
        let b = Nsga2Optimizer::new(7).with_population(8).run(&space, &Bowl3, 40).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn identical_across_thread_counts() {
        let space = DesignSpace::new(vec![8, 8, 8]).unwrap();
        let base = Nsga2Optimizer::new(9)
            .with_population(8)
            .with_threads(1)
            .run(&space, &Bowl3, 40)
            .unwrap();
        for t in [2, 4, 6] {
            let r = Nsga2Optimizer::new(9)
                .with_population(8)
                .with_threads(t)
                .run(&space, &Bowl3, 40)
                .unwrap();
            assert_eq!(base, r, "threads = {t}");
        }
    }

    #[test]
    fn competitive_with_random_search() {
        let space = DesignSpace::new(vec![8, 8, 8]).unwrap();
        let budget = 60;
        let mut ga_total = 0.0;
        let mut rs_total = 0.0;
        for seed in 0..3 {
            ga_total += Nsga2Optimizer::new(seed)
                .with_population(12)
                .run(&space, &Bowl3, budget)
                .unwrap()
                .final_hypervolume();
            rs_total +=
                RandomSearch::new(seed).run(&space, &Bowl3, budget).unwrap().final_hypervolume();
        }
        assert!(ga_total >= rs_total * 0.95, "GA {ga_total:.4} vs RS {rs_total:.4}");
    }

    #[test]
    fn finds_tradeoff_extremes() {
        let space = DesignSpace::new(vec![32]).unwrap();
        let res = Nsga2Optimizer::new(3).with_population(12).run(&space, &Tradeoff, 64).unwrap();
        let front = res.pareto_front();
        // Both ends of the trade-off should be on the front.
        let min_f0 = front.iter().map(|e| e.objectives[0]).fold(f64::INFINITY, f64::min);
        let min_f1 = front.iter().map(|e| e.objectives[1]).fold(f64::INFINITY, f64::min);
        assert!(min_f0 < 0.1, "min f0 {min_f0}");
        assert!(min_f1 < 0.1, "min f1 {min_f1}");
    }
}

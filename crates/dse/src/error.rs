//! The DSE error taxonomy.
//!
//! Three layers, from innermost to outermost:
//!
//! * [`EvalError`] — a single objective evaluation failed (bad point,
//!   wrong arity, non-finite objective, or a domain-specific failure
//!   reported by the evaluator).
//! * [`GpError`] — a Gaussian-process surrogate could not be fit
//!   (degenerate geometry, dimension mismatch, or a kernel matrix that
//!   is not positive definite).
//! * [`DseError`] — what an optimizer run returns: an evaluation or
//!   surrogate failure, or a design space the algorithm cannot operate
//!   on.
//!
//! Downstream crates wrap [`DseError`] in their own error types (the
//! `autopilot` core maps it into `AutopilotError`), so the chain
//! `EvalError` → `DseError` → `AutopilotError` carries failure context
//! from a single simulator run all the way to the CLI without a panic
//! anywhere in between.

use std::fmt;

use crate::space::SpaceError;

/// A single objective evaluation failed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EvalError {
    /// The design point could not be interpreted by the evaluator.
    InvalidPoint {
        /// The offending design-space index vector.
        point: Vec<usize>,
        /// Why the evaluator rejected it.
        reason: String,
    },
    /// The evaluator returned the wrong number of objectives.
    ObjectiveCount {
        /// Objectives promised by [`crate::Evaluator::num_objectives`].
        expected: usize,
        /// Objectives actually returned.
        got: usize,
    },
    /// An objective value was NaN or infinite.
    NonFiniteObjective {
        /// The design point that produced the value.
        point: Vec<usize>,
        /// Index of the non-finite objective.
        objective: usize,
    },
    /// A domain-specific failure reported by the evaluator.
    Failed {
        /// Human-readable failure description.
        message: String,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::InvalidPoint { point, reason } => {
                write!(f, "invalid design point {point:?}: {reason}")
            }
            EvalError::ObjectiveCount { expected, got } => {
                write!(f, "evaluator returned {got} objectives, expected {expected}")
            }
            EvalError::NonFiniteObjective { point, objective } => {
                write!(f, "objective {objective} is not finite at design point {point:?}")
            }
            EvalError::Failed { message } => write!(f, "evaluation failed: {message}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// A Gaussian-process surrogate fit failed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GpError {
    /// Fewer than two training points — nothing to interpolate.
    TooFewPoints {
        /// Number of points supplied.
        got: usize,
    },
    /// Training inputs and targets disagree in length, or inputs have
    /// inconsistent dimensionality.
    DimensionMismatch {
        /// Describes which lengths disagreed.
        detail: String,
    },
    /// A training input or target is NaN or infinite.
    NonFiniteInput,
    /// The kernel matrix is singular or non-finite, so the Cholesky
    /// factorization failed (duplicate points or a degenerate
    /// lengthscale).
    NotPositiveDefinite,
}

impl fmt::Display for GpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpError::TooFewPoints { got } => {
                write!(f, "gaussian process needs at least 2 training points, got {got}")
            }
            GpError::DimensionMismatch { detail } => {
                write!(f, "gaussian process dimension mismatch: {detail}")
            }
            GpError::NonFiniteInput => {
                write!(f, "gaussian process training data contains NaN or infinite values")
            }
            GpError::NotPositiveDefinite => {
                write!(f, "kernel matrix is singular or non-finite (not positive definite)")
            }
        }
    }
}

impl std::error::Error for GpError {}

/// An optimizer run failed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DseError {
    /// An objective evaluation failed and the optimizer cannot proceed.
    Eval(EvalError),
    /// A surrogate model could not be built or updated.
    Surrogate(GpError),
    /// The design space is malformed for this algorithm.
    Space(SpaceError),
    /// The run was cancelled through its [`crate::RunControl`] token
    /// before the budget was exhausted. Not a failure of the search
    /// itself: the archive built so far is simply abandoned.
    Cancelled,
}

impl fmt::Display for DseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DseError::Eval(e) => write!(f, "{e}"),
            DseError::Surrogate(e) => write!(f, "{e}"),
            DseError::Space(e) => write!(f, "{e}"),
            DseError::Cancelled => write!(f, "optimization run cancelled"),
        }
    }
}

impl std::error::Error for DseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DseError::Eval(e) => Some(e),
            DseError::Surrogate(e) => Some(e),
            DseError::Space(e) => Some(e),
            DseError::Cancelled => None,
        }
    }
}

impl From<EvalError> for DseError {
    fn from(e: EvalError) -> DseError {
        DseError::Eval(e)
    }
}

impl From<GpError> for DseError {
    fn from(e: GpError) -> DseError {
        DseError::Surrogate(e)
    }
}

impl From<SpaceError> for DseError {
    fn from(e: SpaceError) -> DseError {
        DseError::Space(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = EvalError::InvalidPoint { point: vec![1, 2], reason: "out of range".into() };
        assert!(e.to_string().contains("[1, 2]"));
        let e = EvalError::ObjectiveCount { expected: 3, got: 2 };
        assert!(e.to_string().contains("expected 3"));
        let e = GpError::TooFewPoints { got: 1 };
        assert!(e.to_string().contains("got 1"));
        assert!(GpError::NotPositiveDefinite.to_string().contains("positive definite"));
    }

    #[test]
    fn from_chain_reaches_dse_error() {
        let d: DseError = EvalError::Failed { message: "boom".into() }.into();
        assert!(matches!(d, DseError::Eval(_)));
        let d: DseError = GpError::NotPositiveDefinite.into();
        assert!(matches!(d, DseError::Surrogate(_)));
    }

    #[test]
    fn source_exposes_inner_error() {
        use std::error::Error;
        let d: DseError = EvalError::Failed { message: "x".into() }.into();
        assert!(d.source().is_some());
    }
}

//! Thread-safe memoization of black-box design-point evaluations.
//!
//! Phase-2 objective evaluations run a cycle-accurate systolic-array
//! simulation plus SoC power models per point, so re-evaluating a point
//! the optimizer has already visited wastes milliseconds each time.
//! [`CachedEvaluator`] wraps any [`Evaluator`] with a point → objectives
//! map so repeated queries become hash lookups. Design points are
//! deterministic functions of their coordinates, so cached objectives
//! can never go stale for a fixed inner evaluator.

use autopilot_obs as obs;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use crate::error::EvalError;
use crate::evaluator::Evaluator;

/// Hit/miss counters for a [`CachedEvaluator`], captured at a point in
/// time via [`CachedEvaluator::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Evaluations answered from the cache.
    pub hits: usize,
    /// Evaluations that ran the inner evaluator.
    pub misses: usize,
    /// Distinct points currently stored.
    pub entries: usize,
}

impl CacheStats {
    /// Fraction of lookups served from the cache, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Memoizing wrapper around an [`Evaluator`].
///
/// The first evaluation of each point delegates to the inner evaluator;
/// subsequent evaluations of the same point return the stored objective
/// vector (a clone, bit-identical to the original). **Failed evaluations
/// are never cached** — the error is returned and a later retry of the
/// same point runs the inner evaluator again. The map is guarded
/// by a mutex that is **not** held across inner evaluations, so parallel
/// workers can evaluate distinct points concurrently. Two threads racing
/// on the same uncached point may both run the inner evaluator, but only
/// one result is stored and — because evaluators are deterministic
/// functions of the point — both results are identical.
#[derive(Debug)]
pub struct CachedEvaluator<E> {
    inner: E,
    map: Mutex<HashMap<Vec<usize>, Vec<f64>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl<E: Evaluator> CachedEvaluator<E> {
    /// Wraps `inner` with an empty cache.
    pub fn new(inner: E) -> CachedEvaluator<E> {
        CachedEvaluator {
            inner,
            map: Mutex::new(HashMap::new()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// Borrows the wrapped evaluator.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// Unwraps into the inner evaluator, discarding the cache.
    pub fn into_inner(self) -> E {
        self.inner
    }

    /// Locks the map, recovering from a poisoned lock: the cache only
    /// stores completed (point, objectives) entries, which stay
    /// internally consistent even when another worker panicked, so the
    /// memo data is safe to keep using.
    fn map_lock(&self) -> MutexGuard<'_, HashMap<Vec<usize>, Vec<f64>>> {
        self.map.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Snapshots hit/miss/entry counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.map_lock().len(),
        }
    }

    /// Number of distinct points stored.
    pub fn len(&self) -> usize {
        self.map_lock().len()
    }

    /// True when no point has been evaluated yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the cached objectives for `point` without evaluating.
    pub fn peek(&self, point: &[usize]) -> Option<Vec<f64>> {
        self.map_lock().get(point).cloned()
    }
}

impl<E: Evaluator> Evaluator for CachedEvaluator<E> {
    fn num_objectives(&self) -> usize {
        self.inner.num_objectives()
    }

    fn evaluate(&self, point: &[usize]) -> Result<Vec<f64>, EvalError> {
        if let Some(objs) = self.map_lock().get(point) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            obs::add("dse.cached_evaluator.hits", 1);
            return Ok(objs.clone());
        }
        // Run the (possibly expensive) inner evaluation without holding
        // the lock so other workers proceed on other points. Errors are
        // returned without caching so a retry re-runs the evaluator.
        let objs = self.inner.evaluate(point)?;
        self.misses.fetch_add(1, Ordering::Relaxed);
        obs::add("dse.cached_evaluator.misses", 1);
        self.map_lock().entry(point.to_vec()).or_insert_with(|| objs.clone());
        Ok(objs)
    }

    fn reference_point(&self) -> Vec<f64> {
        self.inner.reference_point()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counting {
        calls: AtomicUsize,
    }

    impl Counting {
        fn new() -> Counting {
            Counting { calls: AtomicUsize::new(0) }
        }
    }

    impl Evaluator for Counting {
        fn num_objectives(&self) -> usize {
            2
        }
        fn evaluate(&self, point: &[usize]) -> Result<Vec<f64>, EvalError> {
            self.calls.fetch_add(1, Ordering::Relaxed);
            Ok(vec![point[0] as f64, 10.0 - point[0] as f64])
        }
        fn reference_point(&self) -> Vec<f64> {
            vec![20.0, 20.0]
        }
    }

    /// Fails on odd points, succeeds on even ones, counting every call.
    struct FlakyOdd {
        calls: AtomicUsize,
    }

    impl Evaluator for FlakyOdd {
        fn num_objectives(&self) -> usize {
            2
        }
        fn evaluate(&self, point: &[usize]) -> Result<Vec<f64>, EvalError> {
            self.calls.fetch_add(1, Ordering::Relaxed);
            if point[0] % 2 == 1 {
                return Err(EvalError::Failed { message: format!("odd point {point:?}") });
            }
            Ok(vec![point[0] as f64, 1.0])
        }
    }

    #[test]
    fn second_lookup_is_a_hit() {
        let cached = CachedEvaluator::new(Counting::new());
        let a = cached.evaluate(&[3]).unwrap();
        let b = cached.evaluate(&[3]).unwrap();
        assert_eq!(a, b);
        assert_eq!(cached.inner().calls.load(Ordering::Relaxed), 1);
        let stats = cached.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distinct_points_are_distinct_entries() {
        let cached = CachedEvaluator::new(Counting::new());
        for p in [[0usize], [1], [2], [1], [0]] {
            cached.evaluate(&p).unwrap();
        }
        assert_eq!(cached.len(), 3);
        assert_eq!(cached.inner().calls.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn cached_objectives_match_inner() {
        let cached = CachedEvaluator::new(Counting::new());
        let first = cached.evaluate(&[7]).unwrap();
        assert_eq!(cached.peek(&[7]), Some(first.clone()));
        assert_eq!(cached.evaluate(&[7]).unwrap(), first);
        assert_eq!(first, vec![7.0, 3.0]);
    }

    #[test]
    fn failed_evaluations_are_not_cached() {
        let cached = CachedEvaluator::new(FlakyOdd { calls: AtomicUsize::new(0) });
        assert!(cached.evaluate(&[1]).is_err());
        assert!(cached.evaluate(&[1]).is_err());
        // Both failures ran the inner evaluator: nothing was memoized.
        assert_eq!(cached.inner().calls.load(Ordering::Relaxed), 2);
        assert_eq!(cached.len(), 0);
        assert_eq!(cached.peek(&[1]), None);
        // A successful point still caches normally.
        assert!(cached.evaluate(&[2]).is_ok());
        assert!(cached.evaluate(&[2]).is_ok());
        assert_eq!(cached.inner().calls.load(Ordering::Relaxed), 3);
        assert_eq!(cached.len(), 1);
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let cached = CachedEvaluator::new(Counting::new());
        let points: Vec<Vec<usize>> = (0..64).map(|i| vec![i % 8]).collect();
        let results = crate::par::parallel_map_with(4, &points, |_, p| cached.evaluate(p));
        for (p, r) in points.iter().zip(&results) {
            assert_eq!(r.clone().unwrap(), vec![p[0] as f64, 10.0 - p[0] as f64]);
        }
        assert_eq!(cached.len(), 8);
        let stats = cached.stats();
        assert_eq!(stats.hits + stats.misses, 64);
    }

    #[test]
    fn empty_and_hit_rate_defaults() {
        let cached = CachedEvaluator::new(Counting::new());
        assert!(cached.is_empty());
        assert_eq!(cached.stats().hit_rate(), 0.0);
        assert_eq!(cached.peek(&[1]), None);
    }

    #[test]
    fn reference_point_passes_through() {
        let cached = CachedEvaluator::new(Counting::new());
        assert_eq!(cached.reference_point(), vec![20.0, 20.0]);
        assert_eq!(cached.num_objectives(), 2);
        assert_eq!(cached.into_inner().calls.load(Ordering::Relaxed), 0);
    }
}

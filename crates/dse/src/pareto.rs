//! Pareto dominance, non-dominated sorting, crowding distance, and exact
//! hypervolume for two and three objectives. All objectives are minimized.

/// True when `a` Pareto-dominates `b` (no worse in every objective,
/// strictly better in at least one).
///
/// # Panics
///
/// Panics if the objective vectors have different lengths.
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    assert_eq!(a.len(), b.len(), "objective dimension mismatch");
    let mut strictly = false;
    for (x, y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly = true;
        }
    }
    strictly
}

/// Indices of the non-dominated points in `points`.
///
/// Duplicate objective vectors are all retained (none dominates another).
pub fn pareto_indices(points: &[Vec<f64>]) -> Vec<usize> {
    let mut out = Vec::new();
    'outer: for (i, p) in points.iter().enumerate() {
        for (j, q) in points.iter().enumerate() {
            if i != j && (dominates(q, p) || (q == p && j < i)) {
                continue 'outer;
            }
        }
        out.push(i);
    }
    out
}

/// A Pareto front maintained incrementally under point insertion.
///
/// Pushing points in ascending index order yields exactly the members
/// (and member order) of [`pareto_indices`] over the full point
/// sequence: a new point is rejected when an existing member dominates
/// or equals it (existing members always carry smaller indices, matching
/// the keep-first-duplicate rule), and otherwise evicts every member it
/// dominates before being appended. Eviction is transitively sound — if
/// a point was ever rejected by a member that is later evicted, the
/// evictor dominates the rejected point too — so no rescan of history is
/// needed. This turns the per-iteration O(n²) front rebuild in the BO
/// acquisition loop into O(n·|front|) total across the whole run.
#[derive(Debug, Clone, Default)]
pub struct IncrementalFront {
    indices: Vec<usize>,
    points: Vec<Vec<f64>>,
}

impl IncrementalFront {
    /// Creates an empty front.
    pub fn new() -> IncrementalFront {
        IncrementalFront::default()
    }

    /// Offers a point to the front; returns `true` when it was admitted.
    ///
    /// # Panics
    ///
    /// Panics if `index` is not strictly greater than every index pushed
    /// before it — the batch-equivalence contract requires ascending
    /// insertion order.
    pub fn push(&mut self, index: usize, point: Vec<f64>) -> bool {
        assert!(
            self.indices.last().is_none_or(|&last| last < index),
            "IncrementalFront requires strictly ascending indices"
        );
        for q in &self.points {
            if dominates(q, &point) || *q == point {
                return false;
            }
        }
        // Stable in-place compaction of the survivors.
        let mut w = 0;
        for r in 0..self.points.len() {
            if dominates(&point, &self.points[r]) {
                continue;
            }
            self.points.swap(w, r);
            self.indices.swap(w, r);
            w += 1;
        }
        self.points.truncate(w);
        self.indices.truncate(w);
        self.indices.push(index);
        self.points.push(point);
        true
    }

    /// Current front members, in ascending insertion-index order.
    pub fn points(&self) -> &[Vec<f64>] {
        &self.points
    }

    /// Insertion indices of the current members, ascending.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Number of points on the front.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the front has no members.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Drops all members.
    pub fn clear(&mut self) {
        self.indices.clear();
        self.points.clear();
    }
}

/// Fast non-dominated sort (NSGA-II): returns fronts of indices, best
/// front first.
pub fn non_dominated_sort(points: &[Vec<f64>]) -> Vec<Vec<usize>> {
    let n = points.len();
    let mut dominated_by: Vec<Vec<usize>> = vec![Vec::new(); n]; // i dominates these
    let mut domination_count = vec![0usize; n];
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            if dominates(&points[i], &points[j]) {
                dominated_by[i].push(j);
            } else if dominates(&points[j], &points[i]) {
                domination_count[i] += 1;
            }
        }
    }
    let mut fronts: Vec<Vec<usize>> = Vec::new();
    let mut current: Vec<usize> = (0..n).filter(|&i| domination_count[i] == 0).collect();
    while !current.is_empty() {
        let mut next = Vec::new();
        for &i in &current {
            for &j in &dominated_by[i] {
                domination_count[j] -= 1;
                if domination_count[j] == 0 {
                    next.push(j);
                }
            }
        }
        fronts.push(std::mem::take(&mut current));
        current = next;
    }
    fronts
}

/// NSGA-II crowding distance for the points at `indices` (within one
/// front). Boundary points receive `f64::INFINITY`.
pub fn crowding_distance(points: &[Vec<f64>], indices: &[usize]) -> Vec<f64> {
    let m = indices.len();
    let mut dist = vec![0.0; m];
    if m == 0 {
        return dist;
    }
    let objectives = points[indices[0]].len();
    // `obj` indexes the inner objective axis of `points`, not `points`
    // itself, so the range loop is the natural form here.
    #[allow(clippy::needless_range_loop)]
    for obj in 0..objectives {
        let mut order: Vec<usize> = (0..m).collect();
        order.sort_by(|&a, &b| points[indices[a]][obj].total_cmp(&points[indices[b]][obj]));
        let lo = points[indices[order[0]]][obj];
        let hi = points[indices[order[m - 1]]][obj];
        dist[order[0]] = f64::INFINITY;
        dist[order[m - 1]] = f64::INFINITY;
        let range = hi - lo;
        if range <= 0.0 {
            continue;
        }
        for w in 1..m - 1 {
            let prev = points[indices[order[w - 1]]][obj];
            let next = points[indices[order[w + 1]]][obj];
            dist[order[w]] += (next - prev) / range;
        }
    }
    dist
}

/// Exact hypervolume (to be maximized) of a minimization front with
/// respect to `reference` (an upper bound that every point must
/// dominate). Points not dominating the reference contribute nothing.
///
/// Supports 1, 2, and 3 objectives.
///
/// # Panics
///
/// Panics for more than three objectives or mismatched dimensions.
pub fn hypervolume(points: &[Vec<f64>], reference: &[f64]) -> f64 {
    let d = reference.len();
    assert!((1..=3).contains(&d), "hypervolume implemented for 1-3 objectives, got {d}");
    let filtered: Vec<Vec<f64>> = points
        .iter()
        .filter(|p| {
            assert_eq!(p.len(), d, "objective dimension mismatch");
            p.iter().zip(reference).all(|(x, r)| x < r)
        })
        .cloned()
        .collect();
    if filtered.is_empty() {
        return 0.0;
    }
    let idx = pareto_indices(&filtered);
    let front: Vec<Vec<f64>> = idx.into_iter().map(|i| filtered[i].clone()).collect();
    match d {
        1 => reference[0] - front.iter().map(|p| p[0]).fold(f64::INFINITY, f64::min),
        2 => hv2d(&front, reference),
        _ => hv3d(&front, reference),
    }
}

/// Exact exclusive hypervolume contribution of `candidate` with respect
/// to `front`: `hypervolume(front ∪ {candidate}) - hypervolume(front)`,
/// computed without touching the part of the front outside the
/// candidate's dominated box.
///
/// The candidate's box `[candidate, reference]` is intersected with each
/// front point's box by clipping the point to `max(point, candidate)`
/// componentwise; the contribution is the candidate's box volume minus
/// the union volume of the clipped boxes. Front points that weakly
/// dominate the candidate cover the box entirely (contribution 0, early
/// exit), and points whose clip collapses against the reference drop
/// out — so scoring a large candidate pool against a front costs only
/// the overlapping region per candidate instead of two full-front
/// hypervolume computations.
///
/// Supports 1, 2, and 3 objectives.
///
/// # Panics
///
/// Panics for more than three objectives or mismatched dimensions.
pub fn hypervolume_contribution(front: &[Vec<f64>], candidate: &[f64], reference: &[f64]) -> f64 {
    let d = reference.len();
    assert!((1..=3).contains(&d), "hypervolume implemented for 1-3 objectives, got {d}");
    assert_eq!(candidate.len(), d, "objective dimension mismatch");
    if !candidate.iter().zip(reference).all(|(x, r)| x < r) {
        return 0.0;
    }
    let mut clipped: Vec<Vec<f64>> = Vec::new();
    for f in front {
        assert_eq!(f.len(), d, "objective dimension mismatch");
        if f.iter().zip(candidate).all(|(a, b)| a <= b) {
            return 0.0;
        }
        let g: Vec<f64> = f.iter().zip(candidate).map(|(a, b)| a.max(*b)).collect();
        if g.iter().zip(reference).all(|(x, r)| x < r) {
            clipped.push(g);
        }
    }
    let box_vol: f64 = candidate.iter().zip(reference).map(|(c, r)| r - c).product();
    if clipped.is_empty() {
        return box_vol;
    }
    (box_vol - hypervolume(&clipped, reference)).max(0.0)
}

/// 2-D hypervolume by a left-to-right sweep over the sorted front.
fn hv2d(front: &[Vec<f64>], reference: &[f64]) -> f64 {
    let mut pts: Vec<(f64, f64)> = front.iter().map(|p| (p[0], p[1])).collect();
    pts.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut hv = 0.0;
    let mut prev_y = reference[1];
    for (x, y) in pts {
        if y < prev_y {
            hv += (reference[0] - x) * (prev_y - y);
            prev_y = y;
        }
    }
    hv
}

/// 3-D hypervolume by slicing along the third objective: between
/// consecutive z-levels the dominated area is the 2-D hypervolume of the
/// points at or below the slab.
fn hv3d(front: &[Vec<f64>], reference: &[f64]) -> f64 {
    let mut order: Vec<usize> = (0..front.len()).collect();
    order.sort_by(|&a, &b| front[a][2].total_cmp(&front[b][2]));
    let mut hv = 0.0;
    let mut active: Vec<Vec<f64>> = Vec::new();
    for (rank, &i) in order.iter().enumerate() {
        let z_lo = front[i][2];
        let z_hi = if rank + 1 < order.len() { front[order[rank + 1]][2] } else { reference[2] };
        active.push(vec![front[i][0], front[i][1]]);
        if z_hi > z_lo {
            let ref2 = [reference[0], reference[1]];
            let idx = pareto_indices(&active);
            let front2: Vec<Vec<f64>> = idx.iter().map(|&j| active[j].clone()).collect();
            hv += hv2d(&front2, &ref2) * (z_hi - z_lo);
        }
    }
    hv
}

/// A reusable scorer for SMS-EGO acquisition: precomputes front indexes
/// once so that scoring a large candidate pool against a frozen front
/// stops rescanning the whole front per candidate.
///
/// Two accelerations over the naive per-candidate loop:
///
/// * [`ContributionScorer::epsilon_penalty`] pre-sorts the front by its
///   first objective, so the epsilon-dominance scan only visits the
///   prefix with `f₀ ≤ c₀ + ε` (a necessary condition for the full
///   check) instead of the whole front. Qualifying points are then
///   accumulated in front order, making the result **bit-identical** to
///   the naive in-order scan.
/// * [`ContributionScorer::contribution`] replaces the generic
///   `hypervolume(clipped)` recomputation inside
///   [`hypervolume_contribution`] — which re-runs Pareto filtering per
///   z-slab, O(k³) worst-case in three objectives — with a single
///   z-sweep that maintains the clipped union's 2-D staircase *and its
///   area* incrementally, O(k log k) typical / O(k²) worst-case. Within
///   ~1e-9 of the rescan (floating-point reassociation only).
///
/// Build one per acquisition iteration and share it read-only across
/// scoring chunks; give each chunk its own [`ScorerScratch`] so the hot
/// loop allocates nothing per candidate.
#[derive(Debug, Clone)]
pub struct ContributionScorer {
    reference: Vec<f64>,
    /// Front points padded to three objectives and stored contiguously,
    /// so the per-candidate clip scan streams one flat allocation.
    front: Vec<[f64; 3]>,
    d: usize,
    /// Front indices sorted ascending by first objective.
    by_obj0: Vec<usize>,
}

/// Reusable working buffers for [`ContributionScorer`]. One per scoring
/// thread/chunk; every buffer is cleared (not shrunk) between candidates
/// so steady-state scoring performs no heap allocation.
#[derive(Debug, Default, Clone)]
pub struct ScorerScratch {
    /// Candidate-clipped front points, padded to three objectives.
    clipped: Vec<[f64; 3]>,
    /// Indices of epsilon-dominating front points, restored to front order.
    hits: Vec<usize>,
    /// The 3-D sweep's active 2-D staircase.
    stairs: Vec<(f64, f64)>,
}

impl ContributionScorer {
    /// Builds a scorer over a frozen `front` and `reference` (an upper
    /// bound every scored point should dominate). O(F log F).
    ///
    /// # Panics
    ///
    /// Panics for 0 or more than three objectives, or mismatched front
    /// dimensions.
    pub fn new(front: &[Vec<f64>], reference: &[f64]) -> ContributionScorer {
        let d = reference.len();
        assert!((1..=3).contains(&d), "scorer implemented for 1-3 objectives, got {d}");
        let mut flat: Vec<[f64; 3]> = Vec::with_capacity(front.len());
        for f in front {
            assert_eq!(f.len(), d, "objective dimension mismatch");
            let mut row = [0.0f64; 3];
            row[..d].copy_from_slice(f);
            flat.push(row);
        }
        let mut by_obj0: Vec<usize> = (0..flat.len()).collect();
        by_obj0.sort_by(|&a, &b| flat[a][0].total_cmp(&flat[b][0]));
        ContributionScorer { reference: reference.to_vec(), front: flat, d, by_obj0 }
    }

    /// Number of front points the scorer was built over.
    pub fn len(&self) -> usize {
        self.front.len()
    }

    /// True when the scorer's front is empty.
    pub fn is_empty(&self) -> bool {
        self.front.is_empty()
    }

    /// Creates a scratch sized for this scorer's front. One per scoring
    /// thread/chunk.
    pub fn scratch(&self) -> ScorerScratch {
        ScorerScratch {
            clipped: Vec::with_capacity(self.front.len()),
            hits: Vec::with_capacity(self.front.len()),
            stairs: Vec::with_capacity(self.front.len() + 1),
        }
    }

    /// Total SMS-EGO epsilon-dominance penalty of `candidate`: for every
    /// front point that epsilon-dominates it (`f ≤ c + ε` in all
    /// objectives), the dominated depth `Σ max(c − f, 0) + ε` is
    /// accumulated in front order — bit-identical to the naive full-front
    /// scan, but only the `f₀ ≤ c₀ + ε` prefix of the obj-0 sorted index
    /// is visited.
    ///
    /// # Panics
    ///
    /// Panics if `candidate` has the wrong dimension.
    pub fn epsilon_penalty(&self, candidate: &[f64], eps: f64) -> f64 {
        self.epsilon_penalty_with(&mut self.scratch(), candidate, eps)
    }

    /// [`ContributionScorer::epsilon_penalty`] against caller-owned
    /// buffers — the allocation-free form for hot scoring loops.
    pub fn epsilon_penalty_with(
        &self,
        scratch: &mut ScorerScratch,
        candidate: &[f64],
        eps: f64,
    ) -> f64 {
        assert_eq!(candidate.len(), self.reference.len(), "objective dimension mismatch");
        let cut = self.by_obj0.partition_point(|&i| self.front[i][0] <= candidate[0] + eps);
        scratch.hits.clear();
        scratch.hits.extend(
            self.by_obj0[..cut]
                .iter()
                .copied()
                .filter(|&i| self.front[i].iter().zip(candidate).all(|(fv, cv)| *fv <= cv + eps)),
        );
        scratch.hits.sort_unstable();
        let mut penalty = 0.0;
        for &i in &scratch.hits {
            let depth: f64 =
                self.front[i].iter().zip(candidate).map(|(fv, cv)| (cv - fv).max(0.0)).sum();
            penalty += depth + eps;
        }
        penalty
    }

    /// Exclusive hypervolume contribution of `candidate` against the
    /// frozen front — semantically [`hypervolume_contribution`], within
    /// ~1e-9 (the incremental union sweep reassociates additions).
    ///
    /// # Panics
    ///
    /// Panics if `candidate` has the wrong dimension.
    pub fn contribution(&self, candidate: &[f64]) -> f64 {
        self.contribution_with(&mut self.scratch(), candidate)
    }

    /// [`ContributionScorer::contribution`] against caller-owned buffers
    /// — the allocation-free form for hot scoring loops.
    pub fn contribution_with(&self, scratch: &mut ScorerScratch, candidate: &[f64]) -> f64 {
        let d = self.d;
        assert_eq!(candidate.len(), d, "objective dimension mismatch");
        if !candidate.iter().zip(&self.reference).all(|(x, r)| x < r) {
            return 0.0;
        }
        scratch.clipped.clear();
        for f in &self.front {
            if f.iter().zip(candidate).all(|(a, b)| a <= b) {
                return 0.0;
            }
            let mut g = [0.0f64; 3];
            let mut inside = true;
            for j in 0..d {
                g[j] = f[j].max(candidate[j]);
                inside &= g[j] < self.reference[j];
            }
            if inside {
                scratch.clipped.push(g);
            }
        }
        let box_vol: f64 = candidate.iter().zip(&self.reference).map(|(c, r)| r - c).product();
        if scratch.clipped.is_empty() {
            return box_vol;
        }
        let union = match d {
            1 => {
                self.reference[0]
                    - scratch.clipped.iter().map(|g| g[0]).fold(f64::INFINITY, f64::min)
            }
            2 => union_area_2d(&mut scratch.clipped, &self.reference),
            _ => union_volume_3d(&mut scratch.clipped, &mut scratch.stairs, &self.reference),
        };
        (box_vol - union).max(0.0)
    }

    /// The full SMS-EGO acquisition score: `-penalty` when any front
    /// point epsilon-dominates the candidate, otherwise the hypervolume
    /// contribution. Matches the historical inline scoring exactly.
    pub fn score(&self, candidate: &[f64], eps: f64) -> f64 {
        self.score_with(&mut self.scratch(), candidate, eps)
    }

    /// [`ContributionScorer::score`] against caller-owned buffers — the
    /// allocation-free form for hot scoring loops.
    pub fn score_with(&self, scratch: &mut ScorerScratch, candidate: &[f64], eps: f64) -> f64 {
        let penalty = self.epsilon_penalty_with(scratch, candidate, eps);
        if penalty > 0.0 {
            -penalty
        } else {
            self.contribution_with(scratch, candidate)
        }
    }
}

/// Union area of the boxes `[gᵢ, reference]` in 2-D: the hv2d sweep
/// without the (unnecessary for a union) Pareto pre-filter.
fn union_area_2d(clipped: &mut [[f64; 3]], reference: &[f64]) -> f64 {
    clipped.sort_unstable_by(|a, b| a[0].total_cmp(&b[0]));
    let mut area = 0.0;
    let mut prev_y = reference[1];
    for g in clipped {
        if g[1] < prev_y {
            area += (reference[0] - g[0]) * (prev_y - g[1]);
            prev_y = g[1];
        }
    }
    area
}

/// Union volume of the boxes `[gᵢ, reference]` in 3-D: sweep ascending
/// z, maintaining the active points' 2-D union as a staircase whose area
/// is updated incrementally on insertion, and accumulate `area · Δz` per
/// slab. O(k log k) typical; each staircase point is inserted and
/// evicted at most once.
fn union_volume_3d(
    clipped: &mut [[f64; 3]],
    stairs: &mut Vec<(f64, f64)>,
    reference: &[f64],
) -> f64 {
    clipped.sort_unstable_by(|a, b| a[2].total_cmp(&b[2]));
    stairs.clear();
    let mut area = 0.0;
    let mut volume = 0.0;
    for i in 0..clipped.len() {
        insert_stair(stairs, &mut area, clipped[i][0], clipped[i][1], reference);
        let z_lo = clipped[i][2];
        let z_hi = if i + 1 < clipped.len() { clipped[i + 1][2] } else { reference[2] };
        if z_hi > z_lo {
            volume += area * (z_hi - z_lo);
        }
    }
    volume
}

/// Inserts `(x, y)` into a staircase of mutually non-dominated points
/// (x strictly ascending, y strictly descending), keeping `area` — the
/// union area of the boxes `[(xᵢ, yᵢ), reference]` — consistent via the
/// slab identity `area = Σ (x_{i+1} − xᵢ)(ref₁ − yᵢ)` (with `x_{last+1}`
/// = `ref₀`). Covered points are no-ops; points dominated by the new one
/// are evicted as one contiguous block.
fn insert_stair(stairs: &mut Vec<(f64, f64)>, area: &mut f64, x: f64, y: f64, reference: &[f64]) {
    let lo = stairs.partition_point(|p| p.0 < x);
    // Covered: a predecessor at strictly smaller x with y no larger, or
    // an existing stair at exactly this x with y no larger.
    if lo > 0 && stairs[lo - 1].1 <= y {
        return;
    }
    if lo < stairs.len() && stairs[lo].0 == x && stairs[lo].1 <= y {
        return;
    }
    // Evict the contiguous block the new point dominates (y descending
    // makes `p.1 >= y` a prefix property from `lo`).
    let mut hi = lo;
    while hi < stairs.len() && stairs[hi].1 >= y {
        hi += 1;
    }
    for j in lo..hi {
        let right = if j + 1 < stairs.len() { stairs[j + 1].0 } else { reference[0] };
        *area -= (right - stairs[j].0) * (reference[1] - stairs[j].1);
    }
    if lo > 0 {
        // The predecessor's slab now ends at the new point instead of at
        // the first (possibly evicted) stair to its right.
        let old_right = if lo < stairs.len() { stairs[lo].0 } else { reference[0] };
        *area -= (old_right - x) * (reference[1] - stairs[lo - 1].1);
    }
    let right = if hi < stairs.len() { stairs[hi].0 } else { reference[0] };
    *area += (right - x) * (reference[1] - y);
    stairs.splice(lo..hi, [(x, y)]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_basics() {
        assert!(dominates(&[1.0, 1.0], &[2.0, 2.0]));
        assert!(dominates(&[1.0, 2.0], &[1.0, 3.0]));
        assert!(!dominates(&[1.0, 3.0], &[2.0, 2.0]));
        assert!(!dominates(&[1.0, 1.0], &[1.0, 1.0]));
    }

    #[test]
    fn pareto_indices_filters_dominated() {
        let pts = vec![
            vec![1.0, 4.0],
            vec![2.0, 2.0],
            vec![4.0, 1.0],
            vec![3.0, 3.0], // dominated by [2,2]
        ];
        assert_eq!(pareto_indices(&pts), vec![0, 1, 2]);
    }

    #[test]
    fn pareto_keeps_one_of_duplicates() {
        let pts = vec![vec![1.0, 1.0], vec![1.0, 1.0]];
        assert_eq!(pareto_indices(&pts), vec![0]);
    }

    #[test]
    fn incremental_front_matches_batch_recompute() {
        // Quantized pseudo-random points force duplicates and long
        // dominance chains; after every push the incremental front must
        // equal a from-scratch pareto_indices over the prefix.
        for seed in 0..8u64 {
            for d in 2..=3usize {
                let raw = lcg_points(seed * 31 + 3, 40, d, 1.0);
                let pts: Vec<Vec<f64>> = raw
                    .iter()
                    .map(|p| p.iter().map(|v| (v * 4.0).floor() / 4.0).collect())
                    .collect();
                let mut front = IncrementalFront::new();
                for (i, p) in pts.iter().enumerate() {
                    front.push(i, p.clone());
                    let expect = pareto_indices(&pts[..=i]);
                    assert_eq!(front.indices(), expect.as_slice(), "seed={seed} d={d} i={i}");
                    let expect_pts: Vec<&Vec<f64>> = expect.iter().map(|&j| &pts[j]).collect();
                    let got_pts: Vec<&Vec<f64>> = front.points().iter().collect();
                    assert_eq!(got_pts, expect_pts);
                }
            }
        }
    }

    #[test]
    fn incremental_front_rejects_duplicates_and_dominated() {
        let mut front = IncrementalFront::new();
        assert!(front.is_empty());
        assert!(front.push(0, vec![1.0, 4.0]));
        assert!(front.push(1, vec![2.0, 2.0]));
        assert!(!front.push(2, vec![2.0, 2.0]), "duplicate must be rejected");
        assert!(!front.push(3, vec![3.0, 3.0]), "dominated point must be rejected");
        assert!(front.push(4, vec![0.5, 0.5]), "dominating point must evict");
        assert_eq!(front.indices(), &[4]);
        assert_eq!(front.len(), 1);
        front.clear();
        assert!(front.is_empty());
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn incremental_front_panics_on_non_ascending_index() {
        let mut front = IncrementalFront::new();
        front.push(5, vec![1.0]);
        front.push(5, vec![0.5]);
    }

    #[test]
    fn nds_orders_fronts() {
        let pts = vec![
            vec![1.0, 1.0], // front 0 (dominates everything)
            vec![2.0, 2.0], // front 1
            vec![3.0, 3.0], // front 2
        ];
        let fronts = non_dominated_sort(&pts);
        assert_eq!(fronts, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn crowding_rewards_boundary_and_spread() {
        let pts = vec![vec![0.0, 4.0], vec![1.0, 2.0], vec![2.0, 1.5], vec![4.0, 0.0]];
        let idx = vec![0, 1, 2, 3];
        let d = crowding_distance(&pts, &idx);
        assert!(d[0].is_infinite() && d[3].is_infinite());
        assert!(d[1] > 0.0 && d[2] > 0.0);
    }

    #[test]
    fn hv2d_rectangle() {
        // Single point (1,1) with reference (3,3): area 2x2 = 4.
        assert!((hypervolume(&[vec![1.0, 1.0]], &[3.0, 3.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn hv2d_two_points_union() {
        // (1,2) and (2,1) with ref (3,3): union area = 2*1 + 1*2 - 1*1 = hmm
        // sweep: (1,2): (3-1)*(3-2)=2; (2,1): (3-2)*(2-1)=1 -> 3.
        let hv = hypervolume(&[vec![1.0, 2.0], vec![2.0, 1.0]], &[3.0, 3.0]);
        assert!((hv - 3.0).abs() < 1e-12);
    }

    #[test]
    fn hv3d_box() {
        // Point (0,0,0) with ref (1,2,3) -> volume 6.
        let hv = hypervolume(&[vec![0.0, 0.0, 0.0]], &[1.0, 2.0, 3.0]);
        assert!((hv - 6.0).abs() < 1e-12);
    }

    #[test]
    fn hv3d_union_of_two_boxes() {
        // Boxes from (0,0,0) and (0.5,0.5,-1)... use simple orthogonal case:
        // p1=(0,1,1), p2=(1,0,1), ref=(2,2,2).
        // slice z in [1,2): 2D front {(0,1),(1,0)} area = 2*1+1*1 = 3
        // volume = 3 * 1 = 3.
        let hv = hypervolume(&[vec![0.0, 1.0, 1.0], vec![1.0, 0.0, 1.0]], &[2.0, 2.0, 2.0]);
        assert!((hv - 3.0).abs() < 1e-12, "hv = {hv}");
    }

    #[test]
    fn hv_monotone_in_added_points() {
        let base = vec![vec![2.0, 2.0, 2.0]];
        let more = vec![vec![2.0, 2.0, 2.0], vec![1.0, 3.0, 1.0]];
        let r = [4.0, 4.0, 4.0];
        assert!(hypervolume(&more, &r) >= hypervolume(&base, &r));
    }

    #[test]
    fn points_outside_reference_ignored() {
        let hv = hypervolume(&[vec![5.0, 5.0]], &[3.0, 3.0]);
        assert_eq!(hv, 0.0);
    }

    #[test]
    fn dominated_point_adds_nothing() {
        let r = [4.0, 4.0];
        let a = hypervolume(&[vec![1.0, 1.0]], &r);
        let b = hypervolume(&[vec![1.0, 1.0], vec![2.0, 2.0]], &r);
        assert!((a - b).abs() < 1e-12);
    }

    /// Pseudo-random fixed point sets for contribution-equality checks
    /// (deterministic — a simple LCG, no RNG dependency).
    fn lcg_points(seed: u64, n: usize, d: usize, scale: f64) -> Vec<Vec<f64>> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64 * scale
        };
        (0..n).map(|_| (0..d).map(|_| next()).collect()).collect()
    }

    #[test]
    fn contribution_matches_hv_difference() {
        for d in 1..=3usize {
            let reference = vec![10.0; d];
            for seed in 0..6u64 {
                let front = lcg_points(seed * 7 + 1, 12, d, 9.0);
                let candidates = lcg_points(seed * 13 + 5, 8, d, 11.0);
                let base = hypervolume(&front, &reference);
                for c in &candidates {
                    let mut joined = front.clone();
                    joined.push(c.clone());
                    let expect = hypervolume(&joined, &reference) - base;
                    let got = hypervolume_contribution(&front, c, &reference);
                    assert!(
                        (got - expect).abs() < 1e-9,
                        "d={d} seed={seed}: {got} vs {expect} for {c:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn contribution_of_dominated_candidate_is_zero() {
        let front = vec![vec![1.0, 1.0, 1.0]];
        let r = [4.0, 4.0, 4.0];
        assert_eq!(hypervolume_contribution(&front, &[2.0, 2.0, 2.0], &r), 0.0);
        assert_eq!(hypervolume_contribution(&front, &[1.0, 1.0, 1.0], &r), 0.0);
    }

    #[test]
    fn contribution_outside_reference_is_zero() {
        let front: Vec<Vec<f64>> = Vec::new();
        assert_eq!(hypervolume_contribution(&front, &[5.0, 1.0], &[4.0, 4.0]), 0.0);
    }

    #[test]
    fn contribution_against_empty_front_is_box_volume() {
        let front: Vec<Vec<f64>> = Vec::new();
        let got = hypervolume_contribution(&front, &[1.0, 2.0], &[4.0, 4.0]);
        assert!((got - 6.0).abs() < 1e-12);
    }

    #[test]
    fn scorer_contribution_matches_rescan() {
        // Raw (un-filtered) LCG point sets stress dominated front members,
        // duplicate coordinates, and clipped-box collapse; the incremental
        // staircase must agree with the rescan path to fp-reassociation
        // tolerance in every dimension it supports.
        for d in 1..=3usize {
            let reference = vec![10.0; d];
            for seed in 0..8u64 {
                let front = lcg_points(seed * 11 + 2, 20, d, 9.5);
                let scorer = ContributionScorer::new(&front, &reference);
                assert_eq!(scorer.len(), 20);
                for c in lcg_points(seed * 17 + 9, 12, d, 11.0) {
                    let expect = hypervolume_contribution(&front, &c, &reference);
                    let got = scorer.contribution(&c);
                    assert!(
                        (got - expect).abs() < 1e-9,
                        "d={d} seed={seed}: {got} vs {expect} for {c:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn scorer_penalty_bitwise_matches_naive_scan() {
        let eps = 1e-3;
        for d in 2..=3usize {
            for seed in 0..6u64 {
                // Quantize to force exact coordinate ties across points.
                let front: Vec<Vec<f64>> = lcg_points(seed * 5 + 1, 24, d, 4.0)
                    .into_iter()
                    .map(|p| p.into_iter().map(|v| (v * 8.0).floor() / 8.0).collect())
                    .collect();
                let scorer = ContributionScorer::new(&front, &vec![5.0; d]);
                for c in lcg_points(seed * 3 + 7, 16, d, 4.5) {
                    let mut naive = 0.0;
                    for f in &front {
                        if f.iter().zip(&c).all(|(fv, cv)| *fv <= cv + eps) {
                            let depth: f64 =
                                f.iter().zip(&c).map(|(fv, cv)| (cv - fv).max(0.0)).sum();
                            naive += depth + eps;
                        }
                    }
                    let got = scorer.epsilon_penalty(&c, eps);
                    assert_eq!(
                        got.to_bits(),
                        naive.to_bits(),
                        "d={d} seed={seed}: {got} vs naive {naive} for {c:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn scorer_score_combines_penalty_and_contribution() {
        let front = vec![vec![1.0, 3.0], vec![3.0, 1.0]];
        let reference = vec![5.0, 5.0];
        let scorer = ContributionScorer::new(&front, &reference);
        let eps = 1e-3;
        // Epsilon-dominated candidate: negative penalty score.
        let dominated = [2.0, 4.0];
        let pen = scorer.epsilon_penalty(&dominated, eps);
        assert!(pen > 0.0);
        assert_eq!(scorer.score(&dominated, eps), -pen);
        // Non-dominated candidate: positive contribution score.
        let good = [0.5, 0.5];
        let score = scorer.score(&good, eps);
        assert!(score > 0.0);
        assert!(
            (score - hypervolume_contribution(&front, &good, &reference)).abs() < 1e-9,
            "score {score}"
        );
    }

    #[test]
    fn scorer_edge_cases() {
        let reference = vec![4.0, 4.0, 4.0];
        let empty = ContributionScorer::new(&[], &reference);
        assert!(empty.is_empty());
        let got = empty.contribution(&[1.0, 2.0, 3.0]);
        assert!((got - 6.0).abs() < 1e-12, "empty front must yield the box volume, got {got}");
        assert_eq!(empty.epsilon_penalty(&[1.0, 1.0, 1.0], 1e-3), 0.0);

        let scorer = ContributionScorer::new(&[vec![1.0, 1.0, 1.0]], &reference);
        assert_eq!(scorer.contribution(&[2.0, 2.0, 2.0]), 0.0, "dominated candidate");
        assert_eq!(scorer.contribution(&[1.0, 1.0, 1.0]), 0.0, "duplicate candidate");
        assert_eq!(scorer.contribution(&[5.0, 1.0, 1.0]), 0.0, "outside reference");
    }

    #[test]
    fn staircase_handles_exact_coordinate_ties() {
        // Same-x and same-y insertions exercise the covered / evicted tie
        // branches of the staircase; validate against the rescan.
        let reference = vec![10.0, 10.0, 10.0];
        let front = vec![
            vec![2.0, 6.0, 1.0],
            vec![2.0, 4.0, 2.0], // same x, better y: evicts the first in-slab
            vec![4.0, 4.0, 3.0], // dominated in xy by the second: covered
            vec![2.0, 4.0, 4.0], // exact xy duplicate: covered
            vec![1.0, 8.0, 5.0], // new leftmost stair
        ];
        let scorer = ContributionScorer::new(&front, &reference);
        for c in [[0.5, 0.5, 0.5], [1.5, 3.0, 0.2], [3.0, 3.0, 3.0]] {
            let expect = hypervolume_contribution(&front, &c, &reference);
            let got = scorer.contribution(&c);
            assert!((got - expect).abs() < 1e-9, "{got} vs {expect} for {c:?}");
        }
    }
}

/// Inverted generational distance: mean Euclidean distance from each
/// reference-front point to its nearest point in `approximation`. Lower
/// is better; zero means the approximation covers the reference front.
///
/// # Panics
///
/// Panics when `reference_front` is empty or dimensions are
/// inconsistent.
pub fn inverted_generational_distance(
    approximation: &[Vec<f64>],
    reference_front: &[Vec<f64>],
) -> f64 {
    assert!(!reference_front.is_empty(), "reference front must be non-empty");
    if approximation.is_empty() {
        return f64::INFINITY;
    }
    let mut total = 0.0;
    for r in reference_front {
        let nearest = approximation
            .iter()
            .map(|a| {
                assert_eq!(a.len(), r.len(), "objective dimension mismatch");
                a.iter().zip(r).map(|(x, y)| (x - y) * (x - y)).sum::<f64>()
            })
            .fold(f64::INFINITY, f64::min);
        total += nearest.sqrt();
    }
    total / reference_front.len() as f64
}

#[cfg(test)]
mod igd_tests {
    use super::*;

    #[test]
    fn perfect_cover_has_zero_igd() {
        let front = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        assert_eq!(inverted_generational_distance(&front, &front), 0.0);
    }

    #[test]
    fn distance_grows_with_gap() {
        let reference = vec![vec![0.0, 0.0]];
        let near = vec![vec![0.1, 0.0]];
        let far = vec![vec![1.0, 0.0]];
        assert!(
            inverted_generational_distance(&near, &reference)
                < inverted_generational_distance(&far, &reference)
        );
    }

    #[test]
    fn empty_approximation_is_infinite() {
        let reference = vec![vec![0.0, 0.0]];
        assert!(inverted_generational_distance(&[], &reference).is_infinite());
    }
}

//! Optimization histories and results.

use autopilot_obs as obs;

use crate::pareto::{hypervolume, pareto_indices};

/// One evaluated design point.
#[derive(Debug, Clone, PartialEq)]
pub struct EvaluationRecord {
    /// Evaluation index (0-based order of evaluation).
    pub iteration: usize,
    /// Design-space index vector.
    pub point: Vec<usize>,
    /// Objective values (minimized).
    pub objectives: Vec<f64>,
}

/// The outcome of one optimizer run.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizationResult {
    /// Algorithm name.
    pub algorithm: String,
    /// Every evaluation in order.
    pub evaluations: Vec<EvaluationRecord>,
    /// Reference point used for the hypervolume trace.
    pub reference_point: Vec<f64>,
    /// Hypervolume of the archive after each evaluation.
    pub hypervolume_trace: Vec<f64>,
}

impl OptimizationResult {
    /// Builds a result from an evaluation history, computing the
    /// hypervolume trace.
    pub fn from_history(
        algorithm: impl Into<String>,
        evaluations: Vec<EvaluationRecord>,
        reference_point: Vec<f64>,
    ) -> OptimizationResult {
        let mut trace = Vec::with_capacity(evaluations.len());
        let mut seen: Vec<Vec<f64>> = Vec::new();
        for ev in &evaluations {
            seen.push(ev.objectives.clone());
            trace.push(hypervolume(&seen, &reference_point));
        }
        let result = OptimizationResult {
            algorithm: algorithm.into(),
            evaluations,
            reference_point,
            hypervolume_trace: trace,
        };
        if obs::metrics_enabled() {
            obs::add("dse.evaluations", result.evaluations.len() as u64);
            obs::gauge_set("dse.final_hypervolume", result.final_hypervolume());
        }
        result
    }

    /// The non-dominated subset of all evaluations.
    pub fn pareto_front(&self) -> Vec<&EvaluationRecord> {
        let objs: Vec<Vec<f64>> = self.evaluations.iter().map(|e| e.objectives.clone()).collect();
        pareto_indices(&objs).into_iter().map(|i| &self.evaluations[i]).collect()
    }

    /// Final hypervolume of the archive.
    pub fn final_hypervolume(&self) -> f64 {
        self.hypervolume_trace.last().copied().unwrap_or(0.0)
    }

    /// Number of evaluations consumed.
    pub fn evaluation_count(&self) -> usize {
        self.evaluations.len()
    }

    /// Evaluations needed to first reach `fraction` of the final
    /// hypervolume (a convergence-speed metric), or `None` if never.
    pub fn evaluations_to_fraction(&self, fraction: f64) -> Option<usize> {
        let target = self.final_hypervolume() * fraction;
        if target <= 0.0 {
            return Some(0);
        }
        self.hypervolume_trace.iter().position(|&h| h >= target).map(|i| i + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(i: usize, objs: Vec<f64>) -> EvaluationRecord {
        EvaluationRecord { iteration: i, point: vec![i], objectives: objs }
    }

    fn result() -> OptimizationResult {
        OptimizationResult::from_history(
            "test",
            vec![
                record(0, vec![3.0, 3.0]),
                record(1, vec![1.0, 4.0]),
                record(2, vec![2.0, 2.0]),
                record(3, vec![5.0, 5.0]),
            ],
            vec![6.0, 6.0],
        )
    }

    #[test]
    fn hypervolume_trace_is_monotone() {
        let r = result();
        for w in r.hypervolume_trace.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert_eq!(r.hypervolume_trace.len(), 4);
    }

    #[test]
    fn pareto_front_excludes_dominated() {
        let r = result();
        let front: Vec<usize> = r.pareto_front().iter().map(|e| e.iteration).collect();
        assert_eq!(front, vec![1, 2]);
    }

    #[test]
    fn convergence_metric() {
        let r = result();
        let n = r.evaluations_to_fraction(0.99).unwrap();
        assert!(n <= 3, "converged after {n}");
        assert_eq!(r.evaluation_count(), 4);
    }

    #[test]
    fn empty_history_is_safe() {
        let r = OptimizationResult::from_history("empty", vec![], vec![1.0]);
        assert_eq!(r.final_hypervolume(), 0.0);
        assert!(r.pareto_front().is_empty());
        assert_eq!(r.evaluations_to_fraction(0.9), Some(0));
    }
}

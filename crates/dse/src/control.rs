//! Cooperative cancellation and progress reporting for optimizer runs.
//!
//! A [`RunControl`] is a cheap, cloneable token threaded through
//! [`crate::MultiObjectiveOptimizer::run_controlled`]. The party that
//! launched the run keeps one clone (the DSE server hands it to its
//! `DELETE /jobs/:id` handler); the optimizer polls
//! [`RunControl::check`] at the top of each inner-loop iteration and
//! returns [`DseError::Cancelled`] cleanly — no partially built front
//! escapes, no panic.
//!
//! The same token carries coarse progress (evaluations done, current
//! Pareto-front size) published by the optimizer at each checkpoint, so
//! a status endpoint can report on a running job without touching
//! process-global gauges that concurrent jobs would race on.
//!
//! The default token ([`RunControl::none`]) has no shared state at all:
//! every check is a branch on a `None`, so CLI runs pay nothing.

use crate::error::DseError;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

#[derive(Debug, Default)]
struct ControlState {
    cancelled: AtomicBool,
    evaluations: AtomicU64,
    front_size: AtomicU64,
}

/// Cancellation token and progress channel for one optimizer run.
///
/// Clones share state: cancelling any clone cancels the run, and
/// progress written by the optimizer is visible through every clone.
#[derive(Debug, Clone, Default)]
pub struct RunControl {
    inner: Option<Arc<ControlState>>,
}

impl RunControl {
    /// An active token whose clones share cancellation and progress.
    pub fn new() -> RunControl {
        RunControl { inner: Some(Arc::new(ControlState::default())) }
    }

    /// The inert token: never cancelled, progress discarded. This is
    /// what [`crate::MultiObjectiveOptimizer::run`] (the uncontrolled
    /// entry point) uses, so existing callers are unaffected.
    pub fn none() -> RunControl {
        RunControl { inner: None }
    }

    /// True when this token shares state with other clones (i.e. was
    /// built by [`RunControl::new`]).
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// Requests cancellation. The optimizer notices at its next
    /// [`RunControl::check`] and returns [`DseError::Cancelled`].
    /// A no-op on an inert token.
    pub fn cancel(&self) {
        if let Some(state) = &self.inner {
            state.cancelled.store(true, Ordering::Relaxed);
        }
    }

    /// True once [`RunControl::cancel`] was called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.inner.as_ref().is_some_and(|s| s.cancelled.load(Ordering::Relaxed))
    }

    /// Returns `Err(DseError::Cancelled)` once cancellation was
    /// requested; optimizers call this at the top of each iteration.
    ///
    /// # Errors
    ///
    /// [`DseError::Cancelled`] when a clone has cancelled the run.
    pub fn check(&self) -> Result<(), DseError> {
        if self.is_cancelled() {
            Err(DseError::Cancelled)
        } else {
            Ok(())
        }
    }

    /// Publishes run progress: total objective evaluations committed so
    /// far and the current Pareto-front size. Called by optimizers at
    /// iteration boundaries; a no-op on an inert token.
    pub fn checkpoint(&self, evaluations: usize, front_size: usize) {
        if let Some(state) = &self.inner {
            state.evaluations.store(evaluations as u64, Ordering::Relaxed);
            state.front_size.store(front_size as u64, Ordering::Relaxed);
        }
    }

    /// Objective evaluations committed at the last checkpoint.
    pub fn evaluations(&self) -> u64 {
        self.inner.as_ref().map_or(0, |s| s.evaluations.load(Ordering::Relaxed))
    }

    /// Pareto-front size at the last checkpoint.
    pub fn front_size(&self) -> u64 {
        self.inner.as_ref().map_or(0, |s| s.front_size.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_token_never_cancels() {
        let c = RunControl::none();
        assert!(!c.is_active());
        c.cancel();
        assert!(!c.is_cancelled());
        assert!(c.check().is_ok());
        c.checkpoint(10, 3);
        assert_eq!((c.evaluations(), c.front_size()), (0, 0));
        // Default is the inert token.
        assert!(!RunControl::default().is_active());
    }

    #[test]
    fn clones_share_cancellation_and_progress() {
        let a = RunControl::new();
        let b = a.clone();
        assert!(a.check().is_ok());
        b.checkpoint(12, 4);
        assert_eq!((a.evaluations(), a.front_size()), (12, 4));
        b.cancel();
        assert!(a.is_cancelled());
        assert_eq!(a.check(), Err(DseError::Cancelled));
    }
}

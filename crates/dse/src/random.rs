//! Random-search baseline.

use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use std::collections::HashSet;

use crate::evaluator::{Evaluator, MultiObjectiveOptimizer};
use crate::result::{EvaluationRecord, OptimizationResult};
use crate::space::DesignSpace;

/// Uniform random search without replacement (up to a retry bound).
///
/// The weakest sensible baseline for Phase-2 DSE comparisons.
#[derive(Debug, Clone)]
pub struct RandomSearch {
    seed: u64,
}

impl RandomSearch {
    /// Creates a random search with a deterministic seed.
    pub fn new(seed: u64) -> RandomSearch {
        RandomSearch { seed }
    }
}

impl MultiObjectiveOptimizer for RandomSearch {
    fn name(&self) -> &str {
        "random-search"
    }

    fn run<E: Evaluator>(
        &mut self,
        space: &DesignSpace,
        evaluator: &E,
        budget: usize,
    ) -> OptimizationResult {
        let mut rng = ChaCha12Rng::seed_from_u64(self.seed);
        let mut seen: HashSet<Vec<usize>> = HashSet::new();
        let mut history = Vec::with_capacity(budget);
        let mut retries = 0usize;
        while history.len() < budget && retries < budget * 20 {
            let p = space.random_point(&mut rng);
            if !seen.insert(p.clone()) {
                retries += 1;
                continue;
            }
            let objectives = evaluator.evaluate(&p);
            history.push(EvaluationRecord {
                iteration: history.len(),
                point: p,
                objectives,
            });
        }
        OptimizationResult::from_history(self.name(), history, evaluator.reference_point())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::test_problems::Tradeoff;

    #[test]
    fn respects_budget_and_dedupes() {
        let space = DesignSpace::new(vec![32]).unwrap();
        let mut rs = RandomSearch::new(1);
        let res = rs.run(&space, &Tradeoff, 16);
        assert!(res.evaluation_count() <= 16);
        let mut pts: Vec<_> = res.evaluations.iter().map(|e| e.point.clone()).collect();
        pts.sort();
        pts.dedup();
        assert_eq!(pts.len(), res.evaluation_count());
    }

    #[test]
    fn deterministic_given_seed() {
        let space = DesignSpace::new(vec![32]).unwrap();
        let a = RandomSearch::new(9).run(&space, &Tradeoff, 10);
        let b = RandomSearch::new(9).run(&space, &Tradeoff, 10);
        assert_eq!(a, b);
    }

    #[test]
    fn exhausts_small_space() {
        let space = DesignSpace::new(vec![4]).unwrap();
        let res = RandomSearch::new(2).run(&space, &Tradeoff, 100);
        assert_eq!(res.evaluation_count(), 4);
    }
}

//! Random-search baseline.

use autopilot_obs as obs;
use autopilot_rng::Rng;
use std::collections::HashSet;

use crate::control::RunControl;
use crate::error::{DseError, EvalError};
use crate::evaluator::{Evaluator, MultiObjectiveOptimizer};
use crate::par;
use crate::result::{EvaluationRecord, OptimizationResult};
use crate::space::DesignSpace;

/// Uniform random search without replacement (up to a retry bound).
///
/// The weakest sensible baseline for Phase-2 DSE comparisons. The point
/// sequence is drawn up front (it depends only on the seed, never on
/// objective values), so evaluations fan out across worker threads while
/// the result stays bit-identical to a sequential run.
#[derive(Debug, Clone)]
pub struct RandomSearch {
    seed: u64,
    threads: Option<usize>,
}

impl RandomSearch {
    /// Creates a random search with a deterministic seed.
    pub fn new(seed: u64) -> RandomSearch {
        RandomSearch { seed, threads: None }
    }

    /// Pins the evaluation worker count (default: [`par::worker_count`]).
    pub fn with_threads(mut self, n: usize) -> RandomSearch {
        self.threads = Some(n.max(1));
        self
    }

    fn workers(&self) -> usize {
        self.threads.unwrap_or_else(par::worker_count)
    }
}

impl MultiObjectiveOptimizer for RandomSearch {
    fn name(&self) -> &str {
        "random-search"
    }

    fn run_controlled(
        &mut self,
        space: &DesignSpace,
        evaluator: &dyn Evaluator,
        budget: usize,
        control: &RunControl,
    ) -> Result<OptimizationResult, DseError> {
        let _span = obs::span("random_search.run");
        control.check()?;
        let mut rng = Rng::seed_from_u64(self.seed);
        let mut seen: HashSet<Vec<usize>> = HashSet::new();
        let mut points: Vec<Vec<usize>> = Vec::with_capacity(budget);
        let mut retries = 0usize;
        while points.len() < budget && retries < budget * 20 {
            let p = space.random_point(&mut rng);
            if !seen.insert(p.clone()) {
                retries += 1;
                continue;
            }
            points.push(p);
        }
        // The point sequence depends only on the seed, so evaluating it
        // in chunks with a cancellation check between chunks changes
        // nothing about the result — it only bounds how much work a
        // cancelled run still performs.
        const CHUNK: usize = 32;
        let mut history: Vec<EvaluationRecord> = Vec::with_capacity(points.len());
        for chunk in points.chunks(CHUNK) {
            control.check()?;
            let objectives: Vec<Result<Vec<f64>, EvalError>> =
                par::parallel_map_with(self.workers(), chunk, |_, p| evaluator.evaluate(p));
            for (point, objectives) in chunk.iter().zip(objectives) {
                let iteration = history.len();
                history.push(EvaluationRecord {
                    iteration,
                    point: point.clone(),
                    objectives: objectives?,
                });
            }
            control.checkpoint(history.len(), 0);
        }
        Ok(OptimizationResult::from_history(self.name(), history, evaluator.reference_point()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::test_problems::Tradeoff;

    #[test]
    fn respects_budget_and_dedupes() {
        let space = DesignSpace::new(vec![32]).unwrap();
        let mut rs = RandomSearch::new(1);
        let res = rs.run(&space, &Tradeoff, 16).unwrap();
        assert!(res.evaluation_count() <= 16);
        let mut pts: Vec<_> = res.evaluations.iter().map(|e| e.point.clone()).collect();
        pts.sort();
        pts.dedup();
        assert_eq!(pts.len(), res.evaluation_count());
    }

    #[test]
    fn deterministic_given_seed() {
        let space = DesignSpace::new(vec![32]).unwrap();
        let a = RandomSearch::new(9).run(&space, &Tradeoff, 10).unwrap();
        let b = RandomSearch::new(9).run(&space, &Tradeoff, 10).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn exhausts_small_space() {
        let space = DesignSpace::new(vec![4]).unwrap();
        let res = RandomSearch::new(2).run(&space, &Tradeoff, 100).unwrap();
        assert_eq!(res.evaluation_count(), 4);
    }

    #[test]
    fn identical_across_thread_counts() {
        let space = DesignSpace::new(vec![16, 16]).unwrap();
        let base = RandomSearch::new(5).with_threads(1).run(&space, &Tradeoff, 24).unwrap();
        for t in [2, 4, 7] {
            let r = RandomSearch::new(5).with_threads(t).run(&space, &Tradeoff, 24).unwrap();
            assert_eq!(base, r, "threads = {t}");
        }
    }
}

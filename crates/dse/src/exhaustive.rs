//! Exhaustive enumeration, the ground-truth baseline for small spaces.

use crate::control::RunControl;
use crate::error::DseError;
use crate::evaluator::{Evaluator, MultiObjectiveOptimizer};
use crate::result::{EvaluationRecord, OptimizationResult};
use crate::space::DesignSpace;

/// Enumerates the design space in lexicographic order until the budget
/// (or the space) is exhausted.
///
/// On spaces small enough to cover fully this recovers the exact Pareto
/// frontier, making it the reference against which sampling optimizers
/// are validated.
#[derive(Debug, Clone, Default)]
pub struct ExhaustiveSearch;

impl ExhaustiveSearch {
    /// Creates the optimizer.
    pub fn new() -> ExhaustiveSearch {
        ExhaustiveSearch
    }
}

impl MultiObjectiveOptimizer for ExhaustiveSearch {
    fn name(&self) -> &str {
        "exhaustive"
    }

    fn run_controlled(
        &mut self,
        space: &DesignSpace,
        evaluator: &dyn Evaluator,
        budget: usize,
        control: &RunControl,
    ) -> Result<OptimizationResult, DseError> {
        let mut history: Vec<EvaluationRecord> = Vec::new();
        for (iteration, point) in space.iter_points().take(budget).enumerate() {
            control.check()?;
            let objectives = evaluator.evaluate(&point)?;
            history.push(EvaluationRecord { iteration, point, objectives });
            control.checkpoint(history.len(), 0);
        }
        Ok(OptimizationResult::from_history(self.name(), history, evaluator.reference_point()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::test_problems::Tradeoff;
    use crate::pareto::hypervolume;
    use crate::random::RandomSearch;

    #[test]
    fn covers_small_space_exactly() {
        let space = DesignSpace::new(vec![32]).unwrap();
        let res = ExhaustiveSearch::new().run(&space, &Tradeoff, 1000).unwrap();
        assert_eq!(res.evaluation_count(), 32);
    }

    #[test]
    fn recovers_ground_truth_hypervolume() {
        let space = DesignSpace::new(vec![32]).unwrap();
        let truth = ExhaustiveSearch::new().run(&space, &Tradeoff, 1000).unwrap();
        let sampled = RandomSearch::new(1).run(&space, &Tradeoff, 16).unwrap();
        let r = Tradeoff.reference_point();
        let truth_hv = hypervolume(
            &truth.evaluations.iter().map(|e| e.objectives.clone()).collect::<Vec<_>>(),
            &r,
        );
        assert!(truth_hv >= sampled.final_hypervolume());
        assert!((truth.final_hypervolume() - truth_hv).abs() < 1e-12);
    }

    #[test]
    fn respects_budget_on_large_space() {
        let space = DesignSpace::new(vec![100, 100]).unwrap();
        let res = ExhaustiveSearch::new().run(&space, &Tradeoff, 50).unwrap();
        assert_eq!(res.evaluation_count(), 50);
    }
}

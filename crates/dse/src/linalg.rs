//! Minimal dense linear algebra for Gaussian-process regression.
//!
//! Implements exactly what the GP needs: symmetric positive-definite
//! Cholesky factorization and triangular solves. Matrices are small (the
//! number of DSE evaluations, typically a few hundred), so a
//! straightforward `O(n^3)` implementation is appropriate.

/// A dense, row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Cholesky factorization `A = L L^T` of a symmetric positive-definite
    /// matrix, returning lower-triangular `L`.
    ///
    /// Returns `None` when the matrix is not (numerically) positive
    /// definite.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn cholesky(&self) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "cholesky requires a square matrix");
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return None;
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Some(l)
    }

    /// Solves `L x = b` for lower-triangular `L` (forward substitution).
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree.
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        let mut x = Vec::new();
        self.solve_lower_into(b, &mut x);
        x
    }

    /// [`Matrix::solve_lower`] into a caller-provided buffer (cleared and
    /// resized), so steady-state predict paths reuse scratch instead of
    /// allocating per call. The result is bit-identical to
    /// [`Matrix::solve_lower`] — it *is* the implementation.
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree.
    pub fn solve_lower_into(&self, b: &[f64], x: &mut Vec<f64>) {
        assert_eq!(self.rows, self.cols);
        assert_eq!(self.rows, b.len());
        let n = self.rows;
        x.clear();
        x.resize(n, 0.0);
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self[(i, k)] * x[k];
            }
            x[i] = sum / self[(i, i)];
        }
    }

    /// Solves `L^T x = b` for lower-triangular `L` (backward substitution
    /// on the transpose).
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree.
    pub fn solve_lower_transpose(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(self.rows, self.cols);
        assert_eq!(self.rows, b.len());
        let n = self.rows;
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = b[i];
            for k in (i + 1)..n {
                sum -= self[(k, i)] * x[k];
            }
            x[i] = sum / self[(i, i)];
        }
        x
    }

    /// Solves `L X = B` for lower-triangular `L` and a multi-column
    /// right-hand side `B` (`n×m`, one column per system), returning `X`
    /// with the same shape.
    ///
    /// Column `j` of the result is **bit-identical** to
    /// `self.solve_lower(column j of B)`: the per-element operation
    /// sequence (initialize from `B`, subtract `L[i][k]·X[k][j]` for
    /// ascending `k`, divide by the diagonal) is unchanged — only the
    /// loop nesting differs. Columns are processed in cache-sized blocks
    /// so the triangular factor streams through the cache once per block
    /// instead of once per column, which is where the batched GP
    /// predictor gets its throughput.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not square or `b.rows() != self.rows()`.
    pub fn solve_lower_columns(&self, b: &Matrix) -> Matrix {
        assert_eq!(self.rows, self.cols, "solve_lower_columns requires a square matrix");
        assert_eq!(self.rows, b.rows, "right-hand side has wrong row count");
        let n = self.rows;
        let m = b.cols;
        let mut x = Matrix::zeros(n, m);
        // Block width tuned so a block of X (n rows × BLOCK columns of
        // f64) stays resident while the factor streams past it.
        const BLOCK: usize = 64;
        // Output rows resolved per sweep over the already-solved rows.
        // Forward substitution re-reads every solved row per output row,
        // so resolving RBLK outputs per sweep divides that traffic by
        // RBLK; the accumulators live in stack buffers the whole time.
        const RBLK: usize = 4;
        let mut c0 = 0;
        while c0 < m {
            let c1 = (c0 + BLOCK).min(m);
            let w = c1 - c0;
            let mut i0 = 0;
            while i0 < n {
                let r = RBLK.min(n - i0);
                let mut acc = [[0.0f64; BLOCK]; RBLK];
                for (ri, a) in acc.iter_mut().enumerate().take(r) {
                    let row = (i0 + ri) * m;
                    a[..w].copy_from_slice(&b.data[row + c0..row + c1]);
                }
                // Uniform sweep: contributions of the rows solved before
                // this row block, one pass over X for all r outputs.
                // Each output's subtractions still run in ascending k.
                for k in 0..i0 {
                    let row_k = &x.data[k * m + c0..k * m + c1];
                    for (ri, a) in acc.iter_mut().enumerate().take(r) {
                        let lik = self.data[(i0 + ri) * self.cols + k];
                        for (av, &xv) in a[..w].iter_mut().zip(row_k) {
                            *av -= lik * xv;
                        }
                    }
                }
                // Triangular tail among the block's own rows: row ri
                // subtracts the block rows solved just before it (still
                // ascending k), then divides by its diagonal.
                for ri in 0..r {
                    let (solved, tail) = acc.split_at_mut(ri);
                    let a = &mut tail[0];
                    for (kj, row_k) in solved.iter().enumerate() {
                        let lik = self.data[(i0 + ri) * self.cols + (i0 + kj)];
                        for (av, &xv) in a[..w].iter_mut().zip(&row_k[..w]) {
                            *av -= lik * xv;
                        }
                    }
                    let lii = self.data[(i0 + ri) * self.cols + (i0 + ri)];
                    for av in &mut a[..w] {
                        *av /= lii;
                    }
                }
                for (ri, a) in acc.iter().enumerate().take(r) {
                    let row = (i0 + ri) * m;
                    x.data[row + c0..row + c1].copy_from_slice(&a[..w]);
                }
                i0 += r;
            }
            c0 = c1;
        }
        x
    }

    /// Explicit inverse of a lower-triangular matrix by forward
    /// substitution per column — O(n³/6). Used to precompute quadratic
    /// forms (`C⁻¹ = L⁻ᵀL⁻¹`) that turn per-query triangular solves into
    /// dense, dependency-free products.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn invert_lower(&self) -> Matrix {
        assert_eq!(self.rows, self.cols, "invert_lower requires a square matrix");
        let n = self.rows;
        let mut inv = Matrix::zeros(n, n);
        for j in 0..n {
            inv[(j, j)] = 1.0 / self[(j, j)];
            for i in (j + 1)..n {
                let mut sum = 0.0;
                for k in j..i {
                    sum += self[(i, k)] * inv[(k, j)];
                }
                inv[(i, j)] = -sum / self[(i, i)];
            }
        }
        inv
    }

    /// Product `Lᵀ·B` for lower-triangular `self` and a multi-column
    /// `B` (`n×m`). Unlike a triangular *solve*, every output row is an
    /// independent accumulation over the rows of `B` below it, so the
    /// loop has no sequential dependency and streams both operands
    /// row-major. Columns are processed in cache-sized blocks like
    /// [`Matrix::solve_lower_columns`].
    ///
    /// # Panics
    ///
    /// Panics if `self` is not square or `b.rows() != self.rows()`.
    pub fn transpose_mul_columns(&self, b: &Matrix) -> Matrix {
        assert_eq!(self.rows, self.cols, "transpose_mul_columns requires a square matrix");
        assert_eq!(self.rows, b.rows, "operand has wrong row count");
        let n = self.rows;
        let m = b.cols;
        let mut t = Matrix::zeros(n, m);
        const BLOCK: usize = 32;
        let mut c0 = 0;
        while c0 < m {
            let c1 = (c0 + BLOCK).min(m);
            for i in 0..n {
                let row_i = &mut t.data[i * m..i * m + m];
                for k in i..n {
                    let lki = self.data[k * self.cols + i];
                    let row_k = &b.data[k * m..k * m + m];
                    for j in c0..c1 {
                        row_i[j] += lki * row_k[j];
                    }
                }
            }
            c0 = c1;
        }
        t
    }

    /// Per-column sum of squares of `Lᵀ·B`, fused: each row of the
    /// product is accumulated in a reused block-width buffer and squared
    /// into the output immediately, never materializing the `n×m`
    /// intermediate that [`Matrix::transpose_mul_columns`] returns.
    ///
    /// Output `j` is **bit-identical** to summing `t[(i, j)]²` over
    /// ascending `i` for `t = self.transpose_mul_columns(b)`: per
    /// element the accumulation order (`L[k][i]·B[k][j]` for ascending
    /// `k ≥ i`, then squares over ascending `i`) is unchanged — this is
    /// the batched GP variance quadratic form without the intermediate's
    /// memory traffic.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not square or `b.rows() != self.rows()`.
    pub fn transpose_mul_sumsq_columns(&self, b: &Matrix) -> Vec<f64> {
        assert_eq!(self.rows, self.cols, "transpose_mul_sumsq_columns requires a square matrix");
        assert_eq!(self.rows, b.rows, "operand has wrong row count");
        let n = self.rows;
        let m = b.cols;
        let mut sumsq = vec![0.0f64; m];
        const BLOCK: usize = 64;
        // Product rows accumulated per sweep over B (see
        // [`Matrix::solve_lower_columns`] for the traffic argument).
        const RBLK: usize = 4;
        let mut c0 = 0;
        while c0 < m {
            let c1 = (c0 + BLOCK).min(m);
            let w = c1 - c0;
            let mut i0 = 0;
            while i0 < n {
                let r = RBLK.min(n - i0);
                let mut acc = [[0.0f64; BLOCK]; RBLK];
                // Triangular head: rows k inside the block contribute
                // only to product rows i ≤ k, in ascending k.
                for k in i0..i0 + r {
                    let row_k = &b.data[k * m + c0..k * m + c1];
                    for (ri, a) in acc.iter_mut().enumerate().take(k - i0 + 1) {
                        let lki = self.data[k * self.cols + (i0 + ri)];
                        for (av, &bv) in a[..w].iter_mut().zip(row_k) {
                            *av += lki * bv;
                        }
                    }
                }
                // Uniform sweep: every later row of B feeds all r
                // product rows, one pass over B for the whole block.
                for k in i0 + r..n {
                    let row_k = &b.data[k * m + c0..k * m + c1];
                    for (ri, a) in acc.iter_mut().enumerate().take(r) {
                        let lki = self.data[k * self.cols + (i0 + ri)];
                        for (av, &bv) in a[..w].iter_mut().zip(row_k) {
                            *av += lki * bv;
                        }
                    }
                }
                for a in acc.iter().take(r) {
                    for (ss, &t) in sumsq[c0..c1].iter_mut().zip(&a[..w]) {
                        *ss += t * t;
                    }
                }
                i0 += r;
            }
            c0 = c1;
        }
        sumsq
    }

    /// Grows a lower-triangular `n×n` matrix to `(n+1)×(n+1)` by
    /// appending `[row, diag]` as the last row (the entries above the new
    /// diagonal stay zero). This is the rank-1 Cholesky extension step:
    /// with `row = L⁻¹c` and `diag = sqrt(a − |row|²)`, the result
    /// factorizes the original matrix bordered by column `c` and corner
    /// `a` — in O(n) once the triangular solve for `row` is done.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `row.len() != self.rows()`.
    pub fn extend_lower(&mut self, row: &[f64], diag: f64) {
        assert_eq!(self.rows, self.cols, "extend_lower requires a square matrix");
        assert_eq!(self.rows, row.len(), "border row has wrong length");
        let n = self.rows;
        let mut data = Vec::with_capacity((n + 1) * (n + 1));
        for r in 0..n {
            data.extend_from_slice(&self.data[r * n..(r + 1) * n]);
            data.push(0.0);
        }
        data.extend_from_slice(row);
        data.push(diag);
        self.rows = n + 1;
        self.cols = n + 1;
        self.data = data;
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len());
        (0..self.rows).map(|r| (0..self.cols).map(|c| self[(r, c)] * v[c]).sum()).collect()
    }

    /// Row `r` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Appends a row, growing the matrix from `n×m` to `(n+1)×m`.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.cols()`.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(self.cols, row.len(), "appended row has wrong length");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Rank-1 *update* of a lower-triangular Cholesky factor: replaces
    /// `L` with the factor of `L·Lᵀ + v·vᵀ`, in place, in O(n²) using
    /// the classic Givens-style recurrence (`r = √(L_kk² + w_k²)`,
    /// `c = r/L_kk`, `s = w_k/L_kk`, then column-`k` row updates).
    ///
    /// Adding `v·vᵀ` keeps the matrix positive definite, so the update
    /// cannot fail mathematically; `false` is returned — with `self`
    /// untouched — only when the recurrence degenerates numerically
    /// (a non-finite or non-positive pivot), in which case the caller
    /// should refactorize from scratch.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `v.len() != self.rows()`.
    pub fn rank1_update_lower(&mut self, v: &[f64]) -> bool {
        assert_eq!(self.rows, self.cols, "rank1_update_lower requires a square matrix");
        assert_eq!(self.rows, v.len(), "update vector has wrong length");
        let n = self.rows;
        let mut data = self.data.clone();
        let mut work = v.to_vec();
        for k in 0..n {
            let lkk = data[k * n + k];
            let r = (lkk * lkk + work[k] * work[k]).sqrt();
            if !r.is_finite() || r <= 0.0 || lkk <= 0.0 {
                return false;
            }
            let c = r / lkk;
            let s = work[k] / lkk;
            data[k * n + k] = r;
            for i in (k + 1)..n {
                let lik = (data[i * n + k] + s * work[i]) / c;
                work[i] = c * work[i] - s * lik;
                data[i * n + k] = lik;
            }
        }
        self.data = data;
        true
    }

    /// Cholesky *downdate* that deletes the first row and column of the
    /// factorized matrix: given lower-triangular `L` with `L·Lᵀ = A`,
    /// replaces `L` with the factor of `A` minus its first row/column,
    /// in O(n²) instead of an O(n³) refactorization.
    ///
    /// Partitioning `L = [[l₁₁, 0], [l₂₁, L₂₂]]` gives the trailing
    /// block `A₂₂ = L₂₂·L₂₂ᵀ + l₂₁·l₂₁ᵀ`, so the new factor is the
    /// rank-1 *update* of `L₂₂` by the deleted column `l₂₁` — an
    /// additive update, hence unconditionally positive definite (no
    /// cancellation, unlike a general downdate). Returns `false` with
    /// `self` untouched only on numerical degeneracy.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or has fewer than two rows.
    pub fn delete_lower_first(&mut self) -> bool {
        assert_eq!(self.rows, self.cols, "delete_lower_first requires a square matrix");
        assert!(self.rows >= 2, "cannot delete the only row");
        let n = self.rows;
        let l21: Vec<f64> = (1..n).map(|i| self.data[i * n]).collect();
        let mut trailing = Matrix::zeros(n - 1, n - 1);
        for i in 1..n {
            for j in 1..=i {
                trailing.data[(i - 1) * (n - 1) + (j - 1)] = self.data[i * n + j];
            }
        }
        if !trailing.rank1_update_lower(&l21) {
            return false;
        }
        *self = trailing;
        true
    }

    /// Truncates a lower-triangular factor to its leading `n×n` block —
    /// the exact inverse of [`Matrix::extend_lower`]: the retained
    /// entries are bit-identical to what they were before any
    /// extension, because bordering never rewrites the leading block.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `n > self.rows()`.
    pub fn truncate_lower(&mut self, n: usize) {
        assert_eq!(self.rows, self.cols, "truncate_lower requires a square matrix");
        assert!(n <= self.rows, "cannot truncate {} rows to {n}", self.rows);
        let old = self.rows;
        let mut data = Vec::with_capacity(n * n);
        for r in 0..n {
            data.extend_from_slice(&self.data[r * old..r * old + n]);
        }
        self.rows = n;
        self.cols = n;
        self.data = data;
    }

    /// Gram matrix `AᵀA` of this `n×m` matrix (an `m×m` symmetric
    /// result), accumulated row-by-row so the `n`-long dimension streams
    /// through the cache once — the `CₙₘᵀCₙₘ` product of the sparse-GP
    /// fit.
    pub fn gram(&self) -> Matrix {
        let m = self.cols;
        let mut g = Matrix::zeros(m, m);
        for r in 0..self.rows {
            let row = &self.data[r * m..(r + 1) * m];
            for (i, &ai) in row.iter().enumerate() {
                let gi = &mut g.data[i * m..(i + 1) * m];
                for (gij, &aj) in gi.iter_mut().zip(row) {
                    *gij += ai * aj;
                }
            }
        }
        g
    }

    /// Transposed matrix-vector product `Aᵀv` (length `m` for an `n×m`
    /// matrix), accumulated over rows in ascending order.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.rows()`.
    pub fn transpose_mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.rows, v.len());
        let m = self.cols;
        let mut out = vec![0.0; m];
        for (r, &vr) in v.iter().enumerate() {
            let row = &self.data[r * m..(r + 1) * m];
            for (o, &a) in out.iter_mut().zip(row) {
                *o += a * vr;
            }
        }
        out
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Squared Euclidean distance between two equal-length slices.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = M M^T + I for a fixed M, guaranteed SPD.
        let m = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f64 * 0.1 + 1.0);
        Matrix::from_fn(3, 3, |r, c| {
            let mut s = if r == c { 1.0 } else { 0.0 };
            for k in 0..3 {
                s += m[(r, k)] * m[(c, k)];
            }
            s
        })
    }

    #[test]
    fn invert_lower_times_original_is_identity() {
        let l = spd3().cholesky().expect("SPD");
        let inv = l.invert_lower();
        for r in 0..3 {
            for c in 0..3 {
                let mut s = 0.0;
                for k in 0..3 {
                    s += inv[(r, k)] * l[(k, c)];
                }
                let want = if r == c { 1.0 } else { 0.0 };
                assert!((s - want).abs() < 1e-12, "inv*L[{r}][{c}] = {s}");
            }
        }
    }

    #[test]
    fn transpose_mul_columns_matches_naive() {
        let l = spd3().cholesky().expect("SPD");
        let b = Matrix::from_fn(3, 5, |r, c| (r as f64 + 1.0) * 0.3 - c as f64 * 0.7);
        let t = l.transpose_mul_columns(&b);
        for i in 0..3 {
            for j in 0..5 {
                let mut s = 0.0;
                for k in 0..3 {
                    s += l[(k, i)] * b[(k, j)];
                }
                assert!((t[(i, j)] - s).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cholesky_reconstructs_matrix() {
        let a = spd3();
        let l = a.cholesky().expect("SPD");
        for r in 0..3 {
            for c in 0..3 {
                let mut s = 0.0;
                for k in 0..3 {
                    s += l[(r, k)] * l[(c, k)];
                }
                assert!((s - a[(r, c)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_fn(2, 2, |r, c| if r == c { -1.0 } else { 0.0 });
        assert!(a.cholesky().is_none());
    }

    #[test]
    fn triangular_solves_invert_cholesky() {
        let a = spd3();
        let l = a.cholesky().unwrap();
        let b = vec![1.0, -2.0, 0.5];
        // Solve A x = b via L then L^T.
        let y = l.solve_lower(&b);
        let x = l.solve_lower_transpose(&y);
        let back = a.mul_vec(&x);
        for (bi, yi) in b.iter().zip(&back) {
            assert!((bi - yi).abs() < 1e-9);
        }
    }

    #[test]
    fn extend_lower_matches_direct_cholesky() {
        // Factorize the 3×3 leading block, extend with the last
        // row/column, and compare against factorizing all of 4×4 at once.
        let m = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f64 * 0.07 + 0.4);
        let a = Matrix::from_fn(4, 4, |r, c| {
            let mut s = if r == c { 2.0 } else { 0.0 };
            for k in 0..4 {
                s += m[(r, k)] * m[(c, k)];
            }
            s
        });
        let block = Matrix::from_fn(3, 3, |r, c| a[(r, c)]);
        let mut l = block.cholesky().expect("SPD block");
        let border: Vec<f64> = (0..3).map(|r| a[(r, 3)]).collect();
        let w = l.solve_lower(&border);
        let d2 = a[(3, 3)] - w.iter().map(|x| x * x).sum::<f64>();
        assert!(d2 > 0.0);
        l.extend_lower(&w, d2.sqrt());
        let full = a.cholesky().expect("SPD");
        for r in 0..4 {
            for c in 0..4 {
                assert!((l[(r, c)] - full[(r, c)]).abs() < 1e-10, "({r},{c})");
            }
        }
    }

    #[test]
    fn solve_lower_columns_matches_per_column_solve_bitwise() {
        let a = spd3();
        let l = a.cholesky().unwrap();
        // More columns than the internal block width is exercised by the
        // 40-column case below via a bigger factor.
        let b = Matrix::from_fn(3, 5, |r, c| (r as f64 + 1.0) * 0.3 - c as f64 * 0.7);
        let x = l.solve_lower_columns(&b);
        for c in 0..5 {
            let col: Vec<f64> = (0..3).map(|r| b[(r, c)]).collect();
            let expect = l.solve_lower(&col);
            for r in 0..3 {
                assert_eq!(x[(r, c)].to_bits(), expect[r].to_bits(), "({r},{c})");
            }
        }
        // A factor large enough to span multiple column blocks.
        let m = Matrix::from_fn(12, 12, |r, c| ((r * 13 + c * 7) % 11) as f64 * 0.09 + 0.2);
        let big = Matrix::from_fn(12, 12, |r, c| {
            let mut s = if r == c { 3.0 } else { 0.0 };
            for k in 0..12 {
                s += m[(r, k)] * m[(c, k)];
            }
            s
        });
        let l = big.cholesky().unwrap();
        let b = Matrix::from_fn(12, 40, |r, c| ((r * 5 + c * 3) % 17) as f64 * 0.21 - 1.0);
        let x = l.solve_lower_columns(&b);
        for c in 0..40 {
            let col: Vec<f64> = (0..12).map(|r| b[(r, c)]).collect();
            let expect = l.solve_lower(&col);
            for r in 0..12 {
                assert_eq!(x[(r, c)].to_bits(), expect[r].to_bits(), "({r},{c})");
            }
        }
    }

    /// SPD matrix `M Mᵀ + d·I` from a deterministic dense seed.
    fn spd(n: usize, d: f64) -> Matrix {
        let m = Matrix::from_fn(n, n, |r, c| ((r * 31 + c * 17) % 13) as f64 * 0.11 + 0.3);
        Matrix::from_fn(n, n, |r, c| {
            let mut s = if r == c { d } else { 0.0 };
            for k in 0..n {
                s += m[(r, k)] * m[(c, k)];
            }
            s
        })
    }

    #[test]
    fn rank1_update_matches_refactorization() {
        let a = spd(6, 2.0);
        let mut l = a.cholesky().expect("SPD");
        let v: Vec<f64> = (0..6).map(|i| (i as f64 * 0.7 - 1.3).sin()).collect();
        assert!(l.rank1_update_lower(&v));
        let updated = Matrix::from_fn(6, 6, |r, c| a[(r, c)] + v[r] * v[c]);
        let direct = updated.cholesky().expect("still SPD");
        for r in 0..6 {
            for c in 0..=r {
                assert!((l[(r, c)] - direct[(r, c)]).abs() < 1e-10, "({r},{c})");
            }
        }
    }

    #[test]
    fn delete_lower_first_matches_trailing_cholesky() {
        let a = spd(7, 1.5);
        let mut l = a.cholesky().expect("SPD");
        assert!(l.delete_lower_first());
        let trailing = Matrix::from_fn(6, 6, |r, c| a[(r + 1, c + 1)]);
        let direct = trailing.cholesky().expect("SPD");
        assert_eq!(l.rows(), 6);
        for r in 0..6 {
            for c in 0..=r {
                assert!((l[(r, c)] - direct[(r, c)]).abs() < 1e-10, "({r},{c})");
            }
        }
    }

    #[test]
    fn truncate_lower_inverts_extend_lower_bitwise() {
        let a = spd(5, 2.5);
        let l4 = Matrix::from_fn(4, 4, |r, c| a[(r, c)]).cholesky().expect("SPD block");
        let mut grown = l4.clone();
        let border: Vec<f64> = (0..4).map(|r| a[(r, 4)]).collect();
        let w = grown.solve_lower(&border);
        let d2 = a[(4, 4)] - w.iter().map(|x| x * x).sum::<f64>();
        grown.extend_lower(&w, d2.sqrt());
        grown.truncate_lower(4);
        assert_eq!(grown, l4, "truncation must restore the pre-extension factor exactly");
    }

    #[test]
    fn gram_and_transpose_mul_vec() {
        let a = Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f64 * 0.5 - 2.0);
        let g = a.gram();
        for i in 0..3 {
            for j in 0..3 {
                let mut s = 0.0;
                for r in 0..4 {
                    s += a[(r, i)] * a[(r, j)];
                }
                assert!((g[(i, j)] - s).abs() < 1e-12, "({i},{j})");
            }
        }
        let v = vec![1.0, -0.5, 2.0, 0.25];
        let got = a.transpose_mul_vec(&v);
        for (j, gj) in got.iter().enumerate() {
            let mut s = 0.0;
            for r in 0..4 {
                s += a[(r, j)] * v[r];
            }
            assert!((gj - s).abs() < 1e-12, "{j}");
        }
    }

    #[test]
    fn push_row_grows_matrix() {
        let mut m = Matrix::from_fn(2, 3, |r, c| (r + c) as f64);
        m.push_row(&[7.0, 8.0, 9.0]);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.row(2), &[7.0, 8.0, 9.0]);
        m.row_mut(0)[1] = -1.0;
        assert_eq!(m[(0, 1)], -1.0);
    }

    #[test]
    fn dot_and_sq_dist() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    fn indexing_round_trip() {
        let mut m = Matrix::zeros(2, 3);
        m[(1, 2)] = 7.0;
        assert_eq!(m[(1, 2)], 7.0);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
    }
}

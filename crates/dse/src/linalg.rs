//! Minimal dense linear algebra for Gaussian-process regression.
//!
//! Implements exactly what the GP needs: symmetric positive-definite
//! Cholesky factorization and triangular solves. Matrices are small (the
//! number of DSE evaluations, typically a few hundred), so a
//! straightforward `O(n^3)` implementation is appropriate.

/// A dense, row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Cholesky factorization `A = L L^T` of a symmetric positive-definite
    /// matrix, returning lower-triangular `L`.
    ///
    /// Returns `None` when the matrix is not (numerically) positive
    /// definite.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn cholesky(&self) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "cholesky requires a square matrix");
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return None;
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Some(l)
    }

    /// Solves `L x = b` for lower-triangular `L` (forward substitution).
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree.
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(self.rows, self.cols);
        assert_eq!(self.rows, b.len());
        let n = self.rows;
        let mut x = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self[(i, k)] * x[k];
            }
            x[i] = sum / self[(i, i)];
        }
        x
    }

    /// Solves `L^T x = b` for lower-triangular `L` (backward substitution
    /// on the transpose).
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree.
    pub fn solve_lower_transpose(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(self.rows, self.cols);
        assert_eq!(self.rows, b.len());
        let n = self.rows;
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = b[i];
            for k in (i + 1)..n {
                sum -= self[(k, i)] * x[k];
            }
            x[i] = sum / self[(i, i)];
        }
        x
    }

    /// Solves `L X = B` for lower-triangular `L` and a multi-column
    /// right-hand side `B` (`n×m`, one column per system), returning `X`
    /// with the same shape.
    ///
    /// Column `j` of the result is **bit-identical** to
    /// `self.solve_lower(column j of B)`: the per-element operation
    /// sequence (initialize from `B`, subtract `L[i][k]·X[k][j]` for
    /// ascending `k`, divide by the diagonal) is unchanged — only the
    /// loop nesting differs. Columns are processed in cache-sized blocks
    /// so the triangular factor streams through the cache once per block
    /// instead of once per column, which is where the batched GP
    /// predictor gets its throughput.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not square or `b.rows() != self.rows()`.
    pub fn solve_lower_columns(&self, b: &Matrix) -> Matrix {
        assert_eq!(self.rows, self.cols, "solve_lower_columns requires a square matrix");
        assert_eq!(self.rows, b.rows, "right-hand side has wrong row count");
        let n = self.rows;
        let m = b.cols;
        let mut x = Matrix::zeros(n, m);
        // Block width tuned so a block of X (n rows × BLOCK columns of
        // f64) stays resident while the factor streams past it.
        const BLOCK: usize = 32;
        let mut c0 = 0;
        while c0 < m {
            let c1 = (c0 + BLOCK).min(m);
            for i in 0..n {
                let (done, rest) = x.data.split_at_mut(i * m);
                let row_i = &mut rest[..m];
                row_i[c0..c1].copy_from_slice(&b.data[i * m + c0..i * m + c1]);
                for k in 0..i {
                    let lik = self.data[i * self.cols + k];
                    let row_k = &done[k * m..k * m + m];
                    for j in c0..c1 {
                        row_i[j] -= lik * row_k[j];
                    }
                }
                let lii = self.data[i * self.cols + i];
                for v in &mut row_i[c0..c1] {
                    *v /= lii;
                }
            }
            c0 = c1;
        }
        x
    }

    /// Grows a lower-triangular `n×n` matrix to `(n+1)×(n+1)` by
    /// appending `[row, diag]` as the last row (the entries above the new
    /// diagonal stay zero). This is the rank-1 Cholesky extension step:
    /// with `row = L⁻¹c` and `diag = sqrt(a − |row|²)`, the result
    /// factorizes the original matrix bordered by column `c` and corner
    /// `a` — in O(n) once the triangular solve for `row` is done.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `row.len() != self.rows()`.
    pub fn extend_lower(&mut self, row: &[f64], diag: f64) {
        assert_eq!(self.rows, self.cols, "extend_lower requires a square matrix");
        assert_eq!(self.rows, row.len(), "border row has wrong length");
        let n = self.rows;
        let mut data = Vec::with_capacity((n + 1) * (n + 1));
        for r in 0..n {
            data.extend_from_slice(&self.data[r * n..(r + 1) * n]);
            data.push(0.0);
        }
        data.extend_from_slice(row);
        data.push(diag);
        self.rows = n + 1;
        self.cols = n + 1;
        self.data = data;
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len());
        (0..self.rows).map(|r| (0..self.cols).map(|c| self[(r, c)] * v[c]).sum()).collect()
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Squared Euclidean distance between two equal-length slices.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = M M^T + I for a fixed M, guaranteed SPD.
        let m = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f64 * 0.1 + 1.0);
        Matrix::from_fn(3, 3, |r, c| {
            let mut s = if r == c { 1.0 } else { 0.0 };
            for k in 0..3 {
                s += m[(r, k)] * m[(c, k)];
            }
            s
        })
    }

    #[test]
    fn cholesky_reconstructs_matrix() {
        let a = spd3();
        let l = a.cholesky().expect("SPD");
        for r in 0..3 {
            for c in 0..3 {
                let mut s = 0.0;
                for k in 0..3 {
                    s += l[(r, k)] * l[(c, k)];
                }
                assert!((s - a[(r, c)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_fn(2, 2, |r, c| if r == c { -1.0 } else { 0.0 });
        assert!(a.cholesky().is_none());
    }

    #[test]
    fn triangular_solves_invert_cholesky() {
        let a = spd3();
        let l = a.cholesky().unwrap();
        let b = vec![1.0, -2.0, 0.5];
        // Solve A x = b via L then L^T.
        let y = l.solve_lower(&b);
        let x = l.solve_lower_transpose(&y);
        let back = a.mul_vec(&x);
        for (bi, yi) in b.iter().zip(&back) {
            assert!((bi - yi).abs() < 1e-9);
        }
    }

    #[test]
    fn extend_lower_matches_direct_cholesky() {
        // Factorize the 3×3 leading block, extend with the last
        // row/column, and compare against factorizing all of 4×4 at once.
        let m = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f64 * 0.07 + 0.4);
        let a = Matrix::from_fn(4, 4, |r, c| {
            let mut s = if r == c { 2.0 } else { 0.0 };
            for k in 0..4 {
                s += m[(r, k)] * m[(c, k)];
            }
            s
        });
        let block = Matrix::from_fn(3, 3, |r, c| a[(r, c)]);
        let mut l = block.cholesky().expect("SPD block");
        let border: Vec<f64> = (0..3).map(|r| a[(r, 3)]).collect();
        let w = l.solve_lower(&border);
        let d2 = a[(3, 3)] - w.iter().map(|x| x * x).sum::<f64>();
        assert!(d2 > 0.0);
        l.extend_lower(&w, d2.sqrt());
        let full = a.cholesky().expect("SPD");
        for r in 0..4 {
            for c in 0..4 {
                assert!((l[(r, c)] - full[(r, c)]).abs() < 1e-10, "({r},{c})");
            }
        }
    }

    #[test]
    fn solve_lower_columns_matches_per_column_solve_bitwise() {
        let a = spd3();
        let l = a.cholesky().unwrap();
        // More columns than the internal block width is exercised by the
        // 40-column case below via a bigger factor.
        let b = Matrix::from_fn(3, 5, |r, c| (r as f64 + 1.0) * 0.3 - c as f64 * 0.7);
        let x = l.solve_lower_columns(&b);
        for c in 0..5 {
            let col: Vec<f64> = (0..3).map(|r| b[(r, c)]).collect();
            let expect = l.solve_lower(&col);
            for r in 0..3 {
                assert_eq!(x[(r, c)].to_bits(), expect[r].to_bits(), "({r},{c})");
            }
        }
        // A factor large enough to span multiple column blocks.
        let m = Matrix::from_fn(12, 12, |r, c| ((r * 13 + c * 7) % 11) as f64 * 0.09 + 0.2);
        let big = Matrix::from_fn(12, 12, |r, c| {
            let mut s = if r == c { 3.0 } else { 0.0 };
            for k in 0..12 {
                s += m[(r, k)] * m[(c, k)];
            }
            s
        });
        let l = big.cholesky().unwrap();
        let b = Matrix::from_fn(12, 40, |r, c| ((r * 5 + c * 3) % 17) as f64 * 0.21 - 1.0);
        let x = l.solve_lower_columns(&b);
        for c in 0..40 {
            let col: Vec<f64> = (0..12).map(|r| b[(r, c)]).collect();
            let expect = l.solve_lower(&col);
            for r in 0..12 {
                assert_eq!(x[(r, c)].to_bits(), expect[r].to_bits(), "({r},{c})");
            }
        }
    }

    #[test]
    fn dot_and_sq_dist() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    fn indexing_round_trip() {
        let mut m = Matrix::zeros(2, 3);
        m[(1, 2)] = 7.0;
        assert_eq!(m[(1, 2)], 7.0);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
    }
}

//! Multi-objective Bayesian optimization with the SMS-EGO acquisition.

use autopilot_obs as obs;
use autopilot_rng::Rng;
use std::collections::{HashMap, HashSet};

use crate::control::RunControl;
use crate::error::{DseError, EvalError};
use crate::evaluator::{Evaluator, MultiObjectiveOptimizer};
use crate::fastexp::KernelExpMode;
use crate::gp::{DistanceCache, GaussianProcess, SparseGaussianProcess, SurrogateMode};
use crate::linalg::Matrix;
use crate::par;
use crate::pareto::{ContributionScorer, IncrementalFront};
use crate::result::{EvaluationRecord, OptimizationResult};
use crate::space::DesignSpace;

/// S-Metric-Selection Efficient Global Optimization (Ponweiser et al.,
/// PPSN 2008), the acquisition strategy AutoPilot uses in Phase 2.
///
/// One Gaussian process is fitted per objective; candidates are scored by
/// the *hypervolume improvement* of their lower-confidence-bound vector
/// against the current archive front, with an additive penalty for
/// candidates whose LCB is already (epsilon-)dominated.
///
/// The inner loop is engineered to stay cheap at paper-scale budgets:
/// the per-objective GPs grow by rank-1 Cholesky extension (O(n²) per
/// new observation) between milestone full refits of the lengthscale,
/// range moves of the normalization *retarget* the existing
/// factorization instead of refitting, window slides *downdate* it one
/// oldest point at a time, objective ranges are running min/max rather
/// than per-iteration rescans, candidate scores reuse a per-iteration
/// [`ContributionScorer`] (no full-front rescan per candidate), and
/// both the initial sampling and the acquisition scoring fan out over
/// worker threads with results gathered in index order — so a run is
/// bit-identical for a fixed seed regardless of thread count.
///
/// Past the archive size set by [`SurrogateMode`] (default threshold
/// 256, overridable via the `AUTOPILOT_GP_SPARSE` env variable), the
/// per-objective surrogates switch from exact GPs to low-rank sparse
/// ones over the *full* archive, keeping large-budget runs
/// (paper-style budget-2000 fleet sweeps) out of O(n³) territory.
#[derive(Debug, Clone)]
pub struct SmsEgoOptimizer {
    seed: u64,
    init_samples: usize,
    candidate_pool: usize,
    beta: f64,
    max_gp_points: usize,
    surrogate: SurrogateMode,
    exp_mode: KernelExpMode,
    seed_points: Vec<Vec<usize>>,
    threads: Option<usize>,
}

impl SmsEgoOptimizer {
    /// Creates an optimizer with the published default settings.
    pub fn new(seed: u64) -> SmsEgoOptimizer {
        SmsEgoOptimizer {
            seed,
            init_samples: 16,
            candidate_pool: 256,
            beta: 1.0,
            max_gp_points: 256,
            surrogate: SurrogateMode::from_env(),
            exp_mode: KernelExpMode::from_env(),
            seed_points: Vec::new(),
            threads: None,
        }
    }

    /// Overrides the surrogate engagement policy (default: read from the
    /// `AUTOPILOT_GP_SPARSE` env variable, falling back to sparse past
    /// 256 archived points).
    pub fn with_surrogate_mode(mut self, mode: SurrogateMode) -> SmsEgoOptimizer {
        self.surrogate = mode;
        self
    }

    /// Overrides the kernel exponential mode (default: read from the
    /// `AUTOPILOT_GP_FASTEXP` env variable, falling back to the
    /// bit-exact [`KernelExpMode::Exact`]).
    pub fn with_exp_mode(mut self, mode: KernelExpMode) -> SmsEgoOptimizer {
        self.exp_mode = mode;
        self
    }

    /// Overrides the exact-GP sliding-window size (the most recent `n`
    /// archive points train the surrogates while the exact path is
    /// active).
    pub fn with_max_gp_points(mut self, n: usize) -> SmsEgoOptimizer {
        self.max_gp_points = n.max(8);
        self
    }

    /// Adds domain-informed points evaluated before the random
    /// initialization (they count toward the budget). The paper seeds its
    /// search "to explore regions that quickly give us desired results".
    pub fn with_seed_points(mut self, points: Vec<Vec<usize>>) -> SmsEgoOptimizer {
        self.seed_points = points;
        self
    }

    /// Overrides the number of random initial samples.
    pub fn with_init_samples(mut self, n: usize) -> SmsEgoOptimizer {
        self.init_samples = n.max(2);
        self
    }

    /// Overrides the per-iteration candidate pool size.
    pub fn with_candidate_pool(mut self, n: usize) -> SmsEgoOptimizer {
        self.candidate_pool = n.max(8);
        self
    }

    /// Overrides the LCB exploration factor.
    pub fn with_beta(mut self, beta: f64) -> SmsEgoOptimizer {
        self.beta = beta.max(0.0);
        self
    }

    /// Pins the worker count for parallel evaluation and acquisition
    /// scoring (default: [`par::worker_count`]).
    pub fn with_threads(mut self, n: usize) -> SmsEgoOptimizer {
        self.threads = Some(n.max(1));
        self
    }

    fn workers(&self) -> usize {
        self.threads.unwrap_or_else(par::worker_count)
    }
}

/// Evaluation archive with running objective ranges (incremental min/max
/// instead of a full history rescan every BO iteration).
struct Archive {
    history: Vec<EvaluationRecord>,
    seen: HashSet<Vec<usize>>,
    mins: Vec<f64>,
    maxs: Vec<f64>,
}

impl Archive {
    fn new(n_obj: usize, budget: usize) -> Archive {
        Archive {
            history: Vec::with_capacity(budget),
            seen: HashSet::new(),
            mins: vec![f64::INFINITY; n_obj],
            maxs: vec![f64::NEG_INFINITY; n_obj],
        }
    }

    fn len(&self) -> usize {
        self.history.len()
    }

    fn commit(&mut self, point: Vec<usize>, objectives: Vec<f64>) {
        for (i, &v) in objectives.iter().enumerate() {
            self.mins[i] = self.mins[i].min(v);
            self.maxs[i] = self.maxs[i].max(v);
        }
        self.seen.insert(point.clone());
        self.history.push(EvaluationRecord { iteration: self.history.len(), point, objectives });
    }
}

/// Number of candidates scored per batched GP prediction: one kernel
/// cross-matrix (shared across the objective GPs) and one blocked
/// triangular solve per chunk, with chunks fanned out across workers.
const ACQ_CHUNK: usize = 64;

/// Acquisition bookkeeping reused across BO iterations instead of being
/// rebuilt from the full history every time a candidate pool is scored.
///
/// The raw-objective Pareto front only ever *extends* (raw objective
/// values never change once evaluated), so it is maintained purely
/// incrementally. The normalized front depends on the archive's running
/// objective ranges: while the ranges hold still it extends
/// incrementally too, and only a range-moving evaluation triggers a
/// renormalizing rebuild. Both fronts reproduce `pareto_indices` over
/// the corresponding point sequence exactly (see
/// [`IncrementalFront`]'s equivalence contract), so acquisition scores
/// are bit-identical to the full-rescan implementation.
struct AcquisitionState {
    raw_front: IncrementalFront,
    norm_front: IncrementalFront,
    norm_mins: Vec<f64>,
    norm_maxs: Vec<f64>,
    synced: usize,
    /// Memoized kernel columns against the sparse pack's inducing set,
    /// keyed by ordinal candidate. A column's bits depend only on
    /// (inducing set, lengthscale, exp mode, candidate) — all frozen
    /// between sparse refits — so hits replay recomputation exactly
    /// while skipping the kernel panel (and the candidate encode)
    /// entirely. Cleared whenever [`Surrogates::fit_generation`] moves.
    panel_cache: HashMap<Vec<usize>, Vec<f64>>,
    /// The [`Surrogates::fit_generation`] the cache was filled under.
    panel_cache_generation: u64,
}

/// Entry cap for [`AcquisitionState::panel_cache`]; the steady-state
/// working set (front neighbours plus recent randoms) refills within an
/// iteration or two of a clear.
const PANEL_CACHE_CAP: usize = 65_536;

impl AcquisitionState {
    fn new(n_obj: usize) -> AcquisitionState {
        AcquisitionState {
            raw_front: IncrementalFront::new(),
            norm_front: IncrementalFront::new(),
            norm_mins: vec![f64::INFINITY; n_obj],
            norm_maxs: vec![f64::NEG_INFINITY; n_obj],
            synced: 0,
            panel_cache: HashMap::new(),
            panel_cache_generation: 0,
        }
    }

    /// Brings both fronts up to date with the archive.
    fn sync(&mut self, archive: &Archive) {
        let normalized = |rec: &EvaluationRecord| -> Vec<f64> {
            rec.objectives
                .iter()
                .enumerate()
                .map(|(i, &v)| normalize(v, archive.mins[i], archive.maxs[i]))
                .collect()
        };
        for rec in &archive.history[self.synced..] {
            self.raw_front.push(rec.iteration, rec.objectives.clone());
        }
        if self.norm_mins == archive.mins && self.norm_maxs == archive.maxs {
            for rec in &archive.history[self.synced..] {
                self.norm_front.push(rec.iteration, normalized(rec));
            }
            obs::add("bo.front.extend", (archive.len() - self.synced) as u64);
        } else {
            self.norm_front.clear();
            for rec in &archive.history {
                self.norm_front.push(rec.iteration, normalized(rec));
            }
            self.norm_mins = archive.mins.clone();
            self.norm_maxs = archive.maxs.clone();
            obs::add("bo.front.rebuild", 1);
        }
        self.synced = archive.len();
    }
}

/// The per-objective surrogate ensemble, exact or sparse. All members
/// always share training inputs, lengthscale, and (for the sparse kind)
/// inducing set, which is what lets one kernel cross-matrix serve the
/// whole pack during acquisition scoring.
enum SurrogatePack {
    Exact(Vec<GaussianProcess>),
    Sparse(Vec<SparseGaussianProcess>),
}

impl SurrogatePack {
    fn is_sparse(&self) -> bool {
        matches!(self, SurrogatePack::Sparse(_))
    }

    fn n_obj(&self) -> usize {
        match self {
            SurrogatePack::Exact(gps) => gps.len(),
            SurrogatePack::Sparse(gps) => gps.len(),
        }
    }

    /// Appends one observation to every member. A partial failure leaves
    /// the pack inconsistent; the caller must fall back to a full refit
    /// in that case.
    fn extend_all(&mut self, x: &[f64], ys: &[f64]) -> bool {
        match self {
            SurrogatePack::Exact(gps) => gps.iter_mut().zip(ys).all(|(gp, &y)| gp.extend(x, y)),
            SurrogatePack::Sparse(gps) => gps.iter_mut().zip(ys).all(|(gp, &y)| gp.extend(x, y)),
        }
    }

    /// Replaces every member's training targets in place (same
    /// inconsistency caveat as [`SurrogatePack::extend_all`]).
    fn retarget_all(&mut self, ys: &[Vec<f64>]) -> bool {
        match self {
            SurrogatePack::Exact(gps) => gps.iter_mut().zip(ys).all(|(gp, y)| gp.retarget(y)),
            SurrogatePack::Sparse(gps) => gps.iter_mut().zip(ys).all(|(gp, y)| gp.retarget(y)),
        }
    }

    /// Downdates every member past its oldest training point. Only the
    /// exact kind supports this (the sparse kind trains on the full
    /// archive and never slides).
    fn drop_oldest_all(&mut self) -> bool {
        match self {
            SurrogatePack::Exact(gps) => gps.iter_mut().all(GaussianProcess::drop_oldest),
            SurrogatePack::Sparse(_) => false,
        }
    }
}

/// Per-objective GP surrogates kept current incrementally.
///
/// Training targets are objectives normalized by the archive ranges.
/// Between milestone refits the lengthscale (and noise) is frozen, which
/// is what makes every incremental pathway exact linear algebra rather
/// than approximation:
///
/// * new observations are rank-1 Cholesky *extensions* (O(n²) exact,
///   O(m²) sparse),
/// * archive range moves are *retargets* — new normalized targets are
///   re-solved against the existing factorization (O(n²) / O(n·m))
///   instead of refitting,
/// * training-window slides are rank-1 Cholesky *downdates* of the
///   oldest point (exact kind only; the sparse kind trains on the full
///   archive).
///
/// Any failed incremental step falls back to a full refit, and the
/// milestone schedule still refreshes the lengthscale every
/// `max(n/4, 4)` points.
struct Surrogates {
    pack: SurrogatePack,
    start: usize,
    trained: usize,
    next_refit: usize,
    norm_mins: Vec<f64>,
    norm_maxs: Vec<f64>,
    /// Bumped on every full refit — the only event that can change the
    /// pack's training rows, inducing set, or lengthscale wholesale.
    /// Incremental reuse (extend/retarget/downdate) keeps the
    /// generation, which is what lets the acquisition side's kernel
    /// panel cache survive across iterations.
    fit_generation: u64,
}

impl Surrogates {
    /// Brings the surrogates up to date with the archive, incrementally
    /// when valid and refitting otherwise. Returns `None` when the
    /// window cannot be fitted (degenerate geometry); the caller then
    /// falls back to random sampling for this iteration.
    fn update(
        current: Option<Surrogates>,
        space: &DesignSpace,
        archive: &Archive,
        max_gp_points: usize,
        mode: SurrogateMode,
        exp_mode: KernelExpMode,
    ) -> Option<Surrogates> {
        let n = archive.len();
        let sparse_inducing = match mode {
            SurrogateMode::Sparse { threshold, inducing } if n > threshold => Some(inducing),
            _ => None,
        };
        // The sparse surrogate is low-rank in the inducing set, so it
        // affords the full archive; the exact kind slides a window.
        let start = if sparse_inducing.is_some() { 0 } else { n.saturating_sub(max_gp_points) };
        let next_generation = current.as_ref().map_or(1, |s| s.fit_generation + 1);
        if let Some(mut s) = current {
            let compatible = s.pack.is_sparse() == sparse_inducing.is_some()
                && s.start <= start
                && n < s.next_refit;
            if compatible {
                if s.reuse(space, archive, start) {
                    return Some(s);
                }
                obs::add("dse.gp.extend_fallback", 1);
            }
        }
        obs::add("dse.gp.full_refit", 1);
        Surrogates::full_fit(space, archive, start, sparse_inducing, exp_mode, next_generation)
    }

    /// Brings an existing pack current without refitting: retarget on
    /// range moves, slide the window by downdates, extend new points.
    fn reuse(&mut self, space: &DesignSpace, archive: &Archive, start: usize) -> bool {
        if (self.norm_mins != archive.mins || self.norm_maxs != archive.maxs)
            && !self.retarget(archive)
        {
            return false;
        }
        while self.start < start {
            if !self.pack.drop_oldest_all() {
                return false;
            }
            self.start += 1;
            obs::add("bo.gp.downdate", 1);
        }
        self.try_extend(space, archive)
    }

    /// Renormalizes the training targets of the records already inside
    /// the pack against the archive's moved ranges, reusing the
    /// factorization. Pairs with the acquisition side's
    /// `bo.front.rebuild`: a range move now costs two triangular solves
    /// per objective instead of a full refit.
    fn retarget(&mut self, archive: &Archive) -> bool {
        let window = &archive.history[self.start..self.trained];
        let n_obj = archive.mins.len();
        let ys: Vec<Vec<f64>> = (0..n_obj)
            .map(|obj| {
                window
                    .iter()
                    .map(|e| normalize(e.objectives[obj], archive.mins[obj], archive.maxs[obj]))
                    .collect()
            })
            .collect();
        if !self.pack.retarget_all(&ys) {
            return false;
        }
        self.norm_mins = archive.mins.clone();
        self.norm_maxs = archive.maxs.clone();
        obs::add("bo.gp.retarget", 1);
        true
    }

    fn try_extend(&mut self, space: &DesignSpace, archive: &Archive) -> bool {
        let counter =
            if self.pack.is_sparse() { "bo.gp.sparse.extend" } else { "dse.gp.rank1_extend" };
        for rec in &archive.history[self.trained..] {
            let x = space.encode(&rec.point);
            let ys: Vec<f64> = rec
                .objectives
                .iter()
                .enumerate()
                .map(|(obj, &v)| normalize(v, self.norm_mins[obj], self.norm_maxs[obj]))
                .collect();
            if !self.pack.extend_all(&x, &ys) {
                return false;
            }
            obs::add(counter, 1);
        }
        self.trained = archive.len();
        true
    }

    fn full_fit(
        space: &DesignSpace,
        archive: &Archive,
        start: usize,
        sparse_inducing: Option<usize>,
        exp_mode: KernelExpMode,
        fit_generation: u64,
    ) -> Option<Surrogates> {
        let n = archive.len();
        let train = &archive.history[start..];
        let xs: Vec<Vec<f64>> = train.iter().map(|e| space.encode(&e.point)).collect();
        let mut dists = DistanceCache::new();
        for x in &xs {
            dists.push(x.clone());
        }
        let lengthscale_sq = dists.median_sq_dist();
        let n_obj = archive.mins.len();
        let targets = |obj: usize| -> Vec<f64> {
            train
                .iter()
                .map(|e| normalize(e.objectives[obj], archive.mins[obj], archive.maxs[obj]))
                .collect()
        };
        // A degenerate fit (duplicate geometry, singular kernel) is
        // non-fatal here: the caller falls back to random sampling for
        // this iteration rather than aborting the run.
        let pack = if let Some(m) = sparse_inducing {
            let mut gps = Vec::with_capacity(n_obj);
            for obj in 0..n_obj {
                gps.push(
                    SparseGaussianProcess::fit_with_lengthscale_mode(
                        &xs,
                        &targets(obj),
                        lengthscale_sq,
                        m,
                        exp_mode,
                    )
                    .ok()?,
                );
            }
            obs::add("bo.gp.sparse.fit", 1);
            obs::gauge_set("bo.gp.sparse.inducing", gps[0].inducing_count() as f64);
            SurrogatePack::Sparse(gps)
        } else {
            let mut gps = Vec::with_capacity(n_obj);
            for obj in 0..n_obj {
                gps.push(
                    GaussianProcess::fit_with_lengthscale_mode(
                        &xs,
                        &targets(obj),
                        lengthscale_sq,
                        exp_mode,
                    )
                    .ok()?,
                );
            }
            SurrogatePack::Exact(gps)
        };
        Some(Surrogates {
            pack,
            start,
            trained: n,
            // Milestone schedule: refreshing the lengthscale every
            // max(n/4, 4) points amortizes the O(n³) refit to O(n²)
            // per iteration.
            next_refit: n + (n / 4).max(4),
            norm_mins: archive.mins.clone(),
            norm_maxs: archive.maxs.clone(),
            fit_generation,
        })
    }
}

impl MultiObjectiveOptimizer for SmsEgoOptimizer {
    fn name(&self) -> &str {
        "sms-ego-bo"
    }

    fn run_controlled(
        &mut self,
        space: &DesignSpace,
        evaluator: &dyn Evaluator,
        budget: usize,
        control: &RunControl,
    ) -> Result<OptimizationResult, DseError> {
        let _span = obs::span("sms_ego.run");
        control.check()?;
        let mut rng = Rng::seed_from_u64(self.seed);
        let n_obj = evaluator.num_objectives();
        let workers = self.workers();
        let mut archive = Archive::new(n_obj, budget);

        // Domain-informed seed points, then the space-filling random
        // sample. Both phases draw their points first (the sequence never
        // depends on objective values) and evaluate each batch in
        // parallel, committing in draw order.
        let mut planned: Vec<Vec<usize>> = Vec::new();
        for p in &self.seed_points {
            if archive.len() + planned.len() >= budget {
                break;
            }
            if space.contains(p) && !archive.seen.contains(p) && !planned.contains(p) {
                planned.push(p.clone());
            }
        }
        for p in &planned {
            archive.seen.insert(p.clone());
        }
        let init_target = self.init_samples.min(budget);
        let mut retries = 0;
        while archive.len() + planned.len() < init_target && retries < budget * 20 + 100 {
            let p = space.random_point(&mut rng);
            if archive.seen.contains(&p) {
                retries += 1;
                continue;
            }
            archive.seen.insert(p.clone());
            planned.push(p);
        }
        control.check()?;
        let objectives: Vec<Result<Vec<f64>, EvalError>> =
            par::parallel_map_with(workers, &planned, |_, p| evaluator.evaluate(p));
        for (p, o) in planned.into_iter().zip(objectives) {
            archive.commit(p, o?);
        }

        // BO loop: one evaluation per iteration, surrogates and Pareto
        // fronts kept current incrementally.
        let mut surrogates: Option<Surrogates> = None;
        let mut acquisition = AcquisitionState::new(n_obj);
        while archive.len() < budget {
            control.check()?;
            control.checkpoint(archive.len(), acquisition.raw_front.indices().len());
            let _iter = obs::span("bo.iteration");
            surrogates = obs::time("bo.surrogate_update", || {
                Surrogates::update(
                    surrogates.take(),
                    space,
                    &archive,
                    self.max_gp_points,
                    self.surrogate,
                    self.exp_mode,
                )
            });
            let next = match &surrogates {
                Some(s) => obs::time("bo.acquisition", || {
                    self.select_candidate(space, &archive, s, &mut acquisition, workers, &mut rng)
                }),
                None => None,
            };
            let p = match next {
                Some(p) => p,
                None => {
                    // Fallback: fresh random point.
                    match fresh_random(space, &archive.seen, &mut rng, 200) {
                        Some(p) => p,
                        None => break, // space exhausted
                    }
                }
            };
            let objectives = evaluator.evaluate(&p)?;
            archive.commit(p, objectives);
        }

        Ok(OptimizationResult::from_history(
            self.name(),
            archive.history,
            evaluator.reference_point(),
        ))
    }
}

impl SmsEgoOptimizer {
    fn select_candidate(
        &self,
        space: &DesignSpace,
        archive: &Archive,
        surrogates: &Surrogates,
        acquisition: &mut AcquisitionState,
        workers: usize,
        rng: &mut Rng,
    ) -> Option<Vec<usize>> {
        // Fronts maintained across iterations: only the points committed
        // since the last call are pushed (plus a renormalizing rebuild
        // when the archive ranges moved).
        obs::time("bo.acquisition.front_sync", || acquisition.sync(archive));
        let front = acquisition.norm_front.points();
        obs::gauge_set("bo.front.size", front.len() as f64);
        let reference = vec![1.2; surrogates.pack.n_obj()];
        // One scorer per iteration: the front is frozen during scoring,
        // so its obj-0 index and incremental-staircase machinery are
        // shared read-only across every chunk below.
        let scorer = ContributionScorer::new(front, &reference);

        // Candidate pool: random points plus ordinal neighbours of the
        // Pareto-set designs (local refinement). Drawn sequentially so the
        // RNG stream is independent of the parallel scoring below.
        let mut pool: Vec<Vec<usize>> = Vec::with_capacity(self.candidate_pool + 64);
        for _ in 0..self.candidate_pool {
            pool.push(space.random_point(rng));
        }
        for &i in acquisition.raw_front.indices().iter().take(16) {
            pool.extend(space.neighbors(&archive.history[i].point));
        }
        // Drop already-evaluated candidates and intra-pool duplicates
        // before any GP work: a seen candidate's score is structurally
        // `None`, and an identical candidate scores identically, so
        // under first-max-wins neither can change the selection — the
        // pool just stops paying kernel and triangular work for
        // candidates that cannot win. (The RNG draws above are
        // untouched; only the scored set shrinks.)
        let mut distinct: HashSet<Vec<usize>> = HashSet::with_capacity(pool.len());
        pool.retain(|cand| !archive.seen.contains(cand) && distinct.insert(cand.clone()));
        drop(distinct);
        obs::observe("bo.acquisition.pool_size", pool.len() as f64);

        // Sparse pack: resolve the whole pool's kernel columns up front
        // through the per-generation panel cache — recurring candidates
        // (front neighbours, intra-pool duplicates) skip both the
        // encode and the kernel panel, and the panel over the remaining
        // misses runs once pool-wide (column-striped across workers)
        // instead of once per chunk. Charged to the same score /
        // gp_predict spans the per-chunk panel used to live in, so the
        // budget-gate ratio sees real savings only.
        let sparse_corr: Option<Vec<Matrix>> = match &surrogates.pack {
            SurrogatePack::Sparse(gps) => obs::time("bo.acquisition.score", || {
                obs::time("bo.acquisition.gp_predict", || {
                    Some(cached_chunk_correlations(
                        &gps[0],
                        space,
                        &pool,
                        surrogates.fit_generation,
                        &mut acquisition.panel_cache,
                        &mut acquisition.panel_cache_generation,
                    ))
                })
            }),
            SurrogatePack::Exact(_) => None,
        };

        // Score the pool in parallel, a chunk of candidates at a time;
        // each score is a pure function of the frozen surrogates and
        // front. Within a chunk the kernel cross-matrix is computed once
        // — the objective GPs share training inputs and lengthscale — and
        // every GP answers the whole chunk through one blocked triangular
        // solve, bit-identical to the scalar per-candidate path.
        let chunks: Vec<(usize, &[Vec<usize>])> = pool.chunks(ACQ_CHUNK).enumerate().collect();
        obs::add("bo.acquisition.batches", chunks.len() as u64);
        let scores: Vec<Vec<Option<f64>>> = obs::time("bo.acquisition.score", || {
            par::parallel_map_with(workers, &chunks, |_, &(ci, chunk)| {
                obs::observe("bo.acquisition.batch_size", chunk.len() as f64);
                let preds: Vec<Vec<(f64, f64)>> =
                    obs::time("bo.acquisition.gp_predict", || match &surrogates.pack {
                        SurrogatePack::Exact(gps) => {
                            let xs: Vec<Vec<f64>> =
                                chunk.iter().map(|cand| space.encode(cand)).collect();
                            let corr = gps[0].cross_correlations(&xs);
                            gps.iter().map(|gp| gp.predict_batch_from_correlations(&corr)).collect()
                        }
                        SurrogatePack::Sparse(gps) => {
                            obs::add("bo.gp.sparse.predict", 1);
                            let fallback;
                            let corr = match &sparse_corr {
                                Some(corrs) => &corrs[ci],
                                // Unreachable in practice — the
                                // pool-wide resolve above always runs
                                // for a sparse pack — but recomputing
                                // keeps this arm self-sufficient.
                                None => {
                                    let xs: Vec<Vec<f64>> =
                                        chunk.iter().map(|cand| space.encode(cand)).collect();
                                    fallback = gps[0].cross_correlations(&xs);
                                    &fallback
                                }
                            };
                            gps.iter().map(|gp| gp.predict_batch_from_correlations(corr)).collect()
                        }
                    });
                // Buffers reused across the whole chunk: steady-state
                // scoring allocates nothing per candidate.
                let mut scratch = scorer.scratch();
                let mut lcb = vec![0.0; preds.len()];
                let scores: Vec<Option<f64>> = obs::time("bo.acquisition.hv_score", || {
                    chunk
                        .iter()
                        .enumerate()
                        .map(|(k, cand)| {
                            if archive.seen.contains(cand) {
                                return None;
                            }
                            for (slot, p) in lcb.iter_mut().zip(&preds) {
                                let (m, v) = p[k];
                                *slot = m - self.beta * v.sqrt();
                            }
                            // SMS-EGO scoring: epsilon-dominated candidates
                            // get a negative penalty proportional to how deep
                            // they are dominated; otherwise score by
                            // hypervolume improvement (the exclusive
                            // contribution of the LCB vector to the front).
                            Some(scorer.score_with(&mut scratch, &lcb, 1e-3))
                        })
                        .collect()
                });
                obs::add("bo.hv.incremental", scores.iter().filter(|s| s.is_some()).count() as u64);
                scores
            })
        });

        // First-max-wins over the pool, in pool order.
        let mut best: Option<(f64, usize)> = None;
        for (i, score) in scores.into_iter().flatten().enumerate() {
            let Some(score) = score else { continue };
            match &best {
                Some((s, _)) if *s >= score => {}
                _ => best = Some((score, i)),
            }
        }
        best.map(|(_, i)| pool.swap_remove(i))
    }
}

/// Resolves the pool's inducing-correlation columns through the
/// per-generation panel cache and assembles one `m × chunk` matrix per
/// [`ACQ_CHUNK`] chunk, each bit-identical to
/// `gp.cross_correlations(&encoded_chunk)`.
///
/// A cached column is exact, not approximate: its bits depend only on
/// the inducing set, lengthscale, and exp mode (all frozen for a fit
/// generation) and the candidate itself, and kernel-panel entries are
/// independent of how the panel is partitioned. Only the pool's unseen
/// candidates are encoded and pushed through the kernel panel — one
/// pool-wide call, column-striped across workers — so recurring front
/// neighbours and intra-pool duplicates cost a column copy instead of
/// `m` kernel evaluations.
fn cached_chunk_correlations(
    gp: &SparseGaussianProcess,
    space: &DesignSpace,
    pool: &[Vec<usize>],
    fit_generation: u64,
    cache: &mut HashMap<Vec<usize>, Vec<f64>>,
    cache_generation: &mut u64,
) -> Vec<Matrix> {
    if *cache_generation != fit_generation || cache.len() > PANEL_CACHE_CAP {
        cache.clear();
        *cache_generation = fit_generation;
    }
    let m = gp.inducing_count();
    // First pass: queue each distinct uncached candidate once. The
    // placeholder insert is what dedups repeats within the same pool.
    let mut misses: Vec<Vec<usize>> = Vec::new();
    for cand in pool {
        if !cache.contains_key(cand) {
            cache.insert(cand.clone(), Vec::new());
            misses.push(cand.clone());
        }
    }
    obs::add("bo.gp.panel.cache_miss", misses.len() as u64);
    obs::add("bo.gp.panel.cache_hit", (pool.len() - misses.len()) as u64);
    if !misses.is_empty() {
        let miss_xs: Vec<Vec<f64>> = misses.iter().map(|cand| space.encode(cand)).collect();
        let panel = gp.cross_correlations(&miss_xs);
        for (j, key) in misses.iter().enumerate() {
            if let Some(slot) = cache.get_mut(key) {
                slot.extend((0..m).map(|i| panel[(i, j)]));
            }
        }
    }
    pool.chunks(ACQ_CHUNK)
        .map(|chunk| {
            let mut corr = Matrix::zeros(m, chunk.len());
            for (j, cand) in chunk.iter().enumerate() {
                if let Some(col) = cache.get(cand) {
                    for (i, &v) in col.iter().enumerate() {
                        corr[(i, j)] = v;
                    }
                }
            }
            corr
        })
        .collect()
}

fn normalize(v: f64, min: f64, max: f64) -> f64 {
    if max > min {
        (v - min) / (max - min)
    } else {
        0.5
    }
}

fn fresh_random(
    space: &DesignSpace,
    seen: &HashSet<Vec<usize>>,
    rng: &mut Rng,
    retries: usize,
) -> Option<Vec<usize>> {
    for _ in 0..retries {
        let p = space.random_point(rng);
        if !seen.contains(&p) {
            return Some(p);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::test_problems::{Bowl3, Tradeoff};
    use crate::random::RandomSearch;

    #[test]
    fn respects_budget_without_duplicates() {
        let space = DesignSpace::new(vec![32]).unwrap();
        let mut bo = SmsEgoOptimizer::new(3).with_init_samples(6).with_candidate_pool(32);
        let res = bo.run(&space, &Tradeoff, 20).unwrap();
        assert!(res.evaluation_count() <= 20);
        let mut pts: Vec<_> = res.evaluations.iter().map(|e| e.point.clone()).collect();
        pts.sort();
        pts.dedup();
        assert_eq!(pts.len(), res.evaluation_count());
    }

    #[test]
    fn deterministic_given_seed() {
        let space = DesignSpace::new(vec![8, 8, 8]).unwrap();
        let mut a = SmsEgoOptimizer::new(5).with_init_samples(8).with_candidate_pool(32);
        let mut b = SmsEgoOptimizer::new(5).with_init_samples(8).with_candidate_pool(32);
        assert_eq!(a.run(&space, &Bowl3, 24).unwrap(), b.run(&space, &Bowl3, 24).unwrap());
    }

    #[test]
    fn identical_across_thread_counts() {
        let space = DesignSpace::new(vec![8, 8, 8]).unwrap();
        let base = SmsEgoOptimizer::new(6)
            .with_init_samples(8)
            .with_candidate_pool(32)
            .with_threads(1)
            .run(&space, &Bowl3, 20)
            .unwrap();
        for t in [2, 3, 5] {
            let r = SmsEgoOptimizer::new(6)
                .with_init_samples(8)
                .with_candidate_pool(32)
                .with_threads(t)
                .run(&space, &Bowl3, 20)
                .unwrap();
            assert_eq!(base, r, "threads = {t}");
        }
    }

    #[test]
    fn beats_random_search_on_bowl() {
        // With equal budgets, BO should reach at least the hypervolume of
        // random search on a smooth problem (averaged over seeds).
        let space = DesignSpace::new(vec![8, 8, 8]).unwrap();
        let budget = 40;
        let mut bo_total = 0.0;
        let mut rs_total = 0.0;
        for seed in 0..3 {
            let mut bo = SmsEgoOptimizer::new(seed).with_init_samples(10).with_candidate_pool(64);
            bo_total += bo.run(&space, &Bowl3, budget).unwrap().final_hypervolume();
            rs_total +=
                RandomSearch::new(seed).run(&space, &Bowl3, budget).unwrap().final_hypervolume();
        }
        assert!(
            bo_total >= rs_total * 0.98,
            "BO {bo_total:.4} clearly worse than random {rs_total:.4}"
        );
    }

    #[test]
    fn handles_tiny_space_gracefully() {
        let space = DesignSpace::new(vec![3]).unwrap();
        let mut bo = SmsEgoOptimizer::new(1).with_init_samples(2);
        let res = bo.run(&space, &Tradeoff, 50).unwrap();
        assert_eq!(res.evaluation_count(), 3); // space exhausted
    }

    #[test]
    fn sparse_mode_is_deterministic_across_threads() {
        // Low threshold forces the sparse surrogate to engage mid-run;
        // the run must stay bit-identical for any worker count.
        let space = DesignSpace::new(vec![8, 8, 8]).unwrap();
        let run = |threads| {
            SmsEgoOptimizer::new(9)
                .with_init_samples(8)
                .with_candidate_pool(32)
                .with_surrogate_mode(SurrogateMode::Sparse { threshold: 12, inducing: 8 })
                .with_threads(threads)
                .run(&space, &Bowl3, 30)
                .unwrap()
        };
        let base = run(1);
        assert_eq!(base.evaluation_count(), 30);
        for t in [2, 4] {
            assert_eq!(base, run(t), "threads = {t}");
        }
    }

    #[test]
    fn sparse_mode_keeps_pace_with_exact_on_bowl() {
        let space = DesignSpace::new(vec![8, 8, 8]).unwrap();
        let budget = 40;
        let mut sparse_total = 0.0;
        let mut exact_total = 0.0;
        for seed in 0..3 {
            sparse_total += SmsEgoOptimizer::new(seed)
                .with_init_samples(10)
                .with_candidate_pool(64)
                .with_surrogate_mode(SurrogateMode::Sparse { threshold: 16, inducing: 12 })
                .run(&space, &Bowl3, budget)
                .unwrap()
                .final_hypervolume();
            exact_total += SmsEgoOptimizer::new(seed)
                .with_init_samples(10)
                .with_candidate_pool(64)
                .with_surrogate_mode(SurrogateMode::Exact)
                .run(&space, &Bowl3, budget)
                .unwrap()
                .final_hypervolume();
        }
        assert!(
            sparse_total >= exact_total * 0.95,
            "sparse BO {sparse_total:.4} clearly worse than exact {exact_total:.4}"
        );
    }

    #[test]
    fn sliding_window_downdates_stay_deterministic() {
        // A tiny exact-GP window on a longer run forces the downdate
        // (drop-oldest) path every iteration past the window size.
        let space = DesignSpace::new(vec![8, 8, 8]).unwrap();
        let run = |threads| {
            SmsEgoOptimizer::new(11)
                .with_init_samples(8)
                .with_candidate_pool(32)
                .with_max_gp_points(12)
                .with_surrogate_mode(SurrogateMode::Exact)
                .with_threads(threads)
                .run(&space, &Bowl3, 28)
                .unwrap()
        };
        let base = run(1);
        assert_eq!(base.evaluation_count(), 28);
        assert_eq!(base, run(3), "downdate path must be thread-independent");
    }

    #[test]
    fn seed_points_appear_first_in_history() {
        let space = DesignSpace::new(vec![8, 8]).unwrap();
        let seeds = vec![vec![0, 0], vec![7, 7]];
        let mut bo = SmsEgoOptimizer::new(2)
            .with_init_samples(4)
            .with_candidate_pool(16)
            .with_seed_points(seeds.clone());
        let res = bo.run(&space, &Tradeoff, 12).unwrap();
        assert_eq!(res.evaluations[0].point, seeds[0]);
        assert_eq!(res.evaluations[1].point, seeds[1]);
    }
}

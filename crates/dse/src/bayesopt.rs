//! Multi-objective Bayesian optimization with the SMS-EGO acquisition.

use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use std::collections::HashSet;

use crate::evaluator::{Evaluator, MultiObjectiveOptimizer};
use crate::gp::GaussianProcess;
use crate::pareto::{hypervolume, pareto_indices};
use crate::result::{EvaluationRecord, OptimizationResult};
use crate::space::DesignSpace;

/// S-Metric-Selection Efficient Global Optimization (Ponweiser et al.,
/// PPSN 2008), the acquisition strategy AutoPilot uses in Phase 2.
///
/// One Gaussian process is fitted per objective; candidates are scored by
/// the *hypervolume improvement* of their lower-confidence-bound vector
/// against the current archive front, with an additive penalty for
/// candidates whose LCB is already (epsilon-)dominated.
#[derive(Debug, Clone)]
pub struct SmsEgoOptimizer {
    seed: u64,
    init_samples: usize,
    candidate_pool: usize,
    beta: f64,
    max_gp_points: usize,
    seed_points: Vec<Vec<usize>>,
}

impl SmsEgoOptimizer {
    /// Creates an optimizer with the published default settings.
    pub fn new(seed: u64) -> SmsEgoOptimizer {
        SmsEgoOptimizer {
            seed,
            init_samples: 16,
            candidate_pool: 256,
            beta: 1.0,
            max_gp_points: 256,
            seed_points: Vec::new(),
        }
    }

    /// Adds domain-informed points evaluated before the random
    /// initialization (they count toward the budget). The paper seeds its
    /// search "to explore regions that quickly give us desired results".
    pub fn with_seed_points(mut self, points: Vec<Vec<usize>>) -> SmsEgoOptimizer {
        self.seed_points = points;
        self
    }

    /// Overrides the number of random initial samples.
    pub fn with_init_samples(mut self, n: usize) -> SmsEgoOptimizer {
        self.init_samples = n.max(2);
        self
    }

    /// Overrides the per-iteration candidate pool size.
    pub fn with_candidate_pool(mut self, n: usize) -> SmsEgoOptimizer {
        self.candidate_pool = n.max(8);
        self
    }

    /// Overrides the LCB exploration factor.
    pub fn with_beta(mut self, beta: f64) -> SmsEgoOptimizer {
        self.beta = beta.max(0.0);
        self
    }
}

impl MultiObjectiveOptimizer for SmsEgoOptimizer {
    fn name(&self) -> &str {
        "sms-ego-bo"
    }

    fn run<E: Evaluator>(
        &mut self,
        space: &DesignSpace,
        evaluator: &E,
        budget: usize,
    ) -> OptimizationResult {
        let mut rng = ChaCha12Rng::seed_from_u64(self.seed);
        let n_obj = evaluator.num_objectives();
        let mut seen: HashSet<Vec<usize>> = HashSet::new();
        let mut history: Vec<EvaluationRecord> = Vec::with_capacity(budget);

        let evaluate = |p: Vec<usize>,
                            history: &mut Vec<EvaluationRecord>,
                            seen: &mut HashSet<Vec<usize>>| {
            let objectives = evaluator.evaluate(&p);
            seen.insert(p.clone());
            history.push(EvaluationRecord { iteration: history.len(), point: p, objectives });
        };

        // Domain-informed seed points first.
        for p in self.seed_points.clone() {
            if history.len() >= budget {
                break;
            }
            if space.contains(&p) && !seen.contains(&p) {
                evaluate(p, &mut history, &mut seen);
            }
        }

        // Initial space-filling random sample.
        let mut retries = 0;
        while history.len() < self.init_samples.min(budget) && retries < budget * 20 + 100 {
            let p = space.random_point(&mut rng);
            if seen.contains(&p) {
                retries += 1;
                continue;
            }
            evaluate(p, &mut history, &mut seen);
        }

        // BO loop.
        while history.len() < budget {
            // Fit one GP per objective on (up to) the most recent points.
            let start = history.len().saturating_sub(self.max_gp_points);
            let train = &history[start..];
            let xs: Vec<Vec<f64>> = train.iter().map(|e| space.encode(&e.point)).collect();
            let mut gps: Vec<GaussianProcess> = Vec::with_capacity(n_obj);
            let mut fit_ok = true;
            // Normalize each objective to [0, 1] over the archive so the
            // shared hypervolume reference is meaningful.
            let (mins, maxs) = objective_ranges(&history, n_obj);
            for obj in 0..n_obj {
                let ys: Vec<f64> = train
                    .iter()
                    .map(|e| normalize(e.objectives[obj], mins[obj], maxs[obj]))
                    .collect();
                match GaussianProcess::fit(&xs, &ys) {
                    Some(gp) => gps.push(gp),
                    None => {
                        fit_ok = false;
                        break;
                    }
                }
            }

            let next = if fit_ok {
                self.select_candidate(space, &history, &gps, &mins, &maxs, &seen, &mut rng)
            } else {
                None
            };
            let p = match next {
                Some(p) => p,
                None => {
                    // Fallback: fresh random point.
                    match fresh_random(space, &seen, &mut rng, 200) {
                        Some(p) => p,
                        None => break, // space exhausted
                    }
                }
            };
            evaluate(p, &mut history, &mut seen);
        }

        OptimizationResult::from_history(self.name(), history, evaluator.reference_point())
    }
}

impl SmsEgoOptimizer {
    #[allow(clippy::too_many_arguments)]
    fn select_candidate(
        &self,
        space: &DesignSpace,
        history: &[EvaluationRecord],
        gps: &[GaussianProcess],
        mins: &[f64],
        maxs: &[f64],
        seen: &HashSet<Vec<usize>>,
        rng: &mut ChaCha12Rng,
    ) -> Option<Vec<usize>> {
        // Current normalized front and its hypervolume.
        let normalized: Vec<Vec<f64>> = history
            .iter()
            .map(|e| {
                e.objectives
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| normalize(v, mins[i], maxs[i]))
                    .collect()
            })
            .collect();
        let front: Vec<Vec<f64>> = pareto_indices(&normalized)
            .into_iter()
            .map(|i| normalized[i].clone())
            .collect();
        let reference = vec![1.2; gps.len()];
        let base_hv = hypervolume(&front, &reference);

        // Candidate pool: random points plus ordinal neighbours of the
        // Pareto-set designs (local refinement).
        let mut pool: Vec<Vec<usize>> = Vec::with_capacity(self.candidate_pool + 64);
        for _ in 0..self.candidate_pool {
            pool.push(space.random_point(rng));
        }
        let front_points: Vec<&EvaluationRecord> = {
            let objs: Vec<Vec<f64>> = history.iter().map(|e| e.objectives.clone()).collect();
            pareto_indices(&objs).into_iter().map(|i| &history[i]).collect()
        };
        for rec in front_points.iter().take(16) {
            pool.extend(space.neighbors(&rec.point));
        }

        let mut best: Option<(f64, Vec<usize>)> = None;
        for cand in pool {
            if seen.contains(&cand) {
                continue;
            }
            let x = space.encode(&cand);
            let lcb: Vec<f64> = gps.iter().map(|gp| gp.lcb(&x, self.beta)).collect();
            // SMS-EGO scoring: epsilon-dominated candidates get a negative
            // penalty proportional to how deep they are dominated;
            // otherwise score by hypervolume improvement.
            let eps = 1e-3;
            let mut penalty = 0.0;
            for f in &front {
                if f.iter().zip(&lcb).all(|(fv, lv)| *fv <= lv + eps) {
                    let depth: f64 = f
                        .iter()
                        .zip(&lcb)
                        .map(|(fv, lv)| (lv - fv).max(0.0))
                        .sum();
                    penalty += depth + eps;
                }
            }
            let score = if penalty > 0.0 {
                -penalty
            } else {
                let mut extended = front.clone();
                extended.push(lcb.clone());
                hypervolume(&extended, &reference) - base_hv
            };
            match &best {
                Some((s, _)) if *s >= score => {}
                _ => best = Some((score, cand)),
            }
        }
        best.map(|(_, p)| p)
    }
}

fn objective_ranges(history: &[EvaluationRecord], n_obj: usize) -> (Vec<f64>, Vec<f64>) {
    let mut mins = vec![f64::INFINITY; n_obj];
    let mut maxs = vec![f64::NEG_INFINITY; n_obj];
    for e in history {
        for (i, &v) in e.objectives.iter().enumerate() {
            mins[i] = mins[i].min(v);
            maxs[i] = maxs[i].max(v);
        }
    }
    (mins, maxs)
}

fn normalize(v: f64, min: f64, max: f64) -> f64 {
    if max > min {
        (v - min) / (max - min)
    } else {
        0.5
    }
}

fn fresh_random(
    space: &DesignSpace,
    seen: &HashSet<Vec<usize>>,
    rng: &mut ChaCha12Rng,
    retries: usize,
) -> Option<Vec<usize>> {
    for _ in 0..retries {
        let p = space.random_point(rng);
        if !seen.contains(&p) {
            return Some(p);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::test_problems::{Bowl3, Tradeoff};
    use crate::random::RandomSearch;

    #[test]
    fn respects_budget_without_duplicates() {
        let space = DesignSpace::new(vec![32]).unwrap();
        let mut bo = SmsEgoOptimizer::new(3).with_init_samples(6).with_candidate_pool(32);
        let res = bo.run(&space, &Tradeoff, 20);
        assert!(res.evaluation_count() <= 20);
        let mut pts: Vec<_> = res.evaluations.iter().map(|e| e.point.clone()).collect();
        pts.sort();
        pts.dedup();
        assert_eq!(pts.len(), res.evaluation_count());
    }

    #[test]
    fn deterministic_given_seed() {
        let space = DesignSpace::new(vec![8, 8, 8]).unwrap();
        let mut a = SmsEgoOptimizer::new(5).with_init_samples(8).with_candidate_pool(32);
        let mut b = SmsEgoOptimizer::new(5).with_init_samples(8).with_candidate_pool(32);
        assert_eq!(a.run(&space, &Bowl3, 24), b.run(&space, &Bowl3, 24));
    }

    #[test]
    fn beats_random_search_on_bowl() {
        // With equal budgets, BO should reach at least the hypervolume of
        // random search on a smooth problem (averaged over seeds).
        let space = DesignSpace::new(vec![8, 8, 8]).unwrap();
        let budget = 40;
        let mut bo_total = 0.0;
        let mut rs_total = 0.0;
        for seed in 0..3 {
            let mut bo =
                SmsEgoOptimizer::new(seed).with_init_samples(10).with_candidate_pool(64);
            bo_total += bo.run(&space, &Bowl3, budget).final_hypervolume();
            rs_total += RandomSearch::new(seed).run(&space, &Bowl3, budget).final_hypervolume();
        }
        assert!(
            bo_total >= rs_total * 0.98,
            "BO {bo_total:.4} clearly worse than random {rs_total:.4}"
        );
    }

    #[test]
    fn handles_tiny_space_gracefully() {
        let space = DesignSpace::new(vec![3]).unwrap();
        let mut bo = SmsEgoOptimizer::new(1).with_init_samples(2);
        let res = bo.run(&space, &Tradeoff, 50);
        assert_eq!(res.evaluation_count(), 3); // space exhausted
    }
}

//! Discrete design spaces and their normalized encodings.

use autopilot_rng::Rng;
use std::error::Error;
use std::fmt;

/// A discrete, rectangular design space: dimension `i` takes one of
/// `cardinalities[i]` ordinal levels.
///
/// Points are index vectors (`Vec<usize>`); [`DesignSpace::encode`] maps
/// them to `[0, 1]^d` for surrogate models, preserving the ordinal
/// structure of the underlying parameter lists (Table II parameters are
/// all ordered: layer counts, filter counts, power-of-two PE and SRAM
/// sizes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DesignSpace {
    cardinalities: Vec<usize>,
}

impl DesignSpace {
    /// Creates a space from per-dimension cardinalities.
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError`] when there are no dimensions or any
    /// dimension has zero levels.
    pub fn new(cardinalities: Vec<usize>) -> Result<DesignSpace, SpaceError> {
        if cardinalities.is_empty() {
            return Err(SpaceError::NoDimensions);
        }
        if let Some(dim) = cardinalities.iter().position(|&c| c == 0) {
            return Err(SpaceError::EmptyDimension { dim });
        }
        Ok(DesignSpace { cardinalities })
    }

    /// The trivial one-dimensional, one-point space. Infallible, so
    /// callers constructing a space from dimensions they have proved
    /// non-empty can fall back to it instead of panicking.
    pub fn unit() -> DesignSpace {
        DesignSpace { cardinalities: vec![1] }
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.cardinalities.len()
    }

    /// Number of levels in dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is out of range.
    pub fn cardinality(&self, dim: usize) -> usize {
        self.cardinalities[dim]
    }

    /// Total number of points (saturating).
    pub fn len(&self) -> u128 {
        self.cardinalities.iter().fold(1u128, |acc, &c| acc.saturating_mul(c as u128))
    }

    /// True when the space has zero points (never constructible; part of
    /// the `len`/`is_empty` contract).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when `point` is inside the space.
    pub fn contains(&self, point: &[usize]) -> bool {
        point.len() == self.dims() && point.iter().zip(&self.cardinalities).all(|(&p, &c)| p < c)
    }

    /// Normalized `[0, 1]^d` encoding of `point` (level midpoint
    /// encoding; single-level dimensions encode to 0.5).
    ///
    /// # Panics
    ///
    /// Panics if `point` is outside the space.
    pub fn encode(&self, point: &[usize]) -> Vec<f64> {
        assert!(self.contains(point), "point outside design space");
        point
            .iter()
            .zip(&self.cardinalities)
            .map(|(&p, &c)| if c == 1 { 0.5 } else { p as f64 / (c - 1) as f64 })
            .collect()
    }

    /// A uniformly random point.
    pub fn random_point(&self, rng: &mut Rng) -> Vec<usize> {
        self.cardinalities.iter().map(|&c| rng.below(c)).collect()
    }

    /// All 1-step ordinal neighbours of `point` (each dimension +-1).
    ///
    /// # Panics
    ///
    /// Panics if `point` is outside the space.
    pub fn neighbors(&self, point: &[usize]) -> Vec<Vec<usize>> {
        assert!(self.contains(point), "point outside design space");
        let mut out = Vec::new();
        for d in 0..self.dims() {
            if point[d] > 0 {
                let mut p = point.to_vec();
                p[d] -= 1;
                out.push(p);
            }
            if point[d] + 1 < self.cardinalities[d] {
                let mut p = point.to_vec();
                p[d] += 1;
                out.push(p);
            }
        }
        out
    }

    /// Iterates over every point of the space in lexicographic order.
    ///
    /// Intended for small spaces (exhaustive baselines and tests); the
    /// iterator is lazy so it is safe to `take` from a large space.
    pub fn iter_points(&self) -> impl Iterator<Item = Vec<usize>> + '_ {
        let dims = self.dims();
        let mut current = vec![0usize; dims];
        let mut done = false;
        std::iter::from_fn(move || {
            if done {
                return None;
            }
            let out = current.clone();
            // Advance odometer.
            let mut d = dims;
            loop {
                if d == 0 {
                    done = true;
                    break;
                }
                d -= 1;
                current[d] += 1;
                if current[d] < self.cardinalities[d] {
                    break;
                }
                current[d] = 0;
            }
            Some(out)
        })
    }
}

/// Error constructing a [`DesignSpace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SpaceError {
    /// The space has no dimensions.
    NoDimensions,
    /// Dimension `dim` has zero levels.
    EmptyDimension {
        /// Offending dimension index.
        dim: usize,
    },
}

impl fmt::Display for SpaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpaceError::NoDimensions => write!(f, "design space must have at least one dimension"),
            SpaceError::EmptyDimension { dim } => {
                write!(f, "design-space dimension {dim} has zero levels")
            }
        }
    }
}

impl Error for SpaceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_is_product_of_cardinalities() {
        let s = DesignSpace::new(vec![9, 3, 8, 8, 8, 8, 8]).unwrap();
        assert_eq!(s.len(), 9 * 3 * 8u128.pow(5));
        assert!(!s.is_empty());
    }

    #[test]
    fn rejects_degenerate_spaces() {
        assert_eq!(DesignSpace::new(vec![]), Err(SpaceError::NoDimensions));
        assert_eq!(DesignSpace::new(vec![3, 0]), Err(SpaceError::EmptyDimension { dim: 1 }));
    }

    #[test]
    fn encode_maps_to_unit_interval() {
        let s = DesignSpace::new(vec![5, 1]).unwrap();
        assert_eq!(s.encode(&[0, 0]), vec![0.0, 0.5]);
        assert_eq!(s.encode(&[4, 0]), vec![1.0, 0.5]);
        assert_eq!(s.encode(&[2, 0]), vec![0.5, 0.5]);
    }

    #[test]
    fn random_points_are_contained() {
        let s = DesignSpace::new(vec![9, 3, 8]).unwrap();
        let mut rng = Rng::seed_from_u64(0);
        for _ in 0..100 {
            assert!(s.contains(&s.random_point(&mut rng)));
        }
    }

    #[test]
    fn neighbors_differ_in_one_dim() {
        let s = DesignSpace::new(vec![3, 3]).unwrap();
        let n = s.neighbors(&[1, 1]);
        assert_eq!(n.len(), 4);
        for p in &n {
            let diff: usize = p.iter().zip(&[1usize, 1]).map(|(a, b)| a.abs_diff(*b)).sum();
            assert_eq!(diff, 1);
        }
        // Corner point has fewer neighbours.
        assert_eq!(s.neighbors(&[0, 0]).len(), 2);
    }

    #[test]
    fn iter_points_is_exhaustive_and_unique() {
        let s = DesignSpace::new(vec![3, 2, 2]).unwrap();
        let all: Vec<_> = s.iter_points().collect();
        assert_eq!(all.len(), 12);
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 12);
        assert!(all.iter().all(|p| s.contains(p)));
    }

    #[test]
    #[should_panic(expected = "outside design space")]
    fn encode_rejects_out_of_range() {
        let s = DesignSpace::new(vec![2, 2]).unwrap();
        let _ = s.encode(&[2, 0]);
    }
}

//! Multi-objective simulated annealing with random Chebyshev
//! scalarizations, an alternative Phase-2 optimizer.

use autopilot_rng::Rng;
use std::collections::HashMap;

use crate::control::RunControl;
use crate::error::{DseError, EvalError};
use crate::evaluator::{Evaluator, MultiObjectiveOptimizer};
use crate::result::{EvaluationRecord, OptimizationResult};
use crate::space::DesignSpace;

/// Simulated annealing over the discrete space: a random ordinal
/// neighbour is proposed each step and accepted by the Metropolis rule on
/// an augmented-Chebyshev scalarization whose weight vector is resampled
/// periodically, so the archive spreads along the Pareto front.
#[derive(Debug, Clone)]
pub struct AnnealingOptimizer {
    seed: u64,
    initial_temperature: f64,
    cooling: f64,
    reweight_every: usize,
}

impl AnnealingOptimizer {
    /// Creates an optimizer with conventional defaults.
    pub fn new(seed: u64) -> AnnealingOptimizer {
        AnnealingOptimizer { seed, initial_temperature: 1.0, cooling: 0.97, reweight_every: 10 }
    }

    /// Overrides the initial temperature.
    pub fn with_temperature(mut self, t: f64) -> AnnealingOptimizer {
        self.initial_temperature = t.max(1e-6);
        self
    }
}

impl MultiObjectiveOptimizer for AnnealingOptimizer {
    fn name(&self) -> &str {
        "simulated-annealing"
    }

    fn run_controlled(
        &mut self,
        space: &DesignSpace,
        evaluator: &dyn Evaluator,
        budget: usize,
        control: &RunControl,
    ) -> Result<OptimizationResult, DseError> {
        control.check()?;
        let mut rng = Rng::seed_from_u64(self.seed);
        let n_obj = evaluator.num_objectives();
        let mut cache: HashMap<Vec<usize>, Vec<f64>> = HashMap::new();
        let mut history: Vec<EvaluationRecord> = Vec::new();

        let eval = |p: &Vec<usize>,
                    cache: &mut HashMap<Vec<usize>, Vec<f64>>,
                    history: &mut Vec<EvaluationRecord>|
         -> Result<Vec<f64>, EvalError> {
            if let Some(o) = cache.get(p) {
                return Ok(o.clone());
            }
            let o = evaluator.evaluate(p)?;
            cache.insert(p.clone(), o.clone());
            history.push(EvaluationRecord {
                iteration: history.len(),
                point: p.clone(),
                objectives: o.clone(),
            });
            Ok(o)
        };

        // Unique evaluations are bounded by the space; see the NSGA-II
        // implementation for the same convergence guard.
        let budget = (budget as u128).min(space.len()) as usize;
        let mut stale_steps = 0usize;

        let mut current = space.random_point(&mut rng);
        let mut current_objs = eval(&current, &mut cache, &mut history)?;
        let mut temperature = self.initial_temperature;
        let mut weights = random_weights(n_obj, &mut rng);
        // Running objective ranges for normalization.
        let mut mins = current_objs.clone();
        let mut maxs = current_objs.clone();

        let mut step = 0usize;
        while history.len() < budget {
            control.check()?;
            control.checkpoint(history.len(), 0);
            step += 1;
            if step.is_multiple_of(self.reweight_every) {
                weights = random_weights(n_obj, &mut rng);
                // Occasional restart from a random point keeps the
                // archive exploring distant regions of the front.
                if rng.chance(0.15) {
                    current = space.random_point(&mut rng);
                    current_objs = eval(&current, &mut cache, &mut history)?;
                    if history.len() >= budget {
                        break;
                    }
                }
            }
            let neighbors = space.neighbors(&current);
            if neighbors.is_empty() {
                break;
            }
            let proposal = neighbors[rng.below(neighbors.len())].clone();
            let was_cached = cache.contains_key(&proposal);
            let proposal_objs = eval(&proposal, &mut cache, &mut history)?;
            if was_cached {
                stale_steps += 1;
                if stale_steps > budget * 20 + 500 {
                    break; // converged: the walk revisits known points only
                }
            } else {
                stale_steps = 0;
            }
            for i in 0..n_obj {
                mins[i] = mins[i].min(proposal_objs[i]);
                maxs[i] = maxs[i].max(proposal_objs[i]);
            }
            let e_cur = chebyshev(&current_objs, &weights, &mins, &maxs);
            let e_new = chebyshev(&proposal_objs, &weights, &mins, &maxs);
            let accept = e_new <= e_cur
                || rng.chance(((e_cur - e_new) / temperature.max(1e-9)).exp().min(1.0));
            if accept {
                current = proposal;
                current_objs = proposal_objs;
            }
            temperature *= self.cooling;
        }

        history.truncate(budget);
        Ok(OptimizationResult::from_history(self.name(), history, evaluator.reference_point()))
    }
}

fn random_weights(n: usize, rng: &mut Rng) -> Vec<f64> {
    let raw: Vec<f64> = (0..n).map(|_| rng.range_f64(0.05, 1.0)).collect();
    let sum: f64 = raw.iter().sum();
    raw.into_iter().map(|w| w / sum).collect()
}

/// Augmented Chebyshev scalarization on normalized objectives.
fn chebyshev(objs: &[f64], weights: &[f64], mins: &[f64], maxs: &[f64]) -> f64 {
    let norm = |v: f64, i: usize| {
        if maxs[i] > mins[i] {
            (v - mins[i]) / (maxs[i] - mins[i])
        } else {
            0.5
        }
    };
    let mut max_term: f64 = 0.0;
    let mut sum_term = 0.0;
    for (i, (&v, &w)) in objs.iter().zip(weights).enumerate() {
        let n = norm(v, i) * w;
        max_term = max_term.max(n);
        sum_term += n;
    }
    max_term + 0.05 * sum_term
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::test_problems::{Bowl3, Tradeoff};

    #[test]
    fn respects_budget() {
        let space = DesignSpace::new(vec![32]).unwrap();
        let mut sa = AnnealingOptimizer::new(2);
        let res = sa.run(&space, &Tradeoff, 25).unwrap();
        assert!(res.evaluation_count() <= 25);
        assert!(res.evaluation_count() > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let space = DesignSpace::new(vec![8, 8, 8]).unwrap();
        let a = AnnealingOptimizer::new(4).run(&space, &Bowl3, 40).unwrap();
        let b = AnnealingOptimizer::new(4).run(&space, &Bowl3, 40).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn improves_over_first_sample() {
        let space = DesignSpace::new(vec![32]).unwrap();
        let res = AnnealingOptimizer::new(8).run(&space, &Tradeoff, 60).unwrap();
        assert!(res.final_hypervolume() >= res.hypervolume_trace[0]);
        assert!(!res.pareto_front().is_empty());
    }

    #[test]
    fn explores_multiple_points() {
        let space = DesignSpace::new(vec![16, 16]).unwrap();
        let res = AnnealingOptimizer::new(5).run(&space, &Tradeoff, 30).unwrap();
        let mut pts: Vec<_> = res.evaluations.iter().map(|e| e.point.clone()).collect();
        pts.sort();
        pts.dedup();
        assert!(pts.len() > 5, "only {} unique points", pts.len());
    }
}

//! Batched exponentials for the kernel-panel engine.
//!
//! Every squared-exponential kernel entry ends in `exp(sq_dist · scale)`,
//! and at archive scale those exponentials dominate the GP-predict span.
//! This module provides the one primitive the panel engine needs —
//! [`exp_slice`], an elementwise in-place exponential over a finished
//! panel row segment — in two modes selected by [`KernelExpMode`]:
//!
//! * [`KernelExpMode::Exact`] calls [`f64::exp`] per element, preserving
//!   the legacy kernels bit for bit (this is the default, and what every
//!   golden fingerprint pins).
//! * [`KernelExpMode::Fast`] uses [`fast_exp`], an in-repo Cody–Waite
//!   range reduction + degree-13 polynomial with no `libm` calls in the
//!   inner loop, so the compiler can unroll and vectorize the whole
//!   slice. Accuracy is property-tested to a ≤4-ULP elementwise bound
//!   against `f64::exp` over the kernel's argument domain.
//!
//! # Error analysis of [`fast_exp`]
//!
//! With `n = round(x / ln 2)` and `r = x − n·ln 2` split Cody–Waite
//! style (`ln 2 = LN2_HI + LN2_LO`, where `LN2_HI` carries 21 trailing
//! zero bits so `n·LN2_HI` is exact for `|n| < 2^21`), the reduced
//! argument satisfies `|r| ≤ ln(2)/2 ≈ 0.3466` and
//! `exp(x) = 2^n · exp(r)`. The degree-13 Taylor polynomial of `exp`
//! truncates at `r^14/14! ≤ 0.3466^14/14! ≈ 4·10⁻¹⁸` (< 0.02 ULP);
//! Horner evaluation adds a few rounding errors of at most 1 ULP each,
//! and the final `2^n` scaling is a pair of exact power-of-two
//! multiplies. The observed worst case sits well inside the 4-ULP bound
//! the property suite enforces.

use autopilot_obs as obs;

/// Environment variable selecting the kernel exponential mode for the
/// GP surrogates. Accepted values:
///
/// | value                                   | meaning                        |
/// |-----------------------------------------|--------------------------------|
/// | *(unset)*, `0`, `off`, `false`, `exact` | default: [`f64::exp`] kernels  |
/// | `1`, `on`, `true`, `fast`               | batched [`fast_exp`] kernels   |
pub const GP_FASTEXP_ENV: &str = "AUTOPILOT_GP_FASTEXP";

/// How the kernel-panel engine evaluates the exponential at the heart of
/// every squared-exponential kernel entry.
///
/// `Exact` is bit-identical legacy behaviour and the default; `Fast`
/// trades ≤4 ULP per kernel entry for a vectorizable inner loop. The
/// mode is frozen into each fitted GP so a surrogate never mixes kernels
/// from both evaluators across its factorizations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelExpMode {
    /// Per-element [`f64::exp`] — bit-identical to the scalar legacy
    /// kernels pinned by the golden fingerprints.
    #[default]
    Exact,
    /// Batched in-repo exponential ([`fast_exp`]): Cody–Waite range
    /// reduction plus a degree-13 polynomial, ≤4 ULP vs [`f64::exp`].
    Fast,
}

impl KernelExpMode {
    /// Reads the mode from [`GP_FASTEXP_ENV`]; unset or unparsable
    /// values fall back to [`KernelExpMode::Exact`] (with a warn-level
    /// obs event for the unparsable case).
    ///
    /// The variable is captured **once per process** (via
    /// [`autopilot_obs::env_once`]); later env mutations warn once and
    /// are otherwise ignored. Per-job modes go through
    /// [`SmsEgoOptimizer::with_exp_mode`] instead.
    ///
    /// [`SmsEgoOptimizer::with_exp_mode`]: crate::SmsEgoOptimizer::with_exp_mode
    pub fn from_env() -> KernelExpMode {
        static CACHED: std::sync::OnceLock<KernelExpMode> = std::sync::OnceLock::new();
        // env_once re-checks the live environment for drift (warning
        // once) while pinning the value used for parsing.
        let raw = obs::env_once(GP_FASTEXP_ENV);
        *CACHED.get_or_init(|| {
            let raw = match raw {
                Some(v) => v,
                None => return KernelExpMode::Exact,
            };
            match KernelExpMode::parse(&raw) {
                Some(mode) => mode,
                None => {
                    obs::obs_warn!(
                        "gp: {GP_FASTEXP_ENV}={raw:?} is not a recognized kernel exp mode; \
                         using exact kernels"
                    );
                    KernelExpMode::Exact
                }
            }
        })
    }

    /// Parses the [`GP_FASTEXP_ENV`] grammar; `None` for unrecognized
    /// input.
    pub fn parse(raw: &str) -> Option<KernelExpMode> {
        match raw.trim().to_ascii_lowercase().as_str() {
            "" | "0" | "off" | "false" | "exact" => Some(KernelExpMode::Exact),
            "1" | "on" | "true" | "fast" => Some(KernelExpMode::Fast),
            _ => None,
        }
    }

    /// Stable lowercase identifier (`"exact"` / `"fast"`), used by the
    /// timing probes and serve job validation messages.
    pub fn id(self) -> &'static str {
        match self {
            KernelExpMode::Exact => "exact",
            KernelExpMode::Fast => "fast",
        }
    }
}

/// In-place elementwise exponential over a slice — the panel engine's
/// fused second pass over each finished row segment.
///
/// `Exact` mode applies [`f64::exp`] per element (bit-identical to the
/// scalar kernels); `Fast` mode applies [`fast_exp`] in a branch-free
/// loop the compiler can vectorize.
pub fn exp_slice(values: &mut [f64], mode: KernelExpMode) {
    match mode {
        KernelExpMode::Exact => {
            for v in values {
                *v = v.exp();
            }
        }
        KernelExpMode::Fast => {
            for v in values {
                *v = fast_exp(*v);
            }
        }
    }
}

/// `log2(e)`, the reduction constant `n = round(x · INV_LN2)`.
const INV_LN2: f64 = std::f64::consts::LOG2_E;
/// High part of `ln 2` with 21 trailing zero mantissa bits
/// (`0x3FE62E42FEE00000`), so `n · LN2_HI` is exact for every
/// `|n| < 2^21` (the fdlibm split).
const LN2_HI: f64 = 0.693_147_180_369_123_8;
/// Low part of the split (`0x3DEA39EF35793C76`): `LN2_HI + LN2_LO`
/// matches `ln 2` to ~2⁻⁸⁹.
const LN2_LO: f64 = 1.908_214_929_270_587_7e-10;
/// Below this argument the true exponential rounds to zero; the clamp
/// keeps the `2^n` exponent arithmetic in range while agreeing with
/// `f64::exp` at the limit.
const ARG_MIN: f64 = -746.0;
/// Above this argument the true exponential overflows to infinity.
const ARG_MAX: f64 = 710.0;
/// `1.5 · 2^52`: adding it snaps any `|v| ≤ 2^51` to an integer in the
/// magic's own binade (round-to-nearest-even), giving branch-free,
/// libm-free rounding on SSE2-only baselines.
const ROUND_MAGIC: f64 = 6_755_399_441_055_744.0;

/// Scalar core of the `Fast` kernel exponential: Cody–Waite range
/// reduction plus a degree-13 Taylor polynomial, no `libm` calls.
///
/// Within `[-708, 709]` the result is within 4 ULP of [`f64::exp`]
/// (property-tested); outside, arguments clamp to [`ARG_MIN`] /
/// [`ARG_MAX`] so deep underflow rounds to `0.0` and overflow saturates
/// to `+∞`, matching the limits of the exact exponential. `NaN`
/// propagates.
#[inline]
pub fn fast_exp(x: f64) -> f64 {
    // Taylor coefficients 1/k! for k = 2..=13 (k = 0, 1 are exact 1.0).
    const C2: f64 = 1.0 / 2.0;
    const C3: f64 = 1.0 / 6.0;
    const C4: f64 = 1.0 / 24.0;
    const C5: f64 = 1.0 / 120.0;
    const C6: f64 = 1.0 / 720.0;
    const C7: f64 = 1.0 / 5040.0;
    const C8: f64 = 1.0 / 40_320.0;
    const C9: f64 = 1.0 / 362_880.0;
    const C10: f64 = 1.0 / 3_628_800.0;
    const C11: f64 = 1.0 / 39_916_800.0;
    const C12: f64 = 1.0 / 479_001_600.0;
    const C13: f64 = 1.0 / 6_227_020_800.0;

    // The clamp propagates NaN and pins ±∞ to the saturating limits.
    let x = x.clamp(ARG_MIN, ARG_MAX);
    // Round-to-nearest via the 1.5·2^52 magic constant: for |v| ≤ 2^51
    // the add snaps v into the magic's binade, so the low mantissa bits
    // of `t` hold round(v) exactly and the subtraction recovers it as a
    // float. Unlike `f64::round` this needs no libm call on baseline
    // x86-64 (SSE2 has no round instruction), so the slice loop stays
    // vectorizable. Ties land on even rather than away from zero, which
    // only shifts `r` by ∓ln(2)/2 — still inside the polynomial's range.
    let t = x * INV_LN2 + ROUND_MAGIC;
    let n = t - ROUND_MAGIC;
    // Exact high-part subtraction (n·LN2_HI is exact and cancels
    // against x), then the low-part correction: |r| ≤ ln(2)/2.
    let r = (x - n * LN2_HI) - n * LN2_LO;
    let mut p = C13;
    p = p * r + C12;
    p = p * r + C11;
    p = p * r + C10;
    p = p * r + C9;
    p = p * r + C8;
    p = p * r + C7;
    p = p * r + C6;
    p = p * r + C5;
    p = p * r + C4;
    p = p * r + C3;
    p = p * r + C2;
    p = p * r + 1.0;
    p = p * r + 1.0;
    // 2^n via two exact power-of-two factors: n ∈ [-1076, 1024] after
    // the clamp, so both half-exponents fit the normal range, and the
    // left-to-right product avoids spurious overflow just under the
    // f64 maximum (p < 1 can pull 2^1024 back into range). The integer
    // exponent falls straight out of the magic-rounding bits: `t` and
    // the magic share a binade, so their bit patterns differ by exactly
    // the integer part.
    let k = (t.to_bits() as i64).wrapping_sub(ROUND_MAGIC.to_bits() as i64);
    let k_half = k / 2;
    let s1 = pow2(k - k_half);
    let s2 = pow2(k_half);
    p * s1 * s2
}

/// `2^e` for exponents within the normal range, by direct construction
/// of the IEEE-754 exponent field.
#[inline]
fn pow2(e: i64) -> f64 {
    f64::from_bits(((e + 1023) as u64) << 52)
}

/// Units-in-the-last-place distance between two floats, over the usual
/// monotone integer mapping of IEEE-754 bit patterns (so the distance
/// between `0.0` and the smallest subnormal is 1). `NaN` against
/// anything is `u64::MAX`; equal values (including `+0 == -0` and
/// `∞ == ∞`) are 0. Exposed for the fast-exp property suite and the
/// `gp_fastexp` bench group.
pub fn ulp_distance(a: f64, b: f64) -> u64 {
    if a == b {
        return 0;
    }
    if a.is_nan() || b.is_nan() {
        return if a.is_nan() && b.is_nan() { 0 } else { u64::MAX };
    }
    // Map bit patterns onto a single monotone integer line: positive
    // floats keep their bits, negative floats mirror below zero.
    fn ordered(x: f64) -> i64 {
        let bits = x.to_bits() as i64;
        if bits < 0 {
            -(bits & i64::MAX)
        } else {
            bits
        }
    }
    ordered(a).abs_diff(ordered(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use autopilot_rng::Rng;

    #[test]
    fn exp_mode_grammar() {
        use KernelExpMode::*;
        assert_eq!(KernelExpMode::parse(""), Some(Exact));
        assert_eq!(KernelExpMode::parse("0"), Some(Exact));
        assert_eq!(KernelExpMode::parse("off"), Some(Exact));
        assert_eq!(KernelExpMode::parse("false"), Some(Exact));
        assert_eq!(KernelExpMode::parse("exact"), Some(Exact));
        assert_eq!(KernelExpMode::parse("1"), Some(Fast));
        assert_eq!(KernelExpMode::parse("on"), Some(Fast));
        assert_eq!(KernelExpMode::parse("true"), Some(Fast));
        assert_eq!(KernelExpMode::parse("fast"), Some(Fast));
        assert_eq!(KernelExpMode::parse(" Fast "), Some(Fast));
        assert_eq!(KernelExpMode::parse("banana"), None);
        assert_eq!(KernelExpMode::parse("2"), None);
        assert_eq!(KernelExpMode::default(), Exact);
        assert_eq!(Exact.id(), "exact");
        assert_eq!(Fast.id(), "fast");
    }

    #[test]
    fn exact_slice_is_bit_identical_to_scalar_exp() {
        let mut rng = Rng::seed_from_u64(11);
        let vals: Vec<f64> = (0..512).map(|_| -60.0 * rng.next_f64()).collect();
        let mut batched = vals.clone();
        exp_slice(&mut batched, KernelExpMode::Exact);
        for (v, b) in vals.iter().zip(&batched) {
            assert_eq!(v.exp().to_bits(), b.to_bits());
        }
    }

    /// The ≤4-ULP property suite: seeded random arguments over the
    /// kernel domain (non-positive, where every `sq_dist · scale`
    /// lands) and the positive range up to the overflow knee.
    #[test]
    fn fast_exp_within_4_ulp_of_exact() {
        let mut rng = Rng::seed_from_u64(20_260_808);
        let mut worst = 0u64;
        for i in 0..200_000 {
            // Log-uniform magnitudes from 2⁻⁴⁰ up to ~709, spanning the
            // non-positive kernel domain (3 draws in 4) and the positive
            // range up to the overflow knee.
            let mag = (-40.0 + 49.4 * rng.next_f64()).exp2();
            let x = if i % 4 == 0 { mag.min(709.0) } else { -mag.min(708.0) };
            let got = fast_exp(x);
            let want = x.exp();
            let d = ulp_distance(got, want);
            worst = worst.max(d);
            assert!(d <= 4, "fast_exp({x:e}) = {got:e} vs exp = {want:e}: {d} ULP");
        }
        // The bound must not be vacuous: the sweep has to exercise
        // arguments large enough that reduction actually engages.
        assert!(worst <= 4);
    }

    #[test]
    fn fast_exp_dense_uniform_sweep_within_4_ulp() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..200_000 {
            let x = -708.0 + 1417.0 * rng.next_f64(); // uniform on [-708, 709]
            let d = ulp_distance(fast_exp(x), x.exp());
            assert!(d <= 4, "fast_exp({x}) off by {d} ULP");
        }
    }

    #[test]
    fn fast_exp_structured_points() {
        // Exact identities and reduction boundaries.
        assert_eq!(fast_exp(0.0).to_bits(), 1.0f64.to_bits());
        assert_eq!(fast_exp(-0.0).to_bits(), 1.0f64.to_bits());
        for x in [
            std::f64::consts::LN_2 / 2.0,
            -std::f64::consts::LN_2 / 2.0,
            std::f64::consts::LN_2,
            -std::f64::consts::LN_2,
            1.0,
            -1.0,
            -1e-300,
            1e-300,
            -700.0,
            700.0,
            709.0,
            -708.0,
        ] {
            let d = ulp_distance(fast_exp(x), x.exp());
            assert!(d <= 4, "fast_exp({x}) off by {d} ULP");
        }
        // Near-integer multiples of ln 2 stress the Cody–Waite split.
        for k in -1020i32..=1020 {
            let x = k as f64 * std::f64::consts::LN_2;
            if !(-708.0..=709.0).contains(&x) {
                continue;
            }
            let d = ulp_distance(fast_exp(x), x.exp());
            assert!(d <= 4, "fast_exp({x}) at k={k} off by {d} ULP");
        }
    }

    #[test]
    fn fast_exp_limits_and_specials() {
        // Saturation matches the exact exponential's limits.
        assert_eq!(fast_exp(-800.0), 0.0);
        assert_eq!(fast_exp(-1e9), 0.0);
        assert_eq!(fast_exp(f64::NEG_INFINITY), 0.0);
        assert_eq!(fast_exp(800.0), f64::INFINITY);
        assert_eq!(fast_exp(f64::INFINITY), f64::INFINITY);
        assert!(fast_exp(f64::NAN).is_nan());
        // Monotone hand-off into the clamp region: no upward jump at
        // the boundary.
        assert!(fast_exp(-745.9) <= fast_exp(-745.0));
    }

    #[test]
    fn fast_slice_matches_scalar_fast_exp() {
        let mut rng = Rng::seed_from_u64(3);
        let vals: Vec<f64> = (0..777).map(|_| -50.0 * rng.next_f64()).collect();
        let mut batched = vals.clone();
        exp_slice(&mut batched, KernelExpMode::Fast);
        for (v, b) in vals.iter().zip(&batched) {
            assert_eq!(fast_exp(*v).to_bits(), b.to_bits());
        }
    }

    #[test]
    fn ulp_distance_basics() {
        assert_eq!(ulp_distance(1.0, 1.0), 0);
        assert_eq!(ulp_distance(0.0, -0.0), 0);
        assert_eq!(ulp_distance(1.0, 1.0 + f64::EPSILON), 1);
        assert_eq!(ulp_distance(0.0, f64::from_bits(1)), 1);
        assert_eq!(ulp_distance(f64::from_bits(1), -f64::from_bits(1)), 2);
        assert_eq!(ulp_distance(f64::INFINITY, f64::INFINITY), 0);
        assert_eq!(ulp_distance(f64::NAN, f64::NAN), 0);
        assert_eq!(ulp_distance(f64::NAN, 1.0), u64::MAX);
    }
}

//! Exact Gaussian-process regression with a squared-exponential kernel.

use crate::linalg::{sq_dist, Matrix};

/// A fitted Gaussian process over normalized inputs in `[0, 1]^d`.
///
/// The paper uses GP surrogates with the squared-exponential (SE) kernel
/// for each objective; this implementation follows the standard
/// Rasmussen & Williams recipe (Cholesky of the kernel matrix, `alpha =
/// K^-1 y`). Hyperparameters are set by simple, robust heuristics: signal
/// variance from the sample variance, a shared isotropic lengthscale from
/// the median pairwise distance, and a small noise floor for numerical
/// stability.
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    x: Vec<Vec<f64>>,
    chol: Matrix,
    alpha: Vec<f64>,
    mean_y: f64,
    signal_var: f64,
    lengthscale_sq: f64,
}

impl GaussianProcess {
    /// Fits a GP to `(x, y)` observations.
    ///
    /// Inputs should be normalized to roughly the unit cube; outputs are
    /// centred internally.
    ///
    /// Returns `None` when fewer than two observations are provided or the
    /// kernel matrix cannot be factorized.
    ///
    /// # Panics
    ///
    /// Panics if `x` and `y` lengths differ or input dimensions are
    /// inconsistent.
    pub fn fit(x: &[Vec<f64>], y: &[f64]) -> Option<GaussianProcess> {
        assert_eq!(x.len(), y.len(), "x and y must have equal length");
        let n = x.len();
        if n < 2 {
            return None;
        }
        let dim = x[0].len();
        assert!(x.iter().all(|p| p.len() == dim), "inconsistent input dims");

        let mean_y = y.iter().sum::<f64>() / n as f64;
        let centred: Vec<f64> = y.iter().map(|v| v - mean_y).collect();
        let var_y = centred.iter().map(|v| v * v).sum::<f64>() / n as f64;
        let signal_var = var_y.max(1e-12);

        // Median pairwise squared distance as the (squared) lengthscale.
        let mut dists: Vec<f64> = Vec::with_capacity(n * (n - 1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                dists.push(sq_dist(&x[i], &x[j]));
            }
        }
        dists.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
        let median = dists.get(dists.len() / 2).copied().unwrap_or(1.0);
        let lengthscale_sq = median.max(1e-6);

        let noise = signal_var * 1e-4 + 1e-10;
        let k = Matrix::from_fn(n, n, |i, j| {
            let v = signal_var * (-0.5 * sq_dist(&x[i], &x[j]) / lengthscale_sq).exp();
            if i == j {
                v + noise
            } else {
                v
            }
        });
        let chol = k.cholesky()?;
        let tmp = chol.solve_lower(&centred);
        let alpha = chol.solve_lower_transpose(&tmp);

        Some(GaussianProcess {
            x: x.to_vec(),
            chol,
            alpha,
            mean_y,
            signal_var,
            lengthscale_sq,
        })
    }

    /// Number of training points.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True when the GP has no training points (never constructed this
    /// way, but part of the `len`/`is_empty` contract).
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Posterior mean and variance at `point`.
    ///
    /// # Panics
    ///
    /// Panics if `point` has the wrong dimension.
    pub fn predict(&self, point: &[f64]) -> (f64, f64) {
        assert_eq!(point.len(), self.x[0].len(), "dimension mismatch");
        let kstar: Vec<f64> = self
            .x
            .iter()
            .map(|xi| self.signal_var * (-0.5 * sq_dist(xi, point) / self.lengthscale_sq).exp())
            .collect();
        let mean = self.mean_y + kstar.iter().zip(&self.alpha).map(|(k, a)| k * a).sum::<f64>();
        let v = self.chol.solve_lower(&kstar);
        let var = (self.signal_var - v.iter().map(|x| x * x).sum::<f64>()).max(0.0);
        (mean, var)
    }

    /// Lower confidence bound `mean - beta * std` at `point`.
    pub fn lcb(&self, point: &[f64], beta: f64) -> f64 {
        let (m, v) = self.predict(point);
        m - beta * v.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid1d(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect()
    }

    #[test]
    fn interpolates_training_points() {
        let x = grid1d(8);
        let y: Vec<f64> = x.iter().map(|p| (4.0 * p[0]).sin()).collect();
        let gp = GaussianProcess::fit(&x, &y).unwrap();
        for (xi, yi) in x.iter().zip(&y) {
            let (m, v) = gp.predict(xi);
            assert!((m - yi).abs() < 1e-2, "mean {m} vs {yi}");
            assert!(v < 1e-2, "variance {v} at training point");
        }
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let x = vec![vec![0.0], vec![0.1], vec![0.2]];
        let y = vec![0.0, 0.1, 0.2];
        let gp = GaussianProcess::fit(&x, &y).unwrap();
        let (_, v_near) = gp.predict(&[0.1]);
        let (_, v_far) = gp.predict(&[5.0]);
        assert!(v_far > v_near);
    }

    #[test]
    fn prediction_reasonable_between_points() {
        let x = grid1d(16);
        let y: Vec<f64> = x.iter().map(|p| p[0] * p[0]).collect();
        let gp = GaussianProcess::fit(&x, &y).unwrap();
        let (m, _) = gp.predict(&[0.5]);
        assert!((m - 0.25).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn too_few_points_returns_none() {
        assert!(GaussianProcess::fit(&[vec![0.0]], &[1.0]).is_none());
        assert!(GaussianProcess::fit(&[], &[]).is_none());
    }

    #[test]
    fn lcb_below_mean() {
        let x = grid1d(6);
        let y: Vec<f64> = x.iter().map(|p| p[0]).collect();
        let gp = GaussianProcess::fit(&x, &y).unwrap();
        let (m, _) = gp.predict(&[0.55]);
        assert!(gp.lcb(&[0.55], 2.0) <= m);
    }

    #[test]
    fn constant_targets_are_handled() {
        let x = grid1d(5);
        let y = vec![3.0; 5];
        let gp = GaussianProcess::fit(&x, &y).unwrap();
        let (m, _) = gp.predict(&[0.5]);
        assert!((m - 3.0).abs() < 1e-6);
    }

    #[test]
    fn len_reports_training_size() {
        let x = grid1d(5);
        let y = vec![0.0; 5];
        let gp = GaussianProcess::fit(&x, &y).unwrap();
        assert_eq!(gp.len(), 5);
        assert!(!gp.is_empty());
    }
}

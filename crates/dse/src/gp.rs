//! Exact Gaussian-process regression with a squared-exponential kernel,
//! supporting incremental O(n²) updates.

use crate::error::GpError;
use crate::linalg::{dot, sq_dist, Matrix};

/// A fitted Gaussian process over normalized inputs in `[0, 1]^d`.
///
/// The paper uses GP surrogates with the squared-exponential (SE) kernel
/// for each objective; this implementation follows the standard
/// Rasmussen & Williams recipe (Cholesky of the kernel matrix, `alpha =
/// K^-1 y`). Hyperparameters are set by simple, robust heuristics: signal
/// variance from the sample variance, a shared isotropic lengthscale from
/// the median pairwise distance, and a small noise floor for numerical
/// stability.
///
/// # Incremental updates
///
/// The kernel matrix is held in *correlation form*: `K = σ²·C_j` where
/// `C_j` has unit diagonal plus a relative jitter. The Cholesky factor of
/// `C_j` depends only on the inputs and the lengthscale — not on the
/// targets or signal variance — so when a new observation arrives with
/// the lengthscale held fixed, [`GaussianProcess::extend`] borders the
/// factor with one triangular solve (O(n²)) instead of refactorizing
/// (O(n³)). Callers refresh the lengthscale periodically with a full
/// [`GaussianProcess::fit`]; between refits the frozen lengthscale is a
/// valid (slightly stale) hyperparameter choice, not an approximation of
/// the math: predictions from an extended GP are identical to a
/// fresh fit at the same lengthscale up to floating-point roundoff.
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    x: Vec<Vec<f64>>,
    y: Vec<f64>,
    /// Cholesky factor of the jittered correlation matrix `C_j`.
    chol: Matrix,
    /// `C_j⁻¹ (y - mean_y)` — note the σ² cancellation in the posterior
    /// mean: `k*ᵀK⁻¹(y-ȳ) = c*ᵀC_j⁻¹(y-ȳ)`.
    alpha: Vec<f64>,
    mean_y: f64,
    signal_var: f64,
    lengthscale_sq: f64,
    /// Relative diagonal jitter, frozen at factorization time.
    jitter: f64,
}

impl GaussianProcess {
    /// Fits a GP to `(x, y)` observations.
    ///
    /// Inputs should be normalized to roughly the unit cube; outputs are
    /// centred internally.
    ///
    /// # Errors
    ///
    /// * [`GpError::TooFewPoints`] with fewer than two observations,
    /// * [`GpError::DimensionMismatch`] when `x` and `y` lengths differ or
    ///   input dimensions are inconsistent,
    /// * [`GpError::NotPositiveDefinite`] when the kernel matrix cannot be
    ///   factorized (singular or non-finite).
    pub fn fit(x: &[Vec<f64>], y: &[f64]) -> Result<GaussianProcess, GpError> {
        if x.len() != y.len() {
            return Err(GpError::DimensionMismatch {
                detail: format!("{} inputs vs {} targets", x.len(), y.len()),
            });
        }
        let n = x.len();
        if n < 2 {
            return Err(GpError::TooFewPoints { got: n });
        }
        // Median pairwise squared distance as the (squared) lengthscale.
        let mut dists: Vec<f64> = Vec::with_capacity(n * (n - 1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                dists.push(sq_dist(&x[i], &x[j]));
            }
        }
        let lengthscale_sq = median_sq_dist(&mut dists);
        GaussianProcess::fit_with_lengthscale(x, y, lengthscale_sq)
    }

    /// Fits a GP at an explicitly chosen squared lengthscale, skipping the
    /// pairwise-distance heuristic. Used by incremental callers that cache
    /// distances themselves (see [`DistanceCache`]).
    ///
    /// # Errors
    ///
    /// Same taxonomy as [`GaussianProcess::fit`].
    pub fn fit_with_lengthscale(
        x: &[Vec<f64>],
        y: &[f64],
        lengthscale_sq: f64,
    ) -> Result<GaussianProcess, GpError> {
        if x.len() != y.len() {
            return Err(GpError::DimensionMismatch {
                detail: format!("{} inputs vs {} targets", x.len(), y.len()),
            });
        }
        let n = x.len();
        if n < 2 {
            return Err(GpError::TooFewPoints { got: n });
        }
        let dim = x[0].len();
        if let Some(bad) = x.iter().find(|p| p.len() != dim) {
            return Err(GpError::DimensionMismatch {
                detail: format!("input dims {} vs {}", bad.len(), dim),
            });
        }
        if x.iter().flatten().chain(y).any(|v| !v.is_finite()) {
            return Err(GpError::NonFiniteInput);
        }
        let lengthscale_sq = lengthscale_sq.max(1e-6);

        let mean_y = y.iter().sum::<f64>() / n as f64;
        let centred: Vec<f64> = y.iter().map(|v| v - mean_y).collect();
        let var_y = centred.iter().map(|v| v * v).sum::<f64>() / n as f64;
        let signal_var = var_y.max(1e-12);

        // Relative jitter equivalent to the classic absolute noise term
        // `signal_var * 1e-4 + 1e-10` after dividing K by signal_var.
        let jitter = 1e-4 + 1e-10 / signal_var;
        let c = Matrix::from_fn(n, n, |i, j| {
            let v = (-0.5 * sq_dist(&x[i], &x[j]) / lengthscale_sq).exp();
            if i == j {
                v + jitter
            } else {
                v
            }
        });
        let chol = c.cholesky().ok_or(GpError::NotPositiveDefinite)?;
        let mut gp = GaussianProcess {
            x: x.to_vec(),
            y: y.to_vec(),
            chol,
            alpha: Vec::new(),
            mean_y,
            signal_var,
            lengthscale_sq,
            jitter,
        };
        gp.refresh_targets();
        Ok(gp)
    }

    /// Appends one observation in O(n²) by bordering the existing
    /// Cholesky factor, keeping the current lengthscale frozen.
    ///
    /// Returns `false` — leaving the GP unchanged — when the extension is
    /// numerically unsafe (the bordered matrix loses positive
    /// definiteness, e.g. for a near-duplicate input); the caller should
    /// fall back to a full [`GaussianProcess::fit`].
    ///
    /// # Panics
    ///
    /// Panics if `x_new` has the wrong dimension.
    pub fn extend(&mut self, x_new: &[f64], y_new: f64) -> bool {
        assert_eq!(x_new.len(), self.x[0].len(), "dimension mismatch");
        let c: Vec<f64> = self
            .x
            .iter()
            .map(|xi| (-0.5 * sq_dist(xi, x_new) / self.lengthscale_sq).exp())
            .collect();
        let w = self.chol.solve_lower(&c);
        let d2 = 1.0 + self.jitter - w.iter().map(|v| v * v).sum::<f64>();
        // Guard well above zero: a tiny pivot makes the factor
        // ill-conditioned even when it technically exists.
        if !d2.is_finite() || d2 <= 1e-10 {
            return false;
        }
        self.chol.extend_lower(&w, d2.sqrt());
        self.x.push(x_new.to_vec());
        self.y.push(y_new);
        self.refresh_targets();
        true
    }

    /// Recomputes the target-dependent state (mean, signal variance,
    /// `alpha`) against the current factorization — O(n²).
    fn refresh_targets(&mut self) {
        let n = self.y.len();
        self.mean_y = self.y.iter().sum::<f64>() / n as f64;
        let centred: Vec<f64> = self.y.iter().map(|v| v - self.mean_y).collect();
        self.signal_var = (centred.iter().map(|v| v * v).sum::<f64>() / n as f64).max(1e-12);
        let tmp = self.chol.solve_lower(&centred);
        self.alpha = self.chol.solve_lower_transpose(&tmp);
    }

    /// Number of training points.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True when the GP has no training points (never constructed this
    /// way, but part of the `len`/`is_empty` contract).
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// The squared lengthscale currently in effect (frozen between fits).
    pub fn lengthscale_sq(&self) -> f64 {
        self.lengthscale_sq
    }

    /// Posterior mean and variance at `point`.
    ///
    /// # Panics
    ///
    /// Panics if `point` has the wrong dimension.
    pub fn predict(&self, point: &[f64]) -> (f64, f64) {
        assert_eq!(point.len(), self.x[0].len(), "dimension mismatch");
        let cstar: Vec<f64> = self
            .x
            .iter()
            .map(|xi| (-0.5 * sq_dist(xi, point) / self.lengthscale_sq).exp())
            .collect();
        let mean = self.mean_y + dot(&cstar, &self.alpha);
        let v = self.chol.solve_lower(&cstar);
        let var = (self.signal_var * (1.0 - v.iter().map(|x| x * x).sum::<f64>())).max(0.0);
        (mean, var)
    }

    /// Lower confidence bound `mean - beta * std` at `point`.
    pub fn lcb(&self, point: &[f64], beta: f64) -> f64 {
        let (m, v) = self.predict(point);
        m - beta * v.sqrt()
    }

    /// Kernel cross-correlation matrix between the training inputs and a
    /// batch of query points: entry `(i, j)` is
    /// `exp(-0.5·‖x_i − p_j‖²/ℓ²)`, i.e. bit-identical to `cstar[i]` as
    /// computed inside [`GaussianProcess::predict`] for query `j`.
    ///
    /// The matrix depends only on the training inputs and the
    /// lengthscale, so GPs that share both (the SMS-EGO per-objective
    /// surrogate pack trains every objective on the same encoded points
    /// at one shared lengthscale) can compute it once and reuse it via
    /// [`GaussianProcess::predict_batch_from_correlations`] — one
    /// `exp`-matrix for all objectives instead of one per objective.
    ///
    /// # Panics
    ///
    /// Panics if any query point has the wrong dimension.
    pub fn cross_correlations(&self, points: &[Vec<f64>]) -> Matrix {
        let dim = self.x[0].len();
        for p in points {
            assert_eq!(p.len(), dim, "dimension mismatch");
        }
        Matrix::from_fn(self.x.len(), points.len(), |i, j| {
            (-0.5 * sq_dist(&self.x[i], &points[j]) / self.lengthscale_sq).exp()
        })
    }

    /// Batched posterior `(mean, variance)` from a precomputed
    /// cross-correlation matrix (`n` training rows × `m` query columns),
    /// as produced by [`GaussianProcess::cross_correlations`] — by this
    /// GP, or by another GP with identical training inputs and
    /// lengthscale.
    ///
    /// Output `j` is bit-identical to `predict(p_j)`: means accumulate
    /// `corr[i][j]·alpha[i]` in ascending `i` (the same operation order
    /// as the scalar `dot`), variances come from the blocked multi-column
    /// triangular solve whose columns are bit-identical to per-column
    /// [`Matrix::solve_lower`], with the sum of squares likewise
    /// accumulated in ascending `i`. The speedup is purely structural:
    /// the Cholesky factor and `alpha` stream through the cache once per
    /// column block instead of once per candidate.
    ///
    /// # Panics
    ///
    /// Panics if `corr.rows()` differs from the training-set size.
    pub fn predict_batch_from_correlations(&self, corr: &Matrix) -> Vec<(f64, f64)> {
        let n = self.x.len();
        assert_eq!(corr.rows(), n, "correlation matrix has wrong row count");
        let m = corr.cols();
        // Means: every column's dot product with alpha, accumulated in
        // ascending row order so each partial sum matches the scalar
        // `dot(cstar, alpha)` bit-for-bit.
        let mut means = vec![0.0f64; m];
        for i in 0..n {
            let a = self.alpha[i];
            for (j, mean) in means.iter_mut().enumerate() {
                *mean += corr[(i, j)] * a;
            }
        }
        // Variances: v = L⁻¹·corr column-wise, then per-column Σv².
        let v = self.chol.solve_lower_columns(corr);
        let mut sumsq = vec![0.0f64; m];
        for i in 0..n {
            for (j, s) in sumsq.iter_mut().enumerate() {
                let w = v[(i, j)];
                *s += w * w;
            }
        }
        means
            .into_iter()
            .zip(sumsq)
            .map(|(acc, s)| (self.mean_y + acc, (self.signal_var * (1.0 - s)).max(0.0)))
            .collect()
    }

    /// Batched posterior mean and variance for a pool of query points —
    /// output `j` is bit-identical to `predict(&points[j])`.
    ///
    /// # Panics
    ///
    /// Panics if any query point has the wrong dimension.
    pub fn predict_batch(&self, points: &[Vec<f64>]) -> Vec<(f64, f64)> {
        self.predict_batch_from_correlations(&self.cross_correlations(points))
    }
}

/// Median of a scratch list of squared distances (via selection, O(m));
/// matches the sorted-middle convention with a floor of `1e-6`.
fn median_sq_dist(dists: &mut [f64]) -> f64 {
    if dists.is_empty() {
        return 1.0;
    }
    let mid = dists.len() / 2;
    let (_, m, _) = dists.select_nth_unstable_by(mid, |a, b| a.total_cmp(b));
    (*m).max(1e-6)
}

/// Incrementally maintained pairwise squared distances for the median
/// lengthscale heuristic.
///
/// Appending the `n`-th point costs O(n·d) instead of rebuilding all
/// O(n²) pairs, so a Bayesian-optimization loop can keep the heuristic
/// current without quadratic rescans per iteration.
#[derive(Debug, Clone, Default)]
pub struct DistanceCache {
    points: Vec<Vec<f64>>,
    dists: Vec<f64>,
}

impl DistanceCache {
    /// Creates an empty cache.
    pub fn new() -> DistanceCache {
        DistanceCache::default()
    }

    /// Appends a point, recording its distance to every existing point.
    pub fn push(&mut self, p: Vec<f64>) {
        for q in &self.points {
            self.dists.push(sq_dist(q, &p));
        }
        self.points.push(p);
    }

    /// Number of points recorded.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no point has been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Drops all recorded points and distances.
    pub fn clear(&mut self) {
        self.points.clear();
        self.dists.clear();
    }

    /// Median pairwise squared distance (1.0 when fewer than two points),
    /// floored at `1e-6` — the GP's squared-lengthscale heuristic.
    pub fn median_sq_dist(&self) -> f64 {
        let mut scratch = self.dists.clone();
        median_sq_dist(&mut scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid1d(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect()
    }

    #[test]
    fn interpolates_training_points() {
        let x = grid1d(8);
        let y: Vec<f64> = x.iter().map(|p| (4.0 * p[0]).sin()).collect();
        let gp = GaussianProcess::fit(&x, &y).unwrap();
        for (xi, yi) in x.iter().zip(&y) {
            let (m, v) = gp.predict(xi);
            assert!((m - yi).abs() < 1e-2, "mean {m} vs {yi}");
            assert!(v < 1e-2, "variance {v} at training point");
        }
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let x = vec![vec![0.0], vec![0.1], vec![0.2]];
        let y = vec![0.0, 0.1, 0.2];
        let gp = GaussianProcess::fit(&x, &y).unwrap();
        let (_, v_near) = gp.predict(&[0.1]);
        let (_, v_far) = gp.predict(&[5.0]);
        assert!(v_far > v_near);
    }

    #[test]
    fn prediction_reasonable_between_points() {
        let x = grid1d(16);
        let y: Vec<f64> = x.iter().map(|p| p[0] * p[0]).collect();
        let gp = GaussianProcess::fit(&x, &y).unwrap();
        let (m, _) = gp.predict(&[0.5]);
        assert!((m - 0.25).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn too_few_points_is_an_error() {
        assert!(matches!(
            GaussianProcess::fit(&[vec![0.0]], &[1.0]),
            Err(GpError::TooFewPoints { got: 1 })
        ));
        assert!(matches!(GaussianProcess::fit(&[], &[]), Err(GpError::TooFewPoints { got: 0 })));
    }

    #[test]
    fn mismatched_lengths_are_an_error() {
        let r = GaussianProcess::fit(&[vec![0.0], vec![1.0]], &[1.0]);
        assert!(matches!(r, Err(GpError::DimensionMismatch { .. })));
        let r =
            GaussianProcess::fit_with_lengthscale(&[vec![0.0], vec![1.0, 2.0]], &[1.0, 2.0], 0.5);
        assert!(matches!(r, Err(GpError::DimensionMismatch { .. })));
    }

    #[test]
    fn non_finite_training_data_is_an_error() {
        let x = vec![vec![0.0], vec![0.5], vec![1.0]];
        let y = vec![0.0, f64::NAN, 1.0];
        assert!(matches!(GaussianProcess::fit(&x, &y), Err(GpError::NonFiniteInput)));
        let x = vec![vec![0.0], vec![f64::INFINITY]];
        assert!(matches!(GaussianProcess::fit(&x, &[0.0, 1.0]), Err(GpError::NonFiniteInput)));
    }

    #[test]
    fn lcb_below_mean() {
        let x = grid1d(6);
        let y: Vec<f64> = x.iter().map(|p| p[0]).collect();
        let gp = GaussianProcess::fit(&x, &y).unwrap();
        let (m, _) = gp.predict(&[0.55]);
        assert!(gp.lcb(&[0.55], 2.0) <= m);
    }

    #[test]
    fn constant_targets_are_handled() {
        let x = grid1d(5);
        let y = vec![3.0; 5];
        let gp = GaussianProcess::fit(&x, &y).unwrap();
        let (m, _) = gp.predict(&[0.5]);
        assert!((m - 3.0).abs() < 1e-6);
    }

    #[test]
    fn len_reports_training_size() {
        let x = grid1d(5);
        let y = vec![0.0; 5];
        let gp = GaussianProcess::fit(&x, &y).unwrap();
        assert_eq!(gp.len(), 5);
        assert!(!gp.is_empty());
    }

    #[test]
    fn extend_matches_full_refit_at_same_lengthscale() {
        let x = grid1d(10);
        let y: Vec<f64> = x.iter().map(|p| (3.0 * p[0]).cos() + 0.5 * p[0]).collect();
        // Fit on the first 6 points, extend with the remaining 4.
        let mut inc = GaussianProcess::fit(&x[..6], &y[..6]).unwrap();
        let ls = inc.lengthscale_sq();
        for i in 6..10 {
            assert!(inc.extend(&x[i], y[i]), "extension failed at {i}");
        }
        let full = GaussianProcess::fit_with_lengthscale(&x, &y, ls).unwrap();
        for q in [0.05, 0.33, 0.61, 0.97] {
            let (mi, vi) = inc.predict(&[q]);
            let (mf, vf) = full.predict(&[q]);
            assert!((mi - mf).abs() < 1e-8, "mean {mi} vs {mf} at {q}");
            assert!((vi - vf).abs() < 1e-8, "var {vi} vs {vf} at {q}");
        }
        assert_eq!(inc.len(), 10);
    }

    #[test]
    fn extend_rejects_near_duplicate_without_corruption() {
        let x = vec![vec![0.0], vec![0.5], vec![1.0]];
        let y = vec![0.0, 1.0, 0.0];
        let mut gp = GaussianProcess::fit(&x, &y).unwrap();
        let before = gp.predict(&[0.25]);
        // A near-exact duplicate may be rejected; the GP must be unchanged
        // in that case.
        if !gp.extend(&[0.5 + 1e-15], 1.0) {
            let after = gp.predict(&[0.25]);
            assert_eq!(before, after);
            assert_eq!(gp.len(), 3);
        }
    }

    #[test]
    fn predict_batch_matches_scalar_predict_bitwise() {
        let x: Vec<Vec<f64>> =
            (0..9).map(|i| vec![i as f64 / 8.0, (i * i % 5) as f64 / 4.0]).collect();
        let y: Vec<f64> = x.iter().map(|p| (3.0 * p[0]).sin() + p[1] * p[1]).collect();
        let gp = GaussianProcess::fit(&x, &y).unwrap();
        // Pool larger than the solve's column block, including exact
        // training points (variance clamp at 0) and far-away queries.
        let pool: Vec<Vec<f64>> = (0..40)
            .map(|j| vec![(j as f64 * 0.37) % 1.3, (j as f64 * 0.51) % 1.1 - 0.2])
            .chain(x.iter().cloned())
            .collect();
        let batch = gp.predict_batch(&pool);
        assert_eq!(batch.len(), pool.len());
        for (p, (bm, bv)) in pool.iter().zip(&batch) {
            let (m, v) = gp.predict(p);
            assert_eq!(bm.to_bits(), m.to_bits(), "mean at {p:?}");
            assert_eq!(bv.to_bits(), v.to_bits(), "variance at {p:?}");
        }
    }

    #[test]
    fn shared_correlations_valid_across_gps_with_same_inputs() {
        // Two GPs on the same inputs and lengthscale but different
        // targets — the surrogate-pack invariant. One cross-correlation
        // matrix must serve both, bit-identically to their own.
        let x = grid1d(7);
        let y1: Vec<f64> = x.iter().map(|p| p[0] * p[0]).collect();
        let y2: Vec<f64> = x.iter().map(|p| (5.0 * p[0]).cos()).collect();
        let a = GaussianProcess::fit(&x, &y1).unwrap();
        let b = GaussianProcess::fit_with_lengthscale(&x, &y2, a.lengthscale_sq()).unwrap();
        let pool: Vec<Vec<f64>> = (0..11).map(|j| vec![j as f64 * 0.09 - 0.05]).collect();
        let corr = a.cross_correlations(&pool);
        let via_shared = b.predict_batch_from_correlations(&corr);
        for (p, got) in pool.iter().zip(&via_shared) {
            let direct = b.predict(p);
            assert_eq!(got.0.to_bits(), direct.0.to_bits());
            assert_eq!(got.1.to_bits(), direct.1.to_bits());
        }
    }

    #[test]
    fn predict_batch_empty_pool_is_empty() {
        let x = grid1d(4);
        let y = vec![0.0, 1.0, 0.5, 0.25];
        let gp = GaussianProcess::fit(&x, &y).unwrap();
        assert!(gp.predict_batch(&[]).is_empty());
    }

    #[test]
    fn distance_cache_matches_direct_median() {
        let pts: Vec<Vec<f64>> =
            (0..9).map(|i| vec![(i * i % 7) as f64 * 0.13, i as f64 * 0.1]).collect();
        let mut cache = DistanceCache::new();
        for p in &pts {
            cache.push(p.clone());
        }
        assert_eq!(cache.len(), 9);
        // Direct computation, seed convention: sort all pairs, take mid.
        let mut dists = Vec::new();
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                dists.push(sq_dist(&pts[i], &pts[j]));
            }
        }
        dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expect = dists[dists.len() / 2].max(1e-6);
        assert_eq!(cache.median_sq_dist(), expect);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.median_sq_dist(), 1.0);
    }

    #[test]
    fn fit_uses_median_heuristic() {
        let x = grid1d(7);
        let y: Vec<f64> = x.iter().map(|p| p[0]).collect();
        let gp = GaussianProcess::fit(&x, &y).unwrap();
        let mut cache = DistanceCache::new();
        for p in &x {
            cache.push(p.clone());
        }
        assert_eq!(gp.lengthscale_sq(), cache.median_sq_dist());
    }
}

//! Gaussian-process regression with a squared-exponential kernel:
//! an exact GP supporting incremental O(n²) updates and downdates, a
//! low-rank Nyström/DTC sparse GP for large archives
//! ([`SparseGaussianProcess`]), and the [`SurrogateMode`] switch that
//! selects between them (`AUTOPILOT_GP_SPARSE`).

use crate::error::GpError;
use crate::fastexp::{exp_slice, KernelExpMode};
use crate::linalg::{dot, sq_dist, Matrix};
use crate::par;
use autopilot_obs as obs;
use std::cell::RefCell;

/// Environment variable selecting the surrogate inference mode for the
/// SMS-EGO optimizer. Accepted values:
///
/// | value                        | meaning                                            |
/// |------------------------------|----------------------------------------------------|
/// | *(unset)*, `1`, `on`, `true` | default: exact below 256 points, sparse above      |
/// | `0`, `off`, `false`, `exact` | always exact (sliding-window) GPs                  |
/// | `N`                          | sparse past `N` points, `max(N/4, 16)` inducing    |
/// | `N:M`                        | sparse past `N` points with `M` inducing points    |
pub const GP_SPARSE_ENV: &str = "AUTOPILOT_GP_SPARSE";

/// Which surrogate the Bayesian-optimization loop trains as the archive
/// grows. Exact GP inference is O(n³) per refit and O(n²) per candidate
/// batch row; the sparse mode caps both at the inducing-point count `m`,
/// trading a bounded approximation error for archive-scale budgets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SurrogateMode {
    /// Always exact (sliding-window) GPs, regardless of archive size.
    Exact,
    /// Exact while the training window holds at most `threshold` points;
    /// past that, a [`SparseGaussianProcess`] with `inducing` inducing
    /// points trained on the *full* archive (no window).
    Sparse {
        /// Training-set size past which the sparse path engages.
        threshold: usize,
        /// Number of inducing points (clamped to the training size).
        inducing: usize,
    },
}

impl SurrogateMode {
    /// The default threshold/inducing configuration: exact below n≈256,
    /// 64 inducing points above.
    pub const fn default_sparse() -> SurrogateMode {
        SurrogateMode::Sparse { threshold: 256, inducing: 64 }
    }

    /// Reads the mode from [`GP_SPARSE_ENV`]; unset or unparsable values
    /// fall back to [`SurrogateMode::default_sparse`] (with a warn-level
    /// obs event for the unparsable case).
    ///
    /// The variable is captured **once per process** (via
    /// [`autopilot_obs::env_once`]); later env mutations warn once and
    /// are otherwise ignored. Per-job surrogate modes go through
    /// [`SmsEgoOptimizer::with_surrogate_mode`] instead.
    ///
    /// [`SmsEgoOptimizer::with_surrogate_mode`]: crate::SmsEgoOptimizer::with_surrogate_mode
    pub fn from_env() -> SurrogateMode {
        static CACHED: std::sync::OnceLock<SurrogateMode> = std::sync::OnceLock::new();
        // env_once re-checks the live environment for drift (warning
        // once) while pinning the value used for parsing.
        let raw = autopilot_obs::env_once(GP_SPARSE_ENV);
        *CACHED.get_or_init(|| {
            let raw = match raw {
                Some(v) => v,
                None => return SurrogateMode::default_sparse(),
            };
            match SurrogateMode::parse(&raw) {
                Some(mode) => mode,
                None => {
                    autopilot_obs::obs_warn!(
                        "gp: {GP_SPARSE_ENV}={raw:?} is not a recognized surrogate mode; \
                         using the default (sparse past 256 points)"
                    );
                    SurrogateMode::default_sparse()
                }
            }
        })
    }

    /// Parses the [`GP_SPARSE_ENV`] grammar; `None` for unrecognized
    /// input.
    pub fn parse(raw: &str) -> Option<SurrogateMode> {
        let v = raw.trim().to_ascii_lowercase();
        match v.as_str() {
            "" | "1" | "on" | "true" => Some(SurrogateMode::default_sparse()),
            "0" | "off" | "false" | "exact" => Some(SurrogateMode::Exact),
            _ => {
                if let Some((t, m)) = v.split_once(':') {
                    let threshold = t.parse::<usize>().ok()?.max(8);
                    let inducing = m.parse::<usize>().ok()?.max(2);
                    Some(SurrogateMode::Sparse { threshold, inducing })
                } else {
                    let threshold = v.parse::<usize>().ok()?.max(8);
                    Some(SurrogateMode::Sparse { threshold, inducing: (threshold / 4).max(16) })
                }
            }
        }
    }
}

/// The kernel exponent coefficient with the lengthscale division hoisted
/// out of the inner loops: every kernel entry is
/// `exp(sq_dist · scale)` with `scale = -0.5/ℓ²`. All kernel paths —
/// fit, extend, scalar predict, and the blocked panel — go through this
/// one formula, so they stay bit-identical to each other.
#[inline]
fn kernel_scale(lengthscale_sq: f64) -> f64 {
    -0.5 / lengthscale_sq
}

/// Tile width: a d×TILE transposed query block plus an n-row output
/// stripe of TILE f64s stays L1/L2-resident for the small d used here.
const PANEL_TILE: usize = 128;
/// Minimum panel entries worth handing to each parallel stripe worker;
/// below this, spawning a scoped thread costs more than it saves.
const PANEL_PAR_ENTRIES_PER_WORKER: usize = 8192;
/// Narrowest column stripe worth dispatching to its own worker.
const PANEL_MIN_STRIPE: usize = 16;

/// Reusable per-thread panel buffers: the dimension-major transposed
/// query tile and the output stripe being assembled. On the inline path
/// these persist across calls, so steady-state chunk scoring allocates
/// nothing for panel scratch; parallel-stripe workers are per-call
/// scoped threads, so theirs are taken by value into the reassembly.
struct PanelScratch {
    transpose: Vec<f64>,
    stripe: Vec<f64>,
}

std::thread_local! {
    static PANEL_SCRATCH: RefCell<PanelScratch> =
        const { RefCell::new(PanelScratch { transpose: Vec::new(), stripe: Vec::new() }) };
    /// Reusable kernel/solve vectors for the scalar predict and extend
    /// paths (`cstar` and `L⁻¹·cstar`); steady-state scalar queries
    /// allocate nothing per call.
    static VECTOR_SCRATCH: RefCell<(Vec<f64>, Vec<f64>)> =
        const { RefCell::new((Vec::new(), Vec::new())) };
}

/// Runs `f` with the thread's reusable kernel-vector scratch pair. Do
/// not call GP query methods from inside `f` — they borrow the same
/// thread-local pair.
fn with_kernel_scratch<R>(f: impl FnOnce(&mut Vec<f64>, &mut Vec<f64>) -> R) -> R {
    VECTOR_SCRATCH.with(|cell| {
        let (a, b) = &mut *cell.borrow_mut();
        f(a, b)
    })
}

/// Kernel correlation vector of one query `point` against `xs`, written
/// into a reusable buffer: squared distances accumulate in the same
/// ascending-dimension order as [`sq_dist`], then the exponential mode's
/// fused pass — element `i` is bit-identical to the legacy scalar
/// `(sq_dist(&xs[i], point) * scale).exp()` in `Exact` mode.
fn kernel_vector_into(
    xs: &[Vec<f64>],
    point: &[f64],
    scale: f64,
    mode: KernelExpMode,
    out: &mut Vec<f64>,
) {
    out.clear();
    out.extend(xs.iter().map(|xi| sq_dist(xi, point) * scale));
    exp_slice(out, mode);
}

/// Cache-blocked, fused distance+exp kernel panel: entry `(i, j)` is
/// `exp(‖rows[i] − cols[j]‖² · scale)` — in [`KernelExpMode::Exact`]
/// bit-identical to the scalar
/// `(sq_dist(&rows[i], &cols[j]) * scale).exp()`.
///
/// Large panels fan their column stripes out across
/// [`par::worker_count`] workers; see [`correlation_panel_with`] for the
/// determinism contract.
pub fn correlation_panel(
    rows: &[Vec<f64>],
    cols: &[Vec<f64>],
    scale: f64,
    mode: KernelExpMode,
) -> Matrix {
    correlation_panel_with(par::worker_count(), rows, cols, scale, mode)
}

/// [`correlation_panel`] with an explicit worker budget.
///
/// The panel is split into contiguous disjoint column stripes, each
/// assembled into a private buffer by one worker and scattered back in
/// stripe order. Every entry's arithmetic — ascending-dimension
/// accumulation in the same order as [`sq_dist`], one multiply by
/// `scale`, one exponential — depends only on its `(row, col)` pair;
/// tile and stripe boundaries never enter it. The output is therefore
/// **bit-identical at any worker count**, including the inline path
/// taken for small panels, for `workers <= 1`, and from inside a
/// [`par`] worker (where nested fan-out would oversubscribe the
/// machine).
///
/// Layout per stripe: the query points are transposed tile-by-tile into
/// dimension-major scratch rows, so the inner loop over a tile of
/// queries reads both operands contiguously and autovectorizes, and the
/// exponential pass runs over each finished row segment while it is
/// still cache-resident.
pub fn correlation_panel_with(
    workers: usize,
    rows: &[Vec<f64>],
    cols: &[Vec<f64>],
    scale: f64,
    mode: KernelExpMode,
) -> Matrix {
    let n = rows.len();
    let m = cols.len();
    let mut out = Matrix::zeros(n, m);
    if n == 0 || m == 0 {
        return out;
    }
    obs::add("bo.gp.panel.calls", 1);
    obs::add("bo.gp.panel.entries", (n * m) as u64);
    let stripes = panel_stripe_count(workers, n, m);
    if stripes <= 1 {
        obs::add("bo.gp.panel.inline", 1);
        PANEL_SCRATCH.with(|cell| {
            let s = &mut *cell.borrow_mut();
            panel_stripe(rows, cols, 0, m, scale, mode, s);
            scatter_stripe(&mut out, &s.stripe, 0, m);
        });
        return out;
    }
    obs::add("bo.gp.panel.parallel", 1);
    obs::add("bo.gp.panel.stripes", stripes as u64);
    obs::time("bo.gp.panel.assemble", || {
        // Balanced contiguous stripes covering 0..m, widest first so the
        // remainder lands on the leading stripes.
        let base = m / stripes;
        let extra = m % stripes;
        let mut bounds: Vec<(usize, usize)> = Vec::with_capacity(stripes);
        let mut c0 = 0;
        for sidx in 0..stripes {
            let c1 = c0 + base + usize::from(sidx < extra);
            bounds.push((c0, c1));
            c0 = c1;
        }
        let filled = par::parallel_map_with(stripes, &bounds, |_, &(c0, c1)| {
            PANEL_SCRATCH.with(|cell| {
                let s = &mut *cell.borrow_mut();
                panel_stripe(rows, cols, c0, c1, scale, mode, s);
                std::mem::take(&mut s.stripe)
            })
        });
        for (&(c0, c1), stripe) in bounds.iter().zip(&filled) {
            scatter_stripe(&mut out, stripe, c0, c1);
        }
    });
    out
}

/// How many column stripes a panel of `n×m` entries should fan out to:
/// capped by the worker budget, by keeping at least
/// [`PANEL_PAR_ENTRIES_PER_WORKER`] entries per worker, and by the
/// narrowest useful stripe width. One stripe means the inline path —
/// always the case from inside a [`par`] worker.
fn panel_stripe_count(workers: usize, n: usize, m: usize) -> usize {
    if workers <= 1 || par::in_worker() {
        return 1;
    }
    let by_work = (n * m) / PANEL_PAR_ENTRIES_PER_WORKER;
    let by_width = m / PANEL_MIN_STRIPE;
    workers.min(by_work).min(by_width).max(1)
}

/// Assembles panel columns `[c0, c1)` for every row into
/// `scratch.stripe` (row-major `n × (c1-c0)`), tile by tile.
fn panel_stripe(
    rows: &[Vec<f64>],
    cols: &[Vec<f64>],
    c0: usize,
    c1: usize,
    scale: f64,
    mode: KernelExpMode,
    scratch: &mut PanelScratch,
) {
    let d = rows[0].len();
    let width = c1 - c0;
    scratch.stripe.clear();
    scratch.stripe.resize(rows.len() * width, 0.0);
    let mut t0 = c0;
    while t0 < c1 {
        let t1 = (t0 + PANEL_TILE).min(c1);
        let w = t1 - t0;
        scratch.transpose.clear();
        scratch.transpose.resize(d * w, 0.0);
        for (k, trow) in scratch.transpose.chunks_exact_mut(w).enumerate() {
            for (slot, col) in trow.iter_mut().zip(&cols[t0..t1]) {
                *slot = col[k];
            }
        }
        for (i, xi) in rows.iter().enumerate() {
            let off = i * width + (t0 - c0);
            let orow = &mut scratch.stripe[off..off + w];
            for (k, &xik) in xi.iter().enumerate() {
                let qs = &scratch.transpose[k * w..k * w + w];
                for (acc, &q) in orow.iter_mut().zip(qs) {
                    let t = xik - q;
                    *acc += t * t;
                }
            }
            for v in orow.iter_mut() {
                *v *= scale;
            }
            exp_slice(orow, mode);
        }
        t0 = t1;
    }
}

/// Copies a finished `n × (c1-c0)` stripe buffer into columns
/// `[c0, c1)` of the output matrix.
fn scatter_stripe(out: &mut Matrix, stripe: &[f64], c0: usize, c1: usize) {
    let width = c1 - c0;
    for i in 0..out.rows() {
        out.row_mut(i)[c0..c1].copy_from_slice(&stripe[i * width..(i + 1) * width]);
    }
}

/// Shared input validation for the exact and sparse fits.
fn validate_training(x: &[Vec<f64>], y: &[f64]) -> Result<(), GpError> {
    if x.len() != y.len() {
        return Err(GpError::DimensionMismatch {
            detail: format!("{} inputs vs {} targets", x.len(), y.len()),
        });
    }
    let n = x.len();
    if n < 2 {
        return Err(GpError::TooFewPoints { got: n });
    }
    let dim = x[0].len();
    if let Some(bad) = x.iter().find(|p| p.len() != dim) {
        return Err(GpError::DimensionMismatch {
            detail: format!("input dims {} vs {}", bad.len(), dim),
        });
    }
    if x.iter().flatten().chain(y).any(|v| !v.is_finite()) {
        return Err(GpError::NonFiniteInput);
    }
    Ok(())
}

/// A fitted Gaussian process over normalized inputs in `[0, 1]^d`.
///
/// The paper uses GP surrogates with the squared-exponential (SE) kernel
/// for each objective; this implementation follows the standard
/// Rasmussen & Williams recipe (Cholesky of the kernel matrix, `alpha =
/// K^-1 y`). Hyperparameters are set by simple, robust heuristics: signal
/// variance from the sample variance, a shared isotropic lengthscale from
/// the median pairwise distance, and a small noise floor for numerical
/// stability.
///
/// # Incremental updates
///
/// The kernel matrix is held in *correlation form*: `K = σ²·C_j` where
/// `C_j` has unit diagonal plus a relative jitter. The Cholesky factor of
/// `C_j` depends only on the inputs and the lengthscale — not on the
/// targets or signal variance — so when a new observation arrives with
/// the lengthscale held fixed, [`GaussianProcess::extend`] borders the
/// factor with one triangular solve (O(n²)) instead of refactorizing
/// (O(n³)). Callers refresh the lengthscale periodically with a full
/// [`GaussianProcess::fit`]; between refits the frozen lengthscale is a
/// valid (slightly stale) hyperparameter choice, not an approximation of
/// the math: predictions from an extended GP are identical to a
/// fresh fit at the same lengthscale up to floating-point roundoff.
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    x: Vec<Vec<f64>>,
    y: Vec<f64>,
    /// Cholesky factor of the jittered correlation matrix `C_j`.
    chol: Matrix,
    /// `C_j⁻¹ (y - mean_y)` — note the σ² cancellation in the posterior
    /// mean: `k*ᵀK⁻¹(y-ȳ) = c*ᵀC_j⁻¹(y-ȳ)`.
    alpha: Vec<f64>,
    mean_y: f64,
    signal_var: f64,
    lengthscale_sq: f64,
    /// Relative diagonal jitter, frozen at factorization time.
    jitter: f64,
    /// Kernel exponential mode, frozen at fit time so every correlation
    /// this GP ever computes — fit panel, extend vector, predict vector,
    /// batched cross-correlations — uses one consistent exponential.
    exp_mode: KernelExpMode,
}

impl GaussianProcess {
    /// Fits a GP to `(x, y)` observations.
    ///
    /// Inputs should be normalized to roughly the unit cube; outputs are
    /// centred internally.
    ///
    /// # Errors
    ///
    /// * [`GpError::TooFewPoints`] with fewer than two observations,
    /// * [`GpError::DimensionMismatch`] when `x` and `y` lengths differ or
    ///   input dimensions are inconsistent,
    /// * [`GpError::NotPositiveDefinite`] when the kernel matrix cannot be
    ///   factorized (singular or non-finite).
    pub fn fit(x: &[Vec<f64>], y: &[f64]) -> Result<GaussianProcess, GpError> {
        if x.len() != y.len() {
            return Err(GpError::DimensionMismatch {
                detail: format!("{} inputs vs {} targets", x.len(), y.len()),
            });
        }
        let n = x.len();
        if n < 2 {
            return Err(GpError::TooFewPoints { got: n });
        }
        // Median pairwise squared distance as the (squared) lengthscale.
        let mut dists: Vec<f64> = Vec::with_capacity(n * (n - 1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                dists.push(sq_dist(&x[i], &x[j]));
            }
        }
        let lengthscale_sq = median_sq_dist(&mut dists);
        GaussianProcess::fit_with_lengthscale(x, y, lengthscale_sq)
    }

    /// Fits a GP at an explicitly chosen squared lengthscale, skipping the
    /// pairwise-distance heuristic. Used by incremental callers that cache
    /// distances themselves (see [`DistanceCache`]).
    ///
    /// # Errors
    ///
    /// Same taxonomy as [`GaussianProcess::fit`].
    pub fn fit_with_lengthscale(
        x: &[Vec<f64>],
        y: &[f64],
        lengthscale_sq: f64,
    ) -> Result<GaussianProcess, GpError> {
        GaussianProcess::fit_with_lengthscale_mode(x, y, lengthscale_sq, KernelExpMode::Exact)
    }

    /// [`GaussianProcess::fit_with_lengthscale`] with an explicit kernel
    /// exponential mode; the mode is frozen into the GP so every later
    /// query uses the same exponential as the fit-time factorization.
    ///
    /// # Errors
    ///
    /// Same taxonomy as [`GaussianProcess::fit`].
    pub fn fit_with_lengthscale_mode(
        x: &[Vec<f64>],
        y: &[f64],
        lengthscale_sq: f64,
        exp_mode: KernelExpMode,
    ) -> Result<GaussianProcess, GpError> {
        validate_training(x, y)?;
        let n = x.len();
        let lengthscale_sq = lengthscale_sq.max(1e-6);

        let mean_y = y.iter().sum::<f64>() / n as f64;
        let centred: Vec<f64> = y.iter().map(|v| v - mean_y).collect();
        let var_y = centred.iter().map(|v| v * v).sum::<f64>() / n as f64;
        let signal_var = var_y.max(1e-12);

        // Relative jitter equivalent to the classic absolute noise term
        // `signal_var * 1e-4 + 1e-10` after dividing K by signal_var.
        let jitter = 1e-4 + 1e-10 / signal_var;
        let mut c = correlation_panel(x, x, kernel_scale(lengthscale_sq), exp_mode);
        for i in 0..n {
            c[(i, i)] += jitter;
        }
        let chol = c.cholesky().ok_or(GpError::NotPositiveDefinite)?;
        let mut gp = GaussianProcess {
            x: x.to_vec(),
            y: y.to_vec(),
            chol,
            alpha: Vec::new(),
            mean_y,
            signal_var,
            lengthscale_sq,
            jitter,
            exp_mode,
        };
        gp.refresh_targets();
        Ok(gp)
    }

    /// Appends one observation in O(n²) by bordering the existing
    /// Cholesky factor, keeping the current lengthscale frozen.
    ///
    /// Returns `false` — leaving the GP unchanged — when the extension is
    /// numerically unsafe (the bordered matrix loses positive
    /// definiteness, e.g. for a near-duplicate input); the caller should
    /// fall back to a full [`GaussianProcess::fit`].
    ///
    /// # Panics
    ///
    /// Panics if `x_new` has the wrong dimension.
    pub fn extend(&mut self, x_new: &[f64], y_new: f64) -> bool {
        assert_eq!(x_new.len(), self.x[0].len(), "dimension mismatch");
        let scale = kernel_scale(self.lengthscale_sq);
        let ok = with_kernel_scratch(|c, w| {
            kernel_vector_into(&self.x, x_new, scale, self.exp_mode, c);
            self.chol.solve_lower_into(c, w);
            let d2 = 1.0 + self.jitter - w.iter().map(|v| v * v).sum::<f64>();
            // Guard well above zero: a tiny pivot makes the factor
            // ill-conditioned even when it technically exists.
            if !d2.is_finite() || d2 <= 1e-10 {
                return false;
            }
            self.chol.extend_lower(w, d2.sqrt());
            true
        });
        if !ok {
            return false;
        }
        self.x.push(x_new.to_vec());
        self.y.push(y_new);
        self.refresh_targets();
        true
    }

    /// Replaces every training target in place, reusing the existing
    /// Cholesky factorization — O(n²) instead of the O(n³) refit.
    ///
    /// The factor depends only on the inputs and the lengthscale, so a
    /// wholesale target change (the BO loop renormalizes all targets
    /// when the archive's objective ranges move) only needs the
    /// target-dependent state recomputed. The relative jitter stays
    /// frozen at its factorization-time value, exactly as it does across
    /// [`GaussianProcess::extend`] calls.
    ///
    /// Returns `false` — leaving the GP unchanged — when `y` has the
    /// wrong length or contains non-finite values.
    pub fn retarget(&mut self, y: &[f64]) -> bool {
        if y.len() != self.y.len() || y.iter().any(|v| !v.is_finite()) {
            return false;
        }
        self.y.clear();
        self.y.extend_from_slice(y);
        self.refresh_targets();
        true
    }

    /// Removes the *oldest* training point in O(n²) by downdating the
    /// Cholesky factor (see [`Matrix::delete_lower_first`]), keeping the
    /// current lengthscale frozen. This is how the BO loop slides its
    /// training window forward without refactorizing.
    ///
    /// Returns `false` — leaving the GP unchanged — when fewer than
    /// three points remain (a GP needs two) or the downdate degenerates
    /// numerically.
    pub fn drop_oldest(&mut self) -> bool {
        if self.x.len() <= 2 || !self.chol.delete_lower_first() {
            return false;
        }
        self.x.remove(0);
        self.y.remove(0);
        self.refresh_targets();
        true
    }

    /// Truncates the GP back to its first `n` training points.
    ///
    /// Because [`Matrix::extend_lower`] never rewrites the leading block
    /// of the factor, truncation is the *bitwise-exact* inverse of a
    /// sequence of [`GaussianProcess::extend`] calls: truncating an
    /// extended GP back to its pre-extension size and re-extending with
    /// the same points reproduces the factor — and therefore every
    /// prediction — bit for bit.
    ///
    /// Returns `false` — leaving the GP unchanged — when `n < 2` or `n`
    /// exceeds the training size.
    pub fn truncate(&mut self, n: usize) -> bool {
        if n < 2 || n > self.x.len() {
            return false;
        }
        self.chol.truncate_lower(n);
        self.x.truncate(n);
        self.y.truncate(n);
        self.refresh_targets();
        true
    }

    /// Recomputes the target-dependent state (mean, signal variance,
    /// `alpha`) against the current factorization — O(n²).
    fn refresh_targets(&mut self) {
        let n = self.y.len();
        self.mean_y = self.y.iter().sum::<f64>() / n as f64;
        let centred: Vec<f64> = self.y.iter().map(|v| v - self.mean_y).collect();
        self.signal_var = (centred.iter().map(|v| v * v).sum::<f64>() / n as f64).max(1e-12);
        let tmp = self.chol.solve_lower(&centred);
        self.alpha = self.chol.solve_lower_transpose(&tmp);
    }

    /// Number of training points.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True when the GP has no training points (never constructed this
    /// way, but part of the `len`/`is_empty` contract).
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// The squared lengthscale currently in effect (frozen between fits).
    pub fn lengthscale_sq(&self) -> f64 {
        self.lengthscale_sq
    }

    /// The kernel exponential mode frozen at fit time.
    pub fn exp_mode(&self) -> KernelExpMode {
        self.exp_mode
    }

    /// Posterior mean and variance at `point`.
    ///
    /// # Panics
    ///
    /// Panics if `point` has the wrong dimension.
    pub fn predict(&self, point: &[f64]) -> (f64, f64) {
        assert_eq!(point.len(), self.x[0].len(), "dimension mismatch");
        let scale = kernel_scale(self.lengthscale_sq);
        with_kernel_scratch(|cstar, v| {
            kernel_vector_into(&self.x, point, scale, self.exp_mode, cstar);
            let mean = self.mean_y + dot(cstar, &self.alpha);
            self.chol.solve_lower_into(cstar, v);
            let var = (self.signal_var * (1.0 - v.iter().map(|x| x * x).sum::<f64>())).max(0.0);
            (mean, var)
        })
    }

    /// Lower confidence bound `mean - beta * std` at `point`.
    pub fn lcb(&self, point: &[f64], beta: f64) -> f64 {
        let (m, v) = self.predict(point);
        m - beta * v.sqrt()
    }

    /// Kernel cross-correlation matrix between the training inputs and a
    /// batch of query points: entry `(i, j)` is
    /// `exp(-0.5·‖x_i − p_j‖²/ℓ²)`, i.e. bit-identical to `cstar[i]` as
    /// computed inside [`GaussianProcess::predict`] for query `j`.
    ///
    /// The matrix depends only on the training inputs and the
    /// lengthscale, so GPs that share both (the SMS-EGO per-objective
    /// surrogate pack trains every objective on the same encoded points
    /// at one shared lengthscale) can compute it once and reuse it via
    /// [`GaussianProcess::predict_batch_from_correlations`] — one
    /// `exp`-matrix for all objectives instead of one per objective.
    ///
    /// # Panics
    ///
    /// Panics if any query point has the wrong dimension.
    pub fn cross_correlations(&self, points: &[Vec<f64>]) -> Matrix {
        let dim = self.x[0].len();
        for p in points {
            assert_eq!(p.len(), dim, "dimension mismatch");
        }
        correlation_panel(&self.x, points, kernel_scale(self.lengthscale_sq), self.exp_mode)
    }

    /// Batched posterior `(mean, variance)` from a precomputed
    /// cross-correlation matrix (`n` training rows × `m` query columns),
    /// as produced by [`GaussianProcess::cross_correlations`] — by this
    /// GP, or by another GP with identical training inputs and
    /// lengthscale.
    ///
    /// Output `j` is bit-identical to `predict(p_j)`: means accumulate
    /// `corr[i][j]·alpha[i]` in ascending `i` (the same operation order
    /// as the scalar `dot`), variances come from the blocked multi-column
    /// triangular solve whose columns are bit-identical to per-column
    /// [`Matrix::solve_lower`], with the sum of squares likewise
    /// accumulated in ascending `i`. The speedup is purely structural:
    /// the Cholesky factor and `alpha` stream through the cache once per
    /// column block instead of once per candidate.
    ///
    /// # Panics
    ///
    /// Panics if `corr.rows()` differs from the training-set size.
    pub fn predict_batch_from_correlations(&self, corr: &Matrix) -> Vec<(f64, f64)> {
        let n = self.x.len();
        assert_eq!(corr.rows(), n, "correlation matrix has wrong row count");
        let m = corr.cols();
        // Means: every column's dot product with alpha, accumulated in
        // ascending row order so each partial sum matches the scalar
        // `dot(cstar, alpha)` bit-for-bit.
        let mut means = vec![0.0f64; m];
        for i in 0..n {
            let a = self.alpha[i];
            for (mean, &c) in means.iter_mut().zip(corr.row(i)) {
                *mean += c * a;
            }
        }
        // Variances: v = L⁻¹·corr column-wise, then per-column Σv².
        let v = self.chol.solve_lower_columns(corr);
        let mut sumsq = vec![0.0f64; m];
        for i in 0..n {
            for (s, &w) in sumsq.iter_mut().zip(v.row(i)) {
                *s += w * w;
            }
        }
        means
            .into_iter()
            .zip(sumsq)
            .map(|(acc, s)| (self.mean_y + acc, (self.signal_var * (1.0 - s)).max(0.0)))
            .collect()
    }

    /// Batched posterior mean and variance for a pool of query points —
    /// output `j` is bit-identical to `predict(&points[j])`.
    ///
    /// # Panics
    ///
    /// Panics if any query point has the wrong dimension.
    pub fn predict_batch(&self, points: &[Vec<f64>]) -> Vec<(f64, f64)> {
        self.predict_batch_from_correlations(&self.cross_correlations(points))
    }
}

/// Ridge added to the inducing correlation matrix `C_mm` before
/// factorization — far below the observation noise, just enough to keep
/// near-duplicate inducing points factorizable.
const INDUCING_RIDGE: f64 = 1e-8;

/// A low-rank sparse Gaussian process (Nyström / inducing-point, the DTC
/// approximation of Quiñonero-Candela & Rasmussen 2005) over normalized
/// inputs, held in the same correlation form as [`GaussianProcess`].
///
/// With `m` inducing points `Z` chosen deterministically from the `n`
/// training inputs (greedy farthest-point, see
/// [`SparseGaussianProcess::fit_with_lengthscale`]), the training
/// correlations `C_nm` enter only through the `m×m` system
/// `A = C_mm + λ⁻¹·C_nmᵀC_nm` (λ is the relative noise, playing the
/// exact GP's jitter role). Predictions then cost O(m) dot products and
/// two O(m²) triangular solves per query:
///
/// * mean: `ȳ + k_xᵀ·w` with `w = λ⁻¹·A⁻¹·C_nmᵀ(y − ȳ)`,
/// * variance: `σ²·(1 − ‖L_mm⁻¹k_x‖² + ‖L_A⁻¹k_x‖²)`, clamped at zero,
///
/// where `k_x` is the query's correlation vector against `Z`. Fitting is
/// O(n·m²), appending one observation is O(m²) (a rank-1 Cholesky
/// update of `L_A` plus an O(n·m) weight refresh), and a wholesale
/// target change ([`SparseGaussianProcess::retarget`]) is O(n·m). With
/// `Z` equal to the full training set the approximation is exact: DTC
/// then reproduces the exact GP's noisy posterior identically (up to the
/// tiny `C_mm` ridge), which is the accuracy contract the property tests
/// pin down.
///
/// The variance depends on the target through the relative noise λ
/// (scaled by each objective's signal variance) and through `L_A`, so a
/// per-objective surrogate pack cannot share one variance computation
/// across objectives. What the pack *does* share is the candidate
/// correlation panel against `Z`: the panel depends only on the
/// inducing set, the lengthscale, and the exponential mode — all frozen
/// between full refits — so the acquisition loop builds it once per
/// candidate pool and feeds every objective's
/// [`SparseGaussianProcess::predict_batch_from_correlations`] from it.
#[derive(Debug, Clone)]
pub struct SparseGaussianProcess {
    /// Inducing inputs `Z` (clones of selected training points).
    inducing: Vec<Vec<f64>>,
    /// Training-to-inducing correlations `C_nm` (kept for retargeting).
    cnm: Matrix,
    y: Vec<f64>,
    /// Cholesky factor of `C_mm + INDUCING_RIDGE·I`.
    l_mm: Matrix,
    /// Cholesky factor of `A = C_mm + ridge·I + λ⁻¹·C_nmᵀC_nm`.
    l_a: Matrix,
    /// Posterior mean weights `λ⁻¹·A⁻¹·C_nmᵀ(y − ȳ)`.
    w: Vec<f64>,
    /// Cholesky factor `L_D` of the PSD variance form
    /// `D = C_mm⁻¹ − A⁻¹` (plus [`INDUCING_RIDGE`]·I), so the posterior
    /// variance is `σ²(1 − ‖L_Dᵀc‖²)` — one dependency-free triangular
    /// product per query instead of two triangular solves. `None` when
    /// `D` is too close to singular to factor; predictions then fall
    /// back to the solve-based form.
    var_form_l: Option<Matrix>,
    mean_y: f64,
    signal_var: f64,
    lengthscale_sq: f64,
    /// Relative observation noise λ, frozen at factorization time.
    noise: f64,
    /// Kernel exponential mode, frozen at fit time (see
    /// [`GaussianProcess`]'s field of the same name).
    exp_mode: KernelExpMode,
}

impl SparseGaussianProcess {
    /// Fits a sparse GP with at most `inducing` inducing points, using
    /// the same median-pairwise-distance lengthscale heuristic as
    /// [`GaussianProcess::fit`].
    ///
    /// # Errors
    ///
    /// Same taxonomy as [`GaussianProcess::fit`].
    pub fn fit(
        x: &[Vec<f64>],
        y: &[f64],
        inducing: usize,
    ) -> Result<SparseGaussianProcess, GpError> {
        validate_training(x, y)?;
        let n = x.len();
        let mut dists: Vec<f64> = Vec::with_capacity(n * (n - 1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                dists.push(sq_dist(&x[i], &x[j]));
            }
        }
        let lengthscale_sq = median_sq_dist(&mut dists);
        SparseGaussianProcess::fit_with_lengthscale(x, y, lengthscale_sq, inducing)
    }

    /// Fits a sparse GP at an explicitly chosen squared lengthscale.
    ///
    /// Inducing points are selected deterministically from the training
    /// inputs by greedy farthest-point traversal: start from index 0,
    /// repeatedly take the point with the largest squared distance to
    /// the chosen set (first maximum wins on ties), and stop early when
    /// every remaining point duplicates a chosen one. The selection
    /// depends only on the training inputs, so refits over the same
    /// archive are reproducible bit-for-bit.
    ///
    /// # Errors
    ///
    /// Same taxonomy as [`GaussianProcess::fit`].
    pub fn fit_with_lengthscale(
        x: &[Vec<f64>],
        y: &[f64],
        lengthscale_sq: f64,
        inducing: usize,
    ) -> Result<SparseGaussianProcess, GpError> {
        SparseGaussianProcess::fit_with_lengthscale_mode(
            x,
            y,
            lengthscale_sq,
            inducing,
            KernelExpMode::Exact,
        )
    }

    /// [`SparseGaussianProcess::fit_with_lengthscale`] with an explicit
    /// kernel exponential mode, frozen into the GP for every later query.
    ///
    /// # Errors
    ///
    /// Same taxonomy as [`GaussianProcess::fit`].
    pub fn fit_with_lengthscale_mode(
        x: &[Vec<f64>],
        y: &[f64],
        lengthscale_sq: f64,
        inducing: usize,
        exp_mode: KernelExpMode,
    ) -> Result<SparseGaussianProcess, GpError> {
        validate_training(x, y)?;
        let n = x.len();
        let lengthscale_sq = lengthscale_sq.max(1e-6);
        let scale = kernel_scale(lengthscale_sq);

        let mean_y = y.iter().sum::<f64>() / n as f64;
        let centred: Vec<f64> = y.iter().map(|v| v - mean_y).collect();
        let signal_var = (centred.iter().map(|v| v * v).sum::<f64>() / n as f64).max(1e-12);
        let noise = 1e-4 + 1e-10 / signal_var;

        let inducing = select_inducing(x, inducing.clamp(2, n));
        let m = inducing.len();
        let cnm = correlation_panel(x, &inducing, scale, exp_mode);
        let mut cmm = correlation_panel(&inducing, &inducing, scale, exp_mode);
        for i in 0..m {
            cmm[(i, i)] += INDUCING_RIDGE;
        }
        let l_mm = cmm.cholesky().ok_or(GpError::NotPositiveDefinite)?;
        let b = cnm.gram();
        let a = Matrix::from_fn(m, m, |i, j| cmm[(i, j)] + b[(i, j)] / noise);
        let l_a = a.cholesky().ok_or(GpError::NotPositiveDefinite)?;
        let var_form_l = variance_form(&l_mm, &l_a);

        let mut gp = SparseGaussianProcess {
            inducing,
            cnm,
            y: y.to_vec(),
            l_mm,
            l_a,
            w: Vec::new(),
            var_form_l,
            mean_y,
            signal_var,
            lengthscale_sq,
            noise,
            exp_mode,
        };
        gp.refresh_targets();
        Ok(gp)
    }

    /// Recomputes the target-dependent state (mean, signal variance, and
    /// the posterior weights `w`) against the current factorizations —
    /// O(n·m + m²). The noise stays frozen, mirroring the exact GP's
    /// frozen jitter.
    fn refresh_targets(&mut self) {
        let n = self.y.len();
        self.mean_y = self.y.iter().sum::<f64>() / n as f64;
        let centred: Vec<f64> = self.y.iter().map(|v| v - self.mean_y).collect();
        self.signal_var = (centred.iter().map(|v| v * v).sum::<f64>() / n as f64).max(1e-12);
        let t = self.cnm.transpose_mul_vec(&centred);
        let u = self.l_a.solve_lower(&t);
        let v = self.l_a.solve_lower_transpose(&u);
        self.w = v.into_iter().map(|wi| wi / self.noise).collect();
    }

    /// Number of training points.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True when the GP has no training points (never constructed this
    /// way, but part of the `len`/`is_empty` contract).
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Number of inducing points actually in use.
    pub fn inducing_count(&self) -> usize {
        self.inducing.len()
    }

    /// The squared lengthscale currently in effect (frozen between fits).
    pub fn lengthscale_sq(&self) -> f64 {
        self.lengthscale_sq
    }

    /// The kernel exponential mode frozen at fit time.
    pub fn exp_mode(&self) -> KernelExpMode {
        self.exp_mode
    }

    /// Posterior mean and variance at `point`.
    ///
    /// # Panics
    ///
    /// Panics if `point` has the wrong dimension.
    pub fn predict(&self, point: &[f64]) -> (f64, f64) {
        assert_eq!(point.len(), self.inducing[0].len(), "dimension mismatch");
        let scale = kernel_scale(self.lengthscale_sq);
        with_kernel_scratch(|k, q| {
            kernel_vector_into(&self.inducing, point, scale, self.exp_mode, k);
            let mean = self.mean_y + dot(k, &self.w);
            let var = match &self.var_form_l {
                Some(ld) => {
                    // Same accumulation order as the batched path: for each
                    // output row i, sum L_D[k][i]·c[k] over ascending k ≥ i,
                    // then square-sum over ascending i — bit-identical to
                    // `variances_from_correlations` column j.
                    let m = k.len();
                    let mut quad = 0.0;
                    for i in 0..m {
                        let mut t = 0.0;
                        for (kk, ck) in k.iter().enumerate().skip(i) {
                            t += ld[(kk, i)] * ck;
                        }
                        quad += t * t;
                    }
                    (self.signal_var * (1.0 - quad)).max(0.0)
                }
                None => {
                    // Rare fallback when the variance form failed to
                    // factor; one of the two solves still allocates.
                    self.l_mm.solve_lower_into(k, q);
                    let s = self.l_a.solve_lower(k);
                    (self.signal_var
                        * (1.0 - q.iter().map(|v| v * v).sum::<f64>()
                            + s.iter().map(|v| v * v).sum::<f64>()))
                    .max(0.0)
                }
            };
            (mean, var)
        })
    }

    /// Lower confidence bound `mean - beta * std` at `point`.
    pub fn lcb(&self, point: &[f64], beta: f64) -> f64 {
        let (m, v) = self.predict(point);
        m - beta * v.sqrt()
    }

    /// Kernel correlation matrix between the *inducing* inputs and a
    /// batch of query points (`m` inducing rows × query columns) — the
    /// sparse analogue of [`GaussianProcess::cross_correlations`].
    /// Shareable across a surrogate pack with identical inducing sets
    /// and lengthscale.
    ///
    /// # Panics
    ///
    /// Panics if any query point has the wrong dimension.
    pub fn cross_correlations(&self, points: &[Vec<f64>]) -> Matrix {
        let dim = self.inducing[0].len();
        for p in points {
            assert_eq!(p.len(), dim, "dimension mismatch");
        }
        correlation_panel(&self.inducing, points, kernel_scale(self.lengthscale_sq), self.exp_mode)
    }

    /// Batched posterior means from a precomputed inducing-correlation
    /// matrix; output `j` is bit-identical to `predict(p_j).0`.
    ///
    /// # Panics
    ///
    /// Panics if `corr.rows()` differs from the inducing count.
    pub fn means_from_correlations(&self, corr: &Matrix) -> Vec<f64> {
        let m = self.inducing.len();
        assert_eq!(corr.rows(), m, "correlation matrix has wrong row count");
        let cols = corr.cols();
        let mut means = vec![0.0f64; cols];
        for i in 0..m {
            let wi = self.w[i];
            for (mean, &c) in means.iter_mut().zip(corr.row(i)) {
                *mean += c * wi;
            }
        }
        for mean in &mut means {
            *mean += self.mean_y;
        }
        means
    }

    /// Batched posterior variances from a precomputed
    /// inducing-correlation matrix; output `j` is bit-identical to
    /// `predict(p_j).1`. The result is target-independent, so one call
    /// serves every objective GP in a pack sharing inducing inputs and
    /// lengthscale.
    ///
    /// # Panics
    ///
    /// Panics if `corr.rows()` differs from the inducing count.
    pub fn variances_from_correlations(&self, corr: &Matrix) -> Vec<f64> {
        let m = self.inducing.len();
        assert_eq!(corr.rows(), m, "correlation matrix has wrong row count");
        let cols = corr.cols();
        if let Some(ld) = &self.var_form_l {
            // One fused triangular product against the precomputed PSD
            // form instead of two triangular solves — half the flops, no
            // sequential dependency between rows, and no intermediate
            // `m×cols` matrix (the quadratic form is squared into the
            // output as each product row is produced).
            let quad = ld.transpose_mul_sumsq_columns(corr);
            return quad.into_iter().map(|qv| (self.signal_var * (1.0 - qv)).max(0.0)).collect();
        }
        let q = self.l_mm.solve_lower_columns(corr);
        let s = self.l_a.solve_lower_columns(corr);
        let mut qss = vec![0.0f64; cols];
        let mut sss = vec![0.0f64; cols];
        for i in 0..m {
            for (acc, &v) in qss.iter_mut().zip(q.row(i)) {
                *acc += v * v;
            }
            for (acc, &v) in sss.iter_mut().zip(s.row(i)) {
                *acc += v * v;
            }
        }
        qss.into_iter()
            .zip(sss)
            .map(|(qv, sv)| (self.signal_var * (1.0 - qv + sv)).max(0.0))
            .collect()
    }

    /// Batched posterior `(mean, variance)` from a precomputed
    /// inducing-correlation matrix.
    ///
    /// # Panics
    ///
    /// Panics if `corr.rows()` differs from the inducing count.
    pub fn predict_batch_from_correlations(&self, corr: &Matrix) -> Vec<(f64, f64)> {
        self.means_from_correlations(corr)
            .into_iter()
            .zip(self.variances_from_correlations(corr))
            .collect()
    }

    /// Batched posterior mean and variance for a pool of query points —
    /// output `j` is bit-identical to `predict(&points[j])`.
    ///
    /// # Panics
    ///
    /// Panics if any query point has the wrong dimension.
    pub fn predict_batch(&self, points: &[Vec<f64>]) -> Vec<(f64, f64)> {
        self.predict_batch_from_correlations(&self.cross_correlations(points))
    }

    /// Appends one observation in O(m²) + O(n·m): the new point's
    /// inducing correlations `c` enter `A` as the rank-1 term
    /// `λ⁻¹·c·cᵀ` (an *additive* Cholesky update of `L_A`, so positive
    /// definiteness is preserved unconditionally), and the posterior
    /// weights are refreshed against the stored `C_nm`. The inducing
    /// set, lengthscale, and noise stay frozen until the next milestone
    /// refit.
    ///
    /// Returns `false` — leaving the GP unchanged — on non-finite input
    /// or a numerically degenerate update.
    ///
    /// # Panics
    ///
    /// Panics if `x_new` has the wrong dimension.
    pub fn extend(&mut self, x_new: &[f64], y_new: f64) -> bool {
        assert_eq!(x_new.len(), self.inducing[0].len(), "dimension mismatch");
        if !y_new.is_finite() || x_new.iter().any(|v| !v.is_finite()) {
            return false;
        }
        let scale = kernel_scale(self.lengthscale_sq);
        let inv_sqrt_noise = 1.0 / self.noise.sqrt();
        let ok = with_kernel_scratch(|c, v| {
            kernel_vector_into(&self.inducing, x_new, scale, self.exp_mode, c);
            v.clear();
            v.extend(c.iter().map(|ci| ci * inv_sqrt_noise));
            if !self.l_a.rank1_update_lower(v) {
                return false;
            }
            self.cnm.push_row(c);
            true
        });
        if !ok {
            return false;
        }
        self.y.push(y_new);
        self.var_form_l = variance_form(&self.l_mm, &self.l_a);
        self.refresh_targets();
        true
    }

    /// Replaces every training target in place, reusing both
    /// factorizations — O(n·m) instead of the O(n·m²) refit. The sparse
    /// analogue of [`GaussianProcess::retarget`].
    ///
    /// Returns `false` — leaving the GP unchanged — when `y` has the
    /// wrong length or contains non-finite values.
    pub fn retarget(&mut self, y: &[f64]) -> bool {
        if y.len() != self.y.len() || y.iter().any(|v| !v.is_finite()) {
            return false;
        }
        self.y.clear();
        self.y.extend_from_slice(y);
        self.refresh_targets();
        true
    }
}

/// Cholesky factor of the sparse posterior's variance form
/// `D = C_mm⁻¹ − A⁻¹` (ridged by [`INDUCING_RIDGE`]). `A ⪰ C_mm` makes
/// `D` PSD, so the factorization exists up to roundoff; `None` signals
/// the caller to fall back to the solve-based variance. O(m³) — paid
/// once per fit/extend, amortized over every subsequent batched query.
fn variance_form(l_mm: &Matrix, l_a: &Matrix) -> Option<Matrix> {
    let m = l_mm.rows();
    // C_mm⁻¹ = XᵀX and A⁻¹ = YᵀY for X = L_mm⁻¹, Y = L_A⁻¹.
    let gx = l_mm.invert_lower().gram();
    let gy = l_a.invert_lower().gram();
    let d = Matrix::from_fn(m, m, |i, j| {
        gx[(i, j)] - gy[(i, j)] + if i == j { INDUCING_RIDGE } else { 0.0 }
    });
    d.cholesky()
}

/// Greedy farthest-point inducing selection: deterministic, O(n·m·d),
/// first maximum wins on ties, stops early when every remaining point
/// duplicates a chosen one.
fn select_inducing(x: &[Vec<f64>], m: usize) -> Vec<Vec<f64>> {
    let mut chosen: Vec<usize> = Vec::with_capacity(m);
    chosen.push(0);
    let mut min_d: Vec<f64> = x.iter().map(|p| sq_dist(p, &x[0])).collect();
    while chosen.len() < m {
        let mut best = 0usize;
        let mut best_d = -1.0f64;
        for (i, &dv) in min_d.iter().enumerate() {
            if dv > best_d {
                best_d = dv;
                best = i;
            }
        }
        if best_d <= 0.0 {
            break;
        }
        chosen.push(best);
        for (i, dv) in min_d.iter_mut().enumerate() {
            let d = sq_dist(&x[i], &x[best]);
            if d < *dv {
                *dv = d;
            }
        }
    }
    chosen.into_iter().map(|i| x[i].clone()).collect()
}

/// Median of a scratch list of squared distances (via selection, O(m));
/// matches the sorted-middle convention with a floor of `1e-6`.
fn median_sq_dist(dists: &mut [f64]) -> f64 {
    if dists.is_empty() {
        return 1.0;
    }
    let mid = dists.len() / 2;
    let (_, m, _) = dists.select_nth_unstable_by(mid, |a, b| a.total_cmp(b));
    (*m).max(1e-6)
}

/// Incrementally maintained pairwise squared distances for the median
/// lengthscale heuristic.
///
/// Appending the `n`-th point costs O(n·d) instead of rebuilding all
/// O(n²) pairs, so a Bayesian-optimization loop can keep the heuristic
/// current without quadratic rescans per iteration.
#[derive(Debug, Clone, Default)]
pub struct DistanceCache {
    points: Vec<Vec<f64>>,
    dists: Vec<f64>,
}

impl DistanceCache {
    /// Creates an empty cache.
    pub fn new() -> DistanceCache {
        DistanceCache::default()
    }

    /// Appends a point, recording its distance to every existing point.
    pub fn push(&mut self, p: Vec<f64>) {
        for q in &self.points {
            self.dists.push(sq_dist(q, &p));
        }
        self.points.push(p);
    }

    /// Number of points recorded.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no point has been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Drops all recorded points and distances.
    pub fn clear(&mut self) {
        self.points.clear();
        self.dists.clear();
    }

    /// Median pairwise squared distance (1.0 when fewer than two points),
    /// floored at `1e-6` — the GP's squared-lengthscale heuristic.
    pub fn median_sq_dist(&self) -> f64 {
        let mut scratch = self.dists.clone();
        median_sq_dist(&mut scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid1d(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect()
    }

    #[test]
    fn interpolates_training_points() {
        let x = grid1d(8);
        let y: Vec<f64> = x.iter().map(|p| (4.0 * p[0]).sin()).collect();
        let gp = GaussianProcess::fit(&x, &y).unwrap();
        for (xi, yi) in x.iter().zip(&y) {
            let (m, v) = gp.predict(xi);
            assert!((m - yi).abs() < 1e-2, "mean {m} vs {yi}");
            assert!(v < 1e-2, "variance {v} at training point");
        }
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let x = vec![vec![0.0], vec![0.1], vec![0.2]];
        let y = vec![0.0, 0.1, 0.2];
        let gp = GaussianProcess::fit(&x, &y).unwrap();
        let (_, v_near) = gp.predict(&[0.1]);
        let (_, v_far) = gp.predict(&[5.0]);
        assert!(v_far > v_near);
    }

    #[test]
    fn prediction_reasonable_between_points() {
        let x = grid1d(16);
        let y: Vec<f64> = x.iter().map(|p| p[0] * p[0]).collect();
        let gp = GaussianProcess::fit(&x, &y).unwrap();
        let (m, _) = gp.predict(&[0.5]);
        assert!((m - 0.25).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn too_few_points_is_an_error() {
        assert!(matches!(
            GaussianProcess::fit(&[vec![0.0]], &[1.0]),
            Err(GpError::TooFewPoints { got: 1 })
        ));
        assert!(matches!(GaussianProcess::fit(&[], &[]), Err(GpError::TooFewPoints { got: 0 })));
    }

    #[test]
    fn mismatched_lengths_are_an_error() {
        let r = GaussianProcess::fit(&[vec![0.0], vec![1.0]], &[1.0]);
        assert!(matches!(r, Err(GpError::DimensionMismatch { .. })));
        let r =
            GaussianProcess::fit_with_lengthscale(&[vec![0.0], vec![1.0, 2.0]], &[1.0, 2.0], 0.5);
        assert!(matches!(r, Err(GpError::DimensionMismatch { .. })));
    }

    #[test]
    fn non_finite_training_data_is_an_error() {
        let x = vec![vec![0.0], vec![0.5], vec![1.0]];
        let y = vec![0.0, f64::NAN, 1.0];
        assert!(matches!(GaussianProcess::fit(&x, &y), Err(GpError::NonFiniteInput)));
        let x = vec![vec![0.0], vec![f64::INFINITY]];
        assert!(matches!(GaussianProcess::fit(&x, &[0.0, 1.0]), Err(GpError::NonFiniteInput)));
    }

    #[test]
    fn lcb_below_mean() {
        let x = grid1d(6);
        let y: Vec<f64> = x.iter().map(|p| p[0]).collect();
        let gp = GaussianProcess::fit(&x, &y).unwrap();
        let (m, _) = gp.predict(&[0.55]);
        assert!(gp.lcb(&[0.55], 2.0) <= m);
    }

    #[test]
    fn constant_targets_are_handled() {
        let x = grid1d(5);
        let y = vec![3.0; 5];
        let gp = GaussianProcess::fit(&x, &y).unwrap();
        let (m, _) = gp.predict(&[0.5]);
        assert!((m - 3.0).abs() < 1e-6);
    }

    #[test]
    fn len_reports_training_size() {
        let x = grid1d(5);
        let y = vec![0.0; 5];
        let gp = GaussianProcess::fit(&x, &y).unwrap();
        assert_eq!(gp.len(), 5);
        assert!(!gp.is_empty());
    }

    #[test]
    fn extend_matches_full_refit_at_same_lengthscale() {
        let x = grid1d(10);
        let y: Vec<f64> = x.iter().map(|p| (3.0 * p[0]).cos() + 0.5 * p[0]).collect();
        // Fit on the first 6 points, extend with the remaining 4.
        let mut inc = GaussianProcess::fit(&x[..6], &y[..6]).unwrap();
        let ls = inc.lengthscale_sq();
        for i in 6..10 {
            assert!(inc.extend(&x[i], y[i]), "extension failed at {i}");
        }
        let full = GaussianProcess::fit_with_lengthscale(&x, &y, ls).unwrap();
        for q in [0.05, 0.33, 0.61, 0.97] {
            let (mi, vi) = inc.predict(&[q]);
            let (mf, vf) = full.predict(&[q]);
            assert!((mi - mf).abs() < 1e-8, "mean {mi} vs {mf} at {q}");
            assert!((vi - vf).abs() < 1e-8, "var {vi} vs {vf} at {q}");
        }
        assert_eq!(inc.len(), 10);
    }

    #[test]
    fn extend_rejects_near_duplicate_without_corruption() {
        let x = vec![vec![0.0], vec![0.5], vec![1.0]];
        let y = vec![0.0, 1.0, 0.0];
        let mut gp = GaussianProcess::fit(&x, &y).unwrap();
        let before = gp.predict(&[0.25]);
        // A near-exact duplicate may be rejected; the GP must be unchanged
        // in that case.
        if !gp.extend(&[0.5 + 1e-15], 1.0) {
            let after = gp.predict(&[0.25]);
            assert_eq!(before, after);
            assert_eq!(gp.len(), 3);
        }
    }

    #[test]
    fn predict_batch_matches_scalar_predict_bitwise() {
        let x: Vec<Vec<f64>> =
            (0..9).map(|i| vec![i as f64 / 8.0, (i * i % 5) as f64 / 4.0]).collect();
        let y: Vec<f64> = x.iter().map(|p| (3.0 * p[0]).sin() + p[1] * p[1]).collect();
        let gp = GaussianProcess::fit(&x, &y).unwrap();
        // Pool larger than the solve's column block, including exact
        // training points (variance clamp at 0) and far-away queries.
        let pool: Vec<Vec<f64>> = (0..40)
            .map(|j| vec![(j as f64 * 0.37) % 1.3, (j as f64 * 0.51) % 1.1 - 0.2])
            .chain(x.iter().cloned())
            .collect();
        let batch = gp.predict_batch(&pool);
        assert_eq!(batch.len(), pool.len());
        for (p, (bm, bv)) in pool.iter().zip(&batch) {
            let (m, v) = gp.predict(p);
            assert_eq!(bm.to_bits(), m.to_bits(), "mean at {p:?}");
            assert_eq!(bv.to_bits(), v.to_bits(), "variance at {p:?}");
        }
    }

    #[test]
    fn shared_correlations_valid_across_gps_with_same_inputs() {
        // Two GPs on the same inputs and lengthscale but different
        // targets — the surrogate-pack invariant. One cross-correlation
        // matrix must serve both, bit-identically to their own.
        let x = grid1d(7);
        let y1: Vec<f64> = x.iter().map(|p| p[0] * p[0]).collect();
        let y2: Vec<f64> = x.iter().map(|p| (5.0 * p[0]).cos()).collect();
        let a = GaussianProcess::fit(&x, &y1).unwrap();
        let b = GaussianProcess::fit_with_lengthscale(&x, &y2, a.lengthscale_sq()).unwrap();
        let pool: Vec<Vec<f64>> = (0..11).map(|j| vec![j as f64 * 0.09 - 0.05]).collect();
        let corr = a.cross_correlations(&pool);
        let via_shared = b.predict_batch_from_correlations(&corr);
        for (p, got) in pool.iter().zip(&via_shared) {
            let direct = b.predict(p);
            assert_eq!(got.0.to_bits(), direct.0.to_bits());
            assert_eq!(got.1.to_bits(), direct.1.to_bits());
        }
    }

    #[test]
    fn predict_batch_empty_pool_is_empty() {
        let x = grid1d(4);
        let y = vec![0.0, 1.0, 0.5, 0.25];
        let gp = GaussianProcess::fit(&x, &y).unwrap();
        assert!(gp.predict_batch(&[]).is_empty());
    }

    #[test]
    fn distance_cache_matches_direct_median() {
        let pts: Vec<Vec<f64>> =
            (0..9).map(|i| vec![(i * i % 7) as f64 * 0.13, i as f64 * 0.1]).collect();
        let mut cache = DistanceCache::new();
        for p in &pts {
            cache.push(p.clone());
        }
        assert_eq!(cache.len(), 9);
        // Direct computation, seed convention: sort all pairs, take mid.
        let mut dists = Vec::new();
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                dists.push(sq_dist(&pts[i], &pts[j]));
            }
        }
        dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expect = dists[dists.len() / 2].max(1e-6);
        assert_eq!(cache.median_sq_dist(), expect);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.median_sq_dist(), 1.0);
    }

    #[test]
    fn fit_uses_median_heuristic() {
        let x = grid1d(7);
        let y: Vec<f64> = x.iter().map(|p| p[0]).collect();
        let gp = GaussianProcess::fit(&x, &y).unwrap();
        let mut cache = DistanceCache::new();
        for p in &x {
            cache.push(p.clone());
        }
        assert_eq!(gp.lengthscale_sq(), cache.median_sq_dist());
    }

    #[test]
    fn surrogate_mode_grammar() {
        use SurrogateMode::*;
        assert_eq!(SurrogateMode::parse(""), Some(SurrogateMode::default_sparse()));
        assert_eq!(SurrogateMode::parse("1"), Some(SurrogateMode::default_sparse()));
        assert_eq!(SurrogateMode::parse("on"), Some(SurrogateMode::default_sparse()));
        assert_eq!(SurrogateMode::parse("true"), Some(SurrogateMode::default_sparse()));
        assert_eq!(SurrogateMode::parse("0"), Some(Exact));
        assert_eq!(SurrogateMode::parse("off"), Some(Exact));
        assert_eq!(SurrogateMode::parse("exact"), Some(Exact));
        assert_eq!(SurrogateMode::parse("300:48"), Some(Sparse { threshold: 300, inducing: 48 }));
        assert_eq!(SurrogateMode::parse("100"), Some(Sparse { threshold: 100, inducing: 25 }));
        // Floors keep degenerate configurations usable.
        assert_eq!(SurrogateMode::parse("4:1"), Some(Sparse { threshold: 8, inducing: 2 }));
        assert_eq!(SurrogateMode::parse("banana"), None);
        assert_eq!(SurrogateMode::parse("12:"), None);
    }

    #[test]
    fn sparse_with_all_inducing_matches_exact() {
        // DTC with the inducing set equal to the full training set is the
        // exact noisy GP posterior, up to the tiny C_mm ridge. This is the
        // strongest accuracy anchor the sparse path has.
        let x: Vec<Vec<f64>> =
            (0..24).map(|i| vec![(i * 7 % 24) as f64 / 23.0, (i * 5 % 24) as f64 / 23.0]).collect();
        let y: Vec<f64> = x.iter().map(|p| (4.0 * p[0]).sin() - p[1] * p[1]).collect();
        let exact = GaussianProcess::fit(&x, &y).unwrap();
        let sparse =
            SparseGaussianProcess::fit_with_lengthscale(&x, &y, exact.lengthscale_sq(), x.len())
                .unwrap();
        assert_eq!(sparse.inducing_count(), x.len());
        for q in [[0.1, 0.9], [0.45, 0.2], [0.77, 0.61], [1.3, -0.2]] {
            let (me, ve) = exact.predict(&q);
            let (ms, vs) = sparse.predict(&q);
            assert!((me - ms).abs() < 1e-5, "mean {me} vs {ms} at {q:?}");
            assert!((ve - vs).abs() < 1e-5, "var {ve} vs {vs} at {q:?}");
        }
    }

    #[test]
    fn sparse_low_rank_tracks_exact_closely() {
        // Under-complete inducing set on a smooth function: predictions
        // must stay close to exact even at m = n/4.
        let x = grid1d(32);
        let y: Vec<f64> = x.iter().map(|p| (2.0 * p[0]).sin()).collect();
        let exact = GaussianProcess::fit(&x, &y).unwrap();
        let sparse =
            SparseGaussianProcess::fit_with_lengthscale(&x, &y, exact.lengthscale_sq(), 8).unwrap();
        assert_eq!(sparse.inducing_count(), 8);
        for q in [0.05, 0.31, 0.62, 0.94] {
            let (me, _) = exact.predict(&[q]);
            let (ms, _) = sparse.predict(&[q]);
            assert!((me - ms).abs() < 1e-2, "mean {me} vs {ms} at {q}");
        }
    }

    #[test]
    fn sparse_batch_matches_scalar_bitwise() {
        let x: Vec<Vec<f64>> =
            (0..20).map(|i| vec![i as f64 / 19.0, (i * 3 % 7) as f64 / 6.0]).collect();
        let y: Vec<f64> = x.iter().map(|p| p[0] - p[1] * p[1]).collect();
        let gp = SparseGaussianProcess::fit(&x, &y, 6).unwrap();
        let pool: Vec<Vec<f64>> = (0..37)
            .map(|j| vec![(j as f64 * 0.41) % 1.2, (j as f64 * 0.23) % 1.0])
            .chain(x.iter().cloned())
            .collect();
        let batch = gp.predict_batch(&pool);
        assert_eq!(batch.len(), pool.len());
        for (p, (bm, bv)) in pool.iter().zip(&batch) {
            let (m, v) = gp.predict(p);
            assert_eq!(bm.to_bits(), m.to_bits(), "mean at {p:?}");
            assert_eq!(bv.to_bits(), v.to_bits(), "variance at {p:?}");
        }
    }

    #[test]
    fn sparse_extend_matches_full_sparse_refit() {
        let x = grid1d(16);
        let y: Vec<f64> = x.iter().map(|p| (3.0 * p[0]).cos()).collect();
        let mut inc = SparseGaussianProcess::fit(&x[..12], &y[..12], 5).unwrap();
        let ls = inc.lengthscale_sq();
        for i in 12..16 {
            assert!(inc.extend(&x[i], y[i]), "sparse extension failed at {i}");
        }
        assert_eq!(inc.len(), 16);
        // A refit over all 16 points selects its own inducing set, so
        // compare against a refit that reuses the incremental GP's frozen
        // lengthscale and (via the first 12 points) inducing selection.
        let refit = SparseGaussianProcess::fit_with_lengthscale(&x, &y, ls, 5).unwrap();
        for q in [0.08, 0.37, 0.66, 0.91] {
            let (mi, _) = inc.predict(&[q]);
            let (mr, _) = refit.predict(&[q]);
            assert!((mi - mr).abs() < 5e-2, "mean {mi} vs refit {mr} at {q}");
        }
    }

    #[test]
    fn sparse_extend_rejects_non_finite_unchanged() {
        let x = grid1d(8);
        let y: Vec<f64> = x.iter().map(|p| p[0]).collect();
        let mut gp = SparseGaussianProcess::fit(&x, &y, 4).unwrap();
        let before = gp.predict(&[0.4]);
        assert!(!gp.extend(&[f64::NAN], 0.0));
        assert!(!gp.extend(&[0.3], f64::INFINITY));
        assert_eq!(gp.predict(&[0.4]), before);
        assert_eq!(gp.len(), 8);
    }

    #[test]
    fn sparse_retarget_matches_fresh_weights() {
        // Retargeting replaces y and refreshes the weights against the
        // frozen factorization; a fresh fit at the same lengthscale and
        // inducing set differs only in its noise term, so predictions
        // agree to well under the noise scale.
        let x = grid1d(12);
        let y1: Vec<f64> = x.iter().map(|p| p[0]).collect();
        let y2: Vec<f64> = x.iter().map(|p| (6.0 * p[0]).sin()).collect();
        let mut gp = SparseGaussianProcess::fit(&x, &y1, x.len()).unwrap();
        assert!(gp.retarget(&y2));
        let fresh =
            SparseGaussianProcess::fit_with_lengthscale(&x, &y2, gp.lengthscale_sq(), x.len())
                .unwrap();
        for q in [0.11, 0.48, 0.83] {
            let (mr, _) = gp.predict(&[q]);
            let (mf, _) = fresh.predict(&[q]);
            assert!((mr - mf).abs() < 1e-3, "mean {mr} vs {mf} at {q}");
        }
        // Bad inputs leave the GP untouched.
        let before = gp.predict(&[0.4]);
        assert!(!gp.retarget(&y2[..5]));
        assert!(!gp.retarget(&[f64::NAN; 12]));
        assert_eq!(gp.predict(&[0.4]), before);
    }

    #[test]
    fn inducing_selection_collapses_duplicates() {
        let mut x = grid1d(4);
        x.push(x[1].clone());
        x.push(x[2].clone());
        let y = vec![0.0, 1.0, 2.0, 3.0, 1.0, 2.0];
        let gp = SparseGaussianProcess::fit(&x, &y, 6).unwrap();
        // Only 4 distinct locations exist, so farthest-point selection
        // stops early instead of ridging duplicate inducing rows.
        assert_eq!(gp.inducing_count(), 4);
        let (m, _) = gp.predict(&[x[1][0]]);
        assert!((m - 1.0).abs() < 0.2, "mean {m} at duplicated point");
    }

    #[test]
    fn exact_retarget_reuses_factorization() {
        let x = grid1d(9);
        let y1: Vec<f64> = x.iter().map(|p| p[0]).collect();
        let y2: Vec<f64> = x.iter().map(|p| (4.0 * p[0]).cos()).collect();
        let mut gp = GaussianProcess::fit(&x, &y1).unwrap();
        assert!(gp.retarget(&y2));
        // Same factorization, new targets: close to a fresh fit (which
        // differs only through the target-dependent jitter).
        let fresh = GaussianProcess::fit_with_lengthscale(&x, &y2, gp.lengthscale_sq()).unwrap();
        for q in [0.15, 0.52, 0.88] {
            let (mr, _) = gp.predict(&[q]);
            let (mf, _) = fresh.predict(&[q]);
            assert!((mr - mf).abs() < 1e-3, "mean {mr} vs {mf} at {q}");
        }
        let before = gp.predict(&[0.3]);
        assert!(!gp.retarget(&y2[..4]));
        assert!(!gp.retarget(&[f64::NAN; 9]));
        assert_eq!(gp.predict(&[0.3]), before);
    }

    #[test]
    fn drop_oldest_tracks_fresh_fit_on_suffix() {
        let x = grid1d(10);
        let y: Vec<f64> = x.iter().map(|p| (2.5 * p[0]).sin() + p[0]).collect();
        let mut gp = GaussianProcess::fit(&x, &y).unwrap();
        let ls = gp.lengthscale_sq();
        assert!(gp.drop_oldest());
        assert!(gp.drop_oldest());
        assert_eq!(gp.len(), 8);
        let fresh = GaussianProcess::fit_with_lengthscale(&x[2..], &y[2..], ls).unwrap();
        for q in [0.3, 0.55, 0.81] {
            let (md, vd) = gp.predict(&[q]);
            let (mf, vf) = fresh.predict(&[q]);
            assert!((md - mf).abs() < 1e-6, "mean {md} vs {mf} at {q}");
            assert!((vd - vf).abs() < 1e-6, "var {vd} vs {vf} at {q}");
        }
    }

    #[test]
    fn drop_oldest_refuses_to_shrink_below_two() {
        let x = grid1d(3);
        let y = vec![0.0, 0.5, 1.0];
        let mut gp = GaussianProcess::fit(&x, &y).unwrap();
        assert!(gp.drop_oldest());
        assert_eq!(gp.len(), 2);
        assert!(!gp.drop_oldest(), "must not shrink below 2 points");
        assert_eq!(gp.len(), 2);
    }

    #[test]
    fn truncate_then_reextend_is_bitwise_identical() {
        // truncate() removes trailing observations without touching the
        // retained factor rows, so replaying the same extends must land on
        // bit-identical state — the downdate-then-extend round trip.
        let x = grid1d(11);
        let y: Vec<f64> = x.iter().map(|p| p[0] * p[0] - 0.3 * p[0]).collect();
        let mut gp = GaussianProcess::fit(&x[..7], &y[..7]).unwrap();
        for i in 7..11 {
            assert!(gp.extend(&x[i], y[i]));
        }
        let probe: Vec<Vec<f64>> = (0..9).map(|j| vec![j as f64 * 0.12 + 0.01]).collect();
        let reference = gp.predict_batch(&probe);
        assert!(gp.truncate(7));
        assert_eq!(gp.len(), 7);
        for i in 7..11 {
            assert!(gp.extend(&x[i], y[i]));
        }
        let replay = gp.predict_batch(&probe);
        for ((rm, rv), (pm, pv)) in reference.iter().zip(&replay) {
            assert_eq!(rm.to_bits(), pm.to_bits(), "round-trip mean drifted");
            assert_eq!(rv.to_bits(), pv.to_bits(), "round-trip variance drifted");
        }
        assert!(!gp.truncate(1), "truncate below 2 must refuse");
        assert!(!gp.truncate(99), "truncate beyond len must refuse");
    }
}

//! The evaluator and optimizer abstractions shared by all DSE algorithms.

use crate::control::RunControl;
use crate::error::{DseError, EvalError};
use crate::result::OptimizationResult;
use crate::space::DesignSpace;

/// A black-box, multi-objective function over a discrete design space.
///
/// All objectives are minimized. Implementations should be deterministic
/// for a given point (AutoPilot's evaluations — simulator runs and
/// database lookups — are).
///
/// Evaluation is fallible: a bad design point, a simulator failure, or a
/// non-finite objective is reported as an [`EvalError`] rather than a
/// panic, and optimizers propagate it out of their `run` loop.
///
/// The `Sync` supertrait lets optimizers fan evaluations out across
/// worker threads (see [`crate::par`]); evaluators take `&self`, so a
/// shared-state implementation must use interior synchronization (as
/// [`crate::CachedEvaluator`] does).
pub trait Evaluator: Sync {
    /// Number of objectives returned by [`Evaluator::evaluate`].
    fn num_objectives(&self) -> usize;

    /// Evaluates the objectives at `point` (a design-space index vector).
    ///
    /// # Errors
    ///
    /// Returns an [`EvalError`] when the point cannot be evaluated —
    /// implementations must not panic on bad input.
    fn evaluate(&self, point: &[usize]) -> Result<Vec<f64>, EvalError>;

    /// Reference point for hypervolume bookkeeping: a vector that every
    /// attainable objective vector dominates. The default is a generous
    /// constant; evaluators with known objective scales should override
    /// it.
    fn reference_point(&self) -> Vec<f64> {
        vec![1.0e9; self.num_objectives()]
    }
}

impl<E: Evaluator + ?Sized> Evaluator for &E {
    fn num_objectives(&self) -> usize {
        (**self).num_objectives()
    }
    fn evaluate(&self, point: &[usize]) -> Result<Vec<f64>, EvalError> {
        (**self).evaluate(point)
    }
    fn reference_point(&self) -> Vec<f64> {
        (**self).reference_point()
    }
}

/// A budgeted multi-objective optimizer.
///
/// Implementations are seeded at construction; `run` may be called
/// repeatedly (each call restarts the optimization).
///
/// The trait is **object-safe**: optimizers are driven through
/// `&dyn Evaluator`, so registries can hold `Box<dyn
/// MultiObjectiveOptimizer>` factories and select a backend at runtime
/// by name (see the `autopilot` core's optimizer registry).
pub trait MultiObjectiveOptimizer {
    /// Human-readable algorithm name for reports.
    fn name(&self) -> &str;

    /// Runs the optimizer for at most `budget` objective evaluations.
    ///
    /// Equivalent to [`MultiObjectiveOptimizer::run_controlled`] with
    /// the inert [`RunControl::none`] token — bit-identical results,
    /// nothing to cancel.
    ///
    /// # Errors
    ///
    /// Returns a [`DseError`] when an evaluation fails or the search
    /// cannot proceed; optimizers never panic on evaluator failures.
    fn run(
        &mut self,
        space: &DesignSpace,
        evaluator: &dyn Evaluator,
        budget: usize,
    ) -> Result<OptimizationResult, DseError> {
        self.run_controlled(space, evaluator, budget, &RunControl::none())
    }

    /// Runs the optimizer under a [`RunControl`] token: the inner loop
    /// polls [`RunControl::check`] and publishes progress via
    /// [`RunControl::checkpoint`].
    ///
    /// Cancellation must not perturb the search: a token that is never
    /// cancelled yields results bit-identical to [`run`]
    /// (the determinism goldens hold either way).
    ///
    /// [`run`]: MultiObjectiveOptimizer::run
    ///
    /// # Errors
    ///
    /// [`DseError::Cancelled`] once the token is cancelled, or any
    /// [`DseError`] an uncontrolled run could return.
    fn run_controlled(
        &mut self,
        space: &DesignSpace,
        evaluator: &dyn Evaluator,
        budget: usize,
        control: &RunControl,
    ) -> Result<OptimizationResult, DseError>;
}

#[cfg(test)]
pub(crate) mod test_problems {
    use super::{EvalError, Evaluator};

    /// A tiny bi-objective trade-off problem over a 32-level dimension:
    /// f0 = x, f1 = (1 - x)^2, whose Pareto front is the whole axis.
    pub struct Tradeoff;

    impl Evaluator for Tradeoff {
        fn num_objectives(&self) -> usize {
            2
        }
        fn evaluate(&self, point: &[usize]) -> Result<Vec<f64>, EvalError> {
            let x = point[0] as f64 / 31.0;
            Ok(vec![x, (1.0 - x) * (1.0 - x)])
        }
        fn reference_point(&self) -> Vec<f64> {
            vec![1.1, 1.1]
        }
    }

    /// A 3-dimensional, 3-objective problem with a known optimal region:
    /// a discretized DTLZ2-like bowl.
    pub struct Bowl3;

    impl Evaluator for Bowl3 {
        fn num_objectives(&self) -> usize {
            3
        }
        fn evaluate(&self, point: &[usize]) -> Result<Vec<f64>, EvalError> {
            let x: Vec<f64> = point.iter().map(|&p| p as f64 / 7.0).collect();
            let g = (x[2] - 0.5) * (x[2] - 0.5);
            let a = 0.5 * std::f64::consts::PI * x[0];
            let b = 0.5 * std::f64::consts::PI * x[1];
            Ok(vec![
                (1.0 + g) * a.cos() * b.cos(),
                (1.0 + g) * a.cos() * b.sin(),
                (1.0 + g) * a.sin(),
            ])
        }
        fn reference_point(&self) -> Vec<f64> {
            vec![2.0, 2.0, 2.0]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_problems::Tradeoff;
    use super::*;

    #[test]
    fn evaluator_impl_for_references() {
        fn takes_eval<E: Evaluator>(e: &E) -> usize {
            e.num_objectives()
        }
        let t = Tradeoff;
        assert_eq!(takes_eval(&t), 2);
        assert_eq!(takes_eval(&&t), 2);
        // And through a trait object, which the optimizer registry relies
        // on.
        let d: &dyn Evaluator = &t;
        assert_eq!(d.num_objectives(), 2);
        assert_eq!(takes_eval(&d), 2);
    }

    #[test]
    fn default_reference_point_is_per_objective() {
        struct One;
        impl Evaluator for One {
            fn num_objectives(&self) -> usize {
                4
            }
            fn evaluate(&self, _: &[usize]) -> Result<Vec<f64>, EvalError> {
                Ok(vec![0.0; 4])
            }
        }
        assert_eq!(One.reference_point().len(), 4);
    }

    #[test]
    fn optimizer_trait_is_object_safe() {
        fn assert_object_safe(_: Option<&dyn MultiObjectiveOptimizer>) {}
        assert_object_safe(None);
    }
}

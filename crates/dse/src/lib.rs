//! # dse-opt
//!
//! Domain-agnostic multi-objective design-space exploration, the engine of
//! AutoPilot's Phase 2.
//!
//! The crate provides:
//!
//! * a discrete, mixed-cardinality [`DesignSpace`] abstraction with
//!   normalized encodings,
//! * exact Gaussian-process regression ([`GaussianProcess`]) with a
//!   squared-exponential kernel (the paper's choice),
//! * multi-objective Bayesian optimization driven by the *S-Metric
//!   Selection* acquisition (SMS-EGO, Ponweiser et al. 2008) —
//!   [`SmsEgoOptimizer`],
//! * the alternative optimizers the paper lists as drop-in replacements:
//!   [`Nsga2Optimizer`] (genetic), [`AnnealingOptimizer`] (simulated
//!   annealing), and [`RandomSearch`],
//! * Pareto-front utilities and exact hypervolume computation for up to
//!   three objectives ([`pareto`]).
//!
//! All objectives are **minimized**; wrap maximization objectives as
//! negations (AutoPilot minimizes `1 - success_rate`).
//!
//! Evaluation and optimization are **fallible**: [`Evaluator::evaluate`]
//! returns `Result<Vec<f64>, EvalError>` and
//! [`MultiObjectiveOptimizer::run`] returns
//! `Result<OptimizationResult, DseError>`, with the optimizer trait
//! object-safe so backends can be registered and selected at runtime.
//!
//! # Example
//!
//! ```
//! use dse_opt::{DesignSpace, EvalError, Evaluator, MultiObjectiveOptimizer, RandomSearch};
//!
//! struct Toy;
//! impl Evaluator for Toy {
//!     fn num_objectives(&self) -> usize { 2 }
//!     fn evaluate(&self, point: &[usize]) -> Result<Vec<f64>, EvalError> {
//!         let x = point[0] as f64 / 9.0;
//!         Ok(vec![x, (1.0 - x).powi(2)])
//!     }
//! }
//!
//! # fn main() -> Result<(), dse_opt::DseError> {
//! let space = DesignSpace::new(vec![10])?;
//! let mut opt = RandomSearch::new(7);
//! let result = opt.run(&space, &Toy, 20)?;
//! assert!(!result.pareto_front().is_empty());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod anneal;
mod bayesopt;
mod cache;
mod control;
mod error;
mod evaluator;
mod exhaustive;
mod fastexp;
mod ga;
mod gp;
pub mod linalg;
pub mod par;
pub mod pareto;
mod random;
mod result;
mod space;

pub use anneal::AnnealingOptimizer;
pub use bayesopt::SmsEgoOptimizer;
pub use cache::{CacheStats, CachedEvaluator};
pub use control::RunControl;
pub use error::{DseError, EvalError, GpError};
pub use evaluator::{Evaluator, MultiObjectiveOptimizer};
pub use exhaustive::ExhaustiveSearch;
pub use fastexp::{exp_slice, fast_exp, ulp_distance, KernelExpMode, GP_FASTEXP_ENV};
pub use ga::Nsga2Optimizer;
pub use gp::{
    correlation_panel, correlation_panel_with, DistanceCache, GaussianProcess,
    SparseGaussianProcess, SurrogateMode, GP_SPARSE_ENV,
};
pub use random::RandomSearch;
pub use result::{EvaluationRecord, OptimizationResult};
pub use space::{DesignSpace, SpaceError};

//! Cycle-windowed access traces.
//!
//! Rather than emitting one record per address (as file-based SCALE-Sim
//! traces do), the trace groups execution into per-fold windows: each
//! [`TraceEvent`] covers the cycles of one fold and carries the SRAM/DRAM
//! activity inside it. This is lossless for energy integration (energy is
//! linear in access counts) while keeping traces small enough to iterate
//! over millions of folds.

use crate::dataflow::FoldPlan;
use crate::memory::ScratchpadPlan;

/// One fold-window of accelerator activity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// First cycle of the window (inclusive).
    pub start_cycle: u64,
    /// Last cycle of the window (exclusive).
    pub end_cycle: u64,
    /// ifmap SRAM reads within the window (elements).
    pub ifmap_reads: u64,
    /// filter SRAM reads within the window (elements).
    pub filter_reads: u64,
    /// ofmap SRAM writes within the window (elements).
    pub ofmap_writes: u64,
    /// ofmap SRAM reads within the window (elements).
    pub ofmap_reads: u64,
    /// DRAM traffic overlapped with this window (bytes).
    pub dram_bytes: u64,
    /// Mean number of PEs active during the window.
    pub active_pes: f64,
}

impl TraceEvent {
    /// Window length in cycles.
    pub fn cycles(&self) -> u64 {
        self.end_cycle - self.start_cycle
    }
}

/// Iterator over the fold windows of one simulated layer.
///
/// Produced by [`Simulator::trace_layer`](crate::Simulator::trace_layer).
#[derive(Debug, Clone)]
pub struct TraceIter {
    plan: FoldPlan,
    total_folds: u64,
    per_fold_cycles: u64,
    ifmap_per_fold: u64,
    filter_per_fold: u64,
    ofw_per_fold: u64,
    ofr_per_fold: u64,
    dram_per_fold: u64,
    next_fold: u64,
    cursor_cycle: u64,
    stall_tail: u64,
    emitted_tail: bool,
}

impl TraceIter {
    pub(crate) fn new(plan: FoldPlan, mem: ScratchpadPlan) -> TraceIter {
        let total_folds = plan.total_folds() as u64;
        let per_fold_cycles = plan.compute_cycles.checked_div(total_folds).unwrap_or(0);
        let div = |x: u64| x.checked_div(total_folds).unwrap_or(0);
        TraceIter {
            plan,
            total_folds,
            per_fold_cycles,
            ifmap_per_fold: div(plan.ifmap_sram_reads),
            filter_per_fold: div(plan.filter_sram_reads),
            ofw_per_fold: div(plan.ofmap_sram_writes),
            ofr_per_fold: div(plan.ofmap_sram_reads),
            dram_per_fold: div(mem.dram_read_bytes + mem.dram_write_bytes),
            next_fold: 0,
            cursor_cycle: 0,
            stall_tail: mem.stall_cycles,
            emitted_tail: false,
        }
    }

    /// Total number of events this trace will yield.
    pub fn event_count(&self) -> u64 {
        self.total_folds + u64::from(self.stall_tail > 0)
    }
}

impl Iterator for TraceIter {
    type Item = TraceEvent;

    fn next(&mut self) -> Option<TraceEvent> {
        if self.next_fold < self.total_folds {
            let is_last = self.next_fold + 1 == self.total_folds;
            // Fold up residual cycles/accesses into the last window so the
            // trace totals match the plan exactly.
            let cycles = if is_last {
                self.plan.compute_cycles - self.per_fold_cycles * (self.total_folds - 1)
            } else {
                self.per_fold_cycles
            };
            let residual = |total: u64, per: u64| {
                if is_last {
                    total - per * (self.total_folds - 1)
                } else {
                    per
                }
            };
            let ev = TraceEvent {
                start_cycle: self.cursor_cycle,
                end_cycle: self.cursor_cycle + cycles,
                ifmap_reads: residual(self.plan.ifmap_sram_reads, self.ifmap_per_fold),
                filter_reads: residual(self.plan.filter_sram_reads, self.filter_per_fold),
                ofmap_writes: residual(self.plan.ofmap_sram_writes, self.ofw_per_fold),
                ofmap_reads: residual(self.plan.ofmap_sram_reads, self.ofr_per_fold),
                dram_bytes: self.dram_per_fold,
                active_pes: self.plan.mean_active_pes,
            };
            self.cursor_cycle = ev.end_cycle;
            self.next_fold += 1;
            Some(ev)
        } else if self.stall_tail > 0 && !self.emitted_tail {
            // Stalls beyond compute overlap appear as an idle tail window
            // with only DRAM activity.
            self.emitted_tail = true;
            Some(TraceEvent {
                start_cycle: self.cursor_cycle,
                end_cycle: self.cursor_cycle + self.stall_tail,
                ifmap_reads: 0,
                filter_reads: 0,
                ofmap_writes: 0,
                ofmap_reads: 0,
                dram_bytes: 0,
                active_pes: 0.0,
            })
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = (self.total_folds - self.next_fold)
            + u64::from(self.stall_tail > 0 && !self.emitted_tail);
        (remaining as usize, Some(remaining as usize))
    }
}

impl ExactSizeIterator for TraceIter {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArrayConfig, Layer, Simulator};

    fn trace_and_stats(layer: Layer) -> (Vec<TraceEvent>, crate::LayerStats) {
        let sim = Simulator::new(ArrayConfig::default());
        (sim.trace_layer(&layer).collect(), sim.simulate_layer(&layer))
    }

    #[test]
    fn trace_cycle_total_matches_stats() {
        let (events, stats) = trace_and_stats(Layer::conv2d(56, 56, 16, 32, 3, 1, 1));
        let cycles: u64 = events.iter().map(|e| e.cycles()).sum();
        // The trace covers compute plus the non-overlapped stall tail.
        assert!(cycles >= stats.compute_cycles);
        assert!(cycles <= stats.total_cycles);
    }

    #[test]
    fn trace_access_totals_match_plan_exactly() {
        let (events, stats) = trace_and_stats(Layer::conv2d(40, 40, 8, 16, 3, 1, 1));
        let ifmap: u64 = events.iter().map(|e| e.ifmap_reads).sum();
        let filter: u64 = events.iter().map(|e| e.filter_reads).sum();
        let ofw: u64 = events.iter().map(|e| e.ofmap_writes).sum();
        assert_eq!(ifmap, stats.ifmap_sram_reads);
        assert_eq!(filter, stats.filter_sram_reads);
        assert_eq!(ofw, stats.ofmap_sram_writes);
    }

    #[test]
    fn windows_are_contiguous_and_ordered() {
        let (events, _) = trace_and_stats(Layer::conv2d(32, 32, 8, 16, 3, 1, 1));
        let mut cursor = 0;
        for e in &events {
            assert_eq!(e.start_cycle, cursor);
            assert!(e.end_cycle >= e.start_cycle);
            cursor = e.end_cycle;
        }
    }

    #[test]
    fn exact_size_iterator_contract() {
        let sim = Simulator::new(ArrayConfig::default());
        let it = sim.trace_layer(&Layer::conv2d(32, 32, 8, 16, 3, 1, 1));
        let expected = it.event_count() as usize;
        assert_eq!(it.len(), expected);
        assert_eq!(it.count(), expected);
    }

    #[test]
    fn degenerate_layer_yields_short_trace() {
        let sim = Simulator::new(ArrayConfig::default());
        let events: Vec<_> =
            sim.trace_layer(&Layer::Pool { in_h: 8, in_w: 8, channels: 4, window: 2 }).collect();
        // Pool has no folds; only the stall/fill tail appears.
        assert!(events.len() <= 1);
    }
}

//! Event-driven execution engine: a second, independent timing model
//! that steps through a layer fold-by-fold with an explicit double-buffer
//! state machine, used to cross-validate the analytical model.
//!
//! The engine tracks three resources per fold: the PE array (busy for the
//! fold's compute cycles), the DRAM channel (serializes prefetches and
//! write-backs at the configured bandwidth), and the ping-pong scratchpad
//! slots (a fold may start only when its operands finished loading).
//! Prefetch of fold `i+1` overlaps compute of fold `i` exactly when the
//! double buffer has a free slot — the behaviour the analytical model
//! approximates with its fill + excess-traffic formula.

use crate::config::ArrayConfig;
use crate::dataflow::FoldPlan;
use crate::layer::Layer;
use crate::memory::ScratchpadPlan;

/// Cycle-level result of executing one layer on the event engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineResult {
    /// Total cycles from first prefetch to last write-back.
    pub total_cycles: u64,
    /// Cycles the array spent computing.
    pub busy_cycles: u64,
    /// Cycles the array waited on operands.
    pub stall_cycles: u64,
    /// Folds executed.
    pub folds: u64,
}

impl EngineResult {
    /// Array occupancy over the whole window.
    pub fn occupancy(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / self.total_cycles as f64
        }
    }
}

/// Executes `layer` fold-by-fold under `config`.
///
/// Pooling / bypass layers take their DMA time only.
pub fn execute_layer(config: &ArrayConfig, layer: &Layer) -> EngineResult {
    let gemm = layer.gemm().unwrap_or(crate::layer::GemmShape { m: 0, k: 0, n: 0 });
    let plan = FoldPlan::plan(config.dataflow(), gemm, config.rows(), config.cols());
    let mem = ScratchpadPlan::analyze(config, layer, &plan);
    let bw = config.dram_bandwidth_bytes_per_cycle();

    let folds = plan.total_folds() as u64;
    if folds == 0 {
        // Traffic-only layer: one DMA pass.
        let cycles = ((mem.dram_read_bytes + mem.dram_write_bytes) as f64 / bw).ceil() as u64;
        return EngineResult {
            total_cycles: cycles,
            busy_cycles: 0,
            stall_cycles: cycles,
            folds: 0,
        };
    }

    // Distribute the layer's DRAM traffic over folds: reads must land
    // before a fold starts; writes drain after it ends.
    let read_per_fold = mem.dram_read_bytes / folds;
    let read_rem = mem.dram_read_bytes % folds;
    let write_per_fold = mem.dram_write_bytes / folds;
    let write_rem = mem.dram_write_bytes % folds;
    let compute_per_fold = plan.compute_cycles / folds;
    let compute_rem = plan.compute_cycles % folds;

    let to_cycles = |bytes: u64| (bytes as f64 / bw).ceil() as u64;

    // Resource clocks.
    let mut dram_free = 0u64; // when the DRAM channel is next idle
    let mut array_free = 0u64; // when the PE array is next idle
    let mut busy = 0u64;
    let mut stall = 0u64;
    // Prefetch completion time of the operands for the next fold; the
    // double buffer lets exactly one fold be in flight ahead.
    let mut operands_ready = 0u64;

    // Initial prefetch of fold 0.
    let first_read = read_per_fold + u64::from(read_rem > 0);
    dram_free += to_cycles(first_read);
    operands_ready = operands_ready.max(dram_free);

    let mut end_of_last_write = 0u64;
    for fold in 0..folds {
        let compute = compute_per_fold + u64::from(fold < compute_rem);
        // The fold starts when the array is free AND its operands landed.
        let start = array_free.max(operands_ready);
        stall += start - array_free;
        let end = start + compute;
        busy += compute;
        array_free = end;

        // Kick off the next fold's prefetch as soon as the channel frees
        // (double buffering: it may fully overlap this fold's compute).
        if fold + 1 < folds {
            let read = read_per_fold + u64::from(fold + 1 < read_rem);
            let begin = dram_free.max(start); // slot frees once the fold starts
            dram_free = begin + to_cycles(read);
            operands_ready = dram_free;
        }

        // Write-back of this fold's outputs competes for the channel too.
        let write = write_per_fold + u64::from(fold < write_rem);
        if write > 0 {
            let begin = dram_free.max(end);
            dram_free = begin + to_cycles(write);
            end_of_last_write = dram_free;
        }
    }

    let total = array_free.max(end_of_last_write);
    EngineResult { total_cycles: total, busy_cycles: busy, stall_cycles: stall, folds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArrayConfig, Dataflow, Layer, Simulator};

    fn configs() -> Vec<ArrayConfig> {
        let mut out = Vec::new();
        for (r, c) in [(8usize, 8usize), (32, 32), (128, 128)] {
            for bw in [4.0, 48.0] {
                for df in Dataflow::ALL {
                    out.push(
                        ArrayConfig::builder()
                            .rows(r)
                            .cols(c)
                            .dataflow(df)
                            .dram_bandwidth(bw)
                            .build()
                            .unwrap(),
                    );
                }
            }
        }
        out
    }

    #[test]
    fn engine_and_analytic_model_agree() {
        // The two timing models are independent implementations of the
        // same microarchitecture; they must agree to ~20 % everywhere.
        let layers = [
            Layer::conv2d(96, 96, 16, 32, 3, 2, 1),
            Layer::conv2d(48, 48, 48, 48, 3, 1, 1),
            Layer::dense(5632, 5632),
        ];
        for config in configs() {
            let sim = Simulator::new(config.clone());
            for layer in &layers {
                let analytic = sim.simulate_layer(layer).total_cycles as f64;
                let event = execute_layer(&config, layer).total_cycles as f64;
                let ratio = event / analytic;
                assert!(
                    (0.75..=1.35).contains(&ratio),
                    "{}x{} {} bw={} {:?}: event {event} vs analytic {analytic} ({ratio:.2})",
                    config.rows(),
                    config.cols(),
                    config.dataflow(),
                    config.dram_bandwidth_bytes_per_cycle(),
                    layer
                );
            }
        }
    }

    #[test]
    fn busy_cycles_match_fold_plan_exactly() {
        let config = ArrayConfig::default();
        let layer = Layer::conv2d(48, 48, 32, 64, 3, 1, 1);
        let plan =
            FoldPlan::plan(config.dataflow(), layer.gemm().unwrap(), config.rows(), config.cols());
        let result = execute_layer(&config, &layer);
        assert_eq!(result.busy_cycles, plan.compute_cycles);
        assert_eq!(result.folds, plan.total_folds() as u64);
    }

    #[test]
    fn starved_bandwidth_stalls_the_array() {
        let fast = ArrayConfig::builder().dram_bandwidth(64.0).build().unwrap();
        let slow = ArrayConfig::builder().dram_bandwidth(0.5).build().unwrap();
        let layer = Layer::dense(5632, 5632);
        let f = execute_layer(&fast, &layer);
        let s = execute_layer(&slow, &layer);
        assert!(s.stall_cycles > f.stall_cycles);
        assert!(s.occupancy() < f.occupancy());
    }

    #[test]
    fn pool_layer_is_pure_dma() {
        let config = ArrayConfig::default();
        let r =
            execute_layer(&config, &Layer::Pool { in_h: 48, in_w: 48, channels: 48, window: 12 });
        assert_eq!(r.busy_cycles, 0);
        assert_eq!(r.folds, 0);
        assert!(r.total_cycles > 0);
    }

    #[test]
    fn occupancy_bounded() {
        for config in configs() {
            let r = execute_layer(&config, &Layer::conv2d(48, 48, 16, 16, 3, 1, 1));
            assert!((0.0..=1.0).contains(&r.occupancy()));
            assert_eq!(r.total_cycles, r.total_cycles.max(r.busy_cycles));
        }
    }
}

//! Network layer descriptions and their GEMM lowering.

/// A single neural-network layer as seen by the accelerator.
///
/// Convolutions are lowered to GEMM via im2col (the SCALE-Sim convention);
/// dense layers map directly. Only the layers appearing in the AutoPilot E2E
/// template are modelled, plus pooling (which executes on the vector path and
/// contributes traffic but negligible MACs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Layer {
    /// 2-D convolution over an `in_h x in_w x in_c` input producing `out_c`
    /// channels with a square `kernel x kernel` window.
    Conv2d {
        /// Input height in pixels.
        in_h: usize,
        /// Input width in pixels.
        in_w: usize,
        /// Input channels.
        in_c: usize,
        /// Output channels (number of filters).
        out_c: usize,
        /// Square kernel size.
        kernel: usize,
        /// Stride in both dimensions.
        stride: usize,
        /// Symmetric zero padding in both dimensions.
        pad: usize,
    },
    /// Fully connected layer (`inputs -> outputs`), batch size 1.
    Dense {
        /// Input features.
        inputs: usize,
        /// Output features.
        outputs: usize,
    },
    /// Max/average pooling; traffic only, no MACs on the systolic array.
    Pool {
        /// Input height in pixels.
        in_h: usize,
        /// Input width in pixels.
        in_w: usize,
        /// Channels.
        channels: usize,
        /// Square window and stride.
        window: usize,
    },
}

impl Layer {
    /// Convenience constructor for a convolution layer.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero, or if the (padded) input is
    /// smaller than the kernel.
    pub fn conv2d(
        in_h: usize,
        in_w: usize,
        in_c: usize,
        out_c: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
    ) -> Layer {
        assert!(kernel > 0 && stride > 0, "kernel and stride must be non-zero");
        assert!(
            in_h + 2 * pad >= kernel && in_w + 2 * pad >= kernel,
            "padded input must be at least as large as the kernel"
        );
        Layer::Conv2d { in_h, in_w, in_c, out_c, kernel, stride, pad }
    }

    /// Convenience constructor for a dense layer.
    pub fn dense(inputs: usize, outputs: usize) -> Layer {
        Layer::Dense { inputs, outputs }
    }

    /// Output spatial/feature dimensions `(h, w, c)` of this layer.
    pub fn output_dims(&self) -> (usize, usize, usize) {
        match *self {
            Layer::Conv2d { in_h, in_w, out_c, kernel, stride, pad, .. } => {
                let oh = conv_out(in_h, kernel, stride, pad);
                let ow = conv_out(in_w, kernel, stride, pad);
                (oh, ow, out_c)
            }
            Layer::Dense { outputs, .. } => (1, 1, outputs),
            Layer::Pool { in_h, in_w, channels, window } => {
                (in_h / window.max(1), in_w / window.max(1), channels)
            }
        }
    }

    /// Number of trainable parameters (weights + biases).
    pub fn parameter_count(&self) -> u64 {
        match *self {
            Layer::Conv2d { in_c, out_c, kernel, .. } => {
                (kernel as u64 * kernel as u64 * in_c as u64 + 1) * out_c as u64
            }
            Layer::Dense { inputs, outputs } => (inputs as u64 + 1) * outputs as u64,
            Layer::Pool { .. } => 0,
        }
    }

    /// Number of multiply-accumulate operations for one inference.
    pub fn mac_count(&self) -> u64 {
        match self.gemm() {
            Some(g) => g.macs(),
            None => 0,
        }
    }

    /// Lowers the layer to a GEMM shape, or `None` for layers that bypass
    /// the systolic array (pooling).
    pub fn gemm(&self) -> Option<GemmShape> {
        match *self {
            Layer::Conv2d { in_h, in_w, in_c, out_c, kernel, stride, pad } => {
                let oh = conv_out(in_h, kernel, stride, pad);
                let ow = conv_out(in_w, kernel, stride, pad);
                Some(GemmShape { m: oh * ow, k: kernel * kernel * in_c, n: out_c })
            }
            Layer::Dense { inputs, outputs } => Some(GemmShape { m: 1, k: inputs, n: outputs }),
            Layer::Pool { .. } => None,
        }
    }

    /// Unique input-operand footprint in elements (the im2col source, not
    /// the expanded matrix).
    pub fn ifmap_elements(&self) -> u64 {
        match *self {
            Layer::Conv2d { in_h, in_w, in_c, .. } => (in_h * in_w * in_c) as u64,
            Layer::Dense { inputs, .. } => inputs as u64,
            Layer::Pool { in_h, in_w, channels, .. } => (in_h * in_w * channels) as u64,
        }
    }

    /// Unique weight footprint in elements.
    pub fn filter_elements(&self) -> u64 {
        match *self {
            Layer::Conv2d { in_c, out_c, kernel, .. } => (kernel * kernel * in_c * out_c) as u64,
            Layer::Dense { inputs, outputs } => (inputs * outputs) as u64,
            Layer::Pool { .. } => 0,
        }
    }

    /// Unique output footprint in elements.
    pub fn ofmap_elements(&self) -> u64 {
        let (h, w, c) = self.output_dims();
        (h * w * c) as u64
    }
}

fn conv_out(input: usize, kernel: usize, stride: usize, pad: usize) -> usize {
    (input + 2 * pad).saturating_sub(kernel) / stride + 1
}

/// A GEMM problem `C[M x N] = A[M x K] * B[K x N]` as mapped onto the array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GemmShape {
    /// Output rows (convolution output pixels).
    pub m: usize,
    /// Reduction dimension (kernel volume).
    pub k: usize,
    /// Output columns (filter count).
    pub n: usize,
}

impl GemmShape {
    /// Total multiply-accumulate operations.
    pub fn macs(&self) -> u64 {
        self.m as u64 * self.k as u64 * self.n as u64
    }

    /// True when any dimension is zero (degenerate problem).
    pub fn is_empty(&self) -> bool {
        self.m == 0 || self.k == 0 || self.n == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_output_dims_follow_formula() {
        // 84x84 input, 3x3 kernel, stride 2, pad 1 -> 42x42.
        let l = Layer::conv2d(84, 84, 3, 32, 3, 2, 1);
        assert_eq!(l.output_dims(), (42, 42, 32));
    }

    #[test]
    fn conv_gemm_lowering_matches_im2col() {
        let l = Layer::conv2d(56, 56, 32, 64, 3, 1, 1);
        let g = l.gemm().unwrap();
        assert_eq!(g.m, 56 * 56);
        assert_eq!(g.k, 3 * 3 * 32);
        assert_eq!(g.n, 64);
        assert_eq!(l.mac_count(), g.macs());
    }

    #[test]
    fn dense_gemm_is_m1() {
        let l = Layer::dense(4096, 256);
        let g = l.gemm().unwrap();
        assert_eq!((g.m, g.k, g.n), (1, 4096, 256));
    }

    #[test]
    fn parameter_counts_include_bias() {
        assert_eq!(Layer::dense(10, 5).parameter_count(), 55);
        let conv = Layer::conv2d(8, 8, 3, 4, 3, 1, 1);
        assert_eq!(conv.parameter_count(), (3 * 3 * 3 + 1) * 4);
    }

    #[test]
    fn pool_has_no_macs_or_params() {
        let p = Layer::Pool { in_h: 32, in_w: 32, channels: 16, window: 2 };
        assert_eq!(p.mac_count(), 0);
        assert_eq!(p.parameter_count(), 0);
        assert!(p.gemm().is_none());
        assert_eq!(p.output_dims(), (16, 16, 16));
    }

    #[test]
    fn footprints_are_consistent() {
        let l = Layer::conv2d(28, 28, 16, 32, 3, 1, 1);
        assert_eq!(l.ifmap_elements(), 28 * 28 * 16);
        assert_eq!(l.filter_elements(), 3 * 3 * 16 * 32);
        assert_eq!(l.ofmap_elements(), 28 * 28 * 32);
    }

    #[test]
    #[should_panic(expected = "kernel and stride")]
    fn conv_rejects_zero_stride() {
        let _ = Layer::conv2d(8, 8, 3, 4, 3, 0, 1);
    }

    #[test]
    fn empty_gemm_detection() {
        assert!(GemmShape { m: 0, k: 1, n: 1 }.is_empty());
        assert!(!GemmShape { m: 1, k: 1, n: 1 }.is_empty());
    }
}

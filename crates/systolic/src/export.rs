//! CSV export of simulation reports (the SCALE-Sim-style artifact most
//! downstream analysis scripts expect).

use std::fmt::Write as _;

use crate::report::{LayerStats, NetworkStats};

/// CSV header matching [`layer_csv_row`].
pub const LAYER_CSV_HEADER: &str = "layer,compute_cycles,stall_cycles,total_cycles,macs,\
utilization,ifmap_sram_reads,filter_sram_reads,ofmap_sram_writes,ofmap_sram_reads,\
dram_read_bytes,dram_write_bytes";

/// One CSV row for a layer's statistics.
pub fn layer_csv_row(index: usize, stats: &LayerStats) -> String {
    format!(
        "{index},{},{},{},{},{:.6},{},{},{},{},{},{}",
        stats.compute_cycles,
        stats.stall_cycles,
        stats.total_cycles,
        stats.macs,
        stats.utilization,
        stats.ifmap_sram_reads,
        stats.filter_sram_reads,
        stats.ofmap_sram_writes,
        stats.ofmap_sram_reads,
        stats.dram_read_bytes,
        stats.dram_write_bytes,
    )
}

/// Full CSV report (header + one row per layer + a totals row) for a
/// simulated network.
pub fn network_csv(stats: &NetworkStats) -> String {
    let mut out = String::from(LAYER_CSV_HEADER);
    out.push('\n');
    for (i, layer) in stats.layers.iter().enumerate() {
        let _ = writeln!(out, "{}", layer_csv_row(i, layer));
    }
    let _ = writeln!(
        out,
        "total,{},{},{},{},{:.6},{},{},{},{},{},{}",
        stats.compute_cycles(),
        stats.stall_cycles(),
        stats.total_cycles(),
        stats.total_macs(),
        stats.mean_utilization(),
        stats.layers.iter().map(|l| l.ifmap_sram_reads).sum::<u64>(),
        stats.layers.iter().map(|l| l.filter_sram_reads).sum::<u64>(),
        stats.layers.iter().map(|l| l.ofmap_sram_writes).sum::<u64>(),
        stats.layers.iter().map(|l| l.ofmap_sram_reads).sum::<u64>(),
        stats.dram_read_bytes(),
        stats.dram_write_bytes(),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArrayConfig, Layer, Simulator};

    #[test]
    fn csv_has_header_layers_and_totals() {
        let sim = Simulator::new(ArrayConfig::default());
        let stats =
            sim.simulate_network(&[Layer::conv2d(32, 32, 3, 16, 3, 2, 1), Layer::dense(1024, 32)]);
        let csv = network_csv(&stats);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4); // header + 2 layers + totals
        assert!(lines[0].starts_with("layer,"));
        assert!(lines[3].starts_with("total,"));
        // Every row has the same number of fields as the header.
        let fields = lines[0].split(',').count();
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), fields, "row: {line}");
        }
    }

    #[test]
    fn totals_row_is_sum_of_layers() {
        let sim = Simulator::new(ArrayConfig::default());
        let stats = sim.simulate_network(&[Layer::conv2d(16, 16, 4, 8, 3, 1, 1)]);
        let csv = network_csv(&stats);
        let lines: Vec<&str> = csv.lines().collect();
        let layer: Vec<&str> = lines[1].split(',').collect();
        let total: Vec<&str> = lines[2].split(',').collect();
        // Single layer: totals equal the layer row (ignoring the label).
        assert_eq!(&layer[1..5], &total[1..5]);
    }
}

//! Named configuration presets for well-known accelerator classes.
//!
//! Handy starting points for experiments and documentation; values are
//! order-of-magnitude public characterizations, not vendor data.

use crate::config::ArrayConfig;
use crate::dataflow::Dataflow;

/// An Eyeriss-class edge accelerator: modest array, weight-stationary
/// style reuse, small scratchpads.
pub fn eyeriss_like() -> ArrayConfig {
    ArrayConfig::builder()
        .rows(12)
        .cols(14)
        .dataflow(Dataflow::WeightStationary)
        .ifmap_sram_kb(108)
        .filter_sram_kb(108)
        .ofmap_sram_kb(64)
        .clock_mhz(200.0)
        .dram_bandwidth(8.0)
        // Preset values are statically valid; the fallback keeps the
        // constructor infallible without a panic path.
        .build()
        .unwrap_or_else(|_| ArrayConfig::default())
}

/// An edge-TPU-class systolic accelerator: larger array, output
/// stationary, generous on-chip buffering.
pub fn edge_tpu_like() -> ArrayConfig {
    ArrayConfig::builder()
        .rows(64)
        .cols(64)
        .dataflow(Dataflow::OutputStationary)
        .ifmap_sram_kb(512)
        .filter_sram_kb(512)
        .ofmap_sram_kb(256)
        .clock_mhz(480.0)
        .dram_bandwidth(32.0)
        // Preset values are statically valid; the fallback keeps the
        // constructor infallible without a panic path.
        .build()
        .unwrap_or_else(|_| ArrayConfig::default())
}

/// A PULP/GAP8-class ultra-low-power cluster approximated as a tiny
/// array at a low clock.
pub fn pulp_like() -> ArrayConfig {
    ArrayConfig::builder()
        .rows(4)
        .cols(2)
        .dataflow(Dataflow::OutputStationary)
        .ifmap_sram_kb(64)
        .filter_sram_kb(64)
        .ofmap_sram_kb(64)
        .clock_mhz(100.0)
        .dram_bandwidth(2.0)
        // Preset values are statically valid; the fallback keeps the
        // constructor infallible without a panic path.
        .build()
        .unwrap_or_else(|_| ArrayConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Layer, Simulator};

    #[test]
    fn presets_build_and_rank_as_expected() {
        let layer = Layer::conv2d(96, 96, 16, 32, 3, 1, 1);
        let pulp = Simulator::new(pulp_like()).simulate_network(&[layer]);
        let eyeriss = Simulator::new(eyeriss_like()).simulate_network(&[layer]);
        let tpu = Simulator::new(edge_tpu_like()).simulate_network(&[layer]);
        assert!(tpu.fps() > eyeriss.fps());
        assert!(eyeriss.fps() > pulp.fps());
    }

    #[test]
    fn presets_use_documented_dataflows() {
        assert_eq!(eyeriss_like().dataflow(), Dataflow::WeightStationary);
        assert_eq!(edge_tpu_like().dataflow(), Dataflow::OutputStationary);
    }
}

//! Dataflow mappings and fold planning.
//!
//! A GEMM `C[M x N] = A[M x K] * B[K x N]` is executed on an `R x C` array
//! as a sequence of *folds*: tiles of the output (or operand) space that fit
//! the array. The three classic mappings differ in which operand stays
//! resident in the PEs:
//!
//! * **Output stationary (OS)** — each PE accumulates one output element;
//!   the output is tiled `R x C`, and each fold streams the full `K`
//!   reduction through the array.
//! * **Weight stationary (WS)** — a `R x C` tile of `B` (rows = `K`,
//!   cols = `N`) is pre-loaded; `A` rows stream through, producing partial
//!   sums that are spilled/merged across `K` folds.
//! * **Input stationary (IS)** — symmetric to WS with the roles of `A` and
//!   `B` swapped.
//!
//! Cycle counts follow the SCALE-Sim analytical model: each fold pays a
//! pipeline fill/drain skew of `R + C - 2` cycles plus one cycle per element
//! streamed through a PE.

use std::fmt;

use crate::layer::GemmShape;

/// Dataflow mapping strategy for the systolic array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Dataflow {
    /// Each PE owns one output element (no partial-sum traffic).
    #[default]
    OutputStationary,
    /// Weights are pinned in the PEs; inputs stream through.
    WeightStationary,
    /// Inputs are pinned in the PEs; weights stream through.
    InputStationary,
}

impl Dataflow {
    /// All supported dataflows, useful for sweeps.
    pub const ALL: [Dataflow; 3] =
        [Dataflow::OutputStationary, Dataflow::WeightStationary, Dataflow::InputStationary];

    /// Short SCALE-Sim-style mnemonic (`"os"`, `"ws"`, `"is"`).
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Dataflow::OutputStationary => "os",
            Dataflow::WeightStationary => "ws",
            Dataflow::InputStationary => "is",
        }
    }
}

impl fmt::Display for Dataflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// The fold-level execution plan of one GEMM on a given array geometry.
///
/// Produced by [`FoldPlan::plan`]; consumed by the simulator core and the
/// trace generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FoldPlan {
    /// Dataflow used to build this plan.
    pub dataflow: Dataflow,
    /// GEMM being executed.
    pub gemm: GemmShape,
    /// Array rows.
    pub rows: usize,
    /// Array cols.
    pub cols: usize,
    /// Number of folds along the dimension mapped to rows.
    pub row_folds: usize,
    /// Number of folds along the dimension mapped to columns.
    pub col_folds: usize,
    /// Number of reduction (partial-sum) folds; 1 for OS.
    pub reduction_folds: usize,
    /// Compute cycles for the whole GEMM, ignoring memory stalls.
    pub compute_cycles: u64,
    /// Cycles spent on pipeline fill/drain skew (subset of
    /// `compute_cycles`).
    pub overhead_cycles: u64,
    /// SRAM reads from the ifmap buffer (elements).
    pub ifmap_sram_reads: u64,
    /// SRAM reads from the filter buffer (elements).
    pub filter_sram_reads: u64,
    /// SRAM writes to the ofmap buffer (elements), including partial-sum
    /// spills.
    pub ofmap_sram_writes: u64,
    /// SRAM reads from the ofmap buffer for partial-sum merging (elements).
    pub ofmap_sram_reads: u64,
    /// Average number of active PEs over the compute window.
    pub mean_active_pes: f64,
}

impl FoldPlan {
    /// Builds the fold plan of `gemm` on an `rows x cols` array under
    /// `dataflow`.
    ///
    /// Degenerate GEMMs (any dimension zero) produce an all-zero plan.
    pub fn plan(dataflow: Dataflow, gemm: GemmShape, rows: usize, cols: usize) -> FoldPlan {
        if gemm.is_empty() || rows == 0 || cols == 0 {
            return FoldPlan {
                dataflow,
                gemm,
                rows,
                cols,
                row_folds: 0,
                col_folds: 0,
                reduction_folds: 0,
                compute_cycles: 0,
                overhead_cycles: 0,
                ifmap_sram_reads: 0,
                filter_sram_reads: 0,
                ofmap_sram_writes: 0,
                ofmap_sram_reads: 0,
                mean_active_pes: 0.0,
            };
        }
        match dataflow {
            Dataflow::OutputStationary => Self::plan_os(gemm, rows, cols),
            Dataflow::WeightStationary => Self::plan_ws(gemm, rows, cols),
            Dataflow::InputStationary => Self::plan_is(gemm, rows, cols),
        }
    }

    /// Output stationary: tile `M` over rows, `N` over cols. Each fold
    /// streams the whole reduction (`K` cycles) plus skew.
    fn plan_os(g: GemmShape, rows: usize, cols: usize) -> FoldPlan {
        let row_folds = div_ceil(g.m, rows);
        let col_folds = div_ceil(g.n, cols);
        let folds = (row_folds * col_folds) as u64;
        let skew = (rows + cols - 2) as u64;
        let per_fold = g.k as u64 + skew;
        let compute_cycles = folds * per_fold;
        let overhead_cycles = folds * skew;

        // Each fold streams R active-row inputs and C active-col weights
        // for K cycles. Edge folds have fewer active rows/cols.
        let (mut ifmap_reads, mut filter_reads, mut ofmap_writes) = (0u64, 0u64, 0u64);
        let mut active_pe_cycles = 0u64;
        for rf in 0..row_folds {
            let act_r = active(g.m, rows, rf) as u64;
            for cf in 0..col_folds {
                let act_c = active(g.n, cols, cf) as u64;
                ifmap_reads += act_r * g.k as u64;
                filter_reads += act_c * g.k as u64;
                ofmap_writes += act_r * act_c;
                active_pe_cycles += act_r * act_c * g.k as u64;
            }
        }
        let mean_active_pes =
            if compute_cycles > 0 { active_pe_cycles as f64 / compute_cycles as f64 } else { 0.0 };
        FoldPlan {
            dataflow: Dataflow::OutputStationary,
            gemm: g,
            rows,
            cols,
            row_folds,
            col_folds,
            reduction_folds: 1,
            compute_cycles,
            overhead_cycles,
            ifmap_sram_reads: ifmap_reads,
            filter_sram_reads: filter_reads,
            ofmap_sram_writes: ofmap_writes,
            ofmap_sram_reads: 0,
            mean_active_pes,
        }
    }

    /// Weight stationary: a `min(K, R) x min(N, C)` weight tile is loaded
    /// (R cycles), then `M` input rows stream through (`M + skew` cycles).
    /// `K` is folded over rows, requiring partial-sum spill/merge through
    /// the ofmap buffer for every fold beyond the first.
    fn plan_ws(g: GemmShape, rows: usize, cols: usize) -> FoldPlan {
        let red_folds = div_ceil(g.k, rows);
        let col_folds = div_ceil(g.n, cols);
        let folds = (red_folds * col_folds) as u64;
        let skew = (rows + cols - 2) as u64;
        let load = rows as u64;
        let per_fold = load + g.m as u64 + skew;
        let compute_cycles = folds * per_fold;
        let overhead_cycles = folds * (load + skew);

        let (mut ifmap_reads, mut filter_reads) = (0u64, 0u64);
        let mut psum_writes = 0u64;
        let mut psum_reads = 0u64;
        let mut active_pe_cycles = 0u64;
        for kf in 0..red_folds {
            let act_k = active(g.k, rows, kf) as u64;
            for cf in 0..col_folds {
                let act_c = active(g.n, cols, cf) as u64;
                filter_reads += act_k * act_c; // weight tile load
                ifmap_reads += g.m as u64 * act_k; // streamed rows
                psum_writes += g.m as u64 * act_c; // every fold writes psums
                if kf > 0 {
                    psum_reads += g.m as u64 * act_c; // merge with previous
                }
                active_pe_cycles += g.m as u64 * act_k * act_c;
            }
        }
        let mean_active_pes =
            if compute_cycles > 0 { active_pe_cycles as f64 / compute_cycles as f64 } else { 0.0 };
        FoldPlan {
            dataflow: Dataflow::WeightStationary,
            gemm: g,
            rows,
            cols,
            row_folds: red_folds,
            col_folds,
            reduction_folds: red_folds,
            compute_cycles,
            overhead_cycles,
            ifmap_sram_reads: ifmap_reads,
            filter_sram_reads: filter_reads,
            ofmap_sram_writes: psum_writes,
            ofmap_sram_reads: psum_reads,
            mean_active_pes,
        }
    }

    /// Input stationary: symmetric to WS with `A` pinned — `K` folds over
    /// rows, `M` folds over cols, `N` weight columns stream through.
    fn plan_is(g: GemmShape, rows: usize, cols: usize) -> FoldPlan {
        let red_folds = div_ceil(g.k, rows);
        let col_folds = div_ceil(g.m, cols);
        let folds = (red_folds * col_folds) as u64;
        let skew = (rows + cols - 2) as u64;
        let load = rows as u64;
        let per_fold = load + g.n as u64 + skew;
        let compute_cycles = folds * per_fold;
        let overhead_cycles = folds * (load + skew);

        let (mut ifmap_reads, mut filter_reads) = (0u64, 0u64);
        let mut psum_writes = 0u64;
        let mut psum_reads = 0u64;
        let mut active_pe_cycles = 0u64;
        for kf in 0..red_folds {
            let act_k = active(g.k, rows, kf) as u64;
            for mf in 0..col_folds {
                let act_m = active(g.m, cols, mf) as u64;
                ifmap_reads += act_k * act_m; // input tile load
                filter_reads += g.n as u64 * act_k; // streamed weight cols
                psum_writes += g.n as u64 * act_m;
                if kf > 0 {
                    psum_reads += g.n as u64 * act_m;
                }
                active_pe_cycles += g.n as u64 * act_k * act_m;
            }
        }
        let mean_active_pes =
            if compute_cycles > 0 { active_pe_cycles as f64 / compute_cycles as f64 } else { 0.0 };
        FoldPlan {
            dataflow: Dataflow::InputStationary,
            gemm: g,
            rows,
            cols,
            row_folds: red_folds,
            col_folds,
            reduction_folds: red_folds,
            compute_cycles,
            overhead_cycles,
            ifmap_sram_reads: ifmap_reads,
            filter_sram_reads: filter_reads,
            ofmap_sram_writes: psum_writes,
            ofmap_sram_reads: psum_reads,
            mean_active_pes,
        }
    }

    /// Total number of folds executed.
    pub fn total_folds(&self) -> usize {
        self.row_folds * self.col_folds
    }

    /// Array utilization over the compute window: MACs performed divided by
    /// peak MAC slots (`compute_cycles * rows * cols`).
    pub fn utilization(&self) -> f64 {
        let peak = self.compute_cycles as f64 * (self.rows * self.cols) as f64;
        if peak == 0.0 {
            0.0
        } else {
            (self.gemm.macs() as f64 / peak).min(1.0)
        }
    }
}

/// Elements actually mapped in fold `idx` when tiling `total` by `tile`.
fn active(total: usize, tile: usize, idx: usize) -> usize {
    let start = idx * tile;
    total.saturating_sub(start).min(tile)
}

pub(crate) fn div_ceil(a: usize, b: usize) -> usize {
    if b == 0 {
        0
    } else {
        a.div_ceil(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gemm(m: usize, k: usize, n: usize) -> GemmShape {
        GemmShape { m, k, n }
    }

    #[test]
    fn os_single_fold_exact_cycles() {
        // 8x8 array, GEMM fits exactly: one fold, cycles = K + R + C - 2.
        let p = FoldPlan::plan(Dataflow::OutputStationary, gemm(8, 100, 8), 8, 8);
        assert_eq!(p.total_folds(), 1);
        assert_eq!(p.compute_cycles, 100 + 8 + 8 - 2);
        assert_eq!(p.ifmap_sram_reads, 8 * 100);
        assert_eq!(p.filter_sram_reads, 8 * 100);
        assert_eq!(p.ofmap_sram_writes, 64);
        assert_eq!(p.ofmap_sram_reads, 0);
    }

    #[test]
    fn os_fold_counts() {
        let p = FoldPlan::plan(Dataflow::OutputStationary, gemm(100, 10, 33), 32, 16);
        assert_eq!(p.row_folds, 4); // ceil(100/32)
        assert_eq!(p.col_folds, 3); // ceil(33/16)
        assert_eq!(p.reduction_folds, 1);
    }

    #[test]
    fn ws_partial_sum_traffic_appears_with_k_folds() {
        // K = 40 on 16 rows -> 3 reduction folds -> psum reads from fold 2 on.
        let p = FoldPlan::plan(Dataflow::WeightStationary, gemm(50, 40, 16), 16, 16);
        assert_eq!(p.reduction_folds, 3);
        assert!(p.ofmap_sram_reads > 0);
        assert_eq!(p.ofmap_sram_writes, 3 * 50 * 16);
        assert_eq!(p.ofmap_sram_reads, 2 * 50 * 16);
    }

    #[test]
    fn ws_no_psum_reads_single_fold() {
        let p = FoldPlan::plan(Dataflow::WeightStationary, gemm(50, 16, 16), 16, 16);
        assert_eq!(p.reduction_folds, 1);
        assert_eq!(p.ofmap_sram_reads, 0);
    }

    #[test]
    fn utilization_bounded() {
        for df in Dataflow::ALL {
            for &(m, k, n) in &[(1, 4096, 256), (3136, 288, 64), (7, 7, 7), (1000, 1, 1)] {
                let p = FoldPlan::plan(df, gemm(m, k, n), 32, 32);
                let u = p.utilization();
                assert!((0.0..=1.0).contains(&u), "{df} util {u} out of range");
            }
        }
    }

    #[test]
    fn perfect_fit_os_utilization_high() {
        // Large K amortizes skew: utilization approaches 1.
        let p = FoldPlan::plan(Dataflow::OutputStationary, gemm(32, 100_000, 32), 32, 32);
        assert!(p.utilization() > 0.99, "got {}", p.utilization());
    }

    #[test]
    fn degenerate_gemm_zero_plan() {
        let p = FoldPlan::plan(Dataflow::OutputStationary, gemm(0, 10, 10), 8, 8);
        assert_eq!(p.compute_cycles, 0);
        assert_eq!(p.utilization(), 0.0);
        assert_eq!(p.total_folds(), 0);
    }

    #[test]
    fn bigger_array_never_slower_os() {
        let g = gemm(3136, 288, 64);
        let small = FoldPlan::plan(Dataflow::OutputStationary, g, 16, 16);
        let big = FoldPlan::plan(Dataflow::OutputStationary, g, 64, 64);
        assert!(big.compute_cycles <= small.compute_cycles);
    }

    #[test]
    fn mnemonics_and_display() {
        assert_eq!(Dataflow::OutputStationary.to_string(), "os");
        assert_eq!(Dataflow::WeightStationary.mnemonic(), "ws");
        assert_eq!(Dataflow::InputStationary.mnemonic(), "is");
    }

    #[test]
    fn is_dataflow_symmetry_with_ws() {
        // IS on (M,K,N) should mirror WS on (N,K,M) in cycle structure.
        let ws = FoldPlan::plan(Dataflow::WeightStationary, gemm(30, 64, 40), 16, 16);
        let is = FoldPlan::plan(Dataflow::InputStationary, gemm(40, 64, 30), 16, 16);
        assert_eq!(ws.compute_cycles, is.compute_cycles);
    }

    #[test]
    fn mean_active_pes_bounded_by_array() {
        for df in Dataflow::ALL {
            let p = FoldPlan::plan(df, gemm(100, 200, 50), 16, 16);
            assert!(p.mean_active_pes <= 256.0);
            assert!(p.mean_active_pes > 0.0);
        }
    }
}

//! Accelerator array configuration.

use crate::dataflow::Dataflow;
use crate::error::ConfigError;

/// Configuration of a systolic-array accelerator instance.
///
/// This mirrors the knobs SCALE-Sim exposes: PE array geometry, the three
/// scratchpad capacities, the dataflow mapping, and system-integration
/// parameters (DRAM bandwidth, clock). Construct with
/// [`ArrayConfig::builder`].
///
/// # Example
///
/// ```
/// use systolic_sim::{ArrayConfig, Dataflow};
///
/// # fn main() -> Result<(), systolic_sim::ConfigError> {
/// let cfg = ArrayConfig::builder()
///     .rows(16)
///     .cols(16)
///     .dataflow(Dataflow::WeightStationary)
///     .clock_mhz(500.0)
///     .build()?;
/// assert_eq!(cfg.pe_count(), 256);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayConfig {
    rows: usize,
    cols: usize,
    ifmap_sram_bytes: usize,
    filter_sram_bytes: usize,
    ofmap_sram_bytes: usize,
    dataflow: Dataflow,
    dram_bandwidth_bytes_per_cycle: f64,
    clock_mhz: f64,
    word_bytes: usize,
}

impl ArrayConfig {
    /// Returns a builder initialised with SCALE-Sim-like defaults
    /// (32x32 array, 512 KiB ifmap / 512 KiB filter / 256 KiB ofmap,
    /// output-stationary, 16 B/cycle DRAM, 200 MHz, int8 operands).
    pub fn builder() -> ArrayConfigBuilder {
        ArrayConfigBuilder::new()
    }

    /// Number of PE rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of PE columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of processing elements.
    pub fn pe_count(&self) -> usize {
        self.rows * self.cols
    }

    /// Input-feature-map scratchpad capacity in bytes.
    pub fn ifmap_sram_bytes(&self) -> usize {
        self.ifmap_sram_bytes
    }

    /// Filter scratchpad capacity in bytes.
    pub fn filter_sram_bytes(&self) -> usize {
        self.filter_sram_bytes
    }

    /// Output-feature-map scratchpad capacity in bytes.
    pub fn ofmap_sram_bytes(&self) -> usize {
        self.ofmap_sram_bytes
    }

    /// Total on-chip SRAM capacity in bytes.
    pub fn total_sram_bytes(&self) -> usize {
        self.ifmap_sram_bytes + self.filter_sram_bytes + self.ofmap_sram_bytes
    }

    /// Dataflow mapping strategy.
    pub fn dataflow(&self) -> Dataflow {
        self.dataflow
    }

    /// Sustained DRAM bandwidth in bytes per accelerator cycle.
    pub fn dram_bandwidth_bytes_per_cycle(&self) -> f64 {
        self.dram_bandwidth_bytes_per_cycle
    }

    /// Accelerator clock in MHz.
    pub fn clock_mhz(&self) -> f64 {
        self.clock_mhz
    }

    /// Accelerator clock in Hz.
    pub fn clock_hz(&self) -> f64 {
        self.clock_mhz * 1.0e6
    }

    /// Operand word size in bytes (1 for int8, 2 for fp16, ...).
    pub fn word_bytes(&self) -> usize {
        self.word_bytes
    }

    /// Returns a copy of this configuration running at a different clock.
    ///
    /// Used by AutoPilot's architectural fine-tuning step (frequency
    /// scaling).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidClock`] if `mhz` is not positive and
    /// finite.
    pub fn with_clock_mhz(&self, mhz: f64) -> Result<ArrayConfig, ConfigError> {
        if !(mhz.is_finite() && mhz > 0.0) {
            return Err(ConfigError::InvalidClock { mhz });
        }
        let mut c = self.clone();
        c.clock_mhz = mhz;
        Ok(c)
    }
}

impl Default for ArrayConfig {
    fn default() -> Self {
        // Mirrors ArrayConfigBuilder::new(); written as a literal so the
        // infallible Default never routes through fallible validation.
        ArrayConfig {
            rows: 32,
            cols: 32,
            ifmap_sram_bytes: 512 * 1024,
            filter_sram_bytes: 512 * 1024,
            ofmap_sram_bytes: 256 * 1024,
            dataflow: Dataflow::OutputStationary,
            dram_bandwidth_bytes_per_cycle: 16.0,
            clock_mhz: 200.0,
            word_bytes: 1,
        }
    }
}

/// Builder for [`ArrayConfig`].
///
/// All setters return `&mut Self` so configuration can be chained; call
/// [`ArrayConfigBuilder::build`] to validate and produce the config.
#[derive(Debug, Clone)]
pub struct ArrayConfigBuilder {
    rows: usize,
    cols: usize,
    ifmap_sram_bytes: usize,
    filter_sram_bytes: usize,
    ofmap_sram_bytes: usize,
    dataflow: Dataflow,
    dram_bandwidth_bytes_per_cycle: f64,
    clock_mhz: f64,
    word_bytes: usize,
}

impl ArrayConfigBuilder {
    /// Creates a builder with the documented defaults.
    pub fn new() -> Self {
        ArrayConfigBuilder {
            rows: 32,
            cols: 32,
            ifmap_sram_bytes: 512 * 1024,
            filter_sram_bytes: 512 * 1024,
            ofmap_sram_bytes: 256 * 1024,
            dataflow: Dataflow::OutputStationary,
            dram_bandwidth_bytes_per_cycle: 16.0,
            clock_mhz: 200.0,
            word_bytes: 1,
        }
    }

    /// Sets the number of PE rows.
    pub fn rows(&mut self, rows: usize) -> &mut Self {
        self.rows = rows;
        self
    }

    /// Sets the number of PE columns.
    pub fn cols(&mut self, cols: usize) -> &mut Self {
        self.cols = cols;
        self
    }

    /// Sets the ifmap scratchpad capacity in KiB.
    pub fn ifmap_sram_kb(&mut self, kb: usize) -> &mut Self {
        self.ifmap_sram_bytes = kb * 1024;
        self
    }

    /// Sets the filter scratchpad capacity in KiB.
    pub fn filter_sram_kb(&mut self, kb: usize) -> &mut Self {
        self.filter_sram_bytes = kb * 1024;
        self
    }

    /// Sets the ofmap scratchpad capacity in KiB.
    pub fn ofmap_sram_kb(&mut self, kb: usize) -> &mut Self {
        self.ofmap_sram_bytes = kb * 1024;
        self
    }

    /// Sets the dataflow mapping strategy.
    pub fn dataflow(&mut self, dataflow: Dataflow) -> &mut Self {
        self.dataflow = dataflow;
        self
    }

    /// Sets the sustained DRAM bandwidth in bytes per cycle.
    pub fn dram_bandwidth(&mut self, bytes_per_cycle: f64) -> &mut Self {
        self.dram_bandwidth_bytes_per_cycle = bytes_per_cycle;
        self
    }

    /// Sets the accelerator clock in MHz.
    pub fn clock_mhz(&mut self, mhz: f64) -> &mut Self {
        self.clock_mhz = mhz;
        self
    }

    /// Sets the operand word size in bytes.
    pub fn word_bytes(&mut self, bytes: usize) -> &mut Self {
        self.word_bytes = bytes;
        self
    }

    /// Validates the configuration and builds an [`ArrayConfig`].
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when a dimension is zero, a scratchpad
    /// cannot hold two words (the minimum for double buffering), or the
    /// bandwidth/clock are not positive finite numbers.
    pub fn build(&self) -> Result<ArrayConfig, ConfigError> {
        if self.rows == 0 {
            return Err(ConfigError::ZeroArrayDimension { dimension: "rows" });
        }
        if self.cols == 0 {
            return Err(ConfigError::ZeroArrayDimension { dimension: "cols" });
        }
        if self.word_bytes == 0 {
            return Err(ConfigError::ZeroWordBytes);
        }
        for (name, bytes) in [
            ("ifmap", self.ifmap_sram_bytes),
            ("filter", self.filter_sram_bytes),
            ("ofmap", self.ofmap_sram_bytes),
        ] {
            if bytes < 2 * self.word_bytes {
                return Err(ConfigError::ScratchpadTooSmall { buffer: name, bytes });
            }
        }
        if !(self.dram_bandwidth_bytes_per_cycle.is_finite()
            && self.dram_bandwidth_bytes_per_cycle > 0.0)
        {
            return Err(ConfigError::InvalidBandwidth {
                bytes_per_cycle: self.dram_bandwidth_bytes_per_cycle,
            });
        }
        if !(self.clock_mhz.is_finite() && self.clock_mhz > 0.0) {
            return Err(ConfigError::InvalidClock { mhz: self.clock_mhz });
        }
        Ok(ArrayConfig {
            rows: self.rows,
            cols: self.cols,
            ifmap_sram_bytes: self.ifmap_sram_bytes,
            filter_sram_bytes: self.filter_sram_bytes,
            ofmap_sram_bytes: self.ofmap_sram_bytes,
            dataflow: self.dataflow,
            dram_bandwidth_bytes_per_cycle: self.dram_bandwidth_bytes_per_cycle,
            clock_mhz: self.clock_mhz,
            word_bytes: self.word_bytes,
        })
    }
}

impl Default for ArrayConfigBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        let c = ArrayConfig::default();
        assert_eq!(c.rows(), 32);
        assert_eq!(c.cols(), 32);
        assert_eq!(c.pe_count(), 1024);
        assert_eq!(c.word_bytes(), 1);
    }

    #[test]
    fn builder_rejects_zero_rows() {
        let err = ArrayConfig::builder().rows(0).build().unwrap_err();
        assert_eq!(err, ConfigError::ZeroArrayDimension { dimension: "rows" });
    }

    #[test]
    fn builder_rejects_zero_cols() {
        let err = ArrayConfig::builder().cols(0).build().unwrap_err();
        assert_eq!(err, ConfigError::ZeroArrayDimension { dimension: "cols" });
    }

    #[test]
    fn builder_rejects_negative_bandwidth() {
        let err = ArrayConfig::builder().dram_bandwidth(-3.0).build().unwrap_err();
        assert!(matches!(err, ConfigError::InvalidBandwidth { .. }));
    }

    #[test]
    fn builder_rejects_nan_clock() {
        let err = ArrayConfig::builder().clock_mhz(f64::NAN).build().unwrap_err();
        assert!(matches!(err, ConfigError::InvalidClock { .. }));
    }

    #[test]
    fn builder_rejects_zero_word() {
        let err = ArrayConfig::builder().word_bytes(0).build().unwrap_err();
        assert_eq!(err, ConfigError::ZeroWordBytes);
    }

    #[test]
    fn with_clock_scales_frequency_only() {
        let base = ArrayConfig::default();
        let fast = base.with_clock_mhz(400.0).unwrap();
        assert_eq!(fast.clock_mhz(), 400.0);
        assert_eq!(fast.rows(), base.rows());
        assert!(base.with_clock_mhz(0.0).is_err());
    }

    #[test]
    fn clock_hz_converts_mhz() {
        let c = ArrayConfig::builder().clock_mhz(250.0).build().unwrap();
        assert_eq!(c.clock_hz(), 250.0e6);
    }

    #[test]
    fn clone_preserves_equality() {
        let c = ArrayConfig::default();
        assert_eq!(c, c.clone());
    }
}

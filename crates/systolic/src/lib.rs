//! # systolic-sim
//!
//! A cycle-accurate systolic-array DNN accelerator simulator in the spirit of
//! [SCALE-Sim] (Samajdar et al., ISPASS 2020), used by the AutoPilot
//! reproduction as the Phase-2 performance-estimation substrate.
//!
//! The simulator models:
//!
//! * a rectangular array of multiply-accumulate processing elements (PEs),
//! * three classic dataflows ([`Dataflow::OutputStationary`],
//!   [`Dataflow::WeightStationary`], [`Dataflow::InputStationary`]),
//! * double-buffered scratchpads for input feature maps, filters, and output
//!   feature maps,
//! * a bandwidth-limited DRAM interface with prefetch overlap, and
//! * per-layer SRAM/DRAM access counts suitable for driving a power model.
//!
//! Networks are described as sequences of [`Layer`]s (convolutions are
//! lowered to GEMM via im2col, exactly as SCALE-Sim does) and simulated with
//! [`Simulator::simulate_network`].
//!
//! # Example
//!
//! ```
//! use systolic_sim::{ArrayConfig, Dataflow, Layer, Simulator};
//!
//! # fn main() -> Result<(), systolic_sim::ConfigError> {
//! let config = ArrayConfig::builder()
//!     .rows(32)
//!     .cols(32)
//!     .ifmap_sram_kb(128)
//!     .filter_sram_kb(128)
//!     .ofmap_sram_kb(64)
//!     .dataflow(Dataflow::OutputStationary)
//!     .build()?;
//! let sim = Simulator::new(config);
//! let layer = Layer::conv2d(56, 56, 32, 64, 3, 1, 1);
//! let stats = sim.simulate_layer(&layer);
//! assert!(stats.utilization > 0.0 && stats.utilization <= 1.0);
//! # Ok(())
//! # }
//! ```
//!
//! [SCALE-Sim]: https://github.com/ARM-software/SCALE-Sim

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod config;
mod dataflow;
pub mod engine;
mod error;
pub mod export;
mod layer;
mod memo;
mod memory;
pub mod presets;
mod report;
mod sim;
mod trace;

pub use config::{ArrayConfig, ArrayConfigBuilder};
pub use dataflow::{Dataflow, FoldPlan};
pub use error::ConfigError;
pub use layer::{GemmShape, Layer};
pub use memo::{LayerMemo, MemoStats};
pub use memory::{BufferKind, ScratchpadPlan};
pub use report::{LayerStats, NetworkStats};
pub use sim::Simulator;
pub use trace::{TraceEvent, TraceIter};

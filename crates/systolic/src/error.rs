//! Error types for simulator configuration.

use std::error::Error;
use std::fmt;

/// Error returned when an [`ArrayConfig`](crate::ArrayConfig) is invalid.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// The PE array has a zero-sized dimension.
    ZeroArrayDimension {
        /// Offending dimension name (`"rows"` or `"cols"`).
        dimension: &'static str,
    },
    /// A scratchpad is too small to double-buffer even a single word.
    ScratchpadTooSmall {
        /// Offending buffer name.
        buffer: &'static str,
        /// Requested capacity in bytes.
        bytes: usize,
    },
    /// The DRAM bandwidth is not a positive, finite number.
    InvalidBandwidth {
        /// Requested bandwidth in bytes/cycle.
        bytes_per_cycle: f64,
    },
    /// The clock frequency is not a positive, finite number.
    InvalidClock {
        /// Requested frequency in MHz.
        mhz: f64,
    },
    /// The operand word size is zero.
    ZeroWordBytes,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroArrayDimension { dimension } => {
                write!(f, "PE array {dimension} must be non-zero")
            }
            ConfigError::ScratchpadTooSmall { buffer, bytes } => {
                write!(f, "{buffer} scratchpad of {bytes} bytes cannot double-buffer one word")
            }
            ConfigError::InvalidBandwidth { bytes_per_cycle } => {
                write!(
                    f,
                    "DRAM bandwidth of {bytes_per_cycle} bytes/cycle is not positive and finite"
                )
            }
            ConfigError::InvalidClock { mhz } => {
                write!(f, "clock of {mhz} MHz is not positive and finite")
            }
            ConfigError::ZeroWordBytes => write!(f, "operand word size must be non-zero"),
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errors = [
            ConfigError::ZeroArrayDimension { dimension: "rows" },
            ConfigError::ScratchpadTooSmall { buffer: "ifmap", bytes: 1 },
            ConfigError::InvalidBandwidth { bytes_per_cycle: -1.0 },
            ConfigError::InvalidClock { mhz: 0.0 },
            ConfigError::ZeroWordBytes,
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConfigError>();
    }
}

//! Scratchpad fit analysis and DRAM traffic modelling.
//!
//! Each operand (ifmap, filter, ofmap) lives in its own double-buffered
//! scratchpad: half the capacity holds the working tile while the other
//! half is pre-filled with the next tile. DRAM traffic for an operand is
//! determined by a three-tier reuse model:
//!
//! 1. **Resident** — the full operand fits in half the scratchpad: it is
//!    fetched exactly once.
//! 2. **Tiled** — the per-fold working tile fits: tiles are fetched once
//!    per pass the fold loop makes over the operand (the re-fetch factor
//!    depends on the dataflow's loop order).
//! 3. **Streamed** — not even one tile fits: every SRAM read misses on
//!    chip reuse and the full stream comes from DRAM.

use crate::config::ArrayConfig;
use crate::dataflow::{Dataflow, FoldPlan};
use crate::layer::Layer;

/// Identifies one of the three accelerator scratchpads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BufferKind {
    /// Input feature map buffer.
    Ifmap,
    /// Filter/weight buffer.
    Filter,
    /// Output feature map / partial sum buffer.
    Ofmap,
}

/// Reuse tier assigned to an operand by the fit analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReuseTier {
    /// Whole operand resident on chip; fetched once.
    Resident,
    /// Tiles resident; refetched once per outer-loop pass.
    Tiled,
    /// No on-chip reuse; full stream from DRAM.
    Streamed,
}

/// DRAM traffic and stall plan for one layer on one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScratchpadPlan {
    /// Reuse tier of the input feature map.
    pub ifmap_tier: ReuseTier,
    /// Reuse tier of the filters.
    pub filter_tier: ReuseTier,
    /// Whether partial sums spill to DRAM (ofmap buffer too small).
    pub psum_spills: bool,
    /// Total DRAM read traffic in bytes.
    pub dram_read_bytes: u64,
    /// Total DRAM write traffic in bytes.
    pub dram_write_bytes: u64,
    /// Cycles stalled waiting on DRAM (beyond compute overlap).
    pub stall_cycles: u64,
    /// Cycles of the initial, non-overlappable tile fill.
    pub fill_cycles: u64,
}

impl ScratchpadPlan {
    /// Analyses operand reuse and DRAM stalls for `layer` executed
    /// according to `plan` on `config`.
    pub fn analyze(config: &ArrayConfig, layer: &Layer, plan: &FoldPlan) -> ScratchpadPlan {
        let w = config.word_bytes() as u64;
        let gemm = plan.gemm;

        // Pooling and other bypass layers only move data.
        if layer.gemm().is_none() || gemm.is_empty() {
            let read = layer.ifmap_elements() * w;
            let write = layer.ofmap_elements() * w;
            let bw = config.dram_bandwidth_bytes_per_cycle();
            let fill = ((read + write) as f64 / bw).ceil() as u64;
            return ScratchpadPlan {
                ifmap_tier: ReuseTier::Streamed,
                filter_tier: ReuseTier::Resident,
                psum_spills: false,
                dram_read_bytes: read,
                dram_write_bytes: write,
                stall_cycles: fill,
                fill_cycles: fill,
            };
        }

        let half = |bytes: usize| (bytes as u64) / 2;
        let ifmap_cap = half(config.ifmap_sram_bytes());
        let filter_cap = half(config.filter_sram_bytes());
        let ofmap_cap = half(config.ofmap_sram_bytes());

        let unique_ifmap = layer.ifmap_elements() * w;
        let unique_filter = layer.filter_elements() * w;
        let unique_ofmap = layer.ofmap_elements() * w;

        // Per-fold operand tiles and refetch factors by dataflow loop order.
        let (ifmap_tile, filter_tile, ifmap_refetch, filter_refetch) = match plan.dataflow {
            // Loop order: row folds outer, col folds inner. The A (ifmap)
            // tile stays put across the inner loop; B (filter) is re-read
            // on every outer iteration.
            Dataflow::OutputStationary => (
                (plan.rows.min(gemm.m) * gemm.k) as u64 * w,
                (plan.cols.min(gemm.n) * gemm.k) as u64 * w,
                1u64,
                plan.row_folds as u64,
            ),
            // Loop order: reduction folds outer, col folds inner. Input
            // rows stream once per (kf, cf) pair -> refetch = col folds.
            Dataflow::WeightStationary => (
                (gemm.m * plan.rows.min(gemm.k)) as u64 * w,
                (plan.rows.min(gemm.k) * plan.cols.min(gemm.n)) as u64 * w,
                plan.col_folds as u64,
                1u64,
            ),
            // Symmetric to WS with operands swapped.
            Dataflow::InputStationary => (
                (plan.rows.min(gemm.k) * plan.cols.min(gemm.m)) as u64 * w,
                (gemm.n * plan.rows.min(gemm.k)) as u64 * w,
                1u64,
                plan.col_folds as u64,
            ),
        };

        let ifmap_stream = plan.ifmap_sram_reads * w;
        let filter_stream = plan.filter_sram_reads * w;

        let (ifmap_tier, ifmap_dram) =
            tier_traffic(unique_ifmap, ifmap_tile, ifmap_refetch, ifmap_stream, ifmap_cap);
        let (filter_tier, filter_dram) =
            tier_traffic(unique_filter, filter_tile, filter_refetch, filter_stream, filter_cap);

        // Partial sums: WS/IS write M*C psums per fold into the ofmap
        // buffer. If the per-fold psum working set exceeds the buffer, the
        // merge traffic spills to DRAM.
        let psum_working = match plan.dataflow {
            Dataflow::OutputStationary => {
                (plan.rows.min(gemm.m) * plan.cols.min(gemm.n)) as u64 * w
            }
            Dataflow::WeightStationary => (gemm.m * plan.cols.min(gemm.n)) as u64 * w,
            Dataflow::InputStationary => (gemm.n * plan.cols.min(gemm.m)) as u64 * w,
        };
        let psum_spills = psum_working > ofmap_cap && plan.reduction_folds > 1;
        let mut dram_write = unique_ofmap;
        let mut dram_read = ifmap_dram + filter_dram;
        if psum_spills {
            // All merge traffic beyond the final result goes off-chip.
            dram_write += plan.ofmap_sram_writes.saturating_sub(layer.ofmap_elements()) * w;
            dram_read += plan.ofmap_sram_reads * w;
        }

        // Stall model: the first tile of each operand must land before
        // compute starts (fill); all remaining traffic overlaps compute via
        // double buffering, stalling only when demand exceeds bandwidth.
        let bw = config.dram_bandwidth_bytes_per_cycle();
        let first_fill = ifmap_tile.min(ifmap_dram) + filter_tile.min(filter_dram);
        let fill_cycles = (first_fill as f64 / bw).ceil() as u64;
        let total_dram = dram_read + dram_write;
        let dram_cycles = (total_dram as f64 / bw).ceil() as u64;
        let overlap = plan.compute_cycles;
        let stall_cycles = fill_cycles + dram_cycles.saturating_sub(overlap + fill_cycles);

        ScratchpadPlan {
            ifmap_tier,
            filter_tier,
            psum_spills,
            dram_read_bytes: dram_read,
            dram_write_bytes: dram_write,
            stall_cycles,
            fill_cycles,
        }
    }

    /// Total DRAM traffic in bytes.
    pub fn dram_total_bytes(&self) -> u64 {
        self.dram_read_bytes + self.dram_write_bytes
    }
}

/// Applies the three-tier reuse model to one operand.
fn tier_traffic(
    unique: u64,
    tile: u64,
    refetch: u64,
    stream: u64,
    capacity: u64,
) -> (ReuseTier, u64) {
    if unique <= capacity {
        (ReuseTier::Resident, unique)
    } else if tile <= capacity {
        // Tiles are fetched `refetch` times; never more than the raw stream
        // and never less than one full pass.
        let traffic = (unique * refetch.max(1)).min(stream).max(unique);
        (ReuseTier::Tiled, traffic)
    } else {
        (ReuseTier::Streamed, stream.max(unique))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::GemmShape;

    fn config(kb: usize, bw: f64) -> ArrayConfig {
        ArrayConfig::builder()
            .rows(16)
            .cols(16)
            .ifmap_sram_kb(kb)
            .filter_sram_kb(kb)
            .ofmap_sram_kb(kb)
            .dram_bandwidth(bw)
            .build()
            .unwrap()
    }

    fn analyze(cfg: &ArrayConfig, layer: &Layer) -> (FoldPlan, ScratchpadPlan) {
        let plan = FoldPlan::plan(cfg.dataflow(), layer.gemm().unwrap(), cfg.rows(), cfg.cols());
        let sp = ScratchpadPlan::analyze(cfg, layer, &plan);
        (plan, sp)
    }

    #[test]
    fn small_layer_fully_resident() {
        let cfg = config(1024, 16.0);
        let layer = Layer::conv2d(16, 16, 8, 8, 3, 1, 1);
        let (_, sp) = analyze(&cfg, &layer);
        assert_eq!(sp.ifmap_tier, ReuseTier::Resident);
        assert_eq!(sp.filter_tier, ReuseTier::Resident);
        assert!(!sp.psum_spills);
        assert_eq!(sp.dram_read_bytes, layer.ifmap_elements() + layer.filter_elements());
        assert_eq!(sp.dram_write_bytes, layer.ofmap_elements());
    }

    #[test]
    fn tiny_sram_forces_streaming() {
        // 1 KiB scratchpads cannot hold a 112x112x32 operand.
        let cfg = config(1, 16.0);
        let layer = Layer::conv2d(112, 112, 32, 64, 3, 1, 1);
        let (plan, sp) = analyze(&cfg, &layer);
        assert_eq!(sp.ifmap_tier, ReuseTier::Streamed);
        assert!(sp.dram_read_bytes >= layer.ifmap_elements() + layer.filter_elements());
        assert!(sp.dram_read_bytes <= (plan.ifmap_sram_reads + plan.filter_sram_reads) + 1);
    }

    #[test]
    fn traffic_monotone_in_sram_size() {
        let layer = Layer::conv2d(56, 56, 64, 128, 3, 1, 1);
        let mut prev = u64::MAX;
        for kb in [2, 8, 32, 128, 512, 2048] {
            let cfg = config(kb, 16.0);
            let (_, sp) = analyze(&cfg, &layer);
            assert!(sp.dram_total_bytes() <= prev, "traffic increased when SRAM grew to {kb} KiB");
            prev = sp.dram_total_bytes();
        }
    }

    #[test]
    fn traffic_lower_bound_is_unique_footprint() {
        let layer = Layer::conv2d(56, 56, 64, 128, 3, 1, 1);
        for kb in [2, 64, 4096] {
            let cfg = config(kb, 16.0);
            let (_, sp) = analyze(&cfg, &layer);
            let unique = layer.ifmap_elements() + layer.filter_elements() + layer.ofmap_elements();
            assert!(sp.dram_total_bytes() >= unique);
        }
    }

    #[test]
    fn low_bandwidth_stalls_more() {
        let layer = Layer::conv2d(56, 56, 64, 128, 3, 1, 1);
        let fast = analyze(&config(64, 64.0), &layer).1;
        let slow = analyze(&config(64, 1.0), &layer).1;
        assert!(slow.stall_cycles > fast.stall_cycles);
    }

    #[test]
    fn pool_layer_is_traffic_only() {
        let cfg = config(64, 16.0);
        let layer = Layer::Pool { in_h: 32, in_w: 32, channels: 16, window: 2 };
        let plan = FoldPlan::plan(cfg.dataflow(), GemmShape { m: 0, k: 0, n: 0 }, 16, 16);
        let sp = ScratchpadPlan::analyze(&cfg, &layer, &plan);
        assert_eq!(sp.dram_read_bytes, layer.ifmap_elements());
        assert_eq!(sp.dram_write_bytes, layer.ofmap_elements());
        assert!(sp.stall_cycles > 0);
    }

    #[test]
    fn ws_psum_spill_detected_when_ofmap_tiny() {
        let mut b = ArrayConfig::builder();
        let cfg = b
            .rows(16)
            .cols(16)
            .dataflow(Dataflow::WeightStationary)
            .ifmap_sram_kb(256)
            .filter_sram_kb(256)
            .ofmap_sram_kb(2)
            .build()
            .unwrap();
        // Big M with multiple K folds -> psum working set >> 1 KiB.
        let layer = Layer::conv2d(64, 64, 32, 64, 3, 1, 1);
        let plan = FoldPlan::plan(cfg.dataflow(), layer.gemm().unwrap(), 16, 16);
        let sp = ScratchpadPlan::analyze(&cfg, &layer, &plan);
        assert!(sp.psum_spills);
        assert!(sp.dram_write_bytes > layer.ofmap_elements());
    }

    #[test]
    fn fill_cycles_never_exceed_stall_cycles() {
        let layer = Layer::conv2d(28, 28, 16, 32, 3, 1, 1);
        for kb in [2, 64, 1024] {
            let (_, sp) = analyze(&config(kb, 8.0), &layer);
            assert!(sp.fill_cycles <= sp.stall_cycles);
        }
    }
}

//! Per-(array config, layer shape) memoization of layer simulations.
//!
//! A [`crate::report::LayerStats`] is a pure function of the array
//! configuration's timing-relevant knobs and the layer shape — the clock
//! only enters at the network level, when cycles are converted to
//! seconds. Joint NN×accelerator design-space exploration therefore
//! re-simulates the same (config, layer) pair many times: candidate
//! networks share conv/FC layer shapes, and Phase-3 frequency scaling
//! sweeps the clock across an otherwise identical configuration. The
//! [`LayerMemo`] caches each pair once and serves every repeat from the
//! map, one level below the per-design-point candidate cache.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use autopilot_obs as obs;

use crate::config::ArrayConfig;
use crate::dataflow::Dataflow;
use crate::layer::Layer;
use crate::report::{LayerStats, NetworkStats};
use crate::sim::Simulator;

/// Everything that determines a layer's cycle/traffic statistics — the
/// array configuration minus the clock (LayerStats is clock-independent,
/// so frequency-scaling sweeps hit the same entries) plus the layer
/// shape. The DRAM bandwidth is keyed by bit pattern; configurations
/// validate it as positive and finite, so `NaN` never reaches the key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct MemoKey {
    rows: usize,
    cols: usize,
    ifmap_sram_bytes: usize,
    filter_sram_bytes: usize,
    ofmap_sram_bytes: usize,
    dataflow: Dataflow,
    dram_bandwidth_bits: u64,
    word_bytes: usize,
    layer: Layer,
}

impl MemoKey {
    fn new(config: &ArrayConfig, layer: &Layer) -> MemoKey {
        MemoKey {
            rows: config.rows(),
            cols: config.cols(),
            ifmap_sram_bytes: config.ifmap_sram_bytes(),
            filter_sram_bytes: config.filter_sram_bytes(),
            ofmap_sram_bytes: config.ofmap_sram_bytes(),
            dataflow: config.dataflow(),
            dram_bandwidth_bits: config.dram_bandwidth_bytes_per_cycle().to_bits(),
            word_bytes: config.word_bytes(),
            layer: *layer,
        }
    }
}

/// Hit/miss/entry counters of a [`LayerMemo`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoStats {
    /// Layer simulations served from the memo.
    pub hits: u64,
    /// Layer simulations that actually ran the cycle model.
    pub misses: u64,
    /// Distinct (config, layer) pairs cached.
    pub entries: usize,
}

impl MemoStats {
    /// Fraction of lookups served from the memo (`0.0` before any
    /// lookup).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Thread-safe memo of layer simulations, keyed by the timing-relevant
/// configuration knobs and the layer shape.
///
/// Results are bit-identical to simulating directly: the simulator is
/// deterministic, so a cached [`LayerStats`] is exactly what a re-run
/// would produce, and [`NetworkStats`] still takes its clock from the
/// simulator at hand (a memo shared across clocks stays correct). The
/// simulation obs counters (`systolic.layers`, cycle and traffic
/// totals) are only recorded on a miss — they keep counting *actual*
/// simulations — while `systolic.memo.hits`/`systolic.memo.misses`
/// record the memo traffic itself.
///
/// Set `AUTOPILOT_LAYER_MEMO=0` (or `off`/`false`) in the environment to
/// construct disabled memos that delegate every call straight to the
/// simulator.
#[derive(Debug, Default)]
pub struct LayerMemo {
    entries: Mutex<HashMap<MemoKey, LayerStats>>,
    hits: AtomicU64,
    misses: AtomicU64,
    disabled: bool,
}

impl LayerMemo {
    /// Creates an empty memo, honouring the `AUTOPILOT_LAYER_MEMO`
    /// environment gate at construction time.
    pub fn new() -> LayerMemo {
        let disabled = matches!(
            std::env::var("AUTOPILOT_LAYER_MEMO").as_deref(),
            Ok("0") | Ok("off") | Ok("false")
        );
        LayerMemo { disabled, ..LayerMemo::default() }
    }

    /// Creates a memo with the environment gate overridden.
    pub fn with_enabled(enabled: bool) -> LayerMemo {
        LayerMemo { disabled: !enabled, ..LayerMemo::default() }
    }

    /// True when lookups actually consult the cache.
    pub fn enabled(&self) -> bool {
        !self.disabled
    }

    fn map_lock(&self) -> MutexGuard<'_, HashMap<MemoKey, LayerStats>> {
        self.entries.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Simulates `layer` under `sim`'s configuration, serving repeats of
    /// the same (config, layer) pair from the memo.
    pub fn simulate_layer(&self, sim: &Simulator, layer: &Layer) -> LayerStats {
        if self.disabled {
            return sim.simulate_layer(layer);
        }
        let key = MemoKey::new(sim.config(), layer);
        if let Some(stats) = self.map_lock().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            obs::add("systolic.memo.hits", 1);
            return stats.clone();
        }
        // Simulate outside the lock so workers fill distinct entries
        // concurrently; a racing duplicate insert is harmless (both
        // computed the same deterministic stats).
        let stats = obs::time("systolic.layer_sim", || sim.simulate_layer(layer));
        self.misses.fetch_add(1, Ordering::Relaxed);
        obs::add("systolic.memo.misses", 1);
        self.map_lock().entry(key).or_insert_with(|| stats.clone());
        stats
    }

    /// Simulates every layer of `network` in order through the memo. The
    /// clock comes from `sim`, so the same memo serves every point of a
    /// frequency-scaling sweep.
    pub fn simulate_network(&self, sim: &Simulator, network: &[Layer]) -> NetworkStats {
        let _span = obs::span("systolic.network");
        NetworkStats {
            layers: network.iter().map(|l| self.simulate_layer(sim, l)).collect(),
            clock_mhz: sim.config().clock_mhz(),
        }
    }

    /// Snapshots hit/miss/entry counters.
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.map_lock().len(),
        }
    }

    /// Number of distinct (config, layer) pairs cached.
    pub fn len(&self) -> usize {
        self.map_lock().len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached entry (counters are kept).
    pub fn clear(&self) {
        self.map_lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ArrayConfig;
    use crate::dataflow::Dataflow;

    fn sim(rows: usize, cols: usize) -> Simulator {
        Simulator::new(ArrayConfig::builder().rows(rows).cols(cols).build().unwrap())
    }

    #[test]
    fn memoized_stats_equal_direct_simulation() {
        let memo = LayerMemo::with_enabled(true);
        let s = sim(16, 16);
        let layers =
            [Layer::conv2d(32, 32, 3, 16, 3, 2, 1), Layer::dense(1024, 25), Layer::dense(1024, 25)];
        for l in &layers {
            let direct = s.simulate_layer(l);
            let memoized = memo.simulate_layer(&s, l);
            assert_eq!(direct, memoized);
            // Second call must hit and return the identical stats.
            assert_eq!(memo.simulate_layer(&s, l), direct);
        }
        let st = memo.stats();
        assert_eq!(st.entries, 2, "duplicate dense layer shares one entry");
        assert_eq!(st.misses, 2);
        assert_eq!(st.hits, 4);
        assert!((st.hit_rate() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn network_stats_match_plain_simulator() {
        let memo = LayerMemo::with_enabled(true);
        let s = sim(32, 32);
        let net = [Layer::conv2d(84, 84, 3, 32, 3, 2, 1), Layer::dense(4096, 25)];
        assert_eq!(memo.simulate_network(&s, &net), s.simulate_network(&net));
        assert_eq!(memo.simulate_network(&s, &net), s.simulate_network(&net));
    }

    #[test]
    fn different_configs_do_not_collide() {
        let memo = LayerMemo::with_enabled(true);
        let layer = Layer::conv2d(32, 32, 3, 16, 3, 2, 1);
        let a = memo.simulate_layer(&sim(16, 16), &layer);
        let b = memo.simulate_layer(&sim(64, 64), &layer);
        assert_ne!(a.compute_cycles, b.compute_cycles);
        assert_eq!(memo.len(), 2);
        let df = Simulator::new(
            ArrayConfig::builder()
                .rows(16)
                .cols(16)
                .dataflow(Dataflow::WeightStationary)
                .build()
                .unwrap(),
        );
        let c = memo.simulate_layer(&df, &layer);
        assert_eq!(memo.len(), 3);
        assert_eq!(c, df.simulate_layer(&layer));
    }

    #[test]
    fn clock_change_hits_the_same_entry() {
        let memo = LayerMemo::with_enabled(true);
        let base = ArrayConfig::builder().rows(16).cols(16).clock_mhz(200.0).build().unwrap();
        let fast = base.with_clock_mhz(800.0).unwrap();
        let net = [Layer::dense(1024, 25)];
        let slow_stats = memo.simulate_network(&Simulator::new(base), &net);
        let fast_stats = memo.simulate_network(&Simulator::new(fast), &net);
        assert_eq!(memo.len(), 1, "clock must not be part of the memo key");
        assert_eq!(memo.stats().hits, 1);
        assert_eq!(slow_stats.total_cycles(), fast_stats.total_cycles());
        assert!(fast_stats.fps() > slow_stats.fps());
    }

    #[test]
    fn disabled_memo_caches_nothing() {
        let memo = LayerMemo::with_enabled(false);
        assert!(!memo.enabled());
        let s = sim(16, 16);
        let layer = Layer::dense(512, 25);
        let a = memo.simulate_layer(&s, &layer);
        let b = memo.simulate_layer(&s, &layer);
        assert_eq!(a, b);
        assert!(memo.is_empty());
        assert_eq!(memo.stats(), MemoStats::default());
    }

    #[test]
    fn clear_drops_entries() {
        let memo = LayerMemo::with_enabled(true);
        memo.simulate_layer(&sim(8, 8), &Layer::dense(256, 25));
        assert_eq!(memo.len(), 1);
        memo.clear();
        assert!(memo.is_empty());
        assert_eq!(memo.stats().misses, 1, "counters survive clear");
    }
}

//! Per-(array config, layer shape) memoization of layer simulations.
//!
//! A [`crate::report::LayerStats`] is a pure function of the array
//! configuration's timing-relevant knobs and the layer shape — the clock
//! only enters at the network level, when cycles are converted to
//! seconds. Joint NN×accelerator design-space exploration therefore
//! re-simulates the same (config, layer) pair many times: candidate
//! networks share conv/FC layer shapes, and Phase-3 frequency scaling
//! sweeps the clock across an otherwise identical configuration. The
//! [`LayerMemo`] caches each pair once and serves every repeat from the
//! map, one level below the per-design-point candidate cache.
//!
//! The backing store is an [`autopilot_shard::ShardedMap`]: N-way
//! sharded by key hash with per-shard locks, so a memo promoted to
//! process lifetime (the DSE server shares one across every job) scales
//! with concurrent tenants, and — when constructed through
//! [`LayerMemo::bounded`] — clock-evicts cold entries instead of
//! growing without bound. Entries are tagged with the inserting job's
//! owner id; a hit served from *another* owner's entry counts as a
//! **cross-run hit** (`systolic.memo.cross_run_hits`), the number that
//! proves tenants are serving each other's simulated layers.

use std::sync::atomic::{AtomicU64, Ordering};

use autopilot_obs as obs;
use autopilot_shard::ShardedMap;

use crate::config::ArrayConfig;
use crate::dataflow::Dataflow;
use crate::layer::Layer;
use crate::report::{LayerStats, NetworkStats};
use crate::sim::Simulator;

/// Everything that determines a layer's cycle/traffic statistics — the
/// array configuration minus the clock (LayerStats is clock-independent,
/// so frequency-scaling sweeps hit the same entries) plus the layer
/// shape. The DRAM bandwidth is keyed by bit pattern; configurations
/// validate it as positive and finite, so `NaN` never reaches the key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct MemoKey {
    rows: usize,
    cols: usize,
    ifmap_sram_bytes: usize,
    filter_sram_bytes: usize,
    ofmap_sram_bytes: usize,
    dataflow: Dataflow,
    dram_bandwidth_bits: u64,
    word_bytes: usize,
    layer: Layer,
}

impl MemoKey {
    fn new(config: &ArrayConfig, layer: &Layer) -> MemoKey {
        MemoKey {
            rows: config.rows(),
            cols: config.cols(),
            ifmap_sram_bytes: config.ifmap_sram_bytes(),
            filter_sram_bytes: config.filter_sram_bytes(),
            ofmap_sram_bytes: config.ofmap_sram_bytes(),
            dataflow: config.dataflow(),
            dram_bandwidth_bits: config.dram_bandwidth_bytes_per_cycle().to_bits(),
            word_bytes: config.word_bytes(),
            layer: *layer,
        }
    }
}

/// Hit/miss/entry counters of a [`LayerMemo`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoStats {
    /// Layer simulations served from the memo.
    pub hits: u64,
    /// Layer simulations that actually ran the cycle model.
    pub misses: u64,
    /// Distinct (config, layer) pairs cached.
    pub entries: usize,
    /// Hits served from an entry inserted by a *different* owner (job):
    /// the cross-tenant sharing a process-lifetime memo exists for.
    /// Always zero for single-run memos (every caller is owner 0).
    pub cross_run_hits: u64,
    /// Entries displaced by clock eviction (only possible for memos
    /// built with [`LayerMemo::bounded`]).
    pub evictions: u64,
}

impl MemoStats {
    /// Fraction of lookups served from the memo (`0.0` before any
    /// lookup).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Thread-safe memo of layer simulations, keyed by the timing-relevant
/// configuration knobs and the layer shape.
///
/// Results are bit-identical to simulating directly: the simulator is
/// deterministic, so a cached [`LayerStats`] is exactly what a re-run
/// would produce, and [`NetworkStats`] still takes its clock from the
/// simulator at hand (a memo shared across clocks stays correct). The
/// simulation obs counters (`systolic.layers`, cycle and traffic
/// totals) are only recorded on a miss — they keep counting *actual*
/// simulations — while `systolic.memo.hits`/`systolic.memo.misses`
/// record the memo traffic itself.
///
/// Set `AUTOPILOT_LAYER_MEMO=0` (or `off`/`false`) in the environment to
/// construct disabled memos that delegate every call straight to the
/// simulator. The variable is captured once per process (see
/// [`autopilot_obs::env_once`]); per-job gating goes through the core
/// crate's `JobConfig` instead of env mutation.
#[derive(Debug)]
pub struct LayerMemo {
    map: ShardedMap<MemoKey, LayerStats>,
    hits: AtomicU64,
    misses: AtomicU64,
    cross_run_hits: AtomicU64,
    disabled: bool,
}

/// Shard fan-out for every memo; per-run memos stay tiny, and the
/// process-lifetime server memo wants contention spread across jobs.
const MEMO_SHARDS: usize = 8;

impl Default for LayerMemo {
    fn default() -> LayerMemo {
        LayerMemo::with_enabled(true)
    }
}

impl LayerMemo {
    /// Creates an empty, unbounded memo, honouring the
    /// `AUTOPILOT_LAYER_MEMO` environment gate (as captured at the first
    /// read this process) at construction time.
    pub fn new() -> LayerMemo {
        LayerMemo::with_enabled(LayerMemo::env_default_enabled())
    }

    /// The `AUTOPILOT_LAYER_MEMO` startup default: `false` when the
    /// variable was `0`/`off`/`false` at its first read this process.
    /// This is the default `JobConfig` picks up.
    pub fn env_default_enabled() -> bool {
        static CACHED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        let raw = obs::env_once("AUTOPILOT_LAYER_MEMO");
        *CACHED.get_or_init(|| !matches!(raw.as_deref(), Some("0") | Some("off") | Some("false")))
    }

    /// Creates an unbounded memo with the environment gate overridden.
    pub fn with_enabled(enabled: bool) -> LayerMemo {
        LayerMemo {
            map: ShardedMap::new(MEMO_SHARDS, 0).with_obs_prefix("systolic.memo"),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            cross_run_hits: AtomicU64::new(0),
            disabled: !enabled,
        }
    }

    /// Creates an enabled memo bounded to roughly `capacity` entries
    /// spread across [`MEMO_SHARDS`] shards, with clock (second-chance)
    /// eviction once a shard fills — the process-lifetime configuration
    /// the DSE server shares across all jobs.
    pub fn bounded(capacity: usize) -> LayerMemo {
        LayerMemo {
            map: ShardedMap::new(MEMO_SHARDS, capacity).with_obs_prefix("systolic.memo"),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            cross_run_hits: AtomicU64::new(0),
            disabled: false,
        }
    }

    /// True when lookups actually consult the cache.
    pub fn enabled(&self) -> bool {
        !self.disabled
    }

    /// Simulates `layer` under `sim`'s configuration, serving repeats of
    /// the same (config, layer) pair from the memo. Single-tenant entry
    /// point: everything is owner 0, so no cross-run hits are counted.
    pub fn simulate_layer(&self, sim: &Simulator, layer: &Layer) -> LayerStats {
        self.simulate_layer_as(0, sim, layer)
    }

    /// Like [`LayerMemo::simulate_layer`], attributing inserts to
    /// `owner` (a job id). A hit on an entry inserted by a different
    /// owner counts toward `systolic.memo.cross_run_hits`: one tenant's
    /// simulation served another's lookup.
    pub fn simulate_layer_as(&self, owner: u64, sim: &Simulator, layer: &Layer) -> LayerStats {
        if self.disabled {
            return sim.simulate_layer(layer);
        }
        let key = MemoKey::new(sim.config(), layer);
        if let Some((stats, entry_owner)) = self.map.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            obs::add("systolic.memo.hits", 1);
            if entry_owner != owner {
                self.cross_run_hits.fetch_add(1, Ordering::Relaxed);
                obs::add("systolic.memo.cross_run_hits", 1);
            }
            return stats;
        }
        // Simulate outside the lock so workers fill distinct entries
        // concurrently; a racing duplicate insert is harmless (both
        // computed the same deterministic stats).
        let stats = obs::time("systolic.layer_sim", || sim.simulate_layer(layer));
        self.misses.fetch_add(1, Ordering::Relaxed);
        obs::add("systolic.memo.misses", 1);
        self.map.insert(key, stats.clone(), owner);
        stats
    }

    /// Simulates every layer of `network` in order through the memo. The
    /// clock comes from `sim`, so the same memo serves every point of a
    /// frequency-scaling sweep.
    pub fn simulate_network(&self, sim: &Simulator, network: &[Layer]) -> NetworkStats {
        self.simulate_network_as(0, sim, network)
    }

    /// Like [`LayerMemo::simulate_network`], attributing the lookups to
    /// `owner` for cross-run accounting.
    pub fn simulate_network_as(
        &self,
        owner: u64,
        sim: &Simulator,
        network: &[Layer],
    ) -> NetworkStats {
        let _span = obs::span("systolic.network");
        NetworkStats {
            layers: network.iter().map(|l| self.simulate_layer_as(owner, sim, l)).collect(),
            clock_mhz: sim.config().clock_mhz(),
        }
    }

    /// Snapshots hit/miss/entry counters.
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.map.len(),
            cross_run_hits: self.cross_run_hits.load(Ordering::Relaxed),
            evictions: self.map.stats().evictions,
        }
    }

    /// Number of distinct (config, layer) pairs cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drops every cached entry (counters are kept).
    pub fn clear(&self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ArrayConfig;
    use crate::dataflow::Dataflow;

    fn sim(rows: usize, cols: usize) -> Simulator {
        Simulator::new(ArrayConfig::builder().rows(rows).cols(cols).build().unwrap())
    }

    #[test]
    fn memoized_stats_equal_direct_simulation() {
        let memo = LayerMemo::with_enabled(true);
        let s = sim(16, 16);
        let layers =
            [Layer::conv2d(32, 32, 3, 16, 3, 2, 1), Layer::dense(1024, 25), Layer::dense(1024, 25)];
        for l in &layers {
            let direct = s.simulate_layer(l);
            let memoized = memo.simulate_layer(&s, l);
            assert_eq!(direct, memoized);
            // Second call must hit and return the identical stats.
            assert_eq!(memo.simulate_layer(&s, l), direct);
        }
        let st = memo.stats();
        assert_eq!(st.entries, 2, "duplicate dense layer shares one entry");
        assert_eq!(st.misses, 2);
        assert_eq!(st.hits, 4);
        assert!((st.hit_rate() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn network_stats_match_plain_simulator() {
        let memo = LayerMemo::with_enabled(true);
        let s = sim(32, 32);
        let net = [Layer::conv2d(84, 84, 3, 32, 3, 2, 1), Layer::dense(4096, 25)];
        assert_eq!(memo.simulate_network(&s, &net), s.simulate_network(&net));
        assert_eq!(memo.simulate_network(&s, &net), s.simulate_network(&net));
    }

    #[test]
    fn different_configs_do_not_collide() {
        let memo = LayerMemo::with_enabled(true);
        let layer = Layer::conv2d(32, 32, 3, 16, 3, 2, 1);
        let a = memo.simulate_layer(&sim(16, 16), &layer);
        let b = memo.simulate_layer(&sim(64, 64), &layer);
        assert_ne!(a.compute_cycles, b.compute_cycles);
        assert_eq!(memo.len(), 2);
        let df = Simulator::new(
            ArrayConfig::builder()
                .rows(16)
                .cols(16)
                .dataflow(Dataflow::WeightStationary)
                .build()
                .unwrap(),
        );
        let c = memo.simulate_layer(&df, &layer);
        assert_eq!(memo.len(), 3);
        assert_eq!(c, df.simulate_layer(&layer));
    }

    #[test]
    fn clock_change_hits_the_same_entry() {
        let memo = LayerMemo::with_enabled(true);
        let base = ArrayConfig::builder().rows(16).cols(16).clock_mhz(200.0).build().unwrap();
        let fast = base.with_clock_mhz(800.0).unwrap();
        let net = [Layer::dense(1024, 25)];
        let slow_stats = memo.simulate_network(&Simulator::new(base), &net);
        let fast_stats = memo.simulate_network(&Simulator::new(fast), &net);
        assert_eq!(memo.len(), 1, "clock must not be part of the memo key");
        assert_eq!(memo.stats().hits, 1);
        assert_eq!(slow_stats.total_cycles(), fast_stats.total_cycles());
        assert!(fast_stats.fps() > slow_stats.fps());
    }

    #[test]
    fn disabled_memo_caches_nothing() {
        let memo = LayerMemo::with_enabled(false);
        assert!(!memo.enabled());
        let s = sim(16, 16);
        let layer = Layer::dense(512, 25);
        let a = memo.simulate_layer(&s, &layer);
        let b = memo.simulate_layer(&s, &layer);
        assert_eq!(a, b);
        assert!(memo.is_empty());
        assert_eq!(memo.stats(), MemoStats::default());
    }

    #[test]
    fn cross_run_hits_attributed_by_owner() {
        let memo = LayerMemo::with_enabled(true);
        let s = sim(16, 16);
        let layer = Layer::dense(512, 25);
        memo.simulate_layer_as(1, &s, &layer); // miss: owner 1 inserts
        memo.simulate_layer_as(1, &s, &layer); // same-owner hit
        memo.simulate_layer_as(2, &s, &layer); // cross-run hit for owner 2
        let st = memo.stats();
        assert_eq!((st.hits, st.misses), (2, 1));
        assert_eq!(st.cross_run_hits, 1, "owner-2 hit on an owner-1 entry");
        // The owner-0 convenience path never counts cross-run traffic
        // against itself.
        let solo = LayerMemo::with_enabled(true);
        solo.simulate_layer(&s, &layer);
        solo.simulate_layer(&s, &layer);
        assert_eq!(solo.stats().cross_run_hits, 0);
    }

    #[test]
    fn bounded_memo_evicts_cold_entries() {
        let memo = LayerMemo::bounded(8);
        let s = sim(8, 8);
        for k in 0..40 {
            memo.simulate_layer(&s, &Layer::dense(64 + k, 25));
        }
        assert!(memo.len() <= 8, "bound violated: {} entries", memo.len());
        let st = memo.stats();
        assert!(st.evictions > 0, "no evictions recorded");
        assert_eq!(st.misses, 40, "every distinct layer simulates once");
    }

    #[test]
    fn clear_drops_entries() {
        let memo = LayerMemo::with_enabled(true);
        memo.simulate_layer(&sim(8, 8), &Layer::dense(256, 25));
        assert_eq!(memo.len(), 1);
        memo.clear();
        assert!(memo.is_empty());
        assert_eq!(memo.stats().misses, 1, "counters survive clear");
    }
}

//! Per-layer and per-network simulation reports.

use crate::layer::Layer;
use crate::memory::ReuseTier;

/// Simulation results for a single layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerStats {
    /// The simulated layer.
    pub layer: Layer,
    /// Compute cycles (fold pipeline, no memory stalls).
    pub compute_cycles: u64,
    /// Cycles stalled on DRAM (fill + bandwidth).
    pub stall_cycles: u64,
    /// Total cycles = compute + stalls.
    pub total_cycles: u64,
    /// MAC operations executed.
    pub macs: u64,
    /// Array utilization over the total (stall-inclusive) window.
    pub utilization: f64,
    /// SRAM reads from the ifmap buffer (elements).
    pub ifmap_sram_reads: u64,
    /// SRAM reads from the filter buffer (elements).
    pub filter_sram_reads: u64,
    /// SRAM writes to the ofmap buffer (elements).
    pub ofmap_sram_writes: u64,
    /// SRAM reads from the ofmap buffer (partial-sum merges, elements).
    pub ofmap_sram_reads: u64,
    /// DRAM read traffic (bytes).
    pub dram_read_bytes: u64,
    /// DRAM write traffic (bytes).
    pub dram_write_bytes: u64,
    /// Reuse tier of the ifmap operand.
    pub ifmap_tier: ReuseTier,
    /// Reuse tier of the filter operand.
    pub filter_tier: ReuseTier,
    /// Whether partial sums spilled to DRAM.
    pub psum_spills: bool,
}

impl LayerStats {
    /// Total SRAM accesses (reads + writes) across all buffers, in
    /// elements.
    pub fn sram_accesses(&self) -> u64 {
        self.ifmap_sram_reads
            + self.filter_sram_reads
            + self.ofmap_sram_writes
            + self.ofmap_sram_reads
    }

    /// Total DRAM traffic in bytes.
    pub fn dram_total_bytes(&self) -> u64 {
        self.dram_read_bytes + self.dram_write_bytes
    }
}

/// Aggregated simulation results for a whole network.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkStats {
    /// Per-layer results in network order.
    pub layers: Vec<LayerStats>,
    /// Accelerator clock in MHz used for time conversions.
    pub clock_mhz: f64,
}

impl NetworkStats {
    /// Total cycles for one inference.
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.total_cycles).sum()
    }

    /// Total compute (stall-free) cycles.
    pub fn compute_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.compute_cycles).sum()
    }

    /// Total stall cycles.
    pub fn stall_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.stall_cycles).sum()
    }

    /// Total MACs for one inference.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.macs).sum()
    }

    /// Latency of one inference in seconds.
    pub fn latency_s(&self) -> f64 {
        self.total_cycles() as f64 / (self.clock_mhz * 1.0e6)
    }

    /// Latency of one inference in milliseconds.
    pub fn latency_ms(&self) -> f64 {
        self.latency_s() * 1.0e3
    }

    /// Inference throughput in frames per second (batch 1, no pipelining
    /// across frames).
    pub fn fps(&self) -> f64 {
        let s = self.latency_s();
        if s > 0.0 {
            1.0 / s
        } else {
            f64::INFINITY
        }
    }

    /// MAC-weighted mean utilization across layers.
    pub fn mean_utilization(&self) -> f64 {
        let macs = self.total_macs();
        if macs == 0 {
            return 0.0;
        }
        self.layers.iter().map(|l| l.utilization * l.macs as f64).sum::<f64>() / macs as f64
    }

    /// Total SRAM accesses (elements).
    pub fn sram_accesses(&self) -> u64 {
        self.layers.iter().map(|l| l.sram_accesses()).sum()
    }

    /// Total DRAM read traffic in bytes.
    pub fn dram_read_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.dram_read_bytes).sum()
    }

    /// Total DRAM write traffic in bytes.
    pub fn dram_write_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.dram_write_bytes).sum()
    }

    /// Total DRAM traffic in bytes.
    pub fn dram_total_bytes(&self) -> u64 {
        self.dram_read_bytes() + self.dram_write_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArrayConfig, Layer, Simulator};

    fn stats() -> NetworkStats {
        let sim = Simulator::new(ArrayConfig::default());
        sim.simulate_network(&[
            Layer::conv2d(32, 32, 3, 16, 3, 2, 1),
            Layer::conv2d(16, 16, 16, 32, 3, 1, 1),
            Layer::dense(8192, 64),
        ])
    }

    #[test]
    fn totals_are_sums_of_layers() {
        let s = stats();
        assert_eq!(s.total_cycles(), s.layers.iter().map(|l| l.total_cycles).sum::<u64>());
        assert_eq!(s.total_cycles(), s.compute_cycles() + s.stall_cycles());
    }

    #[test]
    fn fps_is_reciprocal_of_latency() {
        let s = stats();
        let fps = s.fps();
        assert!((fps * s.latency_s() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn latency_ms_scales() {
        let s = stats();
        assert!((s.latency_ms() - s.latency_s() * 1e3).abs() < 1e-12);
    }

    #[test]
    fn mean_utilization_in_unit_interval() {
        let s = stats();
        let u = s.mean_utilization();
        assert!(u > 0.0 && u <= 1.0, "utilization {u}");
    }

    #[test]
    fn macs_match_layer_definitions() {
        let s = stats();
        let expected: u64 = [
            Layer::conv2d(32, 32, 3, 16, 3, 2, 1),
            Layer::conv2d(16, 16, 16, 32, 3, 1, 1),
            Layer::dense(8192, 64),
        ]
        .iter()
        .map(|l| l.mac_count())
        .sum();
        assert_eq!(s.total_macs(), expected);
    }

    #[test]
    fn sram_and_dram_totals_nonzero() {
        let s = stats();
        assert!(s.sram_accesses() > 0);
        assert!(s.dram_total_bytes() > 0);
    }
}

//! The simulator core tying fold plans, memory plans, and reports together.

use autopilot_obs as obs;

use crate::config::ArrayConfig;
use crate::dataflow::FoldPlan;
use crate::layer::Layer;
use crate::memory::ScratchpadPlan;
use crate::report::{LayerStats, NetworkStats};
use crate::trace::TraceIter;

/// Cycle-accurate simulator for one accelerator configuration.
///
/// The simulator is cheap to construct and stateless across calls; clone or
/// share it freely.
///
/// # Example
///
/// ```
/// use systolic_sim::{ArrayConfig, Layer, Simulator};
///
/// let sim = Simulator::new(ArrayConfig::default());
/// let net = [Layer::conv2d(84, 84, 3, 32, 3, 2, 1), Layer::dense(1024, 25)];
/// let stats = sim.simulate_network(&net);
/// assert!(stats.fps() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    config: ArrayConfig,
}

impl Simulator {
    /// Creates a simulator for `config`.
    pub fn new(config: ArrayConfig) -> Simulator {
        Simulator { config }
    }

    /// The configuration being simulated.
    pub fn config(&self) -> &ArrayConfig {
        &self.config
    }

    /// Simulates a single layer and returns its statistics.
    pub fn simulate_layer(&self, layer: &Layer) -> LayerStats {
        let gemm = layer.gemm().unwrap_or(crate::layer::GemmShape { m: 0, k: 0, n: 0 });
        let plan =
            FoldPlan::plan(self.config.dataflow(), gemm, self.config.rows(), self.config.cols());
        let mem = ScratchpadPlan::analyze(&self.config, layer, &plan);
        let total_cycles = plan.compute_cycles + mem.stall_cycles;
        let peak = total_cycles as f64 * self.config.pe_count() as f64;
        let utilization = if peak > 0.0 { (layer.mac_count() as f64 / peak).min(1.0) } else { 0.0 };
        if obs::metrics_enabled() {
            let g = obs::global();
            g.counter("systolic.layers").incr();
            g.counter("systolic.cycles").add(total_cycles);
            g.counter("systolic.stall_cycles").add(mem.stall_cycles);
            g.counter("systolic.sram_reads")
                .add(plan.ifmap_sram_reads + plan.filter_sram_reads + plan.ofmap_sram_reads);
            g.counter("systolic.sram_writes").add(plan.ofmap_sram_writes);
            g.counter("systolic.dram_read_bytes").add(mem.dram_read_bytes);
            g.counter("systolic.dram_write_bytes").add(mem.dram_write_bytes);
            g.histogram("systolic.cycles_per_layer", &obs::CYCLE_BOUNDS)
                .observe(total_cycles as f64);
            g.histogram("systolic.pe_utilization", &obs::RATIO_BOUNDS).observe(utilization);
        }
        LayerStats {
            layer: *layer,
            compute_cycles: plan.compute_cycles,
            stall_cycles: mem.stall_cycles,
            total_cycles,
            macs: layer.mac_count(),
            utilization,
            ifmap_sram_reads: plan.ifmap_sram_reads,
            filter_sram_reads: plan.filter_sram_reads,
            ofmap_sram_writes: plan.ofmap_sram_writes,
            ofmap_sram_reads: plan.ofmap_sram_reads,
            dram_read_bytes: mem.dram_read_bytes,
            dram_write_bytes: mem.dram_write_bytes,
            ifmap_tier: mem.ifmap_tier,
            filter_tier: mem.filter_tier,
            psum_spills: mem.psum_spills,
        }
    }

    /// Simulates every layer of `network` in order.
    pub fn simulate_network(&self, network: &[Layer]) -> NetworkStats {
        NetworkStats {
            layers: network.iter().map(|l| self.simulate_layer(l)).collect(),
            clock_mhz: self.config.clock_mhz(),
        }
    }

    /// Returns a cycle-windowed access trace for `layer`, suitable for
    /// time-resolved power estimation.
    pub fn trace_layer(&self, layer: &Layer) -> TraceIter {
        let gemm = layer.gemm().unwrap_or(crate::layer::GemmShape { m: 0, k: 0, n: 0 });
        let plan =
            FoldPlan::plan(self.config.dataflow(), gemm, self.config.rows(), self.config.cols());
        let mem = ScratchpadPlan::analyze(&self.config, layer, &plan);
        TraceIter::new(plan, mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::Dataflow;

    fn sim(rows: usize, cols: usize, df: Dataflow) -> Simulator {
        Simulator::new(ArrayConfig::builder().rows(rows).cols(cols).dataflow(df).build().unwrap())
    }

    #[test]
    fn cycles_lower_bound_is_macs_over_pes() {
        // total cycles can never beat perfect utilization.
        let layer = Layer::conv2d(56, 56, 32, 64, 3, 1, 1);
        for df in Dataflow::ALL {
            let s = sim(32, 32, df).simulate_layer(&layer);
            let lower = layer.mac_count() / (32 * 32);
            assert!(s.total_cycles >= lower, "{df}: {} < {lower}", s.total_cycles);
        }
    }

    #[test]
    fn dense_layer_dataflow_tradeoff() {
        // For M = 1 the large reduction amortizes OS skew, while WS pays a
        // weight reload for each of the many K folds; OS wins, and both
        // leave most of the array idle.
        let layer = Layer::dense(4096, 256);
        let os = sim(32, 32, Dataflow::OutputStationary).simulate_layer(&layer);
        let ws = sim(32, 32, Dataflow::WeightStationary).simulate_layer(&layer);
        assert!(os.compute_cycles < ws.compute_cycles);
        assert!(os.utilization < 0.1);
    }

    #[test]
    fn larger_array_is_not_slower_for_big_convs() {
        let layer = Layer::conv2d(112, 112, 32, 64, 3, 1, 1);
        let small = sim(16, 16, Dataflow::OutputStationary).simulate_layer(&layer);
        let large = sim(128, 128, Dataflow::OutputStationary).simulate_layer(&layer);
        assert!(large.compute_cycles <= small.compute_cycles);
    }

    #[test]
    fn network_simulation_preserves_layer_order() {
        let net = [Layer::conv2d(32, 32, 3, 16, 3, 2, 1), Layer::dense(4096, 25)];
        let stats = Simulator::new(ArrayConfig::default()).simulate_network(&net);
        assert_eq!(stats.layers.len(), 2);
        assert_eq!(stats.layers[0].layer, net[0]);
        assert_eq!(stats.layers[1].layer, net[1]);
    }

    #[test]
    fn higher_clock_means_higher_fps_same_cycles() {
        let net = [Layer::conv2d(32, 32, 3, 16, 3, 2, 1)];
        let slow = Simulator::new(ArrayConfig::builder().clock_mhz(100.0).build().unwrap())
            .simulate_network(&net);
        let fast = Simulator::new(ArrayConfig::builder().clock_mhz(400.0).build().unwrap())
            .simulate_network(&net);
        assert_eq!(slow.total_cycles(), fast.total_cycles());
        assert!(fast.fps() > slow.fps() * 3.9);
    }

    #[test]
    fn pool_layer_simulates_without_macs() {
        let s = Simulator::new(ArrayConfig::default()).simulate_layer(&Layer::Pool {
            in_h: 16,
            in_w: 16,
            channels: 8,
            window: 2,
        });
        assert_eq!(s.macs, 0);
        assert!(s.total_cycles > 0);
        assert_eq!(s.utilization, 0.0);
    }

    #[test]
    fn utilization_accounts_for_stalls() {
        // With pathological bandwidth the utilization must drop.
        let starved = Simulator::new(ArrayConfig::builder().dram_bandwidth(0.25).build().unwrap());
        let rich = Simulator::new(ArrayConfig::builder().dram_bandwidth(64.0).build().unwrap());
        let layer = Layer::conv2d(56, 56, 32, 64, 3, 1, 1);
        let a = starved.simulate_layer(&layer);
        let b = rich.simulate_layer(&layer);
        assert!(a.utilization <= b.utilization);
        assert!(a.total_cycles >= b.total_cycles);
    }
}

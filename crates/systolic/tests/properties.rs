//! Property-based tests for the systolic-array simulator invariants.

use proptest::prelude::*;
use systolic_sim::{ArrayConfig, Dataflow, FoldPlan, GemmShape, Layer, Simulator};

fn arb_dataflow() -> impl Strategy<Value = Dataflow> {
    prop_oneof![
        Just(Dataflow::OutputStationary),
        Just(Dataflow::WeightStationary),
        Just(Dataflow::InputStationary),
    ]
}

fn arb_pow2(lo: u32, hi: u32) -> impl Strategy<Value = usize> {
    (lo..=hi).prop_map(|e| 1usize << e)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// MACs executed never exceed the peak MAC slots of the compute window.
    #[test]
    fn utilization_never_exceeds_one(
        df in arb_dataflow(),
        rows in arb_pow2(3, 8),
        cols in arb_pow2(3, 8),
        m in 1usize..4000,
        k in 1usize..4000,
        n in 1usize..512,
    ) {
        let plan = FoldPlan::plan(df, GemmShape { m, k, n }, rows, cols);
        prop_assert!(plan.utilization() <= 1.0 + 1e-12);
        prop_assert!(plan.utilization() >= 0.0);
    }

    /// Compute cycles are at least the ideal (perfect utilization) bound.
    #[test]
    fn cycles_at_least_ideal(
        df in arb_dataflow(),
        rows in arb_pow2(3, 7),
        cols in arb_pow2(3, 7),
        m in 1usize..2000,
        k in 1usize..2000,
        n in 1usize..256,
    ) {
        let g = GemmShape { m, k, n };
        let plan = FoldPlan::plan(df, g, rows, cols);
        let ideal = g.macs().div_ceil((rows * cols) as u64);
        prop_assert!(plan.compute_cycles >= ideal);
    }

    /// Overhead cycles are a subset of compute cycles.
    #[test]
    fn overhead_subset_of_compute(
        df in arb_dataflow(),
        rows in arb_pow2(3, 7),
        cols in arb_pow2(3, 7),
        m in 1usize..2000,
        k in 1usize..2000,
        n in 1usize..256,
    ) {
        let plan = FoldPlan::plan(df, GemmShape { m, k, n }, rows, cols);
        prop_assert!(plan.overhead_cycles <= plan.compute_cycles);
    }

    /// Output-stationary SRAM write count equals output elements exactly.
    #[test]
    fn os_writes_every_output_once(
        rows in arb_pow2(3, 7),
        cols in arb_pow2(3, 7),
        m in 1usize..2000,
        k in 1usize..500,
        n in 1usize..256,
    ) {
        let plan = FoldPlan::plan(
            Dataflow::OutputStationary, GemmShape { m, k, n }, rows, cols);
        prop_assert_eq!(plan.ofmap_sram_writes, (m * n) as u64);
        prop_assert_eq!(plan.ofmap_sram_reads, 0);
    }

    /// Growing the SRAM never increases DRAM traffic or total cycles.
    #[test]
    fn dram_traffic_monotone_in_sram(
        df in arb_dataflow(),
        in_hw in 8usize..64,
        in_c in 1usize..32,
        out_c in 1usize..64,
    ) {
        let layer = Layer::conv2d(in_hw, in_hw, in_c, out_c, 3, 1, 1);
        let mut prev_traffic = u64::MAX;
        for kb in [2usize, 16, 128, 1024] {
            let cfg = ArrayConfig::builder()
                .rows(16).cols(16)
                .dataflow(df)
                .ifmap_sram_kb(kb).filter_sram_kb(kb).ofmap_sram_kb(kb)
                .build().unwrap();
            let stats = Simulator::new(cfg).simulate_layer(&layer);
            let traffic = stats.dram_total_bytes();
            prop_assert!(traffic <= prev_traffic,
                "traffic grew from {prev_traffic} to {traffic} at {kb} KiB");
            prev_traffic = traffic;
        }
    }

    /// DRAM traffic is bounded below by the unique operand footprints.
    #[test]
    fn dram_traffic_at_least_unique_footprint(
        df in arb_dataflow(),
        kb in arb_pow2(1, 12),
        in_hw in 8usize..64,
        in_c in 1usize..16,
        out_c in 1usize..32,
    ) {
        let layer = Layer::conv2d(in_hw, in_hw, in_c, out_c, 3, 1, 1);
        let cfg = ArrayConfig::builder()
            .rows(16).cols(16)
            .dataflow(df)
            .ifmap_sram_kb(kb).filter_sram_kb(kb).ofmap_sram_kb(kb)
            .build().unwrap();
        let stats = Simulator::new(cfg).simulate_layer(&layer);
        let unique = layer.ifmap_elements() + layer.filter_elements()
            + layer.ofmap_elements();
        prop_assert!(stats.dram_total_bytes() >= unique);
    }

    /// Trace access totals always reconcile with the layer statistics.
    #[test]
    fn trace_reconciles_with_stats(
        df in arb_dataflow(),
        in_hw in 8usize..48,
        in_c in 1usize..8,
        out_c in 1usize..32,
        stride in 1usize..3,
    ) {
        let layer = Layer::conv2d(in_hw, in_hw, in_c, out_c, 3, stride, 1);
        let cfg = ArrayConfig::builder().rows(16).cols(16).dataflow(df)
            .build().unwrap();
        let sim = Simulator::new(cfg);
        let stats = sim.simulate_layer(&layer);
        let (mut i, mut f, mut ow, mut or) = (0u64, 0u64, 0u64, 0u64);
        for e in sim.trace_layer(&layer) {
            i += e.ifmap_reads;
            f += e.filter_reads;
            ow += e.ofmap_writes;
            or += e.ofmap_reads;
        }
        prop_assert_eq!(i, stats.ifmap_sram_reads);
        prop_assert_eq!(f, stats.filter_sram_reads);
        prop_assert_eq!(ow, stats.ofmap_sram_writes);
        prop_assert_eq!(or, stats.ofmap_sram_reads);
    }

    /// Network latency in seconds is inversely proportional to clock.
    #[test]
    fn latency_inverse_in_clock(mhz in 50.0f64..2000.0) {
        let net = [Layer::conv2d(32, 32, 3, 16, 3, 2, 1)];
        let base = Simulator::new(
            ArrayConfig::builder().clock_mhz(100.0).build().unwrap())
            .simulate_network(&net);
        let scaled = Simulator::new(
            ArrayConfig::builder().clock_mhz(mhz).build().unwrap())
            .simulate_network(&net);
        let expected = base.latency_s() * 100.0 / mhz;
        prop_assert!((scaled.latency_s() - expected).abs() < 1e-9);
    }
}

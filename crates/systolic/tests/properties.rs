//! Randomized property tests for the systolic-array simulator
//! invariants, driven by seeded `autopilot-rng` streams (one
//! deterministic stream per test and case, so failures reproduce
//! exactly).

use autopilot_rng::Rng;
use systolic_sim::{ArrayConfig, Dataflow, FoldPlan, GemmShape, Layer, Simulator};

const CASES: u64 = 64;

fn case_rng(tag: u64, case: u64) -> Rng {
    Rng::seed_stream(0x5157_0000 + tag, case)
}

fn any_dataflow(rng: &mut Rng) -> Dataflow {
    Dataflow::ALL[rng.below(Dataflow::ALL.len())]
}

fn pow2(rng: &mut Rng, lo: u32, hi: u32) -> usize {
    1usize << rng.range_inclusive(lo as usize, hi as usize)
}

/// MACs executed never exceed the peak MAC slots of the compute window.
#[test]
fn utilization_never_exceeds_one() {
    for case in 0..CASES {
        let mut rng = case_rng(1, case);
        let df = any_dataflow(&mut rng);
        let rows = pow2(&mut rng, 3, 8);
        let cols = pow2(&mut rng, 3, 8);
        let m = rng.range_usize(1, 4000);
        let k = rng.range_usize(1, 4000);
        let n = rng.range_usize(1, 512);
        let plan = FoldPlan::plan(df, GemmShape { m, k, n }, rows, cols);
        assert!(plan.utilization() <= 1.0 + 1e-12, "case {case}");
        assert!(plan.utilization() >= 0.0, "case {case}");
    }
}

/// Compute cycles are at least the ideal (perfect utilization) bound.
#[test]
fn cycles_at_least_ideal() {
    for case in 0..CASES {
        let mut rng = case_rng(2, case);
        let df = any_dataflow(&mut rng);
        let rows = pow2(&mut rng, 3, 7);
        let cols = pow2(&mut rng, 3, 7);
        let g = GemmShape {
            m: rng.range_usize(1, 2000),
            k: rng.range_usize(1, 2000),
            n: rng.range_usize(1, 256),
        };
        let plan = FoldPlan::plan(df, g, rows, cols);
        let ideal = g.macs().div_ceil((rows * cols) as u64);
        assert!(plan.compute_cycles >= ideal, "case {case}");
    }
}

/// Overhead cycles are a subset of compute cycles.
#[test]
fn overhead_subset_of_compute() {
    for case in 0..CASES {
        let mut rng = case_rng(3, case);
        let df = any_dataflow(&mut rng);
        let rows = pow2(&mut rng, 3, 7);
        let cols = pow2(&mut rng, 3, 7);
        let g = GemmShape {
            m: rng.range_usize(1, 2000),
            k: rng.range_usize(1, 2000),
            n: rng.range_usize(1, 256),
        };
        let plan = FoldPlan::plan(df, g, rows, cols);
        assert!(plan.overhead_cycles <= plan.compute_cycles, "case {case}");
    }
}

/// Output-stationary SRAM write count equals output elements exactly.
#[test]
fn os_writes_every_output_once() {
    for case in 0..CASES {
        let mut rng = case_rng(4, case);
        let rows = pow2(&mut rng, 3, 7);
        let cols = pow2(&mut rng, 3, 7);
        let m = rng.range_usize(1, 2000);
        let k = rng.range_usize(1, 500);
        let n = rng.range_usize(1, 256);
        let plan = FoldPlan::plan(Dataflow::OutputStationary, GemmShape { m, k, n }, rows, cols);
        assert_eq!(plan.ofmap_sram_writes, (m * n) as u64, "case {case}");
        assert_eq!(plan.ofmap_sram_reads, 0, "case {case}");
    }
}

/// Growing the SRAM never increases DRAM traffic.
#[test]
fn dram_traffic_monotone_in_sram() {
    for case in 0..CASES {
        let mut rng = case_rng(5, case);
        let df = any_dataflow(&mut rng);
        let in_hw = rng.range_usize(8, 64);
        let in_c = rng.range_usize(1, 32);
        let out_c = rng.range_usize(1, 64);
        let layer = Layer::conv2d(in_hw, in_hw, in_c, out_c, 3, 1, 1);
        let mut prev_traffic = u64::MAX;
        for kb in [2usize, 16, 128, 1024] {
            let cfg = ArrayConfig::builder()
                .rows(16)
                .cols(16)
                .dataflow(df)
                .ifmap_sram_kb(kb)
                .filter_sram_kb(kb)
                .ofmap_sram_kb(kb)
                .build()
                .expect("valid array config");
            let stats = Simulator::new(cfg).simulate_layer(&layer);
            let traffic = stats.dram_total_bytes();
            assert!(
                traffic <= prev_traffic,
                "case {case}: traffic grew from {prev_traffic} to {traffic} at {kb} KiB"
            );
            prev_traffic = traffic;
        }
    }
}

/// DRAM traffic is bounded below by the unique operand footprints.
#[test]
fn dram_traffic_at_least_unique_footprint() {
    for case in 0..CASES {
        let mut rng = case_rng(6, case);
        let df = any_dataflow(&mut rng);
        let kb = pow2(&mut rng, 1, 12);
        let in_hw = rng.range_usize(8, 64);
        let in_c = rng.range_usize(1, 16);
        let out_c = rng.range_usize(1, 32);
        let layer = Layer::conv2d(in_hw, in_hw, in_c, out_c, 3, 1, 1);
        let cfg = ArrayConfig::builder()
            .rows(16)
            .cols(16)
            .dataflow(df)
            .ifmap_sram_kb(kb)
            .filter_sram_kb(kb)
            .ofmap_sram_kb(kb)
            .build()
            .expect("valid array config");
        let stats = Simulator::new(cfg).simulate_layer(&layer);
        let unique = layer.ifmap_elements() + layer.filter_elements() + layer.ofmap_elements();
        assert!(stats.dram_total_bytes() >= unique, "case {case}");
    }
}

/// Trace access totals always reconcile with the layer statistics.
#[test]
fn trace_reconciles_with_stats() {
    for case in 0..CASES {
        let mut rng = case_rng(7, case);
        let df = any_dataflow(&mut rng);
        let in_hw = rng.range_usize(8, 48);
        let in_c = rng.range_usize(1, 8);
        let out_c = rng.range_usize(1, 32);
        let stride = rng.range_usize(1, 3);
        let layer = Layer::conv2d(in_hw, in_hw, in_c, out_c, 3, stride, 1);
        let cfg = ArrayConfig::builder()
            .rows(16)
            .cols(16)
            .dataflow(df)
            .build()
            .expect("valid array config");
        let sim = Simulator::new(cfg);
        let stats = sim.simulate_layer(&layer);
        let (mut i, mut f, mut ow, mut or) = (0u64, 0u64, 0u64, 0u64);
        for e in sim.trace_layer(&layer) {
            i += e.ifmap_reads;
            f += e.filter_reads;
            ow += e.ofmap_writes;
            or += e.ofmap_reads;
        }
        assert_eq!(i, stats.ifmap_sram_reads, "case {case}");
        assert_eq!(f, stats.filter_sram_reads, "case {case}");
        assert_eq!(ow, stats.ofmap_sram_writes, "case {case}");
        assert_eq!(or, stats.ofmap_sram_reads, "case {case}");
    }
}

/// Network latency in seconds is inversely proportional to clock.
#[test]
fn latency_inverse_in_clock() {
    let net = [Layer::conv2d(32, 32, 3, 16, 3, 2, 1)];
    let base = Simulator::new(
        ArrayConfig::builder().clock_mhz(100.0).build().expect("valid array config"),
    )
    .simulate_network(&net);
    for case in 0..CASES {
        let mut rng = case_rng(8, case);
        let mhz = rng.range_f64(50.0, 2000.0);
        let scaled = Simulator::new(
            ArrayConfig::builder().clock_mhz(mhz).build().expect("valid array config"),
        )
        .simulate_network(&net);
        let expected = base.latency_s() * 100.0 / mhz;
        assert!((scaled.latency_s() - expected).abs() < 1e-9, "case {case} at {mhz:.1} MHz");
    }
}

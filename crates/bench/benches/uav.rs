//! Micro-benchmarks for the UAV dynamics / F-1 / mission models
//! (Phase 3's inner loop).

use autopilot_bench::tinybench::{BenchmarkId, Criterion};
use autopilot_bench::{bench_group, bench_main};
use std::hint::black_box;
use uav_dynamics::{F1Model, MissionProfile, UavSpec};

fn bench_f1(c: &mut Criterion) {
    let mut group = c.benchmark_group("f1_model");
    for spec in UavSpec::all() {
        let f1 = F1Model::new(spec.clone(), 24.0, 60.0).expect("valid payload");
        group.bench_with_input(BenchmarkId::new("safe_velocity", &spec.name), &f1, |b, f1| {
            b.iter(|| black_box(f1.safe_velocity(black_box(46.0))))
        });
        group.bench_with_input(BenchmarkId::new("knee_fps", &spec.name), &f1, |b, f1| {
            b.iter(|| black_box(f1.knee_fps()))
        });
    }
    group.finish();
}

fn bench_missions(c: &mut Criterion) {
    let profile = MissionProfile::default();
    let uav = UavSpec::nano();
    c.bench_function("mission_evaluate", |b| {
        b.iter(|| black_box(profile.evaluate(&uav, black_box(24.0), black_box(9.5), 0.7)))
    });
}

fn bench_curves(c: &mut Criterion) {
    let f1 = F1Model::new(UavSpec::micro(), 24.0, 60.0).expect("valid payload");
    c.bench_function("f1_curve_64pts", |b| b.iter(|| black_box(f1.curve(64))));
}

bench_group!(benches, bench_f1, bench_missions, bench_curves);
bench_main!(benches);

//! Micro-benchmarks for the DSE machinery: GP regression, hypervolume
//! computation, and full optimizer runs on a synthetic problem.

use autopilot_bench::tinybench::{BenchmarkId, Criterion};
use autopilot_bench::{bench_group, bench_main};
use autopilot_rng::Rng;
use dse_opt::linalg::sq_dist;
use dse_opt::pareto::{hypervolume, hypervolume_contribution, ContributionScorer};
use dse_opt::{
    DesignSpace, EvalError, Evaluator, GaussianProcess, MultiObjectiveOptimizer, Nsga2Optimizer,
    RandomSearch, SmsEgoOptimizer, SparseGaussianProcess,
};
use std::hint::black_box;

struct Synthetic;

impl Evaluator for Synthetic {
    fn num_objectives(&self) -> usize {
        3
    }
    fn evaluate(&self, point: &[usize]) -> Result<Vec<f64>, EvalError> {
        let x: Vec<f64> = point.iter().map(|&p| p as f64 / 7.0).collect();
        Ok(vec![
            x[0] + 0.1 * x[2],
            (1.0 - x[0]).powi(2) + x[1],
            (x[1] - 0.5).abs() + (x[2] - 0.3).powi(2),
        ])
    }
    fn reference_point(&self) -> Vec<f64> {
        vec![3.0, 3.0, 3.0]
    }
}

fn bench_gp(c: &mut Criterion) {
    let mut group = c.benchmark_group("gaussian_process");
    for n in [32usize, 128, 256] {
        let mut rng = Rng::seed_from_u64(1);
        let x: Vec<Vec<f64>> = (0..n).map(|_| (0..7).map(|_| rng.next_f64()).collect()).collect();
        let y: Vec<f64> = x.iter().map(|p| p.iter().sum::<f64>().sin()).collect();
        group.bench_with_input(BenchmarkId::new("fit", n), &n, |b, _| {
            b.iter(|| black_box(GaussianProcess::fit(black_box(&x), black_box(&y))))
        });
        let gp = GaussianProcess::fit(&x, &y).expect("GP fits the synthetic sample");
        let q = vec![0.4; 7];
        group.bench_with_input(BenchmarkId::new("predict", n), &n, |b, _| {
            b.iter(|| black_box(gp.predict(black_box(&q))))
        });
    }
    group.finish();
}

fn bench_batch_predict(c: &mut Criterion) {
    // The Phase-2 acquisition hot path: scoring a whole candidate pool
    // against one fitted GP. The batched path amortizes the kernel
    // cross-matrix and runs blocked multi-RHS triangular solves; the
    // scalar path is what the optimizer used before batching.
    let mut group = c.benchmark_group("gp_pool_scoring");
    let mut rng = Rng::seed_from_u64(4);
    let x: Vec<Vec<f64>> = (0..128).map(|_| (0..7).map(|_| rng.next_f64()).collect()).collect();
    let y: Vec<f64> = x.iter().map(|p| p.iter().sum::<f64>().sin()).collect();
    let gp = GaussianProcess::fit(&x, &y).expect("GP fits the synthetic sample");
    for pool_size in [64usize, 256] {
        let pool: Vec<Vec<f64>> =
            (0..pool_size).map(|_| (0..7).map(|_| rng.next_f64()).collect()).collect();
        group.bench_with_input(BenchmarkId::new("scalar_predict", pool_size), &pool, |b, pool| {
            b.iter(|| {
                let out: Vec<(f64, f64)> = pool.iter().map(|p| gp.predict(p)).collect();
                black_box(out)
            })
        });
        group.bench_with_input(BenchmarkId::new("predict_batch", pool_size), &pool, |b, pool| {
            b.iter(|| black_box(gp.predict_batch(black_box(pool))))
        });
    }
    group.finish();
}

fn bench_kernel_assembly(c: &mut Criterion) {
    // Fused, cache-blocked kernel cross-matrix assembly
    // (`cross_correlations`, shared by the exact and sparse GP paths)
    // against the textbook per-entry loop it replaced.
    let mut group = c.benchmark_group("gp_kernel_assembly");
    let mut rng = Rng::seed_from_u64(6);
    for n in [128usize, 512] {
        let x: Vec<Vec<f64>> = (0..n).map(|_| (0..7).map(|_| rng.next_f64()).collect()).collect();
        let y: Vec<f64> = x.iter().map(|p| p.iter().sum::<f64>().sin()).collect();
        let gp = GaussianProcess::fit(&x, &y).expect("GP fits the synthetic sample");
        let pool: Vec<Vec<f64>> =
            (0..256).map(|_| (0..7).map(|_| rng.next_f64()).collect()).collect();
        let ls = gp.lengthscale_sq();
        group.bench_with_input(BenchmarkId::new("naive", n), &pool, |b, pool| {
            b.iter(|| {
                let out: Vec<Vec<f64>> = x
                    .iter()
                    .map(|xi| pool.iter().map(|p| (-0.5 * sq_dist(xi, p) / ls).exp()).collect())
                    .collect();
                black_box(out)
            })
        });
        group.bench_with_input(BenchmarkId::new("blocked", n), &pool, |b, pool| {
            b.iter(|| black_box(gp.cross_correlations(black_box(pool))))
        });
    }
    group.finish();
}

fn bench_hv_incremental(c: &mut Criterion) {
    // SMS-EGO candidate scoring: the per-iteration ContributionScorer
    // (obj-0 penalty prefix + incremental staircase union) against the
    // naive full-front epsilon scan plus hypervolume_contribution
    // rescan it replaced.
    let mut group = c.benchmark_group("hv_incremental");
    let mut rng = Rng::seed_from_u64(7);
    let reference = vec![1.2, 1.2, 1.2];
    for n in [64usize, 256] {
        let front: Vec<Vec<f64>> =
            (0..n).map(|_| (0..3).map(|_| rng.next_f64()).collect()).collect();
        let pool: Vec<Vec<f64>> =
            (0..64).map(|_| (0..3).map(|_| rng.next_f64()).collect()).collect();
        group.bench_with_input(BenchmarkId::new("full_rescan", n), &pool, |b, pool| {
            b.iter(|| {
                let mut acc = 0.0;
                for cand in pool {
                    let mut penalty = 0.0;
                    for f in &front {
                        if f.iter().zip(cand).all(|(fv, cv)| *fv <= cv + 1e-3) {
                            let depth: f64 =
                                f.iter().zip(cand).map(|(fv, cv)| (cv - fv).max(0.0)).sum();
                            penalty += depth + 1e-3;
                        }
                    }
                    acc += if penalty > 0.0 {
                        -penalty
                    } else {
                        hypervolume_contribution(&front, cand, &reference)
                    };
                }
                black_box(acc)
            })
        });
        group.bench_with_input(BenchmarkId::new("scorer", n), &pool, |b, pool| {
            b.iter(|| {
                let scorer = ContributionScorer::new(&front, &reference);
                let mut scratch = scorer.scratch();
                let mut acc = 0.0;
                for cand in pool {
                    acc += scorer.score_with(&mut scratch, cand, 1e-3);
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

fn bench_sparse_inference(c: &mut Criterion) {
    // Exact vs sparse batched inference at an archive size past the
    // SurrogateMode threshold — the tentpole trade: O(n·pool) exact
    // prediction against O(m·pool) sparse with m = 64 inducing points.
    let mut group = c.benchmark_group("gp_sparse_inference");
    group.sample_size(10);
    let mut rng = Rng::seed_from_u64(8);
    let n = 512;
    let x: Vec<Vec<f64>> = (0..n).map(|_| (0..7).map(|_| rng.next_f64()).collect()).collect();
    let y: Vec<f64> = x.iter().map(|p| p.iter().sum::<f64>().sin()).collect();
    let exact = GaussianProcess::fit(&x, &y).expect("GP fits the synthetic sample");
    let sparse = SparseGaussianProcess::fit(&x, &y, 64).expect("sparse GP fits");
    let pool: Vec<Vec<f64>> = (0..256).map(|_| (0..7).map(|_| rng.next_f64()).collect()).collect();
    group.bench_with_input(BenchmarkId::new("exact", n), &pool, |b, pool| {
        b.iter(|| black_box(exact.predict_batch(black_box(pool))))
    });
    group.bench_with_input(BenchmarkId::new("sparse", n), &pool, |b, pool| {
        b.iter(|| black_box(sparse.predict_batch(black_box(pool))))
    });
    group.finish();
}

fn bench_fastexp(c: &mut Criterion) {
    // The kernel-panel exponential over panel-sized slices: scalar
    // `f64::exp` per element (what `KernelExpMode::Exact` runs) against
    // the batched Cody–Waite polynomial (`KernelExpMode::Fast`, ≤4 ULP).
    // Inputs mirror real panel arguments: non-positive scaled squared
    // distances in roughly [-40, 0].
    let mut group = c.benchmark_group("gp_fastexp");
    let mut rng = Rng::seed_from_u64(9);
    for len in [4096usize, 16384] {
        let args: Vec<f64> = (0..len).map(|_| -40.0 * rng.next_f64()).collect();
        group.bench_with_input(BenchmarkId::new("exp_scalar", len), &args, |b, args| {
            let mut buf = args.clone();
            b.iter(|| {
                buf.copy_from_slice(args);
                for v in &mut buf {
                    *v = v.exp();
                }
                black_box(buf[len / 2])
            })
        });
        group.bench_with_input(BenchmarkId::new("exp_slice_exact", len), &args, |b, args| {
            let mut buf = args.clone();
            b.iter(|| {
                buf.copy_from_slice(args);
                dse_opt::exp_slice(&mut buf, dse_opt::KernelExpMode::Exact);
                black_box(buf[len / 2])
            })
        });
        group.bench_with_input(BenchmarkId::new("exp_slice_fast", len), &args, |b, args| {
            let mut buf = args.clone();
            b.iter(|| {
                buf.copy_from_slice(args);
                dse_opt::exp_slice(&mut buf, dse_opt::KernelExpMode::Fast);
                black_box(buf[len / 2])
            })
        });
    }
    group.finish();
}

fn bench_hypervolume(c: &mut Criterion) {
    let mut group = c.benchmark_group("hypervolume");
    let mut rng = Rng::seed_from_u64(2);
    for n in [32usize, 128] {
        let pts3: Vec<Vec<f64>> =
            (0..n).map(|_| (0..3).map(|_| rng.next_f64()).collect()).collect();
        let r3 = [1.5, 1.5, 1.5];
        group.bench_with_input(BenchmarkId::new("3d", n), &n, |b, _| {
            b.iter(|| black_box(hypervolume(black_box(&pts3), black_box(&r3))))
        });
    }
    group.finish();
}

fn bench_optimizers(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimizer_run_budget40");
    group.sample_size(10);
    let space = DesignSpace::new(vec![8; 7]).expect("non-empty design space");
    group.bench_function("sms_ego", |b| {
        b.iter(|| {
            black_box(
                SmsEgoOptimizer::new(3)
                    .with_init_samples(10)
                    .with_candidate_pool(64)
                    .run(&space, &Synthetic, 40),
            )
        })
    });
    group.bench_function("nsga2", |b| {
        b.iter(|| black_box(Nsga2Optimizer::new(3).with_population(12).run(&space, &Synthetic, 40)))
    });
    group.bench_function("random", |b| {
        b.iter(|| black_box(RandomSearch::new(3).run(&space, &Synthetic, 40)))
    });
    group.finish();
}

bench_group!(
    benches,
    bench_gp,
    bench_batch_predict,
    bench_kernel_assembly,
    bench_hv_incremental,
    bench_sparse_inference,
    bench_fastexp,
    bench_hypervolume,
    bench_optimizers
);
bench_main!(benches);

//! Micro-benchmarks for the AutoPilot pipeline stages.

use air_sim::{AirLearningDatabase, ObstacleDensity};
use autopilot::{
    AutoPilot, AutopilotConfig, DssocEvaluator, OptimizerChoice, Phase1, Phase3, SuccessModel,
    TaskSpec,
};
use autopilot_bench::tinybench::Criterion;
use autopilot_bench::{bench_group, bench_main};
use std::hint::black_box;
use uav_dynamics::UavSpec;

fn bench_phase1(c: &mut Criterion) {
    c.bench_function("phase1_surrogate_populate_27", |b| {
        b.iter(|| {
            let mut db = AirLearningDatabase::new();
            Phase1::new(SuccessModel::Surrogate, 1).populate(ObstacleDensity::Dense, &mut db);
            black_box(db)
        })
    });
}

fn bench_evaluator(c: &mut Criterion) {
    let mut db = AirLearningDatabase::new();
    Phase1::new(SuccessModel::Surrogate, 1).populate(ObstacleDensity::Dense, &mut db);
    let ev = DssocEvaluator::new(db, ObstacleDensity::Dense);
    c.bench_function("phase2_evaluate_design", |b| {
        b.iter(|| black_box(ev.evaluate_design(black_box(&[5, 1, 3, 3, 2, 2, 2]))))
    });
}

fn bench_phase3(c: &mut Criterion) {
    let mut db = AirLearningDatabase::new();
    Phase1::new(SuccessModel::Surrogate, 1).populate(ObstacleDensity::Dense, &mut db);
    let ev = DssocEvaluator::new(db, ObstacleDensity::Dense);
    let candidate =
        ev.evaluate_design(&[5, 1, 1, 1, 1, 1, 1]).expect("in-range design point evaluates");
    let uav = UavSpec::nano();
    let task = TaskSpec::navigation(ObstacleDensity::Dense);
    c.bench_function("phase3_mission_report", |b| {
        b.iter(|| black_box(Phase3::mission_report(&uav, &task, black_box(&candidate))))
    });
}

fn bench_full_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_pipeline");
    group.sample_size(10);
    group.bench_function("random_budget30", |b| {
        let pilot = AutoPilot::new(
            AutopilotConfig::fast(7).with_budget(30).with_optimizer(OptimizerChoice::Random),
        );
        b.iter(|| {
            black_box(pilot.run(&UavSpec::nano(), &TaskSpec::navigation(ObstacleDensity::Dense)))
        })
    });
    group.finish();
}

bench_group!(benches, bench_phase1, bench_evaluator, bench_phase3, bench_full_pipeline);
bench_main!(benches);

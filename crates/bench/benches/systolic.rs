//! Micro-benchmarks for the systolic-array simulator (the Phase-2
//! inner loop's dominant cost).

use autopilot_bench::tinybench::{BenchmarkId, Criterion};
use autopilot_bench::{bench_group, bench_main};
use policy_nn::{PolicyHyperparams, PolicyModel};
use std::hint::black_box;
use systolic_sim::{ArrayConfig, Dataflow, Layer, LayerMemo, Simulator};

fn bench_layers(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_layer");
    let conv = Layer::conv2d(96, 96, 48, 48, 3, 1, 1);
    let dense = Layer::dense(5632, 5632);
    for df in Dataflow::ALL {
        let sim =
            Simulator::new(ArrayConfig::builder().rows(32).cols(32).dataflow(df).build().unwrap());
        group.bench_with_input(BenchmarkId::new("conv_96x96x48", df), &sim, |b, sim| {
            b.iter(|| black_box(sim.simulate_layer(black_box(&conv))))
        });
        group.bench_with_input(BenchmarkId::new("dense_5632", df), &sim, |b, sim| {
            b.iter(|| black_box(sim.simulate_layer(black_box(&dense))))
        });
    }
    group.finish();
}

fn bench_networks(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_network");
    for (l, f) in [(2usize, 32usize), (7, 48), (10, 64)] {
        let model = PolicyModel::build(PolicyHyperparams::new(l, f).unwrap());
        let sim = Simulator::new(ArrayConfig::default());
        group.bench_function(BenchmarkId::from_parameter(format!("l{l}f{f}")), |b| {
            b.iter(|| black_box(sim.simulate_network(black_box(model.layers()))))
        });
    }
    group.finish();
}

fn bench_memo(c: &mut Criterion) {
    // Phase-2 evaluators see the same conv/FC shapes across candidate
    // networks: warm memo lookups (clone of a cached LayerStats) versus
    // the cold full simulation they replace.
    let mut group = c.benchmark_group("layer_memo");
    let sim = Simulator::new(ArrayConfig::default());
    let layer = Layer::conv2d(96, 96, 48, 48, 3, 1, 1);
    let warm = LayerMemo::with_enabled(true);
    warm.simulate_layer(&sim, &layer);
    group.bench_function("warm_hit", |b| {
        b.iter(|| black_box(warm.simulate_layer(black_box(&sim), black_box(&layer))))
    });
    group.bench_function("cold_simulation", |b| {
        b.iter(|| {
            let memo = LayerMemo::with_enabled(true);
            black_box(memo.simulate_layer(black_box(&sim), black_box(&layer)))
        })
    });
    group.finish();
}

fn bench_traces(c: &mut Criterion) {
    let sim = Simulator::new(ArrayConfig::default());
    let layer = Layer::conv2d(96, 96, 48, 48, 3, 1, 1);
    c.bench_function("trace_layer_drain", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for ev in sim.trace_layer(black_box(&layer)) {
                acc += ev.ifmap_reads;
            }
            black_box(acc)
        })
    });
}

bench_group!(benches, bench_layers, bench_networks, bench_memo, bench_traces);
bench_main!(benches);

//! Micro-benchmarks for the Air Learning substrate (environment
//! generation and Q-learning).

use air_sim::{EnvironmentGenerator, ObstacleDensity, QTrainer};
use autopilot_bench::tinybench::{BenchmarkId, Criterion};
use autopilot_bench::{bench_group, bench_main};
use policy_nn::{PolicyHyperparams, PolicyModel};
use std::hint::black_box;

fn bench_environments(c: &mut Criterion) {
    let mut group = c.benchmark_group("environment_generation");
    for density in ObstacleDensity::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(density), &density, |b, &d| {
            let mut generator = EnvironmentGenerator::new(d, 42);
            b.iter(|| black_box(generator.next_arena()))
        });
    }
    group.finish();
}

fn bench_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("q_learning");
    group.sample_size(10);
    let model = PolicyModel::build(PolicyHyperparams::new(5, 32).unwrap());
    for episodes in [100usize, 400] {
        group.bench_with_input(BenchmarkId::new("train_low", episodes), &episodes, |b, &e| {
            b.iter(|| {
                black_box(
                    QTrainer::new(7)
                        .with_episodes(e)
                        .with_eval_episodes(50)
                        .train(&model, ObstacleDensity::Low),
                )
            })
        });
    }
    group.finish();
}

bench_group!(benches, bench_environments, bench_training);
bench_main!(benches);

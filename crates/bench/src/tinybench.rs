//! A minimal in-repo micro-benchmark harness.
//!
//! Mirrors the small slice of the Criterion API the bench targets use
//! (`Criterion`, groups, `BenchmarkId`, `Bencher::iter`) so the
//! workspace benchmarks run with zero external dependencies. Each
//! benchmark is warmed up, then timed over `sample_size` samples whose
//! iteration count is auto-scaled so a sample lasts at least a few
//! milliseconds; the median, minimum, and mean per-iteration times are
//! printed.
//!
//! Set `AUTOPILOT_BENCH_FAST=1` to cut sample counts for smoke runs
//! (useful in CI, where statistical quality does not matter).

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall-clock duration of one timed sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(5);

/// The harness entry point: owns defaults and collects results.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Creates a harness with default settings.
    pub fn new() -> Criterion {
        Criterion::default()
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let id = id.into();
        let result = run_benchmark(None, &id, default_samples(), f);
        self.results.push(result);
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: default_samples() }
    }

    /// Prints the collected results as an aligned table.
    pub fn summary(&self) {
        let name_width = self.results.iter().map(|r| r.name.len()).max().unwrap_or(4).max(4);
        println!("\n{:<name_width$}  {:>12}  {:>12}  {:>12}", "name", "median", "min", "mean");
        for r in &self.results {
            println!(
                "{:<name_width$}  {:>12}  {:>12}  {:>12}",
                r.name,
                format_ns(r.median_ns),
                format_ns(r.min_ns),
                format_ns(r.mean_ns),
            );
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let id = id.into();
        let result = run_benchmark(Some(&self.name), &id, effective_samples(self.sample_size), f);
        self.criterion.results.push(result);
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: impl Into<BenchmarkId>, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group (results are already recorded; kept for API
    /// parity).
    pub fn finish(self) {}
}

/// A benchmark label, optionally `function/parameter` structured.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A label with a function name and a parameter, rendered
    /// `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { label: format!("{}/{parameter}", function.into()) }
    }

    /// A label that is just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> BenchmarkId {
        BenchmarkId { label: label.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> BenchmarkId {
        BenchmarkId { label }
    }
}

/// Times closures handed to it by a benchmark body.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`, preventing the result from being
    /// optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

#[derive(Debug)]
struct BenchResult {
    name: String,
    median_ns: f64,
    min_ns: f64,
    mean_ns: f64,
}

fn default_samples() -> usize {
    effective_samples(20)
}

fn effective_samples(requested: usize) -> usize {
    if std::env::var_os("AUTOPILOT_BENCH_FAST").is_some_and(|v| v == "1") {
        2
    } else {
        requested.max(2)
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    group: Option<&str>,
    id: &BenchmarkId,
    samples: usize,
    mut f: F,
) -> BenchResult {
    let name = match group {
        Some(g) => format!("{g}/{}", id.label),
        None => id.label.clone(),
    };

    // Warm-up and calibration: scale the per-sample iteration count so
    // one sample lasts at least SAMPLE_TARGET.
    let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut bencher);
    let mut iters = 1u64;
    while bencher.elapsed * (iters as u32).max(1) < SAMPLE_TARGET && iters < (1 << 30) {
        iters *= 2;
        bencher.iters = iters;
        f(&mut bencher);
        if bencher.elapsed >= SAMPLE_TARGET {
            break;
        }
    }

    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        bencher.iters = iters;
        f(&mut bencher);
        per_iter_ns.push(bencher.elapsed.as_nanos() as f64 / iters as f64);
    }
    per_iter_ns.sort_by(f64::total_cmp);
    let median_ns = per_iter_ns[per_iter_ns.len() / 2];
    let min_ns = per_iter_ns.first().copied().unwrap_or(0.0);
    let mean_ns = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
    println!("{name}: median {} ({} samples x {iters} iters)", format_ns(median_ns), samples);
    BenchResult { name, median_ns, min_ns, mean_ns }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function from a list of `fn(&mut
/// Criterion)` benchmark functions (API parity with Criterion's macro).
#[macro_export]
macro_rules! bench_group {
    ($name:ident, $($function:path),+ $(,)?) => {
        /// Runs every benchmark of this group.
        pub fn $name(c: &mut $crate::tinybench::Criterion) {
            $($function(c);)+
        }
    };
}

/// Declares a `main` that runs the listed benchmark groups and prints a
/// summary table.
#[macro_export]
macro_rules! bench_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::tinybench::Criterion::new();
            $($group(&mut c);)+
            c.summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("fit", 32).label, "fit/32");
        assert_eq!(BenchmarkId::from_parameter("l7f48").label, "l7f48");
        assert_eq!(BenchmarkId::from("plain").label, "plain");
    }

    #[test]
    fn bencher_times_and_scales() {
        let mut c = Criterion::new();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        group.finish();
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].name.starts_with("smoke/"));
        assert!(c.results[0].median_ns >= 0.0);
    }

    #[test]
    fn format_scales_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("us"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(12_000_000_000.0).ends_with('s'));
    }
}

//! One module per table/figure of the paper's evaluation, each exposing a
//! deterministic `run()` that regenerates the exhibit's rows/series as a
//! text report. The `src/bin` binaries are thin wrappers; `repro_all`
//! executes the full set.

pub mod ablations;
pub mod fig11;
pub mod fig2b;
pub mod fig3b;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod frontiers;
pub mod pitfalls;
pub mod table2;
pub mod table3;
pub mod table5;

use air_sim::ObstacleDensity;
use autopilot::{
    AutoPilot, AutopilotConfig, AutopilotResult, DssocEvaluator, PipelineCache, TaskSpec,
};
use std::sync::{Arc, OnceLock};
use uav_dynamics::UavSpec;

/// The seed used by every reproduction experiment.
pub const SEED: u64 = 7;

/// The process-wide pipeline cache shared by every experiment.
///
/// Phases 1 and 2 are UAV-independent and every experiment uses
/// [`AutopilotConfig::paper`]`(`[`SEED`]`)`, so the fig5/table5 sweep
/// (3 UAVs x 3 densities plus 3 more mini-UAV runs) only contains three
/// distinct Phase-2 problems; sharing one cache runs each DSE once.
pub fn shared_cache() -> Arc<PipelineCache> {
    static CACHE: OnceLock<Arc<PipelineCache>> = OnceLock::new();
    Arc::clone(CACHE.get_or_init(|| Arc::new(PipelineCache::new())))
}

/// Runs the full AutoPilot pipeline in the paper configuration for one
/// (UAV, scenario) pair, reusing Phase-1/Phase-2 results through
/// [`shared_cache`].
pub fn run_scenario(uav: &UavSpec, density: ObstacleDensity) -> AutopilotResult {
    let pilot = AutoPilot::new(AutopilotConfig::paper(SEED)).with_cache(shared_cache());
    pilot.run(uav, &TaskSpec::navigation(density)).expect("paper pipeline runs")
}

/// Runs several (UAV, density) scenarios, fanning the work out across the
/// evaluation engine's worker threads. Results come back in input order
/// and are bit-identical to calling [`run_scenario`] sequentially.
///
/// The distinct densities are warmed first (in parallel) so the per-pair
/// fan-out below never races two copies of the same Phase-2 problem.
pub fn run_scenarios(pairs: &[(UavSpec, ObstacleDensity)]) -> Vec<AutopilotResult> {
    let cache = shared_cache();
    let config = AutopilotConfig::paper(SEED);
    let mut densities: Vec<ObstacleDensity> = Vec::new();
    for (_, d) in pairs {
        if !densities.contains(d) {
            densities.push(*d);
        }
    }
    dse_opt::par::parallel_map(&densities, |_, &density| {
        let db = cache.phase1_database(&config, density);
        let evaluator = DssocEvaluator::new(db, density);
        cache.phase2_output(&config, &evaluator, None).expect("phase 2 warms");
    });
    dse_opt::par::parallel_map(pairs, |_, (uav, density)| run_scenario(uav, *density))
}

/// Short scenario label like `"nano-UAV/dense"`.
pub fn scenario_label(uav: &UavSpec, density: ObstacleDensity) -> String {
    format!("{}/{}", uav.class, density)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_labels() {
        assert_eq!(scenario_label(&UavSpec::nano(), ObstacleDensity::Dense), "nano-UAV/dense");
    }
}

//! One module per table/figure of the paper's evaluation, each exposing a
//! deterministic `run()` that regenerates the exhibit's rows/series as a
//! text report. The `src/bin` binaries are thin wrappers; `repro_all`
//! executes the full set.

pub mod ablations;
pub mod fig11;
pub mod fig2b;
pub mod fig3b;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod pitfalls;
pub mod table2;
pub mod table3;
pub mod table5;

use air_sim::ObstacleDensity;
use autopilot::{AutoPilot, AutopilotConfig, AutopilotResult, TaskSpec};
use uav_dynamics::UavSpec;

/// The seed used by every reproduction experiment.
pub const SEED: u64 = 7;

/// Runs the full AutoPilot pipeline in the paper configuration for one
/// (UAV, scenario) pair.
pub fn run_scenario(uav: &UavSpec, density: ObstacleDensity) -> AutopilotResult {
    let pilot = AutoPilot::new(AutopilotConfig::paper(SEED));
    pilot.run(uav, &TaskSpec::navigation(density))
}

/// Short scenario label like `"nano-UAV/dense"`.
pub fn scenario_label(uav: &UavSpec, density: ObstacleDensity) -> String {
    format!("{}/{}", uav.class, density)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_labels() {
        assert_eq!(
            scenario_label(&UavSpec::nano(), ObstacleDensity::Dense),
            "nano-UAV/dense"
        );
    }
}

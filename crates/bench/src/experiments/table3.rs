//! Table III — the DSSoC component specification, including the
//! accelerator subsystem's achievable power/throughput envelope.

use air_sim::{AirLearningDatabase, ObstacleDensity};
use autopilot::{DssocEvaluator, Phase1, SuccessModel};
use soc_power::calib;

use crate::TextTable;

/// Regenerates Table III.
pub fn run() -> String {
    // Envelope of the accelerator subsystem over the Table II corners for
    // the dense-scenario policy.
    let mut db = AirLearningDatabase::new();
    Phase1::new(SuccessModel::Surrogate, super::SEED).populate(ObstacleDensity::Dense, &mut db);
    let ev = DssocEvaluator::new(db, ObstacleDensity::Dense);
    let mut min_fps = f64::INFINITY;
    let mut max_fps: f64 = 0.0;
    let mut min_w = f64::INFINITY;
    let mut max_w: f64 = 0.0;
    for pe in 0..6 {
        // PE 8..256: the band the paper's Pareto designs occupy.
        for sram in [0usize, 7] {
            let c = ev.evaluate_design(&[5, 1, pe, pe, sram, sram, sram]).expect("Table II point");
            min_fps = min_fps.min(c.fps);
            max_fps = max_fps.max(c.fps);
            min_w = min_w.min(c.tdp_w);
            max_w = max_w.max(c.tdp_w);
        }
    }

    let mut table =
        TextTable::new(vec!["component", "name", "peak power", "throughput", "parameters"]);
    table.row(vec![
        "ULP MCU".to_owned(),
        "2x Cortex-M (ARMv8-M)".to_owned(),
        format!("{:.2} mW", calib::MCU_POWER_W * 1e3),
        "100 MHz".to_owned(),
        "fixed".to_owned(),
    ]);
    table.row(vec![
        "Sensor".to_owned(),
        "OV9755-class RGB".to_owned(),
        format!("{:.0} mW", calib::SENSOR_POWER_W * 1e3),
        "30-90 FPS".to_owned(),
        "fixed".to_owned(),
    ]);
    table.row(vec![
        "Sensor interface".to_owned(),
        "MIPI CSI".to_owned(),
        format!("{:.0} mW", calib::MIPI_POWER_W * 1e3),
        "62.5 MHz".to_owned(),
        "fixed".to_owned(),
    ]);
    table.row(vec![
        "E2E NPU".to_owned(),
        "Systolic array".to_owned(),
        format!("{min_w:.2} W to {max_w:.2} W"),
        format!("{min_fps:.0}-{max_fps:.0} FPS"),
        "variable".to_owned(),
    ]);

    format!(
        "Table III: DSSoC component specification\n\n{}\npaper accelerator band: 0.7 W to 8.24 W, 22-200 FPS\n",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn bands_are_reported() {
        let r = super::run();
        assert!(r.contains("E2E NPU"));
        assert!(r.contains("MIPI"));
        assert!(r.contains("FPS"));
    }
}

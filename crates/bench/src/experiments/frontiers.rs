//! Per-weight-class SWaP frontier sweep.
//!
//! Runs the full pipeline in SWaP-constraint mode
//! ([`SwapMode::Constraint`]) once per regulatory weight class — nano,
//! sub-250 g, micro, mini — each on its default catalog airframe, and
//! reports the feasible Pareto frontier of every class side by side.
//! Alongside the text report, the sweep persists machine-readable
//! artifacts under `results/`:
//!
//! * `frontier_<class>.csv` — one row per frontier design with its
//!   objectives and loaded-airframe SWaP summary (total mass, CG,
//!   static margin, weight class);
//! * `frontiers_swap.json` — the same data as one structured document;
//! * `BENCH_frontiers.json` — flat per-class frontier sizes for the
//!   `budget_gate` floors in `results/BASELINE_budgets.json`.

use air_sim::ObstacleDensity;
use autopilot::{
    AutoPilot, AutopilotConfig, AutopilotResult, JobConfig, OptimizerChoice, SwapMode, TaskSpec,
};
use autopilot_obs::json::Value;
use uav_dynamics::{Airframe, UavSpec, WeightClass};

use crate::TextTable;

/// Phase-2 budget per class run. Random search keeps the sweep cheap
/// while still scattering payloads across the whole design space, so
/// Phase 3's SWaP filter sees (and rejects) genuinely infeasible
/// candidates on the small airframes.
const BUDGET: usize = 96;

/// The four regulatory classes with their default catalog platforms.
///
/// The UAV spec is rebased onto the airframe's component-sum dry mass
/// via [`UavSpec::with_airframe`]; sub-250 has no dedicated Table IV
/// platform, so it flies the micro-UAV spec on the lighter airframe.
pub fn platforms() -> Vec<(WeightClass, UavSpec)> {
    vec![
        (WeightClass::Nano, UavSpec::nano().with_airframe(Airframe::nano())),
        (WeightClass::Sub250, UavSpec::micro().with_airframe(Airframe::sub250())),
        (WeightClass::Micro, UavSpec::micro().with_airframe(Airframe::micro())),
        (WeightClass::Mini, UavSpec::mini().with_airframe(Airframe::mini())),
    ]
}

/// One class's sweep outcome.
struct ClassRun {
    class: WeightClass,
    airframe: Airframe,
    result: AutopilotResult,
}

fn run_class(uav: &UavSpec) -> AutopilotResult {
    let config = AutopilotConfig::paper(super::SEED)
        .with_optimizer(OptimizerChoice::Random)
        .with_budget(BUDGET);
    let pilot = AutoPilot::new(config)
        .with_job_config(JobConfig::from_env().with_swap(SwapMode::Constraint));
    pilot
        .run(uav, &TaskSpec::navigation(ObstacleDensity::Low))
        .expect("SWaP sweep runs on the default catalog")
}

/// Regenerates the per-weight-class frontier sweep and its artifacts.
pub fn run() -> String {
    let mut out =
        String::from("SWaP frontiers: feasible Pareto designs per regulatory weight class\n\n");
    let mut table = TextTable::new(vec![
        "class",
        "airframe",
        "dry_g",
        "cap_g",
        "frontier",
        "sel_fps",
        "sel_payload_g",
        "sel_total_g",
        "sel_margin",
        "missions",
    ]);

    let runs: Vec<ClassRun> = platforms()
        .into_iter()
        .map(|(class, uav)| {
            let airframe = uav.airframe.clone().expect("platforms carry airframes");
            let result = run_class(&uav);
            ClassRun { class, airframe, result }
        })
        .collect();

    let mut class_docs = Vec::new();
    let mut flat = Vec::new();
    for run in &runs {
        let frontier = feasible_frontier(run);
        write_class_csv(run, &frontier);
        let sel = run.result.selection.as_ref().expect("SWaP sweep selects a design");
        let swap = sel.swap.as_ref().expect("constraint mode reports feasibility");
        table.row(vec![
            run.class.id().to_owned(),
            run.airframe.name().to_owned(),
            format!("{:.0}", run.airframe.total_mass_g()),
            format!("{:.0}", run.class.max_takeoff_g()),
            format!("{}", frontier.len()),
            format!("{:.0}", sel.candidate.fps),
            format!("{:.1}", sel.candidate.payload_g),
            format!("{:.1}", swap.total_mass_g),
            format!("{:.3}", swap.static_margin),
            format!("{:.1}", sel.missions.missions),
        ]);
        class_docs.push(class_json(run, &frontier));
        flat.push((format!("frontier_{}", run.class.id()), frontier.len() as f64));
    }

    let json = Value::Obj(vec![("classes".into(), Value::Arr(class_docs))]).to_json();
    persist("frontiers_swap.json", &json);
    let flat_json =
        Value::Obj(flat.into_iter().map(|(k, v)| (k, Value::Num(v))).collect::<Vec<_>>()).to_json();
    persist("BENCH_frontiers.json", &flat_json);

    out.push_str(&table.render());
    out.push_str(
        "\nfrontier = Phase-2 Pareto designs passing the loaded-airframe SWaP check\n\
         (weight-class takeoff cap and static-margin floor at the design CG)\n",
    );
    out
}

/// Frontier rows for one class: the Pareto candidates that pass the
/// structural SWaP check on that class's airframe.
fn feasible_frontier(run: &ClassRun) -> Vec<FrontierRow> {
    run.result
        .phase2
        .pareto_candidates()
        .into_iter()
        .filter_map(|c| {
            let swap = run.airframe.check_payload(c.payload_g).ok()?;
            swap.feasible().then_some(FrontierRow {
                fps: c.fps,
                payload_g: c.payload_g,
                soc_avg_w: c.soc_avg_w,
                latency_s: c.latency_s,
                success_rate: c.success_rate,
                total_mass_g: swap.total_mass_g,
                static_margin: swap.static_margin,
                loaded_class: swap.weight_class,
            })
        })
        .collect()
}

struct FrontierRow {
    fps: f64,
    payload_g: f64,
    soc_avg_w: f64,
    latency_s: f64,
    success_rate: f64,
    total_mass_g: f64,
    static_margin: f64,
    loaded_class: WeightClass,
}

fn write_class_csv(run: &ClassRun, frontier: &[FrontierRow]) {
    let mut csv = String::from(
        "class,airframe,fps,payload_g,soc_avg_w,latency_s,success_rate,\
         total_mass_g,static_margin,loaded_class\n",
    );
    for r in frontier {
        csv.push_str(&format!(
            "{},{},{:.3},{:.3},{:.4},{:.6},{:.4},{:.3},{:.5},{}\n",
            run.class.id(),
            run.airframe.name(),
            r.fps,
            r.payload_g,
            r.soc_avg_w,
            r.latency_s,
            r.success_rate,
            r.total_mass_g,
            r.static_margin,
            r.loaded_class.id(),
        ));
    }
    persist(&format!("frontier_{}.csv", run.class.id()), &csv);
}

fn class_json(run: &ClassRun, frontier: &[FrontierRow]) -> Value {
    let rows = frontier
        .iter()
        .map(|r| {
            Value::Obj(vec![
                ("fps".into(), Value::Num(r.fps)),
                ("payload_g".into(), Value::Num(r.payload_g)),
                ("soc_avg_w".into(), Value::Num(r.soc_avg_w)),
                ("latency_s".into(), Value::Num(r.latency_s)),
                ("success_rate".into(), Value::Num(r.success_rate)),
                ("total_mass_g".into(), Value::Num(r.total_mass_g)),
                ("static_margin".into(), Value::Num(r.static_margin)),
                ("loaded_class".into(), Value::Str(r.loaded_class.id().into())),
            ])
        })
        .collect();
    Value::Obj(vec![
        ("class".into(), Value::Str(run.class.id().into())),
        ("airframe".into(), Value::Str(run.airframe.name().into())),
        ("dry_mass_g".into(), Value::Num(run.airframe.total_mass_g())),
        ("max_takeoff_g".into(), Value::Num(run.class.max_takeoff_g())),
        ("frontier".into(), Value::Arr(rows)),
    ])
}

fn persist(name: &str, content: &str) {
    let path = crate::results_dir().join(name);
    if let Err(e) = std::fs::write(&path, content) {
        autopilot_obs::obs_warn!("warning: could not persist {}: {e}", path.display());
    } else {
        autopilot_obs::obs_info!("[saved {}]", path.display());
    }
}

#[cfg(test)]
mod tests {
    // Covered by the cross-crate integration tests; four full SWaP
    // pipelines would dominate unit-test time here.
}

//! Table V — specialization cost vs. mission efficiency: reusing a single
//! DSSoC design (or a general-purpose board) for the mini-UAV
//! medium-obstacle scenario instead of the scenario-specific design.
//!
//! Reuse semantics follow the paper: the *hardware* (array geometry,
//! scratchpads, tuned clock) comes from scenario X, but in the medium
//! deployment it must execute the medium scenario's validated policy, so
//! hardware sized to another model's knee ends up compute-bound (low) or
//! over-built (dense).
//!
//! Paper numbers: knee(low) 30 % fewer missions (compute bound),
//! knee(medium) 0 %, knee(dense) 27 % (weight lowers the roofline),
//! Nvidia TX2 30 % (weight), Intel NCS 67 % (compute bound).

use air_sim::{AirLearningDatabase, ObstacleDensity};
use autopilot::{
    BaselineBoard, DesignCandidate, DssocEvaluator, Phase1, Phase3, SuccessModel, TaskSpec,
};
use policy_nn::PolicyModel;
use soc_power::TechNode;
use uav_dynamics::{F1Model, UavSpec};

use crate::TextTable;

/// Regenerates Table V.
pub fn run() -> String {
    let uav = UavSpec::mini();
    let task = TaskSpec::navigation(ObstacleDensity::Medium);

    // Scenario-specific selections, fanned out through the shared
    // scenario cache (pure hits when fig. 5 already ran this process).
    let pairs: Vec<(UavSpec, ObstacleDensity)> =
        ObstacleDensity::ALL.iter().map(|&d| (uav.clone(), d)).collect();
    let mut selections: Vec<(ObstacleDensity, DesignCandidate)> = Vec::new();
    for ((_, density), result) in pairs.iter().zip(super::run_scenarios(&pairs)) {
        if let Some(sel) = result.selection {
            selections.push((*density, sel.candidate));
        }
    }
    let medium = selections
        .iter()
        .find(|(d, _)| *d == ObstacleDensity::Medium)
        .map(|(_, c)| c.clone())
        .expect("medium-scenario selection exists");

    // Deployment evaluator: the medium scenario's database and policy.
    let mut db = AirLearningDatabase::new();
    Phase1::new(SuccessModel::Surrogate, super::SEED).populate(ObstacleDensity::Medium, &mut db);
    let ev = DssocEvaluator::new(db, ObstacleDensity::Medium);
    let deployment_policy = medium.policy;

    let reference = Phase3::mission_report(&uav, &task, &medium).expect("valid candidate").missions;

    let mut table =
        TextTable::new(vec!["design", "fps", "payload_g", "missions", "degradation", "comment"]);
    for (density, c) in &selections {
        // Reuse the hardware, run the deployment policy on it.
        let reused =
            ev.evaluate_config(c.point.clone(), deployment_policy, c.config.clone(), TechNode::N28);
        let missions =
            Phase3::mission_report(&uav, &task, &reused).expect("valid candidate").missions;
        let degradation = (1.0 - missions / reference).max(0.0) * 100.0;
        let f1 =
            F1Model::new(uav.clone(), reused.payload_g, task.sensor_fps).expect("valid payload");
        let comment = match f1.classify(reused.fps) {
            uav_dynamics::Provisioning::UnderProvisioned => "compute bound lowers Vsafe",
            uav_dynamics::Provisioning::Balanced => "optimal design",
            uav_dynamics::Provisioning::OverProvisioned => "weight lowers the roofline",
        };
        table.row(vec![
            format!("knee-point ({density} obs.)"),
            format!("{:.0}", reused.fps),
            format!("{:.1}", reused.payload_g),
            format!("{missions:.1}"),
            format!("{degradation:.0}%"),
            comment.to_owned(),
        ]);
    }

    // General-purpose boards running the medium-scenario policy.
    let model = PolicyModel::build(deployment_policy);
    for board in [BaselineBoard::jetson_tx2(), BaselineBoard::intel_ncs()] {
        let eval = board.evaluate(&uav, &task, &model).expect("valid board payload");
        let degradation = (1.0 - eval.missions.missions / reference).max(0.0) * 100.0;
        let f1 = F1Model::new(uav.clone(), board.weight_g, task.sensor_fps).expect("valid payload");
        let comment = match f1.classify(eval.fps) {
            uav_dynamics::Provisioning::UnderProvisioned => "compute bound lowers Vsafe",
            uav_dynamics::Provisioning::Balanced => "balanced by accident",
            uav_dynamics::Provisioning::OverProvisioned => "weight lowers the roofline",
        };
        table.row(vec![
            board.name.clone(),
            format!("{:.0}", eval.fps),
            format!("{:.1}", board.weight_g),
            format!("{:.1}", eval.missions.missions),
            format!("{degradation:.0}%"),
            comment.to_owned(),
        ]);
    }

    format!(
        "Table V: design reuse on the mini-UAV, medium-obstacle deployment\n\n{}\npaper degradations: knee(low) 30%, knee(medium) 0%, knee(dense) 27%, TX2 30%, NCS 67%\n",
        table.render()
    )
}

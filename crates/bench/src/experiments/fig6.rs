//! Fig. 6 — DSSoC architectural-parameter variation across the nine
//! (UAV x scenario) combinations.
//!
//! The paper normalizes each selected design's parameters to the smallest
//! value observed for that parameter, visualizing how much the optimal
//! DSSoC changes with UAV type and deployment scenario — the argument for
//! needing *custom* DSSoCs.

use air_sim::ObstacleDensity;
use uav_dynamics::UavSpec;

use crate::TextTable;

/// Regenerates the Fig. 6 parameter matrix.
pub fn run() -> String {
    struct Row {
        label: String,
        layers: f64,
        filters: f64,
        pe_rows: f64,
        pe_cols: f64,
        sram_kb: f64,
        clock: f64,
    }
    let mut rows = Vec::new();
    for uav in UavSpec::all() {
        for density in ObstacleDensity::ALL {
            let result = super::run_scenario(&uav, density);
            if let Some(sel) = result.selection {
                let c = &sel.candidate;
                rows.push(Row {
                    label: super::scenario_label(&uav, density),
                    layers: c.policy.conv_layers() as f64,
                    filters: c.policy.filters() as f64,
                    pe_rows: c.config.rows() as f64,
                    pe_cols: c.config.cols() as f64,
                    sram_kb: (c.config.total_sram_bytes() / 1024) as f64,
                    clock: c.config.clock_mhz(),
                });
            }
        }
    }

    let min = |f: fn(&Row) -> f64| rows.iter().map(f).fold(f64::INFINITY, f64::min);
    let mins = [
        min(|r| r.layers),
        min(|r| r.filters),
        min(|r| r.pe_rows),
        min(|r| r.pe_cols),
        min(|r| r.sram_kb),
        min(|r| r.clock),
    ];

    let mut table = TextTable::new(vec![
        "scenario",
        "layers",
        "filters",
        "pe_rows",
        "pe_cols",
        "sram_kb",
        "clock_mhz",
        "normalized (layers/filters/rows/cols/sram/clock)",
    ]);
    for r in &rows {
        let vals = [r.layers, r.filters, r.pe_rows, r.pe_cols, r.sram_kb, r.clock];
        let norm: Vec<String> = vals
            .iter()
            .zip(&mins)
            .map(|(v, m)| format!("{:.1}", if *m > 0.0 { v / m } else { 1.0 }))
            .collect();
        table.row(vec![
            r.label.clone(),
            format!("{:.0}", r.layers),
            format!("{:.0}", r.filters),
            format!("{:.0}", r.pe_rows),
            format!("{:.0}", r.pe_cols),
            format!("{:.0}", r.sram_kb),
            format!("{:.0}", r.clock),
            norm.join("/"),
        ]);
    }

    // How much does each parameter vary across scenarios?
    let spread = |f: fn(&Row) -> f64| {
        let lo = rows.iter().map(f).fold(f64::INFINITY, f64::min);
        let hi = rows.iter().map(f).fold(0.0f64, f64::max);
        if lo > 0.0 {
            hi / lo
        } else {
            1.0
        }
    };
    format!(
        "Fig. 6: selected DSSoC parameters across the nine scenarios\n\n{}\nparameter spread (max/min): layers {:.1}x, filters {:.1}x, PE rows {:.1}x, PE cols {:.1}x, SRAM {:.1}x, clock {:.1}x\n",
        table.render(),
        spread(|r| r.layers),
        spread(|r| r.filters),
        spread(|r| r.pe_rows),
        spread(|r| r.pe_cols),
        spread(|r| r.sram_kb),
        spread(|r| r.clock),
    )
}

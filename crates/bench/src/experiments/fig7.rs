//! Fig. 7 — Phase-2 Pareto frontier and the HT / LP / HE / AP design
//! profiles for the nano-UAV.
//!
//! The paper labels four designs out of the Phase-2 output: HT (highest
//! throughput), LP (lowest power), HE (highest FPS/W), and AP (the
//! full-system selection, which is *not* Pareto-optimal on isolated
//! compute metrics). Panels (b)/(c) relate power to compute weight and
//! weight to achievable safe velocity.

use air_sim::ObstacleDensity;
use autopilot::{DesignCandidate, Phase3Selection};
use uav_dynamics::{F1Model, UavSpec};

use crate::TextTable;

/// The four labelled designs.
#[derive(Debug, Clone)]
pub struct LabelledDesigns {
    /// Highest-throughput Pareto design.
    pub ht: DesignCandidate,
    /// Lowest-power Pareto design.
    pub lp: DesignCandidate,
    /// Highest compute-efficiency design.
    pub he: DesignCandidate,
    /// AutoPilot's full-system selection.
    pub ap: Phase3Selection,
}

/// Runs the nano-UAV dense-scenario pipeline and labels HT/LP/HE/AP.
pub fn labelled_designs() -> LabelledDesigns {
    let uav = UavSpec::nano();
    let result = super::run_scenario(&uav, ObstacleDensity::Dense);
    let sel = result.selection.expect("nano-UAV selection exists");
    // Restrict HT/LP/HE to candidates meeting the same success band AP was
    // chosen from, mirroring the paper (all four run the same policy).
    let best_success = result.phase2.best_success();
    let eligible: Vec<&DesignCandidate> =
        result.phase2.candidates.iter().filter(|c| c.success_rate >= best_success - 0.02).collect();
    let pick = |score: &dyn Fn(&DesignCandidate) -> f64| -> DesignCandidate {
        (*eligible
            .iter()
            .max_by(|a, b| score(a).partial_cmp(&score(b)).expect("finite scores"))
            .expect("eligible designs exist"))
        .clone()
    };
    // HT: highest throughput, breaking near-ties (within 2 %) toward the
    // lower-power implementation, as a competent throughput-first
    // architect would.
    let max_fps = eligible.iter().map(|c| c.fps).fold(0.0f64, f64::max);
    let ht = (*eligible
        .iter()
        .filter(|c| c.fps >= 0.98 * max_fps)
        .min_by(|a, b| a.soc_avg_w.partial_cmp(&b.soc_avg_w).expect("finite power"))
        .expect("a max-throughput design exists"))
    .clone();
    LabelledDesigns {
        ht,
        lp: pick(&|c| -c.soc_avg_w),
        he: pick(&|c| c.efficiency_fps_per_w),
        ap: sel,
    }
}

fn design_row(table: &mut TextTable, name: &str, c: &DesignCandidate, uav: &UavSpec) {
    let f1 = F1Model::new(uav.clone(), c.payload_g, 60.0).expect("valid payload");
    table.row(vec![
        name.to_owned(),
        c.policy.id(),
        format!("{}x{}", c.config.rows(), c.config.cols()),
        format!(
            "{}/{}/{}",
            c.config.ifmap_sram_bytes() / 1024,
            c.config.filter_sram_bytes() / 1024,
            c.config.ofmap_sram_bytes() / 1024
        ),
        format!("{:.0}", c.config.clock_mhz()),
        format!("{:.0}", c.fps),
        format!("{:.2}", c.soc_avg_w),
        format!("{:.2}", c.tdp_w),
        format!("{:.1}", c.payload_g),
        format!("{:.0}", c.efficiency_fps_per_w),
        format!("{:.2}", f1.safe_velocity(c.fps)),
    ]);
}

/// Regenerates the Fig. 7 panels as a report.
pub fn run() -> String {
    let uav = UavSpec::nano();
    let designs = labelled_designs();
    let mut table = TextTable::new(vec![
        "design",
        "policy",
        "pe",
        "sram(i/f/o KB)",
        "clk_mhz",
        "fps",
        "avg_w",
        "tdp_w",
        "payload_g",
        "fps_per_w",
        "v_safe",
    ]);
    design_row(&mut table, "HT", &designs.ht, &uav);
    design_row(&mut table, "LP", &designs.lp, &uav);
    design_row(&mut table, "HE", &designs.he, &uav);
    design_row(&mut table, "AP", &designs.ap.candidate, &uav);

    let ap = &designs.ap.candidate;
    format!(
        "Fig. 7: Phase-2 design profiles for the nano-UAV (dense scenario)\n\n{}\n\
         paper reference points: HT 205 FPS @ 8.24 W (65 g); HE 96 FPS @ 1.5 W (64 FPS/W); AP 46 FPS @ 0.7 W (24 g, 55 FPS/W)\n\
         HT/AP throughput ratio: {:.2}x (paper 4.47x); LP power is {:.2}x below AP (paper 1.23x); HE efficiency is {:.2}x AP (paper 1.16x)\n\
         AP knee: {:?} FPS; AP provisioning: {:?}\n",
        table.render(),
        designs.ht.fps / ap.fps,
        ap.soc_avg_w / designs.lp.soc_avg_w,
        designs.he.efficiency_fps_per_w / ap.efficiency_fps_per_w,
        designs.ap.knee_fps.map(|k| k.round()),
        designs.ap.provisioning,
    )
}

//! Table II — the searched design factors and the resulting space size.

use autopilot::{JointSpace, PE_CHOICES, SRAM_KB_CHOICES};
use policy_nn::{PolicyHyperparams, FILTER_CHOICES, LAYER_CHOICES};

use crate::TextTable;

/// Regenerates Table II.
pub fn run() -> String {
    let mut table = TextTable::new(vec!["component", "hyper-parameter", "values"]);
    table.row(vec![
        "Neural Network".to_owned(),
        "# Layers".to_owned(),
        format!("{LAYER_CHOICES:?}"),
    ]);
    table.row(vec![
        "Neural Network".to_owned(),
        "# Filter".to_owned(),
        format!("{FILTER_CHOICES:?}"),
    ]);
    table.row(vec!["Hardware".to_owned(), "# PE Row".to_owned(), format!("{PE_CHOICES:?}")]);
    table.row(vec!["Hardware".to_owned(), "# PE Column".to_owned(), format!("{PE_CHOICES:?}")]);
    table.row(vec![
        "Hardware".to_owned(),
        "IFMAP/Filter/OFMAP SRAM (KB)".to_owned(),
        format!("{SRAM_KB_CHOICES:?}"),
    ]);

    format!(
        "Table II: E2E model and architectural parameters tuned in AutoPilot\n\n{}\nalgorithm space: {} points\nhardware space:  {} points\njoint space:     {} points\n",
        table.render(),
        PolicyHyperparams::space_size(),
        JointSpace::size() as usize / PolicyHyperparams::space_size(),
        JointSpace::size()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn space_sizes_reported() {
        let r = super::run();
        assert!(r.contains("884736"));
        assert!(r.contains("algorithm space: 27"));
        assert!(r.contains("32768"));
    }
}

//! Figs. 8–10 — pitfalls of conventional domain-agnostic DSE: HT, LP, and
//! HE designs vs. AutoPilot's AP design on the nano-UAV, in missions and
//! on the F-1 roofline.

use air_sim::ObstacleDensity;
use autopilot::{DesignCandidate, Phase3, TaskSpec};
use uav_dynamics::{F1Model, UavSpec};

use super::fig7::{labelled_designs, LabelledDesigns};
use crate::{ratio, TextTable};

fn compare(name: &str, rival: &DesignCandidate, designs: &LabelledDesigns, paper: &str) -> String {
    let uav = UavSpec::nano();
    let task = TaskSpec::navigation(ObstacleDensity::Dense);
    let ap = &designs.ap.candidate;
    let ap_missions = Phase3::mission_report(&uav, &task, ap).expect("valid candidate");
    let rival_missions = Phase3::mission_report(&uav, &task, rival).expect("valid candidate");

    let mut table = TextTable::new(vec![
        "design",
        "fps",
        "tdp_w",
        "payload_g",
        "v_safe",
        "missions",
        "provisioning",
    ]);
    for (label, c) in [("AP", ap), (name, rival)] {
        let f1 = F1Model::new(uav.clone(), c.payload_g, task.sensor_fps).expect("valid payload");
        let report = Phase3::mission_report(&uav, &task, c).expect("valid candidate");
        table.row(vec![
            label.to_owned(),
            format!("{:.0}", c.fps),
            format!("{:.2}", c.tdp_w),
            format!("{:.1}", c.payload_g),
            format!("{:.2}", report.v_safe_ms),
            format!("{:.1}", report.missions),
            format!("{:?}", f1.classify(c.fps)),
        ]);
    }

    // F-1 roofline samples for both payloads.
    let f1_ap = F1Model::new(uav.clone(), ap.payload_g, task.sensor_fps).expect("valid payload");
    let f1_rival =
        F1Model::new(uav.clone(), rival.payload_g, task.sensor_fps).expect("valid payload");
    let mut curve = TextTable::new(vec![
        "throughput_fps".to_owned(),
        "v_safe (AP payload)".to_owned(),
        format!("v_safe ({name} payload)"),
    ]);
    for f in [2.0, 5.0, 10.0, 20.0, 30.0, 45.0, 60.0] {
        curve.row(vec![
            format!("{f:.0}"),
            format!("{:.2}", f1_ap.safe_velocity(f)),
            format!("{:.2}", f1_rival.safe_velocity(f)),
        ]);
    }

    format!(
        "{name} vs AP on the nano-UAV (dense scenario)\n\n{}\nAP/{name} missions: {} (paper: {paper})\n\nF-1 roofline:\n{}\nAP knee: {:?} FPS; ceilings: AP {:.2} m/s vs {name} {:.2} m/s\n",
        table.render(),
        ratio(ap_missions.missions, rival_missions.missions),
        curve.render(),
        f1_ap.knee_fps().map(|k| k.round()),
        f1_ap.velocity_ceiling(),
        f1_rival.velocity_ceiling(),
    )
}

/// Fig. 8 — high-throughput design vs. AP (paper: AP 2.25x missions).
pub fn run_fig8() -> String {
    let designs = labelled_designs();
    format!("Fig. 8: {}", compare("HT", &designs.ht.clone(), &designs, "2.25x"))
}

/// Fig. 9 — low-power design vs. AP (paper: AP 1.8x missions; LP's
/// action throughput sits well below the knee).
pub fn run_fig9() -> String {
    let designs = labelled_designs();
    format!("Fig. 9: {}", compare("LP", &designs.lp.clone(), &designs, "1.8x"))
}

/// Fig. 10 — high-efficiency design vs. AP (paper: AP 1.3x missions; HE
/// over-provisioned ~2x past the knee).
pub fn run_fig10() -> String {
    let designs = labelled_designs();
    format!("Fig. 10: {}", compare("HE", &designs.he.clone(), &designs, "1.3x"))
}

/// All three pitfall comparisons in one report (they share the Phase-2
/// run).
pub fn run_all() -> String {
    let designs = labelled_designs();
    format!(
        "Fig. 8: {}\nFig. 9: {}\nFig. 10: {}",
        compare("HT", &designs.ht.clone(), &designs, "2.25x"),
        compare("LP", &designs.lp.clone(), &designs, "1.8x"),
        compare("HE", &designs.he.clone(), &designs, "1.3x"),
    )
}

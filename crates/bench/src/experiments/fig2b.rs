//! Fig. 2b — E2E model parameters vs. task-level success rate.
//!
//! The paper plots the template instances' parameter counts against their
//! validated success rates (60–91 % band, rising with capacity and
//! saturating). This experiment regenerates the series for all 27
//! Table II models across the three deployment scenarios, using the
//! calibrated Phase-1 surrogate; `run_trained` regenerates a subset with
//! the real Q-learning substrate for cross-checking.

use air_sim::{ObstacleDensity, QTrainer, SuccessSurrogate};
use policy_nn::{PolicyHyperparams, PolicyModel};

use crate::TextTable;

/// Regenerates the Fig. 2b series (surrogate success model).
pub fn run() -> String {
    let surrogate = SuccessSurrogate::paper_calibrated();
    let mut table = TextTable::new(vec!["model", "params(M)", "macs(M)", "low", "medium", "dense"]);
    let mut min_s = f64::INFINITY;
    let mut max_s: f64 = 0.0;
    for hyper in PolicyHyperparams::enumerate() {
        let model = PolicyModel::build(hyper);
        let rates: Vec<f64> =
            ObstacleDensity::ALL.iter().map(|&d| surrogate.success_rate(&model, d)).collect();
        for &r in &rates {
            min_s = min_s.min(r);
            max_s = max_s.max(r);
        }
        table.row(vec![
            hyper.id(),
            format!("{:.1}", model.parameter_count() as f64 / 1e6),
            format!("{:.0}", model.mac_count() as f64 / 1e6),
            format!("{:.1}%", rates[0] * 100.0),
            format!("{:.1}%", rates[1] * 100.0),
            format!("{:.1}%", rates[2] * 100.0),
        ]);
    }
    let mut out = String::from("Fig. 2b: E2E model parameters vs task success rate\n\n");
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nsuccess band: {:.0}% .. {:.0}% (paper: 60% .. 91%)\n",
        min_s * 100.0,
        max_s * 100.0
    ));
    for d in ObstacleDensity::ALL {
        let surrogate_best = surrogate.best_model(d);
        out.push_str(&format!("best model for {d}: {surrogate_best}\n"));
    }
    out
}

/// Regenerates a Fig. 2b cross-check with the real Q-learning substrate
/// (slower; a capacity ladder rather than the full space).
pub fn run_trained(episodes: usize) -> String {
    let mut table = TextTable::new(vec!["model", "params(M)", "low", "medium", "dense"]);
    for (l, f) in [(2, 32), (4, 48), (5, 32), (7, 48), (10, 64)] {
        let hyper = PolicyHyperparams::new(l, f).expect("in space");
        let model = PolicyModel::build(hyper);
        let mut cells = vec![hyper.id(), format!("{:.1}", model.parameter_count() as f64 / 1e6)];
        for density in ObstacleDensity::ALL {
            // Mean over three seeds to damp RL variance.
            let mean: f64 = (0..3)
                .map(|seed| {
                    QTrainer::new(seed)
                        .with_episodes(episodes)
                        .with_eval_episodes(200)
                        .train(&model, density)
                        .success_rate
                })
                .sum::<f64>()
                / 3.0;
            cells.push(format!("{:.1}%", mean * 100.0));
        }
        table.row(cells);
    }
    format!(
        "Fig. 2b (Q-learning substrate, {episodes} episodes, 3-seed means)\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_all_models() {
        let r = run();
        for hyper in PolicyHyperparams::enumerate() {
            assert!(r.contains(&hyper.id()), "missing {}", hyper.id());
        }
        assert!(r.contains("best model for dense: 7 layers x 48 filters"));
    }

    #[test]
    fn trained_report_runs_with_tiny_budget() {
        let r = run_trained(20);
        assert!(r.contains("l10f64"));
    }
}

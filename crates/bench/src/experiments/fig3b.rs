//! Fig. 3b — varying the accelerator template parameters generates the
//! Pareto frontier of runtime vs. power.
//!
//! Sweeps PE array sizes and (uniform) scratchpad sizes for the
//! dense-scenario policy and reports every design's (latency, power)
//! point, marking the Pareto-optimal subset.

use air_sim::{AirLearningDatabase, ObstacleDensity};
use autopilot::{DssocEvaluator, Phase1, SuccessModel};
use dse_opt::pareto::pareto_indices;

use crate::TextTable;

/// Regenerates the Fig. 3b sweep.
pub fn run() -> String {
    let mut db = AirLearningDatabase::new();
    Phase1::new(SuccessModel::Surrogate, super::SEED).populate(ObstacleDensity::Dense, &mut db);
    let ev = DssocEvaluator::new(db, ObstacleDensity::Dense);

    // Fixed policy (the paper's dense pick: 7 layers / 48 filters is
    // layer index 5, filter index 1), sweep PE geometry x SRAM size.
    let mut points = Vec::new();
    let mut objs = Vec::new();
    for pe_r in 0..8 {
        for pe_c in 0..8 {
            for sram in 0..8 {
                let point = vec![5, 1, pe_r, pe_c, sram, sram, sram];
                let c = ev.evaluate_design(&point).expect("Table II point");
                objs.push(vec![c.latency_s, c.soc_avg_w]);
                points.push(c);
            }
        }
    }
    let pareto: std::collections::HashSet<usize> = pareto_indices(&objs).into_iter().collect();

    let mut table =
        TextTable::new(vec!["pe", "sram_kb", "latency_ms", "fps", "soc_avg_w", "tdp_w", "pareto"]);
    for (i, c) in points.iter().enumerate() {
        // Keep the report readable: print Pareto points plus the corners.
        let corner = c.config.rows() == c.config.cols()
            && (c.config.ifmap_sram_bytes() == 32 * 1024
                || c.config.ifmap_sram_bytes() == 4096 * 1024);
        if !pareto.contains(&i) && !corner {
            continue;
        }
        table.row(vec![
            format!("{}x{}", c.config.rows(), c.config.cols()),
            format!("{}", c.config.ifmap_sram_bytes() / 1024),
            format!("{:.2}", c.latency_s * 1e3),
            format!("{:.1}", c.fps),
            format!("{:.3}", c.soc_avg_w),
            format!("{:.2}", c.tdp_w),
            if pareto.contains(&i) { "*" } else { "" }.to_owned(),
        ]);
    }

    let lat = |i: &usize| objs[*i][0];
    let pw = |i: &usize| objs[*i][1];
    let pareto_vec: Vec<usize> = pareto.iter().copied().collect();
    let min_lat = pareto_vec.iter().map(lat).fold(f64::INFINITY, f64::min);
    let max_lat = pareto_vec.iter().map(lat).fold(0.0, f64::max);
    let min_pw = pareto_vec.iter().map(pw).fold(f64::INFINITY, f64::min);
    let max_pw = pareto_vec.iter().map(pw).fold(0.0, f64::max);

    format!(
        "Fig. 3b: accelerator template sweep (policy l7f48, {} designs, {} Pareto-optimal)\n\n{}\nPareto latency span: {:.2} .. {:.2} ms; power span: {:.3} .. {:.3} W\n",
        points.len(),
        pareto.len(),
        table.render(),
        min_lat * 1e3,
        max_lat * 1e3,
        min_pw,
        max_pw
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn sweep_produces_nontrivial_frontier() {
        let r = super::run();
        assert!(r.contains("Pareto latency span"));
        assert!(r.contains('*'));
    }
}

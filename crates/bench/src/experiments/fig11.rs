//! Fig. 11 — UAV agility raises the compute-throughput requirement: the
//! nano-UAV (higher thrust-to-weight) needs a ~2x faster
//! sensor-compute-control pipeline than the DJI Spark to maximize safe
//! velocity, and AutoPilot picks accordingly.

use air_sim::ObstacleDensity;
use uav_dynamics::{F1Model, UavSpec};

use crate::TextTable;

/// Regenerates the Fig. 11 comparison (both UAVs with 60 FPS sensors).
pub fn run() -> String {
    let payload = 24.0; // AP-class compute payload for both platforms
    let spark = F1Model::new(UavSpec::micro(), payload, 60.0).expect("valid payload");
    let nano = F1Model::new(UavSpec::nano(), payload, 60.0).expect("valid payload");

    let mut curve = TextTable::new(vec!["throughput_fps", "v_safe DJI Spark", "v_safe nano-UAV"]);
    for f in [2.0, 5.0, 10.0, 15.0, 20.0, 27.0, 35.0, 46.0, 60.0] {
        curve.row(vec![
            format!("{f:.0}"),
            format!("{:.2}", spark.safe_velocity(f)),
            format!("{:.2}", nano.safe_velocity(f)),
        ]);
    }

    let spark_knee = spark.knee_fps().expect("spark knee");
    let nano_knee = nano.knee_fps().expect("nano knee");

    // What AutoPilot actually selects for each UAV (dense scenario).
    let spark_sel = super::run_scenario(&UavSpec::micro(), ObstacleDensity::Dense).selection;
    let nano_sel = super::run_scenario(&UavSpec::nano(), ObstacleDensity::Dense).selection;
    let mut picks = TextTable::new(vec!["uav", "knee_fps", "selected_fps", "provisioning"]);
    for (name, knee, sel) in
        [("DJI Spark", spark_knee, spark_sel), ("nano-UAV", nano_knee, nano_sel)]
    {
        if let Some(s) = sel {
            picks.row(vec![
                name.to_owned(),
                format!("{knee:.1}"),
                format!("{:.1}", s.candidate.fps),
                format!("{:?}", s.provisioning),
            ]);
        }
    }

    format!(
        "Fig. 11: UAV agility vs compute requirement (60 FPS sensors, {payload} g payload)\n\n{}\nknee-points: DJI Spark {spark_knee:.1} FPS, nano-UAV {nano_knee:.1} FPS (paper: 27 and 46)\nknee ratio: {:.2}x (paper ~1.7x: AutoPilot picks ~2x more compute for the nano)\n\nAutoPilot selections (dense scenario):\n{}",
        curve.render(),
        nano_knee / spark_knee,
        picks.render(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knee_points_match_paper_shape() {
        let spark = F1Model::new(UavSpec::micro(), 24.0, 60.0).expect("valid payload");
        let nano = F1Model::new(UavSpec::nano(), 24.0, 60.0).expect("valid payload");
        let ratio = nano.knee_fps().unwrap() / spark.knee_fps().unwrap();
        assert!((1.4..=2.0).contains(&ratio), "knee ratio {ratio:.2}");
    }
}

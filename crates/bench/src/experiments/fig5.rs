//! Fig. 5 — number of missions: AutoPilot-generated DSSoCs vs. Jetson
//! TX2, Xavier NX, and PULP-DroNet, for three UAV classes and three
//! deployment scenarios (nine bars groups).
//!
//! The paper annotates each scenario with AutoPilot's advantage over the
//! *mean* of the baseline platforms (nano up to 2.25–2.3x, micro
//! 1.34–1.62x, mini 1.33–1.43x). All platforms run the AutoPilot-selected
//! policy except P-DroNet, which keeps its published 6 FPS / 64 mW.

use air_sim::ObstacleDensity;
use autopilot::{BaselineBoard, TaskSpec};
use policy_nn::PolicyModel;
use uav_dynamics::UavSpec;

use crate::{ratio, TextTable};

/// Regenerates Fig. 5 (all nine scenario groups).
pub fn run() -> String {
    let mut table = TextTable::new(vec![
        "scenario",
        "platform",
        "fps",
        "payload_g",
        "power_w",
        "v_safe",
        "missions",
        "vs AP",
    ]);
    let mut out = String::from(
        "Fig. 5: missions per battery charge, AutoPilot vs general-purpose platforms\n\n",
    );
    let mut class_gains: Vec<(String, Vec<f64>)> = Vec::new();

    // All nine pipelines share the scenario cache and fan out across the
    // evaluation engine's workers; results come back in input order.
    let pairs: Vec<(UavSpec, ObstacleDensity)> = UavSpec::all()
        .into_iter()
        .flat_map(|uav| ObstacleDensity::ALL.iter().map(move |&d| (uav.clone(), d)))
        .collect();
    let results = super::run_scenarios(&pairs);

    for ((uav, density), result) in pairs.iter().zip(results) {
        let class = uav.class.to_string();
        if class_gains.last().map(|(c, _)| c != &class).unwrap_or(true) {
            class_gains.push((class, Vec::new()));
        }
        let gains = &mut class_gains.last_mut().expect("class entry just pushed").1;

        let label = super::scenario_label(uav, *density);
        let task = TaskSpec::navigation(*density);
        let Some(sel) = result.selection else {
            table.row(vec![
                label.clone(),
                "AutoPilot".to_owned(),
                "-".to_owned(),
                "-".to_owned(),
                "-".to_owned(),
                "-".to_owned(),
                "0 (no flyable design)".to_owned(),
                "-".to_owned(),
            ]);
            continue;
        };
        let ap = sel.missions.missions;
        table.row(vec![
            label.clone(),
            "AutoPilot".to_owned(),
            format!("{:.0}", sel.candidate.fps),
            format!("{:.1}", sel.candidate.payload_g),
            format!("{:.2}", sel.candidate.soc_avg_w),
            format!("{:.2}", sel.missions.v_safe_ms),
            format!("{:.1}", ap),
            "1.00x".to_owned(),
        ]);

        let model = PolicyModel::build(sel.candidate.policy);
        let mut baseline_missions = Vec::new();
        for board in BaselineBoard::figure5_set() {
            let eval = board.evaluate(uav, &task, &model).expect("valid board payload");
            baseline_missions.push(eval.missions.missions);
            table.row(vec![
                label.clone(),
                board.name.clone(),
                format!("{:.0}", eval.fps),
                format!("{:.1}", board.weight_g),
                format!("{:.2}", board.power_w),
                format!("{:.2}", eval.missions.v_safe_ms),
                format!("{:.1}", eval.missions.missions),
                ratio(eval.missions.missions, ap),
            ]);
        }
        let mean = baseline_missions.iter().sum::<f64>() / baseline_missions.len() as f64;
        if mean > 0.0 {
            gains.push(ap / mean);
        }
    }

    out.push_str(&table.render());
    out.push('\n');
    for (class, gains) in &class_gains {
        if gains.is_empty() {
            continue;
        }
        let mean = gains.iter().sum::<f64>() / gains.len() as f64;
        let lo = gains.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = gains.iter().copied().fold(0.0f64, f64::max);
        out.push_str(&format!(
            "{class}: AutoPilot vs baseline mean = {mean:.2}x (range {lo:.2}x .. {hi:.2}x)\n"
        ));
    }
    out.push_str(
        "paper: nano up to 2.25-2.3x, micro 1.34-1.62x, mini 1.33-1.43x over baseline means\n",
    );
    out
}

#[cfg(test)]
mod tests {
    // Covered by the cross-crate integration tests (tests/experiments.rs);
    // running nine full pipelines here would dominate unit-test time.
}

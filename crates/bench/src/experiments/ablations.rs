//! Ablation studies for the design choices called out in DESIGN.md:
//! optimizer choice (BO vs. GA vs. SA vs. random), dataflow choice, the
//! Phase-3 full-system back end, and the surrogate-vs-trained success
//! model agreement.

use air_sim::{AirLearningDatabase, ObstacleDensity, QTrainer, SuccessSurrogate};
use autopilot::{
    DesignCandidate, DssocEvaluator, OptimizerChoice, Phase1, Phase2, Phase3, SuccessModel,
    TaskSpec,
};
use policy_nn::{PolicyHyperparams, PolicyModel};
use systolic_sim::{ArrayConfig, Dataflow, Simulator};
use uav_dynamics::UavSpec;

use crate::TextTable;

fn dense_evaluator(seed: u64) -> DssocEvaluator {
    let mut db = AirLearningDatabase::new();
    Phase1::new(SuccessModel::Surrogate, seed).populate(ObstacleDensity::Dense, &mut db);
    DssocEvaluator::new(db, ObstacleDensity::Dense)
}

/// Optimizer ablation at an equal evaluation budget (3-seed means).
///
/// Raw hypervolume against the evaluator's generous reference box
/// saturates after one evaluation, so the comparison uses metrics that
/// discriminate: hypervolume over *normalized* objectives (pooled
/// min/max across all runs, reference at 1.1) and the inverted
/// generational distance to the pooled Pareto front.
pub fn run_optimizers(budget: usize) -> String {
    use dse_opt::pareto::{hypervolume, inverted_generational_distance, pareto_indices};

    let ev = dense_evaluator(super::SEED);
    let runs = 3u64;

    // Collect every run's objective vectors.
    let mut per_optimizer: Vec<(OptimizerChoice, Vec<Vec<Vec<f64>>>)> = Vec::new();
    let mut pooled: Vec<Vec<f64>> = Vec::new();
    for choice in OptimizerChoice::ALL {
        let mut seeds = Vec::new();
        for seed in 0..runs {
            let out =
                Phase2::new(choice, budget, super::SEED + seed).run(&ev).expect("phase 2 runs");
            let objs: Vec<Vec<f64>> =
                out.result.evaluations.iter().map(|e| e.objectives.clone()).collect();
            pooled.extend(objs.clone());
            seeds.push(objs);
        }
        per_optimizer.push((choice, seeds));
    }

    // Pooled normalization and reference front.
    let dims = 3;
    let mut mins = vec![f64::INFINITY; dims];
    let mut maxs = vec![f64::NEG_INFINITY; dims];
    for o in &pooled {
        for d in 0..dims {
            mins[d] = mins[d].min(o[d]);
            maxs[d] = maxs[d].max(o[d]);
        }
    }
    let normalize = |o: &Vec<f64>| -> Vec<f64> {
        (0..dims)
            .map(|d| if maxs[d] > mins[d] { (o[d] - mins[d]) / (maxs[d] - mins[d]) } else { 0.5 })
            .collect()
    };
    let pooled_norm: Vec<Vec<f64>> = pooled.iter().map(normalize).collect();
    let reference_front: Vec<Vec<f64>> =
        pareto_indices(&pooled_norm).into_iter().map(|i| pooled_norm[i].clone()).collect();
    let reference_point = vec![1.1; dims];

    let mut table = TextTable::new(vec![
        "optimizer",
        "normalized hypervolume (mean)",
        "IGD to pooled front (mean)",
    ]);
    for (choice, seeds) in &per_optimizer {
        let mut hv = 0.0;
        let mut igd = 0.0;
        for objs in seeds {
            let norm: Vec<Vec<f64>> = objs.iter().map(normalize).collect();
            let front: Vec<Vec<f64>> =
                pareto_indices(&norm).into_iter().map(|i| norm[i].clone()).collect();
            hv += hypervolume(&front, &reference_point);
            igd += inverted_generational_distance(&front, &reference_front);
        }
        table.row(vec![
            choice.name().to_owned(),
            format!("{:.4}", hv / runs as f64),
            format!("{:.4}", igd / runs as f64),
        ]);
    }
    format!(
        "Ablation: Phase-2 optimizer choice (budget {budget}, dense scenario, {runs} seeds)\nHigher hypervolume and lower IGD are better.\n\n{}",
        table.render()
    )
}

/// Dataflow ablation: OS vs. WS vs. IS on a mid-size array for the three
/// paper-selected policies.
pub fn run_dataflows() -> String {
    let mut table = TextTable::new(vec!["policy", "dataflow", "cycles(M)", "fps", "mean util"]);
    for (l, f) in [(5, 32), (4, 48), (7, 48)] {
        let model = PolicyModel::build(PolicyHyperparams::new(l, f).expect("in space"));
        for df in Dataflow::ALL {
            let cfg = ArrayConfig::builder()
                .rows(32)
                .cols(32)
                .dataflow(df)
                .clock_mhz(200.0)
                .dram_bandwidth(48.0)
                .build()
                .expect("valid config");
            let stats = Simulator::new(cfg).simulate_network(model.layers());
            table.row(vec![
                format!("l{l}f{f}"),
                df.to_string(),
                format!("{:.2}", stats.total_cycles() as f64 / 1e6),
                format!("{:.1}", stats.fps()),
                format!("{:.2}", stats.mean_utilization()),
            ]);
        }
    }
    format!("Ablation: dataflow choice (32x32 array)\n\n{}", table.render())
}

/// A conventional compute-metric scoring rule over design candidates.
type ScoreRule = fn(&DesignCandidate) -> f64;

/// Phase-3 ablation: what the conventional (compute-metric) selections
/// lose versus the full-system selection, per UAV.
pub fn run_phase3() -> String {
    let mut table = TextTable::new(vec![
        "uav",
        "selection rule",
        "fps",
        "payload_g",
        "missions",
        "vs full-system",
    ]);
    for uav in UavSpec::all() {
        let task = TaskSpec::navigation(ObstacleDensity::Dense);
        let result = super::run_scenario(&uav, ObstacleDensity::Dense);
        let Some(sel) = result.selection else { continue };
        let full = sel.missions.missions;
        let best_success = result.phase2.best_success();
        let eligible: Vec<&DesignCandidate> = result
            .phase2
            .candidates
            .iter()
            .filter(|c| c.success_rate >= best_success - 0.02)
            .collect();
        let rules: [(&str, ScoreRule); 3] = [
            ("max throughput", |c| c.fps),
            ("min power", |c| -c.soc_avg_w),
            ("max efficiency", |c| c.efficiency_fps_per_w),
        ];
        table.row(vec![
            uav.class.to_string(),
            "full-system (AutoPilot)".to_owned(),
            format!("{:.0}", sel.candidate.fps),
            format!("{:.1}", sel.candidate.payload_g),
            format!("{full:.1}"),
            "1.00x".to_owned(),
        ]);
        for (name, score) in &rules {
            let pick = eligible
                .iter()
                .max_by(|a, b| score(a).partial_cmp(&score(b)).expect("finite"))
                .expect("eligible non-empty");
            let missions =
                Phase3::mission_report(&uav, &task, pick).expect("valid candidate").missions;
            table.row(vec![
                uav.class.to_string(),
                (*name).to_owned(),
                format!("{:.0}", pick.fps),
                format!("{:.1}", pick.payload_g),
                format!("{missions:.1}"),
                crate::ratio(missions, full),
            ]);
        }
    }
    format!(
        "Ablation: Phase-3 full-system back end vs conventional selection rules (dense scenario)\n\n{}",
        table.render()
    )
}

/// Surrogate-vs-trained agreement: rank correlation between the Phase-1
/// surrogate and the Q-learning substrate over a capacity ladder.
pub fn run_success_models(episodes: usize) -> String {
    let surrogate = SuccessSurrogate::paper_calibrated();
    let ladder = [(2, 32), (3, 32), (5, 32), (4, 48), (7, 48), (8, 64), (10, 64)];
    let mut table = TextTable::new(vec!["model", "surrogate", "q-learning (3-seed mean)"]);
    let mut pairs = Vec::new();
    for (l, f) in ladder {
        let hyper = PolicyHyperparams::new(l, f).expect("in space");
        let model = PolicyModel::build(hyper);
        let s = surrogate.success_rate(&model, ObstacleDensity::Dense);
        let q: f64 = (0..3)
            .map(|seed| {
                QTrainer::new(seed)
                    .with_episodes(episodes)
                    .with_eval_episodes(200)
                    .train(&model, ObstacleDensity::Dense)
                    .success_rate
            })
            .sum::<f64>()
            / 3.0;
        pairs.push((s, q));
        table.row(vec![hyper.id(), format!("{:.1}%", s * 100.0), format!("{:.1}%", q * 100.0)]);
    }
    let rho = spearman(&pairs);
    format!(
        "Ablation: surrogate vs Q-learning success model (dense scenario, {episodes} episodes)\n\n{}\nSpearman rank correlation: {rho:.2}\n",
        table.render()
    )
}

/// Spearman rank correlation of paired samples.
fn spearman(pairs: &[(f64, f64)]) -> f64 {
    let rank = |vals: Vec<f64>| -> Vec<f64> {
        let mut idx: Vec<usize> = (0..vals.len()).collect();
        idx.sort_by(|&a, &b| vals[a].partial_cmp(&vals[b]).expect("finite"));
        let mut r = vec![0.0; vals.len()];
        for (rank_pos, &i) in idx.iter().enumerate() {
            r[i] = rank_pos as f64;
        }
        r
    };
    let xs = rank(pairs.iter().map(|p| p.0).collect());
    let ys = rank(pairs.iter().map(|p| p.1).collect());
    let n = pairs.len() as f64;
    let mean = (n - 1.0) / 2.0;
    let mut num = 0.0;
    let mut dx = 0.0;
    let mut dy = 0.0;
    for (x, y) in xs.iter().zip(&ys) {
        num += (x - mean) * (y - mean);
        dx += (x - mean) * (x - mean);
        dy += (y - mean) * (y - mean);
    }
    if dx > 0.0 && dy > 0.0 {
        num / (dx * dy).sqrt()
    } else {
        0.0
    }
}

/// Paradigm comparison: the E2E pipeline (Q-learning substrate) versus
/// the Sense-Plan-Act pipeline (mapping + A* + path following) at equal
/// perception quality — the Section II/VII contrast. E2E's per-decision
/// compute is a single forward pass on the accelerator; SPA pays mapping
/// and replanning on a general-purpose core.
pub fn run_paradigms(episodes: usize) -> String {
    use air_sim::spa::SpaAgent;
    let mut table =
        TextTable::new(vec!["paradigm", "scenario", "success", "per-decision workload"]);
    let model = PolicyModel::build(PolicyHyperparams::new(7, 48).expect("in space"));
    let miss = QTrainer::miss_probability(&model);
    for density in [ObstacleDensity::Low, ObstacleDensity::Dense] {
        let e2e = QTrainer::new(super::SEED)
            .with_episodes(episodes)
            .with_eval_episodes(200)
            .train(&model, density);
        table.row(vec![
            "E2E (l7f48)".to_owned(),
            density.to_string(),
            format!("{:.1}%", e2e.success_rate * 100.0),
            format!("{:.0} MMAC forward pass", model.mac_count() as f64 / 1e6),
        ]);
        let spa = SpaAgent::new(super::SEED, miss).evaluate(density, 200);
        table.row(vec![
            "SPA (map+A*)".to_owned(),
            density.to_string(),
            format!("{:.1}%", spa.success_rate * 100.0),
            format!(
                "{} map updates + {} A* expansions (~{} kops on CPU)",
                spa.mean_workload.map_updates,
                spa.mean_workload.planner_expansions,
                spa.mean_workload.ops() / 1000
            ),
        ]);
    }
    format!(
        "Ablation: E2E vs Sense-Plan-Act at matched perception quality (miss {:.2})\n\n{}\nThe paper's Section II observation: E2E needs no map or planning stage, so its\nper-decision cost is one (acceleratable) forward pass, while SPA pays serial\nmapping + replanning on a general-purpose core.\n",
        miss,
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spearman_perfect_and_inverse() {
        let inc: Vec<(f64, f64)> = (0..6).map(|i| (i as f64, i as f64 * 2.0)).collect();
        assert!((spearman(&inc) - 1.0).abs() < 1e-12);
        let dec: Vec<(f64, f64)> = (0..6).map(|i| (i as f64, -(i as f64))).collect();
        assert!((spearman(&dec) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn dataflow_ablation_runs() {
        let r = run_dataflows();
        assert!(r.contains("os") && r.contains("ws") && r.contains("is"));
    }
}

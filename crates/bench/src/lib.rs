//! # autopilot-bench
//!
//! Shared infrastructure for the paper-reproduction binaries (one per
//! table/figure of the MICRO 2022 AutoPilot paper) and the in-repo
//! [`tinybench`] micro-benchmark harness.
//!
//! Each `src/bin/figN.rs` / `src/bin/tableN.rs` binary regenerates the
//! rows or series of the corresponding exhibit and prints them as an
//! aligned text table; `repro_all` runs every experiment and writes the
//! results under `results/`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use autopilot_obs as obs;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// A simple aligned text table for experiment output.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> TextTable {
        TextTable { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut TextTable {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:<width$}", cell, width = widths[i] + 2);
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let rule: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(rule.min(160)));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }
}

/// Directory where experiment binaries persist their outputs.
pub fn results_dir() -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Writes `content` to `results/<name>` and echoes it to stdout.
pub fn emit(name: &str, content: &str) {
    println!("{content}");
    let path = results_dir().join(name);
    if let Err(e) = fs::write(&path, content) {
        obs::obs_warn!("warning: could not persist {}: {e}", path.display());
    } else {
        obs::obs_info!("[saved {}]", path.display());
    }
}

/// Writes the global telemetry snapshot to
/// `results/telemetry_<run>.json` and returns the path.
///
/// A no-op returning `None` when `AUTOPILOT_OBS` metrics are off, so
/// every experiment binary can call it unconditionally at exit without
/// paying anything in the default configuration.
pub fn write_telemetry(run: &str) -> Option<PathBuf> {
    if !obs::metrics_enabled() {
        return None;
    }
    let path = results_dir().join(format!("telemetry_{run}.json"));
    match obs::snapshot().write_json(&path) {
        Ok(()) => {
            obs::obs_info!("[telemetry {}]", path.display());
            Some(path)
        }
        Err(e) => {
            obs::obs_warn!("warning: could not write telemetry {}: {e}", path.display());
            None
        }
    }
}

/// Drains the per-event trace and writes it as Chrome trace-event JSON
/// to `results/trace_<run>.json` (Perfetto / `chrome://tracing`
/// loadable), returning the path.
///
/// A no-op returning `None` when `AUTOPILOT_TRACE` is off or nothing
/// was recorded, so every experiment binary can call it unconditionally
/// at exit.
pub fn write_trace(run: &str) -> Option<PathBuf> {
    if !obs::trace::enabled() {
        return None;
    }
    let trace = obs::trace::take();
    if trace.is_empty() {
        return None;
    }
    let path = results_dir().join(format!("trace_{run}.json"));
    match fs::write(&path, trace.to_chrome_json()) {
        Ok(()) => {
            obs::obs_info!(
                "[trace {} ({} events, {} dropped)]",
                path.display(),
                trace.len(),
                trace.dropped
            );
            Some(path)
        }
        Err(e) => {
            obs::obs_warn!("warning: could not write trace {}: {e}", path.display());
            None
        }
    }
}

/// Formats a ratio like `2.25x`.
pub fn ratio(a: f64, b: f64) -> String {
    if b > 0.0 {
        format!("{:.2}x", a / b)
    } else {
        "inf".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(vec!["design", "fps"]);
        t.row(vec!["AP", "46"]);
        t.row(vec!["HT (high throughput)", "205"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("design"));
        assert!(lines[3].contains("205"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn row_arity_checked() {
        TextTable::new(vec!["a", "b"]).row(vec!["only-one"]);
    }

    #[test]
    fn ratio_formats() {
        assert_eq!(ratio(9.0, 4.0), "2.25x");
        assert_eq!(ratio(1.0, 0.0), "inf");
    }
}

pub mod experiments;
pub mod tinybench;

//! Reproduction binary for Fig. 2b cross-check on the Q-learning substrate.

fn main() {
    autopilot_bench::emit(
        "fig2b_trained.txt",
        &autopilot_bench::experiments::fig2b::run_trained(600),
    );
    autopilot_bench::write_telemetry("fig2b_trained");
}

//! Reproduction binary for Table VI (the methodology-generalization
//! taxonomy of Section VII).

use autopilot::taxonomy::taxonomy;
use autopilot_bench::TextTable;

fn main() {
    let mut table = TextTable::new(vec![
        "domain",
        "paradigm",
        "phase 1 front end",
        "phase 2 HW templates",
        "phase 2 optimizers",
        "phase 3 back end",
        "here?",
    ]);
    for row in taxonomy() {
        table.row(vec![
            row.domain.to_owned(),
            row.paradigm.to_string(),
            row.front_end.to_owned(),
            row.hardware_templates.to_owned(),
            row.optimizers.to_owned(),
            row.back_end.to_owned(),
            if row.implemented_here { "yes" } else { "" }.to_owned(),
        ]);
    }
    autopilot_bench::emit(
        "table6.txt",
        &format!("Table VI: AutoPilot methodology taxonomy across domains\n\n{}", table.render()),
    );
    autopilot_bench::write_telemetry("table6");
}

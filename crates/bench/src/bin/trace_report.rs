//! Text flamegraph and self-time report over a Chrome trace-event JSON
//! file written by the `AUTOPILOT_TRACE=1` tracing pipeline.
//!
//! ```text
//! trace_report [<trace.json>] [--top N] [--require NAME]...
//! ```
//!
//! Reads the trace (default `results/trace_timing_probe.json`), rebuilds
//! the span tree from the recorded `id`/`parent` links (including
//! cross-thread `par.worker` hops), and prints:
//!
//! 1. an aggregated flamegraph — every distinct span *path* with its
//!    inclusive time, share of the root, and invocation count;
//! 2. a top-N self-time table — per span *name*, time spent outside any
//!    child span, which is where optimization effort should go.
//!
//! Every `--require NAME` asserts that at least one span with that name
//! exists in the trace; the process exits non-zero when one is missing,
//! so `scripts/verify.sh` can gate on the decomposition staying intact.

use autopilot_obs as obs;
use obs::trace::ParsedSpan;
use std::collections::BTreeMap;
use std::process::ExitCode;

/// Aggregated flamegraph node: one span path (chain of names).
#[derive(Debug, Default)]
struct Node {
    total_us: f64,
    self_us: f64,
    count: u64,
    children: BTreeMap<String, Node>,
}

impl Node {
    fn child(&mut self, name: &str) -> &mut Node {
        self.children.entry(name.to_owned()).or_default()
    }
}

fn render_tree(node: &Node, name: &str, depth: usize, root_total: f64, out: &mut String) {
    let pct = if root_total > 0.0 { 100.0 * node.total_us / root_total } else { 0.0 };
    out.push_str(&format!(
        "{:>9.3}ms {:>6.2}% {:>8}x  {}{}\n",
        node.total_us / 1000.0,
        pct,
        node.count,
        "  ".repeat(depth),
        name
    ));
    // Children sorted by inclusive time, heaviest first.
    let mut kids: Vec<(&String, &Node)> = node.children.iter().collect();
    kids.sort_by(|a, b| b.1.total_us.total_cmp(&a.1.total_us));
    for (child_name, child) in kids {
        render_tree(child, child_name, depth + 1, root_total, out);
    }
}

fn main() -> ExitCode {
    let mut path = String::from("results/trace_timing_probe.json");
    let mut top_n: usize = 15;
    let mut required: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--top" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => top_n = n,
                None => {
                    eprintln!("trace_report: --top needs a number");
                    return ExitCode::FAILURE;
                }
            },
            "--require" => match args.next() {
                Some(name) => required.push(name),
                None => {
                    eprintln!("trace_report: --require needs a span name");
                    return ExitCode::FAILURE;
                }
            },
            other => path = other.to_owned(),
        }
    }

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_report: cannot read {path}: {e}");
            eprintln!("hint: run with AUTOPILOT_TRACE=1 to produce a trace first");
            return ExitCode::FAILURE;
        }
    };
    let trace = match obs::trace::parse_chrome_trace(&text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_report: {path} is not a chrome trace: {e}");
            return ExitCode::FAILURE;
        }
    };
    if trace.spans.is_empty() {
        eprintln!("trace_report: {path} holds no complete spans");
        return ExitCode::FAILURE;
    }

    // Parents begin strictly before their children (adoption happens
    // while the parent is live), so a start-time sweep sees every
    // parent's path before its children need it.
    let mut spans: Vec<&ParsedSpan> = trace.spans.iter().collect();
    spans.sort_by(|a, b| a.start_us.total_cmp(&b.start_us).then(a.id.cmp(&b.id)));

    let mut child_us: BTreeMap<u64, f64> = BTreeMap::new();
    for s in &spans {
        if s.parent != 0 {
            *child_us.entry(s.parent).or_insert(0.0) += s.dur_us;
        }
    }

    let mut root = Node::default();
    let mut paths: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    let mut self_by_name: BTreeMap<String, (f64, u64)> = BTreeMap::new();
    for s in &spans {
        // A parent missing from the file (overwritten in the ring) makes
        // the span a root of its own path — still counted, never lost.
        let mut chain = paths.get(&s.parent).cloned().unwrap_or_default();
        chain.push(s.name.clone());
        paths.insert(s.id, chain.clone());

        // Self time: inclusive minus direct children; concurrent
        // children (par.worker fan-out) can overlap the parent wall
        // time, so clamp at zero rather than report negative work.
        let self_us = (s.dur_us - child_us.get(&s.id).copied().unwrap_or(0.0)).max(0.0);
        let mut node = &mut root;
        for name in &chain {
            node = node.child(name);
        }
        node.total_us += s.dur_us;
        node.self_us += self_us;
        node.count += 1;
        let entry = self_by_name.entry(s.name.clone()).or_insert((0.0, 0));
        entry.0 += self_us;
        entry.1 += 1;
    }

    let root_total: f64 = root.children.values().map(|n| n.total_us).sum();
    let mut out = String::new();
    out.push_str(&format!(
        "trace: {path} ({} spans, {} dropped events)\n\n",
        trace.spans.len(),
        trace.dropped_events
    ));
    out.push_str("flamegraph (inclusive time, share of roots, calls):\n");
    let mut tops: Vec<(&String, &Node)> = root.children.iter().collect();
    tops.sort_by(|a, b| b.1.total_us.total_cmp(&a.1.total_us));
    for (name, node) in tops {
        render_tree(node, name, 0, root_total, &mut out);
    }

    out.push_str(&format!("\ntop {top_n} spans by self time:\n"));
    let mut table =
        autopilot_bench::TextTable::new(vec!["span", "self_ms", "calls", "self/call_us"]);
    let mut ranked: Vec<(&String, &(f64, u64))> = self_by_name.iter().collect();
    ranked.sort_by(|a, b| b.1 .0.total_cmp(&a.1 .0));
    for (name, (self_us, calls)) in ranked.into_iter().take(top_n) {
        table.row(vec![
            name.clone(),
            format!("{:.3}", self_us / 1000.0),
            calls.to_string(),
            format!("{:.2}", self_us / *calls as f64),
        ]);
    }
    out.push_str(&table.render());
    println!("{out}");

    let mut ok = true;
    for name in &required {
        if trace.spans.iter().any(|s| &s.name == name) {
            println!("require {name}: present");
        } else {
            eprintln!("trace_report: required span '{name}' missing from {path}");
            ok = false;
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

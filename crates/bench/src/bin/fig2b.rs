//! Reproduction binary for Fig. 2b (model parameters vs success rate).

fn main() {
    autopilot_bench::emit("fig2b.txt", &autopilot_bench::experiments::fig2b::run());
    autopilot_bench::write_telemetry("fig2b");
}

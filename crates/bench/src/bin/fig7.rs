//! Reproduction binary for Fig. 7 (HT/LP/HE/AP design profiles).

fn main() {
    autopilot_bench::emit("fig7.txt", &autopilot_bench::experiments::fig7::run());
    autopilot_bench::write_telemetry("fig7");
}

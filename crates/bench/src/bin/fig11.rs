//! Reproduction binary for Fig. 11 (agility vs compute requirement).

fn main() {
    autopilot_bench::emit("fig11.txt", &autopilot_bench::experiments::fig11::run());
    autopilot_bench::write_telemetry("fig11");
}

//! Reproduction binary for Table V (specialization cost).

fn main() {
    autopilot_bench::emit("table5.txt", &autopilot_bench::experiments::table5::run());
    autopilot_bench::write_telemetry("table5");
}

//! Reproduction binary for the per-weight-class SWaP frontier sweep.

fn main() {
    autopilot_bench::emit("frontiers.txt", &autopilot_bench::experiments::frontiers::run());
    autopilot_bench::write_telemetry("frontiers");
}

//! Calibration probe: prints the accelerator template's FPS / power /
//! weight envelope across the Table II space corners and a coarse grid,
//! plus per-UAV knee-points. Used to verify the Table III bands
//! (22–200 FPS, 0.7–8.24 W) are qualitatively reproduced.

use air_sim::{AirLearningDatabase, ObstacleDensity};
use autopilot::{DssocEvaluator, JointSpace, Phase1, SuccessModel};
use autopilot_bench::TextTable;
use uav_dynamics::{F1Model, UavSpec};

fn main() {
    let mut db = AirLearningDatabase::new();
    Phase1::new(SuccessModel::Surrogate, 1).populate(ObstacleDensity::Dense, &mut db);
    let ev = DssocEvaluator::new(db, ObstacleDensity::Dense);

    let mut table = TextTable::new(vec![
        "pe",
        "sram_kb",
        "fps",
        "latency_ms",
        "soc_avg_w",
        "tdp_w",
        "payload_g",
        "fps_per_w",
    ]);
    // Fixed dense-scenario policy (7 layers, 48 filters), sweep hardware.
    let mut min_fps = f64::INFINITY;
    let mut max_fps: f64 = 0.0;
    let mut min_w = f64::INFINITY;
    let mut max_w: f64 = 0.0;
    for pe_idx in 0..8 {
        for sram_idx in [0usize, 3, 7] {
            let point = vec![5, 1, pe_idx, pe_idx, sram_idx, sram_idx, sram_idx];
            let c = ev.evaluate_design(&point).expect("Table II point");
            min_fps = min_fps.min(c.fps);
            max_fps = max_fps.max(c.fps);
            min_w = min_w.min(c.soc_avg_w);
            max_w = max_w.max(c.soc_avg_w);
            table.row(vec![
                format!("{}x{}", c.config.rows(), c.config.cols()),
                format!("{}", c.config.ifmap_sram_bytes() / 1024),
                format!("{:.1}", c.fps),
                format!("{:.2}", c.latency_s * 1e3),
                format!("{:.3}", c.soc_avg_w),
                format!("{:.3}", c.tdp_w),
                format!("{:.1}", c.payload_g),
                format!("{:.1}", c.efficiency_fps_per_w),
            ]);
        }
    }
    println!("{}", table.render());
    println!("FPS band: {min_fps:.1} .. {max_fps:.1} (paper: 22 .. 205)");
    println!("SoC power band: {min_w:.3} .. {max_w:.3} W (paper: 0.7 .. 8.24)");

    for uav in UavSpec::all() {
        let f1 = F1Model::new(uav.clone(), 24.0, 60.0).expect("valid payload");
        println!(
            "{}: knee = {:?} FPS, ceiling = {:.2} m/s, a_max = {:.2} m/s^2",
            uav.name,
            f1.knee_fps().map(|k| (k * 10.0).round() / 10.0),
            f1.velocity_ceiling(),
            f1.payload().max_accel_ms2
        );
    }

    println!("joint design space size = {}", JointSpace::size());
    autopilot_bench::write_telemetry("calibrate");
}

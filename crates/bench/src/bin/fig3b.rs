//! Reproduction binary for Fig. 3b (accelerator template Pareto sweep).

fn main() {
    autopilot_bench::emit("fig3b.txt", &autopilot_bench::experiments::fig3b::run());
    autopilot_bench::write_telemetry("fig3b");
}

//! Reproduction binary for Table II (design space definition).

fn main() {
    autopilot_bench::emit("table2.txt", &autopilot_bench::experiments::table2::run());
    autopilot_bench::write_telemetry("table2");
}

//! Reproduction binary for the optimizer-choice ablation.

fn main() {
    autopilot_bench::emit(
        "ablate_optimizers.txt",
        &autopilot_bench::experiments::ablations::run_optimizers(120),
    );
    autopilot_bench::write_telemetry("ablate_optimizers");
}

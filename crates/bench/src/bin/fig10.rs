//! Reproduction binary for Fig. 10 (HE vs AP).

fn main() {
    autopilot_bench::emit("fig10.txt", &autopilot_bench::experiments::pitfalls::run_fig10());
    autopilot_bench::write_telemetry("fig10");
}

//! Perf-budget regression gate for `scripts/verify.sh`.
//!
//! ```text
//! budget_gate [<budgets.json>]
//! ```
//!
//! Reads the checked-in budget file (default
//! `results/BASELINE_budgets.json`) and evaluates each rule against the
//! freshly generated benchmark / telemetry JSON it names. A rule is
//!
//! ```text
//! { "name":   "human-readable label",
//!   "source": "BENCH_phase2_scale.json",      // under results/
//!   "metric": "span_bo_acquisition_score_s",  // field of that file
//!   "denominator": "span_phase2_run_s",       // optional: gate a ratio
//!   "max": 0.5 }                              // and/or "min"
//! ```
//!
//! Sources are the flat `BENCH_*.json` objects written by the probes; a
//! `telemetry_*.json` source is read through the snapshot schema, with
//! the metric addressed as `counter:<name>`, `gauge:<name>`, or
//! `span_total:<name>`. Prints a PASS/FAIL table with the measured value
//! next to its bound and exits non-zero when any budget is breached —
//! the readable diff a perf regression should fail CI with.

use autopilot_obs as obs;
use obs::json::Value;
use std::collections::BTreeMap;
use std::process::ExitCode;

/// Pulls `metric` out of one results file, loading and caching it.
fn lookup(
    cache: &mut BTreeMap<String, Option<Value>>,
    source: &str,
    metric: &str,
) -> Result<f64, String> {
    let doc = cache
        .entry(source.to_owned())
        .or_insert_with(|| {
            let path = autopilot_bench::results_dir().join(source);
            std::fs::read_to_string(&path).ok().and_then(|t| Value::parse(&t).ok())
        })
        .as_ref()
        .ok_or_else(|| format!("source {source} missing or unparsable under results/"))?;

    if let Some(name) = metric.strip_prefix("counter:") {
        let snap = snapshot_of(doc, source)?;
        return Ok(snap.counter(name) as f64);
    }
    if let Some(name) = metric.strip_prefix("gauge:") {
        let snap = snapshot_of(doc, source)?;
        return snap
            .gauges
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .ok_or_else(|| format!("gauge {name} missing from {source}"));
    }
    if let Some(name) = metric.strip_prefix("span_total:") {
        let snap = snapshot_of(doc, source)?;
        return Ok(snap.span_total_s(name));
    }
    doc.get(metric)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("field {metric} missing from {source}"))
}

fn snapshot_of(doc: &Value, source: &str) -> Result<obs::Snapshot, String> {
    obs::Snapshot::from_json(&doc.to_json())
        .map_err(|e| format!("{source} is not a telemetry snapshot: {e}"))
}

fn main() -> ExitCode {
    let path =
        std::env::args().nth(1).unwrap_or_else(|| "results/BASELINE_budgets.json".to_owned());
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("budget_gate: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match Value::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("budget_gate: {path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let rules = match doc.get("rules").and_then(Value::as_arr) {
        Some(r) if !r.is_empty() => r,
        _ => {
            eprintln!("budget_gate: {path} holds no rules");
            return ExitCode::FAILURE;
        }
    };

    let mut cache: BTreeMap<String, Option<Value>> = BTreeMap::new();
    let mut table = autopilot_bench::TextTable::new(vec!["budget", "value", "bound", "status"]);
    let mut breaches = 0usize;
    for (i, rule) in rules.iter().enumerate() {
        let field = |key: &str| rule.get(key).and_then(Value::as_str);
        let (name, source, metric) = match (field("name"), field("source"), field("metric")) {
            (Some(n), Some(s), Some(m)) => (n, s, m),
            _ => {
                eprintln!("budget_gate: rule #{i} needs string name/source/metric");
                return ExitCode::FAILURE;
            }
        };
        let min = rule.get("min").and_then(Value::as_f64);
        let max = rule.get("max").and_then(Value::as_f64);
        if min.is_none() && max.is_none() {
            eprintln!("budget_gate: rule '{name}' sets neither min nor max");
            return ExitCode::FAILURE;
        }

        let value = lookup(&mut cache, source, metric).and_then(|num| {
            match rule.get("denominator").and_then(Value::as_str) {
                None => Ok(num),
                Some(den) => {
                    let d = lookup(&mut cache, source, den)?;
                    if d == 0.0 {
                        Err(format!("denominator {den} is zero in {source}"))
                    } else {
                        Ok(num / d)
                    }
                }
            }
        });
        let bound = match (min, max) {
            (Some(lo), Some(hi)) => format!("[{lo}, {hi}]"),
            (Some(lo), None) => format!(">= {lo}"),
            (None, Some(hi)) => format!("<= {hi}"),
            (None, None) => unreachable!(),
        };
        match value {
            Ok(v) => {
                let ok = min.is_none_or(|lo| v >= lo) && max.is_none_or(|hi| v <= hi);
                if !ok {
                    breaches += 1;
                }
                table.row(vec![
                    name.to_owned(),
                    format!("{v:.4}"),
                    bound,
                    if ok { "PASS".to_owned() } else { "FAIL".to_owned() },
                ]);
            }
            Err(e) => {
                breaches += 1;
                table.row(vec![name.to_owned(), format!("error: {e}"), bound, "FAIL".to_owned()]);
            }
        }
    }

    println!("perf budgets ({path}):\n{}", table.render());
    if breaches == 0 {
        println!("budget gate OK: {} budgets within bounds", rules.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("budget gate FAILED: {breaches} of {} budgets breached", rules.len());
        ExitCode::FAILURE
    }
}

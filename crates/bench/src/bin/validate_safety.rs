//! Empirical validation of the analytic safety model: closed-loop
//! braking simulation vs. the closed form, across the three UAV
//! platforms and a range of pipeline rates.

use autopilot_bench::TextTable;
use uav_dynamics::{BrakingSim, F1Model, UavSpec};

fn main() {
    let sim = BrakingSim::new();
    let mut table = TextTable::new(vec![
        "uav",
        "pipeline_fps",
        "analytic v_safe",
        "simulated v_max",
        "rel err",
    ]);
    let mut worst: f64 = 0.0;
    for uav in UavSpec::all() {
        let f1 = F1Model::new(uav.clone(), 24.0, 60.0).expect("valid payload");
        for fps in [6.0, 20.0, 46.0, 60.0] {
            let t = f1.response_time_s(fps);
            let analytic =
                uav_dynamics::safe_velocity(f1.payload().max_accel_ms2, t, uav.sensor_range_m);
            let simulated =
                sim.max_safe_velocity(f1.payload().max_accel_ms2, t, uav.sensor_range_m);
            let err = if analytic > 0.0 { (analytic - simulated).abs() / analytic } else { 0.0 };
            worst = worst.max(err);
            table.row(vec![
                uav.class.to_string(),
                format!("{fps:.0}"),
                format!("{analytic:.3}"),
                format!("{simulated:.3}"),
                format!("{:.2}%", err * 100.0),
            ]);
        }
    }
    autopilot_bench::emit(
        "validate_safety.txt",
        &format!(
            "Safety-model validation: closed-loop braking simulation vs closed form\n\n{}\nworst relative error: {:.2}%\n",
            table.render(),
            worst * 100.0
        ),
    );
    autopilot_bench::write_telemetry("validate_safety");
}

//! Reproduction binary for Fig. 8 (HT vs AP).

fn main() {
    autopilot_bench::emit("fig8.txt", &autopilot_bench::experiments::pitfalls::run_fig8());
    autopilot_bench::write_telemetry("fig8");
}

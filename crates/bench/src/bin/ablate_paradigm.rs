//! Reproduction binary for the E2E-vs-SPA paradigm ablation.

fn main() {
    autopilot_bench::emit(
        "ablate_paradigm.txt",
        &autopilot_bench::experiments::ablations::run_paradigms(800),
    );
    autopilot_bench::write_telemetry("ablate_paradigm");
}

//! Reproduction binary for Fig. 6 (architectural parameter variation).

fn main() {
    autopilot_bench::emit("fig6.txt", &autopilot_bench::experiments::fig6::run());
    autopilot_bench::write_telemetry("fig6");
}

//! Runs every paper-reproduction experiment and persists the reports
//! under `results/`.

use autopilot_bench::{emit, experiments as ex};
use autopilot_obs::obs_info;
use std::time::Instant;

type Step = (&'static str, fn() -> String);

fn main() {
    let t0 = Instant::now();
    let steps: Vec<Step> = vec![
        ("fig2b.txt", ex::fig2b::run as fn() -> String),
        ("fig3b.txt", ex::fig3b::run),
        ("table2.txt", ex::table2::run),
        ("table3.txt", ex::table3::run),
        ("fig5.txt", ex::fig5::run),
        ("fig6.txt", ex::fig6::run),
        ("fig7.txt", ex::fig7::run),
        ("fig8_9_10.txt", ex::pitfalls::run_all),
        ("fig11.txt", ex::fig11::run),
        ("table5.txt", ex::table5::run),
        ("ablate_dataflow.txt", ex::ablations::run_dataflows),
        ("ablate_phase3.txt", ex::ablations::run_phase3),
    ];
    for (name, f) in steps {
        let t = Instant::now();
        emit(name, &f());
        obs_info!("[{name} took {:?}]", t.elapsed());
    }
    // Budget-heavier ablations last.
    emit("ablate_paradigm.txt", &ex::ablations::run_paradigms(800));
    emit("ablate_optimizers.txt", &ex::ablations::run_optimizers(120));
    emit("ablate_success_models.txt", &ex::ablations::run_success_models(600));
    obs_info!("total: {:?}", t0.elapsed());
    autopilot_bench::write_telemetry("repro_all");
}

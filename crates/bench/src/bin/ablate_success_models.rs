//! Reproduction binary for the surrogate-vs-trained success model ablation.

fn main() {
    autopilot_bench::emit(
        "ablate_success_models.txt",
        &autopilot_bench::experiments::ablations::run_success_models(600),
    );
    autopilot_bench::write_telemetry("ablate_success_models");
}

//! Tracing smoke check for `scripts/verify.sh`: exercises the per-event
//! trace recorder end-to-end on a small Phase-2 run and then measures
//! that tracing stays cheap.
//!
//! Functional checks (2 worker threads, so cross-thread flow linkage is
//! on the line):
//!
//! * no ring wraparound on a smoke-sized run (`dropped == 0`);
//! * every begin has its end (`unmatched == 0` once the root closes);
//! * every span's ancestry chain reaches a root (`parent == 0`);
//! * at least one span parents across threads (the `par.worker` hop);
//! * the Chrome JSON export round-trips through the in-repo parser.
//!
//! Overhead check: the same workload is timed with tracing off and on;
//! the traced run must stay within a generous multiple of the untraced
//! one — per-event recording is two atomics and a ring write, not a
//! profiler. Exits non-zero on any violation.

use air_sim::{AirLearningDatabase, ObstacleDensity};
use autopilot::{DssocEvaluator, OptimizerChoice, Phase1, Phase2, SuccessModel};
use autopilot_obs as obs;
use std::collections::BTreeMap;
use std::time::Instant;

/// Smoke workload: one warm-started SMS-EGO DSE on two workers, wrapped
/// in a root span so the whole run hangs off one tree.
fn workload(ev: &DssocEvaluator, seed: u64) {
    let _root = obs::span("smoke.root");
    let phase2 = Phase2::new(OptimizerChoice::SmsEgo, 32, seed).with_threads(2);
    phase2.run(ev).expect("phase 2 runs");
}

fn timed(ev: &DssocEvaluator, seed: u64, reps: usize) -> f64 {
    let mut best = f64::INFINITY;
    for r in 0..reps {
        obs::trace::clear();
        let t = Instant::now();
        workload(ev, seed + r as u64);
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    obs::force_metrics(true);
    let mut db = AirLearningDatabase::new();
    Phase1::new(SuccessModel::Surrogate, 1).populate(ObstacleDensity::Dense, &mut db);
    let ev = DssocEvaluator::new(db, ObstacleDensity::Dense);

    // --- functional pass -------------------------------------------------
    obs::trace::force_enabled(true);
    obs::trace::clear();
    workload(&ev, 7);
    obs::trace::flush_thread();
    let trace = obs::trace::take();
    assert!(!trace.is_empty(), "traced run recorded no events");
    assert_eq!(trace.dropped, 0, "smoke-sized run must not wrap the ring");

    let paired = trace.pair();
    assert_eq!(paired.unmatched_begins, 0, "every begin must have its end");
    assert_eq!(paired.unmatched_ends, 0, "every end must have its begin");
    assert!(!paired.spans.is_empty(), "pairing produced no spans");

    let by_id: BTreeMap<u64, &obs::trace::CompleteSpan> =
        paired.spans.iter().map(|s| (s.id, s)).collect();
    let mut cross_thread = 0usize;
    for span in &paired.spans {
        // Walk to a root; a cycle or a dangling parent id is a recorder bug.
        let mut cur = span;
        let mut hops = 0;
        while cur.parent != 0 {
            cur = by_id
                .get(&cur.parent)
                .unwrap_or_else(|| panic!("span {} has dangling parent {}", cur.id, cur.parent));
            hops += 1;
            assert!(hops <= paired.spans.len(), "parent chain of span {} cycles", span.id);
        }
        if span.parent != 0 && by_id[&span.parent].tid != span.tid {
            cross_thread += 1;
        }
    }
    assert!(
        cross_thread > 0,
        "2-worker run produced no cross-thread parent links (flow adoption broken)"
    );

    let json = trace.to_chrome_json();
    let parsed = obs::trace::parse_chrome_trace(&json).expect("exported trace parses");
    assert_eq!(parsed.spans.len(), paired.spans.len(), "export/parse span count mismatch");
    assert_eq!(parsed.dropped_events, 0);

    // --- overhead pass ---------------------------------------------------
    const REPS: usize = 3;
    obs::trace::force_enabled(false);
    timed(&ev, 100, 1); // warm the layer memo and allocator once
    let off = timed(&ev, 200, REPS);
    obs::trace::force_enabled(true);
    let on = timed(&ev, 200, REPS);
    obs::trace::clear();
    obs::trace::force_enabled(false);

    // Generous bound: catch pathological regressions (a lock or an
    // allocation on the hot path), not scheduler noise.
    let limit = off * 3.0 + 0.010;
    assert!(
        on <= limit,
        "tracing overhead too high: traced {on:.4}s vs untraced {off:.4}s (limit {limit:.4}s)"
    );

    println!(
        "trace smoke OK: {} spans, {} cross-thread links, traced {:.1}ms vs untraced {:.1}ms",
        paired.spans.len(),
        cross_thread,
        on * 1e3,
        off * 1e3
    );
}

//! Reproduction binary for Table III (DSSoC component spec).

fn main() {
    autopilot_bench::emit("table3.txt", &autopilot_bench::experiments::table3::run());
    autopilot_bench::write_telemetry("table3");
}

//! Task-generalization experiment: the Phase-1 capacity/success
//! relationship re-emerges for the paper's second motivating application
//! (source seeking, Duisterhof et al. ICRA 2021) without touching the
//! methodology.

use air_sim::source_seeking::SourceSeeker;
use air_sim::ObstacleDensity;
use autopilot_bench::TextTable;
use policy_nn::{PolicyHyperparams, PolicyModel};

fn main() {
    let mut table = TextTable::new(vec!["model", "params(M)", "low", "medium", "dense"]);
    for (l, f) in [(2, 32), (3, 32), (5, 32), (4, 48), (7, 48), (10, 64)] {
        let hyper = PolicyHyperparams::new(l, f).expect("in space");
        let model = PolicyModel::build(hyper);
        let mut cells = vec![hyper.id(), format!("{:.1}", model.parameter_count() as f64 / 1e6)];
        for density in ObstacleDensity::ALL {
            let out = SourceSeeker::for_model(7, &model).evaluate(density, 300);
            cells.push(format!("{:.0}%", out.success_rate * 100.0));
        }
        table.row(cells);
    }
    autopilot_bench::emit(
        "source_seeking.txt",
        &format!(
            "Task generalization: source seeking success vs model capacity\n\n{}",
            table.render()
        ),
    );
    autopilot_bench::write_telemetry("source_seeking");
}

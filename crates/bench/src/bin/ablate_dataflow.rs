//! Reproduction binary for the dataflow ablation.

fn main() {
    autopilot_bench::emit(
        "ablate_dataflow.txt",
        &autopilot_bench::experiments::ablations::run_dataflows(),
    );
    autopilot_bench::write_telemetry("ablate_dataflow");
}

//! Timing probe for the Phase-2 evaluation engine (not part of the
//! experiment set; used to budget the reproduction binaries and to track
//! the cache/parallelism speedups), rebuilt on the `autopilot-obs`
//! telemetry substrate.
//!
//! Emits `BENCH_phase2.json` (under `results/` and, as the tracked copy,
//! at the repository root) with wall-clock numbers for the
//! paper-configuration dense-scenario DSE:
//!
//! - `phase2_sequential_obs_off_s` / `phase2_sequential_obs_on_s` — the
//!   same single-worker run with metrics gated off (the default, every
//!   probe a single untaken branch) and forced on, each the minimum over
//!   alternating repetitions to suppress scheduler noise; their
//!   difference is the full cost of the instrumentation, reported as
//!   `obs_overhead_pct`,
//! - `phase2_parallel_s` — default worker count, metrics on,
//! - `reeval_history_s` — one uncached `evaluate_design` pass over the
//!   history (the redundant work the memoized candidate path removed),
//! - `gp_every_iteration_s` / `gp_milestones_s` — the surrogate-refit
//!   schedules of the pre-incremental engine and the current engine,
//!   replayed over the same history,
//! - `uncached_baseline_s` — a faithful reconstruction of the
//!   pre-optimization sequential implementation,
//!
//! plus counters read back from the obs registry: candidate-cache
//! hits/misses, GP full refits vs rank-1 Cholesky extensions, and
//! systolic-simulator layer counts. A full telemetry snapshot lands in
//! `results/telemetry_timing_probe.json`.

use air_sim::{AirLearningDatabase, ObstacleDensity};
use autopilot::{AutoPilot, AutopilotConfig, DssocEvaluator, Phase1, Phase2, TaskSpec};
use autopilot_obs as obs;
use autopilot_obs::json::Value;
use std::time::Instant;
use uav_dynamics::UavSpec;

fn num(v: f64) -> Value {
    Value::Num(v)
}

fn main() {
    let config = AutopilotConfig::paper(7);
    let density = ObstacleDensity::Dense;

    // Phase-1 database once; the probe isolates Phase-2 cost.
    let mut db = AirLearningDatabase::new();
    Phase1::new(config.success_model, config.seed).populate(density, &mut db);
    let evaluator = DssocEvaluator::new(db.clone(), density);

    let workers = dse_opt::par::worker_count();
    let phase2 = Phase2::new(config.optimizer, config.phase2_budget, config.seed);

    // Obs overhead: identical sequential runs with metrics gated off and
    // forced on, alternated (after a warmup pass) and reduced with min —
    // the noise-robust estimator for a ~2 s benchmark on a shared core.
    // Every recording site is behind the same gate, so the difference is
    // the whole cost of the instrumentation.
    const OVERHEAD_REPS: usize = 3;
    obs::force_metrics(false);
    let warm_out = phase2.clone().with_threads(1).run(&evaluator).expect("phase 2 runs");
    let mut phase2_obs_off_s = f64::INFINITY;
    let mut phase2_sequential_s = f64::INFINITY;
    let mut last_on = None;
    for rep in 0..OVERHEAD_REPS {
        obs::force_metrics(false);
        let t = Instant::now();
        let off_out = phase2.clone().with_threads(1).run(&evaluator).expect("phase 2 runs");
        phase2_obs_off_s = phase2_obs_off_s.min(t.elapsed().as_secs_f64());
        assert_eq!(warm_out.result, off_out.result, "sequential runs must be deterministic");

        obs::force_metrics(true);
        if rep == OVERHEAD_REPS - 1 {
            // The counters read back below should reflect exactly one
            // sequential run plus the parallel run that follows.
            obs::reset();
        }
        let t = Instant::now();
        let on_out = phase2.clone().with_threads(1).run(&evaluator).expect("phase 2 runs");
        phase2_sequential_s = phase2_sequential_s.min(t.elapsed().as_secs_f64());
        assert_eq!(off_out.result, on_out.result, "metrics gating must not change results");
        last_on = Some(on_out);
    }
    let seq_out = last_on.expect("overhead loop ran");
    let obs_overhead_pct = (phase2_sequential_s - phase2_obs_off_s) / phase2_obs_off_s * 100.0;

    let t = Instant::now();
    let par_out = phase2.run(&evaluator).expect("phase 2 runs");
    let phase2_parallel_s = t.elapsed().as_secs_f64();
    assert_eq!(
        par_out.result, seq_out.result,
        "optimizer output must be bit-identical across thread counts"
    );

    // Counters accumulated by the two instrumented runs (sequential +
    // parallel), read back from the registry.
    let snap = obs::snapshot();
    let cache_hits = snap.counter("phase2.candidate_cache.hits");
    let cache_misses = snap.counter("phase2.candidate_cache.misses");
    let gp_full_refits = snap.counter("dse.gp.full_refit");
    let gp_rank1_extends = snap.counter("dse.gp.rank1_extend");
    let systolic_layers = snap.counter("systolic.layers");
    let span_phase2_run_s = snap.span_total_s("phase2.run");
    let span_acquisition_s = snap.span_total_s("bo.acquisition");
    let span_surrogate_s = snap.span_total_s("bo.surrogate_update");

    // The pre-cache Phase 2 re-ran the simulator over the whole history a
    // second time while assembling candidates; measure that pass.
    let t = Instant::now();
    for e in &seq_out.result.evaluations {
        let _ = std::hint::black_box(evaluator.evaluate_design(&e.point));
    }
    let reeval_history_s = t.elapsed().as_secs_f64();

    // The pre-incremental engine refit every GP from scratch each
    // iteration (O(n^3) per objective); the current engine extends the
    // Cholesky factor and only refits at milestone growths. Replay both
    // schedules over the actual run history to cost the difference.
    let space = autopilot::JointSpace::design_space();
    let xs: Vec<Vec<f64>> =
        seq_out.result.evaluations.iter().map(|e| space.encode(&e.point)).collect();
    let ys: Vec<Vec<f64>> = (0..3)
        .map(|k| seq_out.result.evaluations.iter().map(|e| e.objectives[k]).collect())
        .collect();
    let fit_all_at = |n: usize| {
        for y in &ys {
            let _ = std::hint::black_box(dse_opt::GaussianProcess::fit(&xs[..n], &y[..n]));
        }
    };
    let init = 16.min(xs.len());
    let t = Instant::now();
    for n in init..=xs.len() {
        fit_all_at(n);
    }
    let gp_every_iteration_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let mut n = init;
    while n <= xs.len() {
        fit_all_at(n);
        n += (n / 4).max(4);
    }
    let gp_milestones_s = t.elapsed().as_secs_f64();
    let gp_savings_s = (gp_every_iteration_s - gp_milestones_s).max(0.0);

    let uncached_baseline_s = phase2_sequential_s + reeval_history_s + gp_savings_s;

    let stats = &seq_out.cache_stats;
    let total = (cache_hits + cache_misses).max(1);
    let report = Value::Obj(vec![
        ("budget".into(), num(config.phase2_budget as f64)),
        ("optimizer".into(), Value::Str(format!("{:?}", config.optimizer))),
        ("workers".into(), num(workers as f64)),
        ("phase2_parallel_s".into(), num(phase2_parallel_s)),
        ("phase2_sequential_s".into(), num(phase2_sequential_s)),
        ("phase2_sequential_obs_off_s".into(), num(phase2_obs_off_s)),
        ("phase2_sequential_obs_on_s".into(), num(phase2_sequential_s)),
        ("obs_overhead_pct".into(), num(obs_overhead_pct)),
        ("reeval_history_s".into(), num(reeval_history_s)),
        ("gp_every_iteration_s".into(), num(gp_every_iteration_s)),
        ("gp_milestones_s".into(), num(gp_milestones_s)),
        ("uncached_baseline_s".into(), num(uncached_baseline_s)),
        ("speedup_single_thread".into(), num(uncached_baseline_s / phase2_sequential_s)),
        ("speedup_parallel".into(), num(uncached_baseline_s / phase2_parallel_s)),
        ("cache_hits".into(), num(stats.hits as f64)),
        ("cache_misses".into(), num(stats.misses as f64)),
        ("cache_hit_rate".into(), num(stats.hit_rate())),
        ("obs_cache_hits".into(), num(cache_hits as f64)),
        ("obs_cache_misses".into(), num(cache_misses as f64)),
        ("obs_cache_hit_rate".into(), num(cache_hits as f64 / total as f64)),
        ("gp_full_refits".into(), num(gp_full_refits as f64)),
        ("gp_rank1_extends".into(), num(gp_rank1_extends as f64)),
        ("systolic_layers_simulated".into(), num(systolic_layers as f64)),
        ("span_phase2_run_s".into(), num(span_phase2_run_s)),
        ("span_bo_acquisition_s".into(), num(span_acquisition_s)),
        ("span_bo_surrogate_update_s".into(), num(span_surrogate_s)),
        ("bit_identical_across_threads".into(), Value::Bool(true)),
    ]);
    let json = report.to_json_pretty();
    autopilot_bench::emit("BENCH_phase2.json", &json);
    // Tracked copy at the repository root (results/ is gitignored).
    let root_copy = autopilot_bench::results_dir().join("../BENCH_phase2.json");
    if let Err(e) = std::fs::write(&root_copy, &json) {
        autopilot_obs::obs_warn!("warning: could not write {}: {e}", root_copy.display());
    }

    // End-to-end sanity run (full pipeline, nano UAV).
    let t0 = Instant::now();
    let pilot = AutoPilot::new(config);
    let result =
        pilot.run(&UavSpec::nano(), &TaskSpec::navigation(density)).expect("pipeline runs");
    let sel = result.selection.expect("selection");
    println!(
        "paper-config run: {:?} | {} evals | selected {} {}x{} @ {:.0} MHz -> {:.1} FPS, {:.2} W tdp, {:.1} g, {:.1} missions (knee {:?})",
        t0.elapsed(),
        result.phase2.candidates.len(),
        sel.candidate.policy.id(),
        sel.candidate.config.rows(),
        sel.candidate.config.cols(),
        sel.candidate.config.clock_mhz(),
        sel.candidate.fps,
        sel.candidate.tdp_w,
        sel.candidate.payload_g,
        sel.missions.missions,
        sel.knee_fps.map(|k| k.round()),
    );
    autopilot_bench::write_telemetry("timing_probe");
}

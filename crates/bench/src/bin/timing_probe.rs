//! Timing probe for one paper-configuration AutoPilot run (not part of
//! the experiment set; used to budget the reproduction binaries).

use air_sim::ObstacleDensity;
use autopilot::{AutoPilot, AutopilotConfig, TaskSpec};
use std::time::Instant;
use uav_dynamics::UavSpec;

fn main() {
    let t0 = Instant::now();
    let pilot = AutoPilot::new(AutopilotConfig::paper(7));
    let result = pilot.run(&UavSpec::nano(), &TaskSpec::navigation(ObstacleDensity::Dense));
    let sel = result.selection.expect("selection");
    println!(
        "paper-config run: {:?} | {} evals | selected {} {}x{} @ {:.0} MHz -> {:.1} FPS, {:.2} W tdp, {:.1} g, {:.1} missions (knee {:?})",
        t0.elapsed(),
        result.phase2.candidates.len(),
        sel.candidate.policy.id(),
        sel.candidate.config.rows(),
        sel.candidate.config.cols(),
        sel.candidate.config.clock_mhz(),
        sel.candidate.fps,
        sel.candidate.tdp_w,
        sel.candidate.payload_g,
        sel.missions.missions,
        sel.knee_fps.map(|k| k.round()),
    );
}

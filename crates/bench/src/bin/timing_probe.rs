//! Timing probe for the Phase-2 evaluation engine (not part of the
//! experiment set; used to budget the reproduction binaries and to track
//! the cache/parallelism speedups), rebuilt on the `autopilot-obs`
//! telemetry substrate.
//!
//! Every measurement is the minimum of three timed repetitions after a
//! discarded warmup pass, so single-run scheduler noise cannot leak into
//! the derived ratios (`obs_overhead_pct` is additionally floored at
//! zero: the instrumentation cannot have negative cost).
//!
//! Emits `BENCH_phase2.json` (under `results/`, the tracked canonical
//! location) with wall-clock numbers for the paper-configuration
//! dense-scenario DSE:
//!
//! - `phase2_sequential_obs_off_s` / `phase2_sequential_obs_on_s` — the
//!   same single-worker run with metrics gated off (the default, every
//!   probe a single untaken branch) and forced on, alternated; their
//!   difference is the full cost of the instrumentation, reported as
//!   `obs_overhead_pct`,
//! - `phase2_parallel_s` — default worker count, metrics on,
//! - `reeval_history_s` — one uncached, unmemoized `evaluate_design`
//!   pass over the history (the redundant work the memoized candidate
//!   path removed),
//! - `gp_every_iteration_s` / `gp_milestones_s` — the surrogate-refit
//!   schedules of the pre-incremental engine and the current engine,
//!   replayed over the same history,
//! - `acquisition_scalar_s` / `acquisition_batched_s` /
//!   `acquisition_batch_speedup` — per-point GP `predict` calls vs one
//!   shared kernel cross-matrix with blocked triangular solves, over the
//!   run history as the candidate pool,
//! - `uncached_baseline_s` — a faithful reconstruction of the
//!   pre-optimization sequential implementation,
//!
//! plus counters read back from the obs registry for exactly one
//! instrumented sequential run (the snapshot is taken before the
//! parallel runs, so per-run cache counters match `cache_stats` instead
//! of double-counting across runs), and the layer-memo hit rate from
//! the systolic simulation memo. A full telemetry snapshot lands in
//! `results/telemetry_timing_probe.json`.
//!
//! Set `AUTOPILOT_BENCH_FAST=1` to run at a reduced budget and skip the
//! end-to-end pipeline run — the mode the `scripts/verify.sh`
//! perf-regression guard uses.
//!
//! Set `AUTOPILOT_BENCH_BUDGET=<n>` to switch to the *scale probe*: one
//! instrumented sequential Phase-2 run at the given budget (large enough
//! to engage the sparse surrogate), emitting `BENCH_phase2_scale.json`
//! with the acquisition-to-run span ratio, the sparse-vs-exact inference
//! speedup (`gp_sparse_speedup`), and the incremental-surrogate
//! counters. The verify-script scale guard runs this at budget 2000.
//!
//! Cache-counter naming: the within-run `CandidateCache` hit counters are
//! suffixed `_within_run` because continuous candidate keys are raw f64
//! bit patterns — an optimizer that never revisits a design point cannot
//! hit within a single run, and a bare `cache_hits: 0` used to read as
//! "cache broken" instead of "cache keyed for cross-run reuse". The
//! `cache_hits_cross_run` fields measure the cache doing its actual job:
//! a repeated run against a shared cache must be pure hits.

use air_sim::{AirLearningDatabase, ObstacleDensity};
use autopilot::{
    AutoPilot, AutopilotConfig, CandidateCache, DssocEvaluator, JobConfig, Phase1, Phase2, TaskSpec,
};
use autopilot_obs as obs;
use autopilot_obs::json::Value;
use std::time::Instant;
use uav_dynamics::UavSpec;

fn num(v: f64) -> Value {
    Value::Num(v)
}

/// Minimum of `reps` timed repetitions of `f`, after one discarded
/// warmup invocation.
fn min_time(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    // Scale mode: a budget override switches to the single-run scale
    // probe (the full overhead/replay battery would multiply a
    // multi-thousand-point run seven-fold for no extra information).
    if let Some(budget) =
        std::env::var("AUTOPILOT_BENCH_BUDGET").ok().and_then(|v| v.parse::<usize>().ok())
    {
        scale_probe(budget);
        return;
    }
    let fast = matches!(std::env::var("AUTOPILOT_BENCH_FAST"), Ok(v) if v != "0");
    let config = AutopilotConfig::paper(7);
    let density = ObstacleDensity::Dense;
    let budget = if fast { 60 } else { config.phase2_budget };

    // Phase-1 database once; the probe isolates Phase-2 cost.
    let mut db = AirLearningDatabase::new();
    Phase1::new(config.success_model, config.seed).populate(density, &mut db);

    // The probe runs through the same explicit JobConfig path the
    // server uses: startup-captured environment defaults, with the
    // sequential legs pinning threads=1 per job rather than via env.
    let job = JobConfig::from_env();
    let evaluator = DssocEvaluator::new(db.clone(), density).with_layer_memo(job.layer_memo);

    let workers = job.effective_threads();
    let phase2 = job.apply_to_phase2(Phase2::new(config.optimizer, budget, config.seed));
    let phase2_seq =
        job.with_threads(1).apply_to_phase2(Phase2::new(config.optimizer, budget, config.seed));

    // Obs overhead: identical sequential runs with metrics gated off and
    // forced on, alternated (after a warmup pass) and reduced with min —
    // the noise-robust estimator for a multi-second benchmark on a
    // shared core. Every recording site is behind the same gate, so the
    // difference is the whole cost of the instrumentation.
    const OVERHEAD_REPS: usize = 3;
    obs::force_metrics(false);
    let warm_out = phase2_seq.clone().run(&evaluator).expect("phase 2 runs");
    let mut phase2_obs_off_s = f64::INFINITY;
    let mut phase2_sequential_s = f64::INFINITY;
    let mut last_on = None;
    let mut memo_window = evaluator.layer_memo_stats();
    for rep in 0..OVERHEAD_REPS {
        obs::force_metrics(false);
        let t = Instant::now();
        let off_out = phase2_seq.clone().run(&evaluator).expect("phase 2 runs");
        phase2_obs_off_s = phase2_obs_off_s.min(t.elapsed().as_secs_f64());
        assert_eq!(warm_out.result, off_out.result, "sequential runs must be deterministic");

        obs::force_metrics(true);
        let counted = rep == OVERHEAD_REPS - 1;
        let memo_before = if counted {
            // The counters read back below should reflect exactly one
            // instrumented sequential run. The layer-memo counters are
            // cumulative per evaluator, so the same window is carved out
            // of them by differencing around this run.
            obs::reset();
            evaluator.layer_memo_stats()
        } else {
            memo_window
        };
        let t = Instant::now();
        let on_out = phase2_seq.clone().run(&evaluator).expect("phase 2 runs");
        phase2_sequential_s = phase2_sequential_s.min(t.elapsed().as_secs_f64());
        assert_eq!(off_out.result, on_out.result, "metrics gating must not change results");
        if counted {
            let after = evaluator.layer_memo_stats();
            memo_window = systolic_sim::MemoStats {
                hits: after.hits - memo_before.hits,
                misses: after.misses - memo_before.misses,
                entries: after.entries,
                cross_run_hits: after.cross_run_hits - memo_before.cross_run_hits,
                evictions: after.evictions - memo_before.evictions,
            };
        }
        last_on = Some(on_out);
    }
    let seq_out = last_on.expect("overhead loop ran");
    // Min-of-reps makes a negative difference noise by construction; the
    // raw signed value is reported alongside so negative-noise runs are
    // visible instead of silently clamped to zero.
    let obs_overhead_pct_raw = (phase2_sequential_s - phase2_obs_off_s) / phase2_obs_off_s * 100.0;
    let obs_overhead_pct = obs_overhead_pct_raw.max(0.0);

    // Snapshot *before* the parallel runs: these counters and spans
    // cover exactly one sequential run, so the obs cache counters must
    // equal the per-run `cache_stats` (each lookup counted once).
    let seq_snap = obs::snapshot();
    let cache_hits = seq_snap.counter("phase2.candidate_cache.hits");
    let cache_misses = seq_snap.counter("phase2.candidate_cache.misses");
    let stats = &seq_out.cache_stats;
    assert_eq!(
        (cache_hits as usize, cache_misses as usize),
        (stats.hits, stats.misses),
        "obs cache counters must match the per-run cache stats exactly"
    );
    let gp_full_refits = seq_snap.counter("dse.gp.full_refit");
    let gp_rank1_extends = seq_snap.counter("dse.gp.rank1_extend");
    let gp_retargets = seq_snap.counter("bo.gp.retarget");
    let gp_downdates = seq_snap.counter("bo.gp.downdate");
    let hv_incremental_scores = seq_snap.counter("bo.hv.incremental");
    let systolic_layers = seq_snap.counter("systolic.layers");
    let span_phase2_run_s = seq_snap.span_total_s("phase2.run");
    let span_acquisition_s = seq_snap.span_total_s("bo.acquisition");
    let span_acquisition_score_s = seq_snap.span_total_s("bo.acquisition.score");
    let span_front_sync_s = seq_snap.span_total_s("bo.acquisition.front_sync");
    let span_surrogate_s = seq_snap.span_total_s("bo.surrogate_update");
    // Cumulative memo counters cover every run this evaluator served
    // (warmup + overhead reps); `memo_window` carved out the counted run,
    // the same window the obs counters were reset around. A layer only
    // reaches the cycle model on a memo miss, so within the shared window
    // the two must agree exactly.
    let memo_total = evaluator.layer_memo_stats();
    if evaluator.layer_memo_enabled() {
        assert_eq!(
            systolic_layers, memo_window.misses,
            "layers actually simulated must equal memo misses over the same run window"
        );
    }

    let phase2_parallel_s = min_time(OVERHEAD_REPS, || {
        let par_out = phase2.run(&evaluator).expect("phase 2 runs");
        assert_eq!(
            par_out.result, seq_out.result,
            "optimizer output must be bit-identical across thread counts"
        );
    });

    // Cross-run cache traffic: within one run every continuous candidate
    // key is unique, so the within-run hit counters are structurally zero
    // at paper budgets; the cache earns its keep across repeated runs
    // (Fig5-style scenario repetition), where the second pass must be
    // pure hits.
    let (cross_run_hits, cross_run_misses) = {
        let shared = CandidateCache::new();
        let first = phase2.run_with_cache(&evaluator, &shared).expect("phase 2 runs");
        let second = phase2.run_with_cache(&evaluator, &shared).expect("phase 2 runs");
        assert_eq!(first.result, second.result, "shared-cache rerun must be deterministic");
        assert_eq!(second.cache_stats.misses, 0, "repeat run must be pure cache hits");
        (second.cache_stats.hits, first.cache_stats.misses)
    };

    // The pre-cache Phase 2 re-ran the simulator over the whole history
    // a second time while assembling candidates; measure that pass with
    // the layer memo disabled, the way the pre-optimization code paid it.
    let unmemoized = evaluator.clone().with_layer_memo(false);
    let reeval_history_s = min_time(OVERHEAD_REPS, || {
        for e in &seq_out.result.evaluations {
            let _ = std::hint::black_box(unmemoized.evaluate_design(&e.point));
        }
    });

    // The pre-incremental engine refit every GP from scratch each
    // iteration (O(n^3) per objective); the current engine extends the
    // Cholesky factor and only refits at milestone growths. Replay both
    // schedules over the actual run history to cost the difference.
    let space = autopilot::JointSpace::design_space();
    let xs: Vec<Vec<f64>> =
        seq_out.result.evaluations.iter().map(|e| space.encode(&e.point)).collect();
    let ys: Vec<Vec<f64>> = (0..3)
        .map(|k| seq_out.result.evaluations.iter().map(|e| e.objectives[k]).collect())
        .collect();
    let fit_all_at = |n: usize| {
        for y in &ys {
            let _ = std::hint::black_box(dse_opt::GaussianProcess::fit(&xs[..n], &y[..n]));
        }
    };
    let init = 16.min(xs.len());
    let gp_every_iteration_s = min_time(OVERHEAD_REPS, || {
        for n in init..=xs.len() {
            fit_all_at(n);
        }
    });
    let gp_milestones_s = min_time(OVERHEAD_REPS, || {
        let mut n = init;
        while n <= xs.len() {
            fit_all_at(n);
            n += (n / 4).max(4);
        }
    });
    let gp_savings_s = (gp_every_iteration_s - gp_milestones_s).max(0.0);

    // Batched vs scalar acquisition prediction: the surrogate pack the
    // optimizer actually uses — one GP per objective sharing inputs and
    // lengthscale — queried over the run history as the candidate pool.
    let gp0 = dse_opt::GaussianProcess::fit(&xs, &ys[0]).expect("objective 0 GP fits");
    let ls = gp0.lengthscale_sq();
    let gps: Vec<dse_opt::GaussianProcess> = ys
        .iter()
        .map(|y| dse_opt::GaussianProcess::fit_with_lengthscale(&xs, y, ls).expect("GP fits"))
        .collect();
    let pool = &xs;
    for (gp, y) in gps.iter().zip(&ys) {
        // Bit-identity spot check before timing anything.
        let batch = gp.predict_batch(pool);
        for (p, b) in pool.iter().zip(&batch) {
            assert_eq!(gp.predict(p), *b, "batched prediction diverged from scalar");
        }
        assert_eq!(batch.len(), y.len());
    }
    let acquisition_scalar_s = min_time(OVERHEAD_REPS, || {
        for p in pool {
            for gp in &gps {
                let _ = std::hint::black_box(gp.predict(p));
            }
        }
    });
    let acquisition_batched_s = min_time(OVERHEAD_REPS, || {
        let corr = gps[0].cross_correlations(pool);
        for gp in &gps {
            let _ = std::hint::black_box(gp.predict_batch_from_correlations(&corr));
        }
    });
    let acquisition_batch_speedup = acquisition_scalar_s / acquisition_batched_s.max(1e-12);

    let uncached_baseline_s = phase2_sequential_s + reeval_history_s + gp_savings_s;

    let total = (cache_hits + cache_misses).max(1);
    let report = Value::Obj(vec![
        ("budget".into(), num(budget as f64)),
        ("optimizer".into(), Value::Str(format!("{:?}", config.optimizer))),
        ("workers".into(), num(workers as f64)),
        ("phase2_parallel_s".into(), num(phase2_parallel_s)),
        ("phase2_sequential_s".into(), num(phase2_sequential_s)),
        ("phase2_sequential_obs_off_s".into(), num(phase2_obs_off_s)),
        ("phase2_sequential_obs_on_s".into(), num(phase2_sequential_s)),
        ("obs_overhead_pct".into(), num(obs_overhead_pct)),
        ("obs_overhead_pct_raw".into(), num(obs_overhead_pct_raw)),
        ("reeval_history_s".into(), num(reeval_history_s)),
        ("gp_every_iteration_s".into(), num(gp_every_iteration_s)),
        ("gp_milestones_s".into(), num(gp_milestones_s)),
        ("acquisition_scalar_s".into(), num(acquisition_scalar_s)),
        ("acquisition_batched_s".into(), num(acquisition_batched_s)),
        ("acquisition_batch_speedup".into(), num(acquisition_batch_speedup)),
        ("uncached_baseline_s".into(), num(uncached_baseline_s)),
        ("speedup_single_thread".into(), num(uncached_baseline_s / phase2_sequential_s)),
        ("speedup_parallel".into(), num(uncached_baseline_s / phase2_parallel_s)),
        (
            "cache_note".into(),
            Value::Str(
                "within-run hit counters are structurally 0: candidate keys are exact design \
                 points and the optimizer never revisits one; cross-run fields show the cache \
                 serving repeated scenario runs"
                    .into(),
            ),
        ),
        ("cache_hits_within_run".into(), num(stats.hits as f64)),
        ("cache_misses_within_run".into(), num(stats.misses as f64)),
        ("cache_hit_rate_within_run".into(), num(stats.hit_rate())),
        ("cache_hits_cross_run".into(), num(cross_run_hits as f64)),
        ("cache_misses_cross_run".into(), num(cross_run_misses as f64)),
        ("obs_cache_hits_within_run".into(), num(cache_hits as f64)),
        ("obs_cache_misses_within_run".into(), num(cache_misses as f64)),
        ("obs_cache_hit_rate_within_run".into(), num(cache_hits as f64 / total as f64)),
        ("gp_full_refits".into(), num(gp_full_refits as f64)),
        ("gp_rank1_extends".into(), num(gp_rank1_extends as f64)),
        ("gp_retargets".into(), num(gp_retargets as f64)),
        ("gp_downdates".into(), num(gp_downdates as f64)),
        ("hv_incremental_scores".into(), num(hv_incremental_scores as f64)),
        (
            "systolic_memo_note".into(),
            Value::Str(
                "run-window fields cover the one counted instrumented run (warm memo: repeats of \
                 the same deterministic run are pure hits, so layers_simulated == memo_misses == \
                 0 is the memo working); _total fields are cumulative across every probe run on \
                 this evaluator"
                    .into(),
            ),
        ),
        ("systolic_layers_simulated".into(), num(systolic_layers as f64)),
        ("systolic_memo_hits".into(), num(memo_window.hits as f64)),
        ("systolic_memo_misses".into(), num(memo_window.misses as f64)),
        ("systolic_memo_hit_rate".into(), num(memo_window.hit_rate())),
        ("systolic_memo_hits_total".into(), num(memo_total.hits as f64)),
        ("systolic_memo_misses_total".into(), num(memo_total.misses as f64)),
        ("systolic_memo_hit_rate_total".into(), num(memo_total.hit_rate())),
        ("systolic_memo_entries".into(), num(memo_total.entries as f64)),
        ("span_phase2_run_s".into(), num(span_phase2_run_s)),
        ("span_bo_acquisition_s".into(), num(span_acquisition_s)),
        ("span_bo_acquisition_score_s".into(), num(span_acquisition_score_s)),
        ("span_bo_front_sync_s".into(), num(span_front_sync_s)),
        ("span_bo_surrogate_update_s".into(), num(span_surrogate_s)),
        ("kernel_exp_mode".into(), Value::Str(dse_opt::KernelExpMode::from_env().id().into())),
        ("bit_identical_across_threads".into(), Value::Bool(true)),
    ]);
    let json = report.to_json_pretty();
    autopilot_bench::emit("BENCH_phase2.json", &json);

    // End-to-end sanity run (full pipeline, nano UAV) — skipped in fast
    // mode, where the probe exists only to gate perf regressions.
    if !fast {
        let t0 = Instant::now();
        let pilot = AutoPilot::new(config);
        let result =
            pilot.run(&UavSpec::nano(), &TaskSpec::navigation(density)).expect("pipeline runs");
        let sel = result.selection.expect("selection");
        println!(
            "paper-config run: {:?} | {} evals | selected {} {}x{} @ {:.0} MHz -> {:.1} FPS, {:.2} W tdp, {:.1} g, {:.1} missions (knee {:?})",
            t0.elapsed(),
            result.phase2.candidates.len(),
            sel.candidate.policy.id(),
            sel.candidate.config.rows(),
            sel.candidate.config.cols(),
            sel.candidate.config.clock_mhz(),
            sel.candidate.fps,
            sel.candidate.tdp_w,
            sel.candidate.payload_g,
            sel.missions.missions,
            sel.knee_fps.map(|k| k.round()),
        );
    }
    autopilot_bench::write_telemetry("timing_probe");
    autopilot_bench::write_trace("timing_probe");
}

/// Scale probe (`AUTOPILOT_BENCH_BUDGET=<n>`): one instrumented
/// sequential Phase-2 run at an arbitrary budget, plus a sparse-vs-exact
/// inference benchmark over the resulting archive. Emits
/// `BENCH_phase2_scale.json` under `results/`; never touches the tracked
/// full-probe numbers.
///
/// Past the default [`dse_opt::SurrogateMode`] threshold (256 points)
/// the optimizer engages the low-rank sparse surrogates automatically,
/// so a budget-2000 run here exercises the scalable-inference path
/// end-to-end; the verify-script guard asserts the acquisition-scoring
/// span stays under half the total run span.
fn scale_probe(budget: usize) {
    // Exact-GP window band (ROADMAP, PR 6 handoff): with the default
    // window cap (256) equal to the sparse threshold (256) the exact
    // window never slides — the sparse pack takes over at exactly the
    // point the window would first move — so the rank-1 downdate path
    // sat dormant and `gp_downdates` was structurally zero. Opening a
    // band between the window cap and the sparse threshold makes the
    // exact window slide (one downdate per objective-pack slide) for
    // every archive size in (window, threshold].
    const GP_WINDOW: usize = 192;
    const GP_SPARSE_THRESHOLD: usize = 320;
    const GP_SPARSE_INDUCING: usize = 64;
    let config = AutopilotConfig::paper(7);
    let density = ObstacleDensity::Dense;
    let mut db = AirLearningDatabase::new();
    Phase1::new(config.success_model, config.seed).populate(density, &mut db);
    let evaluator = DssocEvaluator::new(db, density);
    let phase2 = Phase2::new(config.optimizer, budget, config.seed)
        .with_gp_window(GP_WINDOW)
        .with_surrogate_mode(dse_opt::SurrogateMode::Sparse {
            threshold: GP_SPARSE_THRESHOLD,
            inducing: GP_SPARSE_INDUCING,
        });

    obs::force_metrics(true);
    obs::reset();
    let t0 = Instant::now();
    let out = phase2.with_threads(1).run(&evaluator).expect("phase 2 runs");
    let wall_s = t0.elapsed().as_secs_f64();
    let snap = obs::snapshot();
    let span_phase2_run_s = snap.span_total_s("phase2.run");
    let span_score_s = snap.span_total_s("bo.acquisition.score");
    let span_gp_predict_s = snap.span_total_s("bo.acquisition.gp_predict");
    let span_hv_score_s = snap.span_total_s("bo.acquisition.hv_score");
    let score_ratio = span_score_s / span_phase2_run_s.max(1e-12);

    // Sparse-vs-exact batched inference over this run's archive, same
    // query pool for both packs. The exact pack's training size is
    // capped: its O(n³) fit and O(n·pool) prediction are precisely what
    // stops scaling, and the cap keeps the baseline measurable instead
    // of dominating the probe.
    let space = autopilot::JointSpace::design_space();
    let xs: Vec<Vec<f64>> = out.result.evaluations.iter().map(|e| space.encode(&e.point)).collect();
    let ys: Vec<Vec<f64>> =
        (0..3).map(|k| out.result.evaluations.iter().map(|e| e.objectives[k]).collect()).collect();
    let n_exact = xs.len().min(768);
    let exact0 =
        dse_opt::GaussianProcess::fit(&xs[..n_exact], &ys[0][..n_exact]).expect("exact GP fits");
    let ls = exact0.lengthscale_sq();
    let exact: Vec<dse_opt::GaussianProcess> = ys
        .iter()
        .map(|y| {
            dse_opt::GaussianProcess::fit_with_lengthscale(&xs[..n_exact], &y[..n_exact], ls)
                .expect("exact GP fits")
        })
        .collect();
    let sparse: Vec<dse_opt::SparseGaussianProcess> = ys
        .iter()
        .map(|y| {
            dse_opt::SparseGaussianProcess::fit_with_lengthscale(&xs, y, ls, 64)
                .expect("sparse GP fits")
        })
        .collect();
    let pool: Vec<Vec<f64>> = xs.iter().take(512).cloned().collect();
    let exact_batch_s = min_time(3, || {
        let corr = exact[0].cross_correlations(&pool);
        for gp in &exact {
            let _ = std::hint::black_box(gp.predict_batch_from_correlations(&corr));
        }
    });
    let sparse_batch_s = min_time(3, || {
        let corr = sparse[0].cross_correlations(&pool);
        for gp in &sparse {
            let _ = std::hint::black_box(gp.predict_batch_from_correlations(&corr));
        }
    });
    let gp_sparse_speedup = exact_batch_s / sparse_batch_s.max(1e-12);

    // Panel-parallel probe: the same archive-sized kernel panel
    // assembled single-stripe and column-striped across forced workers.
    // The outputs must be bitwise identical (each entry's arithmetic
    // never sees the stripe boundaries); the speedup is a structural
    // floor, honest about the host — on a single-core box two forced
    // workers time-slice one CPU, so ~1.0 is the expected reading there,
    // and the budget-gate floor below 1.0 only catches the engine
    // pessimizing parallel assembly outright.
    let exp_mode = dse_opt::KernelExpMode::from_env();
    let panel_rows: Vec<Vec<f64>> = xs.iter().take(512).cloned().collect();
    let panel_scale = -0.5 / ls;
    let panel_workers = dse_opt::par::worker_count().max(2);
    let panel_1_s = min_time(3, || {
        let _ = std::hint::black_box(dse_opt::correlation_panel_with(
            1,
            &panel_rows,
            &pool,
            panel_scale,
            exp_mode,
        ));
    });
    let panel_n_s = min_time(3, || {
        let _ = std::hint::black_box(dse_opt::correlation_panel_with(
            panel_workers,
            &panel_rows,
            &pool,
            panel_scale,
            exp_mode,
        ));
    });
    let gp_panel_parallel_speedup = panel_1_s / panel_n_s.max(1e-12);
    let single = dse_opt::correlation_panel_with(1, &panel_rows, &pool, panel_scale, exp_mode);
    let striped =
        dse_opt::correlation_panel_with(panel_workers, &panel_rows, &pool, panel_scale, exp_mode);
    assert!(
        (0..single.rows()).all(|i| single
            .row(i)
            .iter()
            .zip(striped.row(i))
            .all(|(a, b)| a.to_bits() == b.to_bits())),
        "striped panel assembly must be bit-identical to single-stripe assembly"
    );

    // The band is only exercised once the archive outgrows the window;
    // any budget comfortably past it must have slid the exact window and
    // fired downdates (the counter this probe exists to keep alive).
    let gp_downdates = snap.counter("bo.gp.downdate");
    if budget > GP_WINDOW + 16 {
        assert!(
            gp_downdates > 0,
            "budget {budget} exceeds the exact-GP window ({GP_WINDOW}); the window must have \
             slid and recorded downdates"
        );
    }

    let report = Value::Obj(vec![
        ("budget".into(), num(budget as f64)),
        ("optimizer".into(), Value::Str(format!("{:?}", config.optimizer))),
        ("gp_window".into(), num(GP_WINDOW as f64)),
        ("gp_sparse_threshold".into(), num(GP_SPARSE_THRESHOLD as f64)),
        ("gp_sparse_inducing".into(), num(GP_SPARSE_INDUCING as f64)),
        ("wall_s".into(), num(wall_s)),
        ("span_phase2_run_s".into(), num(span_phase2_run_s)),
        ("span_bo_acquisition_score_s".into(), num(span_score_s)),
        ("span_bo_acquisition_gp_predict_s".into(), num(span_gp_predict_s)),
        ("span_bo_acquisition_hv_score_s".into(), num(span_hv_score_s)),
        ("acquisition_score_ratio".into(), num(score_ratio)),
        ("gp_sparse_speedup".into(), num(gp_sparse_speedup)),
        ("gp_sparse_speedup_exact_n".into(), num(n_exact as f64)),
        ("gp_sparse_speedup_pool".into(), num(pool.len() as f64)),
        ("gp_sparse_fits".into(), num(snap.counter("bo.gp.sparse.fit") as f64)),
        ("gp_sparse_extends".into(), num(snap.counter("bo.gp.sparse.extend") as f64)),
        ("gp_sparse_predicts".into(), num(snap.counter("bo.gp.sparse.predict") as f64)),
        ("gp_full_refits".into(), num(snap.counter("dse.gp.full_refit") as f64)),
        ("gp_rank1_extends".into(), num(snap.counter("dse.gp.rank1_extend") as f64)),
        ("gp_retargets".into(), num(snap.counter("bo.gp.retarget") as f64)),
        ("gp_downdates".into(), num(gp_downdates as f64)),
        ("hv_incremental_scores".into(), num(snap.counter("bo.hv.incremental") as f64)),
        ("kernel_exp_mode".into(), Value::Str(exp_mode.id().into())),
        ("gp_panel_parallel_speedup".into(), num(gp_panel_parallel_speedup)),
        ("gp_panel_parallel_workers".into(), num(panel_workers as f64)),
        ("gp_panel_calls".into(), num(snap.counter("bo.gp.panel.calls") as f64)),
        ("gp_panel_entries".into(), num(snap.counter("bo.gp.panel.entries") as f64)),
        ("gp_panel_inline".into(), num(snap.counter("bo.gp.panel.inline") as f64)),
        ("gp_panel_parallel".into(), num(snap.counter("bo.gp.panel.parallel") as f64)),
        ("gp_panel_cache_hits".into(), num(snap.counter("bo.gp.panel.cache_hit") as f64)),
        ("gp_panel_cache_misses".into(), num(snap.counter("bo.gp.panel.cache_miss") as f64)),
    ]);
    autopilot_bench::emit("BENCH_phase2_scale.json", &report.to_json_pretty());
    autopilot_bench::write_trace("timing_probe_scale");
    println!(
        "scale probe: budget {budget} in {wall_s:.2}s | score span {span_score_s:.3}s / run span \
         {span_phase2_run_s:.3}s (ratio {score_ratio:.3}) | gp {span_gp_predict_s:.3}s / hv \
         {span_hv_score_s:.3}s | sparse speedup {gp_sparse_speedup:.1}x (exact n={n_exact})"
    );
}

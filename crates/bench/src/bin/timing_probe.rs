//! Timing probe for the Phase-2 evaluation engine (not part of the
//! experiment set; used to budget the reproduction binaries and to track
//! the cache/parallelism speedups).
//!
//! Emits `results/BENCH_phase2.json` with wall-clock numbers for the
//! paper-configuration dense-scenario DSE:
//!
//! - `phase2_parallel_s` — default worker count,
//! - `phase2_sequential_s` — pinned to one worker,
//! - `reeval_history_s` — one uncached `evaluate_design` pass over the
//!   history (the redundant work the memoized candidate path removed;
//!   the pre-cache implementation paid it on top of the DSE itself),
//! - `gp_every_iteration_s` / `gp_milestones_s` — the surrogate-refit
//!   schedules of the pre-incremental engine (full O(n³) fit per
//!   objective per iteration) and the current engine (milestone refits +
//!   O(n²) Cholesky extensions), replayed over the same history,
//! - `uncached_baseline_s` — sequential time plus the re-evaluation pass
//!   plus the GP-schedule difference: a faithful reconstruction of the
//!   pre-optimization sequential implementation,
//!
//! plus the candidate-cache hit-rate and a full end-to-end pipeline run.

use air_sim::{AirLearningDatabase, ObstacleDensity};
use autopilot::{AutoPilot, AutopilotConfig, DssocEvaluator, Phase1, Phase2, TaskSpec};
use std::time::Instant;
use uav_dynamics::UavSpec;

fn main() {
    let config = AutopilotConfig::paper(7);
    let density = ObstacleDensity::Dense;

    // Phase-1 database once; the probe isolates Phase-2 cost.
    let mut db = AirLearningDatabase::new();
    Phase1::new(config.success_model, config.seed).populate(density, &mut db);
    let evaluator = DssocEvaluator::new(db.clone(), density);

    let workers = dse_opt::par::worker_count();
    let phase2 = Phase2::new(config.optimizer, config.phase2_budget, config.seed);

    let t = Instant::now();
    let par_out = phase2.run(&evaluator);
    let phase2_parallel_s = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let seq_out = phase2.clone().with_threads(1).run(&evaluator);
    let phase2_sequential_s = t.elapsed().as_secs_f64();
    assert_eq!(
        par_out.result, seq_out.result,
        "optimizer output must be bit-identical across thread counts"
    );

    // The pre-cache Phase 2 re-ran the simulator over the whole history a
    // second time while assembling candidates; measure that pass.
    let t = Instant::now();
    for e in &seq_out.result.evaluations {
        std::hint::black_box(evaluator.evaluate_design(&e.point));
    }
    let reeval_history_s = t.elapsed().as_secs_f64();

    // The pre-incremental engine refit every GP from scratch each
    // iteration (O(n^3) per objective); the current engine extends the
    // Cholesky factor and only refits at milestone growths. Replay both
    // schedules over the actual run history to cost the difference.
    let space = autopilot::JointSpace::design_space();
    let xs: Vec<Vec<f64>> =
        seq_out.result.evaluations.iter().map(|e| space.encode(&e.point)).collect();
    let ys: Vec<Vec<f64>> = (0..3)
        .map(|k| seq_out.result.evaluations.iter().map(|e| e.objectives[k]).collect())
        .collect();
    let fit_all_at = |n: usize| {
        for y in &ys {
            std::hint::black_box(dse_opt::GaussianProcess::fit(&xs[..n], &y[..n]));
        }
    };
    let init = 16.min(xs.len());
    let t = Instant::now();
    for n in init..=xs.len() {
        fit_all_at(n);
    }
    let gp_every_iteration_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let mut n = init;
    while n <= xs.len() {
        fit_all_at(n);
        n += (n / 4).max(4);
    }
    let gp_milestones_s = t.elapsed().as_secs_f64();
    let gp_savings_s = (gp_every_iteration_s - gp_milestones_s).max(0.0);

    let uncached_baseline_s = phase2_sequential_s + reeval_history_s + gp_savings_s;

    let stats = &seq_out.cache_stats;
    let json = format!(
        "{{\n  \"budget\": {},\n  \"optimizer\": \"{:?}\",\n  \"workers\": {},\n  \"phase2_parallel_s\": {:.6},\n  \"phase2_sequential_s\": {:.6},\n  \"reeval_history_s\": {:.6},\n  \"gp_every_iteration_s\": {:.6},\n  \"gp_milestones_s\": {:.6},\n  \"uncached_baseline_s\": {:.6},\n  \"speedup_single_thread\": {:.3},\n  \"speedup_parallel\": {:.3},\n  \"cache_hits\": {},\n  \"cache_misses\": {},\n  \"cache_hit_rate\": {:.4},\n  \"bit_identical_across_threads\": true\n}}\n",
        config.phase2_budget,
        config.optimizer,
        workers,
        phase2_parallel_s,
        phase2_sequential_s,
        reeval_history_s,
        gp_every_iteration_s,
        gp_milestones_s,
        uncached_baseline_s,
        uncached_baseline_s / phase2_sequential_s,
        uncached_baseline_s / phase2_parallel_s,
        stats.hits,
        stats.misses,
        stats.hit_rate(),
        );
    autopilot_bench::emit("BENCH_phase2.json", &json);

    // End-to-end sanity run (full pipeline, nano UAV).
    let t0 = Instant::now();
    let pilot = AutoPilot::new(config);
    let result = pilot.run(&UavSpec::nano(), &TaskSpec::navigation(density));
    let sel = result.selection.expect("selection");
    println!(
        "paper-config run: {:?} | {} evals | selected {} {}x{} @ {:.0} MHz -> {:.1} FPS, {:.2} W tdp, {:.1} g, {:.1} missions (knee {:?})",
        t0.elapsed(),
        result.phase2.candidates.len(),
        sel.candidate.policy.id(),
        sel.candidate.config.rows(),
        sel.candidate.config.cols(),
        sel.candidate.config.clock_mhz(),
        sel.candidate.fps,
        sel.candidate.tdp_w,
        sel.candidate.payload_g,
        sel.missions.missions,
        sel.knee_fps.map(|k| k.round()),
    );
}

//! Telemetry smoke check for `scripts/verify.sh`: runs a small
//! fig5-style scenario (two UAVs sharing one pipeline cache) with
//! metrics forced on, writes the telemetry snapshot, parses it back with
//! the zero-dep JSON reader, and asserts the schema carries non-zero
//! span and cache-counter data. Exits non-zero on any violation.

use air_sim::ObstacleDensity;
use autopilot::{AutoPilot, AutopilotConfig, OptimizerChoice, PipelineCache, TaskSpec};
use autopilot_obs as obs;
use std::sync::Arc;
use uav_dynamics::UavSpec;

fn main() {
    obs::force_metrics(true);
    obs::reset();

    let task = TaskSpec::navigation(ObstacleDensity::Dense);
    let cache = Arc::new(PipelineCache::new());
    let config = AutopilotConfig::fast(5).with_optimizer(OptimizerChoice::Random).with_budget(16);
    let pilot = AutoPilot::new(config).with_cache(Arc::clone(&cache));
    // Two UAVs, one scenario: the second run must hit the phase-2 cache.
    let nano = pilot.run(&UavSpec::nano(), &task).expect("nano pipeline runs");
    let micro = pilot.run(&UavSpec::micro(), &task).expect("micro pipeline runs");
    assert_eq!(nano.phase2.candidates, micro.phase2.candidates, "shared-cache runs must agree");

    let path = autopilot_bench::write_telemetry("obs_smoke").expect("telemetry written");
    let text = std::fs::read_to_string(&path).expect("telemetry readable");
    let snap = obs::Snapshot::from_json(&text).expect("telemetry parses");

    assert!(snap.span("pipeline.run").is_some(), "pipeline.run span missing");
    assert!(snap.span_total_s("pipeline.run") > 0.0, "pipeline.run span has no time");
    assert!(
        snap.span("pipeline.run/phase2.run").is_some(),
        "nested pipeline.run/phase2.run span missing"
    );
    assert!(snap.counter("pipeline.phase2_cache.hits") > 0, "phase2 pipeline cache never hit");
    assert!(snap.counter("phase2.candidate_cache.misses") > 0, "candidate cache never filled");
    assert!(snap.counter("systolic.layers") > 0, "systolic simulator not instrumented");
    let hist = snap.histogram("systolic.cycles_per_layer").expect("cycle histogram missing");

    // Derived quantiles: monotone, inside the observed extremes, and
    // present in the serialized telemetry.
    let (p50, p95, p99) = (hist.quantile(0.50), hist.quantile(0.95), hist.quantile(0.99));
    assert!(hist.min <= p50, "p50 {p50} below histogram min {}", hist.min);
    assert!(p50 <= p95 && p95 <= p99, "quantiles not monotone: {p50} {p95} {p99}");
    assert!(p99 <= hist.max, "p99 {p99} above histogram max {}", hist.max);
    for key in ["\"p50\":", "\"p95\":", "\"p99\":"] {
        assert!(text.contains(key), "telemetry JSON missing {key} field");
    }

    // The snapshot must survive a JSON round-trip bit-for-bit.
    assert_eq!(text, snap.to_json(), "telemetry JSON round-trip mismatch");

    println!(
        "obs smoke OK: {} ({} spans, {} counters)",
        path.display(),
        snap.spans.len(),
        snap.counters.len()
    );
}

//! Reproduction binary for Fig. 5 (missions vs baselines, 9 scenarios).

fn main() {
    autopilot_bench::emit("fig5.txt", &autopilot_bench::experiments::fig5::run());
    autopilot_bench::write_telemetry("fig5");
}

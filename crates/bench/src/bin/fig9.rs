//! Reproduction binary for Fig. 9 (LP vs AP).

fn main() {
    autopilot_bench::emit("fig9.txt", &autopilot_bench::experiments::pitfalls::run_fig9());
    autopilot_bench::write_telemetry("fig9");
}

//! Reproduction binary for the Phase-3 on/off ablation.

fn main() {
    autopilot_bench::emit(
        "ablate_phase3.txt",
        &autopilot_bench::experiments::ablations::run_phase3(),
    );
    autopilot_bench::write_telemetry("ablate_phase3");
}

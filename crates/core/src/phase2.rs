//! Phase 2: domain-agnostic multi-objective HW-SW co-design.

use air_sim::{AirLearningDatabase, ObstacleDensity, SuccessSurrogate};
use autopilot_obs as obs;
use autopilot_shard::ShardedMap;
use dse_opt::{CacheStats, EvalError, Evaluator, OptimizationResult, RunControl};
use policy_nn::{PolicyHyperparams, PolicyModel};
use soc_power::SocPowerModel;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use systolic_sim::{ArrayConfig, LayerMemo, MemoStats, Simulator};

use crate::error::AutopilotError;
use crate::registry::{self, OptimizerContext};
use crate::space::JointSpace;
use crate::swap::SwapMode;
use uav_dynamics::Airframe;

/// Which optimizer drives the DSE (the paper uses Bayesian optimization
/// and lists the others as drop-in replacements).
///
/// This enum names the built-in registry entries; [`Phase2::new`] also
/// accepts any string registered through
/// [`registry::register_optimizer`], so downstream crates are not
/// limited to these variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OptimizerChoice {
    /// Multi-objective Bayesian optimization with SMS-EGO (the paper's
    /// choice).
    #[default]
    SmsEgo,
    /// NSGA-II genetic algorithm.
    Nsga2,
    /// Simulated annealing.
    Annealing,
    /// Uniform random search.
    Random,
}

impl OptimizerChoice {
    /// All selectable optimizers.
    pub const ALL: [OptimizerChoice; 4] = [
        OptimizerChoice::SmsEgo,
        OptimizerChoice::Nsga2,
        OptimizerChoice::Annealing,
        OptimizerChoice::Random,
    ];

    /// The registry name of this optimizer.
    pub fn name(&self) -> &'static str {
        match self {
            OptimizerChoice::SmsEgo => "sms-ego-bo",
            OptimizerChoice::Nsga2 => "nsga-ii",
            OptimizerChoice::Annealing => "simulated-annealing",
            OptimizerChoice::Random => "random-search",
        }
    }
}

impl From<OptimizerChoice> for String {
    fn from(choice: OptimizerChoice) -> String {
        choice.name().to_owned()
    }
}

/// The Phase-2 black box: maps a joint design point to
/// `(1 - success rate, average SoC power W, inference latency s)`.
///
/// Success rates come from the Phase-1 database (falling back to the
/// calibrated surrogate for unpopulated entries); power and latency come
/// from the cycle-accurate simulator and the SoC power models.
#[derive(Debug, Clone)]
pub struct DssocEvaluator {
    db: AirLearningDatabase,
    density: ObstacleDensity,
    power_model: SocPowerModel,
    /// Per-(config, layer) simulation memo shared by clones of this
    /// evaluator (and so by all parallel optimizer workers): candidate
    /// NNs repeat conv/FC layer shapes, so most layer simulations after
    /// the first few design points are cache hits. Keyed by the full
    /// timing-relevant configuration, so it is scenario-independent and
    /// safe to share.
    layer_memo: Arc<LayerMemo>,
    /// Owner tag (job id) stamped on memo entries this evaluator
    /// inserts; hits on entries another owner inserted count as
    /// cross-run hits. Zero for the single-run CLI path.
    owner: u64,
    /// Whether compute weight is enforced as an airframe feasibility
    /// constraint ([`SwapMode::Constraint`]) or ignored (legacy mode).
    swap: SwapMode,
    /// The airframe the SWaP constraint checks against; `None` outside
    /// [`SwapMode::Constraint`].
    airframe: Option<Arc<Airframe>>,
}

impl DssocEvaluator {
    /// Creates an evaluator for one deployment scenario.
    pub fn new(db: AirLearningDatabase, density: ObstacleDensity) -> DssocEvaluator {
        DssocEvaluator {
            db,
            density,
            power_model: SocPowerModel::new(),
            layer_memo: Arc::new(LayerMemo::new()),
            owner: 0,
            swap: SwapMode::Off,
            airframe: None,
        }
    }

    /// Returns a copy of this evaluator with the SWaP constraint set. In
    /// [`SwapMode::Constraint`] every candidate whose compute payload is
    /// structurally infeasible on `airframe` (weight-class cap or static
    /// margin) is death-penalized: its objectives are replaced by the
    /// reference point, so it never enters the Pareto front. In
    /// [`SwapMode::Off`] the airframe is dropped and objectives are the
    /// legacy bit-identical values.
    pub fn with_swap(mut self, mode: SwapMode, airframe: Airframe) -> DssocEvaluator {
        self.swap = mode;
        self.airframe = mode.is_on().then(|| Arc::new(airframe));
        self
    }

    /// The configured SWaP mode.
    pub fn swap_mode(&self) -> SwapMode {
        self.swap
    }

    /// The airframe the SWaP constraint checks against, when one is set.
    pub fn airframe(&self) -> Option<&Airframe> {
        self.airframe.as_deref()
    }

    /// The objective vector of an evaluated candidate:
    /// `(1 - success rate, average SoC power W, inference latency s)`,
    /// death-penalized to the reference point when the SWaP constraint
    /// is on and the candidate's payload is structurally infeasible.
    pub fn objectives(&self, c: &DesignCandidate) -> Vec<f64> {
        if let Some(airframe) = self.airframe.as_deref() {
            let feasible =
                airframe.check_payload(c.payload_g).map(|f| f.feasible()).unwrap_or(false);
            if !feasible {
                obs::add("phase2.swap.penalized", 1);
                return self.reference_point();
            }
        }
        vec![1.0 - c.success_rate, c.soc_avg_w, c.latency_s]
    }

    /// The scenario this evaluator scores against.
    pub fn density(&self) -> ObstacleDensity {
        self.density
    }

    /// The owner tag stamped on cache entries this evaluator inserts.
    pub fn owner(&self) -> u64 {
        self.owner
    }

    /// Hit/miss/entry counters of the layer-simulation memo.
    pub fn layer_memo_stats(&self) -> MemoStats {
        self.layer_memo.stats()
    }

    /// True when layer simulations are served through the memo (the
    /// `AUTOPILOT_LAYER_MEMO` gate was not switched off).
    pub fn layer_memo_enabled(&self) -> bool {
        self.layer_memo.enabled()
    }

    /// Returns a copy of this evaluator with a fresh layer-simulation
    /// memo, switched on or off explicitly (overriding the
    /// `AUTOPILOT_LAYER_MEMO` environment gate).
    pub fn with_layer_memo(mut self, enabled: bool) -> DssocEvaluator {
        self.layer_memo = Arc::new(LayerMemo::with_enabled(enabled));
        self
    }

    /// Returns a copy of this evaluator backed by a **shared**
    /// process-lifetime layer memo, stamping entries it inserts with
    /// `owner` (a job id). This is how the multi-tenant server lets
    /// concurrent jobs over the same scenario reuse each other's layer
    /// simulations: the memo is keyed by the full timing-relevant
    /// configuration (scenario-independent), so sharing across tenants
    /// never changes results — only which job paid for the simulation.
    pub fn with_shared_layer_memo(mut self, memo: Arc<LayerMemo>, owner: u64) -> DssocEvaluator {
        self.layer_memo = memo;
        self.owner = owner;
        self
    }

    /// Success rate for a policy, preferring Phase-1 records.
    pub fn success_rate(&self, hyper: PolicyHyperparams) -> f64 {
        self.db.success_rate(hyper, self.density).unwrap_or_else(|| {
            SuccessSurrogate::paper_calibrated()
                .success_rate(&PolicyModel::build(hyper), self.density)
        })
    }

    /// The policy with the highest Phase-1 success rate for this
    /// scenario. Each policy's success rate is computed once, not once
    /// per pairwise comparison.
    pub fn best_policy(&self) -> PolicyHyperparams {
        PolicyHyperparams::enumerate()
            .into_iter()
            .map(|h| (h, self.success_rate(h)))
            .max_by(|(_, a), (_, b)| a.total_cmp(b))
            .map(|(h, _)| h)
            // The Table II space is never empty; the fallback keeps this
            // panic-free regardless.
            .unwrap_or_else(PolicyHyperparams::smallest)
    }

    /// Full evaluation of one joint design point.
    ///
    /// # Errors
    ///
    /// Returns [`AutopilotError::InvalidDesignPoint`] when `point` does
    /// not decode to a Table II design.
    pub fn evaluate_design(&self, point: &[usize]) -> Result<DesignCandidate, AutopilotError> {
        let (hyper, config) = JointSpace::decode(point)?;
        Ok(self.evaluate_config(point.to_vec(), hyper, config, soc_power::TechNode::N28))
    }

    /// Full evaluation of an explicit (policy, configuration) pair at a
    /// technology node; used by Phase 3's architectural fine-tuning,
    /// where clock and node leave the Table II grid.
    pub fn evaluate_config(
        &self,
        point: Vec<usize>,
        hyper: PolicyHyperparams,
        config: ArrayConfig,
        node: soc_power::TechNode,
    ) -> DesignCandidate {
        let model = PolicyModel::build(hyper);
        let sim = Simulator::new(config.clone());
        let stats = self.layer_memo.simulate_network_as(self.owner, &sim, model.layers());
        let power_model = if node == self.power_model.node() {
            self.power_model
        } else {
            SocPowerModel::at_node(node)
        };
        let power = power_model.evaluate(&config, &stats);
        DesignCandidate {
            point,
            policy: hyper,
            config,
            success_rate: self.success_rate(hyper),
            latency_s: stats.latency_s(),
            fps: stats.fps(),
            soc_avg_w: power.total_avg_w(),
            tdp_w: power.tdp_w(),
            payload_g: power.compute_payload_grams(),
            efficiency_fps_per_w: power.efficiency_fps_per_w(),
        }
    }
}

/// Maps a pipeline error to the evaluator-layer error the optimizers
/// understand, preserving the invalid-point detail when there is one.
fn to_eval_error(e: AutopilotError) -> EvalError {
    match e {
        AutopilotError::InvalidDesignPoint { point, reason } => {
            EvalError::InvalidPoint { point, reason }
        }
        other => EvalError::Failed { message: other.to_string() },
    }
}

impl Evaluator for DssocEvaluator {
    fn num_objectives(&self) -> usize {
        3
    }

    fn evaluate(&self, point: &[usize]) -> Result<Vec<f64>, EvalError> {
        let c = self.evaluate_design(point).map_err(to_eval_error)?;
        Ok(self.objectives(&c))
    }

    fn reference_point(&self) -> Vec<f64> {
        // Success term <= 1; SoC power stays below ~200 W even for the
        // largest Table II arrays; latency below 2 s.
        vec![1.1, 200.0, 2.0]
    }
}

/// One fully evaluated DSSoC design candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignCandidate {
    /// Joint design-space point.
    pub point: Vec<usize>,
    /// Policy hyperparameters.
    pub policy: PolicyHyperparams,
    /// Accelerator configuration.
    pub config: ArrayConfig,
    /// Validated task success rate.
    pub success_rate: f64,
    /// Inference latency, seconds.
    pub latency_s: f64,
    /// Inference throughput, FPS.
    pub fps: f64,
    /// Average whole-SoC power, watts.
    pub soc_avg_w: f64,
    /// Accelerator TDP, watts (sizes the heatsink).
    pub tdp_w: f64,
    /// Compute payload weight, grams.
    pub payload_g: f64,
    /// Compute efficiency, FPS per watt.
    pub efficiency_fps_per_w: f64,
}

/// Number of shards in a [`CandidateCache`]; matches the layer memo so
/// the two caches scale contention the same way.
const CACHE_SHARDS: usize = 8;

/// Thread-safe memoization of full design-point evaluations
/// (point → [`DesignCandidate`]), sharded for multi-tenant sharing.
///
/// A candidate is a deterministic function of the point for a fixed
/// evaluator (database, scenario, power model), so one cache must only
/// ever be fed by evaluators of the same scenario — [`Phase2::run`]
/// creates a private cache, the pipeline-level cache keys by scenario,
/// and the co-design server keeps one process-lifetime cache per
/// scenario key. Storage is an [`ShardedMap`]: per-shard locks (with
/// poisoned-lock recovery) so concurrent jobs contend only on shard
/// collisions, owner-tagged entries so a hit served from another job's
/// work is counted as a *cross-run* hit, and optional clock eviction
/// when constructed with [`CandidateCache::bounded`]. No lock is held
/// across simulator runs, so parallel optimizer workers evaluate
/// distinct points concurrently; failed evaluations are never cached.
#[derive(Debug)]
pub struct CandidateCache {
    map: ShardedMap<Vec<usize>, DesignCandidate>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    cross_run_hits: AtomicUsize,
}

impl Default for CandidateCache {
    fn default() -> CandidateCache {
        CandidateCache::new()
    }
}

impl CandidateCache {
    /// Creates an empty, unbounded cache (the per-run semantics).
    pub fn new() -> CandidateCache {
        CandidateCache::with_capacity(0)
    }

    /// Creates a cache bounded at roughly `capacity` entries (spread
    /// across shards), evicting cold entries clock-style once full —
    /// the process-lifetime configuration the server uses.
    pub fn bounded(capacity: usize) -> CandidateCache {
        CandidateCache::with_capacity(capacity.max(1))
    }

    fn with_capacity(capacity: usize) -> CandidateCache {
        CandidateCache {
            map: ShardedMap::new(CACHE_SHARDS, capacity).with_obs_prefix("phase2.candidate_cache"),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            cross_run_hits: AtomicUsize::new(0),
        }
    }

    /// Returns the candidate for `point`, running the full evaluation
    /// (systolic simulation + power models + success lookup) only on the
    /// first request. Failures are returned, not cached, so a transient
    /// failure is retried on the next request.
    ///
    /// # Errors
    ///
    /// Propagates [`AutopilotError`] from
    /// [`DssocEvaluator::evaluate_design`].
    pub fn evaluate(
        &self,
        evaluator: &DssocEvaluator,
        point: &[usize],
    ) -> Result<DesignCandidate, AutopilotError> {
        self.evaluate_as(evaluator.owner(), evaluator, point)
    }

    /// Like [`CandidateCache::evaluate`], tagging any inserted entry
    /// with `owner` (a job id) and counting a hit on an entry a
    /// *different* owner inserted as a cross-run hit — the multi-tenant
    /// server's measure of one job reusing another's evaluations.
    ///
    /// # Errors
    ///
    /// Propagates [`AutopilotError`] from
    /// [`DssocEvaluator::evaluate_design`].
    pub fn evaluate_as(
        &self,
        owner: u64,
        evaluator: &DssocEvaluator,
        point: &[usize],
    ) -> Result<DesignCandidate, AutopilotError> {
        let key = point.to_vec();
        if let Some((c, entry_owner)) = self.map.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            obs::add("phase2.candidate_cache.hits", 1);
            if entry_owner != owner {
                self.cross_run_hits.fetch_add(1, Ordering::Relaxed);
                obs::add("phase2.candidate_cache.cross_run_hits", 1);
            }
            return Ok(c);
        }
        let c = evaluator.evaluate_design(point)?;
        self.misses.fetch_add(1, Ordering::Relaxed);
        obs::add("phase2.candidate_cache.misses", 1);
        self.map.insert(key, c.clone(), owner);
        Ok(c)
    }

    /// The cached candidate for `point`, if any (does not count toward
    /// hit/miss statistics).
    pub fn get(&self, point: &[usize]) -> Option<DesignCandidate> {
        self.map.peek(&point.to_vec())
    }

    /// Snapshots hit/miss/entry counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.map.len(),
        }
    }

    /// Hits served from entries another owner inserted (see
    /// [`CandidateCache::evaluate_as`]).
    pub fn cross_run_hits(&self) -> usize {
        self.cross_run_hits.load(Ordering::Relaxed)
    }

    /// Per-shard hit/miss/eviction statistics of the backing map. The
    /// shard-level hit/miss counts track [`CandidateCache::stats`]
    /// exactly (every counted lookup goes through one shard).
    pub fn shard_stats(&self) -> Vec<autopilot_shard::ShardStats> {
        self.map.shard_stats()
    }

    /// Number of distinct points cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Adapter exposing a [`CandidateCache`]-backed [`DssocEvaluator`] to the
/// optimizers: objective vectors are derived from cached candidates, so
/// the simulator runs at most once per design point.
struct CachingEvaluator<'a> {
    inner: &'a DssocEvaluator,
    cache: &'a CandidateCache,
}

impl Evaluator for CachingEvaluator<'_> {
    fn num_objectives(&self) -> usize {
        self.inner.num_objectives()
    }

    fn evaluate(&self, point: &[usize]) -> Result<Vec<f64>, EvalError> {
        let c = self.cache.evaluate(self.inner, point).map_err(to_eval_error)?;
        Ok(self.inner.objectives(&c))
    }

    fn reference_point(&self) -> Vec<f64> {
        self.inner.reference_point()
    }
}

/// Phase-2 configuration and runner.
///
/// The optimizer is selected *by name* through the
/// [`registry`](crate::registry): the built-in choices are covered by
/// [`OptimizerChoice`] (which converts into its registry name), and any
/// optimizer registered at runtime is equally selectable.
#[derive(Debug, Clone)]
pub struct Phase2 {
    optimizer: String,
    budget: usize,
    seed: u64,
    threads: Option<usize>,
    gp_window: Option<usize>,
    surrogate: Option<dse_opt::SurrogateMode>,
    exp_mode: Option<dse_opt::KernelExpMode>,
}

impl Phase2 {
    /// Creates a Phase-2 runner. `optimizer` is a registry name (or an
    /// [`OptimizerChoice`], which converts to one).
    pub fn new(optimizer: impl Into<String>, budget: usize, seed: u64) -> Phase2 {
        Phase2 {
            optimizer: optimizer.into(),
            budget: budget.max(4),
            seed,
            threads: None,
            gp_window: None,
            surrogate: None,
            exp_mode: None,
        }
    }

    /// The registry name of the configured optimizer.
    pub fn optimizer(&self) -> &str {
        &self.optimizer
    }

    /// Pins the optimizer worker count (default: the engine-wide default,
    /// see `dse_opt::par::worker_count`). Results are bit-identical at
    /// any thread count.
    pub fn with_threads(mut self, n: usize) -> Phase2 {
        self.threads = Some(n.max(1));
        self
    }

    /// Caps the exact-GP history window for GP-based optimizers (others
    /// ignore it). Together with [`Phase2::with_surrogate_mode`] this
    /// controls when the exact window slides (incremental downdates)
    /// versus when the sparse surrogate takes over.
    pub fn with_gp_window(mut self, n: usize) -> Phase2 {
        self.gp_window = Some(n);
        self
    }

    /// Pins the surrogate mode for GP-based optimizers, overriding the
    /// `AUTOPILOT_GP_SPARSE` environment default (others ignore it).
    pub fn with_surrogate_mode(mut self, mode: dse_opt::SurrogateMode) -> Phase2 {
        self.surrogate = Some(mode);
        self
    }

    /// Pins the kernel exponential mode for GP-based optimizers,
    /// overriding the `AUTOPILOT_GP_FASTEXP` environment default (others
    /// ignore it). The default [`dse_opt::KernelExpMode::Exact`] is
    /// bit-identical legacy behaviour; `Fast` trades ≤4 ULP of kernel
    /// accuracy for a vectorizable in-repo exponential.
    pub fn with_exp_mode(mut self, mode: dse_opt::KernelExpMode) -> Phase2 {
        self.exp_mode = Some(mode);
        self
    }

    /// Runs the DSE with a private candidate cache.
    ///
    /// # Errors
    ///
    /// See [`Phase2::run_with_cache`].
    pub fn run(&self, evaluator: &DssocEvaluator) -> Result<Phase2Output, AutopilotError> {
        self.run_with_cache(evaluator, &CandidateCache::new())
    }

    /// Runs the DSE against a shared candidate cache, so repeated runs on
    /// the same scenario (e.g. the fig5/table5 sweep) skip the simulator
    /// for already-evaluated points.
    ///
    /// The cache must only hold candidates produced by an evaluator of
    /// the same scenario as `evaluator`.
    ///
    /// # Errors
    ///
    /// * [`AutopilotError::UnknownOptimizer`] when the configured name is
    ///   not registered.
    /// * [`AutopilotError::Dse`] when the optimizer or an evaluation
    ///   fails mid-run.
    pub fn run_with_cache(
        &self,
        evaluator: &DssocEvaluator,
        cache: &CandidateCache,
    ) -> Result<Phase2Output, AutopilotError> {
        self.run_with_cache_controlled(evaluator, cache, &RunControl::none())
    }

    /// Like [`Phase2::run_with_cache`], threading a [`RunControl`] token
    /// through the optimizer so the run can be cancelled cooperatively
    /// (`DELETE /jobs/:id` on the co-design server) and its progress
    /// polled mid-flight. A never-cancelled token yields bit-identical
    /// results to [`Phase2::run_with_cache`].
    ///
    /// # Errors
    ///
    /// As [`Phase2::run_with_cache`], plus [`AutopilotError::Dse`]
    /// wrapping [`dse_opt::DseError::Cancelled`] when `control` is
    /// cancelled mid-run.
    pub fn run_with_cache_controlled(
        &self,
        evaluator: &DssocEvaluator,
        cache: &CandidateCache,
        control: &RunControl,
    ) -> Result<Phase2Output, AutopilotError> {
        let _span = obs::span("phase2.run");
        let stats_before = cache.stats();
        let space = JointSpace::design_space();
        // Domain-informed seeding (Section III-A): start the search at the
        // best-validated policy across a spread of array sizes.
        let best = evaluator.best_policy();
        let seeds: Vec<Vec<usize>> = [16usize, 64, 256]
            .iter()
            .filter_map(|&pe| JointSpace::encode(best, pe, pe, 64, 64, 64))
            .collect();
        let cached = CachingEvaluator { inner: evaluator, cache };
        let ctx = OptimizerContext {
            seed: self.seed,
            budget: self.budget,
            threads: self.threads,
            seed_points: seeds,
            gp_window: self.gp_window,
            surrogate: self.surrogate,
            exp_mode: self.exp_mode,
        };
        let mut opt = registry::build_optimizer(&self.optimizer, &ctx)?;
        let result = opt.run_controlled(&space, &cached, self.budget, control)?;
        // Every history point went through the cache, so assembling the
        // candidate list is a lookup, not a re-simulation (this used to
        // re-run the simulator once per history point).
        let mut candidates: Vec<DesignCandidate> = Vec::with_capacity(result.evaluations.len());
        for e in &result.evaluations {
            let c = match cache.get(&e.point) {
                Some(c) => c,
                None => cache.evaluate(evaluator, &e.point)?,
            };
            candidates.push(c);
        }
        let pareto: Vec<usize> = {
            let objs: Vec<Vec<f64>> =
                result.evaluations.iter().map(|e| e.objectives.clone()).collect();
            dse_opt::pareto::pareto_indices(&objs)
        };
        let stats_after = cache.stats();
        let cache_stats = CacheStats {
            hits: stats_after.hits - stats_before.hits,
            misses: stats_after.misses - stats_before.misses,
            entries: stats_after.entries,
        };
        obs::gauge_set("phase2.final_hypervolume", result.final_hypervolume());
        Ok(Phase2Output { result, candidates, pareto_indices: pareto, cache_stats })
    }
}

/// Everything Phase 2 produced.
#[derive(Debug, Clone)]
pub struct Phase2Output {
    /// Raw optimizer history (objectives, hypervolume trace).
    pub result: OptimizationResult,
    /// Fully evaluated candidates, in evaluation order.
    pub candidates: Vec<DesignCandidate>,
    /// Indices into `candidates` forming the Pareto frontier.
    pub pareto_indices: Vec<usize>,
    /// Candidate-cache hits/misses attributable to this run (entries are
    /// the cache total, which may span runs when a cache is shared).
    pub cache_stats: CacheStats,
}

impl Phase2Output {
    /// The Pareto-frontier candidates.
    pub fn pareto_candidates(&self) -> Vec<&DesignCandidate> {
        self.pareto_indices.iter().map(|&i| &self.candidates[i]).collect()
    }

    /// Highest success rate observed.
    pub fn best_success(&self) -> f64 {
        self.candidates.iter().map(|c| c.success_rate).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase1::{Phase1, SuccessModel};

    fn evaluator() -> DssocEvaluator {
        let mut db = AirLearningDatabase::new();
        Phase1::new(SuccessModel::Surrogate, 1).populate(ObstacleDensity::Dense, &mut db);
        DssocEvaluator::new(db, ObstacleDensity::Dense)
    }

    #[test]
    fn objectives_are_well_scaled() {
        let ev = evaluator();
        let objs = ev.evaluate(&[5, 2, 3, 3, 3, 3, 3]).unwrap();
        assert_eq!(objs.len(), 3);
        let reference = ev.reference_point();
        for (o, r) in objs.iter().zip(&reference) {
            assert!(*o >= 0.0 && o < r, "objective {o} outside [0, {r})");
        }
    }

    #[test]
    fn bigger_array_faster_but_hotter() {
        let ev = evaluator();
        let small = ev.evaluate_design(&[5, 2, 0, 0, 3, 3, 3]).unwrap();
        let large = ev.evaluate_design(&[5, 2, 5, 5, 3, 3, 3]).unwrap();
        assert!(large.fps > small.fps);
        assert!(large.tdp_w > small.tdp_w);
        assert!(large.payload_g > small.payload_g);
    }

    #[test]
    fn invalid_point_is_a_typed_error() {
        let ev = evaluator();
        let err = ev.evaluate_design(&[0, 0, 0]).unwrap_err();
        assert!(matches!(err, AutopilotError::InvalidDesignPoint { .. }));
        let err = ev.evaluate(&[0, 0, 0]).unwrap_err();
        assert!(matches!(err, EvalError::InvalidPoint { .. }));
    }

    #[test]
    fn success_comes_from_database() {
        let ev = evaluator();
        let hyper = PolicyHyperparams::new(7, 48).unwrap();
        let direct = ev.success_rate(hyper);
        let surrogate = SuccessSurrogate::paper_calibrated()
            .success_rate(&PolicyModel::build(hyper), ObstacleDensity::Dense);
        assert!((direct - surrogate).abs() < 1e-12); // phase 1 used the surrogate
    }

    #[test]
    fn random_phase2_produces_pareto_candidates() {
        let ev = evaluator();
        let out = Phase2::new(OptimizerChoice::Random, 12, 3).run(&ev).unwrap();
        assert_eq!(out.candidates.len(), out.result.evaluation_count());
        assert!(!out.pareto_candidates().is_empty());
        assert!(out.best_success() > 0.5);
    }

    #[test]
    fn unknown_optimizer_is_a_typed_error() {
        let ev = evaluator();
        let err = Phase2::new("no-such-optimizer", 8, 1).run(&ev).unwrap_err();
        assert!(matches!(err, AutopilotError::UnknownOptimizer { .. }));
        assert!(err.to_string().contains("sms-ego-bo"));
    }

    #[test]
    fn optimizer_names() {
        assert_eq!(OptimizerChoice::SmsEgo.name(), "sms-ego-bo");
        assert_eq!(OptimizerChoice::default(), OptimizerChoice::SmsEgo);
        assert_eq!(String::from(OptimizerChoice::Nsga2), "nsga-ii");
        assert_eq!(
            Phase2::new(OptimizerChoice::Annealing, 8, 0).optimizer(),
            "simulated-annealing"
        );
    }

    #[test]
    fn shared_cache_makes_repeat_runs_pure_hits() {
        let ev = evaluator();
        let cache = CandidateCache::new();
        let phase2 = Phase2::new(OptimizerChoice::Random, 10, 4);
        let first = phase2.run_with_cache(&ev, &cache).unwrap();
        assert_eq!(first.cache_stats.misses, first.result.evaluation_count());
        let second = phase2.run_with_cache(&ev, &cache).unwrap();
        assert_eq!(second.cache_stats.misses, 0, "second run must re-simulate nothing");
        assert_eq!(second.cache_stats.hits, second.result.evaluation_count());
        assert_eq!(first.candidates, second.candidates);
        assert_eq!(first.result, second.result);
    }

    #[test]
    fn cached_and_uncached_runs_agree() {
        let ev = evaluator();
        let uncached = Phase2::new(OptimizerChoice::Random, 10, 8).run(&ev).unwrap();
        let cache = CandidateCache::new();
        let cached =
            Phase2::new(OptimizerChoice::Random, 10, 8).run_with_cache(&ev, &cache).unwrap();
        assert_eq!(uncached.result, cached.result);
        assert_eq!(uncached.candidates, cached.candidates);
        assert_eq!(uncached.pareto_indices, cached.pareto_indices);
    }

    #[test]
    fn layer_memo_transparent_to_phase2() {
        // Identical runs with the layer memo on and off: the memo must
        // change nothing about the results, only skip re-simulation.
        let memo_on = evaluator().with_layer_memo(true);
        let memo_off = evaluator().with_layer_memo(false);
        let a = Phase2::new(OptimizerChoice::Random, 10, 7).run(&memo_on).unwrap();
        let b = Phase2::new(OptimizerChoice::Random, 10, 7).run(&memo_off).unwrap();
        assert_eq!(a.result, b.result);
        assert_eq!(a.candidates, b.candidates);
        assert_eq!(a.pareto_indices, b.pareto_indices);
        let st = memo_on.layer_memo_stats();
        assert!(st.hits > 0, "repeated layer shapes must hit the memo");
        assert!(st.misses > 0);
        assert!(st.entries as u64 <= st.misses);
        assert_eq!(memo_off.layer_memo_stats(), MemoStats::default());
    }

    #[test]
    fn candidate_cache_counts_hits() {
        let ev = evaluator();
        let cache = CandidateCache::new();
        assert!(cache.is_empty());
        let point = vec![5, 2, 3, 3, 3, 3, 3];
        let a = cache.evaluate(&ev, &point).unwrap();
        let b = cache.evaluate(&ev, &point).unwrap();
        assert_eq!(a, b);
        assert_eq!(cache.len(), 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!(cache.get(&point), Some(a));
        assert_eq!(cache.get(&[0, 0, 0, 0, 0, 0, 0]), None);
    }

    #[test]
    fn candidate_cache_counts_cross_run_hits_by_owner() {
        let ev = evaluator();
        let cache = CandidateCache::new();
        let point = vec![5, 2, 3, 3, 3, 3, 3];
        cache.evaluate_as(1, &ev, &point).unwrap(); // owner 1 inserts
        cache.evaluate_as(1, &ev, &point).unwrap(); // same-owner hit
        cache.evaluate_as(2, &ev, &point).unwrap(); // cross-run hit
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
        assert_eq!(cache.cross_run_hits(), 1);
        // Shard counters must agree with the aggregate counters.
        let shard_total: u64 = cache.shard_stats().iter().map(|s| s.hits + s.misses).sum();
        assert_eq!(shard_total, 3);
    }

    #[test]
    fn bounded_candidate_cache_evicts() {
        let ev = evaluator();
        let cache = CandidateCache::bounded(8);
        for pe in 0..6usize {
            for act in 0..4usize {
                let point = vec![5, 2, pe, pe, act, 3, 3];
                if ev.evaluate_design(&point).is_ok() {
                    let _ = cache.evaluate(&ev, &point);
                }
            }
        }
        assert!(cache.len() <= 8, "bound violated: {} entries", cache.len());
        let evictions: u64 = cache.shard_stats().iter().map(|s| s.evictions).sum();
        assert!(evictions > 0, "streaming past capacity must evict");
    }

    #[test]
    fn phase2_cancellation_is_a_typed_error() {
        let ev = evaluator();
        let control = RunControl::new();
        control.cancel();
        let err = Phase2::new(OptimizerChoice::Random, 12, 3)
            .run_with_cache_controlled(&ev, &CandidateCache::new(), &control)
            .unwrap_err();
        assert!(err.to_string().contains("cancelled"), "unexpected error: {err}");
    }

    #[test]
    fn controlled_run_with_inert_token_matches_run() {
        let ev = evaluator();
        let plain = Phase2::new(OptimizerChoice::Random, 10, 4).run(&ev).unwrap();
        let control = RunControl::new();
        let controlled = Phase2::new(OptimizerChoice::Random, 10, 4)
            .run_with_cache_controlled(&ev, &CandidateCache::new(), &control)
            .unwrap();
        assert_eq!(plain.result, controlled.result);
        assert_eq!(plain.candidates, controlled.candidates);
        assert!(control.evaluations() > 0, "checkpoints must publish progress");
    }

    #[test]
    fn swap_constraint_death_penalizes_infeasible_payloads() {
        let legacy = evaluator();
        let swapped = evaluator().with_swap(SwapMode::Constraint, Airframe::nano());
        assert_eq!(swapped.swap_mode(), SwapMode::Constraint);
        assert!(swapped.airframe().is_some());
        // Large array: payload far above the 50 g headroom of the 100 g
        // nano cap -> penalized to the reference point.
        let heavy = swapped.evaluate_design(&[5, 2, 5, 5, 3, 3, 3]).unwrap();
        assert!(heavy.payload_g > 50.0, "test premise: payload {}", heavy.payload_g);
        assert_eq!(swapped.objectives(&heavy), swapped.reference_point());
        // The legacy evaluator reports the true objectives for the same
        // candidate, and a feasible candidate is untouched in swap mode.
        assert_ne!(legacy.objectives(&heavy), legacy.reference_point());
        let light = swapped.evaluate_design(&[5, 2, 0, 0, 3, 3, 3]).unwrap();
        assert!(light.payload_g < 50.0, "test premise: payload {}", light.payload_g);
        assert_eq!(swapped.objectives(&light), legacy.objectives(&light));
    }

    #[test]
    fn swap_off_drops_airframe_and_is_legacy_identical() {
        let legacy = evaluator();
        let off = evaluator().with_swap(SwapMode::Off, Airframe::nano());
        assert!(off.airframe().is_none());
        let c = off.evaluate_design(&[5, 2, 5, 5, 3, 3, 3]).unwrap();
        assert_eq!(off.objectives(&c), legacy.objectives(&c));
        assert_eq!(off.evaluate(&[5, 2, 5, 5, 3, 3, 3]), legacy.evaluate(&[5, 2, 5, 5, 3, 3, 3]));
    }

    #[test]
    fn candidate_cache_does_not_cache_failures() {
        let ev = evaluator();
        let cache = CandidateCache::new();
        assert!(cache.evaluate(&ev, &[99, 99, 99, 99, 99, 99, 99]).is_err());
        assert!(cache.is_empty());
    }
}

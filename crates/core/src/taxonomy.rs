//! The methodology-generalization taxonomy (Table VI, Section VII).
//!
//! AutoPilot's three-phase decomposition is domain-agnostic in the
//! middle: only the front end (task simulators) and the back end (safety
//! / full-system trade-off models) are domain-specific. This module
//! encodes the paper's taxonomy of how each phase instantiates across
//! closely related autonomous-vehicle domains.

/// Autonomy-algorithm paradigm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Paradigm {
    /// End-to-end learned policies.
    EndToEnd,
    /// Sense-Plan-Act modular stacks.
    SensePlanAct,
    /// Hybrid (planner + learned components), e.g. self-driving stacks.
    Hybrid,
}

impl std::fmt::Display for Paradigm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Paradigm::EndToEnd => "E2E",
            Paradigm::SensePlanAct => "SPA",
            Paradigm::Hybrid => "Hybrid",
        };
        f.write_str(s)
    }
}

/// One row of the Table VI taxonomy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaxonomyRow {
    /// Target domain.
    pub domain: &'static str,
    /// Autonomy paradigm.
    pub paradigm: Paradigm,
    /// Phase-1 front end (task simulator / trainer).
    pub front_end: &'static str,
    /// Phase-2 hardware templates.
    pub hardware_templates: &'static str,
    /// Phase-2 optimizers.
    pub optimizers: &'static str,
    /// Phase-3 back end (full-system trade-off / safety model).
    pub back_end: &'static str,
    /// True for the instantiation this repository implements.
    pub implemented_here: bool,
}

/// The full Table VI taxonomy.
pub fn taxonomy() -> Vec<TaxonomyRow> {
    vec![
        TaxonomyRow {
            domain: "UAV (this work)",
            paradigm: Paradigm::EndToEnd,
            front_end: "Air Learning (air-sim crate)",
            hardware_templates: "systolic arrays (systolic-sim crate)",
            optimizers: "BO/SMS-EGO, NSGA-II, SA, random (dse-opt crate)",
            back_end: "F-1 model (uav-dynamics crate)",
            implemented_here: true,
        },
        TaxonomyRow {
            domain: "UAV",
            paradigm: Paradigm::SensePlanAct,
            front_end: "MAVBench / AirSim (air_sim::spa substrate here)",
            hardware_templates: "SLAM (Navion), OctoMap (OMU), motion planning (RoboX)",
            optimizers: "BO, RL, GA, SA",
            back_end: "F-1 model",
            implemented_here: false,
        },
        TaxonomyRow {
            domain: "Self-driving cars",
            paradigm: Paradigm::Hybrid,
            front_end: "CARLA / Apollo / AirSim",
            hardware_templates: "systolic arrays, Simba, Eyeriss, EyeQ, Tesla FSD, MAGNet",
            optimizers: "BO, RL, GA, SA",
            back_end: "Intel RSS / Nvidia SFF",
            implemented_here: false,
        },
        TaxonomyRow {
            domain: "Articulated robots",
            paradigm: Paradigm::EndToEnd,
            front_end: "robot farms (QT-Opt) / Gazebo",
            hardware_templates: "NN accelerator templates",
            optimizers: "BO, RL, GA, SA",
            back_end: "ANYpulator-style safety models",
            implemented_here: false,
        },
        TaxonomyRow {
            domain: "Articulated robots",
            paradigm: Paradigm::SensePlanAct,
            front_end: "Gazebo",
            hardware_templates: "perception/mapping + motion planning (Robomorphic, RACOD)",
            optimizers: "BO, RL, GA, SA",
            back_end: "arm safety norms",
            implemented_here: false,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_one_row_is_implemented() {
        let rows = taxonomy();
        assert_eq!(rows.iter().filter(|r| r.implemented_here).count(), 1);
        assert!(rows[0].domain.contains("this work"));
    }

    #[test]
    fn covers_the_papers_domains() {
        let rows = taxonomy();
        let domains: Vec<&str> = rows.iter().map(|r| r.domain).collect();
        assert!(domains.iter().any(|d| d.contains("Self-driving")));
        assert!(domains.iter().any(|d| d.contains("Articulated")));
        assert!(rows.len() >= 5);
    }

    #[test]
    fn paradigm_display() {
        assert_eq!(Paradigm::EndToEnd.to_string(), "E2E");
        assert_eq!(Paradigm::Hybrid.to_string(), "Hybrid");
    }
}

//! Error type for the AutoPilot pipeline.

use std::error::Error;
use std::fmt;

/// Errors surfaced by the AutoPilot pipeline.
#[derive(Debug)]
#[non_exhaustive]
pub enum AutopilotError {
    /// Phase 2 produced no candidate meeting the task's success
    /// threshold.
    NoCandidateMeetsSuccess {
        /// Required success rate.
        required: f64,
        /// Best success rate observed.
        best: f64,
    },
    /// No evaluated design can fly the chosen UAV (every payload grounds
    /// it).
    NoFlyableDesign {
        /// UAV platform name.
        uav: String,
    },
    /// An accelerator configuration failed validation.
    InvalidConfiguration(systolic_sim::ConfigError),
}

impl fmt::Display for AutopilotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AutopilotError::NoCandidateMeetsSuccess { required, best } => write!(
                f,
                "no design candidate reaches the required success rate {required:.2} (best {best:.2})"
            ),
            AutopilotError::NoFlyableDesign { uav } => {
                write!(f, "no evaluated design produces a flyable payload for {uav}")
            }
            AutopilotError::InvalidConfiguration(e) => {
                write!(f, "invalid accelerator configuration: {e}")
            }
        }
    }
}

impl Error for AutopilotError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AutopilotError::InvalidConfiguration(e) => Some(e),
            _ => None,
        }
    }
}

impl From<systolic_sim::ConfigError> for AutopilotError {
    fn from(e: systolic_sim::ConfigError) -> Self {
        AutopilotError::InvalidConfiguration(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = AutopilotError::NoCandidateMeetsSuccess { required: 0.8, best: 0.6 };
        assert!(e.to_string().contains("0.80"));
        let e = AutopilotError::NoFlyableDesign { uav: "nano".into() };
        assert!(e.to_string().contains("nano"));
    }

    #[test]
    fn config_error_converts() {
        let source = systolic_sim::ArrayConfig::builder().rows(0).build().unwrap_err();
        let e = AutopilotError::from(source);
        assert!(matches!(e, AutopilotError::InvalidConfiguration(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}

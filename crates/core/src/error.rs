//! Error type for the AutoPilot pipeline.
//!
//! [`AutopilotError`] is the outermost layer of the error chain
//! `EvalError` → `DseError` → `AutopilotError`: evaluation and surrogate
//! failures from the `dse_opt` engine, configuration errors from the
//! systolic simulator, and database errors from the Air Learning store
//! all convert into it via `From`, so a failure anywhere in the three
//! phases reaches the CLI as one typed, displayable error instead of a
//! panic.

use std::error::Error;
use std::fmt;

/// Errors surfaced by the AutoPilot pipeline.
#[derive(Debug)]
#[non_exhaustive]
pub enum AutopilotError {
    /// Phase 2 produced no candidate meeting the task's success
    /// threshold.
    NoCandidateMeetsSuccess {
        /// Required success rate.
        required: f64,
        /// Best success rate observed.
        best: f64,
    },
    /// No evaluated design can fly the chosen UAV (every payload grounds
    /// it).
    NoFlyableDesign {
        /// UAV platform name.
        uav: String,
    },
    /// An accelerator configuration failed validation.
    InvalidConfiguration(systolic_sim::ConfigError),
    /// The Air Learning database failed (I/O, parsing, or a record with
    /// a non-finite success rate).
    Database(air_sim::DatabaseError),
    /// The design-space exploration engine failed (evaluation error,
    /// surrogate fit failure, or a malformed design space).
    Dse(dse_opt::DseError),
    /// A design-space point does not decode to a valid design.
    InvalidDesignPoint {
        /// The offending index vector.
        point: Vec<usize>,
        /// Why it could not be decoded.
        reason: String,
    },
    /// No optimizer with this name is registered.
    UnknownOptimizer {
        /// The requested name.
        name: String,
        /// Names currently registered, sorted.
        available: Vec<String>,
    },
    /// A result could not be serialized.
    Serialization {
        /// Underlying serializer message.
        message: String,
    },
    /// A UAV physics model rejected its input (non-finite payload,
    /// invalid sensor rate, malformed airframe).
    UavModel(uav_dynamics::UavModelError),
    /// The SWaP constraint rejected every otherwise-eligible candidate:
    /// no design fits the airframe's weight class and stability margin.
    SwapInfeasible {
        /// UAV platform name.
        uav: String,
        /// Airframe name the candidates were checked against.
        airframe: String,
        /// How many eligible candidates the feasibility filter rejected.
        rejected: usize,
    },
}

impl fmt::Display for AutopilotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AutopilotError::NoCandidateMeetsSuccess { required, best } => write!(
                f,
                "no design candidate reaches the required success rate {required:.2} (best {best:.2})"
            ),
            AutopilotError::NoFlyableDesign { uav } => {
                write!(f, "no evaluated design produces a flyable payload for {uav}")
            }
            AutopilotError::InvalidConfiguration(e) => {
                write!(f, "invalid accelerator configuration: {e}")
            }
            AutopilotError::Database(e) => write!(f, "air-learning database error: {e}"),
            AutopilotError::Dse(e) => write!(f, "design-space exploration failed: {e}"),
            AutopilotError::InvalidDesignPoint { point, reason } => {
                write!(f, "design point {point:?} is invalid: {reason}")
            }
            AutopilotError::UnknownOptimizer { name, available } => {
                write!(f, "unknown optimizer {name:?}; registered: {}", available.join(", "))
            }
            AutopilotError::Serialization { message } => {
                write!(f, "serialization failed: {message}")
            }
            AutopilotError::UavModel(e) => write!(f, "UAV model rejected its input: {e}"),
            AutopilotError::SwapInfeasible { uav, airframe, rejected } => write!(
                f,
                "no candidate satisfies the SWaP constraint for {uav} on airframe {airframe} \
                 ({rejected} eligible candidates rejected)"
            ),
        }
    }
}

impl Error for AutopilotError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AutopilotError::InvalidConfiguration(e) => Some(e),
            AutopilotError::Database(e) => Some(e),
            AutopilotError::Dse(e) => Some(e),
            AutopilotError::UavModel(e) => Some(e),
            _ => None,
        }
    }
}

impl From<systolic_sim::ConfigError> for AutopilotError {
    fn from(e: systolic_sim::ConfigError) -> Self {
        AutopilotError::InvalidConfiguration(e)
    }
}

impl From<air_sim::DatabaseError> for AutopilotError {
    fn from(e: air_sim::DatabaseError) -> Self {
        AutopilotError::Database(e)
    }
}

impl From<dse_opt::DseError> for AutopilotError {
    fn from(e: dse_opt::DseError) -> Self {
        AutopilotError::Dse(e)
    }
}

impl From<dse_opt::EvalError> for AutopilotError {
    fn from(e: dse_opt::EvalError) -> Self {
        AutopilotError::Dse(dse_opt::DseError::from(e))
    }
}

impl From<dse_opt::GpError> for AutopilotError {
    fn from(e: dse_opt::GpError) -> Self {
        AutopilotError::Dse(dse_opt::DseError::from(e))
    }
}

impl From<uav_dynamics::UavModelError> for AutopilotError {
    fn from(e: uav_dynamics::UavModelError) -> Self {
        AutopilotError::UavModel(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = AutopilotError::NoCandidateMeetsSuccess { required: 0.8, best: 0.6 };
        assert!(e.to_string().contains("0.80"));
        let e = AutopilotError::NoFlyableDesign { uav: "nano".into() };
        assert!(e.to_string().contains("nano"));
        let e = AutopilotError::UnknownOptimizer {
            name: "mystery".into(),
            available: vec!["nsga-ii".into(), "sms-ego-bo".into()],
        };
        assert!(e.to_string().contains("mystery"));
        assert!(e.to_string().contains("nsga-ii"));
        let e = AutopilotError::InvalidDesignPoint { point: vec![9, 9], reason: "too big".into() };
        assert!(e.to_string().contains("[9, 9]"));
        let e = AutopilotError::SwapInfeasible {
            uav: "nano".into(),
            airframe: "tinywhoop-nano".into(),
            rejected: 7,
        };
        assert!(e.to_string().contains("tinywhoop-nano"));
        assert!(e.to_string().contains('7'));
    }

    #[test]
    fn uav_model_error_converts() {
        let source = uav_dynamics::validate_payload_g(f64::NAN).unwrap_err();
        let e = AutopilotError::from(source);
        assert!(matches!(e, AutopilotError::UavModel(_)));
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("finite"));
    }

    #[test]
    fn config_error_converts() {
        let source = systolic_sim::ArrayConfig::builder().rows(0).build().unwrap_err();
        let e = AutopilotError::from(source);
        assert!(matches!(e, AutopilotError::InvalidConfiguration(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn dse_error_chain_converts() {
        let eval = dse_opt::EvalError::Failed { message: "sim crashed".into() };
        let e = AutopilotError::from(eval);
        assert!(matches!(e, AutopilotError::Dse(dse_opt::DseError::Eval(_))));
        assert!(e.to_string().contains("sim crashed"));
        let gp = dse_opt::GpError::NotPositiveDefinite;
        let e = AutopilotError::from(gp);
        assert!(matches!(e, AutopilotError::Dse(dse_opt::DseError::Surrogate(_))));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn database_error_converts() {
        let source = air_sim::AirLearningDatabase::from_json("{broken").unwrap_err();
        let e = AutopilotError::from(source);
        assert!(matches!(e, AutopilotError::Database(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}

//! The SWaP-constraint knob: whether Phase 2/3 treat compute weight as
//! a first-class airframe feasibility constraint (`AUTOPILOT_SWAP`).

/// Environment variable selecting the SWaP-constraint mode for the
/// pipeline. Accepted values:
///
/// | value                          | meaning                                 |
/// |--------------------------------|-----------------------------------------|
/// | *(unset)*, `0`, `off`, `false` | legacy scalar-payload mode (default)    |
/// | `1`, `on`, `true`, `constraint`| airframe CG/stability/weight constraint |
pub const SWAP_ENV: &str = "AUTOPILOT_SWAP";

/// Whether the pipeline enforces component-level SWaP feasibility.
///
/// In [`SwapMode::Off`] (the default) the payload is the legacy scalar
/// weight and results are bit-identical to the pre-airframe pipeline.
/// In [`SwapMode::Constraint`], Phase 2 applies a death penalty to
/// candidates whose compute payload violates the airframe's weight-class
/// cap or static-stability margin (their objectives are replaced by the
/// reference point, so they never enter the Pareto front), and Phase 3
/// filters the eligible set through the full CG/stability/lift
/// feasibility check before knee-point selection.
///
/// Weight stays a *constraint* rather than a fourth objective: the
/// hypervolume machinery (and the SMS-EGO contribution scorer built on
/// it) is specified for at most three objectives, and a death penalty
/// preserves determinism and cache-shareability of the evaluations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SwapMode {
    /// Legacy scalar-payload mode; bit-identical to the pre-airframe
    /// pipeline.
    #[default]
    Off,
    /// Weight/CG/stability enforced as an explicit Phase-2 constraint
    /// and Phase-3 feasibility filter.
    Constraint,
}

impl SwapMode {
    /// Reads the mode from [`SWAP_ENV`]; unset or unparsable values fall
    /// back to [`SwapMode::Off`] (with a warn-level obs event for the
    /// unparsable case).
    ///
    /// The variable is captured **once per process** (via
    /// [`autopilot_obs::env_once`]); later env mutations warn once and
    /// are otherwise ignored. Per-job swap modes go through
    /// [`JobConfig::with_swap`](crate::JobConfig::with_swap) instead.
    pub fn from_env() -> SwapMode {
        static CACHED: std::sync::OnceLock<SwapMode> = std::sync::OnceLock::new();
        let raw = autopilot_obs::env_once(SWAP_ENV);
        *CACHED.get_or_init(|| {
            let raw = match raw {
                Some(v) => v,
                None => return SwapMode::Off,
            };
            match SwapMode::parse(&raw) {
                Some(mode) => mode,
                None => {
                    autopilot_obs::obs_warn!(
                        "swap: {SWAP_ENV}={raw:?} is not a recognized SWaP mode; \
                         staying in legacy scalar-payload mode"
                    );
                    SwapMode::Off
                }
            }
        })
    }

    /// Parses the [`SWAP_ENV`] grammar; `None` for unrecognized input.
    pub fn parse(raw: &str) -> Option<SwapMode> {
        let v = raw.trim().to_ascii_lowercase();
        match v.as_str() {
            "" | "0" | "off" | "false" => Some(SwapMode::Off),
            "1" | "on" | "true" | "constraint" => Some(SwapMode::Constraint),
            _ => None,
        }
    }

    /// True in [`SwapMode::Constraint`].
    pub fn is_on(&self) -> bool {
        matches!(self, SwapMode::Constraint)
    }

    /// Stable lower-case identifier (for job specs and reports).
    pub fn as_str(&self) -> &'static str {
        match self {
            SwapMode::Off => "off",
            SwapMode::Constraint => "constraint",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_grammar() {
        for v in ["", "0", "off", "false", " OFF ", "False"] {
            assert_eq!(SwapMode::parse(v), Some(SwapMode::Off), "{v:?}");
        }
        for v in ["1", "on", "true", "constraint", " Constraint "] {
            assert_eq!(SwapMode::parse(v), Some(SwapMode::Constraint), "{v:?}");
        }
        for v in ["2", "objective", "yes!", "swap"] {
            assert_eq!(SwapMode::parse(v), None, "{v:?}");
        }
    }

    #[test]
    fn default_is_off() {
        assert_eq!(SwapMode::default(), SwapMode::Off);
        assert!(!SwapMode::Off.is_on());
        assert!(SwapMode::Constraint.is_on());
        assert_eq!(SwapMode::Off.as_str(), "off");
        assert_eq!(SwapMode::Constraint.as_str(), "constraint");
    }
}

//! # autopilot
//!
//! The AutoPilot methodology (Krishnan et al., MICRO 2022): automatic
//! domain-specific SoC (DSSoC) design for autonomous UAVs.
//!
//! Given a high-level task specification (deployment scenario, success
//! threshold, mission profile) and a UAV platform, AutoPilot produces a
//! *combination* of an E2E autonomy algorithm and a systolic-array
//! accelerator configuration that maximizes the number of missions the
//! UAV can fly per battery charge. The flow has three phases:
//!
//! 1. [`phase1`] — *domain-specific front end*: train/validate candidate
//!    policies for the scenario and record their success rates in the
//!    Air Learning database.
//! 2. [`phase2`] — *domain-agnostic multi-objective DSE*: search the joint
//!    (algorithm x accelerator) space of Table II with Bayesian
//!    optimization (or a drop-in alternative) for designs Pareto-optimal
//!    in task success, SoC power, and inference latency.
//! 3. [`phase3`] — *domain-specific back end*: evaluate the candidates
//!    against the full UAV system (compute weight -> thrust-to-weight ->
//!    F-1 roofline -> missions) and select the balanced design, optionally
//!    fine-tuning clock and technology node toward the knee-point.
//!
//! # Example
//!
//! ```no_run
//! use air_sim::ObstacleDensity;
//! use autopilot::{AutoPilot, AutopilotConfig, AutopilotError, TaskSpec};
//! use uav_dynamics::UavSpec;
//!
//! # fn main() -> Result<(), AutopilotError> {
//! let pilot = AutoPilot::new(AutopilotConfig::fast(7));
//! let result =
//!     pilot.run(&UavSpec::nano(), &TaskSpec::navigation(ObstacleDensity::Dense))?;
//! if let Some(sel) = result.selection {
//!     println!("selected {} at {:.0} FPS -> {:.0} missions",
//!              sel.candidate.policy, sel.candidate.fps, sel.missions.missions);
//! }
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod baselines;
mod config;
mod error;
mod phase1;
mod phase2;
mod phase3;
mod pipeline;
pub mod registry;
mod report;
mod space;
mod spec;
mod swap;
pub mod taxonomy;

pub use baselines::{BaselineBoard, BaselineEvaluation};
pub use config::JobConfig;
pub use error::AutopilotError;
pub use phase1::{Phase1, SuccessModel};
pub use phase2::{
    CandidateCache, DesignCandidate, DssocEvaluator, OptimizerChoice, Phase2, Phase2Output,
};
pub use phase3::{FineTuning, Phase3, Phase3Selection};
pub use pipeline::{AutoPilot, AutopilotConfig, AutopilotResult, PipelineCache};
pub use registry::{
    build_optimizer, register_optimizer, registered_optimizers, BoxedOptimizer, OptimizerContext,
};
pub use report::{CandidateSummary, RunSummary};
pub use space::{JointSpace, PE_CHOICES, SRAM_KB_CHOICES};
pub use spec::TaskSpec;
pub use swap::{SwapMode, SWAP_ENV};

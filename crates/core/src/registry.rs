//! Runtime optimizer registry: Phase 2 looks its optimizer up by name,
//! so new search backends plug in without touching the core crate.
//!
//! The registry maps a name (e.g. `"sms-ego-bo"`) to a factory closure
//! that builds a boxed [`MultiObjectiveOptimizer`] from an
//! [`OptimizerContext`] (seed, budget, worker count, and domain-informed
//! seed points). The built-in optimizers register themselves on first
//! access; downstream crates add their own with [`register_optimizer`]:
//!
//! ```
//! use autopilot::registry::{self, OptimizerContext};
//! use dse_opt::RandomSearch;
//!
//! registry::register_optimizer("my-random", |ctx: &OptimizerContext| {
//!     Box::new(RandomSearch::new(ctx.seed))
//! });
//! assert!(registry::registered_optimizers().contains(&"my-random".to_string()));
//! ```

use dse_opt::{
    AnnealingOptimizer, ExhaustiveSearch, KernelExpMode, MultiObjectiveOptimizer, Nsga2Optimizer,
    RandomSearch, SmsEgoOptimizer, SurrogateMode,
};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock, PoisonError, RwLock};

use crate::error::AutopilotError;

/// Everything a factory may use to parameterize an optimizer. Budgets
/// and seeds come from the Phase-2 configuration; `seed_points` carry
/// the domain-informed warm starts (Section III-A).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct OptimizerContext {
    /// Deterministic seed.
    pub seed: u64,
    /// Evaluation budget the optimizer will be run with.
    pub budget: usize,
    /// Pinned worker count, when the caller requested one.
    pub threads: Option<usize>,
    /// Warm-start design points (may be empty).
    pub seed_points: Vec<Vec<usize>>,
    /// Cap on exact-GP history points (surrogate window), when the
    /// caller wants one. Factories for non-GP optimizers ignore it.
    pub gp_window: Option<usize>,
    /// Explicit surrogate mode, overriding the `AUTOPILOT_GP_SPARSE`
    /// environment default. Factories for non-GP optimizers ignore it.
    pub surrogate: Option<SurrogateMode>,
    /// Explicit kernel exponential mode, overriding the
    /// `AUTOPILOT_GP_FASTEXP` environment default. Factories for non-GP
    /// optimizers ignore it.
    pub exp_mode: Option<KernelExpMode>,
}

impl OptimizerContext {
    /// A context with no warm starts and default threading.
    pub fn new(seed: u64, budget: usize) -> OptimizerContext {
        OptimizerContext {
            seed,
            budget,
            threads: None,
            seed_points: Vec::new(),
            gp_window: None,
            surrogate: None,
            exp_mode: None,
        }
    }
}

/// A ready-to-run optimizer built by a registry factory.
pub type BoxedOptimizer = Box<dyn MultiObjectiveOptimizer + Send>;

type Factory = dyn Fn(&OptimizerContext) -> BoxedOptimizer + Send + Sync;

fn registry() -> &'static RwLock<HashMap<String, Arc<Factory>>> {
    static REGISTRY: OnceLock<RwLock<HashMap<String, Arc<Factory>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| RwLock::new(builtin_factories()))
}

fn builtin_factories() -> HashMap<String, Arc<Factory>> {
    let mut map: HashMap<String, Arc<Factory>> = HashMap::new();
    map.insert(
        "sms-ego-bo".to_owned(),
        Arc::new(|ctx: &OptimizerContext| {
            let mut opt = SmsEgoOptimizer::new(ctx.seed)
                .with_init_samples((ctx.budget / 4).clamp(8, 32))
                .with_candidate_pool(128)
                .with_seed_points(ctx.seed_points.clone());
            if let Some(t) = ctx.threads {
                opt = opt.with_threads(t);
            }
            if let Some(w) = ctx.gp_window {
                opt = opt.with_max_gp_points(w);
            }
            if let Some(mode) = ctx.surrogate {
                opt = opt.with_surrogate_mode(mode);
            }
            if let Some(mode) = ctx.exp_mode {
                opt = opt.with_exp_mode(mode);
            }
            Box::new(opt)
        }),
    );
    map.insert(
        "nsga-ii".to_owned(),
        Arc::new(|ctx: &OptimizerContext| {
            let mut opt =
                Nsga2Optimizer::new(ctx.seed).with_population((ctx.budget / 6).clamp(8, 32));
            if let Some(t) = ctx.threads {
                opt = opt.with_threads(t);
            }
            Box::new(opt)
        }),
    );
    map.insert(
        "simulated-annealing".to_owned(),
        Arc::new(|ctx: &OptimizerContext| Box::new(AnnealingOptimizer::new(ctx.seed))),
    );
    map.insert(
        "random-search".to_owned(),
        Arc::new(|ctx: &OptimizerContext| {
            let mut opt = RandomSearch::new(ctx.seed);
            if let Some(t) = ctx.threads {
                opt = opt.with_threads(t);
            }
            Box::new(opt)
        }),
    );
    map.insert(
        "exhaustive".to_owned(),
        Arc::new(|_ctx: &OptimizerContext| Box::new(ExhaustiveSearch::new())),
    );
    map
}

/// Registers (or replaces) the factory for `name`. Registration is
/// process-wide: every [`crate::Phase2`] created afterwards can select
/// the optimizer by name.
pub fn register_optimizer<F>(name: impl Into<String>, factory: F)
where
    F: Fn(&OptimizerContext) -> BoxedOptimizer + Send + Sync + 'static,
{
    registry()
        .write()
        .unwrap_or_else(PoisonError::into_inner)
        .insert(name.into(), Arc::new(factory));
}

/// The names currently registered, sorted.
pub fn registered_optimizers() -> Vec<String> {
    let mut names: Vec<String> =
        registry().read().unwrap_or_else(PoisonError::into_inner).keys().cloned().collect();
    names.sort();
    names
}

/// Builds the optimizer registered under `name`.
///
/// # Errors
///
/// Returns [`AutopilotError::UnknownOptimizer`] (listing the registered
/// names) when no factory matches.
pub fn build_optimizer(
    name: &str,
    ctx: &OptimizerContext,
) -> Result<BoxedOptimizer, AutopilotError> {
    let factory =
        registry().read().unwrap_or_else(PoisonError::into_inner).get(name).cloned().ok_or_else(
            || AutopilotError::UnknownOptimizer {
                name: name.to_owned(),
                available: registered_optimizers(),
            },
        )?;
    Ok(factory(ctx))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_are_registered() {
        let names = registered_optimizers();
        for builtin in
            ["sms-ego-bo", "nsga-ii", "simulated-annealing", "random-search", "exhaustive"]
        {
            assert!(names.contains(&builtin.to_string()), "{builtin} missing from {names:?}");
        }
    }

    #[test]
    fn unknown_name_lists_alternatives() {
        let err = match build_optimizer("does-not-exist", &OptimizerContext::new(1, 10)) {
            Err(e) => e,
            Ok(_) => panic!("unregistered name must not build"),
        };
        match err {
            AutopilotError::UnknownOptimizer { name, available } => {
                assert_eq!(name, "does-not-exist");
                assert!(available.contains(&"sms-ego-bo".to_string()));
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn built_optimizers_carry_their_names() {
        let ctx = OptimizerContext::new(3, 24);
        for name in ["sms-ego-bo", "nsga-ii", "simulated-annealing", "random-search", "exhaustive"]
        {
            let opt = build_optimizer(name, &ctx).unwrap();
            assert_eq!(opt.name(), name);
        }
    }

    #[test]
    fn custom_registration_round_trips() {
        register_optimizer("test-registry-random", |ctx: &OptimizerContext| {
            Box::new(RandomSearch::new(ctx.seed))
        });
        let opt = build_optimizer("test-registry-random", &OptimizerContext::new(7, 8)).unwrap();
        assert_eq!(opt.name(), "random-search");
    }
}

//! The joint algorithm x accelerator design space (Table II).

use dse_opt::DesignSpace;
use policy_nn::{PolicyHyperparams, FILTER_CHOICES, LAYER_CHOICES};
use systolic_sim::{ArrayConfig, Dataflow};

use crate::error::AutopilotError;

/// PE-array row/column choices (Table II).
pub const PE_CHOICES: [usize; 8] = [8, 16, 32, 64, 128, 256, 512, 1024];

/// Scratchpad size choices in KiB, shared by ifmap/filter/ofmap
/// (Table II).
pub const SRAM_KB_CHOICES: [usize; 8] = [32, 64, 128, 256, 512, 1024, 2048, 4096];

/// Default accelerator clock in MHz (fixed during Phase 2; architectural
/// fine-tuning in Phase 3 may scale it).
pub const DEFAULT_CLOCK_MHZ: f64 = 200.0;

/// Default sustained DRAM bandwidth in bytes/cycle (LPDDR4-class).
pub const DEFAULT_DRAM_BW: f64 = 48.0;

/// The seven-dimensional joint space AutoPilot's Phase 2 searches:
/// `(layers, filters, pe_rows, pe_cols, ifmap KB, filter KB, ofmap KB)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JointSpace;

impl JointSpace {
    /// Dimension index of each parameter, in point order.
    pub const DIM_LAYERS: usize = 0;
    /// See [`JointSpace::DIM_LAYERS`].
    pub const DIM_FILTERS: usize = 1;
    /// See [`JointSpace::DIM_LAYERS`].
    pub const DIM_PE_ROWS: usize = 2;
    /// See [`JointSpace::DIM_LAYERS`].
    pub const DIM_PE_COLS: usize = 3;
    /// See [`JointSpace::DIM_LAYERS`].
    pub const DIM_IFMAP_KB: usize = 4;
    /// See [`JointSpace::DIM_LAYERS`].
    pub const DIM_FILTER_KB: usize = 5;
    /// See [`JointSpace::DIM_LAYERS`].
    pub const DIM_OFMAP_KB: usize = 6;

    /// The [`DesignSpace`] over index vectors.
    pub fn design_space() -> DesignSpace {
        // The choice lists are non-empty const arrays, so construction
        // cannot fail; the unit-space fallback keeps this panic-free.
        DesignSpace::new(vec![
            LAYER_CHOICES.len(),
            FILTER_CHOICES.len(),
            PE_CHOICES.len(),
            PE_CHOICES.len(),
            SRAM_KB_CHOICES.len(),
            SRAM_KB_CHOICES.len(),
            SRAM_KB_CHOICES.len(),
        ])
        .unwrap_or_else(|_| DesignSpace::unit())
    }

    /// Total number of joint design points.
    pub fn size() -> u128 {
        JointSpace::design_space().len()
    }

    /// Decodes a design-space point into hyperparameters and an
    /// accelerator configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AutopilotError::InvalidDesignPoint`] when `point` has
    /// the wrong arity or an index outside its dimension's Table II
    /// choice list, and [`AutopilotError::InvalidConfiguration`] when
    /// the decoded accelerator configuration fails validation.
    pub fn decode(point: &[usize]) -> Result<(PolicyHyperparams, ArrayConfig), AutopilotError> {
        let invalid =
            |reason: String| AutopilotError::InvalidDesignPoint { point: point.to_vec(), reason };
        if point.len() != 7 {
            return Err(invalid(format!("expected 7 dimensions, got {}", point.len())));
        }
        let pick = |list: &[usize], dim: usize, name: &str| {
            list.get(point[dim]).copied().ok_or_else(|| {
                invalid(format!(
                    "{name} index {} out of range (dimension has {} choices)",
                    point[dim],
                    list.len()
                ))
            })
        };
        let layers = pick(&LAYER_CHOICES, Self::DIM_LAYERS, "layer")?;
        let filters = pick(&FILTER_CHOICES, Self::DIM_FILTERS, "filter")?;
        let hyper = PolicyHyperparams::new(layers, filters).map_err(|e| invalid(e.to_string()))?;
        let config = ArrayConfig::builder()
            .rows(pick(&PE_CHOICES, Self::DIM_PE_ROWS, "PE-row")?)
            .cols(pick(&PE_CHOICES, Self::DIM_PE_COLS, "PE-col")?)
            .ifmap_sram_kb(pick(&SRAM_KB_CHOICES, Self::DIM_IFMAP_KB, "ifmap-SRAM")?)
            .filter_sram_kb(pick(&SRAM_KB_CHOICES, Self::DIM_FILTER_KB, "filter-SRAM")?)
            .ofmap_sram_kb(pick(&SRAM_KB_CHOICES, Self::DIM_OFMAP_KB, "ofmap-SRAM")?)
            .dataflow(Dataflow::OutputStationary)
            .clock_mhz(DEFAULT_CLOCK_MHZ)
            .dram_bandwidth(DEFAULT_DRAM_BW)
            .build()?;
        Ok((hyper, config))
    }

    /// Encodes `(hyper, rows, cols, ifmap_kb, filter_kb, ofmap_kb)` back
    /// into a design-space point, or `None` when a value is not a legal
    /// Table II choice.
    pub fn encode(
        hyper: PolicyHyperparams,
        rows: usize,
        cols: usize,
        ifmap_kb: usize,
        filter_kb: usize,
        ofmap_kb: usize,
    ) -> Option<Vec<usize>> {
        Some(vec![
            LAYER_CHOICES.iter().position(|&l| l == hyper.conv_layers())?,
            FILTER_CHOICES.iter().position(|&f| f == hyper.filters())?,
            PE_CHOICES.iter().position(|&p| p == rows)?,
            PE_CHOICES.iter().position(|&p| p == cols)?,
            SRAM_KB_CHOICES.iter().position(|&s| s == ifmap_kb)?,
            SRAM_KB_CHOICES.iter().position(|&s| s == filter_kb)?,
            SRAM_KB_CHOICES.iter().position(|&s| s == ofmap_kb)?,
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_space_size() {
        // 9 layer choices x 3 filter choices x 8^2 PE x 8^3 SRAM.
        assert_eq!(JointSpace::size(), 9 * 3 * 64 * 512);
        assert_eq!(JointSpace::size(), 884_736);
    }

    #[test]
    fn decode_round_trips_with_encode() {
        let point = vec![5, 2, 3, 4, 1, 6, 2];
        let (hyper, config) = JointSpace::decode(&point).unwrap();
        let back = JointSpace::encode(
            hyper,
            config.rows(),
            config.cols(),
            config.ifmap_sram_bytes() / 1024,
            config.filter_sram_bytes() / 1024,
            config.ofmap_sram_bytes() / 1024,
        )
        .unwrap();
        assert_eq!(back, point);
    }

    #[test]
    fn decode_extremes_are_valid() {
        let space = JointSpace::design_space();
        let lo = vec![0; 7];
        let hi: Vec<usize> = (0..7).map(|d| space.cardinality(d) - 1).collect();
        let (h_lo, c_lo) = JointSpace::decode(&lo).unwrap();
        let (h_hi, c_hi) = JointSpace::decode(&hi).unwrap();
        assert_eq!(h_lo.conv_layers(), 2);
        assert_eq!(c_lo.rows(), 8);
        assert_eq!(h_hi.conv_layers(), 10);
        assert_eq!(c_hi.rows(), 1024);
        assert_eq!(c_hi.ifmap_sram_bytes(), 4096 * 1024);
    }

    #[test]
    fn decode_rejects_malformed_points() {
        let err = JointSpace::decode(&[0, 0]).unwrap_err();
        assert!(matches!(err, AutopilotError::InvalidDesignPoint { .. }));
        let err = JointSpace::decode(&[0, 0, 99, 0, 0, 0, 0]).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn encode_rejects_off_menu_values() {
        let h = PolicyHyperparams::new(5, 32).unwrap();
        assert!(JointSpace::encode(h, 12, 8, 32, 32, 32).is_none());
        assert!(JointSpace::encode(h, 8, 8, 33, 32, 32).is_none());
    }
}

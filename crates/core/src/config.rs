//! Per-job engine configuration.
//!
//! The DSE engine historically read its tuning knobs straight from the
//! environment (`AUTOPILOT_THREADS`, `AUTOPILOT_GP_SPARSE`,
//! `AUTOPILOT_LAYER_MEMO`, `AUTOPILOT_TRACE`) at whatever moment the
//! knob was first needed. A multi-tenant server cannot work that way:
//! two jobs in one process need *different* knobs, and mutating the
//! process environment mid-flight is a race. [`JobConfig`] inverts the
//! flow — the environment is captured **once at startup** (via
//! [`autopilot_obs::env_once`], which warns if the live environment
//! later diverges) into the [`JobConfig::from_env`] defaults, and every
//! job carries its own explicit copy from there.

use crate::phase2::Phase2;
use crate::pipeline::AutopilotConfig;
use crate::swap::SwapMode;
use autopilot_obs as obs;
use dse_opt::{KernelExpMode, SurrogateMode};
use systolic_sim::LayerMemo;

/// Explicit per-job engine knobs: thread count, GP history window,
/// surrogate mode, layer-memo gating, and trace gating.
///
/// Construct with [`JobConfig::from_env`] (startup-captured environment
/// defaults) and override per job with the builder methods. Results are
/// bit-identical across `threads` values; the other knobs legitimately
/// change the search trajectory and are part of a job's identity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobConfig {
    /// Optimizer worker-pool size. `None` = the engine-wide default
    /// (startup `AUTOPILOT_THREADS`, else hardware parallelism).
    pub threads: Option<usize>,
    /// Exact-GP history window cap for GP-based optimizers; `None` =
    /// the optimizer's built-in default.
    pub gp_window: Option<usize>,
    /// Surrogate mode for GP-based optimizers; `None` = the startup
    /// `AUTOPILOT_GP_SPARSE` default resolved at build time.
    pub surrogate: Option<SurrogateMode>,
    /// Kernel exponential mode for GP-based optimizers; `None` = the
    /// startup `AUTOPILOT_GP_FASTEXP` default resolved at build time.
    pub exp_mode: Option<KernelExpMode>,
    /// Whether layer simulations go through the layer memo.
    pub layer_memo: bool,
    /// Whether this job asks for per-event tracing. Tracing is a
    /// process-global facility (`AUTOPILOT_TRACE`); this flag records
    /// the job's request so the server can refuse or gate trace
    /// export per job, but it cannot turn tracing on for one job and
    /// off for a concurrent one within the same process.
    pub trace: bool,
    /// Whether compute weight is enforced as an airframe SWaP constraint
    /// ([`SwapMode::Constraint`]) or ignored (legacy scalar-payload
    /// mode, the default).
    pub swap: SwapMode,
}

impl JobConfig {
    /// The startup-environment defaults: `AUTOPILOT_THREADS`,
    /// `AUTOPILOT_GP_SPARSE`, `AUTOPILOT_LAYER_MEMO`, and
    /// `AUTOPILOT_TRACE` as captured on first read (later mutations of
    /// the live environment warn once and are ignored).
    pub fn from_env() -> JobConfig {
        JobConfig {
            // `None` defers to `dse_opt::par::worker_count()` /
            // `SurrogateMode::from_env()`, both of which cache the
            // startup environment through `env_once` themselves.
            threads: None,
            gp_window: None,
            surrogate: None,
            exp_mode: None,
            layer_memo: LayerMemo::env_default_enabled(),
            trace: obs::trace::enabled(),
            swap: SwapMode::from_env(),
        }
    }

    /// Pins the optimizer worker count (bit-identical results at any
    /// value).
    pub fn with_threads(mut self, n: usize) -> JobConfig {
        self.threads = Some(n.max(1));
        self
    }

    /// Caps the exact-GP history window.
    pub fn with_gp_window(mut self, n: usize) -> JobConfig {
        self.gp_window = Some(n);
        self
    }

    /// Pins the surrogate mode.
    pub fn with_surrogate(mut self, mode: SurrogateMode) -> JobConfig {
        self.surrogate = Some(mode);
        self
    }

    /// Pins the kernel exponential mode.
    pub fn with_exp_mode(mut self, mode: KernelExpMode) -> JobConfig {
        self.exp_mode = Some(mode);
        self
    }

    /// Switches the layer memo on or off for this job.
    pub fn with_layer_memo(mut self, enabled: bool) -> JobConfig {
        self.layer_memo = enabled;
        self
    }

    /// Records whether this job wants per-event tracing.
    pub fn with_trace(mut self, enabled: bool) -> JobConfig {
        self.trace = enabled;
        self
    }

    /// Sets the SWaP-constraint mode, overriding the startup
    /// `AUTOPILOT_SWAP` default.
    pub fn with_swap(mut self, mode: SwapMode) -> JobConfig {
        self.swap = mode;
        self
    }

    /// The effective worker count this job runs with.
    pub fn effective_threads(&self) -> usize {
        self.threads.unwrap_or_else(dse_opt::par::worker_count)
    }

    /// Applies this job's knobs to a [`Phase2`] runner.
    pub fn apply_to_phase2(&self, mut phase2: Phase2) -> Phase2 {
        if let Some(t) = self.threads {
            phase2 = phase2.with_threads(t);
        }
        if let Some(w) = self.gp_window {
            phase2 = phase2.with_gp_window(w);
        }
        if let Some(mode) = self.surrogate {
            phase2 = phase2.with_surrogate_mode(mode);
        }
        if let Some(mode) = self.exp_mode {
            phase2 = phase2.with_exp_mode(mode);
        }
        phase2
    }

    /// A [`Phase2`] runner for `config`, with this job's knobs applied.
    pub fn phase2(&self, config: &AutopilotConfig) -> Phase2 {
        self.apply_to_phase2(Phase2::new(config.optimizer, config.phase2_budget, config.seed))
    }
}

impl Default for JobConfig {
    /// Same as [`JobConfig::from_env`].
    fn default() -> JobConfig {
        JobConfig::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_override_env_defaults() {
        let cfg = JobConfig::from_env()
            .with_threads(3)
            .with_gp_window(128)
            .with_surrogate(SurrogateMode::Exact)
            .with_exp_mode(KernelExpMode::Fast)
            .with_layer_memo(false)
            .with_trace(false)
            .with_swap(SwapMode::Constraint);
        assert_eq!(cfg.threads, Some(3));
        assert_eq!(cfg.effective_threads(), 3);
        assert_eq!(cfg.gp_window, Some(128));
        assert_eq!(cfg.surrogate, Some(SurrogateMode::Exact));
        assert_eq!(cfg.exp_mode, Some(KernelExpMode::Fast));
        assert!(!cfg.layer_memo);
        assert!(!cfg.trace);
        assert_eq!(cfg.swap, SwapMode::Constraint);
    }

    #[test]
    fn thread_count_is_floored_at_one() {
        assert_eq!(JobConfig::from_env().with_threads(0).threads, Some(1));
        assert!(JobConfig::from_env().effective_threads() >= 1);
    }

    #[test]
    fn default_is_from_env() {
        assert_eq!(JobConfig::default(), JobConfig::from_env());
    }
}

//! Serializable run summaries for downstream tooling.

use serde::{Deserialize, Serialize};

use crate::error::AutopilotError;
use crate::phase2::DesignCandidate;
use crate::pipeline::AutopilotResult;

/// Compact, serializable description of one design candidate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateSummary {
    /// Policy identifier (e.g. `"l7f48"`).
    pub policy: String,
    /// PE array geometry.
    pub pe_rows: usize,
    /// PE array geometry.
    pub pe_cols: usize,
    /// Scratchpad sizes in KiB (ifmap, filter, ofmap).
    pub sram_kb: (usize, usize, usize),
    /// Accelerator clock, MHz.
    pub clock_mhz: f64,
    /// Validated task success rate.
    pub success_rate: f64,
    /// Inference throughput, FPS.
    pub fps: f64,
    /// Average SoC power, watts.
    pub soc_avg_w: f64,
    /// Accelerator TDP, watts.
    pub tdp_w: f64,
    /// Compute payload, grams.
    pub payload_g: f64,
}

impl From<&DesignCandidate> for CandidateSummary {
    fn from(c: &DesignCandidate) -> CandidateSummary {
        CandidateSummary {
            policy: c.policy.id(),
            pe_rows: c.config.rows(),
            pe_cols: c.config.cols(),
            sram_kb: (
                c.config.ifmap_sram_bytes() / 1024,
                c.config.filter_sram_bytes() / 1024,
                c.config.ofmap_sram_bytes() / 1024,
            ),
            clock_mhz: c.config.clock_mhz(),
            success_rate: c.success_rate,
            fps: c.fps,
            soc_avg_w: c.soc_avg_w,
            tdp_w: c.tdp_w,
            payload_g: c.payload_g,
        }
    }
}

/// Serializable summary of a full pipeline run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// UAV platform name.
    pub uav: String,
    /// Deployment scenario identifier.
    pub scenario: String,
    /// Phase-2 evaluations consumed.
    pub evaluations: usize,
    /// Size of the Phase-2 Pareto frontier.
    pub pareto_size: usize,
    /// Best success rate observed.
    pub best_success: f64,
    /// The selected design, when one exists.
    pub selection: Option<CandidateSummary>,
    /// Missions per charge of the selection.
    pub missions: Option<f64>,
    /// Safe velocity of the selection, m/s.
    pub v_safe_ms: Option<f64>,
    /// F-1 knee-point of the selection's configuration, FPS.
    pub knee_fps: Option<f64>,
    /// Why selection failed, when it did.
    pub error: Option<String>,
}

impl RunSummary {
    /// Builds the summary of a pipeline result.
    pub fn from_result(result: &AutopilotResult) -> RunSummary {
        RunSummary {
            uav: result.uav.name.clone(),
            scenario: result.task.density.id().to_owned(),
            evaluations: result.phase2.candidates.len(),
            pareto_size: result.phase2.pareto_indices.len(),
            best_success: result.phase2.best_success(),
            selection: result.selection.as_ref().map(|s| (&s.candidate).into()),
            missions: result.selection.as_ref().map(|s| s.missions.missions),
            v_safe_ms: result.selection.as_ref().map(|s| s.missions.v_safe_ms),
            knee_fps: result.selection.as_ref().and_then(|s| s.knee_fps),
            error: result.selection_error.clone(),
        }
    }

    /// Pretty JSON rendering.
    ///
    /// # Errors
    ///
    /// Returns [`AutopilotError::Serialization`] when the serializer
    /// fails (e.g. a backend without JSON support).
    pub fn to_json(&self) -> Result<String, AutopilotError> {
        serde_json::to_string_pretty(self)
            .map_err(|e| AutopilotError::Serialization { message: e.to_string() })
    }

    /// Parses a summary back from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error message on malformed
    /// input.
    pub fn from_json(json: &str) -> Result<RunSummary, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase2::OptimizerChoice;
    use crate::pipeline::{AutoPilot, AutopilotConfig};
    use crate::spec::TaskSpec;
    use air_sim::ObstacleDensity;
    use uav_dynamics::UavSpec;

    #[test]
    fn summary_round_trips_through_json() {
        let pilot = AutoPilot::new(
            AutopilotConfig::fast(3).with_budget(16).with_optimizer(OptimizerChoice::Random),
        );
        let result = pilot
            .run(&UavSpec::nano(), &TaskSpec::navigation(ObstacleDensity::Low))
            .expect("pipeline runs");
        let summary = RunSummary::from_result(&result);
        let restored = RunSummary::from_json(&summary.to_json().expect("serializes")).expect("parse");
        // Compare via re-serialization: floating-point JSON text is only
        // guaranteed to round-trip to the same shortest representation.
        assert_eq!(summary.to_json().expect("serializes"), restored.to_json().expect("serializes"));
        assert_eq!(summary.evaluations, 16);
        assert!(summary.selection.is_some());
        assert!(summary.missions.unwrap() > 0.0);
    }

    #[test]
    fn failed_selection_keeps_error() {
        let mut weak = UavSpec::nano();
        weak.base_thrust_to_weight = 1.01;
        let pilot = AutoPilot::new(
            AutopilotConfig::fast(3).with_budget(12).with_optimizer(OptimizerChoice::Random),
        );
        let result =
            pilot.run(&weak, &TaskSpec::navigation(ObstacleDensity::Low)).expect("pipeline runs");
        let summary = RunSummary::from_result(&result);
        assert!(summary.selection.is_none());
        assert!(summary.error.is_some());
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(RunSummary::from_json("{broken").is_err());
    }
}

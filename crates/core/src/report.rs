//! Serializable run summaries for downstream tooling.

use autopilot_obs::json::Value;

use crate::error::AutopilotError;
use crate::phase2::DesignCandidate;
use crate::pipeline::AutopilotResult;

/// Compact, serializable description of one design candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateSummary {
    /// Policy identifier (e.g. `"l7f48"`).
    pub policy: String,
    /// PE array geometry.
    pub pe_rows: usize,
    /// PE array geometry.
    pub pe_cols: usize,
    /// Scratchpad sizes in KiB (ifmap, filter, ofmap).
    pub sram_kb: (usize, usize, usize),
    /// Accelerator clock, MHz.
    pub clock_mhz: f64,
    /// Validated task success rate.
    pub success_rate: f64,
    /// Inference throughput, FPS.
    pub fps: f64,
    /// Average SoC power, watts.
    pub soc_avg_w: f64,
    /// Accelerator TDP, watts.
    pub tdp_w: f64,
    /// Compute payload, grams.
    pub payload_g: f64,
}

impl From<&DesignCandidate> for CandidateSummary {
    fn from(c: &DesignCandidate) -> CandidateSummary {
        CandidateSummary {
            policy: c.policy.id(),
            pe_rows: c.config.rows(),
            pe_cols: c.config.cols(),
            sram_kb: (
                c.config.ifmap_sram_bytes() / 1024,
                c.config.filter_sram_bytes() / 1024,
                c.config.ofmap_sram_bytes() / 1024,
            ),
            clock_mhz: c.config.clock_mhz(),
            success_rate: c.success_rate,
            fps: c.fps,
            soc_avg_w: c.soc_avg_w,
            tdp_w: c.tdp_w,
            payload_g: c.payload_g,
        }
    }
}

/// Serializable summary of a full pipeline run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// UAV platform name.
    pub uav: String,
    /// Deployment scenario identifier.
    pub scenario: String,
    /// Phase-2 evaluations consumed.
    pub evaluations: usize,
    /// Size of the Phase-2 Pareto frontier.
    pub pareto_size: usize,
    /// Best success rate observed.
    pub best_success: f64,
    /// The selected design, when one exists.
    pub selection: Option<CandidateSummary>,
    /// Missions per charge of the selection.
    pub missions: Option<f64>,
    /// Safe velocity of the selection, m/s.
    pub v_safe_ms: Option<f64>,
    /// F-1 knee-point of the selection's configuration, FPS.
    pub knee_fps: Option<f64>,
    /// Why selection failed, when it did.
    pub error: Option<String>,
}

impl RunSummary {
    /// Builds the summary of a pipeline result.
    pub fn from_result(result: &AutopilotResult) -> RunSummary {
        RunSummary {
            uav: result.uav.name.clone(),
            scenario: result.task.density.id().to_owned(),
            evaluations: result.phase2.candidates.len(),
            pareto_size: result.phase2.pareto_indices.len(),
            best_success: result.phase2.best_success(),
            selection: result.selection.as_ref().map(|s| (&s.candidate).into()),
            missions: result.selection.as_ref().map(|s| s.missions.missions),
            v_safe_ms: result.selection.as_ref().map(|s| s.missions.v_safe_ms),
            knee_fps: result.selection.as_ref().and_then(|s| s.knee_fps),
            error: result.selection_error.clone(),
        }
    }

    /// Pretty JSON rendering.
    ///
    /// # Errors
    ///
    /// Returns [`AutopilotError::Serialization`] when the summary cannot
    /// be represented (currently unreachable: every field maps directly
    /// onto a JSON value).
    pub fn to_json(&self) -> Result<String, AutopilotError> {
        let opt_num = |v: Option<f64>| v.map_or(Value::Null, Value::Num);
        let selection = match &self.selection {
            None => Value::Null,
            Some(c) => Value::Obj(vec![
                ("policy".into(), Value::Str(c.policy.clone())),
                ("pe_rows".into(), Value::Num(c.pe_rows as f64)),
                ("pe_cols".into(), Value::Num(c.pe_cols as f64)),
                (
                    "sram_kb".into(),
                    Value::Arr(vec![
                        Value::Num(c.sram_kb.0 as f64),
                        Value::Num(c.sram_kb.1 as f64),
                        Value::Num(c.sram_kb.2 as f64),
                    ]),
                ),
                ("clock_mhz".into(), Value::Num(c.clock_mhz)),
                ("success_rate".into(), Value::Num(c.success_rate)),
                ("fps".into(), Value::Num(c.fps)),
                ("soc_avg_w".into(), Value::Num(c.soc_avg_w)),
                ("tdp_w".into(), Value::Num(c.tdp_w)),
                ("payload_g".into(), Value::Num(c.payload_g)),
            ]),
        };
        let root = Value::Obj(vec![
            ("uav".into(), Value::Str(self.uav.clone())),
            ("scenario".into(), Value::Str(self.scenario.clone())),
            ("evaluations".into(), Value::Num(self.evaluations as f64)),
            ("pareto_size".into(), Value::Num(self.pareto_size as f64)),
            ("best_success".into(), Value::Num(self.best_success)),
            ("selection".into(), selection),
            ("missions".into(), opt_num(self.missions)),
            ("v_safe_ms".into(), opt_num(self.v_safe_ms)),
            ("knee_fps".into(), opt_num(self.knee_fps)),
            ("error".into(), self.error.as_ref().map_or(Value::Null, |e| Value::Str(e.clone()))),
        ]);
        Ok(root.to_json_pretty())
    }

    /// Parses a summary back from JSON.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message on malformed input or missing
    /// fields.
    pub fn from_json(json: &str) -> Result<RunSummary, String> {
        let root = Value::parse(json).map_err(|e| e.to_string())?;
        let str_field = |key: &str| -> Result<String, String> {
            root.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field `{key}`"))
        };
        let num_field = |key: &str| -> Result<f64, String> {
            root.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("missing numeric field `{key}`"))
        };
        let opt_num = |key: &str| -> Option<f64> { root.get(key).and_then(Value::as_f64) };
        let selection = match root.get("selection") {
            None | Some(Value::Null) => None,
            Some(c) => {
                let s = |key: &str| -> Result<String, String> {
                    c.get(key)
                        .and_then(Value::as_str)
                        .map(str::to_string)
                        .ok_or_else(|| format!("selection missing string field `{key}`"))
                };
                let n = |key: &str| -> Result<f64, String> {
                    c.get(key)
                        .and_then(Value::as_f64)
                        .ok_or_else(|| format!("selection missing numeric field `{key}`"))
                };
                let u = |key: &str| -> Result<usize, String> {
                    c.get(key)
                        .and_then(Value::as_u64)
                        .map(|v| v as usize)
                        .ok_or_else(|| format!("selection missing integer field `{key}`"))
                };
                let sram = c
                    .get("sram_kb")
                    .and_then(Value::as_arr)
                    .filter(|a| a.len() == 3)
                    .ok_or_else(|| "selection missing `sram_kb` triple".to_string())?;
                let kb = |i: usize| -> Result<usize, String> {
                    sram[i]
                        .as_u64()
                        .map(|v| v as usize)
                        .ok_or_else(|| "non-integer `sram_kb` entry".to_string())
                };
                Some(CandidateSummary {
                    policy: s("policy")?,
                    pe_rows: u("pe_rows")?,
                    pe_cols: u("pe_cols")?,
                    sram_kb: (kb(0)?, kb(1)?, kb(2)?),
                    clock_mhz: n("clock_mhz")?,
                    success_rate: n("success_rate")?,
                    fps: n("fps")?,
                    soc_avg_w: n("soc_avg_w")?,
                    tdp_w: n("tdp_w")?,
                    payload_g: n("payload_g")?,
                })
            }
        };
        Ok(RunSummary {
            uav: str_field("uav")?,
            scenario: str_field("scenario")?,
            evaluations: num_field("evaluations")? as usize,
            pareto_size: num_field("pareto_size")? as usize,
            best_success: num_field("best_success")?,
            selection,
            missions: opt_num("missions"),
            v_safe_ms: opt_num("v_safe_ms"),
            knee_fps: opt_num("knee_fps"),
            error: root.get("error").and_then(Value::as_str).map(str::to_string),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase2::OptimizerChoice;
    use crate::pipeline::{AutoPilot, AutopilotConfig};
    use crate::spec::TaskSpec;
    use air_sim::ObstacleDensity;
    use uav_dynamics::UavSpec;

    #[test]
    fn summary_round_trips_through_json() {
        let pilot = AutoPilot::new(
            AutopilotConfig::fast(3).with_budget(16).with_optimizer(OptimizerChoice::Random),
        );
        let result = pilot
            .run(&UavSpec::nano(), &TaskSpec::navigation(ObstacleDensity::Low))
            .expect("pipeline runs");
        let summary = RunSummary::from_result(&result);
        let restored =
            RunSummary::from_json(&summary.to_json().expect("serializes")).expect("parse");
        // Compare via re-serialization: floating-point JSON text is only
        // guaranteed to round-trip to the same shortest representation.
        assert_eq!(summary.to_json().expect("serializes"), restored.to_json().expect("serializes"));
        assert_eq!(summary.evaluations, 16);
        assert!(summary.selection.is_some());
        assert!(summary.missions.unwrap() > 0.0);
    }

    #[test]
    fn failed_selection_keeps_error() {
        let mut weak = UavSpec::nano();
        weak.base_thrust_to_weight = 1.01;
        let pilot = AutoPilot::new(
            AutopilotConfig::fast(3).with_budget(12).with_optimizer(OptimizerChoice::Random),
        );
        let result =
            pilot.run(&weak, &TaskSpec::navigation(ObstacleDensity::Low)).expect("pipeline runs");
        let summary = RunSummary::from_result(&result);
        assert!(summary.selection.is_none());
        assert!(summary.error.is_some());
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(RunSummary::from_json("{broken").is_err());
    }
}

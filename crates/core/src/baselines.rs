//! Baseline hardware platforms used in the paper's comparisons: Jetson
//! TX2, Xavier NX, Intel NCS, and PULP-DroNet.
//!
//! Each board is modelled by a small datasheet-derived triple: effective
//! compute rate, effective memory bandwidth, and (power, weight). The
//! achievable frame rate for a policy is the minimum of its compute-bound
//! and memory-bound rates — exactly what the mission model needs, since
//! Fig. 5 / Table V compare platforms only through their (throughput,
//! power, weight) triples. PULP-DroNet is handled per the paper's
//! optimistic assumption: its published 6 FPS @ 64 mW is used as-is even
//! for AutoPilot's much larger models.

use policy_nn::PolicyModel;
use uav_dynamics::{F1Model, MissionReport, UavSpec};

use crate::error::AutopilotError;
use crate::spec::TaskSpec;

/// A fixed (off-the-shelf or published) compute platform.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineBoard {
    /// Platform name.
    pub name: String,
    /// Carried weight (module + carrier), grams.
    pub weight_g: f64,
    /// Board power under inference load, watts.
    pub power_w: f64,
    /// Effective sustained compute rate, MAC/s (derated from peak).
    pub effective_macs_per_s: f64,
    /// Effective memory bandwidth for streaming weights, bytes/s.
    pub effective_mem_bw: f64,
    /// Weight word size on this platform (2 = fp16 GPU, 1 = int8 NPU).
    pub weight_word_bytes: usize,
    /// Fixed frame rate override (PULP-DroNet's published number).
    pub fixed_fps: Option<f64>,
}

impl BaselineBoard {
    /// NVIDIA Jetson TX2 (256-core Pascal, ~1.3 TFLOPS fp16 peak,
    /// 7.5–15 W envelope, 85 g module).
    pub fn jetson_tx2() -> BaselineBoard {
        BaselineBoard {
            name: "Jetson TX2".to_owned(),
            weight_g: 85.0,
            power_w: 9.0,
            effective_macs_per_s: 250.0e9,
            effective_mem_bw: 5.0e9,
            weight_word_bytes: 2,
            fixed_fps: None,
        }
    }

    /// NVIDIA Xavier NX (Volta + NVDLA, 21 TOPS int8 peak at 15 W,
    /// compact module).
    pub fn xavier_nx() -> BaselineBoard {
        BaselineBoard {
            name: "Xavier NX".to_owned(),
            weight_g: 35.0,
            power_w: 10.0,
            effective_macs_per_s: 900.0e9,
            effective_mem_bw: 8.0e9,
            weight_word_bytes: 1,
            fixed_fps: None,
        }
    }

    /// Intel Neural Compute Stick (Myriad VPU, ~1 W, USB-bandwidth
    /// limited).
    pub fn intel_ncs() -> BaselineBoard {
        BaselineBoard {
            name: "Intel NCS".to_owned(),
            weight_g: 18.0,
            power_w: 1.2,
            effective_macs_per_s: 50.0e9,
            effective_mem_bw: 1.0e9,
            weight_word_bytes: 2,
            fixed_fps: None,
        }
    }

    /// PULP-DroNet (Palossi et al.): 6 FPS at 64 mW on a ~5 g deck. Per
    /// the paper, these published numbers are used unchanged even for
    /// the 100x larger AutoPilot models (an optimistic assumption in
    /// PULP's favour).
    pub fn pulp_dronet() -> BaselineBoard {
        BaselineBoard {
            name: "P-DroNet".to_owned(),
            weight_g: 5.0,
            power_w: 0.064,
            effective_macs_per_s: 0.5e9,
            effective_mem_bw: 0.1e9,
            weight_word_bytes: 1,
            fixed_fps: Some(6.0),
        }
    }

    /// The general-purpose comparison set of Fig. 5.
    pub fn figure5_set() -> Vec<BaselineBoard> {
        vec![Self::jetson_tx2(), Self::xavier_nx(), Self::pulp_dronet()]
    }

    /// Achievable inference rate for `model` on this board, FPS.
    pub fn fps(&self, model: &PolicyModel) -> f64 {
        if let Some(f) = self.fixed_fps {
            return f;
        }
        let compute_bound = self.effective_macs_per_s / model.mac_count() as f64;
        let memory_bound =
            self.effective_mem_bw / model.weight_bytes(self.weight_word_bytes) as f64;
        compute_bound.min(memory_bound)
    }

    /// Full-system mission evaluation of this board flying `model` on
    /// `uav`.
    ///
    /// # Errors
    ///
    /// [`AutopilotError::UavModel`] when the board weight or the task's
    /// sensor rate fail validation.
    pub fn evaluate(
        &self,
        uav: &UavSpec,
        task: &TaskSpec,
        model: &PolicyModel,
    ) -> Result<BaselineEvaluation, AutopilotError> {
        let fps = self.fps(model);
        let f1 = F1Model::new(uav.clone(), self.weight_g, task.sensor_fps)?;
        let v_safe = f1.safe_velocity(fps);
        let missions = task.mission.evaluate_analysed(uav, f1.payload(), v_safe, self.power_w);
        Ok(BaselineEvaluation { board: self.clone(), fps, missions })
    }
}

/// Mission-level evaluation of one baseline board.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineEvaluation {
    /// The evaluated board.
    pub board: BaselineBoard,
    /// Achieved policy inference rate, FPS.
    pub fps: f64,
    /// Mission report on the target UAV.
    pub missions: MissionReport,
}

#[cfg(test)]
mod tests {
    use super::*;
    use air_sim::ObstacleDensity;
    use policy_nn::PolicyHyperparams;

    fn model() -> PolicyModel {
        PolicyModel::build(PolicyHyperparams::new(7, 48).unwrap())
    }

    #[test]
    fn board_throughput_ordering_is_sane() {
        let m = model();
        let tx2 = BaselineBoard::jetson_tx2().fps(&m);
        let nx = BaselineBoard::xavier_nx().fps(&m);
        let ncs = BaselineBoard::intel_ncs().fps(&m);
        let pulp = BaselineBoard::pulp_dronet().fps(&m);
        assert!(nx > tx2, "NX {nx} <= TX2 {tx2}");
        assert!(tx2 > ncs, "TX2 {tx2} <= NCS {ncs}");
        assert!(ncs > pulp, "NCS {ncs} <= PULP {pulp}");
        assert_eq!(pulp, 6.0);
    }

    #[test]
    fn ncs_is_memory_bound_on_large_models() {
        // 36 MB of weights over ~1 GB/s: tens of FPS at best.
        let fps = BaselineBoard::intel_ncs().fps(&model());
        assert!(fps < 40.0, "NCS at {fps} FPS is implausible");
    }

    #[test]
    fn tx2_weight_hurts_nano_uav() {
        // An 85 g module on a 50 g nano-UAV still flies (TWR 3.0 base)
        // but loses most of its missions versus the same board at an
        // AutoPilot-class 24 g payload.
        let task = TaskSpec::navigation(ObstacleDensity::Low);
        let tx2 = BaselineBoard::jetson_tx2();
        let heavy = tx2.evaluate(&UavSpec::nano(), &task, &model()).unwrap();
        let mut light_board = tx2.clone();
        light_board.weight_g = 24.0;
        let light = light_board.evaluate(&UavSpec::nano(), &task, &model()).unwrap();
        assert!(heavy.missions.missions > 0.0);
        assert!(
            heavy.missions.missions < 0.6 * light.missions.missions,
            "heavy {:.1} vs light {:.1}",
            heavy.missions.missions,
            light.missions.missions
        );
    }

    #[test]
    fn mini_uav_carries_all_boards() {
        let task = TaskSpec::navigation(ObstacleDensity::Low);
        for board in BaselineBoard::figure5_set() {
            let eval = board.evaluate(&UavSpec::mini(), &task, &model()).unwrap();
            assert!(
                eval.missions.missions > 0.0,
                "{} flies zero missions on the mini-UAV",
                board.name
            );
        }
    }

    #[test]
    fn pulp_is_underprovisioned_but_light() {
        let task = TaskSpec::navigation(ObstacleDensity::Low);
        let pulp =
            BaselineBoard::pulp_dronet().evaluate(&UavSpec::nano(), &task, &model()).unwrap();
        // It flies (light), but slowly (6 FPS decision rate).
        assert!(pulp.missions.missions > 0.0);
        assert!(pulp.missions.v_safe_ms > 0.0);
        let f1 = F1Model::new(UavSpec::nano(), 5.0, task.sensor_fps).unwrap();
        assert!(pulp.missions.v_safe_ms < f1.velocity_ceiling() * 0.9);
    }
}

//! Phase 3: domain-specific back end (full-system UAV co-design).

use autopilot_obs as obs;
use soc_power::TechNode;
use uav_dynamics::{Airframe, F1Model, MissionReport, Provisioning, SwapFeasibility, UavSpec};

use crate::error::AutopilotError;
use crate::phase2::{DesignCandidate, DssocEvaluator, Phase2Output};
use crate::spec::TaskSpec;

/// Architectural fine-tuning applied to move a selected design toward the
/// F-1 knee-point (frequency scaling, optionally a denser technology
/// node).
#[derive(Debug, Clone, PartialEq)]
pub struct FineTuning {
    /// Adjusted accelerator clock, MHz.
    pub clock_mhz: f64,
    /// Technology node of the tuned design.
    pub node: TechNode,
    /// Missions per charge before tuning.
    pub missions_before: f64,
    /// Missions per charge after tuning.
    pub missions_after: f64,
}

/// The design AutoPilot selected for a (UAV, task) pair, with its
/// full-system evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase3Selection {
    /// The selected design candidate (post fine-tuning when applied).
    pub candidate: DesignCandidate,
    /// F-1 knee-point throughput for this UAV and payload, if one exists.
    pub knee_fps: Option<f64>,
    /// Classification of the selected design against the knee.
    pub provisioning: Provisioning,
    /// Mission-level evaluation (Eq. 1–4).
    pub missions: MissionReport,
    /// Fine-tuning record when Phase 3 adjusted the design.
    pub fine_tuning: Option<FineTuning>,
    /// SWaP feasibility of the selected design (mass, CG, static margin,
    /// weight class); `None` in legacy scalar-payload mode.
    pub swap: Option<SwapFeasibility>,
}

/// The domain-specific back end: filters Phase-2 candidates by success,
/// maps them onto the F-1 model, and selects the design that maximizes
/// the number of missions.
#[derive(Debug, Clone, Default)]
pub struct Phase3 {
    enable_fine_tuning: bool,
}

impl Phase3 {
    /// Back end with architectural fine-tuning enabled.
    pub fn new() -> Phase3 {
        Phase3 { enable_fine_tuning: true }
    }

    /// Disables the fine-tuning step (used by the Phase-3 ablation).
    pub fn without_fine_tuning() -> Phase3 {
        Phase3 { enable_fine_tuning: false }
    }

    /// Evaluates one candidate's mission performance on `uav`.
    ///
    /// # Errors
    ///
    /// [`AutopilotError::UavModel`] when the candidate's payload or the
    /// task's sensor rate fail validation.
    pub fn mission_report(
        uav: &UavSpec,
        task: &TaskSpec,
        candidate: &DesignCandidate,
    ) -> Result<MissionReport, AutopilotError> {
        let f1 = F1Model::new(uav.clone(), candidate.payload_g, task.sensor_fps)?;
        let v = f1.safe_velocity(candidate.fps);
        Ok(task.mission.evaluate_analysed(uav, f1.payload(), v, candidate.soc_avg_w))
    }

    /// Selects the mission-optimal design from Phase-2's output.
    ///
    /// # Errors
    ///
    /// * [`AutopilotError::NoCandidateMeetsSuccess`] when no candidate
    ///   reaches the task's success threshold (within a 2 % relaxation of
    ///   the best observed rate).
    /// * [`AutopilotError::NoFlyableDesign`] when every candidate grounds
    ///   the UAV or has zero safe velocity.
    /// * [`AutopilotError::SwapInfeasible`] when the evaluator runs in
    ///   [`SwapMode::Constraint`](crate::SwapMode::Constraint) and the
    ///   airframe feasibility filter rejects every eligible candidate
    ///   (rejections are counted on `phase3.swap.rejected` and
    ///   `phase3.swap.rejected.<kind>`).
    pub fn select(
        &self,
        uav: &UavSpec,
        task: &TaskSpec,
        phase2: &Phase2Output,
        evaluator: &DssocEvaluator,
    ) -> Result<Phase3Selection, AutopilotError> {
        let _span = obs::span("phase3.select");
        let best_success = phase2.best_success();
        // The paper filters to the designs "with the highest success rate
        // (based on the input specification)": keep candidates within 2 %
        // of the best observed success, and no lower than the task
        // threshold when the threshold is attainable.
        let threshold = if best_success >= task.min_success_rate {
            task.min_success_rate.max(best_success - 0.02)
        } else {
            best_success - 0.02
        };
        let mut eligible: Vec<&DesignCandidate> =
            phase2.candidates.iter().filter(|c| c.success_rate >= threshold).collect();
        if eligible.is_empty() {
            return Err(AutopilotError::NoCandidateMeetsSuccess {
                required: task.min_success_rate,
                best: best_success,
            });
        }
        // Optional real-time latency constraint.
        if let Some(max_latency) = task.max_latency_s {
            let constrained: Vec<&DesignCandidate> =
                eligible.iter().copied().filter(|c| c.latency_s <= max_latency).collect();
            if !constrained.is_empty() {
                eligible = constrained;
            }
        }

        // SWaP feasibility filter: in constraint mode every eligible
        // candidate's compute payload must close on the airframe (weight
        // class, static margin, lift budget) before knee-point selection.
        let swap_airframe: Option<Airframe> = evaluator.swap_mode().is_on().then(|| {
            evaluator
                .airframe()
                .cloned()
                .or_else(|| uav.airframe.clone())
                .unwrap_or_else(|| Airframe::default_for(uav.class))
        });
        if let Some(airframe) = &swap_airframe {
            let mut feasible: Vec<&DesignCandidate> = Vec::with_capacity(eligible.len());
            let mut rejected = 0usize;
            for &c in &eligible {
                obs::add("phase3.swap.checked", 1);
                let check = airframe.check_payload_on(uav, c.payload_g)?;
                if check.feasible() {
                    obs::add("phase3.swap.feasible", 1);
                    feasible.push(c);
                } else {
                    rejected += 1;
                    obs::add("phase3.swap.rejected", 1);
                    for v in &check.violations {
                        obs::add(&format!("phase3.swap.rejected.{}", v.kind()), 1);
                    }
                }
            }
            if feasible.is_empty() {
                return Err(AutopilotError::SwapInfeasible {
                    uav: uav.name.clone(),
                    airframe: airframe.name().to_owned(),
                    rejected,
                });
            }
            eligible = feasible;
        }

        // Full-system evaluation: missions per charge for each candidate.
        let mut scored: Vec<(f64, &DesignCandidate)> = Vec::with_capacity(eligible.len());
        for c in eligible {
            scored.push((Self::mission_report(uav, task, c)?.missions, c));
        }
        let (best_missions, best) = scored
            .iter()
            .max_by(|a, b| a.0.total_cmp(&b.0))
            .copied()
            .ok_or_else(|| AutopilotError::NoFlyableDesign { uav: uav.name.clone() })?;
        if best_missions <= 0.0 {
            return Err(AutopilotError::NoFlyableDesign { uav: uav.name.clone() });
        }

        let mut selected = best.clone();
        let mut fine_tuning = None;
        if self.enable_fine_tuning {
            if let Some(tuned) = self.fine_tune(uav, task, &selected, evaluator) {
                // In constraint mode a tuned design must stay feasible;
                // otherwise keep the untuned selection.
                let tuned_feasible = match &swap_airframe {
                    Some(af) => af
                        .check_payload_on(uav, tuned.payload_g)
                        .map(|f| f.feasible())
                        .unwrap_or(false),
                    None => true,
                };
                if tuned_feasible {
                    obs::add("phase3.fine_tuned", 1);
                    fine_tuning = Some(FineTuning {
                        clock_mhz: tuned.config.clock_mhz(),
                        node: TechNode::N28,
                        missions_before: best_missions,
                        missions_after: Self::mission_report(uav, task, &tuned)?.missions,
                    });
                    selected = tuned;
                }
            }
        }

        let swap = match &swap_airframe {
            Some(af) => Some(af.check_payload_on(uav, selected.payload_g)?),
            None => None,
        };
        let f1 = F1Model::new(uav.clone(), selected.payload_g, task.sensor_fps)?;
        let missions = Self::mission_report(uav, task, &selected)?;
        Ok(Phase3Selection {
            knee_fps: f1.knee_fps(),
            provisioning: f1.classify(selected.fps),
            missions,
            candidate: selected,
            fine_tuning,
            swap,
        })
    }

    /// Frequency-scaling fine-tuning: when the selected design misses the
    /// knee-point, rescale the clock so the compute rate lands on the
    /// knee, and keep the change only if it gains missions.
    fn fine_tune(
        &self,
        uav: &UavSpec,
        task: &TaskSpec,
        candidate: &DesignCandidate,
        evaluator: &DssocEvaluator,
    ) -> Option<DesignCandidate> {
        let f1 = F1Model::new(uav.clone(), candidate.payload_g, task.sensor_fps).ok()?;
        let knee = f1.knee_fps()?;
        if candidate.fps <= 0.0 {
            return None;
        }
        let ratio = knee / candidate.fps;
        if (0.95..=1.05).contains(&ratio) {
            return None; // already at the knee
        }
        let new_clock = (candidate.config.clock_mhz() * ratio).clamp(50.0, 1000.0);
        let tuned_config = candidate.config.with_clock_mhz(new_clock).ok()?;
        let tuned = evaluator.evaluate_config(
            candidate.point.clone(),
            candidate.policy,
            tuned_config,
            TechNode::N28,
        );
        let before = Self::mission_report(uav, task, candidate).ok()?.missions;
        let after = Self::mission_report(uav, task, &tuned).ok()?.missions;
        // Keep the knee-balanced design when it gains missions, or when an
        // over-provisioned design can move to the knee at a near-tie while
        // shedding power/weight (the paper's notion of a balanced DSSoC
        // prefers the knee over an over-provisioned near-equal).
        let improves = after > before * 1.001;
        let near_tie_but_leaner = after >= before * 0.97
            && tuned.soc_avg_w < candidate.soc_avg_w
            && f1.classify(candidate.fps) == uav_dynamics::Provisioning::OverProvisioned;
        (improves || near_tie_but_leaner).then_some(tuned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase1::{Phase1, SuccessModel};
    use crate::phase2::{OptimizerChoice, Phase2};
    use air_sim::{AirLearningDatabase, ObstacleDensity};

    fn setup(density: ObstacleDensity) -> (DssocEvaluator, Phase2Output) {
        let mut db = AirLearningDatabase::new();
        Phase1::new(SuccessModel::Surrogate, 1).populate(density, &mut db);
        let ev = DssocEvaluator::new(db, density);
        let out = Phase2::new(OptimizerChoice::Random, 24, 5).run(&ev).expect("phase 2 runs");
        (ev, out)
    }

    #[test]
    fn selects_a_flyable_mission_optimal_design() {
        let (ev, out) = setup(ObstacleDensity::Dense);
        let uav = UavSpec::nano();
        let task = TaskSpec::navigation(ObstacleDensity::Dense);
        let sel = Phase3::new().select(&uav, &task, &out, &ev).unwrap();
        assert!(sel.missions.missions > 0.0);
        assert!(sel.candidate.success_rate >= 0.5);
        // The selection must beat (or match) every other eligible
        // candidate on missions.
        let threshold = task.min_success_rate.max(out.best_success() - 0.02);
        for c in &out.candidates {
            if c.success_rate >= threshold {
                let m = Phase3::mission_report(&uav, &task, c).unwrap().missions;
                assert!(
                    sel.missions.missions >= m * 0.97,
                    "candidate with {m:.1} missions beats selection {:.1}",
                    sel.missions.missions
                );
            }
        }
    }

    #[test]
    fn success_threshold_relaxes_to_best_band() {
        let (ev, out) = setup(ObstacleDensity::Dense);
        let uav = UavSpec::mini();
        // Impossible threshold: falls back to the best-success band
        // rather than erroring.
        let task = TaskSpec::navigation(ObstacleDensity::Dense).with_min_success(0.99);
        let sel = Phase3::new().select(&uav, &task, &out, &ev).unwrap();
        assert!(sel.candidate.success_rate >= out.best_success() - 0.02);
    }

    #[test]
    fn grounded_uav_errors() {
        let (ev, out) = setup(ObstacleDensity::Low);
        // A UAV so weak that any compute payload grounds it.
        let mut uav = UavSpec::nano();
        uav.base_thrust_to_weight = 1.05;
        let task = TaskSpec::navigation(ObstacleDensity::Low);
        let err = Phase3::new().select(&uav, &task, &out, &ev).unwrap_err();
        assert!(matches!(err, AutopilotError::NoFlyableDesign { .. }));
    }

    #[test]
    fn legacy_mode_reports_no_swap_feasibility() {
        let (ev, out) = setup(ObstacleDensity::Dense);
        let uav = UavSpec::nano();
        let task = TaskSpec::navigation(ObstacleDensity::Dense);
        let sel = Phase3::new().select(&uav, &task, &out, &ev).unwrap();
        assert!(sel.swap.is_none());
    }

    #[test]
    fn swap_mode_filters_and_reports_feasibility() {
        use crate::swap::SwapMode;
        let (ev, out) = setup(ObstacleDensity::Dense);
        let ev = ev.with_swap(SwapMode::Constraint, uav_dynamics::Airframe::nano());
        let uav = UavSpec::nano();
        let task = TaskSpec::navigation(ObstacleDensity::Dense);
        let sel = Phase3::new().select(&uav, &task, &out, &ev).unwrap();
        let swap = sel.swap.expect("constraint mode records feasibility");
        assert!(swap.feasible(), "selected design must be feasible: {:?}", swap.violations);
        // Nano build + feasible payload stays under the 100 g nano cap.
        assert!(swap.total_mass_g <= 100.0);
        assert!(swap.static_margin >= uav_dynamics::MIN_STATIC_MARGIN);
    }

    #[test]
    fn swap_mode_errors_when_nothing_fits() {
        use crate::swap::SwapMode;
        let (ev, out) = setup(ObstacleDensity::Dense);
        // A deliberately unstable airframe: every payload is rejected.
        let tail = uav_dynamics::Component::new(
            "tail-battery",
            uav_dynamics::ComponentKind::Battery,
            100.0,
            [-80.0, 0.0, 0.0],
        )
        .unwrap();
        let unstable = uav_dynamics::Airframe::new("tail-heavy", 0.0, 100.0, vec![tail]).unwrap();
        let ev = ev.with_swap(SwapMode::Constraint, unstable);
        let uav = UavSpec::nano();
        let task = TaskSpec::navigation(ObstacleDensity::Dense);
        let err = Phase3::new().select(&uav, &task, &out, &ev).unwrap_err();
        match err {
            AutopilotError::SwapInfeasible { airframe, rejected, .. } => {
                assert_eq!(airframe, "tail-heavy");
                assert!(rejected > 0);
            }
            other => panic!("expected SwapInfeasible, got {other}"),
        }
    }

    #[test]
    fn fine_tuning_never_materially_loses_missions() {
        let (ev, out) = setup(ObstacleDensity::Medium);
        let uav = UavSpec::micro();
        let task = TaskSpec::navigation(ObstacleDensity::Medium);
        let with = Phase3::new().select(&uav, &task, &out, &ev).unwrap();
        let without = Phase3::without_fine_tuning().select(&uav, &task, &out, &ev).unwrap();
        assert!(with.missions.missions >= without.missions.missions * 0.97);
        if let Some(ft) = &with.fine_tuning {
            assert!(ft.missions_after >= ft.missions_before * 0.97);
        }
    }
}
